// Package kaleidoscope's root bench harness regenerates every table and
// figure of the paper's evaluation, one benchmark per artifact:
//
//	BenchmarkTable1Params            — Table I parameter round-trip
//	BenchmarkFig1IntegratedPage      — aggregator builds a side-by-side page
//	BenchmarkFig3ExtensionFlow       — one participant's full test flow
//	BenchmarkFig4FontSizeRanking     — §IV-A ranking panels (raw/QC/in-lab)
//	BenchmarkFig5TesterBehavior      — §IV-A behaviour CDFs
//	BenchmarkFig7aRecruitmentSpeed   — §IV-B recruitment: Kaleidoscope vs A/B
//	BenchmarkFig7bABTestClicks       — §IV-B A/B campaign clicks + P value
//	BenchmarkFig7cKaleidoscopeButton — §IV-B question-C significance
//	BenchmarkFig8QuestionResponses   — §IV-B all-question splits
//	BenchmarkFig9PageLoadFeature     — §IV-C uPLT study
//	BenchmarkAblation*               — design-choice probes from DESIGN.md
//
// Figure rows are printed once per bench (first iteration) so
// `go test -bench=. -benchmem` output doubles as the data behind
// EXPERIMENTS.md. Absolute timings measure the simulation, not the
// authors' testbed; the shapes are what reproduce.
package kaleidoscope

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"kaleidoscope/internal/abtest"
	"kaleidoscope/internal/experiments"
	"kaleidoscope/internal/netsim"
	"kaleidoscope/internal/params"
	"kaleidoscope/internal/questionnaire"
)

// benchSeed keeps every benchmark deterministic.
const benchSeed = 1

// fig4Cache shares the expensive §IV-A run between the Fig. 4 and Fig. 5
// benches.
var fig4Cache struct {
	once sync.Once
	res  *experiments.Fig4Result
	err  error
}

func fig4Result() (*experiments.Fig4Result, error) {
	fig4Cache.once.Do(func() {
		rng := rand.New(rand.NewSource(benchSeed))
		fig4Cache.res, fig4Cache.err = experiments.RunFig4(experiments.Fig4Config{}, rng)
	})
	return fig4Cache.res, fig4Cache.err
}

// expandCache shares the §IV-B run between the Fig. 7a/7b/7c/8 benches.
var expandCache struct {
	once sync.Once
	res  *experiments.ExpandButtonResult
	err  error
}

func expandResult() (*experiments.ExpandButtonResult, error) {
	expandCache.once.Do(func() {
		rng := rand.New(rand.NewSource(benchSeed))
		expandCache.res, expandCache.err = experiments.RunExpandButton(experiments.ExpandButtonConfig{}, rng)
	})
	return expandCache.res, expandCache.err
}

// printOnce emits figure rows exactly once per process so bench output
// stays readable across b.N iterations.
var printedFigures sync.Map

func printOnce(key, text string) {
	if _, loaded := printedFigures.LoadOrStore(key, true); !loaded {
		fmt.Println(text)
	}
}

func BenchmarkTable1Params(b *testing.B) {
	doc := &params.Test{
		TestID:          "bench",
		WebpageNum:      2,
		TestDescription: "bench",
		ParticipantNum:  100,
		Questions:       []string{"Which is better?"},
		Webpages: []params.Webpage{
			{WebPath: "a", WebPageLoad: params.PageLoadSpec{UniformMillis: 2000}, WebMainFile: "index.html"},
			{WebPath: "b", WebPageLoad: params.PageLoadSpec{Schedule: []params.SelectorTime{
				{Selector: "#main", Millis: 1000},
				{Selector: "#content p", Millis: 1500},
			}}, WebMainFile: "index.html"},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := doc.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := params.Parse(data); err != nil {
			b.Fatal(err)
		}
	}
	printOnce("table1", "Table I — parameter schema: encode+parse round-trip benchmarked; see params package for field semantics")
}

func BenchmarkFig4FontSizeRanking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := fig4Result()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce("fig4", experiments.FormatFig4(res))
			best := res.Config.FontSizesPt[experiments.TopChoice(res.QualityControlled)]
			b.ReportMetric(float64(best), "winner_pt")
			b.ReportMetric(experiments.PanelDistance(res.Raw, res.InLab)*1000, "raw_vs_lab_dist_x1000")
			b.ReportMetric(experiments.PanelDistance(res.QualityControlled, res.InLab)*1000, "qc_vs_lab_dist_x1000")
		}
	}
}

func BenchmarkFig5TesterBehavior(b *testing.B) {
	res, err := fig4Result()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig5, err := experiments.BuildFig5(res)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce("fig5", experiments.FormatFig5(fig5))
			b.ReportMetric(fig5.TimeMinutes[experiments.CohortRaw].Max(), "raw_max_min")
			b.ReportMetric(fig5.TimeMinutes[experiments.CohortQC].Max(), "qc_max_min")
			b.ReportMetric(fig5.TimeMinutes[experiments.CohortInLab].Max(), "lab_max_min")
		}
	}
}

func BenchmarkFig7aRecruitmentSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expandResult()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce("fig7a", experiments.FormatFig7a(res))
			b.ReportMetric(res.Speedup, "speedup_x")
			b.ReportMetric(res.KaleidoscopeDuration.Hours(), "kscope_hours")
			b.ReportMetric(res.ABDuration.Hours()/24, "ab_days")
		}
	}
}

func BenchmarkFig7bABTestClicks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expandResult()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce("fig7b", experiments.FormatFig7b(res))
			b.ReportMetric(res.ABSignificance.PValueOneSided, "ab_p_one_sided")
		}
	}
}

func BenchmarkFig7cKaleidoscopeButton(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expandResult()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce("fig7c", experiments.FormatFig7c(res))
			t := res.Tallies[experiments.QuestionVisibility]
			b.ReportMetric(float64(t.Right), "variant_votes")
			b.ReportMetric(float64(t.Left), "original_votes")
			b.ReportMetric(res.VisibilitySignificance.PValue, "p_two_sided")
		}
	}
}

func BenchmarkFig8QuestionResponses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expandResult()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce("fig8", experiments.FormatFig8(res))
			appeal := res.Tallies[experiments.QuestionAppeal]
			b.ReportMetric(appeal.Proportion(questionnaire.ChoiceSame)*100, "appeal_same_pct")
		}
	}
}

func BenchmarkFig9PageLoadFeature(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(benchSeed))
		res, err := experiments.RunFig9(experiments.Fig9Config{}, rng)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce("fig9", experiments.FormatFig9(res))
			b.ReportMetric(res.Raw.Proportion(questionnaire.ChoiceRight)*100, "raw_b_pct")
			b.ReportMetric(res.Filtered.Proportion(questionnaire.ChoiceRight)*100, "qc_b_pct")
		}
	}
}

func BenchmarkAblationSortReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(benchSeed))
		res, err := experiments.RunSortReduction(5, 100, rng)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce("ablation-sort", experiments.FormatSortReduction(res))
			b.ReportMetric(res.RoundRobinComparisons, "roundrobin_cmps")
			b.ReportMetric(res.MergeComparisons, "merge_cmps")
		}
	}
}

func BenchmarkAblationQualityControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(benchSeed))
		res, err := experiments.RunQCAblation(200, rng)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce("ablation-qc", experiments.FormatQCAblation(res))
			for _, row := range res.Rows {
				if row.Name == "full battery" {
					b.ReportMetric(row.Accuracy*100, "full_accuracy_pct")
				}
			}
		}
	}
}

func BenchmarkAblationLocalReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(benchSeed))
		res, err := experiments.RunLocalReplay(3, rng)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce("ablation-replay", experiments.FormatLocalReplay(res))
			b.ReportMetric(res.NetworkSpeedIndexMax/res.NetworkSpeedIndexMin, "network_si_spread_x")
		}
	}
}

func BenchmarkAblationSideBySide(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(benchSeed))
		res, err := experiments.RunPresentation(300, rng)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce("ablation-presentation", experiments.FormatPresentation(res))
			b.ReportMetric(res.SideBySideAccuracy*100, "sidebyside_acc_pct")
			b.ReportMetric(res.SequentialAccuracy*100, "sequential_acc_pct")
		}
	}
}

func BenchmarkAblationSortedFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(benchSeed))
		res, err := experiments.RunSortedStudy(25, rng)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce("ablation-sorted-flow", experiments.FormatSortedStudy(res))
			b.ReportMetric(res.FullComparisons, "full_cmp_per_worker")
			b.ReportMetric(res.SortedComparisons, "sorted_cmp_per_worker")
			b.ReportMetric(res.OrderAgreement, "order_tau")
		}
	}
}

// BenchmarkFig7aABCampaignOnly isolates the A/B baseline so the
// recruitment-duration distribution can be measured independently.
func BenchmarkFig7aABCampaignOnly(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	// Accumulate in float64 days: a time.Duration sum overflows after
	// ~100k twelve-day campaigns.
	var totalDays float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := abtest.Run(abtest.PaperConfig(), rng)
		if err != nil {
			b.Fatal(err)
		}
		totalDays += res.Duration.Hours() / 24
	}
	b.ReportMetric(totalDays/float64(b.N), "mean_days")
}

// BenchmarkExtensionProtocolStudy runs the paper's proposed HTTP/1.1 vs
// HTTP/2 record-and-replay comparison.
func BenchmarkExtensionProtocolStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(benchSeed))
		res, err := experiments.RunProtocolStudy(netsim.ProfileSatell, 50, rng)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce("ext-protocol", experiments.FormatProtocolStudy(res))
			b.ReportMetric(res.H1OnLoadMillis, "h1_onload_ms")
			b.ReportMetric(res.H2OnLoadMillis, "h2_onload_ms")
		}
	}
}
