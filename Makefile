GO ?= go
FUZZTIME ?= 15s

.PHONY: build check vet test race bench chaos fuzz-smoke cover cover-check bench-aggregator bench-server bench-batch bench-delta load-smoke overload-smoke throughput-smoke failover-smoke multinode-smoke campaign-smoke earlystop-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The gate: static analysis plus the full suite under the race detector.
check: vet race

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Fault-injection suite: crash-recovery under injected filesystem faults,
# chaos-transport end-to-end flows, and graceful-drain shutdown. Run
# repeatedly — these tests mix randomized fault schedules with fixed
# seeds, and flakes here mean a real durability bug.
chaos:
	$(GO) test -count=3 -run 'Chaos|Crash|Fault|Torn|Quarantin|Recover|ENOSPC|Drain|Retr|Compact|SyncPolic' \
		./internal/store/ ./internal/netsim/ ./internal/extension/ ./cmd/kscope-server/

# Short fuzz passes over every fuzz target — the CI smoke stage. Crashing
# inputs land in testdata/fuzz/ as permanent regression seeds.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/htmlx/
	$(GO) test -run '^$$' -fuzz '^FuzzParseSelector$$' -fuzztime $(FUZZTIME) ./internal/cssx/
	$(GO) test -run '^$$' -fuzz '^FuzzParseStylesheet$$' -fuzztime $(FUZZTIME) ./internal/cssx/
	$(GO) test -run '^$$' -fuzz '^FuzzInjectSpec$$' -fuzztime $(FUZZTIME) ./internal/pageload/
	$(GO) test -run '^$$' -fuzz '^FuzzSequentialFold$$' -fuzztime $(FUZZTIME) ./internal/earlystop/
	$(GO) test -run '^$$' -fuzz '^FuzzLogBetaMixtureE$$' -fuzztime $(FUZZTIME) ./internal/earlystop/

# Full-repo coverage profile (published as a CI artifact).
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Coverage floors on the preparation pipeline's load-bearing packages, the
# overload guard, and the sequential early-stopping engine.
cover-check: cover
	./scripts/cover_floor.sh internal/aggregator 85 internal/store 80 internal/guard 80 internal/earlystop 90 internal/shard 80

# The PR-3 acceptance benchmark pair; record results in
# BENCH_aggregator.json (on >=4 cores the parallel pipeline should show
# >=2.2x over the sequential reference — see that file's notes).
bench-aggregator:
	$(GO) test -run '^$$' -bench 'BenchmarkPrepare(Sequential|Parallel)$$' -benchmem -count=3 \
		./internal/aggregator/

# The PR-4/PR-6/PR-7 acceptance benchmarks; record results in
# BENCH_server.json (the incremental results engine must stay >=10x over
# the from-scratch oracle at 10k stored sessions, the batched upload under
# its per-session allocation budget, and the replicated AckFollower upload
# within 10x of the durable no-follower baseline — see that file's notes).
bench-server:
	$(GO) test -run '^$$' -bench 'BenchmarkConclude(Scratch|Incremental)|BenchmarkSession(UploadHTTP|BatchUploadHTTP|UploadDurable|UploadReplicated)$$|BenchmarkSessionUploadFsync' \
		-benchmem -benchtime 10x ./internal/server/

# Just the upload hot-path pair: single endpoint vs the batched streaming
# decoder (divide the batch allocs/op by 100 for the per-session figure).
bench-batch:
	$(GO) test -run '^$$' -bench 'BenchmarkSession(UploadHTTP|BatchUploadHTTP)$$|BenchmarkSessionUploadFsync' \
		-benchmem -benchtime 50x ./internal/server/

# Benchmark regression gate: re-runs the acceptance benchmarks and fails on
# any recorded-floor regression — allocation counts vs BENCH_*.json, the
# batch upload's 40 allocs/session budget, the >=10x incremental speedup,
# (with >=4 cores) the >=2.2x parallel Prepare speedup, and the replicated
# upload's 10x overhead budget with zero post-ack replication lag.
bench-delta:
	./scripts/bench_delta.sh

# Deterministic crowd soak through the real HTTP stack with chaos on: fails
# on any worker loss, any server status outside 200/201/409, or divergence
# between the incremental results engine and the from-scratch oracle.
load-smoke:
	$(GO) run ./cmd/kscope-load -workers 12 -seed 7 -drop 0.1 -fault 0.1 -retries 15 -results-every 3

# Overload-resilience acceptance: saturated admission must shed 429 +
# Retry-After, a mid-run disk outage must trip the store breaker into
# degraded serving (X-Kscope-Degraded on cached reads), and the run must
# still end with zero lost workers and oracle-equal results.
overload-smoke:
	$(GO) run ./cmd/kscope-load -scenario overload -workers 15 -seed 7 -drop 0.05 -fault 0.05

# Warm-standby failover acceptance, under the race detector: a replicated
# primary (AckFollower, chaos on both the fleet links and the replication
# link) is killed mid-soak, the follower is promoted, and the fleet fails
# over to it. Fails on any acked-but-lost session, any status outside the
# documented matrix (200/201/409/429/503 with Retry-After), a missing
# stale-epoch rejection of the zombie primary, or incremental-vs-oracle
# divergence on the promoted node.
failover-smoke:
	$(GO) run -race ./cmd/kscope-load -scenario failover -workers 25 -seed 7 -drop 0.15 -fault 0.1

# Sharded-fleet acceptance, under the race detector: three replicated
# shard pairs behind the consistent-hash router, two tenant crowds, chaos
# on every link (workers -> router, router -> every shard node, each
# shard's replication stream). Mid-soak one shard's primary is killed and
# its standby promoted, with the zombie left listening. Fails on any
# acked-but-lost session, any router-face status outside 200/201/409/429/
# 503 (or a shed without Retry-After), a missing stale-epoch fencing proof,
# or the merged /results (raw tally merge and quality-controlled gather)
# diverging from a single-node oracle holding the union of all sessions.
multinode-smoke:
	$(GO) run -race ./cmd/kscope-load -scenario multinode -workers 18 -seed 7 -drop 0.1 -fault 0.1

# Multi-tenant campaign churn acceptance, under the race detector: 8 tenant
# tests walk create -> Prepare (overlapping a neighbor's serving) -> serve
# under a shared churning crowd (vanish, partial sessions, re-recruitment)
# -> per-tenant differential oracle -> delete, with chaos on every
# participant link. Fails on oracle divergence, acked-upload loss, a
# serving-endpoint p99 over 1s during a neighbor's Prepare, missing churn,
# a blob/document leak after full teardown, or cross-tenant CAS dedup
# saving under the floor.
campaign-smoke:
	$(GO) run -race ./cmd/kscope-load -scenario campaign -tests 8 -per-test 4 -workers 20 -seed 11 -drop 0.05 -fault 0.05

# Adaptive sequential early-stopping acceptance, under the race detector:
# two strong-effect tenants and one evidence-free tenant run against an
# early-stopping server with a shared session budget below the combined
# fixed-n cost. Fails unless both effect tenants conclude early with the
# correct winner and a certified p-value bound, the null tenant runs to its
# full fixed target undecided, campaign-wide realized cost lands strictly
# below fixed-n within the budget, and the standing oracle/acked-loss/status
# audits hold.
earlystop-smoke:
	$(GO) run -race ./cmd/kscope-load -scenario earlystop -workers 16 -seed 1 -budget 60 -alpha 0.05

# Batched-upload throughput acceptance: the fleet ships gzip batches through
# POST /tests/{id}/sessions:batch, the run fails if the batched endpoint
# goes unused, if throughput lands under -min-rate, or if incremental
# results diverge from the from-scratch oracle.
throughput-smoke:
	$(GO) run ./cmd/kscope-load -scenario throughput -workers 40 -seed 7 -batch 10 -min-rate 25
