GO ?= go

.PHONY: build check vet test race bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The gate: static analysis plus the full suite under the race detector.
check: vet race

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
