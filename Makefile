GO ?= go
FUZZTIME ?= 15s

.PHONY: build check vet test race bench chaos fuzz-smoke cover cover-check bench-aggregator bench-server load-smoke overload-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The gate: static analysis plus the full suite under the race detector.
check: vet race

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Fault-injection suite: crash-recovery under injected filesystem faults,
# chaos-transport end-to-end flows, and graceful-drain shutdown. Run
# repeatedly — these tests mix randomized fault schedules with fixed
# seeds, and flakes here mean a real durability bug.
chaos:
	$(GO) test -count=3 -run 'Chaos|Crash|Fault|Torn|Quarantin|Recover|ENOSPC|Drain|Retr|Compact|SyncPolic' \
		./internal/store/ ./internal/netsim/ ./internal/extension/ ./cmd/kscope-server/

# Short fuzz passes over every fuzz target — the CI smoke stage. Crashing
# inputs land in testdata/fuzz/ as permanent regression seeds.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/htmlx/
	$(GO) test -run '^$$' -fuzz '^FuzzParseSelector$$' -fuzztime $(FUZZTIME) ./internal/cssx/
	$(GO) test -run '^$$' -fuzz '^FuzzParseStylesheet$$' -fuzztime $(FUZZTIME) ./internal/cssx/
	$(GO) test -run '^$$' -fuzz '^FuzzInjectSpec$$' -fuzztime $(FUZZTIME) ./internal/pageload/

# Full-repo coverage profile (published as a CI artifact).
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Coverage floors on the preparation pipeline's load-bearing packages and
# the overload guard.
cover-check: cover
	./scripts/cover_floor.sh internal/aggregator 85 internal/store 80 internal/guard 80

# The PR-3 acceptance benchmark pair; record results in
# BENCH_aggregator.json (on >=4 cores the parallel pipeline should show
# >=2x over the sequential reference — see that file's notes).
bench-aggregator:
	$(GO) test -run '^$$' -bench 'BenchmarkPrepare(Sequential|Parallel)$$' -benchmem -count=3 \
		./internal/aggregator/

# The PR-4 acceptance benchmark pair; record results in BENCH_server.json
# (the incremental results engine must stay >=10x over the from-scratch
# oracle at 10k stored sessions — see that file's notes).
bench-server:
	$(GO) test -run '^$$' -bench 'BenchmarkConclude(Scratch|Incremental)' -benchmem -benchtime 10x \
		./internal/server/

# Deterministic crowd soak through the real HTTP stack with chaos on: fails
# on any worker loss, any server status outside 200/201/409, or divergence
# between the incremental results engine and the from-scratch oracle.
load-smoke:
	$(GO) run ./cmd/kscope-load -workers 12 -seed 7 -drop 0.1 -fault 0.1 -retries 15 -results-every 3

# Overload-resilience acceptance: saturated admission must shed 429 +
# Retry-After, a mid-run disk outage must trip the store breaker into
# degraded serving (X-Kscope-Degraded on cached reads), and the run must
# still end with zero lost workers and oracle-equal results.
overload-smoke:
	$(GO) run ./cmd/kscope-load -scenario overload -workers 15 -seed 7 -drop 0.05 -fault 0.05
