GO ?= go

.PHONY: build check vet test race bench chaos

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The gate: static analysis plus the full suite under the race detector.
check: vet race

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Fault-injection suite: crash-recovery under injected filesystem faults,
# chaos-transport end-to-end flows, and graceful-drain shutdown. Run
# repeatedly — these tests mix randomized fault schedules with fixed
# seeds, and flakes here mean a real durability bug.
chaos:
	$(GO) test -count=3 -run 'Chaos|Crash|Fault|Torn|Quarantin|Recover|ENOSPC|Drain|Retr|Compact|SyncPolic' \
		./internal/store/ ./internal/netsim/ ./internal/extension/ ./cmd/kscope-server/
