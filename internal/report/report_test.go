package report

import (
	"strings"
	"testing"

	"kaleidoscope/internal/stats"
)

func TestBarChart(t *testing.T) {
	out, err := BarChart([]string{"alpha", "b"}, []float64{10, 5}, 20)
	if err != nil {
		t.Fatalf("BarChart: %v", err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Largest value fills the width; half value fills half.
	if !strings.Contains(lines[0], strings.Repeat("#", 20)) {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 10)) || strings.Contains(lines[1], strings.Repeat("#", 11)) {
		t.Errorf("line 1 = %q", lines[1])
	}
	// Labels aligned.
	if !strings.HasPrefix(lines[0], "alpha |") || !strings.HasPrefix(lines[1], "b     |") {
		t.Errorf("label alignment: %q / %q", lines[0], lines[1])
	}
}

func TestBarChartErrors(t *testing.T) {
	if _, err := BarChart([]string{"a"}, []float64{1, 2}, 20); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := BarChart(nil, nil, 20); err == nil {
		t.Error("empty should fail")
	}
	if _, err := BarChart([]string{"a"}, []float64{1}, 2); err == nil {
		t.Error("tiny width should fail")
	}
	if _, err := BarChart([]string{"a"}, []float64{-1}, 20); err == nil {
		t.Error("negative value should fail")
	}
}

func TestBarChartAllZero(t *testing.T) {
	out, err := BarChart([]string{"a", "b"}, []float64{0, 0}, 10)
	if err != nil {
		t.Fatalf("BarChart: %v", err)
	}
	if strings.Contains(out, "#") {
		t.Error("zero values should draw no bars")
	}
}

func TestPercentBars(t *testing.T) {
	out, err := PercentBars([]string{"left", "same", "right"}, []float64{0.2, 0.3, 0.5}, 20)
	if err != nil {
		t.Fatalf("PercentBars: %v", err)
	}
	if !strings.Contains(out, "50.0") || !strings.Contains(out, "20.0") {
		t.Errorf("out = %q", out)
	}
	if _, err := PercentBars([]string{"a"}, []float64{0.5, 0.5}, 20); err == nil {
		t.Error("mismatch should fail")
	}
}

func TestCDFPlot(t *testing.T) {
	fast, err := stats.NewECDF([]float64{1, 1.2, 1.4, 2})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := stats.NewECDF([]float64{3, 4, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	out, err := CDFPlot(map[string]*stats.ECDF{"fast": fast, "slow": slow}, 40, 8)
	if err != nil {
		t.Fatalf("CDFPlot: %v", err)
	}
	if !strings.Contains(out, "* = fast") || !strings.Contains(out, "o = slow") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "1.00 |") || !strings.Contains(out, "0.00 |") {
		t.Errorf("y axis missing:\n%s", out)
	}
	// The fast series reaches the top row before the slow one: the top
	// row should contain '*' strictly left of the first 'o'.
	topRow := strings.Split(out, "\n")[0]
	starIdx := strings.IndexByte(topRow, '*')
	oIdx := strings.IndexByte(topRow, 'o')
	if starIdx < 0 || oIdx < 0 || starIdx >= oIdx {
		t.Errorf("top row ordering wrong: %q", topRow)
	}
}

func TestCDFPlotErrors(t *testing.T) {
	if _, err := CDFPlot(nil, 40, 8); err == nil {
		t.Error("no series should fail")
	}
	cdf, _ := stats.NewECDF([]float64{1})
	if _, err := CDFPlot(map[string]*stats.ECDF{"x": cdf}, 5, 8); err == nil {
		t.Error("tiny plot should fail")
	}
	// Single-point series still plots (degenerate x-range handled).
	if _, err := CDFPlot(map[string]*stats.ECDF{"x": cdf}, 20, 5); err != nil {
		t.Errorf("single point: %v", err)
	}
}

func TestArrivalPlot(t *testing.T) {
	hours := []float64{1, 2, 4, 8, 12}
	counts := []int{10, 25, 50, 80, 100}
	out, err := ArrivalPlot(hours, counts, 30, 6)
	if err != nil {
		t.Fatalf("ArrivalPlot: %v", err)
	}
	if !strings.Contains(out, "100 |") {
		t.Errorf("y max missing:\n%s", out)
	}
	if !strings.Contains(out, "12.0h") {
		t.Errorf("x max missing:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Error("no points drawn")
	}
}

func TestArrivalPlotErrors(t *testing.T) {
	if _, err := ArrivalPlot(nil, nil, 30, 6); err == nil {
		t.Error("empty should fail")
	}
	if _, err := ArrivalPlot([]float64{1}, []int{1, 2}, 30, 6); err == nil {
		t.Error("mismatch should fail")
	}
	if _, err := ArrivalPlot([]float64{1}, []int{1}, 3, 3); err == nil {
		t.Error("tiny plot should fail")
	}
}
