// Package report renders Kaleidoscope's analysis artifacts as plain-text
// charts: CDF step curves (Fig. 5), grouped bar charts (Figs. 4, 8, 9),
// and cumulative arrival curves (Fig. 7a). The renderers are deterministic
// and width-bounded, so experiment output can be diffed across runs and
// embedded in terminal reports.
package report

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"kaleidoscope/internal/stats"
)

// barFill is the glyph run used for horizontal bars.
const barFill = "#"

// BarChart renders labeled horizontal bars scaled to maxWidth columns.
// Values must be non-negative; labels and values must align.
func BarChart(labels []string, values []float64, maxWidth int) (string, error) {
	if len(labels) != len(values) {
		return "", errors.New("report: labels/values length mismatch")
	}
	if len(labels) == 0 {
		return "", errors.New("report: empty chart")
	}
	if maxWidth < 8 {
		return "", errors.New("report: width too small")
	}
	var max float64
	for _, v := range values {
		if v < 0 {
			return "", fmt.Errorf("report: negative value %v", v)
		}
		if v > max {
			max = v
		}
	}
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	var b strings.Builder
	for i, l := range labels {
		bar := 0
		if max > 0 {
			bar = int(math.Round(values[i] / max * float64(maxWidth)))
		}
		fmt.Fprintf(&b, "%-*s |%s%s %.1f\n",
			labelWidth, l,
			strings.Repeat(barFill, bar),
			strings.Repeat(" ", maxWidth-bar),
			values[i])
	}
	return b.String(), nil
}

// PercentBars renders a distribution (values summing to ~1) as bars
// labeled with percentages.
func PercentBars(labels []string, shares []float64, maxWidth int) (string, error) {
	if len(labels) != len(shares) {
		return "", errors.New("report: labels/shares length mismatch")
	}
	values := make([]float64, len(shares))
	for i, s := range shares {
		values[i] = s * 100
	}
	return BarChart(labels, values, maxWidth)
}

// CDFPlot renders one or more ECDFs as an ASCII line plot of the given
// size. Each series is drawn with its own glyph; the legend maps glyphs to
// names.
func CDFPlot(series map[string]*stats.ECDF, width, height int) (string, error) {
	if len(series) == 0 {
		return "", errors.New("report: no series")
	}
	if width < 10 || height < 4 {
		return "", errors.New("report: plot too small")
	}
	// Shared x-range across series.
	minX, maxX := math.Inf(1), math.Inf(-1)
	names := make([]string, 0, len(series))
	for name, cdf := range series {
		names = append(names, name)
		if cdf.Min() < minX {
			minX = cdf.Min()
		}
		if cdf.Max() > maxX {
			maxX = cdf.Max()
		}
	}
	sortStrings(names)
	if maxX <= minX {
		maxX = minX + 1
	}
	glyphs := []byte{'*', 'o', '+', 'x', '@', '%'}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, name := range names {
		cdf := series[name]
		glyph := glyphs[si%len(glyphs)]
		for col := 0; col < width; col++ {
			x := minX + (maxX-minX)*float64(col)/float64(width-1)
			y := cdf.At(x) // 0..1
			row := height - 1 - int(math.Round(y*float64(height-1)))
			grid[row][col] = glyph
		}
	}
	var b strings.Builder
	for r, row := range grid {
		yVal := 1 - float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%4.2f |%s\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "     +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "      %-*.3g%*.3g\n", width/2, minX, width-width/2, maxX)
	for si, name := range names {
		fmt.Fprintf(&b, "      %c = %s\n", glyphs[si%len(glyphs)], name)
	}
	return b.String(), nil
}

// ArrivalPlot renders a cumulative count curve (elapsed hours on x, count
// on y) as an ASCII plot.
func ArrivalPlot(hours []float64, counts []int, width, height int) (string, error) {
	if len(hours) != len(counts) || len(hours) == 0 {
		return "", errors.New("report: bad arrival series")
	}
	if width < 10 || height < 4 {
		return "", errors.New("report: plot too small")
	}
	maxHours := hours[len(hours)-1]
	if maxHours <= 0 {
		maxHours = 1
	}
	maxCount := counts[len(counts)-1]
	if maxCount <= 0 {
		maxCount = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i := range hours {
		col := int(math.Round(hours[i] / maxHours * float64(width-1)))
		row := height - 1 - int(math.Round(float64(counts[i])/float64(maxCount)*float64(height-1)))
		if col >= 0 && col < width && row >= 0 && row < height {
			grid[row][col] = '*'
		}
	}
	var b strings.Builder
	for r, row := range grid {
		countVal := float64(maxCount) * (1 - float64(r)/float64(height-1))
		fmt.Fprintf(&b, "%5.0f |%s\n", countVal, string(row))
	}
	fmt.Fprintf(&b, "      +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "       0h%*s\n", width-2, fmt.Sprintf("%.1fh", maxHours))
	return b.String(), nil
}

// sortStrings is a tiny insertion sort (n is the series count, <= 6).
func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
