package earlystop

import (
	"math/rand"
	"testing"

	"kaleidoscope/internal/questionnaire"
)

// The headline honesty artifact: seeded Monte-Carlo calibration of the
// sequential engine. Formula trust is not enough — these tests *measure*
// the realized false-stop rate on thousands of simulated null campaigns
// and the realized power and cost on effect campaigns, and fail if either
// drifts outside the guarantees DESIGN §6i advertises. They run under
// -race in CI as part of `make check`.

const (
	calibAlpha    = 0.05
	calibStreams  = 2   // two questions on one real page
	calibHorizon  = 300 // sessions per simulated campaign
	nullCampaigns = 2000
	fxCampaigns   = 1000
)

// simulate runs one campaign: sessions of one decisive vote per stream,
// each Left with probability pLeft, until decision or horizon. It returns
// the decision (nil if the campaign exhausted its budget undecided) and
// the number of sessions spent.
func simulate(t *testing.T, rng *rand.Rand, pLeft float64) (*Decision, int) {
	t.Helper()
	s, err := New(Config{Alpha: calibAlpha, Streams: calibStreams})
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= calibHorizon; n++ {
		votes := make([]Vote, calibStreams)
		for q := 0; q < calibStreams; q++ {
			c := questionnaire.ChoiceRight
			if rng.Float64() < pLeft {
				c = questionnaire.ChoiceLeft
			}
			votes[q] = Vote{PageID: "p1", QuestionID: string(rune('a' + q)), Choice: c}
		}
		if d := s.Fold(votes); d != nil {
			return d, n
		}
	}
	return nil, calibHorizon
}

// Null calibration: campaigns with no true preference must be falsely
// declared decided at most alpha of the time (plus 3-sigma Monte-Carlo
// tolerance). Ville's inequality promises <= alpha at any horizon; the
// realized rate at a finite horizon is typically well below it.
func TestCalibrationNullFalseStopRate(t *testing.T) {
	falseStops := 0
	for c := 0; c < nullCampaigns; c++ {
		rng := rand.New(rand.NewSource(int64(1000 + c)))
		if d, _ := simulate(t, rng, 0.5); d != nil {
			falseStops++
		}
	}
	rate := float64(falseStops) / float64(nullCampaigns)
	// 3-sigma binomial tolerance on top of the design alpha.
	tol := 3 * 0.00487 // sqrt(0.05*0.95/2000)
	if rate > calibAlpha+tol {
		t.Fatalf("realized false-stop rate %.4f (%d/%d) exceeds alpha %.2f + tol %.4f",
			rate, falseStops, nullCampaigns, calibAlpha, tol)
	}
	t.Logf("null calibration: false-stop rate %.4f (%d/%d), alpha %.2f",
		rate, falseStops, nullCampaigns, calibAlpha)
}

// Effect calibration: campaigns with a strong true preference (75% Left,
// roughly the margin the paper's font-size study shows) must decide
// early, decide correctly, and spend far less than the fixed-n horizon.
func TestCalibrationEffectPowerAndCost(t *testing.T) {
	decided, wrong, totalCost := 0, 0, 0
	for c := 0; c < fxCampaigns; c++ {
		rng := rand.New(rand.NewSource(int64(9000 + c)))
		d, n := simulate(t, rng, 0.75)
		totalCost += n
		if d != nil {
			decided++
			if d.Winner != questionnaire.ChoiceLeft {
				wrong++
			}
		}
	}
	power := float64(decided) / float64(fxCampaigns)
	meanCost := float64(totalCost) / float64(fxCampaigns)
	if power < 0.95 {
		t.Fatalf("power %.3f < 0.95 at pLeft=0.75, horizon %d", power, calibHorizon)
	}
	if wrong > 0 {
		t.Fatalf("%d/%d decided campaigns picked the wrong winner", wrong, decided)
	}
	// Cost-savings floor: the sequential engine must use under a third of
	// the fixed-n budget on average for this effect size.
	if meanCost > float64(calibHorizon)/3 {
		t.Fatalf("mean cost %.1f sessions is not < horizon/3 (%d)", meanCost, calibHorizon/3)
	}
	t.Logf("effect calibration: power %.3f, 0 wrong winners, mean cost %.1f vs fixed-n %d (%.1fx saving)",
		power, meanCost, calibHorizon, float64(calibHorizon)/meanCost)
}

// Weak effects must not flip to the wrong side: with pLeft=0.6 the engine
// may or may not decide within the horizon, but every decision it does
// make must name Left.
func TestCalibrationWeakEffectNeverWrong(t *testing.T) {
	decided, wrong := 0, 0
	for c := 0; c < 500; c++ {
		rng := rand.New(rand.NewSource(int64(40000 + c)))
		if d, _ := simulate(t, rng, 0.6); d != nil {
			decided++
			if d.Winner != questionnaire.ChoiceLeft {
				wrong++
			}
		}
	}
	if wrong > 0 {
		t.Fatalf("%d/%d weak-effect decisions picked the wrong winner", wrong, decided)
	}
	t.Logf("weak effect (pLeft=0.6): %d/500 decided, 0 wrong", decided)
}
