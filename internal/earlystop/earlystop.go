// Package earlystop is the adaptive sequential-significance engine: it
// watches the stream of crowd votes a test accumulates and declares the
// test *concluded* the moment a winner is statistically decided, so the
// remaining worker budget can be spent on tests that are still in doubt.
//
// # Statistical design
//
// Each (real page, question) pair is one evidence stream. A session
// contributes at most one vote per stream — its choice on that question:
// Left counts as a success, Right as a failure, Same (and missing
// answers) abstain. Under the no-difference null every decisive vote is a
// fair coin flip, so each stream carries a Bernoulli(1/2) sign test.
//
// Evidence is measured by the Beta(1,1)-mixture e-process
// (stats.LogBetaMixtureE): an always-valid nonnegative martingale with
// initial value 1 under the null. By Ville's inequality the probability
// that a null stream's running maximum ever reaches 1/alpha is at most
// alpha — at any sample size, under continuous monitoring. The engine
// monitors the *family* of streams and latches a decision the first time
// any stream's running-max log e-value crosses log(streams/alpha); the
// Bonferroni factor makes the family-wise false-stop rate at most alpha
// regardless of dependence between streams. This is why a mixture
// e-process was chosen over an O'Brien–Fleming alpha-spending schedule:
// spending bounds need a maximum sample size fixed in advance, while a
// crowd campaign's size is exactly what early stopping makes variable.
//
// The reported PValueBound is min(1, streams * exp(-maxLogE)) over the
// deciding stream's running maximum — an always-valid p-value, monotone
// non-increasing as evidence accumulates.
//
// # Determinism
//
// State is a pure fold over vote counts: two fold sequences that produce
// the same cumulative per-stream tallies at every step produce the same
// decision. Vote order within a session and the relative order of
// equal-count sessions never matter. (Order of *unequal* sessions can
// matter — sequential tests stop on the path, not the endpoint — which is
// precisely what Ville's inequality licenses.)
//
// The decision, once latched, is permanent: later votes, rebuilds, and
// state invalidation cannot un-decide a test.
package earlystop

import (
	"errors"
	"fmt"
	"sort"

	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/stats"
)

// Config parameterises one test's sequential engine.
type Config struct {
	// Alpha is the family-wise false-stop rate: the probability that a
	// test with no true preference on any question is ever declared
	// decided. Required, in (0, 1).
	Alpha float64
	// Streams is the size of the evidence family — the number of
	// (real page, question) pairs the test can collect votes on. The
	// decision boundary is log(Streams/Alpha). Required, >= 1; votes for
	// keys beyond the declared family are still folded but the threshold
	// never shrinks, so overstating Streams is safe (conservative) while
	// understating it is not.
	Streams int
	// MinVotes is the minimum number of decisive votes a stream must hold
	// before it may latch a decision. 0 means no floor; the e-value
	// boundary alone already prevents trigger-happy small-n stops.
	MinVotes int
	// Mixture is the Beta(a, a) mixture parameter. 0 means the default
	// uniform mixture (a = 1).
	Mixture float64
}

func (c Config) withDefaults() Config {
	if c.Mixture == 0 {
		c.Mixture = 1
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	c = c.withDefaults()
	if !(c.Alpha > 0 && c.Alpha < 1) {
		return errors.New("earlystop: alpha must be in (0, 1)")
	}
	if c.Streams < 1 {
		return errors.New("earlystop: streams must be >= 1")
	}
	if c.MinVotes < 0 {
		return errors.New("earlystop: min votes must be >= 0")
	}
	if !(c.Mixture > 0) {
		return errors.New("earlystop: mixture must be positive")
	}
	return nil
}

// StreamKey identifies one evidence stream: a question asked about a real
// comparison page.
type StreamKey struct {
	PageID     string
	QuestionID string
}

// Vote is one session's answer on one stream.
type Vote struct {
	PageID     string
	QuestionID string
	Choice     questionnaire.Choice
}

// Decision is the latched outcome of a decided test.
type Decision struct {
	// Winner is the side the crowd decided for on the deciding stream:
	// questionnaire.ChoiceLeft or questionnaire.ChoiceRight.
	Winner questionnaire.Choice `json:"winner"`
	// PageID and QuestionID name the deciding stream.
	PageID     string `json:"page_id"`
	QuestionID string `json:"question_id"`
	// PValueBound is the always-valid family-wise p-value bound at latch
	// time: min(1, streams * exp(-maxLogE)).
	PValueBound float64 `json:"p_value_bound"`
	// NUsed is the number of decisive votes the deciding stream had
	// consumed when the boundary was crossed.
	NUsed int `json:"n_used"`
	// Sessions is the number of sessions folded into the engine when the
	// decision latched.
	Sessions int `json:"sessions"`
	// Streams is the family size the Bonferroni correction used.
	Streams int `json:"streams"`
}

func (d Decision) String() string {
	return fmt.Sprintf("winner=%s page=%s question=%s p<=%.4g n=%d sessions=%d",
		d.Winner, d.PageID, d.QuestionID, d.PValueBound, d.NUsed, d.Sessions)
}

// stream is the running state of one evidence stream.
type stream struct {
	left, right int
	maxLogE     float64
}

func (st *stream) n() int { return st.left + st.right }

// State is the sequential engine for one test. It is not safe for
// concurrent use; callers serialise access (the server tracker holds its
// own mutex, mirroring the results accumulator).
type State struct {
	cfg       Config
	threshold float64
	streams   map[StreamKey]*stream
	sessions  int
	decision  *Decision
}

// New builds an engine. The config must validate.
func New(cfg Config) (*State, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	th, err := stats.SequentialThreshold(cfg.Alpha, cfg.Streams)
	if err != nil {
		return nil, err
	}
	return &State{
		cfg:       cfg,
		threshold: th,
		streams:   make(map[StreamKey]*stream),
	}, nil
}

// Fold incorporates one session's votes and returns the latched decision
// if the test is (now or previously) decided, else nil. Votes on the same
// stream within one session are all counted (the extension asks each
// question once, so in practice there is one per stream); Same votes
// abstain. Folding after a decision is a no-op that returns the existing
// decision — evidence accounting stops when spending stops.
func (s *State) Fold(votes []Vote) *Decision {
	if s.decision != nil {
		return s.decision
	}
	s.sessions++
	// Apply all counts first, then evaluate boundaries in sorted key
	// order: the outcome depends only on the cumulative tallies after the
	// session, never on the order votes appear inside it.
	touched := make(map[StreamKey]bool, len(votes))
	for _, v := range votes {
		var dl, dr int
		switch v.Choice {
		case questionnaire.ChoiceLeft:
			dl = 1
		case questionnaire.ChoiceRight:
			dr = 1
		default:
			continue
		}
		key := StreamKey{PageID: v.PageID, QuestionID: v.QuestionID}
		st, ok := s.streams[key]
		if !ok {
			st = &stream{}
			s.streams[key] = st
		}
		st.left += dl
		st.right += dr
		touched[key] = true
	}
	keys := make([]StreamKey, 0, len(touched))
	for k := range touched {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].PageID != keys[j].PageID {
			return keys[i].PageID < keys[j].PageID
		}
		return keys[i].QuestionID < keys[j].QuestionID
	})
	for _, key := range keys {
		st := s.streams[key]
		logE, err := stats.LogBetaMixtureE(st.left, st.n(), s.cfg.Mixture)
		if err != nil {
			continue // unreachable: counts are non-negative by construction
		}
		if logE > st.maxLogE {
			st.maxLogE = logE
		}
		if s.decision == nil && st.maxLogE >= s.threshold && st.n() >= s.cfg.MinVotes {
			winner := questionnaire.ChoiceLeft
			if st.right > st.left {
				winner = questionnaire.ChoiceRight
			}
			s.decision = &Decision{
				Winner:      winner,
				PageID:      key.PageID,
				QuestionID:  key.QuestionID,
				PValueBound: stats.EValuePBound(st.maxLogE, s.cfg.Streams),
				NUsed:       st.n(),
				Sessions:    s.sessions,
				Streams:     s.cfg.Streams,
			}
			// Keep updating running maxima for the remaining touched
			// streams this session? No: spending stops at the decision.
			break
		}
	}
	return s.decision
}

// Decision returns the latched decision, or nil while undecided. The
// returned value is a copy; mutating it does not affect the engine.
func (s *State) Decision() *Decision {
	if s.decision == nil {
		return nil
	}
	d := *s.decision
	return &d
}

// PBound returns the current best always-valid family-wise p-value bound
// across all streams (1 when no evidence has accumulated).
func (s *State) PBound() float64 {
	best := 1.0
	for _, st := range s.streams {
		if p := stats.EValuePBound(st.maxLogE, s.cfg.Streams); p < best {
			best = p
		}
	}
	return best
}

// Sessions returns the number of sessions folded so far.
func (s *State) Sessions() int { return s.sessions }

// Tally returns the decisive-vote counts for one stream (zeros if the
// stream has no votes).
func (s *State) Tally(key StreamKey) (left, right int) {
	if st, ok := s.streams[key]; ok {
		return st.left, st.right
	}
	return 0, 0
}

// Streams returns the keys of every stream that has received at least one
// decisive vote, in sorted order.
func (s *State) Streams() []StreamKey {
	keys := make([]StreamKey, 0, len(s.streams))
	for k := range s.streams {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].PageID != keys[j].PageID {
			return keys[i].PageID < keys[j].PageID
		}
		return keys[i].QuestionID < keys[j].QuestionID
	})
	return keys
}
