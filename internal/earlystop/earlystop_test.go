package earlystop

import (
	"math"
	"testing"

	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/stats"
)

func mustNew(t *testing.T, cfg Config) *State {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return s
}

func vote(page, q string, c questionnaire.Choice) []Vote {
	return []Vote{{PageID: page, QuestionID: q, Choice: c}}
}

func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{
		{Alpha: 0, Streams: 1},
		{Alpha: 1, Streams: 1},
		{Alpha: -0.1, Streams: 1},
		{Alpha: math.NaN(), Streams: 1},
		{Alpha: 0.05, Streams: 0},
		{Alpha: 0.05, Streams: -2},
		{Alpha: 0.05, Streams: 1, MinVotes: -1},
		{Alpha: 0.05, Streams: 1, Mixture: -1},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v): want error", cfg)
		}
	}
	if _, err := New(Config{Alpha: 0.05, Streams: 1}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// Unanimous evidence on a single stream must cross the alpha=0.05
// boundary at exactly n=8: E_8 = 2^8/9 ≈ 28.4 >= 20, while E_7 = 16 < 20.
func TestUnanimousDecidesAtKnownN(t *testing.T) {
	s := mustNew(t, Config{Alpha: 0.05, Streams: 1})
	for i := 1; i <= 7; i++ {
		if d := s.Fold(vote("p1", "q0", questionnaire.ChoiceLeft)); d != nil {
			t.Fatalf("decided prematurely at session %d: %+v", i, d)
		}
	}
	d := s.Fold(vote("p1", "q0", questionnaire.ChoiceLeft))
	if d == nil {
		t.Fatal("undecided after 8 unanimous votes")
	}
	if d.Winner != questionnaire.ChoiceLeft || d.NUsed != 8 || d.Sessions != 8 {
		t.Fatalf("decision = %+v", d)
	}
	if d.PageID != "p1" || d.QuestionID != "q0" || d.Streams != 1 {
		t.Fatalf("decision stream = %+v", d)
	}
	want := 9.0 / 256.0
	if math.Abs(d.PValueBound-want) > 1e-12 {
		t.Fatalf("p bound = %v, want %v", d.PValueBound, want)
	}
	if d.PValueBound > 0.05 {
		t.Fatalf("latched with p bound %v > alpha", d.PValueBound)
	}
}

func TestRightWinner(t *testing.T) {
	s := mustNew(t, Config{Alpha: 0.05, Streams: 1})
	var d *Decision
	for i := 0; i < 8; i++ {
		d = s.Fold(vote("p1", "q0", questionnaire.ChoiceRight))
	}
	if d == nil || d.Winner != questionnaire.ChoiceRight {
		t.Fatalf("decision = %+v, want right winner", d)
	}
}

func TestSameVotesAbstain(t *testing.T) {
	s := mustNew(t, Config{Alpha: 0.05, Streams: 1})
	for i := 0; i < 500; i++ {
		if d := s.Fold(vote("p1", "q0", questionnaire.ChoiceSame)); d != nil {
			t.Fatalf("ties produced a decision: %+v", d)
		}
	}
	if l, r := s.Tally(StreamKey{PageID: "p1", QuestionID: "q0"}); l != 0 || r != 0 {
		t.Fatalf("ties counted as decisive: %d/%d", l, r)
	}
	if p := s.PBound(); p != 1 {
		t.Fatalf("p bound with no decisive votes = %v, want 1", p)
	}
}

func TestBalancedVotesNeverDecide(t *testing.T) {
	s := mustNew(t, Config{Alpha: 0.05, Streams: 1})
	for i := 0; i < 400; i++ {
		c := questionnaire.ChoiceLeft
		if i%2 == 1 {
			c = questionnaire.ChoiceRight
		}
		if d := s.Fold(vote("p1", "q0", c)); d != nil {
			t.Fatalf("balanced stream decided at session %d: %+v", i+1, d)
		}
	}
}

// Bonferroni: with a family of 4 streams the boundary rises to log(80),
// so unanimity needs n=10 (2^10/11 ≈ 93) instead of n=8.
func TestFamilyThresholdRises(t *testing.T) {
	s := mustNew(t, Config{Alpha: 0.05, Streams: 4})
	var d *Decision
	n := 0
	for d == nil && n < 20 {
		n++
		d = s.Fold(vote("p1", "q0", questionnaire.ChoiceLeft))
	}
	if d == nil || n != 10 {
		t.Fatalf("decided at n=%d (%+v), want 10", n, d)
	}
	if d.Streams != 4 {
		t.Fatalf("decision streams = %d", d.Streams)
	}
	want := 4 * 11.0 / 1024.0
	if math.Abs(d.PValueBound-want) > 1e-12 {
		t.Fatalf("p bound = %v, want %v", d.PValueBound, want)
	}
}

func TestMinVotesFloor(t *testing.T) {
	s := mustNew(t, Config{Alpha: 0.05, Streams: 1, MinVotes: 12})
	var d *Decision
	n := 0
	for d == nil && n < 30 {
		n++
		d = s.Fold(vote("p1", "q0", questionnaire.ChoiceLeft))
	}
	if d == nil || n != 12 || d.NUsed != 12 {
		t.Fatalf("decided at n=%d (%+v), want the MinVotes floor 12", n, d)
	}
}

func TestDecisionLatches(t *testing.T) {
	s := mustNew(t, Config{Alpha: 0.05, Streams: 1})
	for i := 0; i < 8; i++ {
		s.Fold(vote("p1", "q0", questionnaire.ChoiceLeft))
	}
	first := s.Decision()
	if first == nil {
		t.Fatal("undecided")
	}
	// A flood of contrary evidence cannot un-decide or mutate the latch.
	for i := 0; i < 100; i++ {
		if d := s.Fold(vote("p1", "q0", questionnaire.ChoiceRight)); d == nil || *d != *first {
			t.Fatalf("latched decision changed: %+v -> %+v", first, d)
		}
	}
	if s.Sessions() != first.Sessions {
		t.Fatalf("sessions advanced past the latch: %d", s.Sessions())
	}
	// Decision() returns a copy.
	cp := s.Decision()
	cp.NUsed = -1
	if s.Decision().NUsed == -1 {
		t.Fatal("Decision() leaked internal state")
	}
}

func TestMultiStreamSessionsAndAccessors(t *testing.T) {
	s := mustNew(t, Config{Alpha: 0.05, Streams: 2})
	for i := 0; i < 5; i++ {
		s.Fold([]Vote{
			{PageID: "p1", QuestionID: "q0", Choice: questionnaire.ChoiceLeft},
			{PageID: "p1", QuestionID: "q1", Choice: questionnaire.ChoiceRight},
		})
	}
	keys := s.Streams()
	if len(keys) != 2 || keys[0] != (StreamKey{"p1", "q0"}) || keys[1] != (StreamKey{"p1", "q1"}) {
		t.Fatalf("streams = %+v", keys)
	}
	if l, r := s.Tally(keys[0]); l != 5 || r != 0 {
		t.Fatalf("q0 tally = %d/%d", l, r)
	}
	if l, r := s.Tally(keys[1]); l != 0 || r != 5 {
		t.Fatalf("q1 tally = %d/%d", l, r)
	}
	if s.Sessions() != 5 {
		t.Fatalf("sessions = %d", s.Sessions())
	}
	if l, r := s.Tally(StreamKey{"absent", "q9"}); l != 0 || r != 0 {
		t.Fatalf("absent stream tally = %d/%d", l, r)
	}
}

// The engine's p bound must agree with recomputing the e-value by hand.
func TestPBoundMatchesStats(t *testing.T) {
	s := mustNew(t, Config{Alpha: 0.01, Streams: 3})
	votes := []questionnaire.Choice{
		questionnaire.ChoiceLeft, questionnaire.ChoiceLeft, questionnaire.ChoiceRight,
		questionnaire.ChoiceLeft, questionnaire.ChoiceLeft, questionnaire.ChoiceLeft,
	}
	k, n := 0, 0
	maxLogE := 0.0
	for _, c := range votes {
		s.Fold(vote("p1", "q0", c))
		n++
		if c == questionnaire.ChoiceLeft {
			k++
		}
		logE, _ := stats.LogBetaMixtureE(k, n, 1)
		if logE > maxLogE {
			maxLogE = logE
		}
		want := stats.EValuePBound(maxLogE, 3)
		if got := s.PBound(); math.Abs(got-want) > 1e-12 {
			t.Fatalf("after %d votes: PBound = %v, want %v", n, got, want)
		}
	}
}

// Within a session, vote order must not matter; across sessions, swapping
// sessions with equal vote multisets must not matter.
func TestFoldOrderInvariance(t *testing.T) {
	mk := func() *State { return mustNew(t, Config{Alpha: 0.05, Streams: 2}) }
	sessA := []Vote{
		{PageID: "p1", QuestionID: "q0", Choice: questionnaire.ChoiceLeft},
		{PageID: "p1", QuestionID: "q1", Choice: questionnaire.ChoiceLeft},
	}
	sessArev := []Vote{sessA[1], sessA[0]}
	sessB := []Vote{
		{PageID: "p1", QuestionID: "q0", Choice: questionnaire.ChoiceRight},
		{PageID: "p1", QuestionID: "q1", Choice: questionnaire.ChoiceLeft},
	}

	run := func(sessions [][]Vote) *Decision {
		s := mk()
		var d *Decision
		for _, votes := range sessions {
			d = s.Fold(votes)
		}
		return d
	}

	base := run([][]Vote{sessA, sessA, sessB, sessA, sessA, sessA, sessA, sessA, sessA, sessA, sessA})
	inner := run([][]Vote{sessArev, sessA, sessB, sessArev, sessA, sessArev, sessA, sessA, sessArev, sessA, sessA})
	if base == nil || inner == nil || *base != *inner {
		t.Fatalf("within-session order changed the outcome: %+v vs %+v", base, inner)
	}
	// Swap two equal-multiset sessions (positions 0 and 1).
	swapped := run([][]Vote{sessArev, sessA, sessB, sessA, sessA, sessA, sessA, sessA, sessA, sessA, sessA})
	if *base != *swapped {
		t.Fatalf("equal-count session swap changed the outcome: %+v vs %+v", base, swapped)
	}
}
