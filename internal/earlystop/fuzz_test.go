package earlystop

import (
	"math"
	"testing"

	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/stats"
)

// Fuzz the sequential boundary computation end-to-end: arbitrary vote
// streams must never panic, the always-valid p bound must be monotone
// non-increasing in evidence, and the decision must be stable under
// within-session vote reordering and equal-count session swaps.
func FuzzSequentialFold(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint16(50), uint8(2))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint16(50), uint8(1))
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2, 1}, uint16(10), uint8(4))
	f.Add([]byte{}, uint16(999), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, alphaMilli uint16, streamsRaw uint8) {
		alpha := (float64(alphaMilli%999) + 0.5) / 1000 // (0, 1)
		nStreams := int(streamsRaw%4) + 1

		// Each pair of bytes is one session with two votes; choice and
		// stream index are carved out of each byte.
		decode := func(b byte) Vote {
			choices := []questionnaire.Choice{questionnaire.ChoiceLeft, questionnaire.ChoiceRight, questionnaire.ChoiceSame}
			return Vote{
				PageID:     "p1",
				QuestionID: string(rune('a' + int(b>>2)%nStreams)),
				Choice:     choices[int(b)%3],
			}
		}
		var sessions [][]Vote
		for i := 0; i+1 < len(data); i += 2 {
			sessions = append(sessions, []Vote{decode(data[i]), decode(data[i+1])})
		}

		run := func(order [][]Vote) (*Decision, []float64) {
			s, err := New(Config{Alpha: alpha, Streams: nStreams})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			var bounds []float64
			for _, votes := range order {
				s.Fold(votes)
				bounds = append(bounds, s.PBound())
			}
			return s.Decision(), bounds
		}

		base, bounds := run(sessions)

		// Monotone non-increasing p bound, always in [0, 1].
		prev := 1.0
		for i, p := range bounds {
			if math.IsNaN(p) || p < 0 || p > 1 {
				t.Fatalf("fold %d: p bound out of range: %v", i, p)
			}
			if p > prev+1e-15 {
				t.Fatalf("fold %d: p bound increased %v -> %v", i, prev, p)
			}
			prev = p
		}

		// A latched decision must certify the configured alpha.
		if base != nil {
			if base.PValueBound > alpha+1e-12 {
				t.Fatalf("decision p bound %v exceeds alpha %v", base.PValueBound, alpha)
			}
			if base.Winner != questionnaire.ChoiceLeft && base.Winner != questionnaire.ChoiceRight {
				t.Fatalf("decision winner %q is not a side", base.Winner)
			}
			if base.NUsed <= 0 || base.Sessions <= 0 || base.Sessions > len(sessions) {
				t.Fatalf("decision accounting out of range: %+v", base)
			}
		}

		// Within-session reorder: reverse every session's votes.
		reversed := make([][]Vote, len(sessions))
		for i, votes := range sessions {
			reversed[i] = []Vote{votes[1], votes[0]}
		}
		if got, _ := run(reversed); !decisionsEqual(base, got) {
			t.Fatalf("within-session reorder changed outcome: %+v vs %+v", base, got)
		}

		// Equal-count session swap: swap each adjacent pair whose vote
		// multisets are equal.
		swapped := append([][]Vote(nil), sessions...)
		for i := 0; i+1 < len(swapped); i += 2 {
			if sameMultiset(swapped[i], swapped[i+1]) {
				swapped[i], swapped[i+1] = swapped[i+1], swapped[i]
			}
		}
		if got, _ := run(swapped); !decisionsEqual(base, got) {
			t.Fatalf("equal-count swap changed outcome: %+v vs %+v", base, got)
		}
	})
}

func decisionsEqual(a, b *Decision) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}

func sameMultiset(a, b []Vote) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[Vote]int, len(a))
	for _, v := range a {
		counts[v]++
	}
	for _, v := range b {
		counts[v]--
	}
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

// Fuzz the raw e-value computation: valid inputs give finite, symmetric
// log e-values; invalid inputs error instead of returning NaN.
func FuzzLogBetaMixtureE(f *testing.F) {
	f.Add(5, 10, 1.0)
	f.Add(0, 0, 1.0)
	f.Add(1000, 1000, 0.5)
	f.Add(-1, 5, 1.0)
	f.Add(3, 2, math.NaN())
	f.Fuzz(func(t *testing.T, k, n int, a float64) {
		logE, err := stats.LogBetaMixtureE(k, n, a)
		if err != nil {
			return
		}
		if math.IsNaN(logE) || math.IsInf(logE, 0) {
			t.Fatalf("LogBetaMixtureE(%d,%d,%v) = %v, want finite", k, n, a, logE)
		}
		mirror, err := stats.LogBetaMixtureE(n-k, n, a)
		if err != nil {
			t.Fatalf("mirror errored: %v", err)
		}
		// Evidence against p=1/2 is symmetric in the winning side; for
		// huge n the Lgamma roundoff grows with the magnitude of logE.
		tolerance := 1e-9 * (1 + math.Abs(logE))
		if math.Abs(logE-mirror) > tolerance {
			t.Fatalf("asymmetric: logE(%d,%d)=%v vs logE(%d,%d)=%v", k, n, logE, n-k, n, mirror)
		}
	})
}
