package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/crowd"
	"kaleidoscope/internal/extension"
	"kaleidoscope/internal/params"
	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/rank"
	"kaleidoscope/internal/server"
	"kaleidoscope/internal/webgen"
)

// fontStudy builds the paper's §IV-A font-size study at a reduced scale.
func fontStudy(t *testing.T, workers int, rng *rand.Rand) *Study {
	t.Helper()
	sizes := []int{10, 12, 22}
	test := &params.Test{
		TestID:          fmt.Sprintf("font-%d", rng.Int63()),
		WebpageNum:      len(sizes),
		TestDescription: "What is the best font size for online reading?",
		ParticipantNum:  workers,
		Questions:       []string{"Which webpage's font size is more suitable (easier) for reading?"},
	}
	sites := make(map[string]*webgen.Site)
	for _, pt := range sizes {
		path := fmt.Sprintf("wiki-%dpt", pt)
		test.Webpages = append(test.Webpages, params.Webpage{
			WebPath:     path,
			WebPageLoad: params.PageLoadSpec{UniformMillis: 3000},
			WebMainFile: "index.html",
		})
		sites[path] = webgen.WikiArticle(webgen.WikiConfig{Seed: 42, FontSizePt: pt})
	}
	pool, err := crowd.TrustedCrowd(workers*2, rng)
	if err != nil {
		t.Fatal(err)
	}
	return &Study{
		Params:      test,
		Sites:       sites,
		Answer:      extension.AnswerFontSize(),
		Pool:        pool,
		TrustedOnly: true,
		Controls: []aggregator.ControlPair{{
			Name:     "extreme",
			Left:     webgen.WikiArticle(webgen.WikiConfig{Seed: 42, FontSizePt: 4}),
			Right:    webgen.WikiArticle(webgen.WikiConfig{Seed: 42, FontSizePt: 12}),
			Expected: questionnaire.ChoiceRight,
		}},
	}
}

func TestStudyValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	study := fontStudy(t, 5, rng)
	if err := study.Validate(); err != nil {
		t.Fatalf("valid study: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Study)
	}{
		{"no params", func(s *Study) { s.Params = nil }},
		{"bad params", func(s *Study) { s.Params = &params.Test{} }},
		{"no sites", func(s *Study) { s.Sites = nil }},
		{"no answer", func(s *Study) { s.Answer = nil }},
		{"no pool", func(s *Study) { s.Pool = nil }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := fontStudy(t, 5, rng)
			tc.mutate(s)
			if err := s.Validate(); err == nil {
				t.Error("should fail")
			}
		})
	}
}

func TestRunStudyEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	engine, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	study := fontStudy(t, 12, rng)
	outcome, err := engine.RunStudy(study, rng)
	if err != nil {
		t.Fatalf("RunStudy: %v", err)
	}
	if len(outcome.Sessions) != 12 {
		t.Fatalf("sessions = %d", len(outcome.Sessions))
	}
	if outcome.Raw == nil || outcome.Filtered == nil {
		t.Fatal("missing results")
	}
	if outcome.Raw.Workers != 12 {
		t.Errorf("raw workers = %d", outcome.Raw.Workers)
	}
	if !outcome.Filtered.Filtered {
		t.Error("filtered results not marked filtered")
	}
	if outcome.Filtered.Workers+outcome.Filtered.DroppedWorkers != 12 {
		t.Errorf("filtered accounting: %d + %d != 12",
			outcome.Filtered.Workers, outcome.Filtered.DroppedWorkers)
	}
	// Recruitment metadata present and plausible.
	if cost := outcome.Recruitment.TotalCostUSD; cost < 1.19 || cost > 1.21 {
		t.Errorf("cost = %v, want ~$1.20", cost)
	}
	// Every session covers all pages: C(3,2)=3 responses + behaviors for
	// 3 real + 2 control pages.
	for _, s := range outcome.Sessions {
		if len(s.Responses) != 3 {
			t.Errorf("worker %s responses = %d", s.WorkerID, len(s.Responses))
		}
		if len(s.Behaviors) != 5 {
			t.Errorf("worker %s behaviors = %d", s.WorkerID, len(s.Behaviors))
		}
		if len(s.Controls) != 2 {
			t.Errorf("worker %s controls = %d", s.WorkerID, len(s.Controls))
		}
	}
}

func TestRunStudyErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	engine, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.RunStudy(&Study{}, rng); err == nil {
		t.Error("invalid study should fail")
	}
	study := fontStudy(t, 5, rng)
	if _, err := engine.RunStudy(study, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestWorkerRankings(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	engine, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	study := fontStudy(t, 30, rng)
	outcome, err := engine.RunStudy(study, rng)
	if err != nil {
		t.Fatal(err)
	}
	rankings, err := WorkerRankings(outcome, "q0", 3)
	if err != nil {
		t.Fatalf("WorkerRankings: %v", err)
	}
	if len(rankings) != 30 {
		t.Errorf("rankings = %d", len(rankings))
	}
	// Aggregate: 12pt (index 1) should beat 22pt (index 2) on Borda.
	scores, err := rank.BordaScores(rankings, 3)
	if err != nil {
		t.Fatal(err)
	}
	if scores[1] <= scores[2] {
		t.Errorf("12pt score %v should beat 22pt %v", scores[1], scores[2])
	}
	// Filtered variant also works.
	filteredOutcome := outcome.FilteredSessionsOutcome()
	if len(filteredOutcome.Sessions) != outcome.Filtered.Workers {
		t.Errorf("kept sessions = %d, want %d", len(filteredOutcome.Sessions), outcome.Filtered.Workers)
	}
	if outcome.Filtered.Workers >= 2 {
		if _, err := WorkerRankings(filteredOutcome, "q0", 3); err != nil {
			t.Errorf("filtered rankings: %v", err)
		}
	}
}

func TestWorkerRankingsErrors(t *testing.T) {
	if _, err := WorkerRankings(nil, "q0", 3); err == nil {
		t.Error("nil outcome should fail")
	}
	if _, err := WorkerRankings(&Outcome{}, "q0", 1); err == nil {
		t.Error("n<2 should fail")
	}
	if _, err := WorkerRankings(&Outcome{}, "q0", 3); err == nil {
		t.Error("no sessions should fail")
	}
}

func TestParsePairID(t *testing.T) {
	tests := []struct {
		id   string
		i, j int
		ok   bool
	}{
		{"pair-0-1", 0, 1, true},
		{"pair-3-14", 3, 14, true},
		{"control-same", 0, 0, false},
		{"pair-x-1", 0, 0, false},
		{"pair-1", 0, 0, false},
	}
	for _, tt := range tests {
		i, j, ok := parsePairID(tt.id)
		if ok != tt.ok || (ok && (i != tt.i || j != tt.j)) {
			t.Errorf("parsePairID(%q) = %d,%d,%v", tt.id, i, j, ok)
		}
	}
}

func TestPageTallyAndSignificance(t *testing.T) {
	res := &server.Results{Pages: []server.PageResult{
		{PageID: "pair-0-1", Tally: questionnaire.Tally{Left: 46, Right: 14, Same: 40}},
	}}
	tally, ok := PageTally(res, "pair-0-1")
	if !ok || tally.Left != 46 {
		t.Fatalf("tally = %+v ok=%v", tally, ok)
	}
	if _, ok := PageTally(res, "ghost"); ok {
		t.Error("missing page should report !ok")
	}
	sig, err := PreferenceSignificance(tally)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's question-C numbers: strongly significant.
	if !sig.Significant(0.01) {
		t.Errorf("46 vs 14 should be significant at 99%%: %+v", sig)
	}
	if _, err := PreferenceSignificance(questionnaire.Tally{}); err == nil {
		t.Error("empty tally should fail")
	}
}

func TestSpeedupVsAB(t *testing.T) {
	outcome := &Outcome{Recruitment: &crowd.RecruitmentResult{Completed: 12 * time.Hour}}
	speedup, err := SpeedupVsAB(outcome, 12*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if speedup < 23 || speedup > 25 {
		t.Errorf("speedup = %v, want 24 (12 days vs 12 hours)", speedup)
	}
	if _, err := SpeedupVsAB(nil, time.Hour); err == nil {
		t.Error("nil outcome should fail")
	}
	if _, err := SpeedupVsAB(&Outcome{Recruitment: &crowd.RecruitmentResult{}}, time.Hour); err == nil {
		t.Error("zero duration should fail")
	}
}

func TestBehaviorSamples(t *testing.T) {
	sessions := []server.SessionUpload{
		{Behaviors: []crowd.Behavior{
			{TimeOnTaskMillis: 60000, CreatedTabs: 2, ActiveTabSwitches: 4},
			{TimeOnTaskMillis: 30000, CreatedTabs: 1, ActiveTabSwitches: 2},
		}},
		{Behaviors: []crowd.Behavior{
			{TimeOnTaskMillis: 90000, CreatedTabs: 3, ActiveTabSwitches: 8},
		}},
	}
	tabs, created, minutes := BehaviorSamples(sessions)
	if len(tabs) != 3 || len(created) != 3 || len(minutes) != 3 {
		t.Fatalf("lens = %d/%d/%d", len(tabs), len(created), len(minutes))
	}
	if minutes[0] != 1.0 {
		t.Errorf("minutes[0] = %v", minutes[0])
	}
	if created[2] != 3 || tabs[2] != 8 {
		t.Errorf("samples = %v %v", created, tabs)
	}
}

func TestPersistentEngine(t *testing.T) {
	dir := t.TempDir()
	engine, err := NewPersistentEngine(dir)
	if err != nil {
		t.Fatalf("NewPersistentEngine: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	study := fontStudy(t, 3, rng)
	if _, err := engine.RunStudy(study, rng); err != nil {
		t.Fatalf("RunStudy persistent: %v", err)
	}
	// A fresh engine over the same dir can still conclude the test.
	engine2, err := NewPersistentEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine2.Server.Conclude(study.Params.TestID, nil)
	if err != nil {
		t.Fatalf("Conclude after reopen: %v", err)
	}
	if res.Workers != 3 {
		t.Errorf("reopened workers = %d", res.Workers)
	}
}

func TestKeptSessionsNil(t *testing.T) {
	if got := KeptSessions(nil); got != nil {
		t.Error("nil outcome should give nil")
	}
	if got := KeptSessions(&Outcome{}); got != nil {
		t.Error("missing filtered results should give nil")
	}
}

func TestRunSortedStudy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	engine, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	study := fontStudy(t, 8, rng)
	study.Sorted = true
	outcome, err := engine.RunStudy(study, rng)
	if err != nil {
		t.Fatalf("RunStudy sorted: %v", err)
	}
	if len(outcome.SortedResults) != 8 {
		t.Fatalf("sorted results = %d", len(outcome.SortedResults))
	}
	for _, sr := range outcome.SortedResults {
		if len(sr.Ranking.Order) != 3 {
			t.Errorf("ranking = %v", sr.Ranking.Order)
		}
		// Binary insertion over 3 versions: at most C(3,2)=3 comparisons.
		if len(sr.Session.Responses) > 3 {
			t.Errorf("responses = %d, exceeds full round-robin", len(sr.Session.Responses))
		}
	}
	// Sorted QC must not reject for incompleteness.
	if outcome.Filtered.DroppedWorkers == 8 {
		t.Error("QC dropped everyone; completeness rule leaked into sorted mode")
	}
}

func TestSortedStudyRequiresOneQuestion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	study := fontStudy(t, 5, rng)
	study.Sorted = true
	study.Params.Questions = append(study.Params.Questions, "another question?")
	if err := study.Validate(); err == nil {
		t.Error("multi-question sorted study should fail validation")
	}
}

func TestRunStudyConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	engine, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	study := fontStudy(t, 16, rng)
	study.Concurrency = 8
	outcome, err := engine.RunStudy(study, rng)
	if err != nil {
		t.Fatalf("RunStudy concurrent: %v", err)
	}
	if len(outcome.Sessions) != 16 {
		t.Fatalf("sessions = %d", len(outcome.Sessions))
	}
	// Every slot filled with a distinct worker, in recruit order.
	seen := map[string]bool{}
	for i, s := range outcome.Sessions {
		if s.WorkerID == "" {
			t.Fatalf("slot %d empty", i)
		}
		if seen[s.WorkerID] {
			t.Fatalf("duplicate worker %s", s.WorkerID)
		}
		seen[s.WorkerID] = true
		if s.WorkerID != outcome.Recruitment.Recruits[i].Worker.ID {
			t.Errorf("slot %d order mismatch", i)
		}
		if len(s.Responses) != 3 {
			t.Errorf("worker %s responses = %d", s.WorkerID, len(s.Responses))
		}
	}
	if outcome.Raw.Workers != 16 {
		t.Errorf("raw workers = %d", outcome.Raw.Workers)
	}
}

func TestRunStudyConcurrentSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	engine, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	study := fontStudy(t, 8, rng)
	study.Sorted = true
	study.Concurrency = 4
	outcome, err := engine.RunStudy(study, rng)
	if err != nil {
		t.Fatalf("RunStudy sorted concurrent: %v", err)
	}
	if len(outcome.SortedResults) != 8 {
		t.Fatalf("sorted results = %d", len(outcome.SortedResults))
	}
	for i, sr := range outcome.SortedResults {
		if sr == nil || len(sr.Ranking.Order) != 3 {
			t.Errorf("slot %d incomplete: %+v", i, sr)
		}
	}
}
