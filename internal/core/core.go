// Package core is Kaleidoscope's orchestration layer — the public API a
// downstream experimenter uses. A Study bundles the test parameters, the
// webpage versions, the perception model for simulated participants, and
// the crowdsourcing configuration; RunStudy drives the paper's full
// pipeline end-to-end:
//
//	aggregate -> post task -> recruit -> run extension flows over HTTP ->
//	collect sessions -> conclude raw and quality-controlled results.
//
// Every stage uses the real component: pages are inlined and stored, the
// core server serves them over its HTTP API, and each simulated
// participant runs the browser-extension flow against that API.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/crowd"
	"kaleidoscope/internal/extension"
	"kaleidoscope/internal/obs"
	"kaleidoscope/internal/params"
	"kaleidoscope/internal/quality"
	"kaleidoscope/internal/server"
	"kaleidoscope/internal/store"
	"kaleidoscope/internal/webgen"
)

// Study is one Kaleidoscope experiment, fully specified.
type Study struct {
	// Params is the Table I test-parameter document.
	Params *params.Test
	// Sites maps each webpage's WebPath to its saved-webpage folder.
	Sites map[string]*webgen.Site
	// Controls are extra known-answer control pairs (an identical-pair
	// control is always added by the aggregator).
	Controls []aggregator.ControlPair
	// Answer is the perception model simulated participants use.
	Answer extension.AnswerFunc
	// Pool is the worker population recruitment draws from.
	Pool *crowd.Population
	// MeanInterarrival overrides the platform's recruitment speed
	// (zero = paper-calibrated default of ~7.2 min/worker).
	MeanInterarrival time.Duration
	// PaymentUSD is the per-worker reward (default $0.10).
	PaymentUSD float64
	// TrustedOnly restricts recruitment to trusted workers.
	TrustedOnly bool
	// Target restricts recruitment to matching demographics (nil = any) —
	// the paper's "target demographics" input.
	Target *crowd.Targeting
	// Sorted enables the paper's §III-D optimization: participants run a
	// comparison sort instead of the full C(N,2) round-robin, visiting
	// only the integrated pages the sort needs. Requires exactly one
	// question.
	Sorted bool
	// Concurrency runs up to this many participant sessions in parallel
	// (0 or 1 = sequential). Participants on a crowdsourcing platform are
	// naturally concurrent; each parallel session gets its own random
	// stream seeded deterministically from the study RNG, so results stay
	// reproducible for a given concurrency setting.
	Concurrency int
	// PrepareWorkers bounds the aggregator's preparation pool (0 =
	// GOMAXPROCS). Preparation output is deterministic regardless of the
	// pool size, so this only trades setup latency for CPU.
	PrepareWorkers int
	// QC overrides the quality-control config (nil = default derived from
	// the test shape).
	QC *quality.Config
}

// Validate checks the study is runnable.
func (s *Study) Validate() error {
	if s.Params == nil {
		return errors.New("core: study missing params")
	}
	if err := s.Params.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if len(s.Sites) == 0 {
		return errors.New("core: study has no sites")
	}
	if s.Answer == nil {
		return errors.New("core: study missing answer model")
	}
	if s.Pool == nil {
		return errors.New("core: study missing worker pool")
	}
	if s.Sorted && len(s.Params.Questions) != 1 {
		return errors.New("core: sorted studies require exactly one question")
	}
	return nil
}

// Outcome is a completed study.
type Outcome struct {
	Prepared    *aggregator.Prepared
	Recruitment *crowd.RecruitmentResult
	Sessions    []server.SessionUpload
	// SortedResults holds per-worker rankings when the study ran in
	// sorted mode (nil otherwise).
	SortedResults []*extension.SortedResult
	// Raw holds unfiltered results; Filtered holds quality-controlled
	// results.
	Raw      *server.Results
	Filtered *server.Results
}

// Engine owns the storage and server a set of studies runs against.
type Engine struct {
	DB     *store.DB
	Blobs  *store.BlobStore
	Server *server.Server
	// Metrics, when set, receives the aggregator's preparation metrics
	// (pass the same registry to server.WithObservability to get one
	// exposition covering both paths).
	Metrics *obs.Registry
}

// NewEngine builds an in-memory engine.
func NewEngine() (*Engine, error) {
	db := store.OpenMemory()
	blobs := store.NewBlobStore()
	srv, err := server.New(db, blobs)
	if err != nil {
		return nil, err
	}
	return &Engine{DB: db, Blobs: blobs, Server: srv}, nil
}

// NewPersistentEngine builds an engine persisted under dir.
func NewPersistentEngine(dir string) (*Engine, error) {
	db, err := store.Open(dir + "/db")
	if err != nil {
		return nil, err
	}
	blobs, err := store.OpenBlobStore(dir + "/blobs")
	if err != nil {
		return nil, err
	}
	srv, err := server.New(db, blobs)
	if err != nil {
		return nil, err
	}
	return &Engine{DB: db, Blobs: blobs, Server: srv}, nil
}

// inprocTransport routes HTTP requests straight into a handler without a
// network socket, so studies and benchmarks run hermetically.
type inprocTransport struct {
	handler http.Handler
}

var _ http.RoundTripper = (*inprocTransport)(nil)

// RoundTrip serves the request through the handler.
func (t *inprocTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.handler.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// Client returns an extension client wired in-process to the engine's
// server.
func (e *Engine) Client() (*extension.Client, error) {
	httpc := &http.Client{Transport: &inprocTransport{handler: e.Server}}
	return extension.NewClient("http://kaleidoscope.internal", httpc)
}

// RunStudy executes the full pipeline and returns the outcome.
func (e *Engine) RunStudy(study *Study, rng *rand.Rand) (*Outcome, error) {
	if err := study.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("core: nil random source")
	}

	// Stage 1: aggregate. Preparation fans out over the study's worker
	// pool; its output is deterministic for any pool size.
	aggOpts := []aggregator.Option{aggregator.WithWorkers(study.PrepareWorkers)}
	if e.Metrics != nil {
		aggOpts = append(aggOpts, aggregator.WithObservability(e.Metrics))
	}
	agg, err := aggregator.New(e.DB, e.Blobs, aggOpts...)
	if err != nil {
		return nil, err
	}
	prep, err := agg.Prepare(study.Params, study.Sites, study.Controls)
	if err != nil {
		return nil, err
	}

	// Stage 2: post the task to the crowdsourcing platform and recruit.
	payment := study.PaymentUSD
	if payment == 0 {
		payment = 0.10
	}
	platform, err := crowd.NewPlatform(study.Pool, study.MeanInterarrival)
	if err != nil {
		return nil, err
	}
	job := crowd.Job{
		TestID:          study.Params.TestID,
		Title:           "Kaleidoscope test " + study.Params.TestID,
		Instructions:    study.Params.TestDescription,
		RequiredWorkers: study.Params.ParticipantNum,
		PaymentUSD:      payment,
		TrustedOnly:     study.TrustedOnly,
		Target:          study.Target,
	}
	recruitment, err := platform.Post(job, rng)
	if err != nil {
		return nil, err
	}

	// Stage 3: each recruited participant runs the extension flow against
	// the live server API.
	client, err := e.Client()
	if err != nil {
		return nil, err
	}
	outcome := &Outcome{Prepared: prep, Recruitment: recruitment}
	if study.Concurrency > 1 {
		if err := e.runSessionsConcurrent(study, client, recruitment, rng, outcome); err != nil {
			return nil, err
		}
	} else {
		for _, rec := range recruitment.Recruits {
			if err := e.runOneSession(study, client, rec.Worker, rng, outcome, -1); err != nil {
				return nil, err
			}
		}
	}

	if err := e.concludeOutcome(study, prep, outcome); err != nil {
		return nil, err
	}
	return outcome, nil
}

// runOneSession executes one participant's flow and stores the result into
// the outcome. A slot >= 0 writes into the pre-sized slices (concurrent
// mode); slot -1 appends (sequential mode).
func (e *Engine) runOneSession(study *Study, client *extension.Client, worker *crowd.Worker, rng *rand.Rand, outcome *Outcome, slot int) error {
	if study.Sorted {
		runner := &extension.SortedRunner{
			Client: client,
			Worker: worker,
			Answer: study.Answer,
			RNG:    rng,
		}
		res, err := runner.Run(study.Params.TestID)
		if err != nil {
			return fmt.Errorf("core: worker %s: %w", worker.ID, err)
		}
		if slot >= 0 {
			outcome.Sessions[slot] = *res.Session
			outcome.SortedResults[slot] = res
		} else {
			outcome.Sessions = append(outcome.Sessions, *res.Session)
			outcome.SortedResults = append(outcome.SortedResults, res)
		}
		return nil
	}
	runner := &extension.Runner{
		Client: client,
		Worker: worker,
		Answer: study.Answer,
		RNG:    rng,
	}
	session, err := runner.Run(study.Params.TestID)
	if err != nil {
		return fmt.Errorf("core: worker %s: %w", worker.ID, err)
	}
	if slot >= 0 {
		outcome.Sessions[slot] = *session
	} else {
		outcome.Sessions = append(outcome.Sessions, *session)
	}
	return nil
}

// runSessionsConcurrent fans participant sessions out over a bounded
// worker pool. Per-session RNG seeds are drawn from the study RNG before
// launch, keeping runs reproducible.
func (e *Engine) runSessionsConcurrent(study *Study, client *extension.Client, recruitment *crowd.RecruitmentResult, rng *rand.Rand, outcome *Outcome) error {
	n := len(recruitment.Recruits)
	outcome.Sessions = make([]server.SessionUpload, n)
	if study.Sorted {
		outcome.SortedResults = make([]*extension.SortedResult, n)
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	sem := make(chan struct{}, study.Concurrency)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i, rec := range recruitment.Recruits {
		wg.Add(1)
		go func(slot int, worker *crowd.Worker, seed int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			err := e.runOneSession(study, client, worker, rand.New(rand.NewSource(seed)), outcome, slot)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i, rec.Worker, seeds[i])
	}
	wg.Wait()
	return firstErr
}

// concludeOutcome computes the raw and quality-controlled results.
func (e *Engine) concludeOutcome(study *Study, prep *aggregator.Prepared, outcome *Outcome) error {
	var err error
	outcome.Raw, err = e.Server.Conclude(study.Params.TestID, nil)
	if err != nil {
		return err
	}
	qc := study.QC
	if qc == nil {
		cfg := quality.DefaultConfig(len(prep.RealPages()) * len(study.Params.Questions))
		if study.Sorted {
			// Sorted sessions legitimately answer fewer, variable numbers
			// of questions; completeness is not a hard rule for them.
			cfg.RequiredResponses = 0
		}
		qc = &cfg
	}
	outcome.Filtered, err = e.Server.Conclude(study.Params.TestID, qc)
	return err
}
