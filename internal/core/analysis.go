package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/rank"
	"kaleidoscope/internal/server"
	"kaleidoscope/internal/stats"
)

// parsePairID decodes the aggregator's "pair-i-j" page ids.
func parsePairID(pageID string) (i, j int, ok bool) {
	rest, found := strings.CutPrefix(pageID, "pair-")
	if !found {
		return 0, 0, false
	}
	parts := strings.SplitN(rest, "-", 2)
	if len(parts) != 2 {
		return 0, 0, false
	}
	i, err1 := strconv.Atoi(parts[0])
	j, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return i, j, true
}

// WorkerRankings converts each session's pairwise answers on the given
// question into the worker's full ranking of the N versions (Copeland
// scoring over the recorded round-robin). Sessions missing comparisons
// are skipped. The result feeds rank.RankDistribution — the paper's
// Fig. 4 shape.
func WorkerRankings(outcome *Outcome, questionID string, n int) ([][]int, error) {
	if outcome == nil {
		return nil, errors.New("core: nil outcome")
	}
	if n < 2 {
		return nil, rank.ErrTooFewVersions
	}
	var rankings [][]int
	for _, sess := range outcome.Sessions {
		// Record this worker's pairwise outcomes.
		type pair struct{ i, j int }
		results := make(map[pair]rank.Outcome)
		for _, r := range sess.Responses {
			if r.QuestionID != questionID {
				continue
			}
			i, j, ok := parsePairID(r.PageID)
			if !ok || i >= n || j >= n {
				continue
			}
			switch r.Choice {
			case questionnaire.ChoiceLeft:
				results[pair{i, j}] = rank.OutcomeA
			case questionnaire.ChoiceRight:
				results[pair{i, j}] = rank.OutcomeB
			case questionnaire.ChoiceSame:
				results[pair{i, j}] = rank.OutcomeTie
			}
		}
		if len(results) < rank.PairCount(n) {
			continue // incomplete round-robin
		}
		cmp := func(a, b int) rank.Outcome {
			if out, ok := results[pair{a, b}]; ok {
				return out
			}
			out := results[pair{b, a}]
			switch out {
			case rank.OutcomeA:
				return rank.OutcomeB
			case rank.OutcomeB:
				return rank.OutcomeA
			default:
				return rank.OutcomeTie
			}
		}
		res, err := rank.FullRoundRobin(n, cmp)
		if err != nil {
			return nil, fmt.Errorf("core: ranking worker %s: %w", sess.WorkerID, err)
		}
		rankings = append(rankings, res.Order)
	}
	if len(rankings) == 0 {
		return nil, errors.New("core: no complete sessions to rank")
	}
	return rankings, nil
}

// PageTally returns the tally for one page id from a results set.
func PageTally(res *server.Results, pageID string) (questionnaire.Tally, bool) {
	for _, p := range res.Pages {
		if p.PageID == pageID {
			return p.Tally, true
		}
	}
	return questionnaire.Tally{}, false
}

// PreferenceSignificance runs the paper's Fig. 7(c) analysis on a page
// tally: are "left preferred" and "right preferred" proportions (out of
// all respondents) significantly different?
func PreferenceSignificance(t questionnaire.Tally) (stats.TwoProportionResult, error) {
	total := t.Total()
	if total == 0 {
		return stats.TwoProportionResult{}, errors.New("core: empty tally")
	}
	return stats.TwoProportionTest(t.Left, total, t.Right, total)
}

// SpeedupVsAB compares the study's recruitment duration against an A/B
// campaign duration and returns the ratio (>1 means Kaleidoscope was
// faster) — the paper's headline 12x.
func SpeedupVsAB(outcome *Outcome, abDuration time.Duration) (float64, error) {
	if outcome == nil || outcome.Recruitment == nil {
		return 0, errors.New("core: outcome lacks recruitment data")
	}
	k := outcome.Recruitment.Completed
	if k <= 0 {
		return 0, errors.New("core: zero recruitment duration")
	}
	return float64(abDuration) / float64(k), nil
}

// BehaviorSamples flattens the sessions' telemetry into the three series
// of the paper's Fig. 5: active-tab switches, created tabs, and time on
// task (minutes) per side-by-side comparison.
func BehaviorSamples(sessions []server.SessionUpload) (activeTabs, createdTabs, minutes []float64) {
	for _, sess := range sessions {
		for _, b := range sess.Behaviors {
			activeTabs = append(activeTabs, float64(b.ActiveTabSwitches))
			createdTabs = append(createdTabs, float64(b.CreatedTabs))
			minutes = append(minutes, float64(b.TimeOnTaskMillis)/60000.0)
		}
	}
	return activeTabs, createdTabs, minutes
}

// KeptSessions returns the sessions of workers retained by the outcome's
// quality-controlled results.
func KeptSessions(outcome *Outcome) []server.SessionUpload {
	if outcome == nil || outcome.Filtered == nil {
		return nil
	}
	kept := make(map[string]bool, len(outcome.Filtered.KeptWorkers))
	for _, id := range outcome.Filtered.KeptWorkers {
		kept[id] = true
	}
	var out []server.SessionUpload
	for _, s := range outcome.Sessions {
		if kept[s.WorkerID] {
			out = append(out, s)
		}
	}
	return out
}

// FilteredOutcome recomputes an Outcome restricted to kept sessions,
// producing the per-worker rankings for the quality-controlled variant of
// Fig. 4.
func (o *Outcome) FilteredSessionsOutcome() *Outcome {
	cp := *o
	cp.Sessions = KeptSessions(o)
	return &cp
}
