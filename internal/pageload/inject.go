package pageload

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"kaleidoscope/internal/htmlx"
	"kaleidoscope/internal/params"
)

// SpecElementID is the id of the injected JSON spec element. The browser
// extension reads the schedule back out of the downloaded page via this id.
const SpecElementID = "kscope-pageload-spec"

// RuntimeElementID is the id of the injected replay runtime script.
const RuntimeElementID = "kscope-pageload-runtime"

// ErrNoSpec is returned by ExtractSpec when the document carries no
// injected schedule.
var ErrNoSpec = errors.New("pageload: no injected page-load spec found")

// InjectSpec embeds the page-load schedule into the document: a JSON spec
// element (machine-readable, consumed by the extension simulation) and the
// replay runtime script (the JavaScript a real browser would execute to
// hide all DOM nodes and reveal them on schedule). Existing injections are
// replaced, making the operation idempotent.
func InjectSpec(doc *htmlx.Node, spec params.PageLoadSpec) error {
	head := doc.Head()
	if head == nil {
		// Fall back to the document root for fragment-shaped input.
		if body := doc.Body(); body != nil {
			head = body
		} else {
			head = doc
		}
	}
	// Drop any previous injection. Untrusted inputs may carry several
	// stale elements under the reserved ids; remove them all, or a
	// leftover would shadow the fresh spec at extraction time.
	for _, id := range []string{SpecElementID, RuntimeElementID} {
		for {
			old := doc.ByID(id)
			if old == nil || old.Parent == nil {
				break
			}
			old.Parent.RemoveChild(old)
		}
	}

	data, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("pageload: encoding spec: %w", err)
	}
	// A "</" inside the JSON (e.g. a selector containing "</script>")
	// would terminate the raw-text script element when the rendered page
	// is re-parsed. Escaping the solidus is byte-different but
	// JSON-identical, so ExtractSpec decodes the same schedule.
	safe := strings.ReplaceAll(string(data), "</", `<\/`)
	specEl := htmlx.NewElement("script")
	specEl.SetAttr("id", SpecElementID)
	specEl.SetAttr("type", "application/json")
	specEl.AppendChild(htmlx.NewText(safe))

	runtime := htmlx.NewElement("script")
	runtime.SetAttr("id", RuntimeElementID)
	runtime.AppendChild(htmlx.NewText(replayRuntimeJS))

	head.InsertChildAt(0, specEl)
	head.InsertChildAt(1, runtime)
	return nil
}

// ExtractSpec reads the injected schedule back out of a document.
func ExtractSpec(doc *htmlx.Node) (params.PageLoadSpec, error) {
	el := doc.ByID(SpecElementID)
	if el == nil || len(el.Children) == 0 {
		return params.PageLoadSpec{}, ErrNoSpec
	}
	var spec params.PageLoadSpec
	if err := json.Unmarshal([]byte(el.Children[0].Data), &spec); err != nil {
		return params.PageLoadSpec{}, fmt.Errorf("pageload: decoding injected spec: %w", err)
	}
	return spec, nil
}

// replayRuntimeJS is the JavaScript the paper describes injecting into each
// test webpage: it hides every DOM node immediately, then reveals nodes
// according to the schedule. The scalar form reveals each node at a
// uniformly random time within the bound; the selector form reveals
// matches at fixed offsets. Kept faithful to the paper's mechanism so the
// emitted single-file pages replay correctly in a real browser too.
const replayRuntimeJS = `(function () {
  "use strict";
  function readSpec() {
    var el = document.getElementById("` + SpecElementID + `");
    if (!el) { return null; }
    try { return JSON.parse(el.textContent); } catch (e) { return null; }
  }
  function hideAll() {
    var all = document.body ? document.body.getElementsByTagName("*") : [];
    var hidden = [];
    for (var i = 0; i < all.length; i++) {
      var node = all[i];
      if (node.id === "` + SpecElementID + `" || node.id === "` + RuntimeElementID + `") { continue; }
      hidden.push([node, node.style.visibility]);
      node.style.visibility = "hidden";
    }
    return hidden;
  }
  function run() {
    var spec = readSpec();
    if (spec === null) { return; }
    var hidden = hideAll();
    function reveal(node, prev, ms) {
      window.setTimeout(function () { node.style.visibility = prev || ""; }, ms);
    }
    if (typeof spec === "number") {
      for (var i = 0; i < hidden.length; i++) {
        reveal(hidden[i][0], hidden[i][1], Math.floor(Math.random() * (spec + 1)));
      }
      return;
    }
    // Selector form: [{selector: ms}, ...]; unmatched nodes show at 0.
    // A node inherits the latest reveal time among itself and its matched
    // ancestors, mirroring DOM visibility semantics.
    for (var s = 0; s < spec.length; s++) {
      for (var sel in spec[s]) {
        var ms = spec[s][sel];
        var matches = document.querySelectorAll(sel);
        for (var m = 0; m < matches.length; m++) {
          var root = matches[m];
          var descendants = [root].concat(Array.prototype.slice.call(root.getElementsByTagName("*")));
          for (var d = 0; d < descendants.length; d++) {
            descendants[d].__kscopeAt = Math.max(descendants[d].__kscopeAt || 0, ms);
          }
        }
      }
    }
    for (var j = 0; j < hidden.length; j++) {
      reveal(hidden[j][0], hidden[j][1], hidden[j][0].__kscopeAt || 0);
    }
  }
  if (document.readyState !== "loading") { run(); }
  else { document.addEventListener("DOMContentLoaded", run); }
})();
`
