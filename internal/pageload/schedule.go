// Package pageload implements Kaleidoscope's page-load replay: the paper's
// novel mechanism for testing loading experience reproducibly. A replay
// hides every DOM node, then reveals nodes on a schedule derived from the
// test parameters — either uniformly at random within a bound ("web page
// load": 2000) or at fixed per-selector times ([{"#main":1000}, ...]).
// From the reveal schedule and the layout geometry the package derives the
// visual metrics the paper discusses: Time to First Paint, Above-the-Fold
// time, Speed Index, and user-perceived page load time.
package pageload

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"kaleidoscope/internal/cssx"
	"kaleidoscope/internal/htmlx"
	"kaleidoscope/internal/params"
)

// ErrNilRNG is returned when a uniform-random schedule is requested without
// a random source.
var ErrNilRNG = errors.New("pageload: uniform schedule requires a random source")

// Schedule maps every element of a document to its effective reveal time in
// milliseconds. Effective means ancestor-aware: a node cannot become
// visible before every ancestor is visible, exactly as in the DOM, so a
// node's effective time is the maximum of its own and its ancestors'
// assigned times.
type Schedule struct {
	// Reveal is the effective reveal time per element.
	Reveal map[*htmlx.Node]int
	// EndMillis is the largest reveal time.
	EndMillis int
}

// BuildSchedule computes the reveal schedule for doc under spec.
//
// Uniform form: every element is independently assigned a uniformly random
// time in [0, UniformMillis] (rng required).
//
// Selector form: elements matched by a selector are assigned its time;
// everything else is assigned 0. When multiple selectors match one element
// the latest time wins (the node stays hidden until its last rule fires),
// which makes schedules compose predictably.
func BuildSchedule(doc *htmlx.Node, spec params.PageLoadSpec, rng *rand.Rand) (*Schedule, error) {
	assigned := make(map[*htmlx.Node]int)
	elements := doc.Elements()

	if spec.IsUniform() {
		if spec.UniformMillis > 0 {
			if rng == nil {
				return nil, ErrNilRNG
			}
			for _, el := range elements {
				assigned[el] = rng.Intn(spec.UniformMillis + 1)
			}
		}
		// UniformMillis == 0: everything reveals at 0 (no replay).
	} else {
		for _, st := range spec.Schedule {
			matches, err := cssx.Query(doc, st.Selector)
			if err != nil {
				return nil, fmt.Errorf("pageload: selector %q: %w", st.Selector, err)
			}
			for _, m := range matches {
				if st.Millis > assigned[m] {
					assigned[m] = st.Millis
				}
			}
		}
	}

	sched := &Schedule{Reveal: make(map[*htmlx.Node]int, len(elements))}
	var resolve func(n *htmlx.Node, inherited int)
	resolve = func(n *htmlx.Node, inherited int) {
		t := inherited
		if n.Type == htmlx.ElementNode {
			if own, ok := assigned[n]; ok && own > t {
				t = own
			}
			sched.Reveal[n] = t
			if t > sched.EndMillis {
				sched.EndMillis = t
			}
		}
		for _, c := range n.Children {
			resolve(c, t)
		}
	}
	resolve(doc, 0)
	return sched, nil
}

// RevealedAt reports whether node n is visible at time ms.
func (s *Schedule) RevealedAt(n *htmlx.Node, ms int) bool {
	t, ok := s.Reveal[n]
	if !ok {
		return false
	}
	return t <= ms
}

// Times returns the sorted distinct reveal times in the schedule.
func (s *Schedule) Times() []int {
	seen := make(map[int]bool)
	for _, t := range s.Reveal {
		seen[t] = true
	}
	out := make([]int, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}
