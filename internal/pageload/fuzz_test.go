package pageload

import (
	"encoding/json"
	"reflect"
	"testing"

	"kaleidoscope/internal/htmlx"
	"kaleidoscope/internal/params"
)

// specFromFuzz shapes fuzz inputs into a PageLoadSpec: an empty selector
// selects the scalar (uniform) form, anything else a one-entry schedule.
func specFromFuzz(uniform int, selector string, millis int) params.PageLoadSpec {
	if selector == "" {
		return params.PageLoadSpec{UniformMillis: uniform}
	}
	return params.PageLoadSpec{Schedule: []params.SelectorTime{{Selector: selector, Millis: millis}}}
}

// FuzzInjectSpec drives InjectSpec over arbitrary HTML and schedules and
// checks the contract the aggregator relies on: injection never panics,
// and on success the rendered page re-parses to the same schedule
// (ExtractSpec round trip), with exactly one spec element no matter how
// many stale copies the input carried.
func FuzzInjectSpec(f *testing.F) {
	f.Add("<html><head><title>t</title></head><body><p>hi</p></body></html>", 3000, "", 0)
	f.Add("<p>bare fragment", 0, "#navbar", 1000)
	f.Add("", 100, ".content > p", 5)
	f.Add("<head><title>open", -5, "div p", -1)
	// Hostile inputs: a selector that tries to close the script element,
	// and documents already carrying stale injected elements.
	f.Add("<body><p>x</p></body>", 0, "</script><script>alert(1)</script>", 7)
	f.Add(`<body><div id="kscope-pageload-spec">stale</div><div id="kscope-pageload-spec">stale2</div></body>`, 0, "#a", 1)
	f.Add(`<script id="kscope-pageload-spec">{"bogus":true}</script><textarea><div id="kscope-pageload-spec">`, 42, "", 0)
	f.Fuzz(func(t *testing.T, html string, uniform int, selector string, millis int) {
		spec := specFromFuzz(uniform, selector, millis)
		doc := htmlx.Parse(html)
		if err := InjectSpec(doc, spec); err != nil {
			// Encoding failures are acceptable; crashing is not.
			t.Skip()
		}

		// The schedule must survive render -> re-parse -> extract.
		rendered := htmlx.Render(doc)
		reparsed := htmlx.Parse(rendered)
		got, err := ExtractSpec(reparsed)
		if err != nil {
			t.Fatalf("extract after inject: %v\nhtml: %q\nrendered: %q", err, html, rendered)
		}
		// The expected value is the spec as it survives JSON encoding
		// (invalid UTF-8 in selectors is sanitized by json.Marshal), so
		// push the original through a marshal/unmarshal cycle and compare
		// structurally.
		wantJSON, err := json.Marshal(spec)
		if err != nil {
			t.Skip()
		}
		var want params.PageLoadSpec
		if err := json.Unmarshal(wantJSON, &want); err != nil {
			t.Skip() // not canonically decodable (e.g. duplicate-key edge)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("spec round trip: got %+v, want %+v\nhtml: %q", got, want, html)
		}

		// Exactly one spec element and one runtime element survive,
		// regardless of stale copies in the input.
		for _, id := range []string{SpecElementID, RuntimeElementID} {
			if n := countByID(reparsed, id); n != 1 {
				t.Fatalf("%d elements with id %q after inject (want 1)\nhtml: %q", n, id, html)
			}
		}

		// Injection is idempotent: re-injecting a different schedule
		// replaces the old one.
		spec2 := params.PageLoadSpec{UniformMillis: 1234}
		if err := InjectSpec(reparsed, spec2); err != nil {
			t.Fatalf("re-inject: %v", err)
		}
		again := htmlx.Parse(htmlx.Render(reparsed))
		got2, err := ExtractSpec(again)
		if err != nil {
			t.Fatalf("extract after re-inject: %v", err)
		}
		if !got2.IsUniform() || got2.UniformMillis != 1234 {
			t.Fatalf("re-inject not idempotent: got %+v", got2)
		}
	})
}

// countByID counts elements carrying the given id attribute.
func countByID(doc *htmlx.Node, id string) int {
	count := 0
	var walk func(*htmlx.Node)
	walk = func(n *htmlx.Node) {
		if n.Type == htmlx.ElementNode && n.AttrOr("id", "") == id {
			count++
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(doc)
	return count
}
