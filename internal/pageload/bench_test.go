package pageload

import (
	"math/rand"
	"testing"

	"kaleidoscope/internal/cssx"
	"kaleidoscope/internal/htmlx"
	"kaleidoscope/internal/params"
	"kaleidoscope/internal/render"
	"kaleidoscope/internal/webgen"
)

func benchArticle(b *testing.B) (*htmlx.Node, *cssx.Stylesheet) {
	b.Helper()
	site := webgen.WikiArticle(webgen.WikiConfig{Seed: 1})
	css, _ := site.Get("css/style.css")
	return htmlx.Parse(string(site.HTML())), cssx.ParseStylesheet(string(css))
}

func BenchmarkBuildScheduleSelector(b *testing.B) {
	doc, _ := benchArticle(b)
	spec := params.PageLoadSpec{Schedule: []params.SelectorTime{
		{Selector: "#navbar", Millis: 2000},
		{Selector: "#content", Millis: 4000},
		{Selector: "#infobox", Millis: 3000},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildSchedule(doc, spec, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildScheduleUniform(b *testing.B) {
	doc, _ := benchArticle(b)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildSchedule(doc, params.PageLoadSpec{UniformMillis: 3000}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateReplay(b *testing.B) {
	doc, sheet := benchArticle(b)
	spec := params.PageLoadSpec{Schedule: []params.SelectorTime{
		{Selector: "#navbar", Millis: 2000},
		{Selector: "#content", Millis: 4000},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(doc, sheet, render.DefaultViewport(), spec, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpeedIndex(b *testing.B) {
	doc, sheet := benchArticle(b)
	replay, err := Simulate(doc, sheet, render.DefaultViewport(), params.PageLoadSpec{Schedule: []params.SelectorTime{
		{Selector: "#navbar", Millis: 2000},
		{Selector: "#content", Millis: 4000},
	}}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = replay.SpeedIndex()
	}
}
