package pageload

import (
	"math"
	"math/rand"
	"sort"

	"kaleidoscope/internal/cssx"
	"kaleidoscope/internal/htmlx"
	"kaleidoscope/internal/params"
	"kaleidoscope/internal/render"
	"kaleidoscope/internal/stats"
)

// NodeEvent is one node becoming visible during a replay.
type NodeEvent struct {
	Millis  int
	Node    *htmlx.Node
	Area    float64 // the node's exclusive painted area
	ATFArea float64 // the above-the-fold portion of Area
}

// Replay is a simulated page load: the reveal schedule joined with layout
// geometry, ready for metric extraction.
type Replay struct {
	Layout   *render.Layout
	Schedule *Schedule
	// Events lists node reveals sorted by time (ties in document order).
	Events []NodeEvent
	// TotalArea and TotalATFArea are the sums over all events.
	TotalArea    float64
	TotalATFArea float64
	// EndMillis is when the replay completes (no further visual change).
	EndMillis int
}

// Simulate builds the replay of doc under the given page-load spec. A nil
// sheet uses default styles; a nil rng is allowed for selector-form specs.
func Simulate(doc *htmlx.Node, sheet *cssx.Stylesheet, vp render.Viewport, spec params.PageLoadSpec, rng *rand.Rand) (*Replay, error) {
	sched, err := BuildSchedule(doc, spec, rng)
	if err != nil {
		return nil, err
	}
	layout := render.LayoutDocument(doc, sheet, vp)

	r := &Replay{Layout: layout, Schedule: sched, EndMillis: sched.EndMillis}
	// Document-order traversal keeps tie ordering deterministic.
	doc.Walk(func(n *htmlx.Node) bool {
		if n.Type != htmlx.ElementNode {
			return true
		}
		g, ok := layout.Geom[n]
		if !ok {
			return true
		}
		t, ok := sched.Reveal[n]
		if !ok {
			return true
		}
		r.Events = append(r.Events, NodeEvent{Millis: t, Node: n, Area: g.OwnArea, ATFArea: g.OwnAreaATF})
		r.TotalArea += g.OwnArea
		r.TotalATFArea += g.OwnAreaATF
		return true
	})
	sort.SliceStable(r.Events, func(i, j int) bool { return r.Events[i].Millis < r.Events[j].Millis })
	return r, nil
}

// CompletenessAt returns the visual completeness VC(t): the fraction of
// above-the-fold painted area visible at time ms. Pages with no
// above-the-fold area report 1 (nothing to wait for).
func (r *Replay) CompletenessAt(ms int) float64 {
	if r.TotalATFArea == 0 {
		return 1
	}
	var painted float64
	for _, ev := range r.Events {
		if ev.Millis > ms {
			break
		}
		painted += ev.ATFArea
	}
	return painted / r.TotalATFArea
}

// Curve returns the visual-completeness step curve as (ms, VC) points, one
// per distinct event time.
func (r *Replay) Curve() []stats.Point {
	var pts []stats.Point
	var painted float64
	for i, ev := range r.Events {
		painted += ev.ATFArea
		if i+1 < len(r.Events) && r.Events[i+1].Millis == ev.Millis {
			continue
		}
		vc := 1.0
		if r.TotalATFArea > 0 {
			vc = painted / r.TotalATFArea
		}
		pts = append(pts, stats.Point{X: float64(ev.Millis), Y: vc})
	}
	return pts
}

// TTFP returns the Time to First Paint: the earliest time any non-zero
// area becomes visible. Pages that paint nothing report 0.
func (r *Replay) TTFP() int {
	for _, ev := range r.Events {
		if ev.Area > 0 {
			return ev.Millis
		}
	}
	return 0
}

// TTFMP returns the Time to First Meaningful Paint: the earliest time the
// content-weighted visual completeness reaches the given fraction of its
// final value (Lighthouse's TTFMP heuristically keys on the largest layout
// change of primary content; here "meaningful" is ContentWeight-weighted
// area). A typical threshold is 0.25.
func (r *Replay) TTFMP(threshold float64) int {
	return r.WeightedUPLT(threshold, ContentWeight)
}

// ATFTime returns the Above-the-Fold time: when the viewport's content is
// fully painted (VC reaches 1).
func (r *Replay) ATFTime() int {
	if r.TotalATFArea == 0 {
		return 0
	}
	var painted float64
	last := 0
	for _, ev := range r.Events {
		if ev.ATFArea > 0 {
			painted += ev.ATFArea
			last = ev.Millis
		}
		if painted >= r.TotalATFArea-1e-9 {
			return last
		}
	}
	return last
}

// SpeedIndex returns WebPageTest's Speed Index: the integral of
// (1 - VC(t)) dt from 0 to the end of visual change, in milliseconds.
// Lower is better; a page fully painted at t=0 scores 0.
func (r *Replay) SpeedIndex() float64 {
	if r.TotalATFArea == 0 {
		return 0
	}
	var si float64
	var painted float64
	prev := 0
	for i, ev := range r.Events {
		if ev.Millis > prev {
			vc := painted / r.TotalATFArea
			si += (1 - vc) * float64(ev.Millis-prev)
			prev = ev.Millis
		}
		painted += ev.ATFArea
		_ = i
	}
	return si
}

// UPLT returns the user-perceived page load time under a plain area model:
// the earliest time visual completeness reaches the given threshold
// (e.g. 0.95). See WeightedUPLT for the content-aware model.
func (r *Replay) UPLT(threshold float64) int {
	if r.TotalATFArea == 0 {
		return 0
	}
	var painted float64
	for _, ev := range r.Events {
		painted += ev.ATFArea
		if painted/r.TotalATFArea >= threshold-1e-12 {
			return ev.Millis
		}
	}
	return r.EndMillis
}

// WeightedCompletenessAt is CompletenessAt with a per-node importance
// weight — the paper's Fig. 9 finding is that users weight main text
// content far above auxiliary content (the navigation bar), so perceived
// readiness tracks a weighted, not plain, completeness curve.
func (r *Replay) WeightedCompletenessAt(ms int, weight func(*htmlx.Node) float64) float64 {
	var total, painted float64
	for _, ev := range r.Events {
		w := weight(ev.Node)
		contribution := ev.ATFArea * w
		total += contribution
		if ev.Millis <= ms {
			painted += contribution
		}
	}
	if total == 0 {
		return 1
	}
	return painted / total
}

// WeightedUPLT returns the earliest time the weighted completeness reaches
// threshold.
func (r *Replay) WeightedUPLT(threshold float64, weight func(*htmlx.Node) float64) int {
	var total float64
	for _, ev := range r.Events {
		total += ev.ATFArea * weight(ev.Node)
	}
	if total == 0 {
		return 0
	}
	var painted float64
	for _, ev := range r.Events {
		painted += ev.ATFArea * weight(ev.Node)
		if painted/total >= threshold-1e-12 {
			return ev.Millis
		}
	}
	return r.EndMillis
}

// ContentWeight is the default importance model used by the tester
// perception simulation: main-text content counts heavily, navigation and
// other chrome counts little. The weights are calibrated so the Fig. 9
// experiment reproduces the paper's preference for text-first loading.
func ContentWeight(n *htmlx.Node) float64 {
	for cur := n; cur != nil; cur = cur.Parent {
		switch cur.ID() {
		case "content":
			return 1.0
		case "navbar":
			return 0.15
		case "infobox":
			return 0.35
		}
		switch cur.Tag {
		case "nav", "header", "footer":
			return 0.15
		case "aside":
			return 0.35
		case "main", "article":
			return 1.0
		}
	}
	return 0.5
}

// ChromeWeight is the complementary importance model to ContentWeight:
// navigation and page chrome count heavily, main text counts little. It
// models the minority of users who judge readiness by whether they can
// start browsing and moving (one of the paper's quoted comments), not by
// whether the text has arrived.
func ChromeWeight(n *htmlx.Node) float64 {
	for cur := n; cur != nil; cur = cur.Parent {
		switch cur.ID() {
		case "content":
			return 0.15
		case "navbar":
			return 1.0
		case "infobox":
			return 0.5
		}
		switch cur.Tag {
		case "nav", "header", "footer":
			return 1.0
		case "aside":
			return 0.5
		case "main", "article":
			return 0.15
		}
	}
	return 0.5
}

// MeanReadyTime summarizes a replay as the area-weighted mean reveal time
// (the centroid of the completeness curve) — a smooth scalar used by the
// perception model to compare two replays.
func (r *Replay) MeanReadyTime(weight func(*htmlx.Node) float64) float64 {
	if weight == nil {
		weight = func(*htmlx.Node) float64 { return 1 }
	}
	var total, acc float64
	for _, ev := range r.Events {
		w := ev.ATFArea * weight(ev.Node)
		total += w
		acc += w * float64(ev.Millis)
	}
	if total == 0 {
		return 0
	}
	return acc / total
}

// ApproxEqual reports whether two replays are visually indistinguishable:
// same end time and completeness curves within tol at every event time.
func ApproxEqual(a, b *Replay, tol float64) bool {
	if a.EndMillis != b.EndMillis {
		return false
	}
	times := append(a.Schedule.Times(), b.Schedule.Times()...)
	for _, t := range times {
		if math.Abs(a.CompletenessAt(t)-b.CompletenessAt(t)) > tol {
			return false
		}
	}
	return true
}
