package pageload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kaleidoscope/internal/cssx"
	"kaleidoscope/internal/htmlx"
	"kaleidoscope/internal/params"
	"kaleidoscope/internal/render"
	"kaleidoscope/internal/webgen"
)

const replayDoc = `<html><head></head><body>
<nav id="navbar"><a href="#">one</a><a href="#">two</a></nav>
<div id="content"><p>` + "main text main text main text" + `</p><p>more body text here</p></div>
<div id="footer">footer text</div>
</body></html>`

func selectorSpec(pairs ...params.SelectorTime) params.PageLoadSpec {
	return params.PageLoadSpec{Schedule: pairs}
}

func TestBuildScheduleSelectorForm(t *testing.T) {
	doc := htmlx.Parse(replayDoc)
	spec := selectorSpec(
		params.SelectorTime{Selector: "#navbar", Millis: 2000},
		params.SelectorTime{Selector: "#content", Millis: 4000},
	)
	sched, err := BuildSchedule(doc, spec, nil)
	if err != nil {
		t.Fatalf("BuildSchedule: %v", err)
	}
	nav := doc.ByID("navbar")
	content := doc.ByID("content")
	footer := doc.ByID("footer")
	if sched.Reveal[nav] != 2000 {
		t.Errorf("navbar reveal = %d, want 2000", sched.Reveal[nav])
	}
	if sched.Reveal[content] != 4000 {
		t.Errorf("content reveal = %d, want 4000", sched.Reveal[content])
	}
	if sched.Reveal[footer] != 0 {
		t.Errorf("unmatched footer reveal = %d, want 0", sched.Reveal[footer])
	}
	// Descendants inherit the ancestor's time.
	for _, p := range content.ByTag("p") {
		if sched.Reveal[p] != 4000 {
			t.Errorf("content paragraph reveal = %d, want 4000 (inherited)", sched.Reveal[p])
		}
	}
	for _, a := range nav.ByTag("a") {
		if sched.Reveal[a] != 2000 {
			t.Errorf("nav link reveal = %d, want 2000 (inherited)", sched.Reveal[a])
		}
	}
	if sched.EndMillis != 4000 {
		t.Errorf("EndMillis = %d, want 4000", sched.EndMillis)
	}
}

func TestBuildScheduleLatestWinsOnOverlap(t *testing.T) {
	doc := htmlx.Parse(replayDoc)
	spec := selectorSpec(
		params.SelectorTime{Selector: "p", Millis: 1000},
		params.SelectorTime{Selector: "#content p", Millis: 3000},
	)
	sched, err := BuildSchedule(doc, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := doc.ByID("content").ByTag("p")[0]
	if sched.Reveal[p] != 3000 {
		t.Errorf("overlapping selectors: reveal = %d, want 3000 (latest)", sched.Reveal[p])
	}
}

func TestBuildScheduleChildLaterThanParent(t *testing.T) {
	doc := htmlx.Parse(replayDoc)
	spec := selectorSpec(
		params.SelectorTime{Selector: "#content", Millis: 1000},
		params.SelectorTime{Selector: "#content p", Millis: 2500},
	)
	sched, err := BuildSchedule(doc, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := doc.ByID("content").ByTag("p")[0]
	if sched.Reveal[p] != 2500 {
		t.Errorf("child with later time = %d, want 2500", sched.Reveal[p])
	}
}

func TestBuildScheduleUniform(t *testing.T) {
	doc := htmlx.Parse(replayDoc)
	rng := rand.New(rand.NewSource(1))
	sched, err := BuildSchedule(doc, params.PageLoadSpec{UniformMillis: 2000}, rng)
	if err != nil {
		t.Fatalf("BuildSchedule: %v", err)
	}
	if sched.EndMillis > 2000 || sched.EndMillis <= 0 {
		t.Errorf("EndMillis = %d, want in (0, 2000]", sched.EndMillis)
	}
	// Every element has a time within bound, and effective times are
	// ancestor-monotone.
	for n, tm := range sched.Reveal {
		if tm < 0 || tm > 2000 {
			t.Errorf("reveal %d out of range", tm)
		}
		for anc := n.Parent; anc != nil; anc = anc.Parent {
			if anc.Type != htmlx.ElementNode {
				continue
			}
			if at, ok := sched.Reveal[anc]; ok && at > tm {
				t.Errorf("node revealed at %d before ancestor at %d", tm, at)
			}
		}
	}
}

func TestBuildScheduleUniformNeedsRNG(t *testing.T) {
	doc := htmlx.Parse(replayDoc)
	if _, err := BuildSchedule(doc, params.PageLoadSpec{UniformMillis: 100}, nil); err != ErrNilRNG {
		t.Errorf("err = %v, want ErrNilRNG", err)
	}
}

func TestBuildScheduleZeroIsInstant(t *testing.T) {
	doc := htmlx.Parse(replayDoc)
	sched, err := BuildSchedule(doc, params.PageLoadSpec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sched.EndMillis != 0 {
		t.Errorf("zero spec EndMillis = %d", sched.EndMillis)
	}
	for _, tm := range sched.Reveal {
		if tm != 0 {
			t.Errorf("zero spec reveal = %d", tm)
		}
	}
}

func TestBuildScheduleBadSelector(t *testing.T) {
	doc := htmlx.Parse(replayDoc)
	spec := selectorSpec(params.SelectorTime{Selector: ">", Millis: 10})
	if _, err := BuildSchedule(doc, spec, nil); err == nil {
		t.Error("bad selector should error")
	}
}

func simulate(t *testing.T, doc *htmlx.Node, spec params.PageLoadSpec) *Replay {
	t.Helper()
	r, err := Simulate(doc, nil, render.DefaultViewport(), spec, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return r
}

func TestReplayMetricsSelectorForm(t *testing.T) {
	doc := htmlx.Parse(replayDoc)
	r := simulate(t, doc, selectorSpec(
		params.SelectorTime{Selector: "#navbar", Millis: 2000},
		params.SelectorTime{Selector: "#content", Millis: 4000},
		params.SelectorTime{Selector: "#footer", Millis: 1000},
	))
	if got := r.TTFP(); got != 1000 {
		t.Errorf("TTFP = %d, want 1000 (footer first)", got)
	}
	if got := r.ATFTime(); got != 4000 {
		t.Errorf("ATFTime = %d, want 4000", got)
	}
	if vc := r.CompletenessAt(0); vc != 0 {
		t.Errorf("VC(0) = %v, want 0", vc)
	}
	if vc := r.CompletenessAt(4000); vc < 1-1e-9 {
		t.Errorf("VC(4000) = %v, want 1", vc)
	}
	mid := r.CompletenessAt(2500)
	if mid <= 0 || mid >= 1 {
		t.Errorf("VC(2500) = %v, want in (0,1)", mid)
	}
	si := r.SpeedIndex()
	if si <= 0 || si >= 4000 {
		t.Errorf("SpeedIndex = %v, want in (0, 4000)", si)
	}
	if got := r.UPLT(1.0); got != 4000 {
		t.Errorf("UPLT(1.0) = %d, want 4000", got)
	}
}

func TestReplayInstantPage(t *testing.T) {
	doc := htmlx.Parse(replayDoc)
	r := simulate(t, doc, params.PageLoadSpec{})
	if r.SpeedIndex() != 0 {
		t.Errorf("instant SpeedIndex = %v, want 0", r.SpeedIndex())
	}
	if r.ATFTime() != 0 || r.TTFP() != 0 {
		t.Errorf("instant ATF/TTFP = %d/%d", r.ATFTime(), r.TTFP())
	}
	if r.CompletenessAt(0) != 1 {
		t.Errorf("instant VC(0) = %v", r.CompletenessAt(0))
	}
}

func TestReplayCurveMonotone(t *testing.T) {
	doc := htmlx.Parse(replayDoc)
	r := simulate(t, doc, params.PageLoadSpec{UniformMillis: 3000})
	pts := r.Curve()
	if len(pts) == 0 {
		t.Fatal("empty curve")
	}
	prevY := -1.0
	prevX := -1.0
	for _, p := range pts {
		if p.Y < prevY || p.X <= prevX {
			t.Fatalf("curve not monotone: %+v", pts)
		}
		prevY, prevX = p.Y, p.X
	}
	if last := pts[len(pts)-1]; last.Y != 1 {
		t.Errorf("curve should end at VC=1, got %v", last.Y)
	}
}

// TestFig9Shape reproduces the core asymmetry behind the paper's Fig. 9
// experiment: two versions with the SAME above-the-fold completion time
// (both finish at 4s) but different content orders. Version A shows the
// navbar first; version B shows the main text first. Plain ATF time ties;
// the content-weighted uPLT strongly prefers B.
func TestFig9Shape(t *testing.T) {
	site := webgen.WikiArticle(webgen.WikiConfig{Seed: 42})
	specA := selectorSpec(
		params.SelectorTime{Selector: "#navbar", Millis: 2000},
		params.SelectorTime{Selector: "#content", Millis: 4000},
		params.SelectorTime{Selector: "#infobox", Millis: 4000},
	)
	specB := selectorSpec(
		params.SelectorTime{Selector: "#navbar", Millis: 4000},
		params.SelectorTime{Selector: "#content", Millis: 2000},
		params.SelectorTime{Selector: "#infobox", Millis: 4000},
	)
	docA := htmlx.Parse(string(site.HTML()))
	docB := htmlx.Parse(string(site.HTML()))
	css, _ := site.Get("css/style.css")
	sheet := cssx.ParseStylesheet(string(css))
	vp := render.DefaultViewport()
	ra, err := Simulate(docA, sheet, vp, specA, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Simulate(docB, sheet, vp, specB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ra.ATFTime() != rb.ATFTime() {
		t.Errorf("ATF times should tie: %d vs %d", ra.ATFTime(), rb.ATFTime())
	}
	ma := ra.MeanReadyTime(ContentWeight)
	mb := rb.MeanReadyTime(ContentWeight)
	if mb >= ma {
		t.Errorf("text-first version should feel faster: A=%v B=%v", ma, mb)
	}
	ua := ra.WeightedUPLT(0.8, ContentWeight)
	ub := rb.WeightedUPLT(0.8, ContentWeight)
	if ub >= ua {
		t.Errorf("weighted uPLT should prefer B: A=%d B=%d", ua, ub)
	}
}

func TestWeightedCompletenessDefaults(t *testing.T) {
	doc := htmlx.Parse(replayDoc)
	r := simulate(t, doc, params.PageLoadSpec{})
	if got := r.WeightedCompletenessAt(0, func(*htmlx.Node) float64 { return 0 }); got != 1 {
		t.Errorf("all-zero weights should report complete, got %v", got)
	}
	if got := r.WeightedUPLT(0.9, func(*htmlx.Node) float64 { return 0 }); got != 0 {
		t.Errorf("all-zero weights uPLT = %d, want 0", got)
	}
}

func TestContentWeight(t *testing.T) {
	doc := htmlx.Parse(replayDoc)
	content := doc.ByID("content")
	nav := doc.ByID("navbar")
	p := content.ByTag("p")[0]
	if ContentWeight(content) != 1 || ContentWeight(p) != 1 {
		t.Error("content subtree should weigh 1")
	}
	if ContentWeight(nav) >= 0.5 {
		t.Error("navbar should weigh little")
	}
	if w := ContentWeight(doc.ByID("footer")); w != 0.5 {
		t.Errorf("unclassified weight = %v, want 0.5", w)
	}
}

func TestInjectAndExtractSpec(t *testing.T) {
	doc := htmlx.Parse(`<html><head><title>t</title></head><body><p>x</p></body></html>`)
	spec := selectorSpec(params.SelectorTime{Selector: "#main", Millis: 1500})
	if err := InjectSpec(doc, spec); err != nil {
		t.Fatalf("InjectSpec: %v", err)
	}
	if doc.ByID(SpecElementID) == nil || doc.ByID(RuntimeElementID) == nil {
		t.Fatal("injected elements missing")
	}
	got, err := ExtractSpec(doc)
	if err != nil {
		t.Fatalf("ExtractSpec: %v", err)
	}
	if len(got.Schedule) != 1 || got.Schedule[0] != spec.Schedule[0] {
		t.Errorf("extracted = %+v, want %+v", got, spec)
	}
	// Survives serialization (the actual transport path).
	round := htmlx.Parse(htmlx.Render(doc))
	got, err = ExtractSpec(round)
	if err != nil {
		t.Fatalf("ExtractSpec after round-trip: %v", err)
	}
	if got.Schedule[0].Millis != 1500 {
		t.Errorf("round-trip spec = %+v", got)
	}
}

func TestInjectIdempotent(t *testing.T) {
	doc := htmlx.Parse(`<html><head></head><body></body></html>`)
	if err := InjectSpec(doc, params.PageLoadSpec{UniformMillis: 100}); err != nil {
		t.Fatal(err)
	}
	if err := InjectSpec(doc, params.PageLoadSpec{UniformMillis: 900}); err != nil {
		t.Fatal(err)
	}
	if n := len(doc.FindAll(func(n *htmlx.Node) bool { return n.ID() == SpecElementID })); n != 1 {
		t.Errorf("spec elements = %d, want 1", n)
	}
	spec, err := ExtractSpec(doc)
	if err != nil {
		t.Fatal(err)
	}
	if spec.UniformMillis != 900 {
		t.Errorf("spec = %+v, want latest injection", spec)
	}
}

func TestExtractSpecMissing(t *testing.T) {
	doc := htmlx.Parse(`<html><body></body></html>`)
	if _, err := ExtractSpec(doc); err != ErrNoSpec {
		t.Errorf("err = %v, want ErrNoSpec", err)
	}
}

func TestInjectWithoutHead(t *testing.T) {
	doc := htmlx.Parse(`<body><p>x</p></body>`)
	if err := InjectSpec(doc, params.PageLoadSpec{UniformMillis: 10}); err != nil {
		t.Fatalf("InjectSpec without head: %v", err)
	}
	if _, err := ExtractSpec(doc); err != nil {
		t.Errorf("ExtractSpec: %v", err)
	}
}

func TestApproxEqual(t *testing.T) {
	doc1 := htmlx.Parse(replayDoc)
	doc2 := htmlx.Parse(replayDoc)
	spec := selectorSpec(params.SelectorTime{Selector: "#content", Millis: 2000})
	r1, err := Simulate(doc1, nil, render.DefaultViewport(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(doc2, nil, render.DefaultViewport(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(r1, r2, 1e-9) {
		t.Error("identical replays should be approx equal")
	}
	r3, err := Simulate(htmlx.Parse(replayDoc), nil, render.DefaultViewport(),
		selectorSpec(params.SelectorTime{Selector: "#content", Millis: 3000}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ApproxEqual(r1, r3, 1e-9) {
		t.Error("different schedules should differ")
	}
}

// TestUniformScheduleStatisticalShape: with many nodes, uniform reveal
// times cover the range roughly evenly (mean near T/2).
func TestUniformScheduleStatisticalShape(t *testing.T) {
	site := webgen.WikiArticle(webgen.WikiConfig{Seed: 3})
	doc := htmlx.Parse(string(site.HTML()))
	rng := rand.New(rand.NewSource(99))
	sched, err := BuildSchedule(doc, params.PageLoadSpec{UniformMillis: 3000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var sum, n float64
	for _, tm := range sched.Reveal {
		sum += float64(tm)
		n++
	}
	mean := sum / n
	// Effective times skew late (max over ancestors), so allow a wide band
	// strictly inside (0, 3000).
	if mean < 500 || mean > 2900 {
		t.Errorf("mean reveal %v outside plausible band", mean)
	}
}

// TestSpeedIndexInvariants: SI is bounded by the end time, and delaying the
// whole page increases SI.
func TestSpeedIndexInvariants(t *testing.T) {
	f := func(delay uint16) bool {
		d := int(delay%5000) + 100
		doc := htmlx.Parse(replayDoc)
		r, err := Simulate(doc, nil, render.DefaultViewport(),
			selectorSpec(params.SelectorTime{Selector: "body", Millis: d}), nil)
		if err != nil {
			return false
		}
		si := r.SpeedIndex()
		// Everything appears at d: SI == d exactly.
		return si > float64(d)-1e-6 && si < float64(d)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestScheduleTimes(t *testing.T) {
	doc := htmlx.Parse(replayDoc)
	sched, err := BuildSchedule(doc, selectorSpec(
		params.SelectorTime{Selector: "#navbar", Millis: 2000},
		params.SelectorTime{Selector: "#content", Millis: 4000},
	), nil)
	if err != nil {
		t.Fatal(err)
	}
	times := sched.Times()
	want := []int{0, 2000, 4000}
	if len(times) != len(want) {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times[%d] = %d, want %d", i, times[i], want[i])
		}
	}
}

func TestRevealedAt(t *testing.T) {
	doc := htmlx.Parse(replayDoc)
	sched, err := BuildSchedule(doc, selectorSpec(params.SelectorTime{Selector: "#navbar", Millis: 2000}), nil)
	if err != nil {
		t.Fatal(err)
	}
	nav := doc.ByID("navbar")
	if sched.RevealedAt(nav, 1999) {
		t.Error("navbar should be hidden at 1999")
	}
	if !sched.RevealedAt(nav, 2000) {
		t.Error("navbar should be visible at 2000")
	}
	if sched.RevealedAt(htmlx.NewElement("div"), 9999) {
		t.Error("unknown node never revealed")
	}
}

func TestWeightedCurveAndUPLTThresholds(t *testing.T) {
	doc := htmlx.Parse(replayDoc)
	r := simulate(t, doc, selectorSpec(
		params.SelectorTime{Selector: "#navbar", Millis: 1000},
		params.SelectorTime{Selector: "#content", Millis: 3000},
	))
	// Threshold 0 reaches at the first event; threshold 1 at the end.
	if got := r.UPLT(0); got > 1000 {
		t.Errorf("UPLT(0) = %d", got)
	}
	if got := r.UPLT(1); got != 3000 {
		t.Errorf("UPLT(1) = %d, want 3000", got)
	}
	// Weighted completeness is monotone in time.
	prev := -1.0
	for _, ms := range []int{0, 500, 1000, 2000, 3000, 4000} {
		vc := r.WeightedCompletenessAt(ms, ContentWeight)
		if vc < prev-1e-12 {
			t.Fatalf("weighted completeness decreased at %d", ms)
		}
		prev = vc
	}
	if got := r.WeightedCompletenessAt(10_000, ContentWeight); got < 1-1e-9 {
		t.Errorf("final weighted completeness = %v", got)
	}
}

func TestMeanReadyTimeNilWeight(t *testing.T) {
	doc := htmlx.Parse(replayDoc)
	r := simulate(t, doc, selectorSpec(params.SelectorTime{Selector: "body", Millis: 2000}))
	m := r.MeanReadyTime(nil)
	if m < 2000-1e-6 || m > 2000+1e-6 {
		t.Errorf("uniform-weight mean = %v, want 2000", m)
	}
}

func TestChromeWeightComplement(t *testing.T) {
	doc := htmlx.Parse(replayDoc)
	content := doc.ByID("content")
	nav := doc.ByID("navbar")
	if ChromeWeight(nav) != 1 {
		t.Errorf("nav chrome weight = %v", ChromeWeight(nav))
	}
	if ChromeWeight(content) >= 0.5 {
		t.Errorf("content chrome weight = %v", ChromeWeight(content))
	}
	if w := ChromeWeight(doc.ByID("footer")); w != 0.5 {
		t.Errorf("unclassified chrome weight = %v", w)
	}
}

func TestEmptyPageReplay(t *testing.T) {
	doc := htmlx.Parse(`<html><head></head><body></body></html>`)
	r, err := Simulate(doc, nil, render.DefaultViewport(), params.PageLoadSpec{UniformMillis: 1000}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if r.CompletenessAt(0) != 1 {
		t.Error("empty page should be complete immediately")
	}
	if r.SpeedIndex() != 0 || r.ATFTime() != 0 {
		t.Errorf("empty page metrics: SI=%v ATF=%d", r.SpeedIndex(), r.ATFTime())
	}
}

func TestTTFMP(t *testing.T) {
	doc := htmlx.Parse(replayDoc)
	r := simulate(t, doc, selectorSpec(
		params.SelectorTime{Selector: "#navbar", Millis: 500},
		params.SelectorTime{Selector: "#content", Millis: 2000},
	))
	// Meaningful (content-weighted) paint waits for the main text, even
	// though the nav painted at 500.
	ttfmp := r.TTFMP(0.25)
	if ttfmp < 500 {
		t.Errorf("TTFMP = %d, implausible", ttfmp)
	}
	if r.TTFP() > ttfmp {
		t.Errorf("TTFP %d should not exceed TTFMP %d", r.TTFP(), ttfmp)
	}
	// Raising the threshold never lowers TTFMP.
	if r.TTFMP(0.9) < r.TTFMP(0.25) {
		t.Error("TTFMP not monotone in threshold")
	}
}
