package obs

import (
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})

	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}

	// 100 observations uniformly in (0,1]: every quantile interpolates
	// inside the first bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	if got := h.Quantile(0.5); got != 0.5 {
		t.Errorf("p50 = %v, want 0.5 (midpoint of first bucket)", got)
	}
	if got := h.Quantile(1); got != 1 {
		t.Errorf("p100 = %v, want 1 (upper bound of first bucket)", got)
	}

	// Add 100 observations in (2,4]: p75 lands in the second populated
	// bucket, halfway through it.
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	if got := h.Quantile(0.75); got != 3 {
		t.Errorf("p75 = %v, want 3 (midpoint of (2,4])", got)
	}

	// Overflow observations clamp to the highest finite bound.
	over := newHistogram([]float64{1, 2})
	over.Observe(50)
	if got := over.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %v, want 2 (highest bound)", got)
	}

	// Out-of-range q is clamped, not NaN.
	if got := h.Quantile(-1); math.IsNaN(got) || got < 0 {
		t.Errorf("q=-1 -> %v", got)
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Errorf("q=2 -> %v, want same as q=1", got)
	}
}

// Quantiles are monotone in q and bounded by the bucket range.
func TestHistogramQuantileMonotone(t *testing.T) {
	h := newHistogram(DefLatencyBuckets)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 0.001)
	}
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone: q=%.2f -> %v after %v", q, v, prev)
		}
		if v < 0 || v > DefLatencyBuckets[len(DefLatencyBuckets)-1] {
			t.Fatalf("quantile out of range: %v", v)
		}
		prev = v
	}
}
