package obs

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Metric names emitted by Middleware.
const (
	MetricRequests        = "kscope_http_requests_total"
	MetricRequestDuration = "kscope_http_request_duration_seconds"
	MetricResponseBytes   = "kscope_http_response_bytes_total"
	// MetricInflight gauges requests currently being served — what a
	// graceful shutdown drains to zero.
	MetricInflight = "kscope_http_inflight_requests"
)

// RouteFunc maps a request onto a low-cardinality route label ("GET
// /api/tests/{id}"). Returning "" labels the request "other".
type RouteFunc func(*http.Request) string

type ctxKey int

const loggerKey ctxKey = 0

// ContextLogger returns the request-scoped logger installed by Middleware,
// or slog.Default() outside of one.
func ContextLogger(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok {
		return l
	}
	return slog.Default()
}

// statusWriter captures the response status and size.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports streaming.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// reqSeq numbers requests process-wide for the request id.
var reqSeq atomic.Int64

// Middleware wraps next with request-scoped structured logging and metrics:
// one log line per request (method, path, route, status, duration, bytes,
// request id), a request counter by route and status, a latency histogram
// by route, and a response-size counter. A nil logger disables logging; a
// nil registry disables metrics; a nil route function labels every request
// by its method only.
func Middleware(next http.Handler, logger *slog.Logger, reg *Registry, route RouteFunc) http.Handler {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	var inflight atomic.Int64
	if reg != nil {
		reg.RegisterGauge(MetricInflight, func() float64 {
			return float64(inflight.Load())
		})
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inflight.Add(1)
		defer inflight.Add(-1)
		start := time.Now()
		id := reqSeq.Add(1)
		reqLogger := logger.With("request_id", id)
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set("X-Request-ID", strconv.FormatInt(id, 10))
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), loggerKey, reqLogger)))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)

		label := ""
		if route != nil {
			label = route(r)
		}
		if label == "" {
			label = r.Method
		}
		if reg != nil {
			status := strconv.Itoa(sw.status)
			reg.Counter(MetricRequests, "route", label, "status", status).Inc()
			reg.Counter(MetricResponseBytes, "route", label).Add(sw.bytes)
			reg.Histogram(MetricRequestDuration, DefLatencyBuckets, "route", label).Observe(elapsed.Seconds())
		}
		reqLogger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"route", label,
			"status", sw.status,
			"duration_ms", float64(elapsed.Microseconds())/1000,
			"bytes", sw.bytes,
		)
	})
}
