// Package obs is Kaleidoscope's observability substrate: a dependency-free
// metrics registry (atomic counters, fixed-bucket histograms, callback
// gauges) with Prometheus-style text exposition, plus request-scoped
// structured-logging middleware for the serving path. The paper's system
// has no stated telemetry; growing the core server toward production
// traffic makes "how many requests, how slow, how often did the store
// scan" first-class questions.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// DefLatencyBuckets are the default request-latency histogram bounds, in
// seconds.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// DefSizeBuckets are the default bounds for count-like histograms (batch
// sizes, element counts): powers of two from 1 through 16384.
var DefSizeBuckets = []float64{
	1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384,
}

// Histogram is a fixed-bucket histogram with atomic observation.
type Histogram struct {
	bounds []float64      // upper bounds, ascending; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	total  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	cp := make([]float64, len(bounds))
	copy(cp, bounds)
	sort.Float64s(cp)
	return &Histogram{bounds: cp, counts: make([]atomic.Int64, len(cp)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Quantile estimates the q-th quantile (0..1) from the bucket counts by
// linear interpolation inside the bucket holding the target rank, the way
// Prometheus's histogram_quantile does. Values in the overflow (+Inf)
// bucket clamp to the highest finite bound; an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	cumulative := int64(0)
	for i, bound := range h.bounds {
		n := h.counts[i].Load()
		if float64(cumulative+n) >= target && n > 0 {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			frac := (target - float64(cumulative)) / float64(n)
			return lower + (bound-lower)*frac
		}
		cumulative += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Registry holds named metrics. The zero value is not usable; construct
// with NewRegistry. All methods are safe for concurrent use; Counter and
// HistogramVec lookups are cheap enough for per-request paths.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
	gauges     map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
		gauges:     make(map[string]func() float64),
	}
}

// key renders "name{k1=v1,k2=v2}" with label pairs in given order; labels
// come as alternating key, value strings.
func key(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(labels[i+1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns (creating on first use) the counter with the given name
// and alternating label key/value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	k := key(name, labels)
	r.mu.RLock()
	c, ok := r.counters[k]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[k]; ok {
		return c
	}
	c = &Counter{}
	r.counters[k] = c
	return c
}

// Histogram returns (creating on first use) the histogram with the given
// name, bucket bounds, and labels. Bounds are only consulted on creation.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	k := key(name, labels)
	r.mu.RLock()
	h, ok := r.histograms[k]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[k]; ok {
		return h
	}
	h = newHistogram(bounds)
	r.histograms[k] = h
	return h
}

// RegisterGauge exposes fn's current value under the given name (labels may
// be baked into the name). Re-registering replaces the callback.
func (r *Registry) RegisterGauge(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// WriteMetrics renders every metric in Prometheus text format, sorted by
// key for deterministic output.
func (r *Registry) WriteMetrics(w io.Writer) {
	r.mu.RLock()
	counterKeys := make([]string, 0, len(r.counters))
	for k := range r.counters {
		counterKeys = append(counterKeys, k)
	}
	histKeys := make([]string, 0, len(r.histograms))
	for k := range r.histograms {
		histKeys = append(histKeys, k)
	}
	gaugeKeys := make([]string, 0, len(r.gauges))
	for k := range r.gauges {
		gaugeKeys = append(gaugeKeys, k)
	}
	r.mu.RUnlock()
	sort.Strings(counterKeys)
	sort.Strings(histKeys)
	sort.Strings(gaugeKeys)

	for _, k := range counterKeys {
		r.mu.RLock()
		c := r.counters[k]
		r.mu.RUnlock()
		fmt.Fprintf(w, "%s %d\n", k, c.Value())
	}
	for _, k := range histKeys {
		r.mu.RLock()
		h := r.histograms[k]
		r.mu.RUnlock()
		name, labels := splitKey(k)
		cumulative := int64(0)
		for i, bound := range h.bounds {
			cumulative += h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, fmt.Sprintf(`le="%g"`, bound)), cumulative)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, `le="+Inf"`), h.Count())
		fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, h.Sum())
		fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
	}
	for _, k := range gaugeKeys {
		r.mu.RLock()
		fn := r.gauges[k]
		r.mu.RUnlock()
		fmt.Fprintf(w, "%s %g\n", k, fn())
	}
}

// splitKey separates "name{labels}" into name and "{labels}" ("" when bare).
func splitKey(k string) (name, labels string) {
	if i := strings.IndexByte(k, '{'); i >= 0 {
		return k[:i], k[i:]
	}
	return k, ""
}

// mergeLabels injects extra into a "{...}" label block (or creates one).
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// Handler serves the registry in Prometheus text format (GET /metrics).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteMetrics(w)
	})
}
