package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndKey(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs", "route", "GET /x", "status", "200")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored
	if got := c.Value(); got != 3 {
		t.Errorf("value = %d, want 3", got)
	}
	// Same name+labels returns the same counter.
	if r.Counter("reqs", "route", "GET /x", "status", "200") != c {
		t.Error("counter identity lost")
	}
	var b bytes.Buffer
	r.WriteMetrics(&b)
	want := `reqs{route="GET /x",status="200"} 3`
	if !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, b.String())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 5.55 || got > 5.56 {
		t.Errorf("sum = %g", got)
	}
	var b bytes.Buffer
	r.WriteMetrics(&b)
	out := b.String()
	for _, want := range []string{
		`lat_bucket{le="0.01"} 1`,
		`lat_bucket{le="0.1"} 2`,
		`lat_bucket{le="1"} 3`,
		`lat_bucket{le="+Inf"} 4`,
		`lat_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(DefLatencyBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
	if got := h.Sum(); got < 7.99 || got > 8.01 {
		t.Errorf("sum = %g, want ~8", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	r.RegisterGauge(`ratio{cache="info"}`, func() float64 { return 0.75 })
	var b bytes.Buffer
	r.WriteMetrics(&b)
	if !strings.Contains(b.String(), `ratio{cache="info"} 0.75`) {
		t.Errorf("exposition missing gauge:\n%s", b.String())
	}
}

func TestMiddleware(t *testing.T) {
	reg := NewRegistry()
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The request-scoped logger is reachable from the context.
		ContextLogger(r.Context()).Info("inner")
		w.WriteHeader(http.StatusTeapot)
		_, _ = w.Write([]byte("short and stout"))
	})
	h := Middleware(inner, logger, reg, func(r *http.Request) string { return "GET /teapot" })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/teapot", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec.Header().Get("X-Request-ID") == "" {
		t.Error("missing request id header")
	}
	if got := reg.Counter(MetricRequests, "route", "GET /teapot", "status", "418").Value(); got != 1 {
		t.Errorf("request counter = %d", got)
	}
	if got := reg.Histogram(MetricRequestDuration, DefLatencyBuckets, "route", "GET /teapot").Count(); got != 1 {
		t.Errorf("histogram count = %d", got)
	}
	log := logBuf.String()
	for _, want := range []string{"request_id=", "status=418", "route=\"GET /teapot\""} {
		if !strings.Contains(log, want) {
			t.Errorf("log missing %q:\n%s", want, log)
		}
	}
}

func TestMetricsHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Inc()
	rec := httptest.NewRecorder()
	Handler(reg).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "x 1") {
		t.Errorf("metrics = %d %q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
}
