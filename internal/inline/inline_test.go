package inline

import (
	"encoding/base64"
	"errors"
	"strings"
	"testing"

	"kaleidoscope/internal/htmlx"
	"kaleidoscope/internal/webgen"
)

func sampleSite() *webgen.Site {
	s := webgen.NewSite("index.html")
	s.Put("index.html", []byte(`<!DOCTYPE html><html><head>
<link rel="stylesheet" href="css/style.css">
<script src="js/app.js"></script>
</head><body>
<img src="img/photo.png" alt="p">
<style>#hero { background: url("img/bg.png"); }</style>
</body></html>`))
	s.Put("css/style.css", []byte(`p { color: red; } .icon { background: url('../img/icon.png'); }`))
	s.Put("js/app.js", []byte(`console.log("hi");`))
	s.Put("img/photo.png", []byte("PHOTODATA"))
	s.Put("img/bg.png", []byte("BGDATA"))
	s.Put("img/icon.png", []byte("ICONDATA"))
	return s
}

func TestInlineBasic(t *testing.T) {
	html, rpt, err := Inline(sampleSite(), Options{})
	if err != nil {
		t.Fatalf("Inline: %v", err)
	}
	if rpt.InlinedCSS != 1 || rpt.InlinedJS != 1 || rpt.InlinedImages != 1 {
		t.Errorf("report = %+v", rpt)
	}
	if rpt.InlinedCSSURLs != 2 {
		t.Errorf("css urls = %d, want 2 (icon + bg)", rpt.InlinedCSSURLs)
	}
	if strings.Contains(html, `href="css/style.css"`) {
		t.Error("stylesheet link should be replaced")
	}
	if strings.Contains(html, `src="js/app.js"`) {
		t.Error("script src should be removed")
	}
	if !strings.Contains(html, `console.log("hi");`) {
		t.Error("script body should be inlined verbatim")
	}
	wantImg := "data:image/png;base64," + base64.StdEncoding.EncodeToString([]byte("PHOTODATA"))
	if !strings.Contains(html, wantImg) {
		t.Error("image should be a data URI")
	}
	if !strings.Contains(html, base64.StdEncoding.EncodeToString([]byte("ICONDATA"))) {
		t.Error("CSS url() should be rewritten to a data URI")
	}
	if !strings.Contains(html, base64.StdEncoding.EncodeToString([]byte("BGDATA"))) {
		t.Error("inline <style> url() should be rewritten")
	}
	if len(rpt.Missing) != 0 {
		t.Errorf("missing = %v, want none", rpt.Missing)
	}
	if rpt.OutputBytes != len(html) {
		t.Errorf("OutputBytes = %d, want %d", rpt.OutputBytes, len(html))
	}
}

func TestInlineIsSelfContained(t *testing.T) {
	html, _, err := Inline(sampleSite(), Options{})
	if err != nil {
		t.Fatalf("Inline: %v", err)
	}
	doc := htmlx.Parse(html)
	for _, link := range doc.ByTag("link") {
		if strings.EqualFold(link.AttrOr("rel", ""), "stylesheet") {
			t.Error("self-contained page should have no stylesheet links")
		}
	}
	for _, script := range doc.ByTag("script") {
		if _, ok := script.Attr("src"); ok {
			t.Error("self-contained page should have no script src")
		}
	}
	for _, img := range doc.ByTag("img") {
		src := img.AttrOr("src", "")
		if !strings.HasPrefix(src, "data:") {
			t.Errorf("img src %q is not a data URI", src)
		}
	}
}

func TestInlineMissingLenient(t *testing.T) {
	s := sampleSite()
	delete(s.Files, "img/photo.png")
	html, rpt, err := Inline(s, Options{})
	if err != nil {
		t.Fatalf("lenient mode should not fail: %v", err)
	}
	if len(rpt.Missing) != 1 || rpt.Missing[0] != "img/photo.png" {
		t.Errorf("missing = %v", rpt.Missing)
	}
	if !strings.Contains(html, `src="img/photo.png"`) {
		t.Error("missing resource reference should be left untouched")
	}
}

func TestInlineMissingStrict(t *testing.T) {
	s := sampleSite()
	delete(s.Files, "js/app.js")
	_, _, err := Inline(s, Options{Strict: true})
	var mre *MissingResourceError
	if !errors.As(err, &mre) {
		t.Fatalf("err = %v, want MissingResourceError", err)
	}
	if mre.Ref != "js/app.js" {
		t.Errorf("Ref = %q", mre.Ref)
	}
}

func TestInlineExternalURLs(t *testing.T) {
	s := webgen.NewSite("index.html")
	s.Put("index.html", []byte(`<html><head>
<link rel="stylesheet" href="https://cdn.example/style.css">
<script src="//cdn.example/app.js"></script>
</head><body><img src="http://cdn.example/x.png"></body></html>`))

	// Default: external refs left alone (and not counted missing).
	html, rpt, err := Inline(s, Options{})
	if err != nil {
		t.Fatalf("Inline: %v", err)
	}
	if len(rpt.Missing) != 0 {
		t.Errorf("external refs should not count as missing: %v", rpt.Missing)
	}
	if !strings.Contains(html, "cdn.example/style.css") {
		t.Error("external link should remain by default")
	}

	// DropExternal: remove/replace them so zero network fetches remain.
	html, rpt, err = Inline(s, Options{DropExternal: true})
	if err != nil {
		t.Fatalf("Inline: %v", err)
	}
	if len(rpt.Dropped) != 3 {
		t.Errorf("dropped = %v, want 3", rpt.Dropped)
	}
	if strings.Contains(html, "cdn.example/style.css") || strings.Contains(html, "cdn.example/app.js") {
		t.Error("external css/js should be dropped")
	}
	doc := htmlx.Parse(html)
	img := doc.ByTag("img")[0]
	if !strings.HasPrefix(img.AttrOr("src", ""), "data:image/gif") {
		t.Error("external image should become a placeholder pixel")
	}
}

func TestInlineSkipsDataAndFragment(t *testing.T) {
	s := webgen.NewSite("index.html")
	s.Put("index.html", []byte(`<html><body><img src="data:image/png;base64,AAA="><a href="#top">t</a></body></html>`))
	html, rpt, err := Inline(s, Options{Strict: true})
	if err != nil {
		t.Fatalf("Inline: %v", err)
	}
	if rpt.InlinedImages != 0 {
		t.Error("existing data URI should not be re-inlined")
	}
	if !strings.Contains(html, "base64,AAA=") {
		t.Error("data URI should survive")
	}
}

func TestInlineQueryStringRefs(t *testing.T) {
	s := webgen.NewSite("index.html")
	s.Put("index.html", []byte(`<html><body><img src="img/a.png?v=2#frag"></body></html>`))
	s.Put("img/a.png", []byte("A"))
	_, rpt, err := Inline(s, Options{Strict: true})
	if err != nil {
		t.Fatalf("query-string ref should resolve: %v", err)
	}
	if rpt.InlinedImages != 1 {
		t.Errorf("inlined = %d, want 1", rpt.InlinedImages)
	}
}

func TestInlineNestedMainFile(t *testing.T) {
	s := webgen.NewSite("pages/index.html")
	s.Put("pages/index.html", []byte(`<html><body><img src="../img/x.png"></body></html>`))
	s.Put("img/x.png", []byte("X"))
	_, rpt, err := Inline(s, Options{Strict: true})
	if err != nil {
		t.Fatalf("relative ref from nested main: %v", err)
	}
	if rpt.InlinedImages != 1 {
		t.Errorf("inlined = %d, want 1", rpt.InlinedImages)
	}
}

func TestInlineRootAbsoluteRef(t *testing.T) {
	s := webgen.NewSite("index.html")
	s.Put("index.html", []byte(`<html><body><img src="/img/x.png"></body></html>`))
	s.Put("img/x.png", []byte("X"))
	_, rpt, err := Inline(s, Options{Strict: true})
	if err != nil {
		t.Fatalf("root-absolute ref: %v", err)
	}
	if rpt.InlinedImages != 1 {
		t.Errorf("inlined = %d, want 1", rpt.InlinedImages)
	}
}

func TestInlineInvalidSite(t *testing.T) {
	s := webgen.NewSite("index.html")
	if _, _, err := Inline(s, Options{}); err == nil {
		t.Error("site without main file should fail")
	}
}

func TestSingleFileSite(t *testing.T) {
	one, rpt, err := SingleFileSite(sampleSite(), Options{})
	if err != nil {
		t.Fatalf("SingleFileSite: %v", err)
	}
	if len(one.Files) != 1 {
		t.Fatalf("files = %d, want 1", len(one.Files))
	}
	if one.MainFile != "index.html" {
		t.Errorf("main file = %q", one.MainFile)
	}
	if rpt.InlinedImages != 1 {
		t.Errorf("report = %+v", rpt)
	}
	// The single file must itself be a valid site.
	if err := one.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSingleFileSiteError(t *testing.T) {
	s := sampleSite()
	delete(s.Files, "css/style.css")
	if _, _, err := SingleFileSite(s, Options{Strict: true}); err == nil {
		t.Error("strict missing resource should fail")
	}
}

// TestInlineWikiArticle runs the inliner over the real generator output —
// the paper's actual pipeline step.
func TestInlineWikiArticle(t *testing.T) {
	site := webgen.WikiArticle(webgen.WikiConfig{Seed: 11})
	html, rpt, err := Inline(site, Options{Strict: true, DropExternal: true})
	if err != nil {
		t.Fatalf("Inline(wiki): %v", err)
	}
	if rpt.InlinedCSS != 1 || rpt.InlinedJS != 1 || rpt.InlinedImages != 3 {
		t.Errorf("report = %+v, want 1 css, 1 js, 3 images", rpt)
	}
	// Result parses and retains the experiment hooks.
	doc := htmlx.Parse(html)
	for _, id := range []string{"navbar", "content", "references"} {
		if doc.ByID(id) == nil {
			t.Errorf("inlined page lost #%s", id)
		}
	}
	if len(html) <= site.TotalBytes()/2 {
		t.Errorf("inlined output suspiciously small: %d vs site %d", len(html), site.TotalBytes())
	}
}

func TestMimeFor(t *testing.T) {
	tests := map[string]string{
		"a.png": "image/png", "b.JPG": "image/jpeg", "c.jpeg": "image/jpeg",
		"d.gif": "image/gif", "e.svg": "image/svg+xml", "f.css": "text/css",
		"g.js": "text/javascript", "h.woff2": "font/woff2", "i.bin": "application/octet-stream",
		"j.png?v=1": "image/png",
	}
	for ref, want := range tests {
		if got := mimeFor(ref); got != want {
			t.Errorf("mimeFor(%q) = %q, want %q", ref, got, want)
		}
	}
}
