// Package inline implements Kaleidoscope's SingleFile-equivalent: it
// compresses a saved-webpage folder (an HTML document plus resource files)
// into one self-contained HTML document. The paper needs this because the
// browser extension cannot interact with the filesystem — each test webpage
// must be downloadable as a single file.
//
// Stylesheets become <style> elements (with url(...) references rewritten
// to data: URIs), scripts become inline <script> elements, and images
// become base64 data: URIs.
package inline

import (
	"encoding/base64"
	"fmt"
	"path"
	"strings"

	"kaleidoscope/internal/htmlx"
	"kaleidoscope/internal/webgen"
)

// Options controls inlining behaviour.
type Options struct {
	// Strict makes missing resources an error. When false (the default),
	// references to missing resources are left untouched, mirroring
	// SingleFile's tolerance of partially saved pages.
	Strict bool
	// DropExternal removes references to absolute http(s) URLs that cannot
	// be resolved from the folder (instead of leaving them). Kaleidoscope
	// uses this to guarantee the integrated page loads with zero network
	// fetches.
	DropExternal bool
}

// Report summarizes what Inline did.
type Report struct {
	InlinedCSS     int // stylesheets converted to <style>
	InlinedJS      int // scripts converted to inline <script>
	InlinedImages  int // images converted to data: URIs
	InlinedCSSURLs int // url(...) references rewritten inside CSS
	Missing        []string
	Dropped        []string
	OutputBytes    int
}

// MissingResourceError reports a reference that could not be resolved in
// Strict mode.
type MissingResourceError struct {
	Ref string
}

func (e *MissingResourceError) Error() string {
	return fmt.Sprintf("inline: resource %q not found in site", e.Ref)
}

// Inline renders the site's main document with every resolvable resource
// embedded, returning the self-contained HTML.
func Inline(site *webgen.Site, opts Options) (string, *Report, error) {
	if err := site.Validate(); err != nil {
		return "", nil, fmt.Errorf("inline: %w", err)
	}
	rpt := &Report{}
	doc := htmlx.Parse(string(site.HTML()))
	baseDir := path.Dir(site.MainFile)

	var failure error
	record := func(ref string) bool {
		rpt.Missing = append(rpt.Missing, ref)
		if opts.Strict && failure == nil {
			failure = &MissingResourceError{Ref: ref}
		}
		return false
	}

	resolve := func(ref string) ([]byte, bool) {
		if ref == "" || strings.HasPrefix(ref, "data:") || strings.HasPrefix(ref, "#") {
			return nil, false
		}
		if isExternalURL(ref) {
			return nil, false
		}
		clean := ref
		if i := strings.IndexAny(clean, "?#"); i >= 0 {
			clean = clean[:i]
		}
		data, ok := site.Get(path.Join(baseDir, clean))
		if !ok {
			// Also try the raw path for absolute-from-root references.
			data, ok = site.Get(strings.TrimPrefix(clean, "/"))
		}
		if !ok {
			return nil, record(ref)
		}
		return data, true
	}

	// Pass 1: <link rel=stylesheet> -> <style>.
	for _, link := range doc.ByTag("link") {
		if !strings.EqualFold(link.AttrOr("rel", ""), "stylesheet") {
			continue
		}
		href := link.AttrOr("href", "")
		data, ok := resolve(href)
		if !ok {
			if opts.DropExternal && isExternalURL(href) {
				dropNode(link)
				rpt.Dropped = append(rpt.Dropped, href)
			}
			continue
		}
		css := inlineCSSURLs(string(data), path.Dir(path.Join(baseDir, href)), site, rpt, record)
		style := htmlx.NewElement("style")
		style.AppendChild(htmlx.NewText(css))
		replaceNode(link, style)
		rpt.InlinedCSS++
	}

	// Pass 2: <script src> -> inline script.
	for _, script := range doc.ByTag("script") {
		src, ok := script.Attr("src")
		if !ok {
			continue
		}
		data, resolved := resolve(src)
		if !resolved {
			if opts.DropExternal && isExternalURL(src) {
				dropNode(script)
				rpt.Dropped = append(rpt.Dropped, src)
			}
			continue
		}
		script.RemoveAttr("src")
		script.Children = nil
		script.AppendChild(htmlx.NewText(string(data)))
		rpt.InlinedJS++
	}

	// Pass 3: <img src> and <source src> -> data URIs.
	for _, tag := range []string{"img", "source"} {
		for _, img := range doc.ByTag(tag) {
			src, ok := img.Attr("src")
			if !ok {
				continue
			}
			data, resolved := resolve(src)
			if !resolved {
				if opts.DropExternal && isExternalURL(src) {
					img.SetAttr("src", transparentPixel)
					rpt.Dropped = append(rpt.Dropped, src)
				}
				continue
			}
			img.SetAttr("src", dataURI(mimeFor(src), data))
			rpt.InlinedImages++
		}
	}

	// Pass 4: inline <style> elements may also carry url() references.
	for _, style := range doc.ByTag("style") {
		if len(style.Children) != 1 || style.Children[0].Type != htmlx.TextNode {
			continue
		}
		style.Children[0].Data = inlineCSSURLs(style.Children[0].Data, baseDir, site, rpt, record)
	}

	if failure != nil {
		return "", rpt, failure
	}
	out := htmlx.Render(doc)
	rpt.OutputBytes = len(out)
	return out, rpt, nil
}

// inlineCSSURLs rewrites url(...) references in CSS to data: URIs resolved
// against cssDir.
func inlineCSSURLs(css, cssDir string, site *webgen.Site, rpt *Report, record func(string) bool) string {
	var b strings.Builder
	rest := css
	for {
		idx := strings.Index(rest, "url(")
		if idx < 0 {
			b.WriteString(rest)
			return b.String()
		}
		b.WriteString(rest[:idx])
		end := strings.IndexByte(rest[idx:], ')')
		if end < 0 {
			b.WriteString(rest[idx:])
			return b.String()
		}
		ref := strings.TrimSpace(rest[idx+4 : idx+end])
		ref = strings.Trim(ref, `"'`)
		rest = rest[idx+end+1:]
		switch {
		case ref == "" || strings.HasPrefix(ref, "data:") || isExternalURL(ref):
			fmt.Fprintf(&b, "url(%s)", ref)
		default:
			data, ok := site.Get(path.Join(cssDir, ref))
			if !ok {
				record(ref)
				fmt.Fprintf(&b, "url(%s)", ref)
				continue
			}
			fmt.Fprintf(&b, "url(%s)", dataURI(mimeFor(ref), data))
			rpt.InlinedCSSURLs++
		}
	}
}

// transparentPixel is a 1x1 transparent GIF, used when dropping external
// images so layout keeps an img element.
const transparentPixel = "data:image/gif;base64,R0lGODlhAQABAIAAAAAAAP///yH5BAEAAAAALAAAAAABAAEAAAIBRAA7"

func isExternalURL(ref string) bool {
	lower := strings.ToLower(ref)
	return strings.HasPrefix(lower, "http://") ||
		strings.HasPrefix(lower, "https://") ||
		strings.HasPrefix(lower, "//")
}

func dataURI(mime string, data []byte) string {
	return "data:" + mime + ";base64," + base64.StdEncoding.EncodeToString(data)
}

// mimeFor guesses a MIME type from a file extension; the set covers what
// saved webpages contain.
func mimeFor(ref string) string {
	if i := strings.IndexAny(ref, "?#"); i >= 0 {
		ref = ref[:i]
	}
	switch strings.ToLower(path.Ext(ref)) {
	case ".png":
		return "image/png"
	case ".jpg", ".jpeg":
		return "image/jpeg"
	case ".gif":
		return "image/gif"
	case ".svg":
		return "image/svg+xml"
	case ".webp":
		return "image/webp"
	case ".ico":
		return "image/x-icon"
	case ".css":
		return "text/css"
	case ".js":
		return "text/javascript"
	case ".woff":
		return "font/woff"
	case ".woff2":
		return "font/woff2"
	case ".ttf":
		return "font/ttf"
	default:
		return "application/octet-stream"
	}
}

// replaceNode swaps old for new within old's parent.
func replaceNode(old, new *htmlx.Node) {
	parent := old.Parent
	if parent == nil {
		return
	}
	for i, c := range parent.Children {
		if c == old {
			new.Parent = parent
			parent.Children[i] = new
			old.Parent = nil
			return
		}
	}
}

func dropNode(n *htmlx.Node) {
	if n.Parent != nil {
		n.Parent.RemoveChild(n)
	}
}

// SingleFileSite wraps Inline and returns the result as a one-file Site —
// the exact artifact the aggregator stores for the browser extension to
// download.
func SingleFileSite(site *webgen.Site, opts Options) (*webgen.Site, *Report, error) {
	html, rpt, err := Inline(site, opts)
	if err != nil {
		return nil, rpt, err
	}
	out := webgen.NewSite(site.MainFile)
	out.Put(site.MainFile, []byte(html))
	return out, rpt, nil
}
