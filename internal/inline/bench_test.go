package inline

import (
	"testing"

	"kaleidoscope/internal/webgen"
)

func BenchmarkInlineWikiArticle(b *testing.B) {
	site := webgen.WikiArticle(webgen.WikiConfig{Seed: 1})
	b.ReportAllocs()
	b.SetBytes(int64(site.TotalBytes()))
	for i := 0; i < b.N; i++ {
		if _, _, err := Inline(site, Options{DropExternal: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInlineGroupPage(b *testing.B) {
	site := webgen.GroupPage(webgen.GroupConfig{Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Inline(site, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
