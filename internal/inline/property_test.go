package inline

import (
	"strings"
	"testing"
	"testing/quick"

	"kaleidoscope/internal/htmlx"
	"kaleidoscope/internal/webgen"
)

// assertSelfContained fails unless the HTML references no external
// resources at all.
func assertSelfContained(t *testing.T, html string) {
	t.Helper()
	doc := htmlx.Parse(html)
	for _, link := range doc.ByTag("link") {
		if strings.EqualFold(link.AttrOr("rel", ""), "stylesheet") {
			t.Fatalf("external stylesheet survives: %q", link.AttrOr("href", ""))
		}
	}
	for _, script := range doc.ByTag("script") {
		if src, ok := script.Attr("src"); ok {
			t.Fatalf("external script survives: %q", src)
		}
	}
	for _, img := range doc.ByTag("img") {
		if src := img.AttrOr("src", ""); !strings.HasPrefix(src, "data:") {
			t.Fatalf("external image survives: %q", src)
		}
	}
}

// TestInlineSelfContainedProperty: every wiki/group generator output,
// across arbitrary configurations, inlines into a fully self-contained
// page — the property the browser extension's offline replay depends on.
func TestInlineSelfContainedProperty(t *testing.T) {
	f := func(seed int64, fontPt, sections, images uint8) bool {
		cfg := webgen.WikiConfig{
			Seed:       seed,
			FontSizePt: int(fontPt%20) + 6,
			Sections:   int(sections%8) + 1,
			Images:     int(images%5) + 1,
			ImageBytes: 256,
		}
		site := webgen.WikiArticle(cfg)
		html, rpt, err := Inline(site, Options{Strict: true, DropExternal: true})
		if err != nil {
			t.Logf("inline failed for %+v: %v", cfg, err)
			return false
		}
		if len(rpt.Missing) != 0 {
			return false
		}
		assertSelfContained(t, html)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestInlineGroupSelfContainedProperty(t *testing.T) {
	f := func(seed int64, variant bool, items uint8) bool {
		site := webgen.GroupPage(webgen.GroupConfig{
			Seed:            seed,
			ExpandVariant:   variant,
			ItemsPerSection: int(items%6) + 2,
		})
		html, _, err := Inline(site, Options{Strict: true, DropExternal: true})
		if err != nil {
			return false
		}
		assertSelfContained(t, html)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
