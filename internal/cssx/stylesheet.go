package cssx

import (
	"fmt"
	"strings"

	"kaleidoscope/internal/htmlx"
)

// Declaration is one property: value pair inside a rule.
type Declaration struct {
	Property string
	Value    string
}

// Rule is one style rule: a selector group with declarations.
type Rule struct {
	Selectors *SelectorList
	Decls     []Declaration
}

// Stylesheet is a parsed CSS document. At-rules other than @media are
// skipped; @media blocks are flattened (their rules kept unconditionally),
// which is the right behaviour for Kaleidoscope's single-viewport replay.
type Stylesheet struct {
	Rules []Rule
}

// ParseStylesheet parses CSS source. It is forgiving: unparsable rules are
// skipped rather than failing the sheet, matching browser error recovery.
func ParseStylesheet(src string) *Stylesheet {
	sheet := &Stylesheet{}
	parseRules(stripComments(src), sheet)
	return sheet
}

func parseRules(src string, sheet *Stylesheet) {
	rest := src
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return
		}
		if rest[0] == '@' {
			rest = parseAtRule(rest, sheet)
			continue
		}
		brace := strings.IndexByte(rest, '{')
		if brace < 0 {
			return // trailing junk without a block
		}
		selSrc := rest[:brace]
		body, remaining, ok := readBlock(rest[brace:])
		if !ok {
			return
		}
		rest = remaining
		selectors, err := ParseSelectorList(selSrc)
		if err != nil {
			continue // skip unparsable rule, keep going
		}
		sheet.Rules = append(sheet.Rules, Rule{
			Selectors: selectors,
			Decls:     ParseDeclarations(body),
		})
	}
}

// parseAtRule consumes one at-rule at the head of src and returns the
// remaining input. @media blocks are recursed into; other at-rules are
// skipped entirely.
func parseAtRule(src string, sheet *Stylesheet) string {
	brace := strings.IndexByte(src, '{')
	semi := strings.IndexByte(src, ';')
	// Statement at-rule, e.g. @import "...";
	if semi >= 0 && (brace < 0 || semi < brace) {
		return src[semi+1:]
	}
	if brace < 0 {
		return ""
	}
	body, remaining, ok := readBlock(src[brace:])
	if !ok {
		return ""
	}
	if strings.HasPrefix(src, "@media") {
		parseRules(body, sheet)
	}
	return remaining
}

// readBlock reads a balanced {...} block starting at src[0] == '{' and
// returns its body and the input after the closing brace.
func readBlock(src string) (body, rest string, ok bool) {
	if src == "" || src[0] != '{' {
		return "", "", false
	}
	depth := 0
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				return src[1:i], src[i+1:], true
			}
		}
	}
	// Unterminated block: treat the remainder as the body.
	return src[1:], "", true
}

// ParseDeclarations parses the body of a rule into declarations. Malformed
// entries are skipped.
func ParseDeclarations(body string) []Declaration {
	var decls []Declaration
	for _, chunk := range strings.Split(body, ";") {
		chunk = strings.TrimSpace(chunk)
		if chunk == "" {
			continue
		}
		colon := strings.IndexByte(chunk, ':')
		if colon <= 0 {
			continue
		}
		prop := strings.ToLower(strings.TrimSpace(chunk[:colon]))
		val := strings.TrimSpace(chunk[colon+1:])
		if prop == "" || val == "" {
			continue
		}
		decls = append(decls, Declaration{Property: prop, Value: val})
	}
	return decls
}

// stripComments removes /* ... */ comments.
func stripComments(src string) string {
	var b strings.Builder
	for {
		start := strings.Index(src, "/*")
		if start < 0 {
			b.WriteString(src)
			return b.String()
		}
		b.WriteString(src[:start])
		end := strings.Index(src[start+2:], "*/")
		if end < 0 {
			return b.String()
		}
		src = src[start+2+end+2:]
	}
}

// ComputedStyle resolves the value each property takes on node n under the
// stylesheet's rules, honouring specificity and source order (later rules
// win ties). Inline style="" attributes override everything, mirroring the
// cascade. Inheritance is applied for the inherited properties Kaleidoscope
// cares about (font-size, font-family, color, line-height).
func (s *Stylesheet) ComputedStyle(n *htmlx.Node) map[string]string {
	out := make(map[string]string)
	// Inherited properties flow from ancestors first (nearest wins last).
	var chain []*htmlx.Node
	for anc := n; anc != nil; anc = anc.Parent {
		if anc.Type == htmlx.ElementNode {
			chain = append(chain, anc)
		}
	}
	for i := len(chain) - 1; i >= 0; i-- {
		styles := s.matchedStyle(chain[i])
		for prop, val := range styles {
			if chain[i] == n || inheritedProperties[prop] {
				out[prop] = val
			}
		}
	}
	return out
}

var inheritedProperties = map[string]bool{
	"font-size":   true,
	"font-family": true,
	"color":       true,
	"line-height": true,
	"font-style":  true,
	"font-weight": true,
	"text-align":  true,
}

// matchedStyle computes the directly-applicable declarations for one node:
// stylesheet rules by (specificity, order), then the inline style attribute.
func (s *Stylesheet) matchedStyle(n *htmlx.Node) map[string]string {
	type winner struct {
		spec  Specificity
		order int
		val   string
	}
	best := make(map[string]winner)
	for order, rule := range s.Rules {
		matched := false
		var spec Specificity
		for _, sel := range rule.Selectors.Selectors {
			if sel.Matches(n) {
				matched = true
				if sel.Specificity().Compare(spec) > 0 {
					spec = sel.Specificity()
				}
			}
		}
		if !matched {
			continue
		}
		for _, d := range rule.Decls {
			w, ok := best[d.Property]
			if !ok || spec.Compare(w.spec) > 0 || (spec.Compare(w.spec) == 0 && order >= w.order) {
				best[d.Property] = winner{spec: spec, order: order, val: d.Value}
			}
		}
	}
	out := make(map[string]string, len(best))
	for prop, w := range best {
		out[prop] = w.val
	}
	// Inline style attribute wins over everything.
	if inline, ok := n.Attr("style"); ok {
		for _, d := range ParseDeclarations(inline) {
			out[d.Property] = d.Value
		}
	}
	return out
}

// Render serializes the stylesheet back to CSS text.
func (s *Stylesheet) Render() string {
	var b strings.Builder
	for _, rule := range s.Rules {
		b.WriteString(rule.Selectors.String())
		b.WriteString(" { ")
		for i, d := range rule.Decls {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s: %s;", d.Property, d.Value)
		}
		b.WriteString(" }\n")
	}
	return b.String()
}

// ParsePixels parses a CSS length like "14px", "14pt", or "1.5em" (relative
// to base) into pixels. Points are converted at the CSS ratio 96/72.
func ParsePixels(val string, base float64) (float64, bool) {
	val = strings.TrimSpace(strings.ToLower(val))
	parse := func(suffix string) (float64, bool) {
		num := strings.TrimSuffix(val, suffix)
		var f float64
		if _, err := fmt.Sscanf(num, "%g", &f); err != nil {
			return 0, false
		}
		return f, true
	}
	switch {
	case strings.HasSuffix(val, "px"):
		return parse("px")
	case strings.HasSuffix(val, "pt"):
		f, ok := parse("pt")
		return f * 96 / 72, ok
	case strings.HasSuffix(val, "em"):
		f, ok := parse("em")
		return f * base, ok
	case strings.HasSuffix(val, "%"):
		f, ok := parse("%")
		return f / 100 * base, ok
	default:
		f, ok := parse("")
		return f, ok
	}
}
