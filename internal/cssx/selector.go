// Package cssx implements the CSS substrate of Kaleidoscope: a selector
// engine (parse, match, specificity) and a stylesheet parser sufficient for
// the aggregator's resource inlining and the replay engine's selector-based
// reveal schedules (e.g. "#content p": 1500).
package cssx

import (
	"errors"
	"fmt"
	"strings"

	"kaleidoscope/internal/htmlx"
)

// ErrEmptySelector is returned when a selector string contains no usable
// parts.
var ErrEmptySelector = errors.New("cssx: empty selector")

// combinator relates adjacent compound selectors.
type combinator int

const (
	combinatorNone       combinator = iota + 1 // first compound in a chain
	combinatorDescendant                       // whitespace
	combinatorChild                            // '>'
	combinatorAdjacent                         // '+'
	combinatorSibling                          // '~'
)

// attrMatch is one attribute condition of a compound selector.
type attrMatch struct {
	key    string
	val    string
	exact  bool // true for [k=v], false for bare [k]
	prefix bool // true for [k^=v]
}

// compound is a single compound selector: tag#id.class[attr=v]...
type compound struct {
	tag     string // empty or "*" matches any element
	id      string
	classes []string
	attrs   []attrMatch
}

// Selector is one parsed complex selector: a chain of compound selectors
// joined by combinators, matched right-to-left.
type Selector struct {
	// parts[i] applies at position i; rel[i] relates parts[i] to
	// parts[i-1]'s subject (rel[0] is combinatorNone).
	parts []compound
	rel   []combinator
	src   string
}

// SelectorList is a comma-separated group of selectors.
type SelectorList struct {
	Selectors []*Selector
	src       string
}

// String returns the original source of the selector.
func (s *Selector) String() string { return s.src }

// String returns the original source of the selector list.
func (l *SelectorList) String() string { return l.src }

// ParseSelector parses a single complex selector (no commas).
func ParseSelector(src string) (*Selector, error) {
	src = strings.TrimSpace(src)
	if src == "" {
		return nil, ErrEmptySelector
	}
	if strings.Contains(src, ",") {
		return nil, fmt.Errorf("cssx: selector %q contains a comma; use ParseSelectorList", src)
	}
	sel := &Selector{src: src}
	rest := src
	nextRel := combinatorNone
	for {
		rest = strings.TrimLeft(rest, " \t\n")
		if rest == "" {
			break
		}
		if rest[0] == '>' || rest[0] == '+' || rest[0] == '~' {
			if nextRel != combinatorDescendant || len(sel.parts) == 0 {
				return nil, fmt.Errorf("cssx: misplaced %q in %q", rest[0], src)
			}
			switch rest[0] {
			case '>':
				nextRel = combinatorChild
			case '+':
				nextRel = combinatorAdjacent
			case '~':
				nextRel = combinatorSibling
			}
			rest = rest[1:]
			continue
		}
		comp, remaining, err := parseCompound(rest)
		if err != nil {
			return nil, fmt.Errorf("cssx: parsing %q: %w", src, err)
		}
		sel.parts = append(sel.parts, comp)
		sel.rel = append(sel.rel, nextRel)
		nextRel = combinatorDescendant
		rest = remaining
	}
	if len(sel.parts) == 0 {
		return nil, ErrEmptySelector
	}
	if nextRel != combinatorDescendant && nextRel != combinatorNone {
		return nil, fmt.Errorf("cssx: selector %q ends with a combinator", src)
	}
	if sel.rel[0] != combinatorNone {
		return nil, fmt.Errorf("cssx: selector %q begins with a combinator", src)
	}
	return sel, nil
}

// ParseSelectorList parses a comma-separated selector group.
func ParseSelectorList(src string) (*SelectorList, error) {
	list := &SelectorList{src: strings.TrimSpace(src)}
	for _, part := range strings.Split(src, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		sel, err := ParseSelector(part)
		if err != nil {
			return nil, err
		}
		list.Selectors = append(list.Selectors, sel)
	}
	if len(list.Selectors) == 0 {
		return nil, ErrEmptySelector
	}
	return list, nil
}

// parseCompound parses one compound selector at the head of src and returns
// the remaining input.
func parseCompound(src string) (compound, string, error) {
	var c compound
	i := 0
	readName := func() string {
		start := i
		for i < len(src) {
			ch := src[i]
			if ch == '#' || ch == '.' || ch == '[' || ch == '>' || ch == '+' || ch == '~' ||
				ch == ' ' || ch == '\t' || ch == '\n' || ch == ',' {
				break
			}
			i++
		}
		return src[start:i]
	}
	// Leading tag or universal.
	if i < len(src) && src[i] != '#' && src[i] != '.' && src[i] != '[' {
		if src[i] == '*' {
			c.tag = "*"
			i++
		} else {
			name := readName()
			if name == "" {
				return c, src, fmt.Errorf("expected tag name at %q", src)
			}
			// Strip unsupported pseudo-classes (":hover" etc.) — they never
			// match differently in a static DOM, so ignoring them is the
			// most useful degradation.
			if idx := strings.IndexByte(name, ':'); idx >= 0 {
				name = name[:idx]
			}
			if !isValidTagName(name) {
				return c, src, fmt.Errorf("invalid tag name %q", name)
			}
			c.tag = strings.ToLower(name)
		}
	}
	empty := c.tag == ""
	for i < len(src) {
		switch src[i] {
		case '#':
			i++
			name := readName()
			if name == "" {
				return c, src, errors.New("empty id selector")
			}
			c.id = name
			empty = false
		case '.':
			i++
			name := readName()
			if name == "" {
				return c, src, errors.New("empty class selector")
			}
			c.classes = append(c.classes, name)
			empty = false
		case '[':
			end := strings.IndexByte(src[i:], ']')
			if end < 0 {
				return c, src, errors.New("unterminated attribute selector")
			}
			body := src[i+1 : i+end]
			i += end + 1
			am, err := parseAttrMatch(body)
			if err != nil {
				return c, src, err
			}
			c.attrs = append(c.attrs, am)
			empty = false
		default:
			if empty {
				return c, src, fmt.Errorf("unparsable compound at %q", src[i:])
			}
			return c, src[i:], nil
		}
	}
	if empty {
		return c, src, errors.New("empty compound selector")
	}
	return c, "", nil
}

// parseAttrMatch parses the body of an [attr] / [attr=v] / [attr^=v]
// condition.
func parseAttrMatch(body string) (attrMatch, error) {
	body = strings.TrimSpace(body)
	if body == "" {
		return attrMatch{}, errors.New("empty attribute selector")
	}
	if idx := strings.Index(body, "^="); idx >= 0 {
		return attrMatch{
			key:    strings.ToLower(strings.TrimSpace(body[:idx])),
			val:    trimQuotes(strings.TrimSpace(body[idx+2:])),
			prefix: true,
		}, nil
	}
	if idx := strings.IndexByte(body, '='); idx >= 0 {
		return attrMatch{
			key:   strings.ToLower(strings.TrimSpace(body[:idx])),
			val:   trimQuotes(strings.TrimSpace(body[idx+1:])),
			exact: true,
		}, nil
	}
	return attrMatch{key: strings.ToLower(body)}, nil
}

func trimQuotes(s string) string {
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') && s[len(s)-1] == s[0] {
		return s[1 : len(s)-1]
	}
	return s
}

// matchCompound reports whether a single compound selector matches node.
func matchCompound(c compound, n *htmlx.Node) bool {
	if n.Type != htmlx.ElementNode {
		return false
	}
	if c.tag != "" && c.tag != "*" && n.Tag != c.tag {
		return false
	}
	if c.id != "" && n.ID() != c.id {
		return false
	}
	for _, class := range c.classes {
		if !n.HasClass(class) {
			return false
		}
	}
	for _, am := range c.attrs {
		val, ok := n.Attr(am.key)
		if !ok {
			return false
		}
		switch {
		case am.prefix:
			if !strings.HasPrefix(val, am.val) {
				return false
			}
		case am.exact:
			if val != am.val {
				return false
			}
		}
	}
	return true
}

// Matches reports whether the selector matches node n (which must be within
// a tree, since ancestor combinators walk Parent pointers).
func (s *Selector) Matches(n *htmlx.Node) bool {
	return s.matchFrom(len(s.parts)-1, n)
}

// matchFrom matches parts[0..i] with parts[i] anchored at n, walking
// right-to-left.
func (s *Selector) matchFrom(i int, n *htmlx.Node) bool {
	if !matchCompound(s.parts[i], n) {
		return false
	}
	if i == 0 {
		return true
	}
	switch s.rel[i] {
	case combinatorChild:
		if n.Parent == nil {
			return false
		}
		return s.matchFrom(i-1, n.Parent)
	case combinatorDescendant:
		for anc := n.Parent; anc != nil; anc = anc.Parent {
			if s.matchFrom(i-1, anc) {
				return true
			}
		}
		return false
	case combinatorAdjacent:
		prev := prevElementSibling(n)
		if prev == nil {
			return false
		}
		return s.matchFrom(i-1, prev)
	case combinatorSibling:
		for prev := prevElementSibling(n); prev != nil; prev = prevElementSibling(prev) {
			if s.matchFrom(i-1, prev) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// prevElementSibling returns the nearest preceding element sibling of n,
// or nil.
func prevElementSibling(n *htmlx.Node) *htmlx.Node {
	if n.Parent == nil {
		return nil
	}
	var prev *htmlx.Node
	for _, c := range n.Parent.Children {
		if c == n {
			return prev
		}
		if c.Type == htmlx.ElementNode {
			prev = c
		}
	}
	return nil
}

// Matches reports whether any selector in the list matches n.
func (l *SelectorList) Matches(n *htmlx.Node) bool {
	for _, s := range l.Selectors {
		if s.Matches(n) {
			return true
		}
	}
	return false
}

// Select returns all elements under root (in document order) matched by the
// selector.
func (s *Selector) Select(root *htmlx.Node) []*htmlx.Node {
	return root.FindAll(s.Matches)
}

// Select returns all elements under root matched by any selector in the
// list.
func (l *SelectorList) Select(root *htmlx.Node) []*htmlx.Node {
	return root.FindAll(l.Matches)
}

// Query is a convenience that parses sel as a selector list and returns the
// matches under root.
func Query(root *htmlx.Node, sel string) ([]*htmlx.Node, error) {
	list, err := ParseSelectorList(sel)
	if err != nil {
		return nil, err
	}
	return list.Select(root), nil
}

// Specificity is the CSS (id, class, type) specificity triple.
type Specificity struct {
	IDs, Classes, Types int
}

// Compare returns -1, 0, or +1 as a is less than, equal to, or greater
// than b.
func (a Specificity) Compare(b Specificity) int {
	if a.IDs != b.IDs {
		return sign(a.IDs - b.IDs)
	}
	if a.Classes != b.Classes {
		return sign(a.Classes - b.Classes)
	}
	return sign(a.Types - b.Types)
}

// isValidTagName reports whether name is a plausible element name: a
// leading ASCII letter followed by letters, digits, or dashes.
func isValidTagName(name string) bool {
	if name == "" {
		return false
	}
	c := name[0]
	if !('a' <= c && c <= 'z' || 'A' <= c && c <= 'Z') {
		return false
	}
	for i := 1; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

// Specificity returns the selector's specificity.
func (s *Selector) Specificity() Specificity {
	var sp Specificity
	for _, c := range s.parts {
		if c.id != "" {
			sp.IDs++
		}
		sp.Classes += len(c.classes) + len(c.attrs)
		if c.tag != "" && c.tag != "*" {
			sp.Types++
		}
	}
	return sp
}
