package cssx

import (
	"testing"

	"kaleidoscope/internal/htmlx"
)

const benchSheet = `
body { margin: 0; font-family: serif; }
#navbar { background: #eee; }
#navbar li { display: inline; }
#content p { font-size: 14pt; line-height: 1.4; }
.section h2 { font-size: 20px; }
p.lead, .summary { font-weight: bold; }
#references { font-size: 11pt; }
@media (max-width: 600px) { #content p { font-size: 12pt; } }
`

func BenchmarkParseStylesheet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ParseStylesheet(benchSheet)
	}
}

func BenchmarkSelectorMatch(b *testing.B) {
	doc := htmlx.Parse(`<body><div id="content"><div class="section"><p class="lead">x</p></div></div></body>`)
	sel, err := ParseSelector("#content .section p.lead")
	if err != nil {
		b.Fatal(err)
	}
	p := doc.ByClass("lead")[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !sel.Matches(p) {
			b.Fatal("should match")
		}
	}
}

func BenchmarkQuery(b *testing.B) {
	doc := htmlx.Parse(`<body><div id="content">` + repeatedSections(40) + `</div></body>`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nodes, err := Query(doc, "#content .section p")
		if err != nil || len(nodes) == 0 {
			b.Fatal("query failed")
		}
	}
}

func repeatedSections(n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += `<div class="section"><h2>h</h2><p>text</p></div>`
	}
	return out
}

func BenchmarkComputedStyle(b *testing.B) {
	sheet := ParseStylesheet(benchSheet)
	doc := htmlx.Parse(`<body><div id="content"><div class="section"><p class="lead">x</p></div></div></body>`)
	p := doc.ByClass("lead")[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(sheet.ComputedStyle(p)) == 0 {
			b.Fatal("no style")
		}
	}
}
