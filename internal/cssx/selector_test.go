package cssx

import (
	"strings"
	"testing"
	"testing/quick"

	"kaleidoscope/internal/htmlx"
)

const testDoc = `
<html><body>
  <div id="main" class="container">
    <nav id="navbar" class="nav top"><a href="/home" class="link">Home</a></nav>
    <div id="content">
      <p class="lead">First paragraph</p>
      <p>Second <a href="https://x.test" class="link ext">link</a></p>
      <section data-kind="refs"><p class="lead deep">Nested</p></section>
    </div>
  </div>
</body></html>`

func parseDoc(t *testing.T) *htmlx.Node {
	t.Helper()
	return htmlx.Parse(testDoc)
}

func TestParseSelectorErrors(t *testing.T) {
	cases := []string{"", "  ", ">", "> p", "#", ".", "div >", "a, b", "[", "p[unterminated"}
	for _, src := range cases {
		if _, err := ParseSelector(src); err == nil {
			t.Errorf("ParseSelector(%q) should fail", src)
		}
	}
}

func TestSelectorMatching(t *testing.T) {
	doc := parseDoc(t)
	tests := []struct {
		sel  string
		want int
	}{
		{"p", 3},
		{"#main", 1},
		{".lead", 2},
		{"p.lead", 2},
		{"#content p", 3},
		{"#content > p", 2},
		{"section p", 1},
		{"div p", 3},
		{"nav a", 1},
		{"a.link", 2},
		{"a.link.ext", 1},
		{"*", 11},
		{"[data-kind]", 1},
		{`[data-kind="refs"]`, 1},
		{`[data-kind="other"]`, 0},
		{`a[href^="https"]`, 1},
		{`a[href^="/"]`, 1},
		{"div div", 1},
		{"#navbar .link", 1},
		{"#content .link", 1},
		{"span", 0},
		{"#missing", 0},
	}
	for _, tt := range tests {
		t.Run(tt.sel, func(t *testing.T) {
			got, err := Query(doc, tt.sel)
			if err != nil {
				t.Fatalf("Query(%q): %v", tt.sel, err)
			}
			if len(got) != tt.want {
				t.Errorf("Query(%q) = %d nodes, want %d", tt.sel, len(got), tt.want)
			}
		})
	}
}

func TestSelectorList(t *testing.T) {
	doc := parseDoc(t)
	got, err := Query(doc, "nav, section p, #missing")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(got) != 2 {
		t.Errorf("list query = %d nodes, want 2", len(got))
	}
	if _, err := ParseSelectorList(", ,"); err == nil {
		t.Error("all-empty list should fail")
	}
	list, err := ParseSelectorList(" p , a ")
	if err != nil {
		t.Fatalf("ParseSelectorList: %v", err)
	}
	if len(list.Selectors) != 2 {
		t.Errorf("selectors = %d, want 2", len(list.Selectors))
	}
}

func TestPseudoClassesIgnored(t *testing.T) {
	doc := parseDoc(t)
	got, err := Query(doc, "a:hover")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(got) != 2 {
		t.Errorf("a:hover should match like bare 'a': got %d, want 2", len(got))
	}
}

func TestSpecificity(t *testing.T) {
	tests := []struct {
		sel  string
		want Specificity
	}{
		{"p", Specificity{0, 0, 1}},
		{".lead", Specificity{0, 1, 0}},
		{"#main", Specificity{1, 0, 0}},
		{"div#main p.lead", Specificity{1, 1, 2}},
		{"*", Specificity{0, 0, 0}},
		{"[data-kind] p", Specificity{0, 1, 1}},
	}
	for _, tt := range tests {
		sel, err := ParseSelector(tt.sel)
		if err != nil {
			t.Fatalf("ParseSelector(%q): %v", tt.sel, err)
		}
		if got := sel.Specificity(); got != tt.want {
			t.Errorf("Specificity(%q) = %+v, want %+v", tt.sel, got, tt.want)
		}
	}
}

func TestSpecificityCompare(t *testing.T) {
	id := Specificity{1, 0, 0}
	class := Specificity{0, 1, 0}
	typ := Specificity{0, 0, 1}
	if id.Compare(class) != 1 || class.Compare(id) != -1 {
		t.Error("id should outrank class")
	}
	if class.Compare(typ) != 1 {
		t.Error("class should outrank type")
	}
	if typ.Compare(typ) != 0 {
		t.Error("equal should compare 0")
	}
	if (Specificity{0, 1, 5}).Compare(Specificity{0, 1, 2}) != 1 {
		t.Error("types should break class ties")
	}
}

func TestMatchesNonElement(t *testing.T) {
	sel, err := ParseSelector("*")
	if err != nil {
		t.Fatal(err)
	}
	text := htmlx.NewText("x")
	if sel.Matches(text) {
		t.Error("selectors must not match text nodes")
	}
}

func TestChildCombinatorAtRoot(t *testing.T) {
	doc := parseDoc(t)
	sel, err := ParseSelector("body > div > nav")
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.Select(doc); len(got) != 1 || got[0].ID() != "navbar" {
		t.Errorf("body > div > nav = %+v", got)
	}
	// A child chain that skips a level must not match.
	sel2, err := ParseSelector("body > nav")
	if err != nil {
		t.Fatal(err)
	}
	if got := sel2.Select(doc); len(got) != 0 {
		t.Errorf("body > nav should not match, got %d", len(got))
	}
}

func TestSelectorString(t *testing.T) {
	sel, err := ParseSelector("  #content p  ")
	if err != nil {
		t.Fatal(err)
	}
	if sel.String() != "#content p" {
		t.Errorf("String = %q", sel.String())
	}
}

// TestParseSelectorNeverPanicsProperty throws arbitrary strings at the
// parser: it must never panic, and successful parses must match something
// or nothing without crashing.
func TestParseSelectorNeverPanicsProperty(t *testing.T) {
	doc := htmlx.Parse(testDoc)
	f := func(src string) bool {
		sel, err := ParseSelector(src)
		if err != nil {
			return true
		}
		_ = sel.Select(doc)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestSelectMatchesConsistentProperty: every node returned by Select
// satisfies Matches, for a fixed pool of realistic selectors.
func TestSelectMatchesConsistentProperty(t *testing.T) {
	doc := htmlx.Parse(testDoc)
	pool := []string{"p", "#main", ".lead", "#content p", "div > nav", "a[href]", "*"}
	for _, src := range pool {
		sel, err := ParseSelector(src)
		if err != nil {
			t.Fatalf("ParseSelector(%q): %v", src, err)
		}
		for _, n := range sel.Select(doc) {
			if !sel.Matches(n) {
				t.Errorf("Select(%q) returned non-matching node %s", src, n.Tag)
			}
		}
	}
}

func TestQueryBadSelector(t *testing.T) {
	doc := parseDoc(t)
	if _, err := Query(doc, ""); err == nil {
		t.Error("empty selector should error")
	}
}

func TestAttrSelectorQuoted(t *testing.T) {
	doc := htmlx.Parse(`<input type="text" name='user'>`)
	for _, sel := range []string{`input[type=text]`, `input[type="text"]`, `input[name='user']`} {
		got, err := Query(doc, sel)
		if err != nil {
			t.Fatalf("Query(%q): %v", sel, err)
		}
		if len(got) != 1 {
			t.Errorf("Query(%q) = %d, want 1", sel, len(got))
		}
	}
}

func TestCompoundStopsAtComma(t *testing.T) {
	// Guard against the compound reader swallowing commas.
	list, err := ParseSelectorList("p.lead,nav")
	if err != nil {
		t.Fatalf("ParseSelectorList: %v", err)
	}
	if len(list.Selectors) != 2 {
		t.Fatalf("selectors = %d, want 2", len(list.Selectors))
	}
	doc := parseDoc(t)
	if got := list.Select(doc); len(got) != 3 {
		t.Errorf("matches = %d, want 3 (2 .lead + nav)", len(got))
	}
}

func TestDescendantRequiresAncestor(t *testing.T) {
	doc := htmlx.Parse(`<div><p>in</p></div><p>out</p>`)
	sel, err := ParseSelector("div p")
	if err != nil {
		t.Fatal(err)
	}
	got := sel.Select(doc)
	if len(got) != 1 || strings.TrimSpace(got[0].Text()) != "in" {
		t.Errorf("div p = %d matches", len(got))
	}
}

func TestSiblingCombinators(t *testing.T) {
	doc := htmlx.Parse(`<div><h2>t</h2><p id="first">a</p><span>x</span><p id="second">b</p><p id="third">c</p></div>`)
	tests := []struct {
		sel  string
		want []string
	}{
		{"h2 + p", []string{"first"}},
		{"p + p", []string{"third"}},     // only third directly follows a p
		{"span + p", []string{"second"}}, // text between siblings is skipped
		{"h2 ~ p", []string{"first", "second", "third"}},
		{"span ~ p", []string{"second", "third"}},
		{"p ~ span", []string{"span"}}, // span follows p#first
	}
	for _, tt := range tests {
		t.Run(tt.sel, func(t *testing.T) {
			got, err := Query(doc, tt.sel)
			if err != nil {
				t.Fatalf("Query(%q): %v", tt.sel, err)
			}
			var ids []string
			for _, n := range got {
				id := n.ID()
				if id == "" {
					id = n.Tag
				}
				ids = append(ids, id)
			}
			if len(ids) != len(tt.want) {
				t.Fatalf("Query(%q) = %v, want %v", tt.sel, ids, tt.want)
			}
			for i := range tt.want {
				if ids[i] != tt.want[i] {
					t.Errorf("Query(%q)[%d] = %q, want %q", tt.sel, i, ids[i], tt.want[i])
				}
			}
		})
	}
	// Compact forms parse too.
	if _, err := ParseSelector("h2+p"); err != nil {
		t.Errorf("compact adjacent: %v", err)
	}
	if _, err := ParseSelector("h2~p"); err != nil {
		t.Errorf("compact sibling: %v", err)
	}
	// Misplaced combinators fail.
	for _, bad := range []string{"+ p", "p +", "p + + q", "~x ~"} {
		if _, err := ParseSelector(bad); err == nil {
			t.Errorf("ParseSelector(%q) should fail", bad)
		}
	}
}
