package cssx

import (
	"math"
	"testing"

	"kaleidoscope/internal/htmlx"
)

func TestParseStylesheetBasic(t *testing.T) {
	sheet := ParseStylesheet(`
	  /* a comment */
	  p { font-size: 14px; color: black; }
	  #main, .lead { margin: 0; }
	`)
	if len(sheet.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(sheet.Rules))
	}
	if got := sheet.Rules[0].Decls; len(got) != 2 || got[0] != (Declaration{"font-size", "14px"}) {
		t.Errorf("decls = %+v", got)
	}
	if len(sheet.Rules[1].Selectors.Selectors) != 2 {
		t.Errorf("selector list len = %d", len(sheet.Rules[1].Selectors.Selectors))
	}
}

func TestParseStylesheetSkipsBadRules(t *testing.T) {
	sheet := ParseStylesheet(`
	  !!! { color: red; }
	  p { color: blue; }
	`)
	if len(sheet.Rules) != 1 {
		t.Fatalf("rules = %d, want 1 (bad rule skipped)", len(sheet.Rules))
	}
}

func TestParseStylesheetAtRules(t *testing.T) {
	sheet := ParseStylesheet(`
	  @import url("other.css");
	  @charset "utf-8";
	  @media (max-width: 600px) { p { font-size: 12px; } }
	  @keyframes spin { from { transform: none; } to { transform: none; } }
	  div { color: green; }
	`)
	// @media content is flattened in; @keyframes and statements are skipped.
	if len(sheet.Rules) != 2 {
		t.Fatalf("rules = %d, want 2 (media p + div)", len(sheet.Rules))
	}
	if sheet.Rules[0].Selectors.String() != "p" {
		t.Errorf("flattened media rule = %q", sheet.Rules[0].Selectors.String())
	}
}

func TestParseStylesheetUnterminated(t *testing.T) {
	sheet := ParseStylesheet(`p { color: red; `)
	if len(sheet.Rules) != 1 || sheet.Rules[0].Decls[0].Value != "red" {
		t.Errorf("unterminated block rules = %+v", sheet.Rules)
	}
	// Trailing junk with no block must not loop forever.
	sheet = ParseStylesheet(`p { color: red; } stray-selector-no-block`)
	if len(sheet.Rules) != 1 {
		t.Errorf("rules = %d, want 1", len(sheet.Rules))
	}
}

func TestParseDeclarations(t *testing.T) {
	decls := ParseDeclarations(`font-size: 12pt; ; : bad; noval:; COLOR : Red `)
	if len(decls) != 2 {
		t.Fatalf("decls = %+v, want 2", decls)
	}
	if decls[1] != (Declaration{"color", "Red"}) {
		t.Errorf("decls[1] = %+v", decls[1])
	}
}

func TestComputedStyleCascade(t *testing.T) {
	doc := htmlx.Parse(`<body><div id="main"><p class="lead" style="color: teal">x</p><p>y</p></div></body>`)
	sheet := ParseStylesheet(`
	  p { font-size: 12px; color: black; }
	  .lead { font-size: 16px; }
	  #main p { color: navy; }
	  body { font-family: serif; }
	`)
	lead := doc.ByClass("lead")[0]
	style := sheet.ComputedStyle(lead)
	if style["font-size"] != "16px" {
		t.Errorf("font-size = %q, want 16px (.lead beats p)", style["font-size"])
	}
	if style["color"] != "teal" {
		t.Errorf("color = %q, want teal (inline wins)", style["color"])
	}
	if style["font-family"] != "serif" {
		t.Errorf("font-family = %q, want serif (inherited from body)", style["font-family"])
	}
	plain := doc.ByTag("p")[1]
	style = sheet.ComputedStyle(plain)
	if style["color"] != "navy" {
		t.Errorf("plain p color = %q, want navy (#main p beats p)", style["color"])
	}
	if style["font-size"] != "12px" {
		t.Errorf("plain p font-size = %q, want 12px", style["font-size"])
	}
}

func TestComputedStyleSourceOrderTies(t *testing.T) {
	doc := htmlx.Parse(`<p>x</p>`)
	sheet := ParseStylesheet(`p { color: red; } p { color: blue; }`)
	style := sheet.ComputedStyle(doc.ByTag("p")[0])
	if style["color"] != "blue" {
		t.Errorf("color = %q, want blue (later rule wins tie)", style["color"])
	}
}

func TestComputedStyleNonInheritedStaysLocal(t *testing.T) {
	doc := htmlx.Parse(`<div id="wrap"><span>x</span></div>`)
	sheet := ParseStylesheet(`#wrap { margin: 10px; font-size: 20px; }`)
	span := doc.ByTag("span")[0]
	style := sheet.ComputedStyle(span)
	if _, ok := style["margin"]; ok {
		t.Error("margin should not inherit")
	}
	if style["font-size"] != "20px" {
		t.Errorf("font-size should inherit, got %q", style["font-size"])
	}
}

func TestStylesheetRender(t *testing.T) {
	src := `p { font-size: 12px; color: red; }`
	sheet := ParseStylesheet(src)
	out := sheet.Render()
	round := ParseStylesheet(out)
	if len(round.Rules) != 1 || len(round.Rules[0].Decls) != 2 {
		t.Errorf("render round-trip lost content: %q", out)
	}
}

func TestParsePixels(t *testing.T) {
	tests := []struct {
		val  string
		base float64
		want float64
		ok   bool
	}{
		{"14px", 0, 14, true},
		{"12pt", 0, 16, true}, // 12pt * 96/72 = 16px
		{"1.5em", 10, 15, true},
		{"150%", 20, 30, true},
		{"18", 0, 18, true},
		{" 22PT ", 0, 22 * 96.0 / 72.0, true},
		{"auto", 0, 0, false},
		{"", 0, 0, false},
	}
	for _, tt := range tests {
		got, ok := ParsePixels(tt.val, tt.base)
		if ok != tt.ok || (ok && math.Abs(got-tt.want) > 1e-9) {
			t.Errorf("ParsePixels(%q, %v) = %v,%v want %v,%v", tt.val, tt.base, got, ok, tt.want, tt.ok)
		}
	}
}

func TestStripCommentsUnterminated(t *testing.T) {
	sheet := ParseStylesheet(`p { color: red; } /* unterminated`)
	if len(sheet.Rules) != 1 {
		t.Errorf("rules = %d, want 1", len(sheet.Rules))
	}
}

func TestNestedMediaBlocks(t *testing.T) {
	sheet := ParseStylesheet(`@media screen { @media (min-width: 100px) { p { color: red; } } }`)
	if len(sheet.Rules) != 1 {
		t.Fatalf("nested media rules = %d, want 1", len(sheet.Rules))
	}
}
