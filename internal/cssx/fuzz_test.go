package cssx

import (
	"testing"

	"kaleidoscope/internal/htmlx"
)

// FuzzParseSelector ensures the selector parser never panics and that any
// selector it accepts can be matched against a DOM without crashing.
func FuzzParseSelector(f *testing.F) {
	seeds := []string{
		"p", "#id", ".class", "div p", "div > p", "a[href]",
		`a[href^="https"]`, "p.lead.deep", "*", "x:hover",
		"", ">", "# .", "div >", "[unterminated", "a,b", "p , q",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	doc := htmlx.Parse(`<body><div id="main" class="c"><p class="lead"><a href="https://x">l</a></p></div></body>`)
	f.Fuzz(func(t *testing.T, src string) {
		sel, err := ParseSelector(src)
		if err != nil {
			return
		}
		_ = sel.Select(doc)
		_ = sel.Specificity()
	})
}

// FuzzParseStylesheet ensures the stylesheet parser never panics and
// always terminates on arbitrary input.
func FuzzParseStylesheet(f *testing.F) {
	seeds := []string{
		"p { color: red; }",
		"@media (x) { p { a: b; } }",
		"/* unterminated",
		"p { unterminated",
		"}} {{",
		"@import url(x);",
		"a, b { c: d; e: f }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sheet := ParseStylesheet(src)
		if sheet == nil {
			t.Fatal("ParseStylesheet must not return nil")
		}
		_ = sheet.Render()
	})
}
