package store

import (
	"strconv"
	"testing"
)

func BenchmarkInsert(b *testing.B) {
	db := OpenMemory()
	c := db.Collection("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Insert(Document{"worker": "w1", "choice": "left", "n": i}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCollection fills a collection with 10k documents spread over 1000
// test_id buckets (10 matches per lookup), optionally indexed.
func benchCollection(b *testing.B, indexed bool) *Collection {
	b.Helper()
	db := OpenMemory()
	c := db.Collection("bench")
	if indexed {
		c.EnsureIndex("test_id")
	}
	for i := 0; i < 10_000; i++ {
		if _, err := c.Insert(Document{"test_id": "t" + strconv.Itoa(i%1000)}); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// BenchmarkFindEq is the scan floor: every lookup visits all 10k documents
// to find its 10 matches.
func BenchmarkFindEq(b *testing.B) {
	c := benchCollection(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(c.FindEq("test_id", "t3")) != 10 {
			b.Fatal("bad count")
		}
	}
}

// BenchmarkFindEqIndexed is the same lookup against the same 10k-document
// collection with test_id indexed: cost is proportional to the 10 matches,
// not the collection.
func BenchmarkFindEqIndexed(b *testing.B) {
	c := benchCollection(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(c.FindEq("test_id", "t3")) != 10 {
			b.Fatal("bad count")
		}
	}
}

// BenchmarkCountEqIndexed counts without copying documents: O(1) regardless
// of match count or collection size.
func BenchmarkCountEqIndexed(b *testing.B) {
	c := benchCollection(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.CountEq("test_id", "t3") != 10 {
			b.Fatal("bad count")
		}
	}
}

func BenchmarkPersistentInsert(b *testing.B) {
	db, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	c := db.Collection("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Insert(Document{"n": i}); err != nil {
			b.Fatal(err)
		}
	}
}
