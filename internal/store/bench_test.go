package store

import (
	"strconv"
	"testing"
)

func BenchmarkInsert(b *testing.B) {
	db := OpenMemory()
	c := db.Collection("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Insert(Document{"worker": "w1", "choice": "left", "n": i}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindEq(b *testing.B) {
	db := OpenMemory()
	c := db.Collection("bench")
	for i := 0; i < 1000; i++ {
		if _, err := c.Insert(Document{"test_id": "t" + strconv.Itoa(i%10)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(c.FindEq("test_id", "t3")) != 100 {
			b.Fatal("bad count")
		}
	}
}

func BenchmarkPersistentInsert(b *testing.B) {
	db, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	c := db.Collection("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Insert(Document{"n": i}); err != nil {
			b.Fatal(err)
		}
	}
}
