package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// batchDocs builds n owned documents with ids "t/w<i>".
func batchDocs(n int) []Document {
	docs := make([]Document, n)
	for i := range docs {
		docs[i] = Document{
			IDField:   fmt.Sprintf("t/w%03d", i),
			"test_id": "t",
			"session": fmt.Sprintf(`{"worker":"w%03d"}`, i),
		}
	}
	return docs
}

// The batch insert must leave the store — live documents AND the on-disk
// WAL — byte-identical to the same documents inserted one by one.
func TestInsertUniqueBatchEquivalentToSingles(t *testing.T) {
	dirSingle, dirBatch := t.TempDir(), t.TempDir()
	single, err := Open(dirSingle, WithSyncPolicy(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Open(dirBatch, WithSyncPolicy(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range batchDocs(20) {
		if _, err := single.Collection("responses").InsertUnique(doc); err != nil {
			t.Fatal(err)
		}
	}
	ids, errs := batch.Collection("responses").InsertUniqueBatch(batchDocs(20))
	for i, err := range errs {
		if err != nil {
			t.Fatalf("batch doc %d: %v", i, err)
		}
		if ids[i] == "" {
			t.Fatalf("batch doc %d: empty id", i)
		}
	}
	if got, want := batch.Collection("responses").Count(), single.Collection("responses").Count(); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	for _, doc := range single.Collection("responses").Find(nil) {
		got, err := batch.Collection("responses").Get(doc.ID())
		if err != nil {
			t.Fatalf("batch missing %s: %v", doc.ID(), err)
		}
		if fmt.Sprint(got) != fmt.Sprint(doc) {
			t.Errorf("doc %s differs: %v vs %v", doc.ID(), got, doc)
		}
	}
	single.Close()
	batch.Close()
	walSingle, err := os.ReadFile(filepath.Join(dirSingle, "responses.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	walBatch, err := os.ReadFile(filepath.Join(dirBatch, "responses.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if string(walSingle) != string(walBatch) {
		t.Error("batch WAL bytes differ from N single inserts")
	}

	// And the batch WAL replays.
	re, err := Open(dirBatch)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Collection("responses").Count(); got != 20 {
		t.Errorf("replayed count = %d, want 20", got)
	}
}

// Group commit: under SyncAlways a batch of N costs one fsync, not N.
func TestInsertUniqueBatchGroupCommitFsync(t *testing.T) {
	db, err := Open(t.TempDir(), WithSyncPolicy(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	_, errs := db.Collection("responses").InsertUniqueBatch(batchDocs(100))
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	stats := db.DurabilityStats()
	if stats.Fsyncs != 1 {
		t.Errorf("fsyncs = %d, want 1 for a 100-doc batch under SyncAlways", stats.Fsyncs)
	}
	if stats.WALAppends != 100 {
		t.Errorf("wal appends = %d, want 100", stats.WALAppends)
	}
}

// Duplicates — against stored documents and earlier in the same batch —
// are rejected per element without poisoning the rest.
func TestInsertUniqueBatchDuplicates(t *testing.T) {
	db := OpenMemory()
	coll := db.Collection("responses")
	if _, err := coll.InsertUnique(Document{IDField: "t/w000", "test_id": "t"}); err != nil {
		t.Fatal(err)
	}
	docs := []Document{
		{IDField: "t/w000", "test_id": "t"}, // dup vs stored
		{IDField: "t/wNEW", "test_id": "t"},
		{IDField: "t/wNEW", "test_id": "t"}, // dup vs earlier batch member
		{IDField: "t/wTWO", "test_id": "t"},
	}
	ids, errs := coll.InsertUniqueBatch(docs)
	if !errors.Is(errs[0], ErrDuplicateID) || !errors.Is(errs[2], ErrDuplicateID) {
		t.Errorf("dup errors = %v / %v, want ErrDuplicateID", errs[0], errs[2])
	}
	if errs[1] != nil || errs[3] != nil {
		t.Errorf("fresh docs rejected: %v / %v", errs[1], errs[3])
	}
	if ids[1] != "t/wNEW" || ids[3] != "t/wTWO" {
		t.Errorf("ids = %v", ids)
	}
	if got := coll.Count(); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
}

// Generated ids keep flowing from the same sequence as single inserts.
func TestInsertUniqueBatchGeneratedIDs(t *testing.T) {
	db := OpenMemory()
	coll := db.Collection("docs")
	if _, err := coll.Insert(Document{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	ids, errs := coll.InsertUniqueBatch([]Document{{"k": "a"}, {"k": "b"}})
	if errs[0] != nil || errs[1] != nil {
		t.Fatal(errs)
	}
	if ids[0] != "doc-2" || ids[1] != "doc-3" {
		t.Errorf("generated ids = %v, want [doc-2 doc-3]", ids)
	}
}

// A WAL write failure mid-batch rejects every accepted document with the
// same error and stores none of them; the store remains usable and
// reopenable afterwards.
func TestInsertUniqueBatchWALFailure(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	db, err := Open(dir, WithFileSystem(ffs), WithSyncPolicy(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	coll := db.Collection("responses")
	ffs.FailAppendsAfter(0, ErrNoSpace, false)
	_, errs := coll.InsertUniqueBatch(batchDocs(5))
	for i, err := range errs {
		if !errors.Is(err, ErrNoSpace) {
			t.Errorf("doc %d err = %v, want ENOSPC", i, err)
		}
	}
	if got := coll.Count(); got != 0 {
		t.Errorf("count after failed batch = %d, want 0", got)
	}
	ffs.Reset()
	_, errs = coll.InsertUniqueBatch(batchDocs(5))
	for i, err := range errs {
		if err != nil {
			t.Errorf("doc %d after heal: %v", i, err)
		}
	}
	db.Close()
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Collection("responses").Count(); got != 5 {
		t.Errorf("replayed count = %d, want 5", got)
	}
}

// Change hooks fire once per stored document, in batch order, after the
// mutation committed; indexes answer immediately.
func TestInsertUniqueBatchNotifyAndIndexes(t *testing.T) {
	db := OpenMemory()
	coll := db.Collection("responses")
	coll.EnsureIndex("test_id")
	var events []string
	coll.OnChange(func(op, id string) { events = append(events, op+":"+id) })
	_, errs := coll.InsertUniqueBatch(batchDocs(3))
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"put:t/w000", "put:t/w001", "put:t/w002"}
	if fmt.Sprint(events) != fmt.Sprint(want) {
		t.Errorf("events = %v, want %v", events, want)
	}
	if got := coll.CountEq("test_id", "t"); got != 3 {
		t.Errorf("indexed count = %d, want 3", got)
	}
}

func TestInsertUniqueBatchClosed(t *testing.T) {
	db := OpenMemory()
	db.Close()
	_, errs := db.Collection("responses").InsertUniqueBatch(batchDocs(2))
	for i, err := range errs {
		if !errors.Is(err, ErrClosed) {
			t.Errorf("doc %d err = %v, want ErrClosed", i, err)
		}
	}
}
