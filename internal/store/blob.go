package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"kaleidoscope/internal/webgen"
)

// BlobStore holds the integrated-webpage files the core server serves to
// participants. The paper stores them under a folder named after the test
// id; this store mirrors that layout (testID/pageName/path) and supports
// both in-memory and directory-backed operation.
type BlobStore struct {
	mu  sync.RWMutex
	dir string // "" = memory-only
	mem map[string][]byte
}

// NewBlobStore returns a memory-backed blob store.
func NewBlobStore() *BlobStore {
	return &BlobStore{mem: make(map[string][]byte)}
}

// OpenBlobStore returns a blob store persisted under dir.
func OpenBlobStore(dir string) (*BlobStore, error) {
	if dir == "" {
		return nil, errors.New("store: empty blob directory; use NewBlobStore")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating blob dir: %w", err)
	}
	return &BlobStore{dir: dir, mem: make(map[string][]byte)}, nil
}

// ErrInvalidKey reports a blob key that would escape the store root.
var ErrInvalidKey = errors.New("store: invalid blob key")

// cleanKey validates and normalizes a blob key.
func cleanKey(key string) (string, error) {
	key = strings.TrimPrefix(key, "/")
	if key == "" {
		return "", ErrInvalidKey
	}
	clean := filepath.ToSlash(filepath.Clean(key))
	if clean == "." || strings.HasPrefix(clean, "../") || clean == ".." {
		return "", ErrInvalidKey
	}
	return clean, nil
}

// Put stores data under key.
func (b *BlobStore) Put(key string, data []byte) error {
	clean, err := cleanKey(key)
	if err != nil {
		return fmt.Errorf("%w: %q", err, key)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dir != "" {
		path := filepath.Join(b.dir, filepath.FromSlash(clean))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("store: creating blob parent: %w", err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return fmt.Errorf("store: writing blob %s: %w", clean, err)
		}
		return nil
	}
	b.mem[clean] = append([]byte(nil), data...)
	return nil
}

// Get returns the blob stored under key.
func (b *BlobStore) Get(key string) ([]byte, error) {
	clean, err := cleanKey(key)
	if err != nil {
		return nil, fmt.Errorf("%w: %q", err, key)
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.dir != "" {
		data, err := os.ReadFile(filepath.Join(b.dir, filepath.FromSlash(clean)))
		if err != nil {
			if os.IsNotExist(err) {
				return nil, fmt.Errorf("%w: %s", ErrNotFound, clean)
			}
			return nil, fmt.Errorf("store: reading blob %s: %w", clean, err)
		}
		return data, nil
	}
	data, ok := b.mem[clean]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, clean)
	}
	return append([]byte(nil), data...), nil
}

// List returns the sorted keys under the given prefix.
func (b *BlobStore) List(prefix string) ([]string, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	prefix = strings.TrimPrefix(prefix, "/")
	var keys []string
	if b.dir != "" {
		root := b.dir
		err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
			if err != nil || info.IsDir() {
				return err
			}
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			key := filepath.ToSlash(rel)
			if strings.HasPrefix(key, prefix) {
				keys = append(keys, key)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("store: listing blobs: %w", err)
		}
	} else {
		for key := range b.mem {
			if strings.HasPrefix(key, prefix) {
				keys = append(keys, key)
			}
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// siteKey builds the blob key for one file of a stored site.
func siteKey(testID, pageName, rel string) string {
	return testID + "/" + pageName + "/" + rel
}

// PutSite stores every file of a site under testID/pageName/, plus a
// marker recording the main file name so GetSite can reconstruct it.
func (b *BlobStore) PutSite(testID, pageName string, site *webgen.Site) error {
	if err := site.Validate(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := b.Put(siteKey(testID, pageName, ".main"), []byte(site.MainFile)); err != nil {
		return err
	}
	for _, rel := range site.Paths() {
		data, _ := site.Get(rel)
		if err := b.Put(siteKey(testID, pageName, rel), data); err != nil {
			return err
		}
	}
	return nil
}

// GetSite reconstructs a site stored with PutSite.
func (b *BlobStore) GetSite(testID, pageName string) (*webgen.Site, error) {
	main, err := b.Get(siteKey(testID, pageName, ".main"))
	if err != nil {
		return nil, err
	}
	site := webgen.NewSite(string(main))
	prefix := testID + "/" + pageName + "/"
	keys, err := b.List(prefix)
	if err != nil {
		return nil, err
	}
	for _, key := range keys {
		rel := strings.TrimPrefix(key, prefix)
		if rel == ".main" {
			continue
		}
		data, err := b.Get(key)
		if err != nil {
			return nil, err
		}
		site.Put(rel, data)
	}
	if err := site.Validate(); err != nil {
		return nil, fmt.Errorf("store: reconstructing %s/%s: %w", testID, pageName, err)
	}
	return site, nil
}
