package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"

	"kaleidoscope/internal/webgen"
)

// casDir is the reserved prefix holding content-addressed payloads on the
// directory backend. Logical keys may not start with it.
const casDir = ".cas"

// BlobStats are cumulative, per-process counters for a BlobStore. They are
// approximations of disk state across restarts (a fresh process starts from
// zero even over a populated directory) but exact for a single run, which
// is what the dedup regression tests and obs gauges consume.
type BlobStats struct {
	// Puts counts logical blob writes (Put and PutCAS).
	Puts int64
	// CASPuts counts writes routed through PutCAS.
	CASPuts int64
	// DedupHits counts PutCAS writes satisfied by an already-stored payload.
	DedupHits int64
	// BytesSaved totals payload bytes not rewritten thanks to dedup.
	BytesSaved int64
	// UniqueBlobs is the number of distinct live content-addressed payloads.
	UniqueBlobs int64
}

// BlobStore holds the integrated-webpage files the core server serves to
// participants. The paper stores them under a folder named after the test
// id; this store mirrors that layout (testID/pageName/path) and supports
// both in-memory and directory-backed operation.
//
// On top of the plain key/value API the store offers a content-addressed
// layer (PutCAS): payloads are identified by the SHA-256 of their bytes,
// stored once, and logical keys reference them — in memory by sharing the
// backing slice, on disk by hard-linking the logical path to
// .cas/<sha256>. Get and List are oblivious to which API stored a key.
type BlobStore struct {
	mu    sync.RWMutex
	dir   string // "" = memory-only
	mem   map[string][]byte
	refs  map[string]string    // logical key -> content hash (CAS-stored keys)
	cas   map[string]*casEntry // content hash -> live payload bookkeeping
	stats BlobStats
}

// casEntry tracks one distinct content-addressed payload.
type casEntry struct {
	refs int
	size int
	data []byte // shared payload; nil on the directory backend
}

// NewBlobStore returns a memory-backed blob store.
func NewBlobStore() *BlobStore {
	return &BlobStore{
		mem:  make(map[string][]byte),
		refs: make(map[string]string),
		cas:  make(map[string]*casEntry),
	}
}

// OpenBlobStore returns a blob store persisted under dir.
func OpenBlobStore(dir string) (*BlobStore, error) {
	if dir == "" {
		return nil, errors.New("store: empty blob directory; use NewBlobStore")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating blob dir: %w", err)
	}
	return &BlobStore{
		dir:  dir,
		mem:  make(map[string][]byte),
		refs: make(map[string]string),
		cas:  make(map[string]*casEntry),
	}, nil
}

// ErrInvalidKey reports a blob key that would escape the store root.
var ErrInvalidKey = errors.New("store: invalid blob key")

// cleanKey validates and normalizes a blob key.
func cleanKey(key string) (string, error) {
	key = strings.TrimPrefix(key, "/")
	if key == "" {
		return "", ErrInvalidKey
	}
	clean := filepath.ToSlash(filepath.Clean(key))
	if clean == "." || strings.HasPrefix(clean, "../") || clean == ".." {
		return "", ErrInvalidKey
	}
	if clean == casDir || strings.HasPrefix(clean, casDir+"/") {
		return "", ErrInvalidKey
	}
	return clean, nil
}

// Stats returns a snapshot of the store's per-process counters.
func (b *BlobStore) Stats() BlobStats {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.stats
}

// Put stores data under key.
func (b *BlobStore) Put(key string, data []byte) error {
	clean, err := cleanKey(key)
	if err != nil {
		return fmt.Errorf("%w: %q", err, key)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats.Puts++
	if b.dir != "" {
		path := filepath.Join(b.dir, filepath.FromSlash(clean))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("store: creating blob parent: %w", err)
		}
		// If the path is a hard link into the CAS area, truncating it in
		// place would corrupt the shared payload — break the link first.
		if _, linked := b.refs[clean]; linked {
			_ = os.Remove(path)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return fmt.Errorf("store: writing blob %s: %w", clean, err)
		}
		b.releaseLocked(clean)
		return nil
	}
	b.releaseLocked(clean)
	b.mem[clean] = append([]byte(nil), data...)
	return nil
}

// PutCAS stores data under key through the content-addressed layer: if a
// payload with the same SHA-256 is already stored, the key references the
// existing copy instead of writing the bytes again. Concurrency-safe, like
// every BlobStore method.
func (b *BlobStore) PutCAS(key string, data []byte) error {
	clean, err := cleanKey(key)
	if err != nil {
		return fmt.Errorf("%w: %q", err, key)
	}
	sum := sha256.Sum256(data) // hashing stays outside the lock
	hash := hex.EncodeToString(sum[:])

	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats.Puts++
	b.stats.CASPuts++
	entry, exists := b.cas[hash]
	if exists {
		b.stats.DedupHits++
		b.stats.BytesSaved += int64(len(data))
	}

	if b.dir != "" {
		casPath := filepath.Join(b.dir, casDir, hash)
		if !exists {
			if err := os.MkdirAll(filepath.Dir(casPath), 0o755); err != nil {
				return fmt.Errorf("store: creating cas dir: %w", err)
			}
			// The payload may survive from a previous process; only write
			// it when absent.
			if _, statErr := os.Stat(casPath); statErr != nil {
				if err := os.WriteFile(casPath, data, 0o644); err != nil {
					return fmt.Errorf("store: writing cas payload %s: %w", hash, err)
				}
			}
			entry = &casEntry{size: len(data)}
			b.cas[hash] = entry
			b.stats.UniqueBlobs++
		}
		path := filepath.Join(b.dir, filepath.FromSlash(clean))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("store: creating blob parent: %w", err)
		}
		_ = os.Remove(path) // links fail on existing targets
		b.releaseLocked(clean)
		if err := os.Link(casPath, path); err != nil {
			// Filesystems without hard links fall back to a plain copy;
			// dedup bookkeeping still applies.
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return fmt.Errorf("store: writing blob %s: %w", clean, err)
			}
		}
		entry.refs++
		b.refs[clean] = hash
		return nil
	}

	if !exists {
		entry = &casEntry{data: append([]byte(nil), data...), size: len(data)}
		b.cas[hash] = entry
		b.stats.UniqueBlobs++
	}
	b.releaseLocked(clean)
	entry.refs++
	b.refs[clean] = hash
	b.mem[clean] = entry.data
	return nil
}

// releaseLocked drops key's reference into the CAS layer, if any. Callers
// hold b.mu.
func (b *BlobStore) releaseLocked(clean string) {
	hash, ok := b.refs[clean]
	if !ok {
		return
	}
	delete(b.refs, clean)
	entry := b.cas[hash]
	if entry == nil {
		return
	}
	entry.refs--
	if entry.refs <= 0 {
		delete(b.cas, hash)
		b.stats.UniqueBlobs--
		if b.dir != "" {
			// Unreferenced payloads are pruned from the CAS area; any
			// hard-linked logical paths keep the data alive on disk.
			_ = os.Remove(filepath.Join(b.dir, casDir, hash))
		}
	}
}

// Delete removes the blob stored under key. Deleting a missing key is an
// error (ErrNotFound), matching Get.
func (b *BlobStore) Delete(key string) error {
	clean, err := cleanKey(key)
	if err != nil {
		return fmt.Errorf("%w: %q", err, key)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.deleteLocked(clean)
}

// deleteLocked removes one normalized key. Callers hold b.mu.
func (b *BlobStore) deleteLocked(clean string) error {
	if b.dir != "" {
		path := filepath.Join(b.dir, filepath.FromSlash(clean))
		if err := os.Remove(path); err != nil {
			if os.IsNotExist(err) {
				return fmt.Errorf("%w: %s", ErrNotFound, clean)
			}
			return fmt.Errorf("store: deleting blob %s: %w", clean, err)
		}
		b.releaseLocked(clean)
		return nil
	}
	if _, ok := b.mem[clean]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, clean)
	}
	delete(b.mem, clean)
	b.releaseLocked(clean)
	return nil
}

// DeletePrefix removes every blob whose key starts with prefix and returns
// how many were removed. Removing zero keys is not an error — the main
// caller is failure cleanup, which must be idempotent. On the directory
// backend it also prunes the emptied prefix directory and sweeps CAS
// payloads no logical path links to anymore: refcounts are per-process, so
// blobs stored by an earlier process (the prepare CLI) are invisible to
// this process's maps and only the on-disk link count knows they died.
func (b *BlobStore) DeletePrefix(prefix string) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	keys, err := b.listLocked(prefix)
	if err != nil {
		return 0, err
	}
	for _, key := range keys {
		if err := b.deleteLocked(key); err != nil {
			return 0, err
		}
	}
	if b.dir != "" {
		// Every key under the prefix is gone; drop the now-empty directory
		// tree. Only when the prefix names a directory unambiguously — a
		// trailing slash — so "t-1/" cannot take "t-10" with it.
		if dirKey, err := cleanKey(prefix); err == nil && strings.HasSuffix(prefix, "/") {
			_ = os.RemoveAll(filepath.Join(b.dir, filepath.FromSlash(dirKey)))
		}
		if len(keys) > 0 {
			b.sweepOrphanedCASLocked()
		}
	}
	return len(keys), nil
}

// sweepOrphanedCASLocked removes CAS payload files whose on-disk hard-link
// count shows no logical path references them. Payloads this process
// tracks as live are skipped regardless of link count (the hard-link
// fallback stores logical copies, leaving the payload at one link while
// referenced). Callers hold b.mu.
func (b *BlobStore) sweepOrphanedCASLocked() {
	entries, err := os.ReadDir(filepath.Join(b.dir, casDir))
	if err != nil {
		return
	}
	for _, e := range entries {
		hash := e.Name()
		if b.cas[hash] != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if st, ok := info.Sys().(*syscall.Stat_t); ok && st.Nlink <= 1 {
			_ = os.Remove(filepath.Join(b.dir, casDir, hash))
		}
	}
}

// Get returns the blob stored under key.
func (b *BlobStore) Get(key string) ([]byte, error) {
	clean, err := cleanKey(key)
	if err != nil {
		return nil, fmt.Errorf("%w: %q", err, key)
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.dir != "" {
		data, err := os.ReadFile(filepath.Join(b.dir, filepath.FromSlash(clean)))
		if err != nil {
			if os.IsNotExist(err) {
				return nil, fmt.Errorf("%w: %s", ErrNotFound, clean)
			}
			return nil, fmt.Errorf("store: reading blob %s: %w", clean, err)
		}
		return data, nil
	}
	data, ok := b.mem[clean]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, clean)
	}
	return append([]byte(nil), data...), nil
}

// List returns the sorted keys under the given prefix. Content-addressed
// payloads (the .cas area) are internal and never listed.
func (b *BlobStore) List(prefix string) ([]string, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	keys, err := b.listLocked(prefix)
	if err != nil {
		return nil, err
	}
	sort.Strings(keys)
	return keys, nil
}

// listLocked collects keys under prefix, unsorted. Callers hold b.mu (read
// or write).
func (b *BlobStore) listLocked(prefix string) ([]string, error) {
	prefix = strings.TrimPrefix(prefix, "/")
	var keys []string
	if b.dir != "" {
		root := b.dir
		err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if info.IsDir() {
				if rel, relErr := filepath.Rel(root, path); relErr == nil && filepath.ToSlash(rel) == casDir {
					return filepath.SkipDir
				}
				return nil
			}
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			key := filepath.ToSlash(rel)
			if strings.HasPrefix(key, prefix) {
				keys = append(keys, key)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("store: listing blobs: %w", err)
		}
		return keys, nil
	}
	for key := range b.mem {
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
	}
	return keys, nil
}

// siteKey builds the blob key for one file of a stored site.
func siteKey(testID, pageName, rel string) string {
	return testID + "/" + pageName + "/" + rel
}

// PutSite stores every file of a site under testID/pageName/, plus a
// marker recording the main file name so GetSite can reconstruct it. File
// payloads go through the content-addressed layer, so sites sharing bytes
// (the identical-pair control, repeated versions) are stored once.
func (b *BlobStore) PutSite(testID, pageName string, site *webgen.Site) error {
	if err := site.Validate(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := b.PutCAS(siteKey(testID, pageName, ".main"), []byte(site.MainFile)); err != nil {
		return err
	}
	for _, rel := range site.Paths() {
		data, _ := site.Get(rel)
		if err := b.PutCAS(siteKey(testID, pageName, rel), data); err != nil {
			return err
		}
	}
	return nil
}

// GetSite reconstructs a site stored with PutSite.
func (b *BlobStore) GetSite(testID, pageName string) (*webgen.Site, error) {
	main, err := b.Get(siteKey(testID, pageName, ".main"))
	if err != nil {
		return nil, err
	}
	site := webgen.NewSite(string(main))
	prefix := testID + "/" + pageName + "/"
	keys, err := b.List(prefix)
	if err != nil {
		return nil, err
	}
	for _, key := range keys {
		rel := strings.TrimPrefix(key, prefix)
		if rel == ".main" {
			continue
		}
		data, err := b.Get(key)
		if err != nil {
			return nil, err
		}
		site.Put(rel, data)
	}
	if err := site.Validate(); err != nil {
		return nil, fmt.Errorf("store: reconstructing %s/%s: %w", testID, pageName, err)
	}
	return site, nil
}
