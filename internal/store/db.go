// Package store implements Kaleidoscope's storage substrate: a small
// embedded document database (standing in for the paper's MongoDB) and a
// blob store for integrated-webpage files. The database holds schemaless
// JSON documents in named collections — the paper uses three: integrated
// webpages, test information, and participant responses — supports
// filtered queries, and persists each collection as a checksummed
// JSON-lines write-ahead log that is replayed (and repaired) on open.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Document is one schemaless record. Values must be JSON-encodable.
type Document map[string]any

// IDField is the key under which a document's identity is stored, echoing
// MongoDB's convention.
const IDField = "_id"

// ID returns the document's id ("" when unset).
func (d Document) ID() string {
	id, _ := d[IDField].(string)
	return id
}

// Clone returns a deep copy of the document (via JSON round-trip, which is
// safe because documents are JSON-encodable by contract).
func (d Document) Clone() Document {
	data, err := json.Marshal(d)
	if err != nil {
		// Non-encodable values violate the Document contract; fall back to
		// a shallow copy rather than corrupting the store.
		cp := make(Document, len(d))
		for k, v := range d {
			cp[k] = v
		}
		return cp
	}
	var cp Document
	if err := json.Unmarshal(data, &cp); err != nil {
		cp = make(Document, len(d))
		for k, v := range d {
			cp[k] = v
		}
	}
	return cp
}

// Common errors.
var (
	ErrNotFound    = errors.New("store: document not found")
	ErrClosed      = errors.New("store: database closed")
	ErrDuplicateID = errors.New("store: duplicate id")
)

// options collects Open-time configuration.
type options struct {
	fs          FileSystem
	policy      SyncPolicy
	interval    time.Duration
	autoCompact int
}

// Option configures Open.
type Option func(*options)

// WithFileSystem substitutes the filesystem the WAL runs on (fault
// injection in tests; the real disk by default).
func WithFileSystem(fs FileSystem) Option {
	return func(o *options) { o.fs = fs }
}

// WithSyncPolicy selects when WAL appends are fsynced (default
// SyncInterval: group-commit at most once per interval).
func WithSyncPolicy(p SyncPolicy) Option {
	return func(o *options) { o.policy = p }
}

// WithSyncInterval sets the SyncInterval group-commit window (default
// 100ms). Non-positive durations fsync on every append.
func WithSyncInterval(d time.Duration) Option {
	return func(o *options) { o.interval = d }
}

// WithAutoCompact snapshots a collection's WAL after threshold appends
// (when the log has grown past the live document count). Zero disables
// auto-compaction; Compact remains available either way.
func WithAutoCompact(threshold int) Option {
	return func(o *options) { o.autoCompact = threshold }
}

func defaultOptions() options {
	return options{fs: OSFileSystem{}, policy: SyncInterval, interval: 100 * time.Millisecond}
}

// DB is a collection-oriented document database. The zero value is not
// usable; construct with Open or OpenMemory.
type DB struct {
	mu          sync.RWMutex
	dir         string // "" = memory-only
	opts        options
	shipper     Shipper // non-nil on a replicated backend
	collections map[string]*Collection
	closed      atomic.Bool

	// Durability counters; see DurabilityStats.
	recoveredTails atomic.Int64
	quarantined    atomic.Int64
	compactions    atomic.Int64
	walAppends     atomic.Int64
	fsyncs         atomic.Int64
	fsyncNanos     atomic.Int64
	dirSyncs       atomic.Int64
}

// OpenMemory returns a purely in-memory database.
func OpenMemory() *DB {
	return &DB{opts: defaultOptions(), collections: make(map[string]*Collection)}
}

// Open returns a database persisted under dir (created if needed). Each
// collection is stored as <dir>/<name>.jsonl and replayed on open. Replay
// repairs crash damage instead of refusing to start: a torn final record
// is truncated, and corrupt or invalid records elsewhere are moved to a
// <name>.jsonl.corrupt sidecar for inspection.
func Open(dir string, opts ...Option) (*DB, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory; use OpenMemory")
	}
	return OpenBackend(Dir(dir), opts...)
}

// Collection returns (creating if necessary) the named collection.
func (db *DB) Collection(name string) *Collection {
	db.mu.Lock()
	defer db.mu.Unlock()
	if c, ok := db.collections[name]; ok {
		return c
	}
	c := &Collection{
		name: name,
		db:   db,
		docs: make(map[string]Document),
	}
	db.collections[name] = c
	return c
}

// CollectionNames returns the sorted names of existing collections.
func (db *DB) CollectionNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.collections))
	for n := range db.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Close marks the database closed and flushes and closes every
// collection's WAL handle. Subsequent mutations and Get return ErrClosed;
// Find/FindEq/CountEq return empty results.
func (db *DB) Close() {
	if db.closed.Swap(true) {
		return
	}
	db.mu.RLock()
	colls := make([]*Collection, 0, len(db.collections))
	for _, c := range db.collections {
		colls = append(colls, c)
	}
	db.mu.RUnlock()
	for _, c := range colls {
		c.mu.Lock()
		if c.wal != nil {
			_ = c.wal.close()
			c.wal = nil
		}
		c.mu.Unlock()
	}
}

// isClosed reports whether Close has been called.
func (db *DB) isClosed() bool { return db.closed.Load() }

// walRecord is one line of a collection's JSONL log.
type walRecord struct {
	Op  string   `json:"op"` // "put" or "del"
	ID  string   `json:"id"`
	Doc Document `json:"doc,omitempty"`
}

// loadCollection replays (and, when damaged, repairs) a collection's WAL.
func (db *DB) loadCollection(name string) (*Collection, error) {
	c := &Collection{name: name, db: db, docs: make(map[string]Document)}
	path := db.collectionPath(name)
	data, err := db.opts.fs.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return c, nil
		}
		return nil, fmt.Errorf("store: reading %s: %w", path, err)
	}
	rep := scanWAL(data)
	if err := recoverWAL(db.opts.fs, path, rep); err != nil {
		return nil, err
	}
	if len(rep.quarantined) > 0 {
		// The rewrite swapped a new file into place; make the rename stick.
		if err := db.syncDir(); err != nil {
			return nil, err
		}
	}
	if rep.truncateAt >= 0 {
		db.recoveredTails.Add(1)
	}
	db.quarantined.Add(int64(len(rep.quarantined)))
	for _, rec := range rep.records {
		switch rec.Op {
		case "put":
			c.docs[rec.ID] = rec.Doc
		case "del":
			delete(c.docs, rec.ID)
		}
		// Track the sequence high-water mark for id generation.
		if n, ok := parseSeqID(rec.ID); ok && n > c.seq {
			c.seq = n
		}
	}
	return c, nil
}

func (db *DB) collectionPath(name string) string {
	return filepath.Join(db.dir, name+".jsonl")
}

// parseSeqID recognizes generated ids of the form "doc-<n>".
func parseSeqID(id string) (int64, bool) {
	const prefix = "doc-"
	if !strings.HasPrefix(id, prefix) {
		return 0, false
	}
	n, err := strconv.ParseInt(id[len(prefix):], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Collection is a named set of documents.
type Collection struct {
	mu       sync.RWMutex
	name     string
	db       *DB
	docs     map[string]Document
	seq      int64
	indexes  map[string]*fieldIndex
	onChange []func(op, id string)

	// wal is the persistent append handle (opened lazily); appends counts
	// records since the last compaction. Both are guarded by mu.
	wal     *walFile
	appends int

	indexHits atomic.Int64
	scans     atomic.Int64
}

// appendWAL writes one record to the collection's log when the database is
// persistent. Called with c.mu held.
func (c *Collection) appendWAL(rec walRecord) error {
	if c.db.dir == "" {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding WAL record: %w", err)
	}
	return c.appendFrames(frameRecord(data), 1)
}

// appendFrames is the one write path to a collection's log: it lazily opens
// the WAL handle (syncing the directory so the new file's name is as
// durable as its contents), appends n pre-framed records in one Write, runs
// the sync policy, and — on a replicated backend — ships the exact bytes
// that hit the disk. A shipper failure fails the write: the record may sit
// in the local WAL unreplicated, which the idempotent replay tolerates, but
// the caller is never acknowledged. Called with c.mu held.
func (c *Collection) appendFrames(frames []byte, n int) error {
	if c.db.dir == "" {
		return nil
	}
	if c.wal == nil {
		f, err := c.db.opts.fs.OpenAppend(c.db.collectionPath(c.name))
		if err != nil {
			return err
		}
		if err := c.db.syncDir(); err != nil {
			f.Close()
			return err
		}
		c.wal = &walFile{file: f, db: c.db, lastSync: time.Now()}
	}
	if err := c.wal.appendGroup(frames, n); err != nil {
		return err
	}
	c.appends += n
	if s := c.db.shipper; s != nil {
		if err := s.Ship(c.name, frames, n); err != nil {
			return fmt.Errorf("store: replicating WAL append: %w", err)
		}
	}
	return nil
}

// syncDir fsyncs the store directory so file creations and renames inside
// it are crash-durable. No-op on a memory database.
func (db *DB) syncDir() error {
	if db.dir == "" {
		return nil
	}
	db.dirSyncs.Add(1)
	return db.opts.fs.SyncDir(db.dir)
}

// Insert stores a new document and returns its id. When the document lacks
// an _id one is generated; inserting a document whose _id already exists
// overwrites it (upsert), matching the store's last-write-wins semantics.
// Numeric values are normalized to float64 on the way in, so a live document
// always equals its WAL-replayed form.
func (c *Collection) Insert(doc Document) (string, error) {
	return c.insert(doc, false)
}

// InsertUnique is Insert without the upsert: when a document with the same
// _id already exists it fails with ErrDuplicateID and changes nothing. The
// existence check and the insert happen under one lock, so concurrent
// duplicate inserts cannot both succeed.
func (c *Collection) InsertUnique(doc Document) (string, error) {
	return c.insert(doc, true)
}

func (c *Collection) insert(doc Document, unique bool) (string, error) {
	if c.db.isClosed() {
		return "", ErrClosed
	}
	c.mu.Lock()
	cp := doc.Clone()
	normalizeDoc(cp)
	id := cp.ID()
	if id == "" {
		c.seq++
		id = "doc-" + strconv.FormatInt(c.seq, 10)
		cp[IDField] = id
	}
	old, exists := c.docs[id]
	if exists && unique {
		c.mu.Unlock()
		return "", fmt.Errorf("%w: %s/%s", ErrDuplicateID, c.name, id)
	}
	if err := c.appendWAL(walRecord{Op: "put", ID: id, Doc: cp}); err != nil {
		c.mu.Unlock()
		return "", err
	}
	if exists {
		c.removeFromIndexes(id, old)
	}
	c.docs[id] = cp
	c.addToIndexes(id, cp)
	c.maybeCompactLocked()
	fns := c.onChange
	c.mu.Unlock()
	c.notify(fns, OpPut, id)
	return id, nil
}

// Get returns a copy of the document with the given id.
func (c *Collection) Get(id string) (Document, error) {
	if c.db.isClosed() {
		return nil, ErrClosed
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	doc, ok := c.docs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, c.name, id)
	}
	return doc.Clone(), nil
}

// Find returns copies of all documents matching the predicate, sorted by
// id for determinism. A nil predicate matches everything. Find always scans
// the whole collection; equality lookups should use FindEq, which consults
// the declared indexes. On a closed database Find returns nil.
func (c *Collection) Find(pred func(Document) bool) []Document {
	if c.db.isClosed() {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.scanLocked(pred)
}

// scanLocked performs (and counts) one full-collection scan; callers hold
// at least the read lock. The scan is counted here — exactly once per
// logical operation — so FindEq/CountEq fallbacks and Find agree on
// accounting.
func (c *Collection) scanLocked(pred func(Document) bool) []Document {
	c.scans.Add(1)
	var out []Document
	for _, doc := range c.docs {
		if pred == nil || pred(doc) {
			out = append(out, doc.Clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// FindEq returns documents whose field equals value, sorted by id. When the
// field is indexed (EnsureIndex) this is a map lookup plus a copy of the
// matching documents; otherwise it scans. Numeric values are compared after
// JSON normalization (all numbers are float64). On a closed database FindEq
// returns nil.
func (c *Collection) FindEq(field string, value any) []Document {
	if c.db.isClosed() {
		return nil
	}
	c.mu.RLock()
	if ix, ok := c.indexes[field]; ok {
		if key, comparable := indexKey(value); comparable {
			ids := ix.ids[key]
			out := make([]Document, 0, len(ids))
			for id := range ids {
				out = append(out, c.docs[id].Clone())
			}
			c.mu.RUnlock()
			c.indexHits.Add(1)
			sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
			return out
		}
	}
	norm := normalizeValue(value)
	out := c.scanLocked(func(d Document) bool {
		return normalizeValue(d[field]) == norm
	})
	c.mu.RUnlock()
	return out
}

// CountEq reports how many documents have field equal to value. On an
// indexed field this is O(1) — no documents are copied — which is what the
// serving path's listing counters use. On a closed database CountEq
// returns 0.
func (c *Collection) CountEq(field string, value any) int {
	if c.db.isClosed() {
		return 0
	}
	c.mu.RLock()
	if ix, ok := c.indexes[field]; ok {
		if key, comparable := indexKey(value); comparable {
			n := len(ix.ids[key])
			c.mu.RUnlock()
			c.indexHits.Add(1)
			return n
		}
	}
	c.scans.Add(1)
	norm := normalizeValue(value)
	n := 0
	for _, doc := range c.docs {
		if normalizeValue(doc[field]) == norm {
			n++
		}
	}
	c.mu.RUnlock()
	return n
}

// normalizeValue maps numeric types onto float64 so values survive the
// JSON round-trip documents go through.
func normalizeValue(v any) any {
	switch n := v.(type) {
	case int:
		return float64(n)
	case int8:
		return float64(n)
	case int16:
		return float64(n)
	case int32:
		return float64(n)
	case int64:
		return float64(n)
	case uint:
		return float64(n)
	case uint8:
		return float64(n)
	case uint16:
		return float64(n)
	case uint32:
		return float64(n)
	case uint64:
		return float64(n)
	case float32:
		return float64(n)
	case json.Number:
		if f, err := n.Float64(); err == nil {
			return f
		}
		return v
	default:
		return v
	}
}

// Update applies mutate to the document with the given id and persists the
// result. The callback receives a copy; returning nil aborts with no change.
// Like Insert, the stored result is numerically normalized.
func (c *Collection) Update(id string, mutate func(Document) Document) error {
	if c.db.isClosed() {
		return ErrClosed
	}
	c.mu.Lock()
	doc, ok := c.docs[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s/%s", ErrNotFound, c.name, id)
	}
	updated := mutate(doc.Clone())
	if updated == nil {
		c.mu.Unlock()
		return nil
	}
	updated[IDField] = id
	normalizeDoc(updated)
	if err := c.appendWAL(walRecord{Op: "put", ID: id, Doc: updated}); err != nil {
		c.mu.Unlock()
		return err
	}
	c.removeFromIndexes(id, doc)
	c.docs[id] = updated
	c.addToIndexes(id, updated)
	c.maybeCompactLocked()
	fns := c.onChange
	c.mu.Unlock()
	c.notify(fns, OpPut, id)
	return nil
}

// Delete removes the document with the given id (no error if absent).
func (c *Collection) Delete(id string) error {
	if c.db.isClosed() {
		return ErrClosed
	}
	c.mu.Lock()
	doc, ok := c.docs[id]
	if !ok {
		c.mu.Unlock()
		return nil
	}
	if err := c.appendWAL(walRecord{Op: "del", ID: id}); err != nil {
		c.mu.Unlock()
		return err
	}
	c.removeFromIndexes(id, doc)
	delete(c.docs, id)
	c.maybeCompactLocked()
	fns := c.onChange
	c.mu.Unlock()
	c.notify(fns, OpDelete, id)
	return nil
}

// Count returns the number of documents in the collection.
func (c *Collection) Count() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }
