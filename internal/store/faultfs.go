package store

import (
	"sync"
	"syscall"
)

// ErrNoSpace is the default injected append failure: disk full.
var ErrNoSpace = syscall.ENOSPC

// FaultFS wraps a FileSystem and injects write faults into WAL appends:
// after a configured number of appended bytes, every further Write fails
// (optionally after persisting a torn prefix, which is what a crash mid
// write leaves behind). It exists so crash-recovery tests can prove the
// property that matters for a days-long crowdsourcing campaign: every
// acknowledged write survives a reopen, and a torn tail never prevents the
// store from opening.
//
// Reads, renames, and truncates pass through untouched — recovery itself
// runs on a healthy disk.
type FaultFS struct {
	// Inner is the wrapped FileSystem (OSFileSystem when nil).
	Inner FileSystem

	mu      sync.Mutex
	limit   int64 // appended-byte budget; <0 = unlimited
	written int64
	err     error // returned once the budget is exhausted
	torn    bool  // persist the partial prefix of the failing write
	tripped bool

	dirSyncErr error // injected SyncDir failure (nil = pass through)
	dirSyncs   int64
}

// NewFaultFS returns a FaultFS over the real disk with no fault armed.
func NewFaultFS() *FaultFS {
	return &FaultFS{Inner: OSFileSystem{}, limit: -1}
}

// FailAppendsAfter arms the fault: once n bytes have been appended across
// all WAL files, writes fail with err (ErrNoSpace when nil). With torn set,
// the failing write first persists the bytes that still fit — a torn write,
// as left by a crash or a partially full disk.
func (f *FaultFS) FailAppendsAfter(n int64, err error, torn bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		err = ErrNoSpace
	}
	f.limit, f.err, f.torn = n, err, torn
	f.written, f.tripped = 0, false
}

// FailDirSync arms directory-fsync failures: every SyncDir call fails with
// err (ErrNoSpace when nil) until Reset. A failing dir sync is the crash
// window in which a just-created WAL or a completed rename is still only a
// promise — recovery must treat the write it covered as unacknowledged.
func (f *FaultFS) FailDirSync(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		err = ErrNoSpace
	}
	f.dirSyncErr = err
}

// DirSyncs reports how many directory fsyncs reached the filesystem
// (injected failures count — the caller attempted the sync).
func (f *FaultFS) DirSyncs() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dirSyncs
}

// Reset disarms the fault (the disk "recovers").
func (f *FaultFS) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.limit = -1
	f.written, f.tripped = 0, false
	f.dirSyncErr = nil
}

// Tripped reports whether an injected fault has fired.
func (f *FaultFS) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

func (f *FaultFS) inner() FileSystem {
	if f.Inner == nil {
		return OSFileSystem{}
	}
	return f.Inner
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) { return f.inner().ReadFile(path) }

func (f *FaultFS) WriteFile(path string, data []byte) error {
	return f.inner().WriteFile(path, data)
}

func (f *FaultFS) Rename(oldPath, newPath string) error { return f.inner().Rename(oldPath, newPath) }

func (f *FaultFS) Truncate(path string, size int64) error { return f.inner().Truncate(path, size) }

func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	f.dirSyncs++
	err := f.dirSyncErr
	if err != nil {
		f.tripped = true
	}
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.inner().SyncDir(dir)
}

func (f *FaultFS) OpenAppend(path string) (WALFile, error) {
	w, err := f.inner().OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: w}, nil
}

// faultFile applies the FaultFS byte budget to one WAL handle.
type faultFile struct {
	fs    *FaultFS
	inner WALFile
}

func (w *faultFile) Write(p []byte) (int, error) {
	f := w.fs
	f.mu.Lock()
	if f.limit >= 0 && f.written+int64(len(p)) > f.limit {
		keep := 0
		if f.torn {
			keep = int(f.limit - f.written)
		}
		f.written = f.limit
		f.tripped = true
		err := f.err
		f.mu.Unlock()
		if keep > 0 {
			// A torn write: part of the record reaches the disk.
			if _, werr := w.inner.Write(p[:keep]); werr != nil {
				return 0, werr
			}
			_ = w.inner.Sync()
		}
		return keep, err
	}
	f.written += int64(len(p))
	f.mu.Unlock()
	return w.inner.Write(p)
}

func (w *faultFile) Sync() error { return w.inner.Sync() }

func (w *faultFile) Close() error { return w.inner.Close() }
