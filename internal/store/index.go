package store

import "encoding/json"

// This file implements the collection-level serving-path machinery: secondary
// indexes (FindEq/CountEq on a declared field become map lookups instead of
// O(docs) scans), numeric value normalization (so live in-memory documents
// and WAL-replayed documents agree), and read-path statistics consumed by the
// observability layer.

// fieldIndex is one secondary index: normalized field value -> id set.
type fieldIndex struct {
	field string
	ids   map[any]map[string]struct{}
}

// indexKey normalizes v into a comparable map key. Values that are not
// comparable after normalization (maps, slices) are not indexable and report
// ok=false; lookups on them fall back to a scan.
func indexKey(v any) (any, bool) {
	switch n := normalizeValue(v).(type) {
	case nil, string, float64, bool:
		return n, true
	default:
		return nil, false
	}
}

func (ix *fieldIndex) add(id string, doc Document) {
	key, ok := indexKey(doc[ix.field])
	if !ok {
		return
	}
	set, ok := ix.ids[key]
	if !ok {
		set = make(map[string]struct{})
		ix.ids[key] = set
	}
	set[id] = struct{}{}
}

func (ix *fieldIndex) remove(id string, doc Document) {
	key, ok := indexKey(doc[ix.field])
	if !ok {
		return
	}
	set, ok := ix.ids[key]
	if !ok {
		return
	}
	delete(set, id)
	if len(set) == 0 {
		delete(ix.ids, key)
	}
}

// EnsureIndex declares a secondary index on field, building it from the
// current documents (which covers WAL-replayed collections: open the
// database, then declare the indexes). Declaring the same index twice is a
// no-op. Once declared, the index is maintained on every Insert, Update,
// and Delete.
func (c *Collection) EnsureIndex(field string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.indexes == nil {
		c.indexes = make(map[string]*fieldIndex)
	}
	if _, ok := c.indexes[field]; ok {
		return
	}
	ix := &fieldIndex{field: field, ids: make(map[any]map[string]struct{})}
	for id, doc := range c.docs {
		ix.add(id, doc)
	}
	c.indexes[field] = ix
}

// Indexes returns the indexed field names (unordered).
func (c *Collection) Indexes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.indexes))
	for f := range c.indexes {
		out = append(out, f)
	}
	return out
}

// addToIndexes/removeFromIndexes maintain every declared index; callers hold
// the collection lock.
func (c *Collection) addToIndexes(id string, doc Document) {
	for _, ix := range c.indexes {
		ix.add(id, doc)
	}
}

func (c *Collection) removeFromIndexes(id string, doc Document) {
	for _, ix := range c.indexes {
		ix.remove(id, doc)
	}
}

// CollectionStats is a snapshot of a collection's read-path behaviour.
type CollectionStats struct {
	// Docs is the current document count.
	Docs int
	// Indexes is the number of declared secondary indexes.
	Indexes int
	// IndexHits counts FindEq/CountEq calls served by an index lookup.
	IndexHits int64
	// Scans counts full-collection scans (Find, and FindEq/CountEq on
	// unindexed or unindexable values).
	Scans int64
}

// Stats returns the collection's read-path statistics.
func (c *Collection) Stats() CollectionStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return CollectionStats{
		Docs:      len(c.docs),
		Indexes:   len(c.indexes),
		IndexHits: c.indexHits.Load(),
		Scans:     c.scans.Load(),
	}
}

// Change operations reported to OnChange subscribers.
const (
	OpPut    = "put"
	OpDelete = "del"
)

// OnChange subscribes fn to this collection's mutations. fn runs after the
// mutation has committed, outside the collection lock (so it may call back
// into the collection), on the mutating goroutine. WAL replay during Open
// predates any subscription and is not reported.
func (c *Collection) OnChange(fn func(op, id string)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onChange = append(c.onChange, fn)
}

// notify invokes subscribers; callers must NOT hold the collection lock.
func (c *Collection) notify(fns []func(op, id string), op, id string) {
	for _, fn := range fns {
		fn(op, id)
	}
}

// Int reads a numeric field as an int, tolerating every representation a
// document can pick up along its lifecycle (typed ints at insert time,
// float64 after a JSON round-trip or WAL replay, json.Number from custom
// decoders). The second return is false when the field is absent or not a
// number.
func (d Document) Int(key string) (int, bool) {
	switch n := d[key].(type) {
	case float64:
		return int(n), true
	case float32:
		return int(n), true
	case int:
		return n, true
	case int8:
		return int(n), true
	case int16:
		return int(n), true
	case int32:
		return int(n), true
	case int64:
		return int(n), true
	case uint:
		return int(n), true
	case uint8:
		return int(n), true
	case uint16:
		return int(n), true
	case uint32:
		return int(n), true
	case uint64:
		return int(n), true
	case json.Number:
		f, err := n.Float64()
		if err != nil {
			return 0, false
		}
		return int(f), true
	default:
		return 0, false
	}
}

// normalizeDoc rewrites every numeric value in the document (recursively)
// onto float64 — the representation JSON decoding produces — so a live
// in-memory document is indistinguishable from its WAL-replayed twin.
func normalizeDoc(d Document) {
	for k, v := range d {
		d[k] = normalizeAny(v)
	}
}

func normalizeAny(v any) any {
	switch n := v.(type) {
	case map[string]any:
		for k, e := range n {
			n[k] = normalizeAny(e)
		}
		return n
	case Document:
		normalizeDoc(n)
		return n
	case []any:
		for i, e := range n {
			n[i] = normalizeAny(e)
		}
		return n
	default:
		return normalizeValue(v)
	}
}
