package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// eachBackend runs fn against a fresh memory-backed and dir-backed store.
func eachBackend(t *testing.T, fn func(t *testing.T, b *BlobStore)) {
	t.Helper()
	t.Run("memory", func(t *testing.T) { fn(t, NewBlobStore()) })
	t.Run("dir", func(t *testing.T) {
		b, err := OpenBlobStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		fn(t, b)
	})
}

func TestPutCASDedup(t *testing.T) {
	eachBackend(t, func(t *testing.T, b *BlobStore) {
		payload := bytes.Repeat([]byte("kaleidoscope"), 100)
		keys := []string{"t/p1/left.html", "t/p1/right.html", "t/p2/left.html"}
		for _, key := range keys {
			if err := b.PutCAS(key, payload); err != nil {
				t.Fatalf("PutCAS(%s): %v", key, err)
			}
		}
		for _, key := range keys {
			got, err := b.Get(key)
			if err != nil {
				t.Fatalf("Get(%s): %v", key, err)
			}
			if !bytes.Equal(got, payload) {
				t.Errorf("Get(%s) = %d bytes, want %d", key, len(got), len(payload))
			}
		}
		stats := b.Stats()
		if stats.CASPuts != 3 || stats.DedupHits != 2 || stats.UniqueBlobs != 1 {
			t.Errorf("stats = %+v, want 3 CAS puts, 2 dedup hits, 1 unique blob", stats)
		}
		if want := int64(2 * len(payload)); stats.BytesSaved != want {
			t.Errorf("bytes saved = %d, want %d", stats.BytesSaved, want)
		}
		// The CAS area is internal: never listed.
		listed, err := b.List("")
		if err != nil {
			t.Fatal(err)
		}
		if len(listed) != len(keys) {
			t.Errorf("List = %v, want the %d logical keys only", listed, len(keys))
		}
	})
}

func TestPutCASDistinctPayloads(t *testing.T) {
	eachBackend(t, func(t *testing.T, b *BlobStore) {
		for i := 0; i < 4; i++ {
			if err := b.PutCAS(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		stats := b.Stats()
		if stats.DedupHits != 0 || stats.UniqueBlobs != 4 {
			t.Errorf("stats = %+v, want 0 hits, 4 unique", stats)
		}
	})
}

// TestPutOverCASLinkPreservesSharedPayload guards the hard-link hazard: a
// plain Put over a key that shares a CAS payload must not mutate the bytes
// other keys read.
func TestPutOverCASLinkPreservesSharedPayload(t *testing.T) {
	eachBackend(t, func(t *testing.T, b *BlobStore) {
		original := []byte("shared original payload")
		if err := b.PutCAS("a", original); err != nil {
			t.Fatal(err)
		}
		if err := b.PutCAS("b", original); err != nil {
			t.Fatal(err)
		}
		if err := b.Put("a", []byte("overwritten!")); err != nil {
			t.Fatal(err)
		}
		got, err := b.Get("b")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, original) {
			t.Fatalf("Get(b) = %q after Put(a); shared payload corrupted", got)
		}
	})
}

// PutCAS over an existing key (CAS or plain) must replace it and keep
// refcounts right.
func TestPutCASOverwrite(t *testing.T) {
	eachBackend(t, func(t *testing.T, b *BlobStore) {
		if err := b.Put("k", []byte("plain")); err != nil {
			t.Fatal(err)
		}
		if err := b.PutCAS("k", []byte("v1")); err != nil {
			t.Fatal(err)
		}
		if err := b.PutCAS("k", []byte("v2")); err != nil {
			t.Fatal(err)
		}
		got, err := b.Get("k")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "v2" {
			t.Errorf("Get = %q, want v2", got)
		}
		// v1's payload lost its only reference.
		if stats := b.Stats(); stats.UniqueBlobs != 1 {
			t.Errorf("unique blobs = %d, want 1", stats.UniqueBlobs)
		}
	})
}

func TestDeleteReleasesCAS(t *testing.T) {
	eachBackend(t, func(t *testing.T, b *BlobStore) {
		payload := []byte("payload")
		if err := b.PutCAS("x/a", payload); err != nil {
			t.Fatal(err)
		}
		if err := b.PutCAS("x/b", payload); err != nil {
			t.Fatal(err)
		}
		if err := b.Delete("x/a"); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Get("x/a"); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get deleted key err = %v", err)
		}
		if got, err := b.Get("x/b"); err != nil || !bytes.Equal(got, payload) {
			t.Errorf("Get(x/b) = %q, %v", got, err)
		}
		if stats := b.Stats(); stats.UniqueBlobs != 1 {
			t.Errorf("unique blobs = %d, want 1", stats.UniqueBlobs)
		}
		if err := b.Delete("x/b"); err != nil {
			t.Fatal(err)
		}
		if stats := b.Stats(); stats.UniqueBlobs != 0 {
			t.Errorf("unique blobs after full delete = %d, want 0", stats.UniqueBlobs)
		}
		if err := b.Delete("x/b"); !errors.Is(err, ErrNotFound) {
			t.Errorf("double delete err = %v, want ErrNotFound", err)
		}
	})
}

func TestDeleteReleasesCASPrunesDiskPayload(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenBlobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PutCAS("only", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete("only"); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, casDir))
	if err == nil && len(entries) > 0 {
		t.Errorf("cas dir still holds %d unreferenced payloads", len(entries))
	}
}

func TestDeletePrefix(t *testing.T) {
	eachBackend(t, func(t *testing.T, b *BlobStore) {
		for _, key := range []string{"t1/p/a", "t1/p/b", "t2/p/a"} {
			if err := b.PutCAS(key, []byte(key)); err != nil {
				t.Fatal(err)
			}
		}
		n, err := b.DeletePrefix("t1/")
		if err != nil {
			t.Fatal(err)
		}
		if n != 2 {
			t.Errorf("deleted %d, want 2", n)
		}
		// Idempotent: nothing left under the prefix.
		if n, err := b.DeletePrefix("t1/"); err != nil || n != 0 {
			t.Errorf("second DeletePrefix = %d, %v", n, err)
		}
		if got, err := b.Get("t2/p/a"); err != nil || string(got) != "t2/p/a" {
			t.Errorf("unrelated key damaged: %q, %v", got, err)
		}
	})
}

// TestDeletePrefixSweepsCrossProcessOrphans reopens a populated directory
// store in a fresh BlobStore — the server process deleting a test the
// prepare CLI stored. Refcounts are per-process, so only the on-disk link
// count can prove the CAS payloads died: after deleting every test that
// shares them, the .cas area and the tests' directories must be gone,
// while payloads still hard-linked by a surviving test must remain.
func TestDeletePrefixSweepsCrossProcessOrphans(t *testing.T) {
	dir := t.TempDir()
	writer, err := OpenBlobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// t1 and t2 share a payload; t3 has its own.
	shared, own := []byte("shared payload"), []byte("private payload")
	for _, k := range []string{"t1/p/index.html", "t2/p/index.html"} {
		if err := writer.PutCAS(k, shared); err != nil {
			t.Fatal(err)
		}
	}
	if err := writer.PutCAS("t3/p/index.html", own); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh store over the same directory knows none of the
	// refcounts.
	server, err := OpenBlobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := server.DeletePrefix("t1/"); err != nil || n != 1 {
		t.Fatalf("DeletePrefix t1 = %d, %v", n, err)
	}
	// t2 still links the shared payload: it must survive t1's deletion.
	if got, err := server.Get("t2/p/index.html"); err != nil || string(got) != string(shared) {
		t.Fatalf("shared payload lost with a survivor attached: %q, %v", got, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "t1")); !os.IsNotExist(err) {
		t.Errorf("t1 directory survived its deletion: %v", err)
	}
	if n, err := server.DeletePrefix("t2/"); err != nil || n != 1 {
		t.Fatalf("DeletePrefix t2 = %d, %v", n, err)
	}
	if n, err := server.DeletePrefix("t3/"); err != nil || n != 1 {
		t.Fatalf("DeletePrefix t3 = %d, %v", n, err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, casDir))
	if err == nil && len(entries) > 0 {
		t.Errorf("cas area still holds %d orphaned payloads after every referencing test was deleted", len(entries))
	}
}

// TestBlobStoreConcurrentHammer drives Put, PutCAS, Get, and List from
// parallel goroutines on both backends. Run under -race via make check,
// this is the store's concurrency contract test.
func TestBlobStoreConcurrentHammer(t *testing.T) {
	eachBackend(t, func(t *testing.T, b *BlobStore) {
		const (
			goroutines = 8
			rounds     = 40
		)
		shared := make([][]byte, 4)
		for i := range shared {
			shared[i] = bytes.Repeat([]byte{byte('A' + i)}, 256+i)
		}
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					unique := fmt.Sprintf("own/%d/%d", g, r)
					cas := fmt.Sprintf("cas/%d/%d", g, r)
					payload := shared[(g+r)%len(shared)]
					if err := b.Put(unique, []byte(unique)); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
					if err := b.PutCAS(cas, payload); err != nil {
						t.Errorf("PutCAS: %v", err)
						return
					}
					if got, err := b.Get(unique); err != nil || string(got) != unique {
						t.Errorf("Get(%s) = %q, %v", unique, got, err)
						return
					}
					if got, err := b.Get(cas); err != nil || !bytes.Equal(got, payload) {
						t.Errorf("Get(%s): %v", cas, err)
						return
					}
					if _, err := b.List(fmt.Sprintf("own/%d/", g)); err != nil {
						t.Errorf("List: %v", err)
						return
					}
				}
			}(g)
		}
		wg.Wait()

		// Post-hammer consistency: every key reads back, dedup collapsed the
		// shared payloads to at most len(shared) live CAS entries.
		keys, err := b.List("")
		if err != nil {
			t.Fatal(err)
		}
		if want := goroutines * rounds * 2; len(keys) != want {
			t.Errorf("keys = %d, want %d", len(keys), want)
		}
		stats := b.Stats()
		if stats.UniqueBlobs != int64(len(shared)) {
			t.Errorf("unique blobs = %d, want %d", stats.UniqueBlobs, len(shared))
		}
		if want := int64(goroutines*rounds) - int64(len(shared)); stats.DedupHits != want {
			t.Errorf("dedup hits = %d, want %d", stats.DedupHits, want)
		}
	})
}

// TestCleanKeyTable pins cleanKey's traversal rejection and normalization.
func TestCleanKeyTable(t *testing.T) {
	cases := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{in: "a/b/c", want: "a/b/c"},
		{in: "/leading/slash", want: "leading/slash"},
		{in: "a//b", want: "a/b"},
		{in: "a/./b", want: "a/b"},
		{in: "a/x/../b", want: "a/b"},
		{in: "trailing/", want: "trailing"},
		{in: "", wantErr: true},
		{in: "/", wantErr: true},
		{in: ".", wantErr: true},
		{in: "..", wantErr: true},
		{in: "../escape", wantErr: true},
		{in: "a/../..", wantErr: true},
		{in: "a/../../b", wantErr: true},
		{in: "..//..//etc/passwd", wantErr: true},
		// The CAS area is reserved for the store itself.
		{in: ".cas", wantErr: true},
		{in: ".cas/deadbeef", wantErr: true},
		{in: "/.cas/deadbeef", wantErr: true},
		{in: "x/../.cas/deadbeef", wantErr: true},
		// ".cas" as a non-leading segment is a normal key.
		{in: "t/.cas/file", want: "t/.cas/file"},
	}
	for _, tc := range cases {
		got, err := cleanKey(tc.in)
		if tc.wantErr {
			if !errors.Is(err, ErrInvalidKey) {
				t.Errorf("cleanKey(%q) err = %v, want ErrInvalidKey", tc.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("cleanKey(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("cleanKey(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
