package store

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// recordingShipper captures every Ship call for inspection.
type recordingShipper struct {
	calls []shipCall
	fail  error
}

type shipCall struct {
	collection string
	frames     string
	records    int
}

func (s *recordingShipper) Ship(collection string, frames []byte, records int) error {
	if s.fail != nil {
		return s.fail
	}
	s.calls = append(s.calls, shipCall{collection, string(frames), records})
	return nil
}

func TestBackendConstructors(t *testing.T) {
	if b := Memory(); b.Kind() != BackendMemory || b.Dir() != "" || b.Shipper() != nil {
		t.Errorf("Memory() = %+v, want empty memory backend", b)
	}
	if b := Dir("/x"); b.Kind() != BackendDir || b.Dir() != "/x" {
		t.Errorf("Dir() = %+v", b)
	}
	sh := &recordingShipper{}
	if b := Replicated("/x", sh); b.Kind() != BackendReplicated || b.Dir() != "/x" || b.Shipper() == nil {
		t.Errorf("Replicated() = %+v", b)
	}
}

func TestOpenBackendValidation(t *testing.T) {
	if _, err := OpenBackend(Replicated("", &recordingShipper{})); err == nil {
		t.Error("replicated backend without a directory must be rejected")
	}
	if _, err := OpenBackend(Replicated(t.TempDir(), nil)); err == nil {
		t.Error("replicated backend without a shipper must be rejected")
	}
	db, err := OpenBackend(Memory())
	if err != nil {
		t.Fatalf("memory backend: %v", err)
	}
	db.Close()
}

// TestShipperReceivesDurableFrames: every Ship call must deliver exactly
// the framed WAL lines that were just made locally durable, in order, with
// a truthful record count — they are about to cross a network.
func TestShipperReceivesDurableFrames(t *testing.T) {
	sh := &recordingShipper{}
	db, err := OpenBackend(Replicated(t.TempDir(), sh), WithSyncPolicy(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c := db.Collection("uploads")
	if _, err := c.Insert(Document{IDField: "a", "v": 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(Document{IDField: "b", "v": 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if len(sh.calls) != 3 {
		t.Fatalf("ship calls = %d, want 3", len(sh.calls))
	}
	for i, call := range sh.calls {
		if call.collection != "uploads" || call.records != 1 {
			t.Errorf("call %d = %+v, want 1 uploads record", i, call)
		}
		for _, line := range strings.Split(strings.TrimSpace(call.frames), "\n") {
			if err := VerifyWALLine([]byte(line)); err != nil {
				t.Errorf("call %d shipped unverifiable line %q: %v", i, line, err)
			}
		}
	}

	// A batch ships as one call with the full group.
	docs := []Document{{IDField: "c"}, {IDField: "d"}, {IDField: "e"}}
	if _, errs := c.InsertUniqueBatch(docs); errs != nil {
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	last := sh.calls[len(sh.calls)-1]
	if last.records != 3 {
		t.Errorf("batch ship records = %d, want 3", last.records)
	}
	if lines := strings.Count(last.frames, "\n"); lines != 3 {
		t.Errorf("batch ship lines = %d, want 3", lines)
	}
}

// TestShipFailureFailsWrite: when the shipper rejects, the write must fail
// and must not be visible in memory — the caller was told it did not
// happen. The record is, however, already in the local WAL (it was made
// durable before shipping); a reopen replays it. That phantom is the
// documented price of local-durability-first ordering, and it is safe
// because replication delivery is idempotent.
func TestShipFailureFailsWrite(t *testing.T) {
	dir := t.TempDir()
	sh := &recordingShipper{}
	db, err := OpenBackend(Replicated(dir, sh), WithSyncPolicy(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("uploads")
	if _, err := c.Insert(Document{IDField: "ok"}); err != nil {
		t.Fatal(err)
	}
	sh.fail = errors.New("follower unreachable")
	if _, err := c.Insert(Document{IDField: "phantom"}); err == nil {
		t.Fatal("insert must fail when the shipper rejects")
	}
	if _, err := c.Get("phantom"); !errors.Is(err, ErrNotFound) {
		t.Error("failed write must not be applied in memory")
	}
	db.Close()

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Collection("uploads").Get("phantom"); err != nil {
		t.Errorf("locally durable record must survive reopen: %v", err)
	}
}

// TestDirSyncOnWALCreation: creating a collection's first WAL file must
// fsync the parent directory — otherwise a crash can lose the file's very
// existence — and an injected dir-sync failure must fail the write cleanly
// and recover in place once the disk heals.
func TestDirSyncOnWALCreation(t *testing.T) {
	ffs := NewFaultFS()
	db, err := Open(t.TempDir(), WithFileSystem(ffs), WithSyncPolicy(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	before := ffs.DirSyncs()
	c := db.Collection("fresh")
	if _, err := c.Insert(Document{IDField: "a"}); err != nil {
		t.Fatal(err)
	}
	if ffs.DirSyncs() <= before {
		t.Error("WAL creation did not sync the directory")
	}
	if db.DurabilityStats().DirSyncs == 0 {
		t.Error("DurabilityStats.DirSyncs not accounted")
	}

	ffs.FailDirSync(nil)
	if _, err := db.Collection("fresh2").Insert(Document{IDField: "b"}); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("insert into new collection with failing dir sync: err = %v, want ENOSPC", err)
	}
	if !ffs.Tripped() {
		t.Fatal("dir-sync fault never fired")
	}
	ffs.Reset()
	if _, err := db.Collection("fresh2").Insert(Document{IDField: "b"}); err != nil {
		t.Fatalf("insert after dir-sync recovery: %v", err)
	}
}

// TestDirSyncOnCompaction: the rename that swaps the compacted segment in
// must be followed by a directory sync, and a failure there must fail the
// compaction without corrupting the collection.
func TestDirSyncOnCompaction(t *testing.T) {
	ffs := NewFaultFS()
	db, err := Open(t.TempDir(), WithFileSystem(ffs), WithSyncPolicy(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c := db.Collection("c")
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("doc-%d", i)
		if _, err := c.Insert(Document{IDField: id, "i": i}); err != nil {
			t.Fatal(err)
		}
	}
	before := ffs.DirSyncs()
	ffs.FailDirSync(nil)
	if err := c.Compact(); err == nil {
		t.Fatal("compaction with failing dir sync must report the failure")
	}
	ffs.Reset()
	if err := c.Compact(); err != nil {
		t.Fatalf("compaction after recovery: %v", err)
	}
	if ffs.DirSyncs() <= before {
		t.Error("compaction rename did not sync the directory")
	}
	if c.Count() != 20 {
		t.Errorf("count after failed+retried compaction = %d, want 20", c.Count())
	}
}

// TestDirSyncFaultProperty: under randomized dir-sync outages interleaved
// with writes and compactions, every acknowledged document must survive a
// crash-reopen, and the store must keep serving once the fault clears.
func TestDirSyncFaultProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			ffs := NewFaultFS()
			db, err := Open(dir, WithFileSystem(ffs), WithSyncPolicy(SyncAlways))
			if err != nil {
				t.Fatal(err)
			}
			acked := map[string]bool{}
			for i := 0; i < 120; i++ {
				switch {
				case rng.Intn(10) == 0:
					ffs.FailDirSync(nil)
				case rng.Intn(10) == 0:
					ffs.Reset()
				}
				// Spread writes over a few collections so WAL creation —
				// the dir-sync-sensitive step — keeps recurring.
				c := db.Collection(fmt.Sprintf("c%d", rng.Intn(4)))
				if rng.Intn(20) == 0 {
					c.Compact() // may fail under the fault; must not corrupt
					continue
				}
				id := fmt.Sprintf("s%d-%d", seed, i)
				if _, err := c.Insert(Document{IDField: id, "i": i}); err == nil {
					acked[c.Name()+"/"+id] = true
				}
			}
			db.Close()

			db2, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer db2.Close()
			for key := range acked {
				parts := strings.SplitN(key, "/", 2)
				if _, err := db2.Collection(parts[0]).Get(parts[1]); err != nil {
					t.Errorf("acknowledged doc %s lost after crash: %v", key, err)
				}
			}
		})
	}
}

// TestRotationTornWriteAtBoundary covers the WAL segment-rotation edge:
// the collection compacts (the log is rewritten and atomically swapped —
// the segment boundary), then the very next appends tear at byte offsets
// straddling that boundary. Recovery must keep every acknowledged record,
// truncate the torn tail, and replay to exactly the pre-crash live state.
func TestRotationTornWriteAtBoundary(t *testing.T) {
	for _, tornAt := range []int64{0, 1, 7, 64, 200} {
		t.Run(fmt.Sprintf("torn-at-boundary+%d", tornAt), func(t *testing.T) {
			dir := t.TempDir()
			ffs := NewFaultFS()
			db, err := Open(dir, WithFileSystem(ffs), WithSyncPolicy(SyncAlways))
			if err != nil {
				t.Fatal(err)
			}
			c := db.Collection("uploads")
			var acked []string
			for i := 0; i < 30; i++ {
				id := fmt.Sprintf("pre-%d", i)
				if _, err := c.Insert(Document{IDField: id, "i": i}); err != nil {
					t.Fatal(err)
				}
				acked = append(acked, id)
			}
			// The rotation: the WAL is rewritten as a snapshot segment and
			// swapped in; the old append handle is retired.
			if err := c.Compact(); err != nil {
				t.Fatal(err)
			}
			// Tear the stream tornAt bytes past the fresh segment's end.
			ffs.FailAppendsAfter(tornAt, nil, true)
			for i := 0; i < 20; i++ {
				id := fmt.Sprintf("post-%d", i)
				if _, err := c.Insert(Document{IDField: id, "i": i, "pad": strings.Repeat("y", 40)}); err != nil {
					break // the crash
				}
				acked = append(acked, id)
			}
			if !ffs.Tripped() {
				t.Fatal("torn-write fault never fired; test is vacuous")
			}
			live := liveDocs(c)

			db2, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen after torn rotation boundary: %v", err)
			}
			defer db2.Close()
			c2 := db2.Collection("uploads")
			if c2.Count() != len(acked) {
				t.Errorf("recovered %d docs, want %d acknowledged", c2.Count(), len(acked))
			}
			for _, id := range acked {
				if _, err := c2.Get(id); err != nil {
					t.Errorf("acknowledged doc %s lost across rotation: %v", id, err)
				}
			}
			if replayed := liveDocs(c2); !reflect.DeepEqual(live, replayed) {
				t.Error("replayed state differs from live pre-crash state")
			}
		})
	}
}

// TestSnapshotWAL: the replication snapshot source must return the raw
// on-disk segment bytes (every line verifiable), nil for a collection with
// no segment yet, and an error on a memory store.
func TestSnapshotWAL(t *testing.T) {
	db, err := Open(t.TempDir(), WithSyncPolicy(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c := db.Collection("c")
	for i := 0; i < 5; i++ {
		if _, err := c.Insert(Document{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	data, err := db.SnapshotWAL("c")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 5 {
		t.Errorf("snapshot lines = %d, want 5", len(lines))
	}
	for _, line := range lines {
		if err := VerifyWALLine([]byte(line)); err != nil {
			t.Errorf("snapshot line %q unverifiable: %v", line, err)
		}
	}
	if data, err := db.SnapshotWAL("nonexistent"); err != nil || data != nil {
		t.Errorf("missing collection snapshot = (%v, %v), want (nil, nil)", data, err)
	}
	mem := OpenMemory()
	defer mem.Close()
	if _, err := mem.SnapshotWAL("c"); err == nil {
		t.Error("memory store must refuse to snapshot")
	}
}
