package store

import (
	"errors"
	"reflect"
	"strconv"
	"sync"
	"testing"
)

func TestEnsureIndexFindEq(t *testing.T) {
	db := OpenMemory()
	c := db.Collection("r")
	for i := 0; i < 100; i++ {
		if _, err := c.Insert(Document{"test_id": "t" + strconv.Itoa(i%5), "n": i}); err != nil {
			t.Fatal(err)
		}
	}
	// Index declared after the fact is built from existing docs.
	c.EnsureIndex("test_id")
	scanned := c.Find(func(d Document) bool { return d["test_id"] == "t3" })
	indexed := c.FindEq("test_id", "t3")
	if len(indexed) != 20 || !reflect.DeepEqual(scanned, indexed) {
		t.Fatalf("indexed FindEq = %d docs, scan = %d", len(indexed), len(scanned))
	}
	if got := c.CountEq("test_id", "t3"); got != 20 {
		t.Errorf("CountEq = %d, want 20", got)
	}
	// The indexed lookups above must not have scanned.
	stats := c.Stats()
	if stats.IndexHits < 2 {
		t.Errorf("index hits = %d, want >= 2", stats.IndexHits)
	}
	if stats.Indexes != 1 || stats.Docs != 100 {
		t.Errorf("stats = %+v", stats)
	}
	// Unindexed field still works (scan fallback).
	if got := len(c.FindEq("n", 7)); got != 1 {
		t.Errorf("unindexed FindEq = %d, want 1", got)
	}
	// Declaring twice is a no-op.
	c.EnsureIndex("test_id")
	if got := len(c.Indexes()); got != 1 {
		t.Errorf("indexes = %d, want 1", got)
	}
}

func TestIndexMaintainedOnMutations(t *testing.T) {
	db := OpenMemory()
	c := db.Collection("r")
	c.EnsureIndex("test_id")
	id, err := c.Insert(Document{"test_id": "a"})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.CountEq("test_id", "a"); got != 1 {
		t.Fatalf("after insert: CountEq(a) = %d", got)
	}
	// Update moves the doc between index buckets.
	if err := c.Update(id, func(d Document) Document { d["test_id"] = "b"; return d }); err != nil {
		t.Fatal(err)
	}
	if c.CountEq("test_id", "a") != 0 || c.CountEq("test_id", "b") != 1 {
		t.Fatalf("after update: a=%d b=%d", c.CountEq("test_id", "a"), c.CountEq("test_id", "b"))
	}
	// Upsert over the same id replaces the index entry.
	if _, err := c.Insert(Document{IDField: id, "test_id": "c"}); err != nil {
		t.Fatal(err)
	}
	if c.CountEq("test_id", "b") != 0 || c.CountEq("test_id", "c") != 1 {
		t.Fatalf("after upsert: b=%d c=%d", c.CountEq("test_id", "b"), c.CountEq("test_id", "c"))
	}
	// Delete removes it.
	if err := c.Delete(id); err != nil {
		t.Fatal(err)
	}
	if got := c.CountEq("test_id", "c"); got != 0 {
		t.Fatalf("after delete: CountEq(c) = %d", got)
	}
	if got := len(c.FindEq("test_id", "c")); got != 0 {
		t.Fatalf("after delete: FindEq(c) = %d", got)
	}
}

func TestIndexRebuiltOnWALReplay(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("r")
	for i := 0; i < 10; i++ {
		if _, err := c.Insert(Document{"test_id": "t" + strconv.Itoa(i%2)}); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := db2.Collection("r")
	c2.EnsureIndex("test_id")
	if got := c2.CountEq("test_id", "t1"); got != 5 {
		t.Errorf("replayed CountEq = %d, want 5", got)
	}
}

func TestInsertUnique(t *testing.T) {
	db := OpenMemory()
	c := db.Collection("r")
	if _, err := c.InsertUnique(Document{IDField: "x", "v": 1}); err != nil {
		t.Fatal(err)
	}
	_, err := c.InsertUnique(Document{IDField: "x", "v": 2})
	if !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate err = %v, want ErrDuplicateID", err)
	}
	// The original document is untouched.
	doc, err := c.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := doc.Int("v"); n != 1 {
		t.Errorf("v = %v, want 1", doc["v"])
	}
	// Concurrent duplicates: exactly one wins.
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.InsertUnique(Document{IDField: "race", "i": i})
		}(i)
	}
	wg.Wait()
	wins := 0
	for _, err := range errs {
		if err == nil {
			wins++
		} else if !errors.Is(err, ErrDuplicateID) {
			t.Errorf("unexpected error: %v", err)
		}
	}
	if wins != 1 {
		t.Errorf("winners = %d, want 1", wins)
	}
}

func TestDocumentInt(t *testing.T) {
	d := Document{
		"f":   float64(7),
		"i":   3,
		"i64": int64(9),
		"s":   "nope",
	}
	for key, want := range map[string]int{"f": 7, "i": 3, "i64": 9} {
		if n, ok := d.Int(key); !ok || n != want {
			t.Errorf("Int(%s) = %d,%v, want %d", key, n, ok, want)
		}
	}
	if _, ok := d.Int("s"); ok {
		t.Error("string should not parse as int")
	}
	if _, ok := d.Int("missing"); ok {
		t.Error("missing key should not parse as int")
	}
}

// TestLiveEqualsReplayed is the numeric-drift regression: a freshly written
// document (insert and update paths) must be byte-for-byte the document a
// WAL reload produces.
func TestLiveEqualsReplayed(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("tests")
	id, err := c.Insert(Document{"participants": 25, "nested": map[string]any{"n": int64(4)}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Update(id, func(d Document) Document { d["page_count"] = 3; return d }); err != nil {
		t.Fatal(err)
	}
	live, err := c.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := live.Int("participants"); !ok || n != 25 {
		t.Fatalf("live participants = %v", live["participants"])
	}
	// Both the live and mutated fields must already be float64 — the shape
	// the server's type asserts see after a WAL reload.
	if _, ok := live["participants"].(float64); !ok {
		t.Errorf("live participants is %T, want float64", live["participants"])
	}
	if _, ok := live["page_count"].(float64); !ok {
		t.Errorf("live page_count is %T, want float64", live["page_count"])
	}
	db.Close()

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := db2.Collection("tests").Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, replayed) {
		t.Errorf("live != replayed:\nlive     = %#v\nreplayed = %#v", live, replayed)
	}
}

func TestOnChange(t *testing.T) {
	db := OpenMemory()
	c := db.Collection("r")
	var mu sync.Mutex
	var events []string
	c.OnChange(func(op, id string) {
		mu.Lock()
		defer mu.Unlock()
		events = append(events, op+":"+id)
		// Callbacks run outside the collection lock: calling back in must
		// not deadlock.
		_ = c.Count()
	})
	id, _ := c.Insert(Document{IDField: "a"})
	_ = c.Update(id, func(d Document) Document { d["x"] = 1; return d })
	_ = c.Delete(id)
	mu.Lock()
	defer mu.Unlock()
	want := []string{"put:a", "put:a", "del:a"}
	if !reflect.DeepEqual(events, want) {
		t.Errorf("events = %v, want %v", events, want)
	}
}
