package store

import (
	"fmt"
	"io"
	"os"
)

// FileSystem is the narrow surface the WAL needs from the OS. The default
// implementation (OSFileSystem) passes straight through; tests substitute a
// fault-injecting implementation (FaultFS) to simulate disk-full, torn
// writes, and crashes mid-append without touching real hardware.
type FileSystem interface {
	// ReadFile returns the whole file ([]byte(nil), os.ErrNotExist wrapped
	// when absent is fine — callers check with os.IsNotExist / errors.Is).
	ReadFile(path string) ([]byte, error)
	// WriteFile replaces path with data durably: the contents are synced
	// to stable storage before WriteFile returns. Used for WAL rewrites
	// and compaction snapshots (always paired with Rename for atomicity).
	WriteFile(path string, data []byte) error
	// Rename atomically replaces newPath with oldPath.
	Rename(oldPath, newPath string) error
	// Truncate cuts path to size bytes (torn-tail recovery).
	Truncate(path string, size int64) error
	// OpenAppend opens path for appending, creating it if needed.
	OpenAppend(path string) (WALFile, error)
	// SyncDir fsyncs a directory. Syncing a file's data does not persist
	// its *name* — the directory entry lives in the parent and needs its
	// own fsync — so WAL creation, rotation, and snapshot renames are not
	// crash-durable until the containing directory has been synced.
	SyncDir(dir string) error
}

// WALFile is an append-only log file handle.
type WALFile interface {
	io.Writer
	// Sync flushes written data to stable storage.
	Sync() error
	Close() error
}

// OSFileSystem is the real-disk FileSystem.
type OSFileSystem struct{}

func (OSFileSystem) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OSFileSystem) WriteFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (OSFileSystem) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (OSFileSystem) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (OSFileSystem) OpenAppend(path string) (WALFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening WAL %s: %w", path, err)
	}
	return f, nil
}

func (OSFileSystem) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening dir %s for sync: %w", dir, err)
	}
	syncErr := d.Sync()
	if err := d.Close(); err != nil && syncErr == nil {
		syncErr = err
	}
	if syncErr != nil {
		return fmt.Errorf("store: fsync dir %s: %w", dir, syncErr)
	}
	return nil
}
