package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// liveDocs snapshots a collection's documents for replay-equality checks.
func liveDocs(c *Collection) []Document { return c.Find(nil) }

// walLineCount counts non-blank lines in a collection's log.
func walLineCount(t *testing.T, dir, name string) int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, name+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ln := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(ln)) > 0 {
			n++
		}
	}
	return n
}

// TestFramedReplayEqualsLive is the core durability property: after any mix
// of inserts, updates, and deletes, reopening the store yields exactly the
// live in-memory state.
func TestFramedReplayEqualsLive(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("sessions")
	var ids []string
	for i := 0; i < 20; i++ {
		id, err := c.Insert(Document{"i": i, "nested": map[string]any{"n": i * 2}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i, id := range ids {
		if i%3 == 0 {
			if err := c.Update(id, func(d Document) Document { d["updated"] = true; return d }); err != nil {
				t.Fatal(err)
			}
		}
		if i%5 == 0 {
			if err := c.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := liveDocs(c)
	db.Close()

	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	got := liveDocs(db2.Collection("sessions"))
	if !reflect.DeepEqual(want, got) {
		t.Errorf("replayed state differs from live state:\nlive: %v\nreplayed: %v", want, got)
	}
}

// TestLegacyUnframedReplay: logs written before CRC framing replay
// transparently, and new appends upgrade to framed records.
func TestLegacyUnframedReplay(t *testing.T) {
	dir := t.TempDir()
	legacy := `{"op":"put","id":"doc-1","doc":{"_id":"doc-1","v":1}}
{"op":"put","id":"doc-2","doc":{"_id":"doc-2","v":2}}
{"op":"del","id":"doc-2"}
`
	if err := os.WriteFile(filepath.Join(dir, "c.jsonl"), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open legacy: %v", err)
	}
	c := db.Collection("c")
	if c.Count() != 1 {
		t.Fatalf("count = %d, want 1", c.Count())
	}
	if _, err := c.Insert(Document{IDField: "doc-3", "v": 3}); err != nil {
		t.Fatal(err)
	}
	db.Close()

	data, err := os.ReadFile(filepath.Join(dir, "c.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), frameMagic+" ") {
		t.Error("new append should be framed")
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen mixed: %v", err)
	}
	defer db2.Close()
	if got := db2.Collection("c").Count(); got != 2 {
		t.Errorf("count after mixed replay = %d, want 2", got)
	}
}

// TestTornFinalRecordTruncated: a crash mid-append leaves a partial framed
// line; open truncates it and recovers everything acknowledged before it.
func TestTornFinalRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("c")
	for i := 0; i < 3; i++ {
		if _, err := c.Insert(Document{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	// Simulate the torn write: append half of a framed record.
	path := filepath.Join(dir, "c.jsonl")
	full := frameRecord([]byte(`{"op":"put","id":"doc-4","doc":{"_id":"doc-4"}}`))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:len(full)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	if got := db2.Collection("c").Count(); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
	if s := db2.DurabilityStats(); s.RecoveredTails != 1 || s.QuarantinedRecords != 0 {
		t.Errorf("stats = %+v, want 1 recovered tail", s)
	}
	db2.Close()

	// The repair is durable: a second open finds nothing to fix.
	db3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if s := db3.DurabilityStats(); s.RecoveredTails != 0 {
		t.Errorf("second open recovered again: %+v", s)
	}
	if got := db3.Collection("c").Count(); got != 3 {
		t.Errorf("count after second open = %d, want 3", got)
	}
}

func TestEmptyWALFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "empty.jsonl"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	if got := db.Collection("empty").Count(); got != 0 {
		t.Errorf("count = %d, want 0", got)
	}
}

// TestUnknownOpQuarantined: a structurally valid record with an unknown op
// is moved to the .corrupt sidecar; the store opens and keeps everything
// else.
func TestUnknownOpQuarantined(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	buf.Write(frameRecord([]byte(`{"op":"put","id":"doc-1","doc":{"_id":"doc-1","v":1}}`)))
	buf.Write(frameRecord([]byte(`{"op":"explode","id":"doc-9"}`)))
	buf.Write(frameRecord([]byte(`{"op":"put","id":"doc-2","doc":{"_id":"doc-2","v":2}}`)))
	path := filepath.Join(dir, "c.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got := db.Collection("c").Count(); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
	if s := db.DurabilityStats(); s.QuarantinedRecords != 1 {
		t.Errorf("stats = %+v, want 1 quarantined", s)
	}
	db.Close()

	side, err := os.ReadFile(path + corruptSuffix)
	if err != nil {
		t.Fatalf("sidecar: %v", err)
	}
	if !strings.Contains(string(side), "explode") {
		t.Errorf("sidecar missing quarantined record: %q", side)
	}
	// The WAL was rewritten clean: reopening quarantines nothing new.
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if s := db2.DurabilityStats(); s.QuarantinedRecords != 0 {
		t.Errorf("reopen quarantined again: %+v", s)
	}
}

// TestMidFileCorruptionQuarantined: garbage between valid records (bit rot,
// a foreign writer) is quarantined rather than making the store unopenable.
func TestMidFileCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	buf.Write(frameRecord([]byte(`{"op":"put","id":"doc-1","doc":{"_id":"doc-1"}}`)))
	buf.WriteString("### scribbled by a rogue process ###\n")
	buf.Write(frameRecord([]byte(`{"op":"put","id":"doc-2","doc":{"_id":"doc-2"}}`)))
	if err := os.WriteFile(filepath.Join(dir, "c.jsonl"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	if got := db.Collection("c").Count(); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
	if s := db.DurabilityStats(); s.QuarantinedRecords != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestCorruptedChecksumQuarantined: a framed record whose payload was
// altered after the fact fails its CRC and is quarantined mid-file.
func TestCorruptedChecksumQuarantined(t *testing.T) {
	dir := t.TempDir()
	bad := frameRecord([]byte(`{"op":"put","id":"doc-1","doc":{"_id":"doc-1","v":1}}`))
	bad = bytes.Replace(bad, []byte(`"v":1`), []byte(`"v":7`), 1) // flip bits, keep old CRC
	var buf bytes.Buffer
	buf.Write(bad)
	buf.Write(frameRecord([]byte(`{"op":"put","id":"doc-2","doc":{"_id":"doc-2"}}`)))
	if err := os.WriteFile(filepath.Join(dir, "c.jsonl"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	c := db.Collection("c")
	if c.Count() != 1 {
		t.Errorf("count = %d, want 1 (tampered record dropped)", c.Count())
	}
	if _, err := c.Get("doc-1"); !errors.Is(err, ErrNotFound) {
		t.Error("tampered doc-1 must not replay")
	}
}

// TestCrashRecoveryFaultInjection is the acceptance property: whatever byte
// the disk dies at, every acknowledged insert survives a reopen, and the
// store never fails to open.
func TestCrashRecoveryFaultInjection(t *testing.T) {
	for _, tc := range []struct {
		name  string
		limit int64
		torn  bool
	}{
		{"enospc-at-0", 0, false},
		{"enospc-at-100", 100, false},
		{"torn-at-137", 137, true},
		{"torn-at-777", 777, true},
		{"torn-at-2000", 2000, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := NewFaultFS()
			ffs.FailAppendsAfter(tc.limit, nil, tc.torn)
			db, err := Open(dir, WithFileSystem(ffs), WithSyncPolicy(SyncAlways))
			if err != nil {
				t.Fatal(err)
			}
			c := db.Collection("uploads")
			var acked []string
			for i := 0; i < 200; i++ {
				id, err := c.Insert(Document{"i": i, "pad": strings.Repeat("x", 15)})
				if err != nil {
					break // the crash
				}
				acked = append(acked, id)
			}
			if !ffs.Tripped() {
				t.Fatal("fault never fired; test is vacuous")
			}
			live := liveDocs(c)

			// "Crash": reopen the directory with a healthy filesystem.
			db2, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer db2.Close()
			c2 := db2.Collection("uploads")
			if c2.Count() != len(acked) {
				t.Errorf("recovered %d docs, want %d acknowledged", c2.Count(), len(acked))
			}
			for i, id := range acked {
				doc, err := c2.Get(id)
				if err != nil {
					t.Fatalf("acknowledged doc %s lost: %v", id, err)
				}
				if got, _ := doc.Int("i"); got != i {
					t.Errorf("doc %s: i = %d, want %d", id, got, i)
				}
			}
			if replayed := liveDocs(c2); !reflect.DeepEqual(live, replayed) {
				t.Error("replayed state differs from live pre-crash state")
			}
		})
	}
}

// TestENOSPCRecoversInPlace: a full disk fails the write cleanly; once
// space frees up the same handles keep working and nothing acknowledged is
// lost.
func TestENOSPCRecoversInPlace(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	db, err := Open(dir, WithFileSystem(ffs), WithSyncPolicy(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("c")
	if _, err := c.Insert(Document{IDField: "keep", "v": 1}); err != nil {
		t.Fatal(err)
	}
	ffs.FailAppendsAfter(0, nil, false)
	if _, err := c.Insert(Document{IDField: "lost", "v": 2}); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	if _, err := c.Get("lost"); !errors.Is(err, ErrNotFound) {
		t.Error("failed insert must not be applied in memory")
	}
	ffs.Reset()
	if _, err := c.Insert(Document{IDField: "after", "v": 3}); err != nil {
		t.Fatalf("insert after disk recovery: %v", err)
	}
	db.Close()

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	c2 := db2.Collection("c")
	if c2.Count() != 2 {
		t.Errorf("count = %d, want 2", c2.Count())
	}
	for _, id := range []string{"keep", "after"} {
		if _, err := c2.Get(id); err != nil {
			t.Errorf("doc %s: %v", id, err)
		}
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("c")
	for i := 0; i < 30; i++ {
		if _, err := c.Insert(Document{IDField: fmt.Sprintf("d%02d", i), "v": 0}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("d%02d", i)
		for j := 0; j < 3; j++ {
			if err := c.Update(id, func(d Document) Document { d["v"] = j + 1; return d }); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := walLineCount(t, dir, "c"); got != 120 {
		t.Fatalf("pre-compact lines = %d, want 120", got)
	}
	want := liveDocs(c)
	if err := c.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := walLineCount(t, dir, "c"); got != 30 {
		t.Errorf("post-compact lines = %d, want 30", got)
	}
	if s := db.DurabilityStats(); s.Compactions != 1 {
		t.Errorf("compactions = %d, want 1", s.Compactions)
	}
	// The snapshot log keeps accepting appends and replays identically.
	if _, err := c.Insert(Document{IDField: "extra"}); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got := liveDocs(db2.Collection("c"))
	want = append(want, Document{IDField: "extra"})
	if !reflect.DeepEqual(want, got) {
		t.Error("replay after compaction differs from live state")
	}
}

func TestCompactMemoryNoop(t *testing.T) {
	db := OpenMemory()
	c := db.Collection("c")
	if _, err := c.Insert(Document{"v": 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Compact(); err != nil {
		t.Errorf("memory compact: %v", err)
	}
}

func TestAutoCompact(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, WithAutoCompact(20))
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("c")
	id, err := c.Insert(Document{"n": 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		if err := c.Update(id, func(d Document) Document { d["n"] = i; return d }); err != nil {
			t.Fatal(err)
		}
	}
	if s := db.DurabilityStats(); s.Compactions == 0 {
		t.Error("auto-compaction never triggered")
	}
	if got := walLineCount(t, dir, "c"); got >= 101 {
		t.Errorf("WAL grew without bound: %d lines", got)
	}
	db.Close()
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	doc, err := db2.Collection("c").Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := doc.Int("n"); n != 100 {
		t.Errorf("n = %d, want 100", n)
	}
}

func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		db, err := Open(t.TempDir(), WithSyncPolicy(SyncAlways))
		if err != nil {
			t.Fatal(err)
		}
		c := db.Collection("c")
		for i := 0; i < 5; i++ {
			if _, err := c.Insert(Document{"i": i}); err != nil {
				t.Fatal(err)
			}
		}
		if s := db.DurabilityStats(); s.Fsyncs < 5 {
			t.Errorf("fsyncs = %d, want >= 5", s.Fsyncs)
		}
		db.Close()
	})
	t.Run("never", func(t *testing.T) {
		db, err := Open(t.TempDir(), WithSyncPolicy(SyncNever))
		if err != nil {
			t.Fatal(err)
		}
		c := db.Collection("c")
		for i := 0; i < 5; i++ {
			if _, err := c.Insert(Document{"i": i}); err != nil {
				t.Fatal(err)
			}
		}
		db.Close()
		if s := db.DurabilityStats(); s.Fsyncs != 0 {
			t.Errorf("fsyncs = %d, want 0 under SyncNever", s.Fsyncs)
		}
	})
	t.Run("interval-group-commit", func(t *testing.T) {
		db, err := Open(t.TempDir(), WithSyncInterval(time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		c := db.Collection("c")
		for i := 0; i < 5; i++ {
			if _, err := c.Insert(Document{"i": i}); err != nil {
				t.Fatal(err)
			}
		}
		if s := db.DurabilityStats(); s.Fsyncs != 0 {
			t.Errorf("fsyncs before interval = %d, want 0", s.Fsyncs)
		}
		db.Close() // close flushes regardless of the window
		if s := db.DurabilityStats(); s.Fsyncs != 1 {
			t.Errorf("fsyncs after close = %d, want 1", s.Fsyncs)
		}
	})
}

// TestErrClosed: every mutation and Get fail with ErrClosed after Close;
// bulk reads return empty. Close is idempotent.
func TestErrClosed(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("c")
	id, err := c.Insert(Document{"v": 1})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	db.Close() // idempotent

	if _, err := c.Insert(Document{"v": 2}); !errors.Is(err, ErrClosed) {
		t.Errorf("Insert err = %v, want ErrClosed", err)
	}
	if _, err := c.InsertUnique(Document{IDField: "x"}); !errors.Is(err, ErrClosed) {
		t.Errorf("InsertUnique err = %v, want ErrClosed", err)
	}
	if err := c.Update(id, func(d Document) Document { return d }); !errors.Is(err, ErrClosed) {
		t.Errorf("Update err = %v, want ErrClosed", err)
	}
	if err := c.Delete(id); !errors.Is(err, ErrClosed) {
		t.Errorf("Delete err = %v, want ErrClosed", err)
	}
	if _, err := c.Get(id); !errors.Is(err, ErrClosed) {
		t.Errorf("Get err = %v, want ErrClosed", err)
	}
	if err := c.Compact(); !errors.Is(err, ErrClosed) {
		t.Errorf("Compact err = %v, want ErrClosed", err)
	}
	if got := c.Find(nil); got != nil {
		t.Errorf("Find on closed db = %v, want nil", got)
	}
	if got := c.FindEq("v", 1); got != nil {
		t.Errorf("FindEq on closed db = %v, want nil", got)
	}
	if got := c.CountEq("v", 1); got != 0 {
		t.Errorf("CountEq on closed db = %d, want 0", got)
	}

	// Nothing leaked past Close onto disk; the acknowledged doc is there.
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Collection("c").Count(); got != 1 {
		t.Errorf("count after reopen = %d, want 1", got)
	}
}

// TestScanAccounting: every logical read counts exactly one scan or one
// index hit — never both, never double.
func TestScanAccounting(t *testing.T) {
	db := OpenMemory()
	c := db.Collection("c")
	c.EnsureIndex("a")
	for i := 0; i < 4; i++ {
		if _, err := c.Insert(Document{"a": "x", "b": i}); err != nil {
			t.Fatal(err)
		}
	}
	base := c.Stats()
	if base.Scans != 0 || base.IndexHits != 0 {
		t.Fatalf("base stats = %+v", base)
	}
	step := func(name string, wantScans, wantHits int64, op func()) {
		t.Helper()
		before := c.Stats()
		op()
		after := c.Stats()
		if after.Scans-before.Scans != wantScans || after.IndexHits-before.IndexHits != wantHits {
			t.Errorf("%s: scans +%d hits +%d, want +%d/+%d",
				name, after.Scans-before.Scans, after.IndexHits-before.IndexHits, wantScans, wantHits)
		}
	}
	step("Find", 1, 0, func() { c.Find(nil) })
	step("FindEq indexed", 0, 1, func() { c.FindEq("a", "x") })
	step("FindEq unindexed", 1, 0, func() { c.FindEq("b", 2) })
	step("FindEq non-comparable", 1, 0, func() { c.FindEq("a", []any{"x"}) })
	step("CountEq indexed", 0, 1, func() { c.CountEq("a", "x") })
	step("CountEq unindexed", 1, 0, func() { c.CountEq("b", 2) })
}
