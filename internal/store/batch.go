package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
)

// InsertUniqueBatch stores many new documents under one lock hold and one
// WAL group commit: every accepted record is framed into a single buffered
// append, and the sync policy runs once for the whole batch instead of once
// per document (under SyncAlways a batch of N costs one fsync, not N — the
// group-commit win the batched upload path is built on).
//
// Semantics per document match InsertUnique: a document whose _id already
// exists — in the collection or earlier in the same batch — fails with
// ErrDuplicateID and changes nothing; ids are generated for documents that
// lack one. Results are reported per document, aligned with docs: ids[i] is
// the stored id ("" when rejected) and errs[i] the rejection (nil when
// stored). A WAL write failure rejects every not-yet-duplicate document
// with the same error, like a failed single insert would.
//
// Ownership: unlike Insert, the batch path takes ownership of the given
// documents — they are normalized in place and stored without a defensive
// deep copy, so the caller must not read or mutate them (or anything they
// reference) after the call. This is what keeps the upload hot path off the
// clone-by-JSON-round-trip floor; callers assembling documents from decoded
// wire payloads own them by construction.
func (c *Collection) InsertUniqueBatch(docs []Document) (ids []string, errs []error) {
	ids = make([]string, len(docs))
	errs = make([]error, len(docs))
	if len(docs) == 0 {
		return ids, errs
	}
	if c.db.isClosed() {
		for i := range errs {
			errs[i] = ErrClosed
		}
		return ids, errs
	}

	type accepted struct {
		pos int
		id  string
		doc Document
	}
	batch := make([]accepted, 0, len(docs))
	pending := make(map[string]bool, len(docs))

	c.mu.Lock()
	var frames bytes.Buffer
	for i, doc := range docs {
		if doc == nil {
			errs[i] = fmt.Errorf("store: nil document in batch (index %d)", i)
			continue
		}
		normalizeDoc(doc)
		id := doc.ID()
		if id == "" {
			c.seq++
			id = "doc-" + strconv.FormatInt(c.seq, 10)
			doc[IDField] = id
		}
		if _, exists := c.docs[id]; exists || pending[id] {
			errs[i] = fmt.Errorf("%w: %s/%s", ErrDuplicateID, c.name, id)
			continue
		}
		if c.db.dir != "" {
			payload, err := json.Marshal(walRecord{Op: "put", ID: id, Doc: doc})
			if err != nil {
				errs[i] = fmt.Errorf("store: encoding WAL record: %w", err)
				continue
			}
			frames.Write(frameRecord(payload))
		}
		pending[id] = true
		batch = append(batch, accepted{pos: i, id: id, doc: doc})
	}
	if len(batch) == 0 {
		c.mu.Unlock()
		return ids, errs
	}
	if err := c.appendWALBatch(frames.Bytes(), len(batch)); err != nil {
		for _, a := range batch {
			errs[a.pos] = err
		}
		c.mu.Unlock()
		return ids, errs
	}
	for _, a := range batch {
		c.docs[a.id] = a.doc
		c.addToIndexes(a.id, a.doc)
		ids[a.pos] = a.id
	}
	c.maybeCompactLocked()
	fns := c.onChange
	c.mu.Unlock()
	for _, a := range batch {
		c.notify(fns, OpPut, a.id)
	}
	return ids, errs
}

// appendWALBatch writes n pre-framed records in one Write and applies the
// sync policy once for the whole group. Called with c.mu held. frames is
// empty (and the call a no-op beyond accounting) on a memory-only database.
func (c *Collection) appendWALBatch(frames []byte, n int) error {
	return c.appendFrames(frames, n)
}
