package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"strconv"
	"time"
)

// WAL framing. Every record written since the durability rework is one
// line of the form
//
//	#w1 <crc32-ieee hex8> <json>
//
// where the checksum covers the JSON payload. Lines that start with '{'
// are legacy unframed records from older stores and are replayed without
// verification. Framing is what lets recovery tell a torn final record
// (crash mid-append — truncate it) from mid-file corruption (bit rot or a
// foreign writer — quarantine it to a .corrupt sidecar) without ever
// refusing to open the store.
const frameMagic = "#w1"

// corruptSuffix names the quarantine sidecar next to a collection's WAL.
const corruptSuffix = ".corrupt"

// frameRecord renders one framed WAL line (with trailing newline).
func frameRecord(payload []byte) []byte {
	var b bytes.Buffer
	b.Grow(len(frameMagic) + 1 + 8 + 1 + len(payload) + 1)
	b.WriteString(frameMagic)
	b.WriteByte(' ')
	fmt.Fprintf(&b, "%08x", crc32.ChecksumIEEE(payload))
	b.WriteByte(' ')
	b.Write(payload)
	b.WriteByte('\n')
	return b.Bytes()
}

// lineClass is the verdict on one WAL line.
type lineClass int

const (
	lineOK   lineClass = iota
	lineTorn           // structural damage: bad frame, bad checksum, bad JSON
	lineBad            // well-formed but semantically invalid (unknown op, ...)
)

// parseWALLine decodes one non-blank WAL line, framed or legacy.
func parseWALLine(line []byte) (walRecord, lineClass) {
	var rec walRecord
	payload := line
	if bytes.HasPrefix(line, []byte(frameMagic+" ")) {
		rest := line[len(frameMagic)+1:]
		if len(rest) < 10 || rest[8] != ' ' {
			return rec, lineTorn
		}
		want, err := strconv.ParseUint(string(rest[:8]), 16, 32)
		if err != nil {
			return rec, lineTorn
		}
		payload = rest[9:]
		if crc32.ChecksumIEEE(payload) != uint32(want) {
			return rec, lineTorn
		}
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, lineTorn
	}
	switch rec.Op {
	case "put":
		if rec.ID == "" || rec.Doc == nil {
			return rec, lineBad
		}
	case "del":
		if rec.ID == "" {
			return rec, lineBad
		}
	default:
		return rec, lineBad
	}
	return rec, lineOK
}

// walReplay is the outcome of scanning one collection's log.
type walReplay struct {
	records     []walRecord
	goodLines   [][]byte // verbatim good lines, for rewrites
	quarantined [][]byte // semantically bad or mid-file-corrupt lines
	truncateAt  int64    // byte offset of a torn final record; -1 = none
}

// scanWAL classifies every line of a WAL file. Structural damage on the
// final record is a torn tail (the write the crash interrupted); structural
// damage earlier, and any semantically invalid record anywhere, is
// quarantined. Acknowledged records are never dropped by either path: a
// torn tail is by definition unacknowledged, and quarantining only removes
// records that could never have been applied.
func scanWAL(data []byte) walReplay {
	rep := walReplay{truncateAt: -1}
	type rawLine struct {
		start int64
		text  []byte
	}
	var lines []rawLine
	var off int64
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		var line []byte
		var next int64
		if nl < 0 {
			line, next = data, off+int64(len(data))
			data = nil
		} else {
			line, next = data[:nl], off+int64(nl)+1
			data = data[nl+1:]
		}
		if len(bytes.TrimSpace(line)) > 0 {
			lines = append(lines, rawLine{start: off, text: line})
		}
		off = next
	}
	for i, ln := range lines {
		rec, class := parseWALLine(bytes.TrimSpace(ln.text))
		switch class {
		case lineOK:
			rep.records = append(rep.records, rec)
			rep.goodLines = append(rep.goodLines, ln.text)
		case lineTorn:
			if i == len(lines)-1 {
				// The interrupted final append: cut it off.
				rep.truncateAt = ln.start
			} else {
				rep.quarantined = append(rep.quarantined, ln.text)
			}
		case lineBad:
			rep.quarantined = append(rep.quarantined, ln.text)
		}
	}
	return rep
}

// recoverWAL applies a replay's repairs to the on-disk file: truncate a
// torn tail in place, or — when records were quarantined — append them to
// the .corrupt sidecar and atomically rewrite the WAL from the good lines.
func recoverWAL(fs FileSystem, path string, rep walReplay) error {
	if len(rep.quarantined) > 0 {
		side, err := fs.OpenAppend(path + corruptSuffix)
		if err != nil {
			return fmt.Errorf("store: opening quarantine %s: %w", path+corruptSuffix, err)
		}
		for _, ln := range rep.quarantined {
			if _, err := side.Write(append(ln, '\n')); err != nil {
				side.Close()
				return fmt.Errorf("store: quarantining to %s: %w", path+corruptSuffix, err)
			}
		}
		if err := side.Close(); err != nil {
			return err
		}
		var buf bytes.Buffer
		for _, ln := range rep.goodLines {
			buf.Write(ln)
			buf.WriteByte('\n')
		}
		tmp := path + ".rewrite.tmp"
		if err := fs.WriteFile(tmp, buf.Bytes()); err != nil {
			return fmt.Errorf("store: rewriting %s: %w", path, err)
		}
		if err := fs.Rename(tmp, path); err != nil {
			return fmt.Errorf("store: swapping rewritten %s: %w", path, err)
		}
		return nil
	}
	if rep.truncateAt >= 0 {
		if err := fs.Truncate(path, rep.truncateAt); err != nil {
			return fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
		}
	}
	return nil
}

// SyncPolicy selects when WAL appends reach stable storage.
type SyncPolicy int

const (
	// SyncInterval group-commits: appends are written immediately but
	// fsynced at most once per interval (plus once on Close). The default.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append: an acknowledged write is on
	// stable storage before the caller sees nil.
	SyncAlways
	// SyncNever leaves flushing entirely to the OS.
	SyncNever
)

// walFile is a collection's persistent append handle. All methods are
// called with the owning collection's lock held.
type walFile struct {
	file     WALFile
	db       *DB
	lastSync time.Time
	closed   bool
}

// appendGroup writes n pre-framed records in one Write and runs the sync
// policy once for the whole group — the group-commit primitive behind every
// append (singles are a group of one) and Collection.InsertUniqueBatch.
// Under SyncAlways a batch still costs a single fsync; under SyncInterval
// the group counts as one append against the interval clock.
func (w *walFile) appendGroup(frames []byte, n int) error {
	if w.closed {
		return ErrClosed
	}
	if _, err := w.file.Write(frames); err != nil {
		return fmt.Errorf("store: appending WAL batch: %w", err)
	}
	w.db.walAppends.Add(int64(n))
	switch w.db.opts.policy {
	case SyncAlways:
		return w.sync()
	case SyncNever:
		return nil
	default:
		if time.Since(w.lastSync) >= w.db.opts.interval {
			return w.sync()
		}
	}
	return nil
}

func (w *walFile) sync() error {
	start := time.Now()
	err := w.file.Sync()
	w.db.fsyncs.Add(1)
	w.db.fsyncNanos.Add(time.Since(start).Nanoseconds())
	w.lastSync = time.Now()
	if err != nil {
		return fmt.Errorf("store: fsync WAL: %w", err)
	}
	return nil
}

// close flushes (except under SyncNever) and closes the handle.
func (w *walFile) close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	var syncErr error
	if w.db.opts.policy != SyncNever {
		syncErr = w.sync()
	}
	if err := w.file.Close(); err != nil {
		return err
	}
	return syncErr
}

// Compact rewrites the collection's WAL as a snapshot of the live
// documents: one framed put per document, written to a temp file, synced,
// and atomically renamed over the log. Update-heavy collections otherwise
// grow without bound; a days-long campaign compacts periodically (or
// automatically via WithAutoCompact).
func (c *Collection) Compact() error {
	if c.db.isClosed() {
		return ErrClosed
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.compactLocked()
}

// compactLocked is Compact with c.mu already held.
func (c *Collection) compactLocked() error {
	if c.db.dir == "" {
		return nil
	}
	ids := make([]string, 0, len(c.docs))
	for id := range c.docs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var buf bytes.Buffer
	for _, id := range ids {
		payload, err := json.Marshal(walRecord{Op: "put", ID: id, Doc: c.docs[id]})
		if err != nil {
			return fmt.Errorf("store: encoding snapshot record %s: %w", id, err)
		}
		buf.Write(frameRecord(payload))
	}
	path := c.db.collectionPath(c.name)
	tmp := path + ".compact.tmp"
	fs := c.db.opts.fs
	if err := fs.WriteFile(tmp, buf.Bytes()); err != nil {
		return fmt.Errorf("store: writing snapshot %s: %w", tmp, err)
	}
	// Close the old handle first: after the rename it would point at the
	// replaced inode and appends would vanish.
	if c.wal != nil {
		if err := c.wal.close(); err != nil {
			return err
		}
		c.wal = nil
	}
	if err := fs.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: swapping snapshot %s: %w", path, err)
	}
	if err := c.db.syncDir(); err != nil {
		return err
	}
	c.appends = 0
	c.db.compactions.Add(1)
	return nil
}

// maybeCompactLocked auto-compacts after the configured number of appends,
// provided compaction would actually shrink the log. Called with c.mu held,
// after the mutation has been applied to the in-memory state (so the
// snapshot includes it). Best-effort: a failed auto-compaction leaves the
// intact WAL in place and retries after the next append.
func (c *Collection) maybeCompactLocked() {
	t := c.db.opts.autoCompact
	if t <= 0 || c.appends < t || c.appends <= len(c.docs) {
		return
	}
	_ = c.compactLocked()
}

// DurabilityStats is a snapshot of the store's crash-safety counters,
// exported as gauges on the serving path's /metrics.
type DurabilityStats struct {
	// RecoveredTails counts torn final records truncated during Open.
	RecoveredTails int64
	// QuarantinedRecords counts corrupt or invalid records moved to
	// .corrupt sidecars during Open.
	QuarantinedRecords int64
	// Compactions counts snapshot rewrites (manual and automatic).
	Compactions int64
	// WALAppends counts records appended to collection logs.
	WALAppends int64
	// Fsyncs counts WAL fsync calls; FsyncNanos is their total duration.
	Fsyncs     int64
	FsyncNanos int64
	// DirSyncs counts directory fsyncs (WAL creation, rotation, snapshot
	// and recovery renames).
	DirSyncs int64
}

// DurabilityStats returns the database's durability counters.
func (db *DB) DurabilityStats() DurabilityStats {
	return DurabilityStats{
		RecoveredTails:     db.recoveredTails.Load(),
		QuarantinedRecords: db.quarantined.Load(),
		Compactions:        db.compactions.Load(),
		WALAppends:         db.walAppends.Load(),
		Fsyncs:             db.fsyncs.Load(),
		FsyncNanos:         db.fsyncNanos.Load(),
		DirSyncs:           db.dirSyncs.Load(),
	}
}

// VerifyWALLine checks that line is exactly one structurally and
// semantically valid framed WAL record. Replication followers run every
// shipped frame through this before appending it to their own log: bytes a
// primary never wrote (or that chaos mangled in flight) must not reach a
// follower's disk.
func VerifyWALLine(line []byte) error {
	trimmed := bytes.TrimSpace(line)
	if len(trimmed) == 0 {
		return fmt.Errorf("store: empty WAL line")
	}
	if bytes.IndexByte(trimmed, '\n') >= 0 {
		return fmt.Errorf("store: WAL line contains newline")
	}
	if !bytes.HasPrefix(trimmed, []byte(frameMagic+" ")) {
		return fmt.Errorf("store: WAL line missing %s frame", frameMagic)
	}
	switch _, class := parseWALLine(trimmed); class {
	case lineOK:
		return nil
	case lineTorn:
		return fmt.Errorf("store: WAL line fails frame checksum or decode")
	default:
		return fmt.Errorf("store: WAL line is semantically invalid")
	}
}

// SnapshotWAL returns the raw on-disk WAL bytes of a collection (nil when
// the collection has no log yet). It reads the file without taking any
// collection lock, so a writer may be appending concurrently: the result
// can end in a torn final line, and may include records newer than any
// sequence number the caller observed before the read. Both are safe for
// replication catch-up — a torn tail is skipped by scanWAL, and newer
// records are redelivered by the tail stream and applied idempotently.
func (db *DB) SnapshotWAL(collection string) ([]byte, error) {
	if db.dir == "" {
		return nil, errors.New("store: memory database has no WAL to snapshot")
	}
	data, err := db.opts.fs.ReadFile(db.collectionPath(collection))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: snapshotting WAL %s: %w", collection, err)
	}
	return data, nil
}
