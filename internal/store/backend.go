package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Backend kinds. Memory, dir, and replicated stores are peers behind one
// constructor (OpenBackend); Open and OpenMemory remain as the common-case
// shorthands.
const (
	BackendMemory     = "memory"
	BackendDir        = "dir"
	BackendReplicated = "replicated"
)

// Shipper receives locally durable WAL bytes for replication. Ship is
// called with the owning collection's lock held, immediately after frames
// have been appended to the local WAL (and fsynced per the sync policy):
// frames is one or more complete framed lines exactly as written to disk,
// records their count. Returning a non-nil error fails the write that
// produced the frames — the record may remain in the local WAL (a phantom
// the idempotent replay tolerates) but the caller is never acknowledged.
//
// Because Ship runs under the collection lock it must not call back into
// the collection; it may block (a synchronous follower ack) but every
// blocked Ship stalls that collection's writers, so implementations bound
// their waits.
type Shipper interface {
	Ship(collection string, frames []byte, records int) error
}

// Backend names where a database lives and how its WAL leaves the machine.
type Backend struct {
	kind    string
	dir     string
	shipper Shipper
}

// Memory is a purely in-memory backend: no WAL, nothing survives the
// process.
func Memory() Backend { return Backend{kind: BackendMemory} }

// Dir is the single-node persistent backend: every collection's WAL lives
// under path and is replayed (and repaired) on open.
func Dir(path string) Backend { return Backend{kind: BackendDir, dir: path} }

// Replicated is the dir backend plus log shipping: locally durable WAL
// frames are handed to s for delivery to a follower before the write is
// acknowledged (whether the ack waits for the follower is the shipper's
// policy, not the store's).
func Replicated(path string, s Shipper) Backend {
	return Backend{kind: BackendReplicated, dir: path, shipper: s}
}

// Kind returns the backend kind (BackendMemory, BackendDir,
// BackendReplicated).
func (b Backend) Kind() string { return b.kind }

// Dir returns the storage directory ("" for memory).
func (b Backend) Dir() string { return b.dir }

// Shipper returns the replication hook (nil unless replicated).
func (b Backend) Shipper() Shipper { return b.shipper }

// OpenBackend opens a database on the given backend. Persistent backends
// replay every collection WAL under the directory, repairing crash damage
// instead of refusing to start (see Open).
func OpenBackend(b Backend, opts ...Option) (*DB, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	switch b.kind {
	case BackendMemory, "":
		return &DB{opts: o, collections: make(map[string]*Collection)}, nil
	case BackendDir, BackendReplicated:
		if b.dir == "" {
			return nil, fmt.Errorf("store: %s backend needs a directory", b.kind)
		}
	default:
		return nil, fmt.Errorf("store: unknown backend kind %q", b.kind)
	}
	if b.kind == BackendReplicated && b.shipper == nil {
		return nil, errors.New("store: replicated backend needs a shipper")
	}
	if err := os.MkdirAll(b.dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", b.dir, err)
	}
	db := &DB{dir: b.dir, opts: o, shipper: b.shipper, collections: make(map[string]*Collection)}
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", b.dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".jsonl") {
			continue
		}
		collName := strings.TrimSuffix(name, ".jsonl")
		coll, err := db.loadCollection(collName)
		if err != nil {
			return nil, err
		}
		db.collections[collName] = coll
	}
	return db, nil
}

// WALPath returns the on-disk WAL file for a collection inside a store
// directory — the one layout fact replication followers need before the
// store is opened as a DB.
func WALPath(dir, collection string) string {
	return filepath.Join(dir, collection+".jsonl")
}

// ValidCollectionName reports whether name is safe to use as a collection
// (and therefore as a WAL file stem). Replication followers receive names
// over the wire and must refuse anything that could escape the store
// directory.
func ValidCollectionName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_':
		default:
			return false
		}
	}
	return true
}
