package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"kaleidoscope/internal/webgen"
)

func TestInsertAndGet(t *testing.T) {
	db := OpenMemory()
	c := db.Collection("tests")
	id, err := c.Insert(Document{"test_id": "t1", "participants": 100})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if id == "" {
		t.Fatal("empty generated id")
	}
	doc, err := c.Get(id)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if doc["test_id"] != "t1" {
		t.Errorf("doc = %v", doc)
	}
	if doc.ID() != id {
		t.Errorf("ID() = %q, want %q", doc.ID(), id)
	}
}

func TestGetNotFound(t *testing.T) {
	db := OpenMemory()
	if _, err := db.Collection("x").Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestInsertWithExplicitID(t *testing.T) {
	db := OpenMemory()
	c := db.Collection("c")
	id, err := c.Insert(Document{IDField: "custom", "v": 1})
	if err != nil {
		t.Fatal(err)
	}
	if id != "custom" {
		t.Errorf("id = %q", id)
	}
	// Upsert semantics.
	if _, err := c.Insert(Document{IDField: "custom", "v": 2}); err != nil {
		t.Fatal(err)
	}
	doc, err := c.Get("custom")
	if err != nil {
		t.Fatal(err)
	}
	if doc["v"] != float64(2) {
		t.Errorf("v = %v (%T), want 2", doc["v"], doc["v"])
	}
	if c.Count() != 1 {
		t.Errorf("count = %d, want 1", c.Count())
	}
}

func TestDocumentIsolation(t *testing.T) {
	db := OpenMemory()
	c := db.Collection("c")
	orig := Document{"list": []any{"a"}}
	id, err := c.Insert(orig)
	if err != nil {
		t.Fatal(err)
	}
	orig["mutated"] = true // must not leak into the store
	doc, err := c.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["mutated"]; ok {
		t.Error("insert should deep-copy")
	}
	doc["also"] = true // must not leak back
	doc2, err := c.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := doc2["also"]; ok {
		t.Error("get should return a copy")
	}
}

func TestFindAndFindEq(t *testing.T) {
	db := OpenMemory()
	c := db.Collection("responses")
	for i := 0; i < 5; i++ {
		if _, err := c.Insert(Document{"worker": fmt.Sprintf("w%d", i%2), "score": i}); err != nil {
			t.Fatal(err)
		}
	}
	all := c.Find(nil)
	if len(all) != 5 {
		t.Fatalf("Find(nil) = %d", len(all))
	}
	// Sorted by id.
	for i := 1; i < len(all); i++ {
		if all[i].ID() < all[i-1].ID() {
			t.Fatal("results not sorted")
		}
	}
	w0 := c.FindEq("worker", "w0")
	if len(w0) != 3 {
		t.Errorf("FindEq(worker, w0) = %d, want 3", len(w0))
	}
	// Numeric normalization: stored int comes back float64, query by int.
	byScore := c.FindEq("score", 2)
	if len(byScore) != 1 {
		t.Errorf("FindEq(score, 2) = %d, want 1", len(byScore))
	}
	high := c.Find(func(d Document) bool { return d["score"].(float64) >= 3 })
	if len(high) != 2 {
		t.Errorf("filtered = %d, want 2", len(high))
	}
}

func TestUpdate(t *testing.T) {
	db := OpenMemory()
	c := db.Collection("c")
	id, err := c.Insert(Document{"status": "open"})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Update(id, func(d Document) Document {
		d["status"] = "done"
		return d
	})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	doc, err := c.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if doc["status"] != "done" {
		t.Errorf("status = %v", doc["status"])
	}
	// Nil return aborts.
	if err := c.Update(id, func(d Document) Document { return nil }); err != nil {
		t.Fatal(err)
	}
	doc, _ = c.Get(id)
	if doc["status"] != "done" {
		t.Error("nil-returning update should not change the doc")
	}
	if err := c.Update("missing", func(d Document) Document { return d }); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestDelete(t *testing.T) {
	db := OpenMemory()
	c := db.Collection("c")
	id, err := c.Insert(Document{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(id); !errors.Is(err, ErrNotFound) {
		t.Error("deleted doc should be gone")
	}
	if err := c.Delete(id); err != nil {
		t.Error("double delete should be a no-op")
	}
}

func TestCollectionNames(t *testing.T) {
	db := OpenMemory()
	db.Collection("b")
	db.Collection("a")
	names := db.CollectionNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	c := db.Collection("tests")
	id1, err := c.Insert(Document{"name": "first"})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := c.Insert(Document{"name": "second"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Update(id1, func(d Document) Document { d["name"] = "first-updated"; return d }); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(id2); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Reopen and verify state.
	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	c2 := db2.Collection("tests")
	if c2.Count() != 1 {
		t.Fatalf("count after replay = %d, want 1", c2.Count())
	}
	doc, err := c2.Get(id1)
	if err != nil {
		t.Fatal(err)
	}
	if doc["name"] != "first-updated" {
		t.Errorf("name = %v", doc["name"])
	}
	// Sequence continues: new ids don't collide.
	id3, err := c2.Insert(Document{"name": "third"})
	if err != nil {
		t.Fatal(err)
	}
	if id3 == id1 || id3 == id2 {
		t.Errorf("id collision after replay: %s", id3)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("empty dir should fail")
	}
}

func TestConcurrentInserts(t *testing.T) {
	db := OpenMemory()
	c := db.Collection("c")
	var wg sync.WaitGroup
	const n = 50
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Insert(Document{"i": i}); err != nil {
				t.Errorf("Insert: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if c.Count() != n {
		t.Errorf("count = %d, want %d", c.Count(), n)
	}
	// All ids distinct (guaranteed by Count, but verify Find too).
	if len(c.Find(nil)) != n {
		t.Error("Find should see all docs")
	}
}

func TestBlobStoreMemory(t *testing.T) {
	b := NewBlobStore()
	if err := b.Put("t1/page/index.html", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := b.Get("t1/page/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Errorf("data = %q", data)
	}
	if _, err := b.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	keys, err := b.List("t1/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "t1/page/index.html" {
		t.Errorf("keys = %v", keys)
	}
}

func TestBlobStoreKeyValidation(t *testing.T) {
	b := NewBlobStore()
	for _, key := range []string{"", "..", "../escape", "a/../../b"} {
		if err := b.Put(key, []byte("x")); !errors.Is(err, ErrInvalidKey) {
			t.Errorf("Put(%q) err = %v, want ErrInvalidKey", key, err)
		}
	}
	// Leading slash is tolerated (normalized).
	if err := b.Put("/ok/file", []byte("x")); err != nil {
		t.Errorf("Put(/ok/file) = %v", err)
	}
	if _, err := b.Get("ok/file"); err != nil {
		t.Errorf("normalized get: %v", err)
	}
}

func TestBlobStoreDisk(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenBlobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("test/a/b.txt", []byte("disk")); err != nil {
		t.Fatal(err)
	}
	data, err := b.Get("test/a/b.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "disk" {
		t.Errorf("data = %q", data)
	}
	// A fresh handle over the same dir sees the data.
	b2, err := OpenBlobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Get("test/a/b.txt"); err != nil {
		t.Errorf("fresh handle: %v", err)
	}
	keys, err := b2.List("test/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 {
		t.Errorf("keys = %v", keys)
	}
	if _, err := OpenBlobStore(""); err == nil {
		t.Error("empty dir should fail")
	}
}

func TestPutGetSite(t *testing.T) {
	for name, blob := range map[string]*BlobStore{
		"memory": NewBlobStore(),
	} {
		t.Run(name, func(t *testing.T) {
			site := webgen.WikiArticle(webgen.WikiConfig{Seed: 2})
			if err := blob.PutSite("test-1", "wiki-12pt", site); err != nil {
				t.Fatalf("PutSite: %v", err)
			}
			got, err := blob.GetSite("test-1", "wiki-12pt")
			if err != nil {
				t.Fatalf("GetSite: %v", err)
			}
			if got.MainFile != site.MainFile {
				t.Errorf("main file = %q", got.MainFile)
			}
			if len(got.Files) != len(site.Files) {
				t.Errorf("files = %d, want %d", len(got.Files), len(site.Files))
			}
			if string(got.HTML()) != string(site.HTML()) {
				t.Error("HTML mismatch")
			}
		})
	}
}

func TestPutSiteDisk(t *testing.T) {
	blob, err := OpenBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	site := webgen.GroupPage(webgen.GroupConfig{Seed: 4})
	if err := blob.PutSite("t", "group-a", site); err != nil {
		t.Fatal(err)
	}
	got, err := blob.GetSite("t", "group-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Files) != len(site.Files) {
		t.Errorf("files = %d, want %d", len(got.Files), len(site.Files))
	}
}

func TestGetSiteMissing(t *testing.T) {
	b := NewBlobStore()
	if _, err := b.GetSite("no", "page"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestPutSiteInvalid(t *testing.T) {
	b := NewBlobStore()
	if err := b.PutSite("t", "p", webgen.NewSite("index.html")); err == nil {
		t.Error("invalid site should fail")
	}
}

func TestLoadCorruptWAL(t *testing.T) {
	dir := t.TempDir()
	// A valid record followed by trailing garbage: the torn-tail case. The
	// store opens, keeps the acknowledged record, and truncates the tail.
	content := `{"op":"put","id":"doc-1","doc":{"_id":"doc-1","v":1}}
this is not json
`
	if err := os.WriteFile(filepath.Join(dir, "tests.jsonl"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("corrupt tail must not prevent open: %v", err)
	}
	defer db.Close()
	if got := db.Collection("tests").Count(); got != 1 {
		t.Errorf("count = %d, want 1", got)
	}
	if s := db.DurabilityStats(); s.RecoveredTails != 1 {
		t.Errorf("stats = %+v, want 1 recovered tail", s)
	}
}

func TestLoadUnknownWALOp(t *testing.T) {
	dir := t.TempDir()
	content := `{"op":"explode","id":"doc-1"}
`
	if err := os.WriteFile(filepath.Join(dir, "tests.jsonl"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("unknown op must be quarantined, not fatal: %v", err)
	}
	defer db.Close()
	if got := db.Collection("tests").Count(); got != 0 {
		t.Errorf("count = %d, want 0", got)
	}
	if s := db.DurabilityStats(); s.QuarantinedRecords != 1 {
		t.Errorf("stats = %+v, want 1 quarantined record", s)
	}
	if _, err := os.Stat(filepath.Join(dir, "tests.jsonl"+corruptSuffix)); err != nil {
		t.Errorf("missing quarantine sidecar: %v", err)
	}
}

func TestLoadWALSkipsBlankLinesAndNonJSONLFiles(t *testing.T) {
	dir := t.TempDir()
	content := `{"op":"put","id":"doc-1","doc":{"_id":"doc-1"}}

{"op":"del","id":"doc-1"}
`
	if err := os.WriteFile(filepath.Join(dir, "c.jsonl"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("ignore me"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if db.Collection("c").Count() != 0 {
		t.Error("put+del should leave empty collection")
	}
	names := db.CollectionNames()
	if len(names) != 1 || names[0] != "c" {
		t.Errorf("collections = %v", names)
	}
}

func TestConcurrentMixedOperations(t *testing.T) {
	db := OpenMemory()
	c := db.Collection("mixed")
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := c.Insert(Document{"i": i})
			if err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			if err := c.Update(id, func(d Document) Document { d["u"] = true; return d }); err != nil {
				t.Errorf("update: %v", err)
			}
			_ = c.Find(func(d Document) bool { return true })
			if i%2 == 0 {
				if err := c.Delete(id); err != nil {
					t.Errorf("delete: %v", err)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Count() != 10 {
		t.Errorf("count = %d, want 10", c.Count())
	}
}
