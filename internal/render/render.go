// Package render implements Kaleidoscope's simplified layout model: it
// assigns each DOM element a box in a viewport, estimates the painted area
// each element contributes, and classifies content as above or below the
// fold. The paper's replay engine works by toggling DOM visibility over
// time; this package supplies the geometry that turns those visibility
// events into visual-completeness numbers (Speed Index, ATF time, TTFP).
//
// The layout algorithm is a deterministic block-stacking model: block
// elements stack vertically, inline content contributes line-wrapped text
// height from the computed font size, and images use their width/height
// attributes. It is intentionally not a browser — it is a consistent,
// reproducible stand-in that preserves the property the experiments need:
// nav bars land above the fold, references land below it, and bigger fonts
// consume more vertical space.
package render

import (
	"math"
	"strconv"
	"strings"

	"kaleidoscope/internal/cssx"
	"kaleidoscope/internal/htmlx"
)

// Viewport is the visible window geometry in CSS pixels.
type Viewport struct {
	Width  float64
	Height float64
}

// DefaultViewport matches the most common desktop size of the paper's era.
func DefaultViewport() Viewport { return Viewport{Width: 1366, Height: 768} }

// Box is an element's layout rectangle.
type Box struct {
	X, Y, W, H float64
}

// Bottom returns the box's lower edge.
func (b Box) Bottom() float64 { return b.Y + b.H }

// NodeGeom is the per-element output of layout.
type NodeGeom struct {
	// Box is the element's full rectangle (including descendants).
	Box Box
	// OwnArea is the painted area contributed exclusively by this element:
	// its direct text content and direct images, excluding block
	// descendants (which carry their own areas). Summing OwnArea over all
	// elements never double-counts.
	OwnArea float64
	// OwnAreaATF is the portion of OwnArea that falls above the fold.
	OwnAreaATF float64
}

// Layout is the result of laying out a document.
type Layout struct {
	Viewport Viewport
	// Geom maps each element to its geometry. Only element nodes appear.
	Geom map[*htmlx.Node]NodeGeom
	// TotalHeight is the document's full height.
	TotalHeight float64
	// TotalOwnArea and TotalOwnAreaATF are sums over all elements.
	TotalOwnArea    float64
	TotalOwnAreaATF float64
}

// layout constants; crude but stable.
const (
	defaultFontPx   = 16.0
	blockPaddingPx  = 8.0
	avgCharWidthEm  = 0.5 // average glyph width as a fraction of font size
	defaultImgH     = 150.0
	defaultLineMult = 1.4
)

// blockTags render as vertically-stacked blocks; everything else is inline.
var blockTags = map[string]bool{
	"address": true, "article": true, "aside": true, "blockquote": true,
	"body": true, "div": true, "dl": true, "dd": true, "dt": true,
	"fieldset": true, "figcaption": true, "figure": true, "footer": true,
	"form": true, "h1": true, "h2": true, "h3": true, "h4": true,
	"h5": true, "h6": true, "header": true, "hr": true, "html": true,
	"li": true, "main": true, "nav": true, "ol": true, "p": true,
	"pre": true, "section": true, "table": true, "tbody": true,
	"td": true, "th": true, "thead": true, "tr": true, "ul": true,
}

// skippedTags contribute no layout at all.
var skippedTags = map[string]bool{
	"script": true, "style": true, "head": true, "meta": true,
	"link": true, "title": true, "template": true,
}

// IsBlock reports whether tag lays out as a block.
func IsBlock(tag string) bool { return blockTags[tag] }

// LayoutDocument lays out doc under the stylesheet and viewport.
// A nil stylesheet means defaults everywhere.
func LayoutDocument(doc *htmlx.Node, sheet *cssx.Stylesheet, vp Viewport) *Layout {
	if sheet == nil {
		sheet = cssx.ParseStylesheet("")
	}
	l := &Layout{
		Viewport: vp,
		Geom:     make(map[*htmlx.Node]NodeGeom),
	}
	body := doc.Body()
	root := body
	if root == nil {
		root = doc
	}
	h := l.layoutBlock(root, sheet, 0, 0, vp.Width)
	l.TotalHeight = h
	for _, g := range l.Geom {
		l.TotalOwnArea += g.OwnArea
		l.TotalOwnAreaATF += g.OwnAreaATF
	}
	return l
}

// layoutBlock lays out a block element at (x, y) with the given width and
// returns its height.
func (l *Layout) layoutBlock(n *htmlx.Node, sheet *cssx.Stylesheet, x, y, width float64) float64 {
	style := sheet.ComputedStyle(n)
	if style["display"] == "none" {
		if n.Type == htmlx.ElementNode {
			l.Geom[n] = NodeGeom{Box: Box{X: x, Y: y, W: 0, H: 0}}
		}
		return 0
	}
	fontPx := fontSizeOf(style)
	lineH := lineHeightOf(style, fontPx)

	// Direct inline content: text runs and inline elements (with their
	// text), plus direct images.
	inlineChars, imgAreas, imgHeights := l.collectInline(n, sheet, x, y, width)
	textH := textHeight(inlineChars, fontPx, lineH, width)

	cursor := y + textH
	for _, imgH := range imgHeights {
		cursor += imgH
	}

	if style["display"] == "flex" {
		// Flex row: block children sit side by side. Children with an
		// explicit CSS width keep it; the rest split the remaining width
		// equally. Height is the tallest column.
		cursor += l.layoutFlexRow(n, sheet, x, cursor, width)
	} else {
		// Block children stack below the inline content.
		for _, c := range n.Children {
			if c.Type != htmlx.ElementNode || skippedTags[c.Tag] {
				continue
			}
			if IsBlock(c.Tag) {
				h := l.layoutBlock(c, sheet, x, cursor, width)
				cursor += h
			}
		}
	}

	height := cursor - y
	if height > 0 {
		height += blockPaddingPx
	}

	// Text area is glyph-cell area (chars x char width x line height), not
	// full line-box width — a one-word paragraph paints little.
	ownTextArea := float64(inlineChars) * fontPx * avgCharWidthEm * lineH
	ownArea := ownTextArea + imgAreas
	geom := NodeGeom{
		Box:     Box{X: x, Y: y, W: width, H: height},
		OwnArea: ownArea,
	}
	// The own area sits at the top of the box (text first, then images).
	ownH := textH
	for _, imgH := range imgHeights {
		ownH += imgH
	}
	geom.OwnAreaATF = clipAreaToFold(ownArea, y, ownH, l.Viewport.Height)
	if n.Type == htmlx.ElementNode {
		l.Geom[n] = geom
	}
	return height
}

// layoutFlexRow lays out n's block children side by side and returns the
// row height (the tallest child).
func (l *Layout) layoutFlexRow(n *htmlx.Node, sheet *cssx.Stylesheet, x, y, width float64) float64 {
	var blocks []*htmlx.Node
	for _, c := range n.Children {
		if c.Type == htmlx.ElementNode && !skippedTags[c.Tag] && IsBlock(c.Tag) {
			blocks = append(blocks, c)
		}
	}
	if len(blocks) == 0 {
		return 0
	}
	widths := make([]float64, len(blocks))
	remaining := width
	flexible := 0
	for i, c := range blocks {
		cs := sheet.ComputedStyle(c)
		if w, ok := cssx.ParsePixels(cs["width"], width); ok && w > 0 && w <= width {
			widths[i] = w
			remaining -= w
		} else {
			widths[i] = -1
			flexible++
		}
	}
	if remaining < 0 {
		remaining = 0
	}
	for i := range widths {
		if widths[i] < 0 {
			widths[i] = remaining / float64(flexible)
		}
	}
	var maxH float64
	cx := x
	for i, c := range blocks {
		h := l.layoutBlock(c, sheet, cx, y, widths[i])
		if h > maxH {
			maxH = h
		}
		cx += widths[i]
	}
	return maxH
}

// collectInline gathers the inline content directly owned by block n:
// the total text characters (from text nodes and inline descendants,
// stopping at block boundaries) and direct image areas/heights. Inline
// elements are also given zero-height geometry entries anchored at the
// parent's origin so selector-based schedules can target them.
func (l *Layout) collectInline(n *htmlx.Node, sheet *cssx.Stylesheet, x, y, width float64) (chars int, imgArea float64, imgHeights []float64) {
	for _, c := range n.Children {
		switch c.Type {
		case htmlx.TextNode:
			chars += len(strings.TrimSpace(collapseSpace(c.Data)))
		case htmlx.ElementNode:
			if skippedTags[c.Tag] || IsBlock(c.Tag) {
				continue
			}
			if c.Tag == "img" {
				w := attrFloat(c, "width", width/4)
				h := attrFloat(c, "height", defaultImgH)
				if w > width {
					w = width
				}
				imgArea += w * h
				imgHeights = append(imgHeights, h)
				l.Geom[c] = NodeGeom{
					Box:        Box{X: x, Y: y, W: w, H: h},
					OwnArea:    w * h,
					OwnAreaATF: clipAreaToFold(w*h, y, h, l.Viewport.Height),
				}
				continue
			}
			// Inline element: its text counts toward the parent block; it
			// gets a zero-area geometry entry for selector targeting.
			subChars, subImgArea, subImgHeights := l.collectInline(c, sheet, x, y, width)
			chars += subChars
			imgArea += subImgArea
			imgHeights = append(imgHeights, subImgHeights...)
			if _, exists := l.Geom[c]; !exists {
				l.Geom[c] = NodeGeom{Box: Box{X: x, Y: y, W: 0, H: 0}}
			}
		}
	}
	return chars, imgArea, imgHeights
}

// textHeight estimates the height of `chars` characters of wrapped text.
func textHeight(chars int, fontPx, lineH, width float64) float64 {
	if chars == 0 || width <= 0 {
		return 0
	}
	charW := fontPx * avgCharWidthEm
	charsPerLine := math.Max(1, width/charW)
	lines := math.Ceil(float64(chars) / charsPerLine)
	return lines * lineH
}

// clipAreaToFold returns the fraction of area whose vertical extent
// [y, y+h] overlaps [0, foldY], assuming the area is uniformly distributed
// over the extent.
func clipAreaToFold(area, y, h, foldY float64) float64 {
	if area == 0 || h <= 0 {
		if y < foldY {
			return area
		}
		return 0
	}
	top := math.Max(y, 0)
	bottom := math.Min(y+h, foldY)
	if bottom <= top {
		return 0
	}
	return area * (bottom - top) / h
}

// fontSizeOf resolves the computed font-size in pixels.
func fontSizeOf(style map[string]string) float64 {
	if v, ok := style["font-size"]; ok {
		if px, ok := cssx.ParsePixels(v, defaultFontPx); ok && px > 0 {
			return px
		}
	}
	return defaultFontPx
}

// lineHeightOf resolves the line height in pixels.
func lineHeightOf(style map[string]string, fontPx float64) float64 {
	if v, ok := style["line-height"]; ok {
		v = strings.TrimSpace(v)
		// Bare multipliers ("1.4") are relative to font size.
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f * fontPx
		}
		if px, ok := cssx.ParsePixels(v, fontPx); ok && px > 0 {
			return px
		}
	}
	return defaultLineMult * fontPx
}

func attrFloat(n *htmlx.Node, key string, def float64) float64 {
	v, ok := n.Attr(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
	if err != nil || f <= 0 {
		return def
	}
	return f
}

func collapseSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// AboveTheFold reports whether any part of the element's box is visible in
// the initial viewport.
func (l *Layout) AboveTheFold(n *htmlx.Node) bool {
	g, ok := l.Geom[n]
	if !ok {
		return false
	}
	return g.Box.Y < l.Viewport.Height && g.Box.Bottom() > 0
}

// FoldCoverage returns the fraction of total painted area that sits above
// the fold — a sanity metric for generated pages.
func (l *Layout) FoldCoverage() float64 {
	if l.TotalOwnArea == 0 {
		return 0
	}
	return l.TotalOwnAreaATF / l.TotalOwnArea
}
