package render

import (
	"testing"

	"kaleidoscope/internal/cssx"
	"kaleidoscope/internal/htmlx"
	"kaleidoscope/internal/webgen"
)

func BenchmarkLayoutDocument(b *testing.B) {
	site := webgen.WikiArticle(webgen.WikiConfig{Seed: 1})
	css, _ := site.Get("css/style.css")
	doc := htmlx.Parse(string(site.HTML()))
	sheet := cssx.ParseStylesheet(string(css))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LayoutDocument(doc, sheet, DefaultViewport())
	}
}
