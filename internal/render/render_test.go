package render

import (
	"strings"
	"testing"

	"kaleidoscope/internal/cssx"
	"kaleidoscope/internal/htmlx"
	"kaleidoscope/internal/webgen"
)

func layoutHTML(t *testing.T, html, css string) (*Layout, *htmlx.Node) {
	t.Helper()
	doc := htmlx.Parse(html)
	sheet := cssx.ParseStylesheet(css)
	return LayoutDocument(doc, sheet, DefaultViewport()), doc
}

func TestBlocksStackVertically(t *testing.T) {
	l, doc := layoutHTML(t, `<body><p id="a">`+strings.Repeat("x ", 100)+`</p><p id="b">y</p></body>`, "")
	a := l.Geom[doc.ByID("a")]
	b := l.Geom[doc.ByID("b")]
	if a.Box.Y >= b.Box.Y {
		t.Errorf("a.Y=%v should be above b.Y=%v", a.Box.Y, b.Box.Y)
	}
	if b.Box.Y < a.Box.Bottom() {
		t.Errorf("b starts at %v before a ends at %v", b.Box.Y, a.Box.Bottom())
	}
	if l.TotalHeight <= 0 {
		t.Error("document should have height")
	}
}

func TestLargerFontConsumesMoreSpace(t *testing.T) {
	text := strings.Repeat("word ", 400)
	small, docS := layoutHTML(t, `<body><p id="t">`+text+`</p></body>`, "p { font-size: 10pt; }")
	large, docL := layoutHTML(t, `<body><p id="t">`+text+`</p></body>`, "p { font-size: 22pt; }")
	hs := small.Geom[docS.ByID("t")].Box.H
	hl := large.Geom[docL.ByID("t")].Box.H
	if hl <= hs {
		t.Errorf("22pt height %v should exceed 10pt height %v", hl, hs)
	}
	// Area grows too.
	if large.TotalOwnArea <= small.TotalOwnArea {
		t.Errorf("22pt area %v should exceed 10pt area %v", large.TotalOwnArea, small.TotalOwnArea)
	}
}

func TestImageGeometry(t *testing.T) {
	l, doc := layoutHTML(t, `<body><img id="i" src="x.png" width="320" height="200"></body>`, "")
	g := l.Geom[doc.ByID("i")]
	if g.Box.W != 320 || g.Box.H != 200 {
		t.Errorf("img box = %+v", g.Box)
	}
	if g.OwnArea != 320*200 {
		t.Errorf("img own area = %v, want 64000", g.OwnArea)
	}
}

func TestImageDefaultsAndClamping(t *testing.T) {
	l, doc := layoutHTML(t, `<body><img id="i" src="x.png" width="99999"></body>`, "")
	g := l.Geom[doc.ByID("i")]
	if g.Box.W != DefaultViewport().Width {
		t.Errorf("oversized img should clamp to viewport, got %v", g.Box.W)
	}
	if g.Box.H != defaultImgH {
		t.Errorf("missing height should default, got %v", g.Box.H)
	}
	l, doc = layoutHTML(t, `<body><img id="j" src="y.png" width="bogus" height="-5"></body>`, "")
	g = l.Geom[doc.ByID("j")]
	if g.Box.H != defaultImgH {
		t.Errorf("invalid attrs should default, got %+v", g.Box)
	}
}

func TestDisplayNone(t *testing.T) {
	l, doc := layoutHTML(t, `<body><div id="gone">`+strings.Repeat("x", 500)+`</div><p id="after">y</p></body>`, "#gone { display: none; }")
	g := l.Geom[doc.ByID("gone")]
	if g.Box.H != 0 || g.OwnArea != 0 {
		t.Errorf("display:none should collapse, got %+v", g)
	}
	after := l.Geom[doc.ByID("after")]
	if after.Box.Y != 0 {
		t.Errorf("content after display:none should not be pushed down, Y=%v", after.Box.Y)
	}
}

func TestInlineElementsShareParentBlock(t *testing.T) {
	l, doc := layoutHTML(t, `<body><p id="p">before <a id="link" href="#">anchor text</a> after</p></body>`, "")
	link := doc.ByID("link")
	g, ok := l.Geom[link]
	if !ok {
		t.Fatal("inline element should have a geometry entry")
	}
	if g.OwnArea != 0 {
		t.Errorf("inline element own area = %v, want 0 (text counts in parent)", g.OwnArea)
	}
	p := l.Geom[doc.ByID("p")]
	if p.OwnArea == 0 {
		t.Error("parent block should own the inline text area")
	}
	if g.Box.Y != p.Box.Y {
		t.Errorf("inline anchored at parent origin: %v vs %v", g.Box.Y, p.Box.Y)
	}
}

func TestScriptsAndHeadSkipped(t *testing.T) {
	l, _ := layoutHTML(t, `<html><head><title>long title text</title></head><body><script>var x = "`+strings.Repeat("s", 1000)+`";</script><p>p</p></body></html>`, "")
	// Only body content should contribute area; the script must not.
	if l.TotalOwnArea > 2000 {
		t.Errorf("script/head text leaked into layout: area=%v", l.TotalOwnArea)
	}
}

func TestAboveTheFold(t *testing.T) {
	// Build a page taller than the viewport: many paragraphs.
	var b strings.Builder
	b.WriteString("<body>")
	for i := 0; i < 40; i++ {
		b.WriteString(`<p id="p` + string(rune('a'+i%26)) + strings.Repeat("q", i/26+1) + `">` + strings.Repeat("text ", 60) + `</p>`)
	}
	b.WriteString("</body>")
	l, doc := layoutHTML(t, b.String(), "")
	if l.TotalHeight <= l.Viewport.Height {
		t.Fatalf("page should overflow viewport: %v <= %v", l.TotalHeight, l.Viewport.Height)
	}
	ps := doc.ByTag("p")
	if !l.AboveTheFold(ps[0]) {
		t.Error("first paragraph should be above the fold")
	}
	if l.AboveTheFold(ps[len(ps)-1]) {
		t.Error("last paragraph should be below the fold")
	}
	cov := l.FoldCoverage()
	if cov <= 0 || cov >= 1 {
		t.Errorf("fold coverage = %v, want in (0,1)", cov)
	}
}

func TestOwnAreaPartialFold(t *testing.T) {
	// A single huge block straddling the fold: its ATF area must be a
	// proper fraction.
	l, doc := layoutHTML(t, `<body><p id="big">`+strings.Repeat("w ", 3000)+`</p></body>`, "p { font-size: 20px; }")
	g := l.Geom[doc.ByID("big")]
	if g.Box.H <= l.Viewport.Height {
		t.Fatalf("block should straddle the fold, H=%v", g.Box.H)
	}
	if g.OwnAreaATF <= 0 || g.OwnAreaATF >= g.OwnArea {
		t.Errorf("ATF area = %v of %v, want proper fraction", g.OwnAreaATF, g.OwnArea)
	}
}

// TestWikiLayoutShape checks the experiment-relevant property: the nav bar
// is above the fold, the references are below it on the default article.
func TestWikiLayoutShape(t *testing.T) {
	site := webgen.WikiArticle(webgen.WikiConfig{Seed: 42})
	doc := htmlx.Parse(string(site.HTML()))
	css, _ := site.Get("css/style.css")
	sheet := cssx.ParseStylesheet(string(css))
	l := LayoutDocument(doc, sheet, DefaultViewport())

	nav := doc.ByID("navbar")
	refs := doc.ByID("references")
	if !l.AboveTheFold(nav) {
		t.Error("navbar should be above the fold")
	}
	if l.AboveTheFold(refs) {
		t.Errorf("references should be below the fold (Y=%v, fold=%v)", l.Geom[refs].Box.Y, l.Viewport.Height)
	}
	if nav.Parent == nil || l.Geom[nav].Box.Y >= l.Geom[doc.ByID("content")].Box.Y {
		t.Error("navbar should be laid out before content")
	}
	if l.TotalHeight < 2*l.Viewport.Height {
		t.Errorf("article should be several screens tall, got %v", l.TotalHeight)
	}
}

func TestLineHeightParsing(t *testing.T) {
	tests := []struct {
		css   string
		wantH float64
	}{
		{"p { font-size: 20px; line-height: 2; }", 40},
		{"p { font-size: 20px; line-height: 30px; }", 30},
		{"p { font-size: 20px; }", 28}, // default 1.4
	}
	for _, tt := range tests {
		l, doc := layoutHTML(t, `<body><p id="t">short</p></body>`, tt.css)
		g := l.Geom[doc.ByID("t")]
		// One line of text + block padding.
		want := tt.wantH + blockPaddingPx
		if g.Box.H != want {
			t.Errorf("css %q: height = %v, want %v", tt.css, g.Box.H, want)
		}
	}
}

func TestEmptyDocument(t *testing.T) {
	l, _ := layoutHTML(t, ``, "")
	if l.TotalHeight != 0 || l.TotalOwnArea != 0 {
		t.Errorf("empty doc layout = %+v", l)
	}
	if l.FoldCoverage() != 0 {
		t.Error("empty doc fold coverage should be 0")
	}
}

func TestNoBodyFallsBackToDocument(t *testing.T) {
	doc := htmlx.Parse(`<div id="d">text content here</div>`)
	l := LayoutDocument(doc, nil, DefaultViewport())
	if _, ok := l.Geom[doc.ByID("d")]; !ok {
		t.Error("layout without <body> should still process elements")
	}
}

func TestAboveTheFoldUnknownNode(t *testing.T) {
	l, _ := layoutHTML(t, `<body><p>x</p></body>`, "")
	if l.AboveTheFold(htmlx.NewElement("div")) {
		t.Error("unknown node should not be above the fold")
	}
}

func TestClipAreaToFold(t *testing.T) {
	tests := []struct {
		name             string
		area, y, h, fold float64
		want             float64
	}{
		{"fully above", 100, 0, 50, 768, 100},
		{"fully below", 100, 800, 50, 768, 0},
		{"half", 100, 718, 100, 768, 50},
		{"zero height above", 100, 10, 0, 768, 100},
		{"zero height below", 100, 800, 0, 768, 0},
	}
	for _, tt := range tests {
		if got := clipAreaToFold(tt.area, tt.y, tt.h, tt.fold); got != tt.want {
			t.Errorf("%s: clip = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestOwnAreaSumMatchesTotal(t *testing.T) {
	site := webgen.WikiArticle(webgen.WikiConfig{Seed: 7})
	doc := htmlx.Parse(string(site.HTML()))
	l := LayoutDocument(doc, nil, DefaultViewport())
	var sum float64
	for _, g := range l.Geom {
		sum += g.OwnArea
	}
	if diff := sum - l.TotalOwnArea; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("sum of own areas %v != total %v", sum, l.TotalOwnArea)
	}
}

// TestSiblingBlocksDisjoint: in normal flow, sibling block boxes never
// overlap vertically — the geometric invariant visual-completeness
// accounting relies on.
func TestSiblingBlocksDisjoint(t *testing.T) {
	site := webgen.WikiArticle(webgen.WikiConfig{Seed: 13})
	doc := htmlx.Parse(string(site.HTML()))
	l := LayoutDocument(doc, nil, DefaultViewport())
	var check func(n *htmlx.Node)
	check = func(n *htmlx.Node) {
		var prev *htmlx.Node
		for _, c := range n.Children {
			if c.Type != htmlx.ElementNode || !IsBlock(c.Tag) {
				continue
			}
			if prev != nil {
				a := l.Geom[prev].Box
				b := l.Geom[c].Box
				if b.Y < a.Bottom()-1e-9 {
					t.Fatalf("siblings overlap: %s [%v,%v] then %s at %v",
						prev.Tag, a.Y, a.Bottom(), c.Tag, b.Y)
				}
			}
			prev = c
			check(c)
		}
	}
	if body := doc.Body(); body != nil {
		check(body)
	}
}
