// Package experiments packages the paper's evaluation section as runnable,
// parameterized experiments. Each Run* function drives the full
// Kaleidoscope pipeline (aggregate -> recruit -> extension flows ->
// conclude) through the core engine and returns the figure's data in the
// paper's shape, plus Format* helpers that print the rows/series a reader
// can compare against the paper:
//
//	Fig. 4  — font-size ranking distributions (raw / QC / in-lab)
//	Fig. 5  — tester-behaviour CDFs (active tabs / created tabs / time)
//	Fig. 6-8 — the Expand-button study: Kaleidoscope vs A/B testing
//	Fig. 9  — the uPLT page-load study
//	Ablations — sorting reduction, QC components, local replay
package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/core"
	"kaleidoscope/internal/crowd"
	"kaleidoscope/internal/extension"
	"kaleidoscope/internal/params"
	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/rank"
	"kaleidoscope/internal/server"
	"kaleidoscope/internal/stats"
	"kaleidoscope/internal/webgen"
)

// Fig4Config parameterizes the font-size study (paper §IV-A).
type Fig4Config struct {
	// FontSizesPt are the versions under test; default {10,12,14,18,22}.
	FontSizesPt []int
	// CrowdWorkers is the FigureEight-recruited cohort size; default 100.
	CrowdWorkers int
	// InLabWorkers is the trusted cohort size; default 50.
	InLabWorkers int
	// PageSeed holds the article text constant across versions.
	PageSeed int64
}

func (c Fig4Config) withDefaults() Fig4Config {
	if len(c.FontSizesPt) == 0 {
		c.FontSizesPt = []int{10, 12, 14, 18, 22}
	}
	if c.CrowdWorkers == 0 {
		c.CrowdWorkers = 100
	}
	if c.InLabWorkers == 0 {
		c.InLabWorkers = 50
	}
	if c.PageSeed == 0 {
		c.PageSeed = 42
	}
	return c
}

// Fig4Result carries the three panels of Fig. 4 plus the telemetry Fig. 5
// is built from.
type Fig4Result struct {
	Config Fig4Config
	// Dist panels: dist[rank][version] = fraction of participants placing
	// `version` at `rank` (rank 0 = "A" = best).
	Raw               [][]float64
	QualityControlled [][]float64
	InLab             [][]float64
	// Cohort accounting.
	RawWorkers, KeptWorkers, DroppedWorkers, InLabWorkers int
	// CrowdCostUSD and CrowdDuration mirror the paper's $11 / ~12 h.
	CrowdCostUSD  float64
	CrowdDuration time.Duration
	// Outcomes expose the underlying runs for follow-on analysis (Fig. 5).
	CrowdOutcome *core.Outcome
	InLabOutcome *core.Outcome
}

// fontQuestion is the paper's comparison question.
const fontQuestion = "Which webpage's font size is more suitable (easier) for reading?"

// buildFontStudy assembles the font-size study over a given pool.
func buildFontStudy(cfg Fig4Config, testID string, pool *crowd.Population, workers int, trustedOnly bool) (*core.Study, error) {
	test := &params.Test{
		TestID:          testID,
		WebpageNum:      len(cfg.FontSizesPt),
		TestDescription: "What is the best font size for online reading?",
		ParticipantNum:  workers,
		Questions:       []string{fontQuestion},
	}
	sites := make(map[string]*webgen.Site, len(cfg.FontSizesPt))
	for _, pt := range cfg.FontSizesPt {
		path := fmt.Sprintf("wiki-%dpt", pt)
		test.Webpages = append(test.Webpages, params.Webpage{
			WebPath:        path,
			WebPageLoad:    params.PageLoadSpec{UniformMillis: 3000},
			WebMainFile:    "index.html",
			WebDescription: fmt.Sprintf("%dpt main text", pt),
		})
		sites[path] = webgen.WikiArticle(webgen.WikiConfig{Seed: cfg.PageSeed, FontSizePt: pt})
	}
	// The paper's extreme control: 4pt vs 12pt, right obviously better.
	controls := []aggregator.ControlPair{{
		Name:     "extreme-font",
		Left:     webgen.WikiArticle(webgen.WikiConfig{Seed: cfg.PageSeed, FontSizePt: 4}),
		Right:    webgen.WikiArticle(webgen.WikiConfig{Seed: cfg.PageSeed, FontSizePt: 12}),
		Expected: questionnaire.ChoiceRight,
	}}
	return &core.Study{
		Params:      test,
		Sites:       sites,
		Controls:    controls,
		Answer:      extension.AnswerFontSize(),
		Pool:        pool,
		PaymentUSD:  0.11, // the paper pays $0.11 per crowd participant
		TrustedOnly: trustedOnly,
	}, nil
}

// RunFig4 executes the crowd and in-lab cohorts and aggregates the three
// ranking-distribution panels.
func RunFig4(cfg Fig4Config, rng *rand.Rand) (*Fig4Result, error) {
	if rng == nil {
		return nil, errors.New("experiments: nil random source")
	}
	cfg = cfg.withDefaults()
	n := len(cfg.FontSizesPt)
	if n < 2 {
		return nil, errors.New("experiments: need at least two font sizes")
	}
	res := &Fig4Result{Config: cfg}

	// Crowd cohort: historically-trustworthy FigureEight workers.
	crowdPool, err := crowd.TrustedCrowd(cfg.CrowdWorkers*2, rng)
	if err != nil {
		return nil, err
	}
	crowdEngine, err := core.NewEngine()
	if err != nil {
		return nil, err
	}
	crowdStudy, err := buildFontStudy(cfg, "fig4-crowd", crowdPool, cfg.CrowdWorkers, true)
	if err != nil {
		return nil, err
	}
	crowdOutcome, err := crowdEngine.RunStudy(crowdStudy, rng)
	if err != nil {
		return nil, err
	}
	res.CrowdOutcome = crowdOutcome
	res.RawWorkers = len(crowdOutcome.Sessions)
	res.KeptWorkers = crowdOutcome.Filtered.Workers
	res.DroppedWorkers = crowdOutcome.Filtered.DroppedWorkers
	res.CrowdCostUSD = crowdOutcome.Recruitment.TotalCostUSD
	res.CrowdDuration = crowdOutcome.Recruitment.Completed

	rawRankings, err := core.WorkerRankings(crowdOutcome, "q0", n)
	if err != nil {
		return nil, fmt.Errorf("experiments: raw rankings: %w", err)
	}
	res.Raw, err = rank.RankDistribution(rawRankings, n)
	if err != nil {
		return nil, err
	}
	keptRankings, err := core.WorkerRankings(crowdOutcome.FilteredSessionsOutcome(), "q0", n)
	if err != nil {
		return nil, fmt.Errorf("experiments: filtered rankings: %w", err)
	}
	res.QualityControlled, err = rank.RankDistribution(keptRankings, n)
	if err != nil {
		return nil, err
	}

	// In-lab cohort: invited trusted participants.
	labPool, err := crowd.InLabPopulation(cfg.InLabWorkers*2, rng)
	if err != nil {
		return nil, err
	}
	labEngine, err := core.NewEngine()
	if err != nil {
		return nil, err
	}
	labStudy, err := buildFontStudy(cfg, "fig4-inlab", labPool, cfg.InLabWorkers, true)
	if err != nil {
		return nil, err
	}
	labOutcome, err := labEngine.RunStudy(labStudy, rng)
	if err != nil {
		return nil, err
	}
	res.InLabOutcome = labOutcome
	res.InLabWorkers = len(labOutcome.Sessions)
	labRankings, err := core.WorkerRankings(labOutcome, "q0", n)
	if err != nil {
		return nil, fmt.Errorf("experiments: in-lab rankings: %w", err)
	}
	res.InLab, err = rank.RankDistribution(labRankings, n)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// TopChoice returns the version index most often ranked "A" in a panel.
func TopChoice(dist [][]float64) int {
	best, bestShare := 0, -1.0
	for v, share := range dist[0] {
		if share > bestShare {
			best, bestShare = v, share
		}
	}
	return best
}

// PanelDistance returns the mean absolute difference between two ranking
// panels — how far a panel sits from the in-lab pseudo-ground truth.
func PanelDistance(a, b [][]float64) float64 {
	var sum float64
	var n int
	for i := range a {
		for j := range a[i] {
			d := a[i][j] - b[i][j]
			if d < 0 {
				d = -d
			}
			sum += d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FormatFig4 renders the three panels the way the paper's Fig. 4 reads:
// per rank (A..E), the percentage each font size received.
func FormatFig4(res *Fig4Result) string {
	var b strings.Builder
	panels := []struct {
		name string
		dist [][]float64
	}{
		{"Kaleidoscope (raw)", res.Raw},
		{"Kaleidoscope (quality control)", res.QualityControlled},
		{"In-lab testing", res.InLab},
	}
	fmt.Fprintf(&b, "Fig. 4 — font-size ranking distributions (%% of participants per rank)\n")
	for _, panel := range panels {
		fmt.Fprintf(&b, "\n%s:\n      ", panel.name)
		for _, pt := range res.Config.FontSizesPt {
			fmt.Fprintf(&b, "%7dpt", pt)
		}
		b.WriteString("\n")
		for pos, row := range panel.dist {
			fmt.Fprintf(&b, "rank %c", 'A'+pos)
			for _, share := range row {
				fmt.Fprintf(&b, "%8.1f%%", share*100)
			}
			b.WriteString("\n")
		}
	}
	fmt.Fprintf(&b, "\ncrowd: %d workers, %d kept after QC, $%.2f, %s to recruit; in-lab: %d workers\n",
		res.RawWorkers, res.KeptWorkers, res.CrowdCostUSD, res.CrowdDuration.Round(time.Minute), res.InLabWorkers)
	return b.String()
}

// Fig5Result carries the behaviour CDFs of Fig. 5, one per cohort and
// metric.
type Fig5Result struct {
	// CDFs indexed by cohort: raw crowd, QC-kept crowd, in-lab.
	ActiveTabs  map[string]*stats.ECDF
	CreatedTabs map[string]*stats.ECDF
	TimeMinutes map[string]*stats.ECDF
}

// Cohort labels used in Fig5Result maps.
const (
	CohortRaw   = "raw"
	CohortQC    = "quality control"
	CohortInLab = "in-lab"
)

// BuildFig5 derives the Fig. 5 behaviour CDFs from a completed Fig. 4 run
// (the paper computes both from the same sessions).
func BuildFig5(fig4 *Fig4Result) (*Fig5Result, error) {
	if fig4 == nil || fig4.CrowdOutcome == nil || fig4.InLabOutcome == nil {
		return nil, errors.New("experiments: Fig4 result incomplete")
	}
	res := &Fig5Result{
		ActiveTabs:  make(map[string]*stats.ECDF),
		CreatedTabs: make(map[string]*stats.ECDF),
		TimeMinutes: make(map[string]*stats.ECDF),
	}
	cohorts := []struct {
		name     string
		sessions []server.SessionUpload
	}{
		{CohortRaw, fig4.CrowdOutcome.Sessions},
		{CohortQC, core.KeptSessions(fig4.CrowdOutcome)},
		{CohortInLab, fig4.InLabOutcome.Sessions},
	}
	for _, cohort := range cohorts {
		tabs, created, minutes := core.BehaviorSamples(cohort.sessions)
		if len(tabs) == 0 {
			return nil, fmt.Errorf("experiments: cohort %q has no telemetry", cohort.name)
		}
		var err error
		if res.ActiveTabs[cohort.name], err = stats.NewECDF(tabs); err != nil {
			return nil, err
		}
		if res.CreatedTabs[cohort.name], err = stats.NewECDF(created); err != nil {
			return nil, err
		}
		if res.TimeMinutes[cohort.name], err = stats.NewECDF(minutes); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// FormatFig5 renders the three CDF panels as quantile tables.
func FormatFig5(res *Fig5Result) string {
	var b strings.Builder
	b.WriteString("Fig. 5 — tester behaviour per side-by-side comparison\n")
	panels := []struct {
		name string
		cdfs map[string]*stats.ECDF
		unit string
	}{
		{"(a) active tab switches", res.ActiveTabs, ""},
		{"(b) created tabs", res.CreatedTabs, ""},
		{"(c) time on task", res.TimeMinutes, " min"},
	}
	quantiles := []float64{0.25, 0.50, 0.75, 0.95, 1.00}
	for _, panel := range panels {
		fmt.Fprintf(&b, "\n%s:\n%-18s", panel.name, "cohort")
		for _, q := range quantiles {
			fmt.Fprintf(&b, "   p%02.0f", q*100)
		}
		b.WriteString("\n")
		for _, cohort := range []string{CohortRaw, CohortQC, CohortInLab} {
			cdf, ok := panel.cdfs[cohort]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%-18s", cohort)
			for _, q := range quantiles {
				fmt.Fprintf(&b, "%6.1f", quantileOfECDF(cdf, q))
			}
			fmt.Fprintf(&b, "%s\n", panel.unit)
		}
	}
	return b.String()
}

// quantileOfECDF inverts an ECDF at quantile q via its step points.
func quantileOfECDF(cdf *stats.ECDF, q float64) float64 {
	pts := cdf.Points()
	for _, p := range pts {
		if p.Y >= q {
			return p.X
		}
	}
	return cdf.Max()
}
