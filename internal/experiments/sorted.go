package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"kaleidoscope/internal/core"
	"kaleidoscope/internal/crowd"
	"kaleidoscope/internal/rank"
	"kaleidoscope/internal/stats"
)

// SortedStudyResult compares the full C(N,2) flow against the paper's
// §III-D sorted flow, end-to-end through the real pipeline (aggregation,
// HTTP API, extension runners).
type SortedStudyResult struct {
	Versions int
	Workers  int
	// Mean side-by-side comparisons each participant performed.
	FullComparisons   float64
	SortedComparisons float64
	// Aggregate orders (version indices, best first) per flow.
	FullOrder   []int
	SortedOrder []int
	// OrderAgreement is the Kendall tau between the two aggregate orders.
	OrderAgreement float64
}

// RunSortedStudy executes both flavours of the 5-version font study with
// the given cohort size and compares cost and outcome.
func RunSortedStudy(workers int, rng *rand.Rand) (*SortedStudyResult, error) {
	if rng == nil {
		return nil, errors.New("experiments: nil random source")
	}
	if workers < 5 {
		return nil, errors.New("experiments: need at least 5 workers")
	}
	cfg := Fig4Config{}.withDefaults()
	n := len(cfg.FontSizesPt)
	res := &SortedStudyResult{Versions: n, Workers: workers}

	runOne := func(testID string, sorted bool) (*core.Outcome, error) {
		pool, err := crowd.TrustedCrowd(workers*2, rng)
		if err != nil {
			return nil, err
		}
		study, err := buildFontStudy(cfg, testID, pool, workers, true)
		if err != nil {
			return nil, err
		}
		study.Sorted = sorted
		engine, err := core.NewEngine()
		if err != nil {
			return nil, err
		}
		return engine.RunStudy(study, rng)
	}

	full, err := runOne("sorted-study-full", false)
	if err != nil {
		return nil, err
	}
	sorted, err := runOne("sorted-study-sorted", true)
	if err != nil {
		return nil, err
	}

	res.FullComparisons = meanResponses(full)
	res.SortedComparisons = meanResponses(sorted)

	// Aggregate order from the full flow: Borda over per-worker rankings.
	fullRankings, err := core.WorkerRankings(full, "q0", n)
	if err != nil {
		return nil, err
	}
	fullScores, err := rank.BordaScores(fullRankings, n)
	if err != nil {
		return nil, err
	}
	res.FullOrder = orderOfScores(fullScores)

	// Aggregate order from the sorted flow: Borda over the runners' own
	// rankings.
	var sortedRankings [][]int
	for _, sr := range sorted.SortedResults {
		sortedRankings = append(sortedRankings, sr.Ranking.Order)
	}
	sortedScores, err := rank.BordaScores(sortedRankings, n)
	if err != nil {
		return nil, err
	}
	res.SortedOrder = orderOfScores(sortedScores)

	tau, err := stats.KendallTau(fullScores, sortedScores)
	if err != nil {
		return nil, err
	}
	res.OrderAgreement = tau
	return res, nil
}

// meanResponses averages per-session response counts.
func meanResponses(o *core.Outcome) float64 {
	if len(o.Sessions) == 0 {
		return 0
	}
	var total int
	for _, s := range o.Sessions {
		total += len(s.Responses)
	}
	return float64(total) / float64(len(o.Sessions))
}

// orderOfScores ranks version indices by descending score (ties by index).
func orderOfScores(scores []float64) []int {
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if scores[b] > scores[a] || (scores[b] == scores[a] && b < a) {
				order[j-1], order[j] = b, a
			} else {
				break
			}
		}
	}
	return order
}

// FormatSortedStudy renders the comparison.
func FormatSortedStudy(res *SortedStudyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — sorted flow vs full round-robin, end-to-end (N=%d versions, %d workers each)\n",
		res.Versions, res.Workers)
	fmt.Fprintf(&b, "  %-12s %22s   %s\n", "flow", "comparisons/worker", "aggregate order (version indices, best first)")
	fmt.Fprintf(&b, "  %-12s %22.1f   %v\n", "full", res.FullComparisons, res.FullOrder)
	fmt.Fprintf(&b, "  %-12s %22.1f   %v\n", "sorted", res.SortedComparisons, res.SortedOrder)
	fmt.Fprintf(&b, "  aggregate-order agreement (Kendall tau): %.3f\n", res.OrderAgreement)
	return b.String()
}
