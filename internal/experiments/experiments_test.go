package experiments

import (
	"math/rand"
	"strings"
	"testing"

	"kaleidoscope/internal/netsim"
	"kaleidoscope/internal/questionnaire"
)

// Small cohort sizes keep the test suite fast; the benches run the full
// paper-scale cohorts.

func TestRunFig4ShapeSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	res, err := RunFig4(Fig4Config{
		FontSizesPt:  []int{10, 12, 14, 18, 22},
		CrowdWorkers: 30,
		InLabWorkers: 15,
	}, rng)
	if err != nil {
		t.Fatalf("RunFig4: %v", err)
	}
	if res.RawWorkers != 30 || res.InLabWorkers != 15 {
		t.Errorf("cohorts = %d/%d", res.RawWorkers, res.InLabWorkers)
	}
	if res.KeptWorkers+res.DroppedWorkers != 30 {
		t.Errorf("QC accounting: %d + %d", res.KeptWorkers, res.DroppedWorkers)
	}
	// Panels are proper distributions.
	for _, panel := range [][][]float64{res.Raw, res.QualityControlled, res.InLab} {
		if len(panel) != 5 {
			t.Fatalf("panel ranks = %d", len(panel))
		}
		for pos, row := range panel {
			var sum float64
			for _, p := range row {
				sum += p
			}
			if sum < 0.999 || sum > 1.001 {
				t.Errorf("rank %d sums to %v", pos, sum)
			}
		}
	}
	// The paper's core finding: 12pt tops the in-lab and QC panels.
	if TopChoice(res.InLab) != 1 {
		t.Errorf("in-lab top = %dpt, want 12pt", res.Config.FontSizesPt[TopChoice(res.InLab)])
	}
	if TopChoice(res.QualityControlled) != 1 {
		t.Errorf("QC top = %dpt, want 12pt", res.Config.FontSizesPt[TopChoice(res.QualityControlled)])
	}
	// QC panel at least as close to in-lab as the raw panel (the Fig. 4
	// claim). Allow equality for small cohorts.
	rawDist := PanelDistance(res.Raw, res.InLab)
	qcDist := PanelDistance(res.QualityControlled, res.InLab)
	if qcDist > rawDist+0.05 {
		t.Errorf("QC should track in-lab: qc=%.3f raw=%.3f", qcDist, rawDist)
	}
	// Cost mirrors the paper's $0.11 per worker.
	if res.CrowdCostUSD < 3.2 || res.CrowdCostUSD > 3.4 {
		t.Errorf("cost = %v, want 30 x $0.11", res.CrowdCostUSD)
	}
	out := FormatFig4(res)
	for _, want := range []string{"Fig. 4", "rank A", "quality control", "In-lab"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatFig4 missing %q", want)
		}
	}
}

func TestRunFig4Errors(t *testing.T) {
	if _, err := RunFig4(Fig4Config{}, nil); err == nil {
		t.Error("nil rng should fail")
	}
	rng := rand.New(rand.NewSource(2))
	if _, err := RunFig4(Fig4Config{FontSizesPt: []int{12}}, rng); err == nil {
		t.Error("single size should fail")
	}
}

func TestBuildFig5(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fig4, err := RunFig4(Fig4Config{
		FontSizesPt:  []int{10, 12, 22},
		CrowdWorkers: 20,
		InLabWorkers: 10,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	fig5, err := BuildFig5(fig4)
	if err != nil {
		t.Fatalf("BuildFig5: %v", err)
	}
	for _, cohort := range []string{CohortRaw, CohortQC, CohortInLab} {
		if fig5.TimeMinutes[cohort] == nil || fig5.ActiveTabs[cohort] == nil || fig5.CreatedTabs[cohort] == nil {
			t.Fatalf("cohort %q missing CDFs", cohort)
		}
	}
	// Raw crowd contains hasty workers: its fast tail is faster than
	// in-lab's.
	rawFast := quantileOfECDF(fig5.TimeMinutes[CohortRaw], 0.10)
	labFast := quantileOfECDF(fig5.TimeMinutes[CohortInLab], 0.10)
	if rawFast > labFast {
		t.Errorf("raw p10 %.2f should be <= in-lab p10 %.2f", rawFast, labFast)
	}
	// QC trims the raw tail (paper: max 3.3 min -> 2.5 min).
	if fig5.TimeMinutes[CohortQC].Max() > fig5.TimeMinutes[CohortRaw].Max() {
		t.Error("QC max time should not exceed raw max")
	}
	out := FormatFig5(fig5)
	if !strings.Contains(out, "time on task") || !strings.Contains(out, "p50") {
		t.Errorf("FormatFig5 output:\n%s", out)
	}
}

func TestBuildFig5Errors(t *testing.T) {
	if _, err := BuildFig5(nil); err == nil {
		t.Error("nil fig4 should fail")
	}
	if _, err := BuildFig5(&Fig4Result{}); err == nil {
		t.Error("incomplete fig4 should fail")
	}
}

func TestRunExpandButtonShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	res, err := RunExpandButton(ExpandButtonConfig{KaleidoscopeWorkers: 40}, rng)
	if err != nil {
		t.Fatalf("RunExpandButton: %v", err)
	}
	// Fig. 7(a): Kaleidoscope much faster than A/B.
	if res.Speedup < 3 {
		t.Errorf("speedup = %.1f, want >> 1 (paper ~12x)", res.Speedup)
	}
	// Fig. 7(b): A/B not significant at this scale (usually).
	c := res.ABCounts
	if c.VisitorsA+c.VisitorsB != res.Config.AB.RequiredVisitors {
		t.Errorf("AB visitors = %d", c.VisitorsA+c.VisitorsB)
	}
	// Fig. 7(c): the variant (right) wins visibility decisively.
	vis := res.Tallies[QuestionVisibility]
	if vis.Right <= vis.Left {
		t.Errorf("visibility tally = %+v, variant should win", vis)
	}
	if !res.VisibilitySignificance.Significant(0.05) {
		t.Errorf("visibility significance = %+v", res.VisibilitySignificance)
	}
	// Fig. 8 shape: appeal is mostly Same (small change), visibility is
	// decisive for the variant, "looks better" sits between: its variant
	// share must land between appeal's and visibility's.
	appeal := res.Tallies[QuestionAppeal]
	if appeal.Same <= appeal.Left || appeal.Same <= appeal.Right {
		t.Errorf("appeal tally = %+v, Same should dominate", appeal)
	}
	looks := res.Tallies[QuestionButtonLook]
	if looks.Total() == 0 {
		t.Fatal("missing looks-better tally")
	}
	for _, fmtFn := range []func(*ExpandButtonResult) string{FormatFig7a, FormatFig7b, FormatFig7c, FormatFig8} {
		if out := fmtFn(res); len(out) < 40 {
			t.Errorf("format output too short: %q", out)
		}
	}
}

func TestRunExpandButtonErrors(t *testing.T) {
	if _, err := RunExpandButton(ExpandButtonConfig{}, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestRunFig9Shape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	res, err := RunFig9(Fig9Config{Workers: 40}, rng)
	if err != nil {
		t.Fatalf("RunFig9: %v", err)
	}
	// Version B (text first, right side) wins both raw and filtered.
	if res.Raw.Proportion(questionnaire.ChoiceRight) <= res.Raw.Proportion(questionnaire.ChoiceLeft) {
		t.Errorf("raw tally = %+v, text-first should win", res.Raw)
	}
	if res.Filtered.Total() == 0 {
		t.Fatal("filtered tally empty")
	}
	if res.Filtered.Proportion(questionnaire.ChoiceRight) <= res.Filtered.Proportion(questionnaire.ChoiceLeft) {
		t.Errorf("filtered tally = %+v", res.Filtered)
	}
	out := FormatFig9(res)
	if !strings.Contains(out, "Fig. 9") {
		t.Errorf("FormatFig9 output:\n%s", out)
	}
}

func TestRunFig9Errors(t *testing.T) {
	if _, err := RunFig9(Fig9Config{}, nil); err == nil {
		t.Error("nil rng should fail")
	}
	rng := rand.New(rand.NewSource(6))
	if _, err := RunFig9(Fig9Config{EarlyMillis: 4000, FullMillis: 2000}, rng); err == nil {
		t.Error("inverted reveal times should fail")
	}
}

func TestRunSortReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	res, err := RunSortReduction(5, 50, rng)
	if err != nil {
		t.Fatalf("RunSortReduction: %v", err)
	}
	if res.RoundRobinComparisons != 10 {
		t.Errorf("round-robin comparisons = %v, want exactly C(5,2)=10", res.RoundRobinComparisons)
	}
	if res.InsertionComparisons >= res.RoundRobinComparisons {
		t.Errorf("insertion %v should beat round-robin %v", res.InsertionComparisons, res.RoundRobinComparisons)
	}
	if res.MergeComparisons >= res.RoundRobinComparisons {
		t.Errorf("merge %v should beat round-robin %v", res.MergeComparisons, res.RoundRobinComparisons)
	}
	// All methods stay usefully correlated with the truth.
	for name, tau := range map[string]float64{
		"round-robin": res.RoundRobinTau, "insertion": res.InsertionTau, "merge": res.MergeTau,
	} {
		if tau < 0.4 {
			t.Errorf("%s tau = %v, too low", name, tau)
		}
	}
	if out := FormatSortReduction(res); !strings.Contains(out, "round-robin") {
		t.Errorf("format output: %q", out)
	}
}

func TestRunSortReductionErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if _, err := RunSortReduction(5, 10, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := RunSortReduction(2, 10, rng); err == nil {
		t.Error("too few versions should fail")
	}
}

func TestRunQCAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	res, err := RunQCAblation(120, rng)
	if err != nil {
		t.Fatalf("RunQCAblation: %v", err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]QCAblationRow{}
	for _, row := range res.Rows {
		byName[row.Name] = row
	}
	none := byName["none"]
	full := byName["full battery"]
	if none.Kept != 1 {
		t.Errorf("no-QC kept = %v, want 1", none.Kept)
	}
	if full.Kept >= 1 {
		t.Error("full battery should drop someone in an open crowd")
	}
	if full.Accuracy <= none.Accuracy {
		t.Errorf("full battery accuracy %v should beat none %v", full.Accuracy, none.Accuracy)
	}
	if out := FormatQCAblation(res); !strings.Contains(out, "full battery") {
		t.Errorf("format output: %q", out)
	}
}

func TestRunQCAblationErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	if _, err := RunQCAblation(120, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := RunQCAblation(5, rng); err == nil {
		t.Error("tiny cohort should fail")
	}
}

func TestRunLocalReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	res, err := RunLocalReplay(3, rng)
	if err != nil {
		t.Fatalf("RunLocalReplay: %v", err)
	}
	if res.NetworkSpeedIndexMax <= res.NetworkSpeedIndexMin {
		t.Errorf("network SI spread = [%v, %v]", res.NetworkSpeedIndexMin, res.NetworkSpeedIndexMax)
	}
	// The paper's motivation: cross-network spread is large.
	if res.NetworkSpeedIndexMax/res.NetworkSpeedIndexMin < 2 {
		t.Errorf("SI spread %vx suspiciously small", res.NetworkSpeedIndexMax/res.NetworkSpeedIndexMin)
	}
	if res.ReplaySpeedIndex <= 0 {
		t.Error("replay SI should be positive")
	}
	if out := FormatLocalReplay(res); !strings.Contains(out, "zero spread") {
		t.Errorf("format output: %q", out)
	}
}

func TestRunLocalReplayErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	if _, err := RunLocalReplay(1, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := RunLocalReplay(0, rng); err == nil {
		t.Error("zero runs should fail")
	}
}

func TestRunPresentation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	res, err := RunPresentation(400, rng)
	if err != nil {
		t.Fatalf("RunPresentation: %v", err)
	}
	// Side-by-side viewing beats comparing against memory.
	if res.SideBySideAccuracy <= res.SequentialAccuracy {
		t.Errorf("side-by-side %.3f should beat sequential %.3f",
			res.SideBySideAccuracy, res.SequentialAccuracy)
	}
	if res.SideBySideAccuracy <= 0.3 {
		t.Errorf("side-by-side accuracy %.3f implausibly low", res.SideBySideAccuracy)
	}
	if out := FormatPresentation(res); !strings.Contains(out, "side-by-side") {
		t.Errorf("format output: %q", out)
	}
}

func TestRunPresentationErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	if _, err := RunPresentation(100, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := RunPresentation(3, rng); err == nil {
		t.Error("tiny cohort should fail")
	}
}

func TestRunSortedStudy(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	res, err := RunSortedStudy(25, rng)
	if err != nil {
		t.Fatalf("RunSortedStudy: %v", err)
	}
	if res.FullComparisons != 10 {
		t.Errorf("full comparisons = %v, want C(5,2)=10", res.FullComparisons)
	}
	if res.SortedComparisons >= res.FullComparisons {
		t.Errorf("sorted %v should beat full %v", res.SortedComparisons, res.FullComparisons)
	}
	if len(res.FullOrder) != 5 || len(res.SortedOrder) != 5 {
		t.Fatalf("orders = %v / %v", res.FullOrder, res.SortedOrder)
	}
	// Both aggregate orders put 12pt (index 1) first and agree strongly.
	if res.FullOrder[0] != 1 || res.SortedOrder[0] != 1 {
		t.Errorf("top versions: full=%v sorted=%v, want 12pt first", res.FullOrder, res.SortedOrder)
	}
	if res.OrderAgreement < 0.6 {
		t.Errorf("order agreement tau = %v, too low", res.OrderAgreement)
	}
	if out := FormatSortedStudy(res); !strings.Contains(out, "sorted") {
		t.Errorf("format output: %q", out)
	}
}

func TestRunSortedStudyErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	if _, err := RunSortedStudy(25, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := RunSortedStudy(2, rng); err == nil {
		t.Error("tiny cohort should fail")
	}
}

func TestRunProtocolStudy(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	res, err := RunProtocolStudy(netsim.ProfileSatell, 30, rng)
	if err != nil {
		t.Fatalf("RunProtocolStudy: %v", err)
	}
	if res.H2OnLoadMillis >= res.H1OnLoadMillis {
		t.Errorf("h2 onload %v should beat h1 %v on satellite", res.H2OnLoadMillis, res.H1OnLoadMillis)
	}
	if res.Raw.Total() != 30 {
		t.Errorf("raw total = %d", res.Raw.Total())
	}
	// The faster protocol (right side) should not lose the vote.
	if res.Raw.Proportion(questionnaire.ChoiceRight) < res.Raw.Proportion(questionnaire.ChoiceLeft) {
		t.Errorf("raw tally = %+v, http/2 should not lose", res.Raw)
	}
	if out := FormatProtocolStudy(res); !strings.Contains(out, "http/2.0") {
		t.Errorf("format output: %q", out)
	}
}

func TestRunProtocolStudyErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	if _, err := RunProtocolStudy(netsim.ProfileCable, 30, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := RunProtocolStudy(netsim.ProfileCable, 2, rng); err == nil {
		t.Error("tiny cohort should fail")
	}
}

func TestRunStability(t *testing.T) {
	res, err := RunStability(3, 20, 100)
	if err != nil {
		t.Fatalf("RunStability: %v", err)
	}
	if res.Seeds != 3 {
		t.Errorf("seeds = %d", res.Seeds)
	}
	// Headline findings should hold in most reduced-scale seeds.
	if res.VisibilityWins < 2 {
		t.Errorf("visibility wins = %d/3", res.VisibilityWins)
	}
	if res.Fig9BWins < 2 {
		t.Errorf("fig9 wins = %d/3", res.Fig9BWins)
	}
	if res.SpeedupMin <= 0 || res.SpeedupMax < res.SpeedupMin {
		t.Errorf("speedup band = [%v, %v]", res.SpeedupMin, res.SpeedupMax)
	}
	if out := FormatStability(res); !strings.Contains(out, "Robustness") {
		t.Errorf("format output: %q", out)
	}
}

func TestRunStabilityErrors(t *testing.T) {
	if _, err := RunStability(1, 20, 1); err == nil {
		t.Error("too few seeds should fail")
	}
	if _, err := RunStability(3, 2, 1); err == nil {
		t.Error("tiny cohort should fail")
	}
}
