package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"kaleidoscope/internal/crowd"
	"kaleidoscope/internal/questionnaire"
)

// PresentationResult quantifies Kaleidoscope's side-by-side design choice:
// showing both versions simultaneously (two iframes, Fig. 1) versus
// showing them one after the other. Sequential presentation forces the
// participant to compare against memory, which multiplies judgement noise;
// the ablation measures the accuracy cost on a task with a known answer.
type PresentationResult struct {
	Workers int
	// Accuracy of the majority-relevant answer (true answer known).
	SideBySideAccuracy float64
	SequentialAccuracy float64
	// SameRate is how often workers punt to "Same" in each mode.
	SideBySideSameRate float64
	SequentialSameRate float64
}

// sequentialNoiseScale models the memory penalty of sequential viewing.
// Psychophysics places recognition-over-memory degradation at roughly 2-4x
// discrimination noise; 3x is the middle of that band.
const sequentialNoiseScale = 3.0

// RunPresentation compares the two presentation modes on the 12pt-vs-14pt
// font comparison — a subtle difference where presentation quality
// matters (12 vs 22 would saturate both modes).
func RunPresentation(workers int, rng *rand.Rand) (*PresentationResult, error) {
	if rng == nil {
		return nil, errors.New("experiments: nil random source")
	}
	if workers < 10 {
		return nil, errors.New("experiments: need at least 10 workers")
	}
	pop, err := crowd.TrustedCrowd(workers, rng)
	if err != nil {
		return nil, err
	}
	res := &PresentationResult{Workers: workers}
	var sbCorrect, sqCorrect, sbSame, sqSame, total int
	for _, w := range pop.Workers {
		// True answer: the population's aggregate prefers 12pt over 14pt
		// only mildly; per worker the truth is their own utility order,
		// so accuracy is measured against that.
		truthLeft := w.FontUtility(12) >= w.FontUtility(14)

		sb := w.CompareFontSize(12, 14, rng)
		sq := w.CompareFontSizeSequential(12, 14, sequentialNoiseScale, rng)
		total++
		if matchesTruth(sb, truthLeft) {
			sbCorrect++
		}
		if matchesTruth(sq, truthLeft) {
			sqCorrect++
		}
		if sb == questionnaire.ChoiceSame {
			sbSame++
		}
		if sq == questionnaire.ChoiceSame {
			sqSame++
		}
	}
	res.SideBySideAccuracy = float64(sbCorrect) / float64(total)
	res.SequentialAccuracy = float64(sqCorrect) / float64(total)
	res.SideBySideSameRate = float64(sbSame) / float64(total)
	res.SequentialSameRate = float64(sqSame) / float64(total)
	return res, nil
}

func matchesTruth(c questionnaire.Choice, truthLeft bool) bool {
	if truthLeft {
		return c == questionnaire.ChoiceLeft
	}
	return c == questionnaire.ChoiceRight
}

// FormatPresentation renders the ablation table.
func FormatPresentation(res *PresentationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — side-by-side vs sequential presentation (%d workers, 12pt vs 14pt)\n", res.Workers)
	fmt.Fprintf(&b, "  %-14s %10s %10s\n", "mode", "accuracy", "same-rate")
	fmt.Fprintf(&b, "  %-14s %9.1f%% %9.1f%%\n", "side-by-side", res.SideBySideAccuracy*100, res.SideBySideSameRate*100)
	fmt.Fprintf(&b, "  %-14s %9.1f%% %9.1f%%\n", "sequential", res.SequentialAccuracy*100, res.SequentialSameRate*100)
	return b.String()
}
