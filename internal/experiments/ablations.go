package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"kaleidoscope/internal/crowd"
	"kaleidoscope/internal/htmlx"
	"kaleidoscope/internal/netsim"
	"kaleidoscope/internal/pageload"
	"kaleidoscope/internal/params"
	"kaleidoscope/internal/quality"
	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/rank"
	"kaleidoscope/internal/render"
	"kaleidoscope/internal/stats"
	"kaleidoscope/internal/webgen"
)

// SortReductionResult quantifies the paper's sorting optimization: when
// only one comparison question is asked, a comparison sort needs far fewer
// integrated webpages than the full C(N,2) round-robin, at a small
// agreement cost under noisy comparators.
type SortReductionResult struct {
	Versions int
	// Mean comparisons per participant.
	RoundRobinComparisons float64
	InsertionComparisons  float64
	MergeComparisons      float64
	// Mean Kendall tau of each method's ranking against the noise-free
	// ground truth.
	RoundRobinTau float64
	InsertionTau  float64
	MergeTau      float64
	Participants  int
}

// RunSortReduction measures comparison counts and ranking agreement for
// `participants` simulated workers ranking `versions` font sizes.
func RunSortReduction(versions, participants int, rng *rand.Rand) (*SortReductionResult, error) {
	if rng == nil {
		return nil, errors.New("experiments: nil random source")
	}
	if versions < 3 || participants < 1 {
		return nil, errors.New("experiments: need >=3 versions and >=1 participant")
	}
	// Font sizes spread around the population preference.
	sizes := make([]float64, versions)
	for i := range sizes {
		sizes[i] = 8 + float64(i)*3
	}
	pop, err := crowd.TrustedCrowd(participants, rng)
	if err != nil {
		return nil, err
	}
	res := &SortReductionResult{Versions: versions, Participants: participants}

	// Ground truth per worker: their noise-free utility order.
	for _, w := range pop.Workers {
		truth := make([]float64, versions)
		for i, pt := range sizes {
			truth[i] = w.FontUtility(pt)
		}
		cmp := func(a, b int) rank.Outcome {
			switch w.CompareFontSize(sizes[a], sizes[b], rng) {
			case questionnaire.ChoiceLeft:
				return rank.OutcomeA
			case questionnaire.ChoiceRight:
				return rank.OutcomeB
			default:
				return rank.OutcomeTie
			}
		}
		rr, err := rank.FullRoundRobin(versions, cmp)
		if err != nil {
			return nil, err
		}
		ins, err := rank.InsertionSortRank(versions, cmp)
		if err != nil {
			return nil, err
		}
		mrg, err := rank.MergeSortRank(versions, cmp)
		if err != nil {
			return nil, err
		}
		res.RoundRobinComparisons += float64(rr.Comparisons)
		res.InsertionComparisons += float64(ins.Comparisons)
		res.MergeComparisons += float64(mrg.Comparisons)

		res.RoundRobinTau += tauAgainstTruth(rr.Order, truth)
		res.InsertionTau += tauAgainstTruth(ins.Order, truth)
		res.MergeTau += tauAgainstTruth(mrg.Order, truth)
	}
	n := float64(participants)
	res.RoundRobinComparisons /= n
	res.InsertionComparisons /= n
	res.MergeComparisons /= n
	res.RoundRobinTau /= n
	res.InsertionTau /= n
	res.MergeTau /= n
	return res, nil
}

// tauAgainstTruth computes Kendall tau between a produced order and the
// utility-implied ground truth.
func tauAgainstTruth(order []int, truth []float64) float64 {
	// Convert order to per-version rank scores (higher = better).
	n := len(order)
	score := make([]float64, n)
	for pos, v := range order {
		score[v] = float64(n - pos)
	}
	tau, err := stats.KendallTau(score, truth)
	if err != nil {
		return 0
	}
	return tau
}

// FormatSortReduction renders the ablation table.
func FormatSortReduction(res *SortReductionResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — sorting-based comparison reduction (N=%d versions, %d participants)\n",
		res.Versions, res.Participants)
	fmt.Fprintf(&b, "  %-14s %12s %12s\n", "method", "comparisons", "kendall tau")
	fmt.Fprintf(&b, "  %-14s %12.1f %12.3f\n", "round-robin", res.RoundRobinComparisons, res.RoundRobinTau)
	fmt.Fprintf(&b, "  %-14s %12.1f %12.3f\n", "insertion", res.InsertionComparisons, res.InsertionTau)
	fmt.Fprintf(&b, "  %-14s %12.1f %12.3f\n", "merge", res.MergeComparisons, res.MergeTau)
	return b.String()
}

// QCAblationResult measures each quality-control component's contribution:
// with the component alone, how much spam is caught and how much accuracy
// (agreement with the known-better answer) the kept cohort reaches.
type QCAblationResult struct {
	Rows []QCAblationRow
}

// QCAblationRow is one configuration's outcome.
type QCAblationRow struct {
	Name string
	// Kept is the fraction of workers retained.
	Kept float64
	// Accuracy is the kept cohort's agreement with the true answer.
	Accuracy float64
}

// RunQCAblation builds a mixed crowd answering a 12pt-vs-22pt comparison
// (true answer: left) and applies each QC component in isolation plus the
// full battery.
func RunQCAblation(workers int, rng *rand.Rand) (*QCAblationResult, error) {
	if rng == nil {
		return nil, errors.New("experiments: nil random source")
	}
	if workers < 10 {
		return nil, errors.New("experiments: need at least 10 workers")
	}
	pop, err := crowd.OpenCrowd(workers, rng)
	if err != nil {
		return nil, err
	}
	const comparisons = 6
	sessions := make([]quality.WorkerSession, 0, workers)
	for _, w := range pop.Workers {
		s := quality.WorkerSession{WorkerID: w.ID}
		for i := 0; i < comparisons; i++ {
			choice := w.CompareFontSize(12, 22, rng)
			s.Responses = append(s.Responses, questionnaire.Response{
				TestID: "qc-ablation", WorkerID: w.ID,
				PageID: fmt.Sprintf("p%d", i), QuestionID: "q0",
				Choice: choice, DurationMillis: 1,
			})
			s.Behaviors = append(s.Behaviors, w.BehaveOnce(rng))
		}
		s.Controls = []quality.ControlOutcome{{
			PageID:   "control-same",
			Expected: questionnaire.ChoiceSame,
			Got:      w.CompareFontSize(12, 12, rng),
		}}
		sessions = append(sessions, s)
	}

	accuracy := func(kept []quality.WorkerSession) float64 {
		total, correct := 0, 0
		for _, s := range kept {
			for _, r := range s.Responses {
				total++
				if r.Choice == questionnaire.ChoiceLeft {
					correct++
				}
			}
		}
		if total == 0 {
			return 0
		}
		return float64(correct) / float64(total)
	}

	full := quality.DefaultConfig(comparisons)
	configs := []struct {
		name string
		cfg  quality.Config
	}{
		{"none", quality.Config{MaxControlFailures: len(sessions)}},
		{"engagement only", quality.Config{
			MinMillisPerComparison: full.MinMillisPerComparison,
			MaxMillisPerComparison: full.MaxMillisPerComparison,
			MaxControlFailures:     len(sessions), // effectively off
		}},
		{"controls only", quality.Config{MaxControlFailures: 0}},
		{"majority only", quality.Config{
			MajorityDeviation:   full.MajorityDeviation,
			MinPeersForMajority: full.MinPeersForMajority,
			MaxControlFailures:  len(sessions),
		}},
		{"full battery", full},
	}
	res := &QCAblationResult{}
	for _, c := range configs {
		kept, _, _, err := quality.Filter(sessions, c.cfg)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, QCAblationRow{
			Name:     c.name,
			Kept:     float64(len(kept)) / float64(len(sessions)),
			Accuracy: accuracy(kept),
		})
	}
	return res, nil
}

// FormatQCAblation renders the component table.
func FormatQCAblation(res *QCAblationResult) string {
	var b strings.Builder
	b.WriteString("Ablation — quality-control components (true answer known)\n")
	fmt.Fprintf(&b, "  %-18s %10s %10s\n", "configuration", "kept", "accuracy")
	for _, row := range res.Rows {
		fmt.Fprintf(&b, "  %-18s %9.0f%% %9.1f%%\n", row.Name, row.Kept*100, row.Accuracy*100)
	}
	return b.String()
}

// LocalReplayResult quantifies why Kaleidoscope stores pages locally: the
// spread of visual metrics when the same page loads over heterogeneous
// networks, versus the zero spread of the local replay.
type LocalReplayResult struct {
	// NetworkSpeedIndexMin/Max bound the Speed Index across profiles.
	NetworkSpeedIndexMin float64
	NetworkSpeedIndexMax float64
	// NetworkOnLoadMin/Max bound the classic PLT across profiles (ms).
	NetworkOnLoadMin float64
	NetworkOnLoadMax float64
	// ReplaySpeedIndex is the (single, deterministic) replay value.
	ReplaySpeedIndex float64
	RunsPerProfile   int
}

// RunLocalReplay loads the article over every canonical network profile,
// converts each trace into a replay spec, and compares the induced visual
// metrics against the fixed local replay the aggregator ships.
func RunLocalReplay(runsPerProfile int, rng *rand.Rand) (*LocalReplayResult, error) {
	if rng == nil {
		return nil, errors.New("experiments: nil random source")
	}
	if runsPerProfile < 1 {
		return nil, errors.New("experiments: need at least one run per profile")
	}
	site := webgen.WikiArticle(webgen.WikiConfig{Seed: 42})
	regions := map[string][]string{
		"#navbar":  {"css/style.css"},
		"#content": {"css/style.css", "img/figure-1.png", "img/figure-2.png"},
		"#infobox": {"img/lead.png"},
	}
	vp := render.DefaultViewport()
	res := &LocalReplayResult{RunsPerProfile: runsPerProfile}
	res.NetworkSpeedIndexMin = -1
	for _, profile := range netsim.AllProfiles() {
		for i := 0; i < runsPerProfile; i++ {
			trace, err := netsim.LoadSite(site, profile, rng)
			if err != nil {
				return nil, err
			}
			spec, err := netsim.SpecFromTrace(trace, regions)
			if err != nil {
				return nil, err
			}
			doc := htmlx.Parse(string(site.HTML()))
			replay, err := pageload.Simulate(doc, nil, vp, spec, nil)
			if err != nil {
				return nil, err
			}
			si := replay.SpeedIndex()
			if res.NetworkSpeedIndexMin < 0 || si < res.NetworkSpeedIndexMin {
				res.NetworkSpeedIndexMin = si
			}
			if si > res.NetworkSpeedIndexMax {
				res.NetworkSpeedIndexMax = si
			}
			if res.NetworkOnLoadMin == 0 || trace.OnLoadMillis < res.NetworkOnLoadMin {
				res.NetworkOnLoadMin = trace.OnLoadMillis
			}
			if trace.OnLoadMillis > res.NetworkOnLoadMax {
				res.NetworkOnLoadMax = trace.OnLoadMillis
			}
		}
	}
	// The fixed replay every tester sees: the paper's 3-second setting.
	doc := htmlx.Parse(string(site.HTML()))
	spec := params.PageLoadSpec{Schedule: []params.SelectorTime{
		{Selector: "#navbar", Millis: 1000},
		{Selector: "#content", Millis: 3000},
		{Selector: "#infobox", Millis: 3000},
	}}
	replay, err := pageload.Simulate(doc, nil, vp, spec, nil)
	if err != nil {
		return nil, err
	}
	res.ReplaySpeedIndex = replay.SpeedIndex()
	return res, nil
}

// FormatLocalReplay renders the discrepancy table.
func FormatLocalReplay(res *LocalReplayResult) string {
	var b strings.Builder
	b.WriteString("Ablation — local replay vs live network loading\n")
	fmt.Fprintf(&b, "  live network Speed Index across profiles: %.0f .. %.0f ms (%.1fx spread)\n",
		res.NetworkSpeedIndexMin, res.NetworkSpeedIndexMax,
		res.NetworkSpeedIndexMax/res.NetworkSpeedIndexMin)
	fmt.Fprintf(&b, "  live network onload across profiles:      %.0f .. %.0f ms\n",
		res.NetworkOnLoadMin, res.NetworkOnLoadMax)
	fmt.Fprintf(&b, "  Kaleidoscope local replay Speed Index:    %.0f ms for every tester (zero spread)\n",
		res.ReplaySpeedIndex)
	return b.String()
}
