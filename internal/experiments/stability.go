package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"kaleidoscope/internal/questionnaire"
)

// StabilityResult reports how stable the headline findings are across
// independent simulation seeds — the reproduction-level analogue of
// re-running the paper's crowd studies with fresh cohorts. Reduced cohort
// sizes keep a sweep cheap; the question is winner stability, not exact
// shares.
type StabilityResult struct {
	Seeds   int
	Workers int
	// Font12Wins counts seeds where 12pt topped the QC ranking panel.
	Font12Wins int
	// VisibilityWins counts seeds where the variant button won question C.
	VisibilityWins int
	// Fig9BWins counts seeds where the text-first version won Fig. 9.
	Fig9BWins int
	// SpeedupMin/Max bound the recruitment speedup across seeds.
	SpeedupMin, SpeedupMax float64
}

// RunStability executes the three headline experiments across `seeds`
// consecutive seeds at reduced scale (`workers` per cohort).
func RunStability(seeds, workers int, baseSeed int64) (*StabilityResult, error) {
	if seeds < 2 {
		return nil, errors.New("experiments: need at least 2 seeds")
	}
	if workers < 10 {
		return nil, errors.New("experiments: need at least 10 workers")
	}
	res := &StabilityResult{Seeds: seeds, Workers: workers}
	for i := 0; i < seeds; i++ {
		rng := rand.New(rand.NewSource(baseSeed + int64(i)))

		fig4, err := RunFig4(Fig4Config{
			CrowdWorkers: workers,
			InLabWorkers: workers / 2,
		}, rng)
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d fig4: %w", i, err)
		}
		if TopChoice(fig4.QualityControlled) == 1 { // index 1 = 12pt
			res.Font12Wins++
		}

		// Match the two arms' cohort sizes so the speedup compares like
		// with like.
		abCfg := ExpandButtonConfig{KaleidoscopeWorkers: workers}.withDefaults().AB
		abCfg.RequiredVisitors = workers
		expand, err := RunExpandButton(ExpandButtonConfig{KaleidoscopeWorkers: workers, AB: abCfg}, rng)
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d expand: %w", i, err)
		}
		vis := expand.Tallies[QuestionVisibility]
		if vis.Right > vis.Left {
			res.VisibilityWins++
		}
		if res.SpeedupMin == 0 || expand.Speedup < res.SpeedupMin {
			res.SpeedupMin = expand.Speedup
		}
		if expand.Speedup > res.SpeedupMax {
			res.SpeedupMax = expand.Speedup
		}

		fig9, err := RunFig9(Fig9Config{Workers: workers}, rng)
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d fig9: %w", i, err)
		}
		if fig9.Raw.Proportion(questionnaire.ChoiceRight) > fig9.Raw.Proportion(questionnaire.ChoiceLeft) {
			res.Fig9BWins++
		}
	}
	return res, nil
}

// FormatStability renders the sweep.
func FormatStability(res *StabilityResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Robustness — headline findings across %d seeds (%d workers per cohort)\n",
		res.Seeds, res.Workers)
	fmt.Fprintf(&b, "  12pt tops the QC font ranking:        %d/%d seeds\n", res.Font12Wins, res.Seeds)
	fmt.Fprintf(&b, "  variant button wins visibility (C):   %d/%d seeds\n", res.VisibilityWins, res.Seeds)
	fmt.Fprintf(&b, "  text-first wins the uPLT study (9):   %d/%d seeds\n", res.Fig9BWins, res.Seeds)
	fmt.Fprintf(&b, "  recruitment speedup vs A/B:           %.1fx .. %.1fx\n", res.SpeedupMin, res.SpeedupMax)
	return b.String()
}
