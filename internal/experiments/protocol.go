package experiments

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"kaleidoscope/internal/core"
	"kaleidoscope/internal/crowd"
	"kaleidoscope/internal/extension"
	"kaleidoscope/internal/netsim"
	"kaleidoscope/internal/params"
	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/webgen"
)

// ProtocolStudyResult is the paper's proposed follow-on experiment
// (§IV-C: "One can do more with replaying page loading, e.g., comparing
// http/1.1 and http/2.0"): the same page is loaded over both protocols on
// a slow network, both load traces are converted into replay schedules,
// and a crowd judges which replay feels ready first — Kaleidoscope's
// record-and-replay pipeline end to end.
type ProtocolStudyResult struct {
	Profile netsim.Profile
	Workers int
	// Onload times of the recorded loads (ms).
	H1OnLoadMillis float64
	H2OnLoadMillis float64
	// Tally of "which version seems ready to use first?" with HTTP/1.1 on
	// the left and HTTP/2 on the right.
	Raw      questionnaire.Tally
	Filtered questionnaire.Tally
	Outcome  *core.Outcome
}

// RunProtocolStudy records HTTP/1.1 and HTTP/2 loads of a resource-heavy
// article over the given profile and crowdsources the comparison.
func RunProtocolStudy(profile netsim.Profile, workers int, rng *rand.Rand) (*ProtocolStudyResult, error) {
	if rng == nil {
		return nil, errors.New("experiments: nil random source")
	}
	if workers < 5 {
		return nil, errors.New("experiments: need at least 5 workers")
	}
	// An image-heavy news front: the workload where protocol differences
	// actually show (many parallel image fetches).
	site := webgen.NewsPage(webgen.NewsConfig{Seed: 42, Cards: 12})
	regions := map[string][]string{
		"#masthead": {"css/news.css"},
		"#hero":     {"img/hero.png"},
		"#cards":    cardDeps(site),
		"#river":    {"css/news.css"},
	}

	// Record one load per protocol (the paper's "record the video of
	// loading a real world webpage" step, with the simulator as camera).
	h1Trace, err := netsim.LoadSiteProtocol(site, profile, netsim.HTTP1, rng)
	if err != nil {
		return nil, err
	}
	h2Trace, err := netsim.LoadSiteProtocol(site, profile, netsim.HTTP2, rng)
	if err != nil {
		return nil, err
	}
	h1Spec, err := netsim.SpecFromTrace(h1Trace, regions)
	if err != nil {
		return nil, err
	}
	h2Spec, err := netsim.SpecFromTrace(h2Trace, regions)
	if err != nil {
		return nil, err
	}

	test := &params.Test{
		TestID:          "protocol-study",
		WebpageNum:      2,
		TestDescription: fmt.Sprintf("HTTP/1.1 vs HTTP/2 page loading over %s", profile.Name),
		ParticipantNum:  workers,
		Questions:       []string{QuestionReadiness},
		Webpages: []params.Webpage{
			{WebPath: "article-h1", WebPageLoad: h1Spec, WebMainFile: "index.html", WebDescription: "replayed http/1.1 load"},
			{WebPath: "article-h2", WebPageLoad: h2Spec, WebMainFile: "index.html", WebDescription: "replayed http/2.0 load"},
		},
	}
	pool, err := crowd.TrustedCrowd(workers*2, rng)
	if err != nil {
		return nil, err
	}
	engine, err := core.NewEngine()
	if err != nil {
		return nil, err
	}
	outcome, err := engine.RunStudy(&core.Study{
		Params: test,
		Sites: map[string]*webgen.Site{
			"article-h1": site,
			"article-h2": site.Clone(),
		},
		Answer:      extension.AnswerReadiness(),
		Pool:        pool,
		TrustedOnly: true,
	}, rng)
	if err != nil {
		return nil, err
	}

	res := &ProtocolStudyResult{
		Profile:        profile,
		Workers:        workers,
		H1OnLoadMillis: h1Trace.OnLoadMillis,
		H2OnLoadMillis: h2Trace.OnLoadMillis,
		Outcome:        outcome,
	}
	for _, sess := range outcome.Sessions {
		for _, r := range sess.Responses {
			res.Raw.Add(r.Choice)
		}
	}
	for _, sess := range core.KeptSessions(outcome) {
		for _, r := range sess.Responses {
			res.Filtered.Add(r.Choice)
		}
	}
	return res, nil
}

// cardDeps lists the card images plus the stylesheet as the card grid's
// dependencies.
func cardDeps(site *webgen.Site) []string {
	deps := []string{"css/news.css"}
	for _, p := range site.Paths() {
		if strings.HasPrefix(p, "img/card-") {
			deps = append(deps, p)
		}
	}
	return deps
}

// FormatProtocolStudy renders the comparison.
func FormatProtocolStudy(res *ProtocolStudyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — HTTP/1.1 vs HTTP/2 via record-and-replay (profile %s, %d workers)\n",
		res.Profile.Name, res.Workers)
	fmt.Fprintf(&b, "  recorded onload: http/1.1 %.0f ms, http/2.0 %.0f ms (%.2fx)\n",
		res.H1OnLoadMillis, res.H2OnLoadMillis, res.H1OnLoadMillis/math.Max(res.H2OnLoadMillis, 1))
	rows := []struct {
		name string
		t    questionnaire.Tally
	}{{"raw", res.Raw}, {"quality control", res.Filtered}}
	for _, row := range rows {
		if row.t.Total() == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-16s http/1.1 %5.1f%%   Same %5.1f%%   http/2.0 %5.1f%%  (n=%d)\n",
			row.name,
			100*row.t.Proportion(questionnaire.ChoiceLeft),
			100*row.t.Proportion(questionnaire.ChoiceSame),
			100*row.t.Proportion(questionnaire.ChoiceRight),
			row.t.Total())
	}
	return b.String()
}
