package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"kaleidoscope/internal/abtest"
	"kaleidoscope/internal/core"
	"kaleidoscope/internal/crowd"
	"kaleidoscope/internal/extension"
	"kaleidoscope/internal/params"
	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/stats"
	"kaleidoscope/internal/webgen"
)

// ExpandButtonConfig parameterizes the paper's §IV-B study: the research-
// group landing page's Expand button, tested via Kaleidoscope and via
// classic A/B testing over the same two versions (Fig. 6).
type ExpandButtonConfig struct {
	// KaleidoscopeWorkers is the crowd cohort size; default 100.
	KaleidoscopeWorkers int
	// AB is the A/B campaign; default abtest.PaperConfig().
	AB abtest.Config
	// PageSeed holds page content constant across versions.
	PageSeed int64
}

func (c ExpandButtonConfig) withDefaults() ExpandButtonConfig {
	if c.KaleidoscopeWorkers == 0 {
		c.KaleidoscopeWorkers = 100
	}
	if c.AB == (abtest.Config{}) {
		c.AB = abtest.PaperConfig()
	}
	if c.PageSeed == 0 {
		c.PageSeed = 7
	}
	return c
}

// The three questions of the paper's §IV-B (Fig. 8).
const (
	QuestionAppeal     = "Which webpage is graphically more appealing?"
	QuestionButtonLook = "Which version of the 'Expand' button looks better?"
	QuestionVisibility = "Which version of the 'Expand' button is more visible?"
)

// ExpandButtonResult carries Figs. 7(a), 7(b), 7(c), and 8.
type ExpandButtonResult struct {
	Config ExpandButtonConfig

	// Fig. 7(a): recruitment speed.
	KaleidoscopeDuration time.Duration
	ABDuration           time.Duration
	Speedup              float64
	KaleidoscopeArrivals []crowd.ArrivalPoint
	ABArrivals           []abtest.ArrivalPoint

	// Fig. 7(b): A/B campaign outcome.
	ABCounts       abtest.Counts
	ABSignificance stats.TwoProportionResult
	ABCurveA       []abtest.CumulativePoint
	ABCurveB       []abtest.CumulativePoint
	// ABSignificantFraction is the share of replicate 100-visitor A/B
	// campaigns reaching two-sided significance at 95% — the paper's
	// point is that this is rarely achieved at the observed effect size.
	ABReplicates          int
	ABSignificantFraction float64

	// Fig. 7(c) + Fig. 8: Kaleidoscope tallies per question (A original
	// page is the LEFT side; B variant is the RIGHT side).
	Tallies map[string]questionnaire.Tally
	// VisibilitySignificance is question C's two-proportion test.
	VisibilitySignificance stats.TwoProportionResult

	// Outcome exposes the Kaleidoscope run.
	Outcome *core.Outcome
}

// RunExpandButton runs both pipelines over the same page versions.
func RunExpandButton(cfg ExpandButtonConfig, rng *rand.Rand) (*ExpandButtonResult, error) {
	if rng == nil {
		return nil, errors.New("experiments: nil random source")
	}
	cfg = cfg.withDefaults()
	res := &ExpandButtonResult{Config: cfg, Tallies: make(map[string]questionnaire.Tally)}

	// The two versions of Fig. 6.
	groupCfg := webgen.GroupConfig{Seed: cfg.PageSeed}
	siteA, siteB := webgen.GroupPageVersions(groupCfg)

	// --- Kaleidoscope arm ---
	test := &params.Test{
		TestID:          "expand-button",
		WebpageNum:      2,
		TestDescription: "Evaluate a new 'Expand' button design on a research-group landing page",
		ParticipantNum:  cfg.KaleidoscopeWorkers,
		Questions:       []string{QuestionAppeal, QuestionButtonLook, QuestionVisibility},
		Webpages: []params.Webpage{
			{WebPath: "group-a", WebPageLoad: params.PageLoadSpec{UniformMillis: 3000}, WebMainFile: "index.html", WebDescription: "original"},
			{WebPath: "group-b", WebPageLoad: params.PageLoadSpec{UniformMillis: 3000}, WebMainFile: "index.html", WebDescription: "variant"},
		},
	}
	pool, err := crowd.TrustedCrowd(cfg.KaleidoscopeWorkers*2, rng)
	if err != nil {
		return nil, err
	}
	answer := extension.AnswerByQuestion(map[string]extension.AnswerFunc{
		"graphically more appealing": extension.AnswerOverallAppeal(),
		"looks better":               extension.AnswerButtonLooks(),
		"more visible":               extension.AnswerButtonVisibility(),
	}, extension.AnswerOverallAppeal())
	study := &core.Study{
		Params:      test,
		Sites:       map[string]*webgen.Site{"group-a": siteA, "group-b": siteB},
		Answer:      answer,
		Pool:        pool,
		PaymentUSD:  0.10,
		TrustedOnly: true,
	}
	engine, err := core.NewEngine()
	if err != nil {
		return nil, err
	}
	outcome, err := engine.RunStudy(study, rng)
	if err != nil {
		return nil, err
	}
	res.Outcome = outcome
	res.KaleidoscopeDuration = outcome.Recruitment.Completed
	res.KaleidoscopeArrivals = outcome.Recruitment.ArrivalCurve()

	// Per-question tallies over the single real pair (pair-0-1).
	questionIDs := map[string]string{
		"q0": QuestionAppeal,
		"q1": QuestionButtonLook,
		"q2": QuestionVisibility,
	}
	for _, sess := range outcome.Sessions {
		for _, r := range sess.Responses {
			q, ok := questionIDs[r.QuestionID]
			if !ok {
				continue
			}
			t := res.Tallies[q]
			t.Add(r.Choice)
			res.Tallies[q] = t
		}
	}
	visTally := res.Tallies[QuestionVisibility]
	res.VisibilitySignificance, err = core.PreferenceSignificance(visTally)
	if err != nil {
		return nil, err
	}

	// --- A/B arm ---
	ab, err := abtest.Run(cfg.AB, rng)
	if err != nil {
		return nil, err
	}
	res.ABDuration = ab.Duration
	res.ABArrivals = ab.ArrivalCurve()
	res.ABCounts = ab.Counts()
	res.ABSignificance, err = ab.Significance()
	if err != nil {
		return nil, err
	}
	res.ABCurveA = ab.ClickCurve(abtest.VersionA)
	res.ABCurveB = ab.ClickCurve(abtest.VersionB)

	// Replicate campaigns: how often does n=100 reach significance at all?
	const replicates = 25
	significant := 0
	for i := 0; i < replicates; i++ {
		rep, err := abtest.Run(cfg.AB, rng)
		if err != nil {
			return nil, err
		}
		sig, err := rep.Significance()
		if err != nil {
			return nil, err
		}
		if sig.Significant(0.05) {
			significant++
		}
	}
	res.ABReplicates = replicates
	res.ABSignificantFraction = float64(significant) / float64(replicates)

	res.Speedup = float64(res.ABDuration) / float64(res.KaleidoscopeDuration)
	return res, nil
}

// FormatFig7a renders the recruitment comparison.
func FormatFig7a(res *ExpandButtonResult) string {
	var b strings.Builder
	b.WriteString("Fig. 7(a) — time to recruit the full cohort\n")
	fmt.Fprintf(&b, "  Kaleidoscope: %d testers in %s\n",
		len(res.KaleidoscopeArrivals), res.KaleidoscopeDuration.Round(time.Minute))
	fmt.Fprintf(&b, "  A/B testing:  %d visitors in %s\n",
		len(res.ABArrivals), res.ABDuration.Round(time.Hour))
	fmt.Fprintf(&b, "  speedup: %.1fx (paper reports ~12x)\n", res.Speedup)
	// Milestone rows every 25 testers.
	b.WriteString("  cumulative testers  kaleidoscope      a/b\n")
	for _, milestone := range []int{25, 50, 75, 100} {
		k := elapsedAt(res.KaleidoscopeArrivals, milestone)
		a := abElapsedAt(res.ABArrivals, milestone)
		if k < 0 || a < 0 {
			continue
		}
		fmt.Fprintf(&b, "  %18d  %12s  %7.1fd\n",
			milestone, time.Duration(k).Round(time.Minute), time.Duration(a).Hours()/24)
	}
	return b.String()
}

func elapsedAt(curve []crowd.ArrivalPoint, count int) int64 {
	for _, p := range curve {
		if p.Count >= count {
			return int64(p.Elapsed)
		}
	}
	return -1
}

func abElapsedAt(curve []abtest.ArrivalPoint, count int) int64 {
	for _, p := range curve {
		if p.Count >= count {
			return int64(p.Elapsed)
		}
	}
	return -1
}

// FormatFig7b renders the A/B campaign result.
func FormatFig7b(res *ExpandButtonResult) string {
	var b strings.Builder
	c := res.ABCounts
	b.WriteString("Fig. 7(b) — A/B testing result\n")
	fmt.Fprintf(&b, "  original (A): %d visitors, %d clicks (paper: 51 visitors, 3 clicks)\n", c.VisitorsA, c.ClicksA)
	fmt.Fprintf(&b, "  variant  (B): %d visitors, %d clicks (paper: 49 visitors, 6 clicks)\n", c.VisitorsB, c.ClicksB)
	fmt.Fprintf(&b, "  one-sided P = %.3f, two-sided P = %.3f (paper: one-sided 0.133)\n",
		res.ABSignificance.PValueOneSided, res.ABSignificance.PValue)
	fmt.Fprintf(&b, "  significant at 95%% (two-sided)? %v; across %d replicate campaigns only %.0f%% reach significance\n",
		res.ABSignificance.Significant(0.05), res.ABReplicates, res.ABSignificantFraction*100)
	return b.String()
}

// FormatFig7c renders the Kaleidoscope question-C result.
func FormatFig7c(res *ExpandButtonResult) string {
	var b strings.Builder
	t := res.Tallies[QuestionVisibility]
	b.WriteString("Fig. 7(c) — Kaleidoscope result for question C (button visibility)\n")
	fmt.Fprintf(&b, "  variant more visible: %d; original more visible: %d; same: %d\n", t.Right, t.Left, t.Same)
	fmt.Fprintf(&b, "  (paper: 46 variant, 14 original)\n")
	fmt.Fprintf(&b, "  two-sided P = %.3g — significant at 99%%? %v (paper: 6.8e-8, yes)\n",
		res.VisibilitySignificance.PValue, res.VisibilitySignificance.Significant(0.01))
	return b.String()
}

// FormatFig8 renders all three questions' response splits.
func FormatFig8(res *ExpandButtonResult) string {
	var b strings.Builder
	b.WriteString("Fig. 8 — responses to all questions (Kaleidoscope)\n")
	fmt.Fprintf(&b, "  %-52s %9s %6s %9s\n", "question", "original", "same", "variant")
	for _, q := range []string{QuestionAppeal, QuestionButtonLook, QuestionVisibility} {
		t := res.Tallies[q]
		total := t.Total()
		if total == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-52s %8.0f%% %5.0f%% %8.0f%%\n",
			q,
			100*t.Proportion(questionnaire.ChoiceLeft),
			100*t.Proportion(questionnaire.ChoiceSame),
			100*t.Proportion(questionnaire.ChoiceRight))
	}
	b.WriteString("  (paper: A ~50% same; B same 45% edges variant 42%; C variant 46 vs original 14)\n")
	return b.String()
}
