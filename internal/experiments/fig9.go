package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"kaleidoscope/internal/core"
	"kaleidoscope/internal/crowd"
	"kaleidoscope/internal/extension"
	"kaleidoscope/internal/params"
	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/stats"
	"kaleidoscope/internal/webgen"
)

// Fig9Config parameterizes the page-load (uPLT) study of §IV-C: two
// versions of the wiki article with identical above-the-fold completion
// times (both finish at FullMillis) but opposite content orders — version
// A shows the navigation bar first, version B the main text first.
type Fig9Config struct {
	// Workers is the crowd cohort size; default 100.
	Workers int
	// EarlyMillis/FullMillis are the staggered reveal times; defaults
	// 2000/4000 as in the paper.
	EarlyMillis int
	FullMillis  int
	// PageSeed holds article content constant.
	PageSeed int64
}

func (c Fig9Config) withDefaults() Fig9Config {
	if c.Workers == 0 {
		c.Workers = 100
	}
	if c.EarlyMillis == 0 {
		c.EarlyMillis = 2000
	}
	if c.FullMillis == 0 {
		c.FullMillis = 4000
	}
	if c.PageSeed == 0 {
		c.PageSeed = 42
	}
	return c
}

// QuestionReadiness is the paper's uPLT comparison question.
const QuestionReadiness = "Which version of the webpage seems ready to use first?"

// Fig9Result carries the study's raw and quality-controlled splits.
// Version A (nav first) is the LEFT side; version B (text first) the
// RIGHT.
type Fig9Result struct {
	Config Fig9Config
	// Raw and Filtered are the response tallies before and after QC.
	Raw      questionnaire.Tally
	Filtered questionnaire.Tally
	// Comments are the free-text responses collected.
	Comments []string
	Outcome  *core.Outcome
}

// RunFig9 executes the uPLT study.
func RunFig9(cfg Fig9Config, rng *rand.Rand) (*Fig9Result, error) {
	if rng == nil {
		return nil, errors.New("experiments: nil random source")
	}
	cfg = cfg.withDefaults()
	if cfg.EarlyMillis >= cfg.FullMillis {
		return nil, errors.New("experiments: early reveal must precede full reveal")
	}

	site := webgen.WikiArticle(webgen.WikiConfig{Seed: cfg.PageSeed})
	specA := params.PageLoadSpec{Schedule: []params.SelectorTime{
		{Selector: "#navbar", Millis: cfg.EarlyMillis},
		{Selector: "#content", Millis: cfg.FullMillis},
		{Selector: "#infobox", Millis: cfg.FullMillis},
	}}
	specB := params.PageLoadSpec{Schedule: []params.SelectorTime{
		{Selector: "#navbar", Millis: cfg.FullMillis},
		{Selector: "#content", Millis: cfg.EarlyMillis},
		{Selector: "#infobox", Millis: cfg.FullMillis},
	}}
	test := &params.Test{
		TestID:          "uplt-study",
		WebpageNum:      2,
		TestDescription: "Which parts of a webpage matter for user-perceived page load time?",
		ParticipantNum:  cfg.Workers,
		Questions:       []string{QuestionReadiness},
		Webpages: []params.Webpage{
			{WebPath: "wiki-nav-first", WebPageLoad: specA, WebMainFile: "index.html", WebDescription: "navigation bar loads first"},
			{WebPath: "wiki-text-first", WebPageLoad: specB, WebMainFile: "index.html", WebDescription: "main text loads first"},
		},
	}
	pool, err := crowd.TrustedCrowd(cfg.Workers*2, rng)
	if err != nil {
		return nil, err
	}
	study := &core.Study{
		Params: test,
		Sites: map[string]*webgen.Site{
			"wiki-nav-first":  site,
			"wiki-text-first": site.Clone(),
		},
		Answer:      extension.AnswerReadiness(),
		Pool:        pool,
		PaymentUSD:  0.10,
		TrustedOnly: true,
	}
	engine, err := core.NewEngine()
	if err != nil {
		return nil, err
	}
	outcome, err := engine.RunStudy(study, rng)
	if err != nil {
		return nil, err
	}

	res := &Fig9Result{Config: cfg, Outcome: outcome}
	for _, sess := range outcome.Sessions {
		for _, r := range sess.Responses {
			res.Raw.Add(r.Choice)
			if r.Comment != "" {
				res.Comments = append(res.Comments, r.Comment)
			}
		}
	}
	for _, sess := range core.KeptSessions(outcome) {
		for _, r := range sess.Responses {
			res.Filtered.Add(r.Choice)
		}
	}
	return res, nil
}

// FormatFig9 renders the result the way the paper's Fig. 9 reads.
func FormatFig9(res *Fig9Result) string {
	var b strings.Builder
	b.WriteString("Fig. 9 — which version seems ready to use first?\n")
	b.WriteString("  (A = navigation bar first, B = main text first; ATF times identical)\n")
	rows := []struct {
		name string
		t    questionnaire.Tally
	}{
		{"Kaleidoscope (raw)", res.Raw},
		{"Kaleidoscope (quality control)", res.Filtered},
	}
	for _, row := range rows {
		total := row.t.Total()
		if total == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-32s A %5.1f%%   Same %5.1f%%   B %5.1f%%  (n=%d",
			row.name,
			100*row.t.Proportion(questionnaire.ChoiceLeft),
			100*row.t.Proportion(questionnaire.ChoiceSame),
			100*row.t.Proportion(questionnaire.ChoiceRight),
			total)
		if lo, hi, err := stats.WilsonInterval(row.t.Right, total, 1.96); err == nil {
			fmt.Fprintf(&b, ", B 95%% CI %.0f-%.0f%%", lo*100, hi*100)
		}
		b.WriteString(")\n")
	}
	b.WriteString("  (paper: raw 46% B; quality control 54% B — text-first wins, stronger after QC)\n")
	if len(res.Comments) > 0 {
		b.WriteString("  sample comments:\n")
		max := len(res.Comments)
		if max > 3 {
			max = 3
		}
		for _, c := range res.Comments[:max] {
			fmt.Fprintf(&b, "    %q\n", c)
		}
	}
	return b.String()
}
