// Package replica turns the store's single-machine WAL into a replicated
// log: a primary ships every locally durable WAL frame to a warm-standby
// follower, the follower appends the identical bytes to its own collection
// logs (replaying them through the store's normal Open/repair path at
// promotion time), and an epoch number fences a deposed primary the moment
// a follower is promoted past it.
//
// The design leans on two properties the store already guarantees. First,
// WAL replay is idempotent — records are last-write-wins upserts keyed by
// id — so replication only has to be at-least-once: duplicated frames,
// frames racing a snapshot, or a re-sent tail after a reconnect all
// converge to the same documents. Second, the follower's log is repaired by
// the same scanWAL/recoverWAL machinery as a local crash, so a request torn
// mid-apply on the standby is indistinguishable from a torn local append
// and heals identically.
//
// Topology and failure model: one primary, one follower, an unreliable
// link (the tests drive it through netsim.ChaosTransport). The primary
// buffers unacked frames; a follower that falls behind the buffer — or
// joins empty — is caught up with a snapshot (the raw on-disk WAL files at
// a sequence watermark) followed by the buffered tail. Acknowledgement
// policy is configurable: AckLocal acknowledges an upload once it is
// locally fsynced and queued for shipping; AckFollower withholds the ack
// until the follower has the frames too, making an acked upload survive
// the loss of either machine.
//
// Fencing: every frame and every replication request carries the primary's
// epoch. A follower rejects anything minted in an epoch lower than its own
// with HTTP 409, and promotion bumps the follower's epoch — durably, before
// promotion returns — so a deposed primary's next ship fails closed and
// Primary marks itself fenced.
package replica

import (
	"errors"
	"time"
)

// HTTP surface the follower exposes (mounted by Node, consumed by Primary).
const (
	PathFrames   = "/repl/frames"
	PathSnapshot = "/repl/snapshot"
	PathStatus   = "/repl/status"

	// HeaderEpoch carries the sender's epoch on requests and the
	// follower's current epoch on responses.
	HeaderEpoch = "X-Kscope-Repl-Epoch"
	// HeaderSeq carries the snapshot watermark on snapshot requests.
	HeaderSeq = "X-Kscope-Repl-Seq"
)

// AckMode selects when a shipped write is acknowledged to the caller.
type AckMode int

const (
	// AckLocal acknowledges once the write is locally durable and queued
	// for shipping; a background sender drains the queue. An upload acked
	// moments before the primary dies may not have reached the follower.
	AckLocal AckMode = iota
	// AckFollower withholds the acknowledgement until the follower has
	// accepted the frames: an acked upload survives losing either node.
	AckFollower
)

func (m AckMode) String() string {
	if m == AckFollower {
		return "follower"
	}
	return "local"
}

// ParseAckMode maps the flag spelling ("local", "follower") to an AckMode.
func ParseAckMode(s string) (AckMode, error) {
	switch s {
	case "local":
		return AckLocal, nil
	case "follower":
		return AckFollower, nil
	default:
		return AckLocal, errors.New(`replica: ack mode must be "local" or "follower"`)
	}
}

// Errors surfaced by the primary's Ship path.
var (
	// ErrFenced means the follower reported a higher epoch: this primary
	// has been deposed and must stop acknowledging writes permanently.
	ErrFenced = errors.New("replica: primary fenced by higher epoch")
	// ErrStaleEpoch is the decoded form of the follower's 409: the request
	// carried an epoch below the follower's.
	ErrStaleEpoch = errors.New("replica: stale epoch rejected by follower")
	// ErrLagging means an AckFollower write timed out waiting for the
	// replication stream to become healthy (catch-up or reconnect in
	// progress). The write is locally durable but unacknowledged.
	ErrLagging = errors.New("replica: follower unavailable or catching up")
)

// Defaults for Primary tuning knobs.
const (
	// DefaultShipTimeout bounds how long an AckFollower write waits for
	// the stream to be healthy and the send to complete.
	DefaultShipTimeout = 5 * time.Second
	// DefaultMaxBuffer is the pending-frame cap; beyond it the oldest
	// unacked frames are dropped and the follower will need a snapshot.
	DefaultMaxBuffer = 65536
	// DefaultRetryInterval paces reconnect/catch-up attempts.
	DefaultRetryInterval = 250 * time.Millisecond
)
