package replica

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"kaleidoscope/internal/obs"
	"kaleidoscope/internal/store"
)

// primaryState is where the replication stream stands.
type primaryState int

const (
	// stateConnecting: no healthy stream; the background loop is probing
	// the follower (initial connect, or after a send failure).
	stateConnecting primaryState = iota
	// stateCatchup: the follower is too far behind the buffer (or joined
	// fresh) and a snapshot transfer is in flight.
	stateCatchup
	// stateSteady: the follower is within the buffered tail; frames ship
	// directly.
	stateSteady
	// stateFenced: the follower reported a higher epoch. Terminal — this
	// primary has been deposed and must never acknowledge another write.
	stateFenced
)

func (s primaryState) String() string {
	switch s {
	case stateCatchup:
		return "catchup"
	case stateSteady:
		return "steady"
	case stateFenced:
		return "fenced"
	default:
		return "connecting"
	}
}

// pendingFrame is one rendered outer line awaiting follower ack.
type pendingFrame struct {
	seq  uint64
	line []byte // full #r1 line, newline included
}

// PrimaryConfig configures NewPrimary.
type PrimaryConfig struct {
	// FollowerURL is the base URL of the follower's replication surface
	// (Node or Follower mounted at /).
	FollowerURL string
	// Epoch is the term this primary mints frames in.
	Epoch uint64
	// Mode selects the acknowledgement policy (AckLocal default).
	Mode AckMode
	// Transport lets tests route the replication link through
	// netsim.ChaosTransport (http.DefaultTransport when nil).
	Transport http.RoundTripper
	// ShipTimeout bounds an AckFollower write's wait for a healthy stream
	// plus the send itself (DefaultShipTimeout when zero).
	ShipTimeout time.Duration
	// MaxBuffer caps buffered unacked frames; overflow drops the oldest
	// and forces the follower through snapshot catch-up
	// (DefaultMaxBuffer when zero).
	MaxBuffer int
	// RetryInterval paces the background reconnect/catch-up loop
	// (DefaultRetryInterval when zero).
	RetryInterval time.Duration
	// Registry receives kscope_repl_* primary metrics (optional).
	Registry *obs.Registry
}

// Primary is the shipping half of the replicated backend: it implements
// store.Shipper, assigns each locally durable WAL frame a global sequence
// number, and delivers the stream to the follower — tail frames when the
// follower is close, snapshot + tail when it is not.
type Primary struct {
	cfg   PrimaryConfig
	httpc *http.Client

	mu       sync.Mutex
	db       *store.DB
	state    primaryState
	stateCh  chan struct{} // closed+replaced on every state or ack change
	seq      uint64        // last assigned sequence number
	floor    uint64        // highest seq NOT in the buffer (dropped or pre-bind)
	acked    uint64        // highest follower-acked sequence number
	buffer   []pendingFrame
	bufBytes int64
	lastErr  error

	// sendMu serializes frame POSTs, which is also what turns concurrent
	// AckFollower writers into a natural group commit: the first sender
	// ships everything pending, the rest find their seq already acked.
	sendMu sync.Mutex

	kickCh   chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	framesShipped *obs.Counter
	bytesShipped  *obs.Counter
	snapshotsSent *obs.Counter
	sendErrors    *obs.Counter
}

// NewPrimary builds a primary shipping to cfg.FollowerURL. The typical
// wiring order is: p := NewPrimary(cfg); db, err :=
// store.OpenBackend(store.Replicated(dir, p), ...); p.Bind(db). Writes
// must not start before Bind.
func NewPrimary(cfg PrimaryConfig) (*Primary, error) {
	if cfg.FollowerURL == "" {
		return nil, fmt.Errorf("replica: primary needs a follower URL")
	}
	if cfg.ShipTimeout <= 0 {
		cfg.ShipTimeout = DefaultShipTimeout
	}
	if cfg.MaxBuffer <= 0 {
		cfg.MaxBuffer = DefaultMaxBuffer
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = DefaultRetryInterval
	}
	p := &Primary{
		cfg:     cfg,
		httpc:   &http.Client{Transport: cfg.Transport, Timeout: cfg.ShipTimeout},
		state:   stateConnecting,
		stateCh: make(chan struct{}),
		kickCh:  make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	if r := cfg.Registry; r != nil {
		p.framesShipped = r.Counter("kscope_repl_frames_shipped")
		p.bytesShipped = r.Counter("kscope_repl_bytes_shipped")
		p.snapshotsSent = r.Counter("kscope_repl_snapshots_sent")
		p.sendErrors = r.Counter("kscope_repl_send_errors")
		r.RegisterGauge("kscope_repl_epoch", func() float64 { return float64(cfg.Epoch) })
		r.RegisterGauge("kscope_repl_lag_frames", func() float64 {
			lagF, _ := p.Lag()
			return float64(lagF)
		})
		r.RegisterGauge("kscope_repl_lag_bytes", func() float64 {
			_, lagB := p.Lag()
			return float64(lagB)
		})
		r.RegisterGauge("kscope_repl_fenced", func() float64 {
			if p.Fenced() {
				return 1
			}
			return 0
		})
	}
	return p, nil
}

// Bind attaches the opened database (the snapshot source) and starts the
// background replication loop. A database that already holds data is
// represented as sequence 1, so a fresh follower (acked 0) is always sent
// a snapshot rather than a tail that could not contain the history.
func (p *Primary) Bind(db *store.DB) {
	p.mu.Lock()
	p.db = db
	for _, name := range db.CollectionNames() {
		if db.Collection(name).Count() > 0 {
			p.seq, p.floor = 1, 1
			break
		}
	}
	p.mu.Unlock()
	go p.run()
	p.kick()
}

// Epoch returns the term this primary mints frames in.
func (p *Primary) Epoch() uint64 { return p.cfg.Epoch }

// Mode returns the acknowledgement policy.
func (p *Primary) Mode() AckMode { return p.cfg.Mode }

// Fenced reports whether the follower has deposed this primary.
func (p *Primary) Fenced() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state == stateFenced
}

// State names the stream state ("connecting", "catchup", "steady",
// "fenced") for /readyz and logs.
func (p *Primary) State() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state.String()
}

// Lag reports how far the follower trails: unacked frames and their
// buffered bytes.
func (p *Primary) Lag() (frames uint64, bytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seq - p.acked, p.bufBytes
}

// Close stops the background loop. It does not fence the primary.
func (p *Primary) Close() {
	p.stopOnce.Do(func() { close(p.done) })
}

// Ship implements store.Shipper. It is called with the owning collection's
// lock held, after the frames are locally durable: it stamps each framed
// line with the epoch and the next sequence numbers, buffers the rendered
// outer lines, and — under AckFollower — synchronously drives them to the
// follower, failing the write if the follower cannot be reached in time.
func (p *Primary) Ship(collection string, frames []byte, records int) error {
	p.mu.Lock()
	if p.state == stateFenced {
		p.mu.Unlock()
		return ErrFenced
	}
	for rest := frames; len(rest) > 0; {
		var line []byte
		if nl := bytes.IndexByte(rest, '\n'); nl >= 0 {
			line, rest = rest[:nl], rest[nl+1:]
		} else {
			line, rest = rest, nil
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		p.seq++
		var out bytes.Buffer
		appendFrame(&out, p.cfg.Epoch, p.seq, collection, line)
		p.buffer = append(p.buffer, pendingFrame{seq: p.seq, line: out.Bytes()})
		p.bufBytes += int64(out.Len())
	}
	last := p.seq
	p.trimOverflowLocked()
	mode := p.cfg.Mode
	p.mu.Unlock()
	if mode == AckLocal {
		p.kick()
		return nil
	}
	return p.shipSync(last)
}

// shipSync blocks until seq last is follower-acked, the stream fences, or
// the ship timeout expires. While the stream is steady it drives the send
// itself; while connecting or catching up it waits for the background loop
// to restore the stream.
func (p *Primary) shipSync(last uint64) error {
	deadline := time.Now().Add(p.cfg.ShipTimeout)
	for {
		p.mu.Lock()
		switch {
		case p.state == stateFenced:
			p.mu.Unlock()
			return ErrFenced
		case p.acked >= last:
			p.mu.Unlock()
			return nil
		case p.state == stateSteady:
			p.mu.Unlock()
			if err := p.drain(); err != nil {
				if errors.Is(err, ErrFenced) {
					return err
				}
				// Transient send failure: drain already dropped the stream
				// to connecting, so loop back into the wait branch and let
				// the background loop restore it. One lost POST on a flaky
				// replication link must not fail an upload that still has
				// deadline budget left.
			}
		default:
			ch := p.stateCh
			p.mu.Unlock()
			p.kick()
			wait := time.Until(deadline)
			if wait <= 0 {
				return ErrLagging
			}
			t := time.NewTimer(wait)
			select {
			case <-ch:
				t.Stop()
			case <-t.C:
				return ErrLagging
			}
		}
		if time.Now().After(deadline) {
			return ErrLagging
		}
	}
}

// Barrier blocks until every sequence number assigned so far is
// follower-acked (AckFollower only; AckLocal promises nothing beyond local
// durability and returns immediately). The server uses it before answering
// 409 to a duplicate upload: a record can sit in the local store with its
// replication still unconfirmed — its Ship failed after the local append —
// and acknowledging the duplicate without this barrier would mint an ack
// the follower cannot honor after a failover.
func (p *Primary) Barrier() error {
	if p.cfg.Mode != AckFollower {
		return nil
	}
	p.mu.Lock()
	last := p.seq
	p.mu.Unlock()
	return p.shipSync(last)
}

// drain POSTs every buffered unacked frame to the follower and advances
// the ack watermark from the reply. Serialized by sendMu; a failure drops
// the stream back to connecting (the background loop reconnects) and is
// returned to the caller.
func (p *Primary) drain() error {
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	p.mu.Lock()
	if p.state != stateSteady || p.acked >= p.seq {
		p.mu.Unlock()
		return nil
	}
	var body bytes.Buffer
	n := 0
	for _, fr := range p.buffer {
		if fr.seq > p.acked {
			body.Write(fr.line)
			n++
		}
	}
	p.mu.Unlock()
	reply, status, err := p.post(PathFrames, body.Bytes(), nil)
	if err != nil {
		p.streamDown(err)
		return fmt.Errorf("replica: shipping frames: %w", err)
	}
	if fenced := p.checkReply(reply, status); fenced != nil {
		return fenced
	}
	if status != http.StatusOK {
		err := fmt.Errorf("replica: follower rejected frames: HTTP %d", status)
		p.streamDown(err)
		return err
	}
	p.advanceAcked(reply.Acked)
	if p.framesShipped != nil {
		p.framesShipped.Add(int64(n))
		p.bytesShipped.Add(int64(body.Len()))
	}
	return nil
}

// post sends one replication request with the epoch header (plus extras)
// and decodes the follower's reply when it has one.
func (p *Primary) post(path string, body []byte, extra map[string]string) (statusReply, int, error) {
	req, err := http.NewRequest(http.MethodPost, p.cfg.FollowerURL+path, bytes.NewReader(body))
	if err != nil {
		return statusReply{}, 0, err
	}
	req.Header.Set(HeaderEpoch, strconv.FormatUint(p.cfg.Epoch, 10))
	for k, v := range extra {
		req.Header.Set(k, v)
	}
	resp, err := p.httpc.Do(req)
	if err != nil {
		return statusReply{}, 0, err
	}
	defer resp.Body.Close()
	var reply statusReply
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	_ = json.Unmarshal(data, &reply)
	return reply, resp.StatusCode, nil
}

// checkReply fences the primary when the follower's reply proves a higher
// term exists. Returns nil when the reply is not a fence.
func (p *Primary) checkReply(reply statusReply, status int) error {
	if status == http.StatusConflict || reply.Epoch > p.cfg.Epoch || reply.Promoted {
		p.mu.Lock()
		if p.state != stateFenced {
			p.state = stateFenced
			p.lastErr = ErrStaleEpoch
			p.broadcastLocked()
		}
		p.mu.Unlock()
		return ErrFenced
	}
	return nil
}

// streamDown records a send failure and drops back to connecting.
func (p *Primary) streamDown(err error) {
	if p.sendErrors != nil {
		p.sendErrors.Inc()
	}
	p.mu.Lock()
	if p.state == stateSteady || p.state == stateCatchup {
		p.state = stateConnecting
		p.broadcastLocked()
	}
	p.lastErr = err
	p.mu.Unlock()
	p.kick()
}

// advanceAcked raises the ack watermark and trims acked frames.
func (p *Primary) advanceAcked(acked uint64) {
	p.mu.Lock()
	if acked > p.acked {
		p.acked = acked
		if p.acked > p.floor {
			p.floor = p.acked
		}
		i := 0
		for i < len(p.buffer) && p.buffer[i].seq <= p.acked {
			p.bufBytes -= int64(len(p.buffer[i].line))
			i++
		}
		p.buffer = p.buffer[i:]
		p.broadcastLocked()
	}
	p.mu.Unlock()
}

// trimOverflowLocked enforces the buffer cap by dropping the oldest
// frames; the follower then needs snapshot catch-up to pass the gap.
func (p *Primary) trimOverflowLocked() {
	for len(p.buffer) > p.cfg.MaxBuffer {
		p.bufBytes -= int64(len(p.buffer[0].line))
		p.floor = p.buffer[0].seq
		p.buffer = p.buffer[1:]
	}
}

// broadcastLocked wakes everyone waiting on a state or ack change.
func (p *Primary) broadcastLocked() {
	close(p.stateCh)
	p.stateCh = make(chan struct{})
}

// kick nudges the background loop without blocking.
func (p *Primary) kick() {
	select {
	case p.kickCh <- struct{}{}:
	default:
	}
}

// run is the background loop: reconnect and catch the follower up while
// the stream is down, drain queued frames while it is steady (the
// AckLocal sender). Exits on Close or fencing.
func (p *Primary) run() {
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-p.kickCh:
		case <-timer.C:
		}
		timer.Reset(p.cfg.RetryInterval)
		p.mu.Lock()
		st := p.state
		pending := p.acked < p.seq
		p.mu.Unlock()
		switch st {
		case stateFenced:
			return
		case stateConnecting:
			p.reconnect()
		case stateSteady:
			if pending {
				_ = p.drain()
			}
		}
	}
}

// reconnect probes the follower and restores the stream: straight to
// steady when the follower's ack is inside the buffered tail, through a
// snapshot transfer when it is not.
func (p *Primary) reconnect() {
	req, err := http.NewRequest(http.MethodGet, p.cfg.FollowerURL+PathStatus, nil)
	if err != nil {
		return
	}
	resp, err := p.httpc.Do(req)
	if err != nil {
		p.mu.Lock()
		p.lastErr = err
		p.mu.Unlock()
		return
	}
	var reply statusReply
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if err := json.Unmarshal(data, &reply); err != nil {
		p.mu.Lock()
		p.lastErr = fmt.Errorf("replica: bad status reply: %w", err)
		p.mu.Unlock()
		return
	}
	if p.checkReply(reply, resp.StatusCode) != nil {
		return
	}
	p.mu.Lock()
	if p.state == stateFenced {
		p.mu.Unlock()
		return
	}
	// The follower's acked watermark only means something inside our own
	// (epoch, sequence) stream: a follower still on another primary's
	// epoch reports positions from that stream, and treating them as ours
	// would mark frames shipped that never left this machine. Epoch
	// mismatch therefore always goes through snapshot catch-up, which
	// adopts our epoch and jumps the follower onto our numbering.
	if reply.Epoch == p.cfg.Epoch && reply.Acked >= p.floor {
		// The buffered tail covers the follower; stream directly.
		p.state = stateSteady
		p.broadcastLocked()
		p.mu.Unlock()
		p.advanceAcked(reply.Acked)
		p.kick() // drain whatever queued while down
		return
	}
	p.state = stateCatchup
	p.broadcastLocked()
	p.mu.Unlock()
	p.sendSnapshot()
}

// sendSnapshot ships the raw on-disk WAL files at the current sequence
// watermark. No collection locks are taken: sequence assignment and
// document apply share one lock hold on the primary's write path, so every
// record with seq <= the watermark is already in its file when we read it;
// a torn final line from a concurrent append is skipped by the follower's
// replay, and any newer records the files happen to contain are
// re-delivered by the tail and applied idempotently.
func (p *Primary) sendSnapshot() {
	p.mu.Lock()
	db := p.db
	watermark := p.seq
	p.mu.Unlock()
	if db == nil {
		return
	}
	var body bytes.Buffer
	for _, name := range db.CollectionNames() {
		wal, err := db.SnapshotWAL(name)
		if err != nil {
			p.streamDown(err)
			return
		}
		if wal == nil {
			continue
		}
		appendSnapshotSection(&body, name, wal)
	}
	reply, status, err := p.post(PathSnapshot, body.Bytes(), map[string]string{
		HeaderSeq: strconv.FormatUint(watermark, 10),
	})
	if err != nil {
		p.streamDown(fmt.Errorf("replica: shipping snapshot: %w", err))
		return
	}
	if p.checkReply(reply, status) != nil {
		return
	}
	if status != http.StatusOK {
		p.streamDown(fmt.Errorf("replica: follower rejected snapshot: HTTP %d", status))
		return
	}
	if p.snapshotsSent != nil {
		p.snapshotsSent.Inc()
	}
	p.advanceAcked(reply.Acked)
	p.mu.Lock()
	if p.state == stateCatchup {
		if p.acked >= p.floor {
			p.state = stateSteady
		} else {
			// The buffer overflowed again while the snapshot was in
			// flight; go around once more.
			p.state = stateConnecting
		}
		p.broadcastLocked()
	}
	p.mu.Unlock()
	p.kick()
}

// Probe sends an empty frames request stamped with this primary's epoch —
// a write-free way to ask "would the follower still take my frames?". A
// fenced primary gets ErrStaleEpoch, which is exactly what the failover
// test uses to prove the fence holds.
func (p *Primary) Probe() error {
	reply, status, err := p.post(PathFrames, nil, nil)
	if err != nil {
		return err
	}
	if fenced := p.checkReply(reply, status); fenced != nil {
		return ErrStaleEpoch
	}
	if status != http.StatusOK {
		return fmt.Errorf("replica: probe rejected: HTTP %d", status)
	}
	return nil
}

// LastErr returns the most recent stream error (nil when healthy).
func (p *Primary) LastErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastErr
}
