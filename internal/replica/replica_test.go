package replica

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"kaleidoscope/internal/store"
)

// openPrimary wires the standard topology: a follower serving from fdir, a
// primary persisting to pdir and shipping to it.
func openPrimary(t *testing.T, pdir string, followerURL string, cfg PrimaryConfig) (*store.DB, *Primary) {
	t.Helper()
	cfg.FollowerURL = followerURL
	if cfg.RetryInterval == 0 {
		cfg.RetryInterval = 10 * time.Millisecond
	}
	if cfg.ShipTimeout == 0 {
		cfg.ShipTimeout = 5 * time.Second
	}
	p, err := NewPrimary(cfg)
	if err != nil {
		t.Fatalf("NewPrimary: %v", err)
	}
	db, err := store.OpenBackend(store.Replicated(pdir, p), store.WithSyncPolicy(store.SyncAlways))
	if err != nil {
		t.Fatalf("OpenBackend: %v", err)
	}
	p.Bind(db)
	t.Cleanup(func() { p.Close(); db.Close() })
	return db, p
}

func newFollower(t *testing.T, dir string) (*Follower, *httptest.Server) {
	t.Helper()
	f, err := NewFollower(FollowerConfig{Dir: dir})
	if err != nil {
		t.Fatalf("NewFollower: %v", err)
	}
	ts := httptest.NewServer(f)
	t.Cleanup(ts.Close)
	return f, ts
}

// docsOf snapshots a collection's documents by id.
func docsOf(t *testing.T, db *store.DB, coll string) map[string]store.Document {
	t.Helper()
	out := make(map[string]store.Document)
	for _, d := range db.Collection(coll).Find(nil) {
		out[d.ID()] = d
	}
	return out
}

func TestStreamReplicationAndPromote(t *testing.T) {
	f, ts := newFollower(t, t.TempDir())
	db, p := openPrimary(t, t.TempDir(), ts.URL, PrimaryConfig{Epoch: 1, Mode: AckFollower})

	sessions := db.Collection("sessions")
	for i := 0; i < 25; i++ {
		if _, err := sessions.Insert(store.Document{"_id": fmt.Sprintf("s-%d", i), "n": i}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if _, err := db.Collection("tests").Insert(store.Document{"_id": "t1", "name": "demo"}); err != nil {
		t.Fatalf("insert test doc: %v", err)
	}
	if err := sessions.Delete("s-3"); err != nil {
		t.Fatalf("delete: %v", err)
	}

	// AckFollower: by the time the writes returned, the follower has them.
	if got, want := f.AckedSeq(), uint64(27); got != want {
		t.Fatalf("follower acked seq = %d, want %d", got, want)
	}
	lagF, lagB := p.Lag()
	if lagF != 0 || lagB != 0 {
		t.Fatalf("lag = %d frames / %d bytes, want 0/0", lagF, lagB)
	}

	promoted, epoch, err := f.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	defer promoted.Close()
	if epoch != 2 {
		t.Fatalf("promoted epoch = %d, want 2", epoch)
	}
	if got, want := docsOf(t, promoted, "sessions"), docsOf(t, db, "sessions"); !reflect.DeepEqual(got, want) {
		t.Fatalf("promoted sessions diverge:\n got %v\nwant %v", got, want)
	}
	if got, want := docsOf(t, promoted, "tests"), docsOf(t, db, "tests"); !reflect.DeepEqual(got, want) {
		t.Fatalf("promoted tests diverge:\n got %v\nwant %v", got, want)
	}
	if _, ok := docsOf(t, promoted, "sessions")["s-3"]; ok {
		t.Fatalf("deleted document survived replication")
	}
}

func TestAckLocalDrainsInBackground(t *testing.T) {
	f, ts := newFollower(t, t.TempDir())
	db, _ := openPrimary(t, t.TempDir(), ts.URL, PrimaryConfig{Epoch: 1, Mode: AckLocal})

	for i := 0; i < 10; i++ {
		if _, err := db.Collection("sessions").Insert(store.Document{"_id": fmt.Sprintf("s-%d", i)}); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.AckedSeq() < 10 {
		if time.Now().After(deadline) {
			t.Fatalf("background sender never drained: acked %d", f.AckedSeq())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSnapshotCatchupForFreshFollower(t *testing.T) {
	pdir := t.TempDir()
	// Data written before replication existed (plain dir backend).
	seed, err := store.Open(pdir, store.WithSyncPolicy(store.SyncAlways))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 40; i++ {
		if _, err := seed.Collection("sessions").Insert(store.Document{"_id": fmt.Sprintf("old-%d", i)}); err != nil {
			t.Fatalf("seed insert: %v", err)
		}
	}
	seed.Close()

	f, ts := newFollower(t, t.TempDir())
	db, p := openPrimary(t, pdir, ts.URL, PrimaryConfig{Epoch: 1, Mode: AckFollower})

	// A fresh follower (acked 0) against a primary with history must be
	// caught up by snapshot, not by a tail that cannot contain it.
	if _, err := db.Collection("sessions").Insert(store.Document{"_id": "new-0"}); err != nil {
		t.Fatalf("insert after bind: %v", err)
	}
	if p.State() != "steady" {
		t.Fatalf("primary state = %s, want steady", p.State())
	}

	promoted, _, err := f.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	defer promoted.Close()
	if got, want := docsOf(t, promoted, "sessions"), docsOf(t, db, "sessions"); !reflect.DeepEqual(got, want) {
		t.Fatalf("promoted store diverges after snapshot catch-up:\n got %d docs\nwant %d docs", len(got), len(want))
	}
}

func TestSnapshotCatchupAfterBufferOverflow(t *testing.T) {
	fdir := t.TempDir()
	f, ts := newFollower(t, fdir)
	// Follower down for a while: stop the server, overflow the buffer.
	ts.Close()
	db, p := openPrimary(t, t.TempDir(), ts.URL, PrimaryConfig{
		Epoch: 1, Mode: AckLocal, MaxBuffer: 8,
	})
	for i := 0; i < 50; i++ {
		if _, err := db.Collection("sessions").Insert(store.Document{"_id": fmt.Sprintf("s-%d", i)}); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	// Bring the follower back on a fresh listener at a new URL: rebuild
	// the primary link by pointing a new primary at it (same store).
	ts2 := httptest.NewServer(f)
	defer ts2.Close()
	p.Close()
	p2, err := NewPrimary(PrimaryConfig{FollowerURL: ts2.URL, Epoch: 1, Mode: AckFollower, RetryInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewPrimary: %v", err)
	}
	defer p2.Close()
	// Rebind on the same (still open) DB: pre-existing data forces the
	// snapshot path because the new primary's buffer is empty.
	p2.Bind(db)
	deadline := time.Now().Add(5 * time.Second)
	for p2.State() != "steady" {
		if time.Now().After(deadline) {
			t.Fatalf("catch-up never completed: state %s, lastErr %v", p2.State(), p2.LastErr())
		}
		time.Sleep(5 * time.Millisecond)
	}
	promoted, _, err := f.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	defer promoted.Close()
	if got, want := len(docsOf(t, promoted, "sessions")), 50; got != want {
		t.Fatalf("promoted store has %d sessions, want %d", got, want)
	}
}

func TestEpochFencing(t *testing.T) {
	f, ts := newFollower(t, t.TempDir())
	db, p := openPrimary(t, t.TempDir(), ts.URL, PrimaryConfig{Epoch: 3, Mode: AckFollower})

	if _, err := db.Collection("sessions").Insert(store.Document{"_id": "s-1"}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	promoted, epoch, err := f.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	defer promoted.Close()
	if epoch != 4 {
		t.Fatalf("promoted epoch = %d, want 4", epoch)
	}

	// The fenced primary's probe must be rejected with the stale epoch...
	if err := p.Probe(); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("Probe after promotion = %v, want ErrStaleEpoch", err)
	}
	if !p.Fenced() {
		t.Fatalf("primary not fenced after stale-epoch rejection")
	}
	// ...and every subsequent write must fail without being acknowledged.
	if _, err := db.Collection("sessions").Insert(store.Document{"_id": "s-2"}); !errors.Is(err, ErrFenced) {
		t.Fatalf("insert on fenced primary = %v, want ErrFenced", err)
	}
}

func TestFollowerAdoptsHigherEpoch(t *testing.T) {
	fdir := t.TempDir()
	f, ts := newFollower(t, fdir)
	db1, _ := openPrimary(t, t.TempDir(), ts.URL, PrimaryConfig{Epoch: 1, Mode: AckFollower})
	if _, err := db1.Collection("sessions").Insert(store.Document{"_id": "a"}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	// A new primary with a higher epoch takes over the same follower.
	db2, _ := openPrimary(t, t.TempDir(), ts.URL, PrimaryConfig{Epoch: 2, Mode: AckFollower})
	if _, err := db2.Collection("sessions").Insert(store.Document{"_id": "b"}); err != nil {
		t.Fatalf("insert from higher epoch: %v", err)
	}
	if got := f.Epoch(); got != 2 {
		t.Fatalf("follower epoch = %d, want 2 (adopted)", got)
	}
	// The old epoch-1 primary is now fenced out.
	if _, err := db1.Collection("sessions").Insert(store.Document{"_id": "c"}); err == nil {
		t.Fatalf("epoch-1 write accepted after epoch-2 took over")
	}
}

func TestFollowerMetaSurvivesRestart(t *testing.T) {
	fdir := t.TempDir()
	f, ts := newFollower(t, fdir)
	db, _ := openPrimary(t, t.TempDir(), ts.URL, PrimaryConfig{Epoch: 7, Mode: AckFollower})
	if _, err := db.Collection("sessions").Insert(store.Document{"_id": "a"}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	wantSeq := f.AckedSeq()
	ts.Close()

	reborn, err := NewFollower(FollowerConfig{Dir: fdir})
	if err != nil {
		t.Fatalf("NewFollower (restart): %v", err)
	}
	if reborn.Epoch() != 7 || reborn.AckedSeq() != wantSeq {
		t.Fatalf("restarted follower at epoch %d seq %d, want 7/%d", reborn.Epoch(), reborn.AckedSeq(), wantSeq)
	}
}

func TestFrameRoundtrip(t *testing.T) {
	inner := frameWAL(t)
	var buf bytes.Buffer
	appendFrame(&buf, 5, 42, "sessions", inner)
	frames, err := parseFrames(buf.Bytes())
	if err != nil {
		t.Fatalf("parseFrames: %v", err)
	}
	if len(frames) != 1 {
		t.Fatalf("got %d frames, want 1", len(frames))
	}
	fr := frames[0]
	if fr.epoch != 5 || fr.seq != 42 || fr.collection != "sessions" || !bytes.Equal(fr.inner, inner) {
		t.Fatalf("roundtrip mismatch: %+v", fr)
	}
	// Corrupt one byte anywhere: either the checksum rejects the line, or
	// the flip was semantically neutral (hex case in a header field) and
	// the decoded frame is unchanged.
	for i := 4; i < buf.Len()-1; i++ {
		mangled := append([]byte(nil), buf.Bytes()...)
		mangled[i] ^= 0x20
		got, err := parseFrames(mangled)
		if err != nil {
			continue
		}
		if len(got) != 1 || got[0].epoch != fr.epoch || got[0].seq != fr.seq ||
			got[0].collection != fr.collection || !bytes.Equal(got[0].inner, fr.inner) {
			t.Fatalf("mangled byte %d accepted as a different frame: %+v", i, got)
		}
	}
}

// frameWAL renders one genuine framed WAL line by writing through a
// throwaway store and reading it back off the disk.
func frameWAL(t *testing.T) []byte {
	t.Helper()
	dir := t.TempDir()
	db, err := store.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := db.Collection("c").Insert(store.Document{"_id": "x"}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	db.Close()
	data, err := store.OSFileSystem{}.ReadFile(store.WALPath(dir, "c"))
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	return bytes.TrimSuffix(data, []byte("\n"))
}

// postFrames sends a raw frames request with the given epoch header.
func postFrames(t *testing.T, url string, epoch string, body []byte) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+PathFrames, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	if epoch != "" {
		req.Header.Set(HeaderEpoch, epoch)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestFollowerRejectsForgedFrames(t *testing.T) {
	f, ts := newFollower(t, t.TempDir())
	inner := []byte("#w1 deadbeef {\"op\":\"put\",\"id\":\"x\"}") // bad inner CRC
	var buf bytes.Buffer
	appendFrame(&buf, 1, 1, "sessions", inner)
	if got := postFrames(t, ts.URL, "1", buf.Bytes()); got != http.StatusBadRequest {
		t.Fatalf("forged inner frame got HTTP %d, want 400", got)
	}
	// Path traversal in the collection name must never reach the disk.
	var buf2 bytes.Buffer
	appendFrame(&buf2, 1, 1, "../evil", frameWAL(t))
	if got := postFrames(t, ts.URL, "1", buf2.Bytes()); got != http.StatusBadRequest {
		t.Fatalf("path-traversal collection got HTTP %d, want 400", got)
	}
	if f.AckedSeq() != 0 {
		t.Fatalf("forged frames advanced the follower position")
	}
}

func TestFollowerRequestsWithMissingEpoch(t *testing.T) {
	_, ts := newFollower(t, t.TempDir())
	resp, err := http.Post(ts.URL+PathFrames, "text/plain", bytes.NewReader(nil))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing epoch header got HTTP %d, want 400", resp.StatusCode)
	}
}
