package replica

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"kaleidoscope/internal/obs"
	"kaleidoscope/internal/store"
)

// metaFile is the follower's durable replication position, next to the
// collection WALs it describes.
const metaFile = "repl.json"

// Request body bounds: a frames request is a handful of WAL records, a
// snapshot is a whole store.
const (
	maxFramesBody   = 32 << 20
	maxSnapshotBody = 1 << 30
)

// followerMeta is what survives a follower restart. Seq may lag the data
// on disk (a crash between apply and meta write) — that only makes the
// primary resend frames the idempotent replay absorbs. Epoch must never
// lag: it is persisted before any apply that depends on it.
type followerMeta struct {
	Epoch       uint64   `json:"epoch"`
	Seq         uint64   `json:"seq"`
	Promoted    bool     `json:"promoted,omitempty"`
	Collections []string `json:"collections,omitempty"`
}

// FollowerConfig configures NewFollower.
type FollowerConfig struct {
	// Dir is the standby store directory (created if needed).
	Dir string
	// FS is the filesystem WAL appends and meta writes go through
	// (OSFileSystem when nil; tests inject FaultFS).
	FS store.FileSystem
	// Registry receives kscope_repl_* follower metrics (optional).
	Registry *obs.Registry
}

// Follower is the warm standby: it accepts replication frames and
// snapshots over HTTP, appends the primary's WAL bytes verbatim to its own
// collection logs, and can be promoted into a live store. All request
// handling is serialized — there is one primary, and ordering is the point.
type Follower struct {
	dir string
	fs  store.FileSystem

	mu       sync.Mutex
	epoch    uint64
	lastSeq  uint64
	promoted bool
	wals     map[string]store.WALFile
	known    map[string]bool // collections with a WAL file on disk

	framesApplied *obs.Counter
	bytesApplied  *obs.Counter
	staleRejects  *obs.Counter
	snapshots     *obs.Counter
	applyErrors   *obs.Counter
	promotions    *obs.Counter
}

// NewFollower opens (or resumes) a follower over dir, restoring its epoch
// and acked sequence from the durable meta file.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("replica: follower needs a directory")
	}
	fs := cfg.FS
	if fs == nil {
		fs = store.OSFileSystem{}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("replica: creating %s: %w", cfg.Dir, err)
	}
	f := &Follower{
		dir:   cfg.Dir,
		fs:    fs,
		wals:  make(map[string]store.WALFile),
		known: make(map[string]bool),
	}
	if data, err := fs.ReadFile(f.metaPath()); err == nil {
		var meta followerMeta
		if err := json.Unmarshal(data, &meta); err != nil {
			return nil, fmt.Errorf("replica: corrupt %s: %w", f.metaPath(), err)
		}
		f.epoch, f.lastSeq, f.promoted = meta.Epoch, meta.Seq, meta.Promoted
		for _, c := range meta.Collections {
			f.known[c] = true
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("replica: reading %s: %w", f.metaPath(), err)
	}
	if r := cfg.Registry; r != nil {
		f.framesApplied = r.Counter("kscope_repl_frames_applied")
		f.bytesApplied = r.Counter("kscope_repl_bytes_applied")
		f.staleRejects = r.Counter("kscope_repl_stale_rejects")
		f.snapshots = r.Counter("kscope_repl_snapshots_received")
		f.applyErrors = r.Counter("kscope_repl_apply_errors")
		f.promotions = r.Counter("kscope_repl_failovers")
		r.RegisterGauge("kscope_repl_follower_epoch", func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return float64(f.epoch)
		})
		r.RegisterGauge("kscope_repl_follower_acked_seq", func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return float64(f.lastSeq)
		})
	}
	return f, nil
}

func (f *Follower) metaPath() string { return filepath.Join(f.dir, metaFile) }

// Epoch returns the follower's current epoch.
func (f *Follower) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// AckedSeq returns the highest replicated sequence the follower has
// durably applied.
func (f *Follower) AckedSeq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastSeq
}

// saveMetaLocked durably persists the follower position (temp file, atomic
// rename, directory fsync). Called with f.mu held.
func (f *Follower) saveMetaLocked() error {
	names := make([]string, 0, len(f.known))
	for c := range f.known {
		names = append(names, c)
	}
	sort.Strings(names)
	data, err := json.Marshal(followerMeta{
		Epoch: f.epoch, Seq: f.lastSeq, Promoted: f.promoted, Collections: names,
	})
	if err != nil {
		return fmt.Errorf("replica: encoding meta: %w", err)
	}
	tmp := f.metaPath() + ".tmp"
	if err := f.fs.WriteFile(tmp, data); err != nil {
		return fmt.Errorf("replica: writing meta: %w", err)
	}
	if err := f.fs.Rename(tmp, f.metaPath()); err != nil {
		return fmt.Errorf("replica: swapping meta: %w", err)
	}
	return f.fs.SyncDir(f.dir)
}

// ServeHTTP exposes the replication surface: POST PathFrames, POST
// PathSnapshot, GET PathStatus.
func (f *Follower) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == PathFrames && r.Method == http.MethodPost:
		f.handleFrames(w, r)
	case r.URL.Path == PathSnapshot && r.Method == http.MethodPost:
		f.handleSnapshot(w, r)
	case r.URL.Path == PathStatus && r.Method == http.MethodGet:
		f.handleStatus(w)
	default:
		http.NotFound(w, r)
	}
}

// statusReply is the JSON body of every replication response.
type statusReply struct {
	Epoch    uint64 `json:"epoch"`
	Acked    uint64 `json:"acked"`
	Promoted bool   `json:"promoted,omitempty"`
}

// replyLocked writes the follower's position; called with f.mu held.
func (f *Follower) replyLocked(w http.ResponseWriter, status int) {
	w.Header().Set(HeaderEpoch, strconv.FormatUint(f.epoch, 10))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(statusReply{Epoch: f.epoch, Acked: f.lastSeq, Promoted: f.promoted})
}

// checkEpochLocked enforces fencing for an incoming request epoch. It
// returns false after replying when the request must be rejected; on an
// epoch higher than ours it durably adopts the new epoch first, so the
// acceptance cannot be forgotten by a crash. Called with f.mu held.
func (f *Follower) checkEpochLocked(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	reqEpoch, err := strconv.ParseUint(r.Header.Get(HeaderEpoch), 10, 64)
	if err != nil {
		http.Error(w, "replica: missing or bad "+HeaderEpoch, http.StatusBadRequest)
		return 0, false
	}
	if f.promoted || reqEpoch < f.epoch {
		// A deposed primary: it must stop acking writes. 409 + our epoch
		// is the fence.
		if f.staleRejects != nil {
			f.staleRejects.Inc()
		}
		f.replyLocked(w, http.StatusConflict)
		return 0, false
	}
	if reqEpoch > f.epoch {
		prev := f.epoch
		f.epoch = reqEpoch
		if err := f.saveMetaLocked(); err != nil {
			// Adopting an epoch we could forget after a crash would let a
			// fenced primary back in; refuse instead.
			f.epoch = prev
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return 0, false
		}
	}
	return reqEpoch, true
}

func (f *Follower) handleFrames(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxFramesBody))
	if err != nil {
		http.Error(w, "replica: reading frames: "+err.Error(), http.StatusBadRequest)
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	reqEpoch, ok := f.checkEpochLocked(w, r)
	if !ok {
		return
	}
	frames, err := parseFrames(body)
	if err != nil {
		if f.applyErrors != nil {
			f.applyErrors.Inc()
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	for _, fr := range frames {
		if fr.epoch != reqEpoch {
			if f.applyErrors != nil {
				f.applyErrors.Inc()
			}
			http.Error(w, fmt.Sprintf("replica: frame epoch %d != request epoch %d", fr.epoch, reqEpoch), http.StatusBadRequest)
			return
		}
	}
	if err := f.applyLocked(frames); err != nil {
		if f.applyErrors != nil {
			f.applyErrors.Inc()
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// Meta lagging the data is safe (duplicates are idempotent), so a
	// failed position save does not fail the request.
	_ = f.saveMetaLocked()
	f.replyLocked(w, http.StatusOK)
}

// applyLocked appends every frame newer than the follower's position to
// the owning collection's WAL — one buffered Write and one fsync per
// touched collection — then advances the position. A failure leaves the
// position unmoved: the primary resends, duplicates replay idempotently,
// and a torn trailing line heals through the store's normal recovery at
// promotion. Called with f.mu held.
func (f *Follower) applyLocked(frames []frame) error {
	var (
		order   []string
		pending = make(map[string]*bytes.Buffer)
		maxSeq  = f.lastSeq
		applied int64
		nbytes  int64
	)
	for _, fr := range frames {
		if fr.seq <= f.lastSeq {
			continue // duplicate delivery
		}
		buf, ok := pending[fr.collection]
		if !ok {
			buf = &bytes.Buffer{}
			pending[fr.collection] = buf
			order = append(order, fr.collection)
		}
		buf.Write(fr.inner)
		buf.WriteByte('\n')
		applied++
		nbytes += int64(len(fr.inner)) + 1
		if fr.seq > maxSeq {
			maxSeq = fr.seq
		}
	}
	created := false
	for _, name := range order {
		wf, err := f.walLocked(name, &created)
		if err != nil {
			return err
		}
		if _, err := wf.Write(pending[name].Bytes()); err != nil {
			return fmt.Errorf("replica: appending %s: %w", name, err)
		}
	}
	if created {
		if err := f.fs.SyncDir(f.dir); err != nil {
			return err
		}
	}
	for _, name := range order {
		if err := f.wals[name].Sync(); err != nil {
			return fmt.Errorf("replica: fsync %s: %w", name, err)
		}
	}
	f.lastSeq = maxSeq
	if f.framesApplied != nil {
		f.framesApplied.Add(applied)
		f.bytesApplied.Add(nbytes)
	}
	return nil
}

// walLocked returns (opening if needed) the collection's append handle.
func (f *Follower) walLocked(name string, created *bool) (store.WALFile, error) {
	if wf, ok := f.wals[name]; ok {
		return wf, nil
	}
	wf, err := f.fs.OpenAppend(store.WALPath(f.dir, name))
	if err != nil {
		return nil, err
	}
	if !f.known[name] {
		f.known[name] = true
		*created = true
	}
	f.wals[name] = wf
	return wf, nil
}

func (f *Follower) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSnapshotBody))
	if err != nil {
		http.Error(w, "replica: reading snapshot: "+err.Error(), http.StatusBadRequest)
		return
	}
	watermark, err := strconv.ParseUint(r.Header.Get(HeaderSeq), 10, 64)
	if err != nil {
		http.Error(w, "replica: missing or bad "+HeaderSeq, http.StatusBadRequest)
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.checkEpochLocked(w, r); !ok {
		return
	}
	sections, err := parseSnapshot(body)
	if err != nil {
		if f.applyErrors != nil {
			f.applyErrors.Inc()
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Replace our logs with the primary's files wholesale. Open handles
	// would keep appending to replaced inodes; drop them first.
	f.closeWALsLocked()
	for name, wal := range sections {
		if err := f.fs.WriteFile(store.WALPath(f.dir, name), wal); err != nil {
			if f.applyErrors != nil {
				f.applyErrors.Inc()
			}
			http.Error(w, fmt.Sprintf("replica: writing snapshot %s: %v", name, err), http.StatusInternalServerError)
			return
		}
		f.known[name] = true
	}
	if err := f.fs.SyncDir(f.dir); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	f.lastSeq = watermark
	if err := f.saveMetaLocked(); err != nil {
		// Unlike frames, the watermark jump must stick: losing it would
		// leave lastSeq behind files that already contain newer records —
		// harmless for data (idempotent) but it would re-trigger endless
		// snapshots. Still safe, but report the failure.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if f.snapshots != nil {
		f.snapshots.Inc()
	}
	f.replyLocked(w, http.StatusOK)
}

func (f *Follower) handleStatus(w http.ResponseWriter) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.replyLocked(w, http.StatusOK)
}

// closeWALsLocked flushes and drops every open append handle.
func (f *Follower) closeWALsLocked() {
	for name, wf := range f.wals {
		_ = wf.Sync()
		_ = wf.Close()
		delete(f.wals, name)
	}
}

// Promote turns the standby into a live store: the follower durably bumps
// its epoch past every frame it has ever accepted (fencing the old
// primary), stops applying replication traffic, and opens the replicated
// directory through the store's normal replay/repair path. The returned
// epoch is what the promoted node must mint — and what a fenced primary
// will be rejected against.
func (f *Follower) Promote(opts ...store.Option) (*store.DB, uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return nil, f.epoch, fmt.Errorf("replica: already promoted")
	}
	f.closeWALsLocked()
	prevEpoch, prevPromoted := f.epoch, f.promoted
	f.epoch++
	f.promoted = true
	if err := f.saveMetaLocked(); err != nil {
		f.epoch, f.promoted = prevEpoch, prevPromoted
		return nil, f.epoch, fmt.Errorf("replica: persisting promotion: %w", err)
	}
	all := append([]store.Option{store.WithFileSystem(f.fs)}, opts...)
	db, err := store.Open(f.dir, all...)
	if err != nil {
		return nil, f.epoch, fmt.Errorf("replica: opening promoted store: %w", err)
	}
	if f.promotions != nil {
		f.promotions.Inc()
	}
	return db, f.epoch, nil
}
