package replica

import (
	"net/http"
	"strings"
	"sync"

	"kaleidoscope/internal/store"
)

// Node is the standby process's HTTP face: before promotion it serves only
// the replication surface (application traffic gets 503 + Retry-After, so
// clients probing the standby back off instead of erroring), and at
// promotion it atomically swaps in the application handler built over the
// promoted store — the moment a load balancer or failing-over client
// reaches it, it is the primary.
type Node struct {
	follower *Follower

	mu  sync.RWMutex
	app http.Handler // nil until promoted
}

// NewNode wraps a follower for serving.
func NewNode(f *Follower) *Node { return &Node{follower: f} }

// Follower exposes the wrapped follower (status, promotion by hand).
func (n *Node) Follower() *Follower { return n.follower }

// Promoted reports whether the application handler is live.
func (n *Node) Promoted() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.app != nil
}

// ServeHTTP routes /repl/* to the follower and everything else to the
// application handler once promoted.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/repl/") {
		n.follower.ServeHTTP(w, r)
		return
	}
	n.mu.RLock()
	app := n.app
	n.mu.RUnlock()
	if app == nil {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "kscope: standby (not promoted)", http.StatusServiceUnavailable)
		return
	}
	app.ServeHTTP(w, r)
}

// Promote fails the node over: the follower durably bumps its epoch and
// opens the replicated store, build constructs the application handler
// over it (receiving the new epoch so the server can advertise it), and
// the handler goes live for the next request. The opened store is returned
// for the caller to own (and Close).
func (n *Node) Promote(build func(db *store.DB, epoch uint64) (http.Handler, error), opts ...store.Option) (*store.DB, uint64, error) {
	db, epoch, err := n.follower.Promote(opts...)
	if err != nil {
		return nil, epoch, err
	}
	h, err := build(db, epoch)
	if err != nil {
		db.Close()
		return nil, epoch, err
	}
	n.mu.Lock()
	n.app = h
	n.mu.Unlock()
	return db, epoch, nil
}
