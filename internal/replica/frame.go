package replica

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"strconv"

	"kaleidoscope/internal/store"
)

// Replication wire format. A shipped WAL record travels as one outer line:
//
//	#r1 <crc32-ieee hex8> <epoch hex8> <seq hex16> <collection> <inner>
//
// where <inner> is the record's framed WAL line (#w1 ...) byte-for-byte as
// it was written to the primary's disk, and the outer checksum covers
// everything after the "crc " field. The epoch rides on every frame — not
// just the request — so a frame replayed out of context (a proxy retry, a
// buffered send from a deposed primary) still carries the term it was
// minted in and can be rejected on its own evidence. The inner line keeps
// its own CRC, so a follower appends exactly the bytes a healthy primary
// would have written, verified twice.
const (
	frameMagic = "#r1"
	// snapMagic heads one collection section of a snapshot body:
	//	#rs1 <collection> <size>\n
	// followed by exactly size raw bytes of that collection's WAL file.
	snapMagic = "#rs1"
)

// frame is one decoded replication record.
type frame struct {
	epoch      uint64
	seq        uint64
	collection string
	inner      []byte // the framed WAL line, no trailing newline
}

// appendFrame renders one outer line (with trailing newline) onto dst.
func appendFrame(dst *bytes.Buffer, epoch, seq uint64, collection string, inner []byte) {
	// Body first, so the checksum can cover it.
	body := fmt.Sprintf("%08x %016x %s ", epoch, seq, collection)
	dst.WriteString(frameMagic)
	dst.WriteByte(' ')
	fmt.Fprintf(dst, "%08x", crc32Update(crc32.ChecksumIEEE([]byte(body)), inner))
	dst.WriteByte(' ')
	dst.WriteString(body)
	dst.Write(inner)
	dst.WriteByte('\n')
}

// crc32Update extends an IEEE checksum over more bytes.
func crc32Update(crc uint32, p []byte) uint32 {
	return crc32.Update(crc, crc32.IEEETable, p)
}

// parseFrame decodes one outer line (no trailing newline).
func parseFrame(line []byte) (frame, error) {
	var f frame
	rest, ok := bytes.CutPrefix(line, []byte(frameMagic+" "))
	if !ok {
		return f, fmt.Errorf("replica: line missing %s frame", frameMagic)
	}
	// <crc8> <epoch8> <seq16> <collection> <inner>
	if len(rest) < 8+1 {
		return f, fmt.Errorf("replica: truncated frame")
	}
	crcField, body := rest[:8], rest[8:]
	if len(body) == 0 || body[0] != ' ' {
		return f, fmt.Errorf("replica: malformed frame header")
	}
	body = body[1:]
	want, err := strconv.ParseUint(string(crcField), 16, 32)
	if err != nil {
		return f, fmt.Errorf("replica: bad frame checksum field")
	}
	if crc32.ChecksumIEEE(body) != uint32(want) {
		return f, fmt.Errorf("replica: frame checksum mismatch")
	}
	fields := bytes.SplitN(body, []byte(" "), 4)
	if len(fields) != 4 {
		return f, fmt.Errorf("replica: malformed frame body")
	}
	if f.epoch, err = strconv.ParseUint(string(fields[0]), 16, 64); err != nil {
		return f, fmt.Errorf("replica: bad frame epoch")
	}
	if f.seq, err = strconv.ParseUint(string(fields[1]), 16, 64); err != nil {
		return f, fmt.Errorf("replica: bad frame seq")
	}
	f.collection = string(fields[2])
	if !store.ValidCollectionName(f.collection) {
		return f, fmt.Errorf("replica: invalid collection name %q", f.collection)
	}
	f.inner = fields[3]
	if err := store.VerifyWALLine(f.inner); err != nil {
		return f, fmt.Errorf("replica: frame payload: %w", err)
	}
	return f, nil
}

// parseFrames decodes a whole request body: one frame per line, blank lines
// ignored. Any bad line rejects the lot — a follower applies a request
// atomically or not at all.
func parseFrames(body []byte) ([]frame, error) {
	var out []frame
	for len(body) > 0 {
		var line []byte
		if nl := bytes.IndexByte(body, '\n'); nl >= 0 {
			line, body = body[:nl], body[nl+1:]
		} else {
			line, body = body, nil
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		f, err := parseFrame(line)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// appendSnapshotSection renders one collection section of a snapshot body.
func appendSnapshotSection(dst *bytes.Buffer, collection string, wal []byte) {
	fmt.Fprintf(dst, "%s %s %d\n", snapMagic, collection, len(wal))
	dst.Write(wal)
}

// parseSnapshot decodes a snapshot body into collection → raw WAL bytes.
func parseSnapshot(body []byte) (map[string][]byte, error) {
	out := make(map[string][]byte)
	for len(body) > 0 {
		nl := bytes.IndexByte(body, '\n')
		if nl < 0 {
			if len(bytes.TrimSpace(body)) == 0 {
				break
			}
			return nil, fmt.Errorf("replica: truncated snapshot header")
		}
		header := body[:nl]
		body = body[nl+1:]
		if len(bytes.TrimSpace(header)) == 0 {
			continue
		}
		fields := bytes.Split(header, []byte(" "))
		if len(fields) != 3 || string(fields[0]) != snapMagic {
			return nil, fmt.Errorf("replica: malformed snapshot header %q", header)
		}
		name := string(fields[1])
		if !store.ValidCollectionName(name) {
			return nil, fmt.Errorf("replica: invalid snapshot collection %q", name)
		}
		size, err := strconv.Atoi(string(fields[2]))
		if err != nil || size < 0 {
			return nil, fmt.Errorf("replica: bad snapshot section size")
		}
		if size > len(body) {
			return nil, fmt.Errorf("replica: snapshot section %s truncated (%d > %d bytes)", name, size, len(body))
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("replica: duplicate snapshot section %s", name)
		}
		out[name] = body[:size]
		body = body[size:]
	}
	return out, nil
}
