// Package shard fronts N kscope-server processes as one logical
// deployment. A consistent-hash router proxies every request to the shard
// that owns its key — test id for documents, pages, and blobs; test id +
// worker id for sessions — fails over to a shard's warm standby when the
// primary stops answering (reusing the internal/replica epoch-fencing
// semantics), and turns /results into a scatter/gather merge across the
// fleet. Membership is static: the ring is built once from the -shards
// flag, and its minimal-remap property (only ~1/N keys move when a shard
// joins or leaves) is what makes online rebalancing possible later.
package shard

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-shard virtual-node count. 256 points per
// shard keeps the key distribution within a few percent of uniform (the
// ring's balance property test pins ±15%) while the whole ring stays a
// few-KB sorted slice searched in O(log n).
const DefaultVirtualNodes = 256

// Ring is a virtual-node consistent-hash ring over a static shard list.
// Each shard contributes VirtualNodes points hashed from its name; a key
// belongs to the shard owning the first point at or clockwise after the
// key's hash. Adding or removing one shard therefore remaps only the keys
// whose owning arc moved — about 1/N of them — which is the property that
// keeps a future rebalancing PR's data movement proportional, not total.
type Ring struct {
	shards []string
	points []ringPoint // sorted by (hash, shard)
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring over the named shards with vnodes virtual nodes
// per shard (<= 0 selects DefaultVirtualNodes). Shard names are the ring
// identity: the same names always produce the same ring, so a router
// restart routes every key exactly as before.
func NewRing(shards []string, vnodes int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, errors.New("shard: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(shards))
	r := &Ring{
		shards: append([]string(nil), shards...),
		points: make([]ringPoint, 0, len(shards)*vnodes),
	}
	for i, name := range shards {
		if name == "" {
			return nil, errors.New("shard: empty shard name")
		}
		if seen[name] {
			return nil, fmt.Errorf("shard: duplicate shard name %q", name)
		}
		seen[name] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hashKey(name + "#" + strconv.Itoa(v)),
				shard: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash collisions between vnodes are broken by shard index so the
		// ordering (and thus ownership) is deterministic.
		return r.points[a].shard < r.points[b].shard
	})
	return r, nil
}

// FNV-1a 64-bit, inlined: the ring hashes short keys on the request path
// and must not allocate a hash.Hash per lookup. Raw FNV-1a's high bits
// avalanche poorly on short, similar strings (vnode labels differ only in
// a numeric suffix; session keys share a test-id prefix), and ring
// position is decided by the HIGH bits of the sorted point hashes — so a
// final 64-bit mix (murmur3's fmix64) spreads the entropy through the
// whole word. Without it, shard shares deviate ±80% from uniform; with
// it, the balance property test holds within ±15%.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func hashKey(key string) uint64 {
	h := fnvOffset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Owner returns the index (into the constructor's shard list) of the
// shard owning key.
func (r *Ring) Owner(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns the arc past the last hash
	}
	return r.points[i].shard
}

// OwnerName returns the owning shard's name.
func (r *Ring) OwnerName(key string) string {
	return r.shards[r.Owner(key)]
}

// Shards returns the shard names, in constructor order. The slice is the
// ring's own; callers must not mutate it.
func (r *Ring) Shards() []string { return r.shards }

// SessionKey is the ring key for a worker's session documents: test id +
// worker id, matching the store's document ids, so a worker's upload and
// its idempotent 409 duplicate always land on the same shard.
func SessionKey(testID, workerID string) string {
	return testID + "/" + workerID
}

// TestKey is the ring key for a test's prepared document, pages, and
// blobs — everything keyed by test id alone.
func TestKey(testID string) string { return testID }
