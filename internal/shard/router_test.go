package shard

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/crowd"
	"kaleidoscope/internal/guard"
	"kaleidoscope/internal/obs"
	"kaleidoscope/internal/params"
	"kaleidoscope/internal/quality"
	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/server"
	"kaleidoscope/internal/store"
	"kaleidoscope/internal/webgen"
)

const ringTestID = "shard-test"

// prepNode prepares one storage node with the fixture study. Preparation
// is deterministic (same test, same seeded sites), so every node serves
// identical page ids — the fleet-wide provisioning the router assumes.
func prepNode(t testing.TB) (*server.Server, *store.DB, *aggregator.Prepared) {
	t.Helper()
	db := store.OpenMemory()
	blobs := store.NewBlobStore()
	agg, err := aggregator.New(db, blobs)
	if err != nil {
		t.Fatal(err)
	}
	test := &params.Test{
		TestID:          ringTestID,
		WebpageNum:      2,
		TestDescription: "router test",
		ParticipantNum:  10,
		Questions:       []string{"Which webpage's font size is more suitable (easier) for reading?"},
		Webpages: []params.Webpage{
			{WebPath: "a", WebPageLoad: params.PageLoadSpec{UniformMillis: 1000}, WebMainFile: "index.html"},
			{WebPath: "b", WebPageLoad: params.PageLoadSpec{UniformMillis: 1000}, WebMainFile: "index.html"},
		},
	}
	sites := map[string]*webgen.Site{
		"a": webgen.WikiArticle(webgen.WikiConfig{Seed: 1, FontSizePt: 12}),
		"b": webgen.WikiArticle(webgen.WikiConfig{Seed: 1, FontSizePt: 22}),
	}
	prep, err := agg.Prepare(test, sites, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(db, blobs)
	if err != nil {
		t.Fatal(err)
	}
	return srv, db, prep
}

// fixture is an N-shard deployment: real storage nodes behind one router.
type fixture struct {
	router   *Router
	routerTS *httptest.Server
	nodeTS   []*httptest.Server
	dbs      []*store.DB
	prep     *aggregator.Prepared
	reg      *obs.Registry
}

func newFixture(t testing.TB, n int) *fixture {
	t.Helper()
	f := &fixture{reg: obs.NewRegistry()}
	specs := make([]Spec, n)
	for i := 0; i < n; i++ {
		srv, db, prep := prepNode(t)
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		f.nodeTS = append(f.nodeTS, ts)
		f.dbs = append(f.dbs, db)
		f.prep = prep
		specs[i] = Spec{Name: fmt.Sprintf("shard-%d", i), Primary: ts.URL}
	}
	rt, err := New(Config{
		Shards:  specs,
		Retries: 2, Backoff: time.Millisecond, Timeout: 5 * time.Second,
		Registry: f.reg, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	f.routerTS = httptest.NewServer(rt)
	t.Cleanup(f.routerTS.Close)
	return f
}

func sampleUpload(prep *aggregator.Prepared, workerID string, choice questionnaire.Choice) server.SessionUpload {
	up := server.SessionUpload{
		TestID:   ringTestID,
		WorkerID: workerID,
		Demographics: crowd.Demographics{
			Gender: "female", AgeBand: "25-34", Country: "US", TechAbility: 4,
		},
	}
	for _, p := range prep.RealPages() {
		up.Responses = append(up.Responses, questionnaire.Response{
			TestID: ringTestID, WorkerID: workerID, PageID: p.ID,
			QuestionID: "q0", Choice: choice, DurationMillis: 20000,
		})
		up.Behaviors = append(up.Behaviors, crowd.Behavior{TimeOnTaskMillis: 20000, CreatedTabs: 1, ActiveTabSwitches: 3})
	}
	for _, p := range prep.ControlPages() {
		up.Controls = append(up.Controls, quality.ControlOutcome{
			PageID: p.ID, Expected: p.Expected, Got: p.Expected,
		})
		up.Behaviors = append(up.Behaviors, crowd.Behavior{TimeOnTaskMillis: 15000, CreatedTabs: 1, ActiveTabSwitches: 2})
	}
	return up
}

func postJSON(t *testing.T, url string, v any, hdr http.Header) *http.Response {
	t.Helper()
	payload, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vv := range hdr {
		req.Header[k] = vv
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func fetch(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestRouterValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty shard list should fail")
	}
	if _, err := New(Config{Shards: []Spec{{Name: "x"}}}); err == nil {
		t.Error("shard without a primary URL should fail")
	}
	if _, err := New(Config{Shards: []Spec{{Primary: "http://a"}, {Primary: "http://a"}}}); err == nil {
		t.Error("duplicate ring identity should fail")
	}
}

func TestRouterProxyBasics(t *testing.T) {
	f := newFixture(t, 3)

	resp, body := fetch(t, f.routerTS.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"router"`)) {
		t.Errorf("healthz = %d %s", resp.StatusCode, body)
	}

	var info server.TestInfo
	resp, body = fetch(t, f.routerTS.URL+"/api/tests/"+ringTestID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("test info = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &info); err != nil || info.TestID != ringTestID {
		t.Fatalf("info = %s (err %v)", body, err)
	}

	// Page files proxy through the test's home shard.
	resp, body = fetch(t, f.routerTS.URL+"/api/tests/"+ringTestID+"/pages/"+info.Pages[0].ID+"/index.html")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("kscope-left")) {
		t.Errorf("page file = %d", resp.StatusCode)
	}

	resp, _ = fetch(t, f.routerTS.URL+"/api/tests/ghost")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing test = %d, want 404", resp.StatusCode)
	}

	resp, body = fetch(t, f.routerTS.URL+"/metrics")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("kscope_shard_count")) {
		t.Errorf("metrics = %d", resp.StatusCode)
	}

	// The dashboard proxies to the home shard like any test-scoped surface.
	resp, _ = fetch(t, f.routerTS.URL+"/dashboard/"+ringTestID)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("dashboard = %d", resp.StatusCode)
	}
}

// uploadFixtureCrowd pushes a small crowd through the router (and,
// mirrored, into a single-node server when one is given).
func uploadFixtureCrowd(t *testing.T, f *fixture, n int, single *server.Server) []server.SessionUpload {
	t.Helper()
	choices := []questionnaire.Choice{questionnaire.ChoiceLeft, questionnaire.ChoiceRight, questionnaire.ChoiceLeft}
	var ups []server.SessionUpload
	for i := 0; i < n; i++ {
		up := sampleUpload(f.prep, fmt.Sprintf("w%03d", i), choices[i%len(choices)])
		ups = append(ups, up)
		hdr := http.Header{}
		if i%2 == 0 { // exercise both the header route and the body sniff
			hdr.Set(guard.WorkerIDHeader, up.WorkerID)
		}
		resp := postJSON(t, f.routerTS.URL+"/api/tests/"+ringTestID+"/sessions", up, hdr)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %d = %d", i, resp.StatusCode)
		}
		if single != nil {
			payload, _ := json.Marshal(up)
			req := httptest.NewRequest(http.MethodPost, "/api/tests/"+ringTestID+"/sessions", bytes.NewReader(payload))
			rec := httptest.NewRecorder()
			single.ServeHTTP(rec, req)
			if rec.Code != http.StatusCreated {
				t.Fatalf("single-node upload %d = %d: %s", i, rec.Code, rec.Body.String())
			}
		}
	}
	return ups
}

// TestRouterDifferentialResults is the acceptance criterion: the router's
// scatter/gather /results over 3 shards must be byte-identical to a
// single-node deployment holding the same session set — raw merge and
// quality-controlled gather both.
func TestRouterDifferentialResults(t *testing.T) {
	f := newFixture(t, 3)
	single, _, _ := prepNode(t)
	uploadFixtureCrowd(t, f, 9, single)

	// The crowd must actually have been partitioned: the ring, not one
	// lucky shard, produced the merged answer.
	populated := 0
	for i, db := range f.dbs {
		n := db.Collection(aggregator.ResponsesCollection).CountEq("test_id", ringTestID)
		if n > 0 {
			populated++
		}
		want := 0
		for j := 0; j < 9; j++ {
			if f.router.Ring().Owner(SessionKey(ringTestID, fmt.Sprintf("w%03d", j))) == i {
				want++
			}
		}
		if n != want {
			t.Errorf("shard %d stores %d sessions, ring says %d", i, n, want)
		}
	}
	if populated < 2 {
		t.Fatalf("only %d shards hold sessions; fixture is not exercising the split", populated)
	}

	for _, q := range []string{"", "?quality=1"} {
		resp, merged := fetch(t, f.routerTS.URL+"/api/tests/"+ringTestID+"/results"+q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("router results%s = %d: %s", q, resp.StatusCode, merged)
		}
		if resp.Header.Get(PartialHeader) != "" {
			t.Errorf("results%s marked partial with all shards up", q)
		}
		req := httptest.NewRequest(http.MethodGet, "/api/tests/"+ringTestID+"/results"+q, nil)
		rec := httptest.NewRecorder()
		single.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("single-node results%s = %d", q, rec.Code)
		}
		if !bytes.Equal(merged, rec.Body.Bytes()) {
			t.Errorf("results%s diverge:\nrouter      %s\nsingle-node %s", q, merged, rec.Body.Bytes())
		}
	}

	// The merged session list equals the single node's, too.
	resp, routerSessions := fetch(t, f.routerTS.URL+"/api/tests/"+ringTestID+"/sessions")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router sessions = %d", resp.StatusCode)
	}
	req := httptest.NewRequest(http.MethodGet, "/api/tests/"+ringTestID+"/sessions", nil)
	rec := httptest.NewRecorder()
	single.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("single-node sessions = %d", rec.Code)
	}
	if !bytes.Equal(routerSessions, rec.Body.Bytes()) {
		t.Errorf("session lists diverge:\nrouter      %s\nsingle-node %s", routerSessions, rec.Body.Bytes())
	}
}

func TestRouterDuplicateUpload(t *testing.T) {
	f := newFixture(t, 3)
	up := sampleUpload(f.prep, "dup-worker", questionnaire.ChoiceLeft)
	for i, want := range []int{http.StatusCreated, http.StatusConflict} {
		resp := postJSON(t, f.routerTS.URL+"/api/tests/"+ringTestID+"/sessions", up, nil)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("attempt %d = %d, want %d", i, resp.StatusCode, want)
		}
	}
}

func TestRouterListTests(t *testing.T) {
	f := newFixture(t, 3)
	uploadFixtureCrowd(t, f, 5, nil)
	resp, body := fetch(t, f.routerTS.URL+"/api/tests")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list = %d", resp.StatusCode)
	}
	var list []server.TestSummary
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].TestID != ringTestID {
		t.Fatalf("list = %+v", list)
	}
	if list[0].Sessions != 5 {
		t.Errorf("merged session count = %d, want 5", list[0].Sessions)
	}
	if list[0].PageCount == 0 {
		t.Errorf("static fields lost in merge: %+v", list[0])
	}
}

func TestRouterDeleteFanout(t *testing.T) {
	f := newFixture(t, 3)
	uploadFixtureCrowd(t, f, 6, nil)
	req, _ := http.NewRequest(http.MethodDelete, f.routerTS.URL+"/api/tests/"+ringTestID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d: %s", resp.StatusCode, body)
	}
	var rep struct {
		Status   string `json:"status"`
		Sessions int    `json:"sessions"`
		Pages    int    `json:"pages"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != "deleted" || rep.Sessions != 6 {
		t.Errorf("delete report = %+v (want 6 sessions summed across shards)", rep)
	}
	// Idempotent: a second sweep finds nothing anywhere -> 404 through.
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("second delete = %d, want 404", resp2.StatusCode)
	}
}

func TestRouterBatchSplit(t *testing.T) {
	f := newFixture(t, 3)
	var batch []server.SessionUpload
	for i := 0; i < 8; i++ {
		batch = append(batch, sampleUpload(f.prep, fmt.Sprintf("batch-w%02d", i), questionnaire.ChoiceRight))
	}
	payload, _ := json.Marshal(batch)

	// Gzip-compressed, like the extension's batch client ships it.
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(payload)
	zw.Close()
	req, _ := http.NewRequest(http.MethodPost, f.routerTS.URL+"/api/tests/"+ringTestID+"/sessions:batch", &buf)
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d: %s", resp.StatusCode, body)
	}
	var rep server.BatchReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 8 || len(rep.Results) != 8 {
		t.Fatalf("report = %+v", rep)
	}
	for i, er := range rep.Results {
		if er.Index != i || er.Status != http.StatusCreated || er.WorkerID != batch[i].WorkerID {
			t.Errorf("element %d = %+v (order lost in the split?)", i, er)
		}
	}

	// Replay the same batch plain-JSON: every element answers 409, in order
	// — the idempotent retry a failed split relies on.
	resp2 := postJSONBytes(t, f.routerTS.URL+"/api/tests/"+ringTestID+"/sessions:batch", payload)
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("replay = %d: %s", resp2.StatusCode, body2)
	}
	var rep2 server.BatchReport
	if err := json.Unmarshal(body2, &rep2); err != nil {
		t.Fatal(err)
	}
	if rep2.Accepted != 0 {
		t.Errorf("replay accepted %d sessions, want 0", rep2.Accepted)
	}
	for i, er := range rep2.Results {
		if er.Index != i || er.Status != http.StatusConflict {
			t.Errorf("replay element %d = %+v, want 409", i, er)
		}
	}

	// Sessions really landed on distinct shards.
	populated := 0
	for _, db := range f.dbs {
		if db.Collection(aggregator.ResponsesCollection).CountEq("test_id", ringTestID) > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Errorf("batch landed on %d shards; split did not spread", populated)
	}
}

func postJSONBytes(t *testing.T, url string, payload []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRouterFailoverToStandby: a dead primary with a live standby is a
// working shard.
func TestRouterFailoverToStandby(t *testing.T) {
	srv, _, _ := prepNode(t)
	standby := httptest.NewServer(srv)
	defer standby.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	dead.Close() // connection refused from here on

	reg := obs.NewRegistry()
	rt, err := New(Config{
		Shards:  []Spec{{Name: "s0", Primary: dead.URL, Standby: standby.URL}},
		Retries: 3, Backoff: time.Millisecond, Registry: reg, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	defer ts.Close()

	resp, body := fetch(t, ts.URL+"/api/tests/"+ringTestID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("through standby = %d: %s", resp.StatusCode, body)
	}
	if reg.Counter("kscope_shard_failovers_total").Value() == 0 {
		t.Error("failover counter never moved")
	}
	// The preference is sticky: the next request goes straight to the
	// standby without burning retries on the dead primary.
	before := reg.Counter("kscope_shard_proxy_retries_total").Value()
	resp2, _ := fetch(t, ts.URL+"/api/tests/"+ringTestID)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request = %d", resp2.StatusCode)
	}
	if after := reg.Counter("kscope_shard_proxy_retries_total").Value(); after != before {
		t.Errorf("sticky preference still retried (%d -> %d)", before, after)
	}
}

// TestRouterRetryAfterNormalization: chaos can strip Retry-After from a
// downstream 503; the deployment face must restore the shed contract.
func TestRouterRetryAfterNormalization(t *testing.T) {
	bare503 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable) // no Retry-After
	}))
	defer bare503.Close()
	rt, err := New(Config{
		Shards:  []Spec{{Name: "s0", Primary: bare503.URL}},
		Retries: 1, Backoff: time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	defer ts.Close()
	resp, _ := fetch(t, ts.URL+"/api/tests/"+ringTestID)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("router relayed a 503 without Retry-After")
	}
}

// TestRouterFencedRotation: a node still answering but marked fenced is a
// deposed primary; the router must abandon its answer and take the
// standby's.
func TestRouterFencedRotation(t *testing.T) {
	fenced := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set(server.FencedHeader, "1")
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("stale"))
	}))
	defer fenced.Close()
	fresh := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("fresh"))
	}))
	defer fresh.Close()

	reg := obs.NewRegistry()
	rt, err := New(Config{
		Shards:  []Spec{{Name: "s0", Primary: fenced.URL, Standby: fresh.URL}},
		Retries: 2, Backoff: time.Millisecond, Registry: reg, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	defer ts.Close()
	resp, body := fetch(t, ts.URL+"/api/tests/x/task")
	if resp.StatusCode != http.StatusOK || string(body) != "fresh" {
		t.Fatalf("got %d %q, want the standby's answer", resp.StatusCode, body)
	}
}

// TestRouterStaleEpochRotation: once the router has seen epoch E from a
// shard, a node still answering from E-1 (a zombie that does not know it
// was deposed) is abandoned even though its responses look healthy.
func TestRouterStaleEpochRotation(t *testing.T) {
	zombie := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set(server.EpochHeader, "1")
		w.Write([]byte("zombie"))
	}))
	defer zombie.Close()
	var standbyCalls int
	standby := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		standbyCalls++
		if standbyCalls == 2 {
			// One hiccup sends the preference back to the zombie; the
			// zombie's stale epoch must bounce it straight back here.
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set(server.EpochHeader, "2")
		w.Write([]byte("promoted"))
	}))
	defer standby.Close()

	rt, err := New(Config{
		Shards:  []Spec{{Name: "s0", Primary: standby.URL, Standby: zombie.URL}},
		Retries: 4, Backoff: time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	defer ts.Close()

	// First request: the promoted node answers with epoch 2.
	resp, body := fetch(t, ts.URL+"/api/tests/x/task")
	if resp.StatusCode != http.StatusOK || string(body) != "promoted" {
		t.Fatalf("first = %d %q", resp.StatusCode, body)
	}
	// Second request: 503 rotates to the zombie, whose epoch-1 answer must
	// be rejected as stale and the request retried on the promoted node.
	resp, body = fetch(t, ts.URL+"/api/tests/x/task")
	if resp.StatusCode != http.StatusOK || string(body) != "promoted" {
		t.Fatalf("second = %d %q — the zombie's stale answer leaked through", resp.StatusCode, body)
	}
}

// TestRouterPartialResults: a fully-lost ring segment degrades /results to
// a partial snapshot instead of failing it; a fully-lost fleet is a 503.
func TestRouterPartialResults(t *testing.T) {
	f := newFixture(t, 3)
	uploadFixtureCrowd(t, f, 6, nil)

	// Kill a shard that owns at least one session (no standby): its
	// segment — and its share of the crowd — is gone.
	victim, victimShare := 0, 0
	for i := range f.dbs {
		share := 0
		for j := 0; j < 6; j++ {
			if f.router.Ring().Owner(SessionKey(ringTestID, fmt.Sprintf("w%03d", j))) == i {
				share++
			}
		}
		if share > 0 && share < 6 {
			victim, victimShare = i, share
			break
		}
	}
	if victimShare == 0 {
		t.Fatal("no shard owns a strict subset of the crowd; fixture cannot exercise partial results")
	}
	f.nodeTS[victim].Close()
	resp, body := fetch(t, f.routerTS.URL+"/api/tests/"+ringTestID+"/results")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial results = %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get(PartialHeader) != "1" {
		t.Error("lost segment did not mark the response partial")
	}
	var res server.Results
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Workers != 6-victimShare {
		t.Errorf("partial snapshot holds %d workers, want %d (lost shard owned %d)", res.Workers, 6-victimShare, victimShare)
	}
	if f.reg.Counter("kscope_shard_partial_results_total").Value() == 0 {
		t.Error("partial counter never moved")
	}

	// The quality path degrades the same way.
	resp, body = fetch(t, f.routerTS.URL+"/api/tests/"+ringTestID+"/results?quality=1")
	if resp.StatusCode != http.StatusOK || resp.Header.Get(PartialHeader) != "1" {
		t.Errorf("partial quality results = %d partial=%q: %s", resp.StatusCode, resp.Header.Get(PartialHeader), body)
	}

	// Readiness reports the lost segment.
	resp, body = fetch(t, f.routerTS.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("readyz with a lost segment = %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte(`"degraded"`)) {
		t.Errorf("readyz body = %s", body)
	}

	// Whole fleet gone: now it IS an outage.
	for i, ts := range f.nodeTS {
		if i != victim {
			ts.Close()
		}
	}
	resp, _ = fetch(t, f.routerTS.URL+"/api/tests/"+ringTestID+"/results")
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("fleet-wide outage = %d, want 503 + Retry-After", resp.StatusCode)
	}
}

func TestRouterReadyzHealthy(t *testing.T) {
	f := newFixture(t, 2)
	resp, body := fetch(t, f.routerTS.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d: %s", resp.StatusCode, body)
	}
	var rep struct {
		Status string           `json:"status"`
		Shards []shardReadiness `json:"shards"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != "ready" || len(rep.Shards) != 2 {
		t.Errorf("readyz report = %+v", rep)
	}
}

// TestRouterGhostTestPaths: every scatter/gather surface passes a
// definitive 404 through when no shard knows the test.
func TestRouterGhostTestPaths(t *testing.T) {
	f := newFixture(t, 2)
	for _, path := range []string{
		"/api/tests/ghost/results",
		"/api/tests/ghost/results?quality=1",
		"/api/tests/ghost/sessions",
	} {
		resp, body := fetch(t, f.routerTS.URL+path)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s = %d: %s", path, resp.StatusCode, body)
		}
	}
	resp, _ := fetch(t, f.routerTS.URL+"/api/tests/")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("empty test id = %d, want 404", resp.StatusCode)
	}
}

// TestRouterBatchEdgeCases: the batch splitter's input validation and the
// empty-batch forward to the home shard.
func TestRouterBatchEdgeCases(t *testing.T) {
	f := newFixture(t, 2)
	url := f.routerTS.URL + "/api/tests/" + ringTestID + "/sessions:batch"

	// Malformed JSON is rejected at the router, before any shard sees it.
	resp := postJSONBytes(t, url, []byte("{not json"))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed batch = %d, want 400", resp.StatusCode)
	}

	// A corrupt gzip stream is rejected the same way.
	req, _ := http.NewRequest(http.MethodPost, url, bytes.NewReader([]byte("junk")))
	req.Header.Set("Content-Encoding", "gzip")
	gresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, gresp.Body)
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt gzip batch = %d, want 400", gresp.StatusCode)
	}

	// An empty batch has nothing to split: the home shard answers with the
	// single-node semantics, whatever they are — the router must relay, not
	// invent.
	eresp := postJSONBytes(t, url, []byte("[]"))
	ebody, _ := io.ReadAll(eresp.Body)
	eresp.Body.Close()
	single, _, _ := prepNode(t)
	sreq := httptest.NewRequest(http.MethodPost, "/api/tests/"+ringTestID+"/sessions:batch", bytes.NewReader([]byte("[]")))
	sreq.Header.Set("Content-Type", "application/json")
	srec := httptest.NewRecorder()
	single.ServeHTTP(srec, sreq)
	if eresp.StatusCode != srec.Code {
		t.Errorf("empty batch through router = %d, single node = %d: %s", eresp.StatusCode, srec.Code, ebody)
	}
}

// TestRouterHonorsRetryAfter: a shed with Retry-After makes the router
// wait (capped) and retry — and succeed when the shard recovers.
func TestRouterHonorsRetryAfter(t *testing.T) {
	var calls int
	flappy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls++
		if calls == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("recovered"))
	}))
	defer flappy.Close()
	rt, err := New(Config{
		Shards:  []Spec{{Name: "s0", Primary: flappy.URL}},
		Retries: 2, Backoff: time.Millisecond, MaxRetryAfter: 10 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	defer ts.Close()
	start := time.Now()
	resp, body := fetch(t, ts.URL+"/api/tests/x/task")
	if resp.StatusCode != http.StatusOK || string(body) != "recovered" {
		t.Fatalf("got %d %q", resp.StatusCode, body)
	}
	// The 1s Retry-After must have been capped to MaxRetryAfter.
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("retry waited %s; Retry-After cap not applied", elapsed)
	}
}

// TestRouterSessionListPartial: the merged session list flags a lost
// segment like the results merge does.
func TestRouterSessionListPartial(t *testing.T) {
	f := newFixture(t, 3)
	uploadFixtureCrowd(t, f, 6, nil)
	victim := -1
	for i := range f.dbs {
		for j := 0; j < 6; j++ {
			if f.router.Ring().Owner(SessionKey(ringTestID, fmt.Sprintf("w%03d", j))) == i {
				victim = i
				break
			}
		}
		if victim >= 0 {
			break
		}
	}
	// The victim owning sessions must not be the test's home shard: the
	// session list needs test info to distinguish "no test" from "no
	// sessions", and info is read round-robin from the home shard on.
	f.nodeTS[victim].Close()
	resp, body := fetch(t, f.routerTS.URL+"/api/tests/"+ringTestID+"/sessions")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial session list = %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get(PartialHeader) != "1" {
		t.Error("lost segment did not mark the session list partial")
	}
	var ups []server.SessionUpload
	if err := json.Unmarshal(body, &ups); err != nil {
		t.Fatal(err)
	}
	if len(ups) >= 6 {
		t.Errorf("partial list holds %d sessions, want fewer than 6", len(ups))
	}
	// The test listing flags it too.
	resp, _ = fetch(t, f.routerTS.URL+"/api/tests")
	if resp.StatusCode != http.StatusOK || resp.Header.Get(PartialHeader) != "1" {
		t.Errorf("test listing with lost segment = %d partial=%q", resp.StatusCode, resp.Header.Get(PartialHeader))
	}
}
