package shard

import (
	"fmt"
	"math/rand"
	"testing"
)

// ringKeys generates a seeded, deterministic key population shaped like
// production traffic: session keys for a handful of tests and a few
// thousand workers each.
func ringKeys(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = SessionKey(
			fmt.Sprintf("test-%d", rng.Intn(16)),
			fmt.Sprintf("w%08x", rng.Uint32()))
	}
	return keys
}

func shardNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("http://shard-%d:8780", i)
	}
	return names
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty shard list should fail")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty shard name should fail")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Error("duplicate shard name should fail")
	}
	r, err := NewRing([]string{"solo"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.OwnerName("anything"); got != "solo" {
		t.Errorf("single-shard ring owner = %q", got)
	}
}

// TestRingDeterministic pins the restart contract: the same shard names
// produce the same ownership for every key, regardless of the order the
// names were listed in.
func TestRingDeterministic(t *testing.T) {
	names := shardNames(5)
	a, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	permuted := []string{names[3], names[0], names[4], names[2], names[1]}
	c, err := NewRing(permuted, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range ringKeys(11, 5000) {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("ring not deterministic for %q", key)
		}
		if a.OwnerName(key) != c.OwnerName(key) {
			t.Fatalf("ownership of %q depends on shard list order: %q vs %q",
				key, a.OwnerName(key), c.OwnerName(key))
		}
	}
}

// TestRingBalance is the ±15% balance property: with the default virtual
// node count, every shard's share of a large seeded key population stays
// within 15% of the uniform share.
func TestRingBalance(t *testing.T) {
	for _, shardCount := range []int{2, 3, 5, 8} {
		ring, err := NewRing(shardNames(shardCount), 0)
		if err != nil {
			t.Fatal(err)
		}
		keys := ringKeys(42, 40_000)
		counts := make([]int, shardCount)
		for _, key := range keys {
			counts[ring.Owner(key)]++
		}
		mean := float64(len(keys)) / float64(shardCount)
		for i, c := range counts {
			dev := (float64(c) - mean) / mean
			if dev < -0.15 || dev > 0.15 {
				t.Errorf("%d shards: shard %d holds %d keys, %.1f%% off the uniform %0.f",
					shardCount, i, c, dev*100, mean)
			}
		}
	}
}

// TestRingMinimalRemapOnAdd is the consistent-hashing property that makes
// future rebalancing proportional: when a shard joins, the only keys that
// change owner are those moving TO the new shard, and they are roughly a
// 1/N share.
func TestRingMinimalRemapOnAdd(t *testing.T) {
	names := shardNames(4)
	before, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	grown := append(append([]string(nil), names...), "http://shard-new:8780")
	after, err := NewRing(grown, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := ringKeys(7, 40_000)
	moved := 0
	for _, key := range keys {
		oldName, newName := before.OwnerName(key), after.OwnerName(key)
		if oldName == newName {
			continue
		}
		moved++
		if newName != "http://shard-new:8780" {
			t.Fatalf("key %q moved %q -> %q, not to the new shard", key, oldName, newName)
		}
	}
	frac := float64(moved) / float64(len(keys))
	want := 1.0 / float64(len(grown))
	if frac < want*0.7 || frac > want*1.3 {
		t.Errorf("adding a 5th shard moved %.1f%% of keys, want ~%.1f%% (±30%% rel)", frac*100, want*100)
	}
}

// TestRingMinimalRemapOnRemove is the inverse property: when a shard
// leaves, only ITS keys move (to survivors); everyone else's stay put.
func TestRingMinimalRemapOnRemove(t *testing.T) {
	names := shardNames(5)
	before, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	removed := names[2]
	shrunk := append(append([]string(nil), names[:2]...), names[3:]...)
	after, err := NewRing(shrunk, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := ringKeys(13, 40_000)
	moved, owned := 0, 0
	for _, key := range keys {
		oldName := before.OwnerName(key)
		if oldName == removed {
			owned++
		}
		newName := after.OwnerName(key)
		if oldName == newName {
			continue
		}
		moved++
		if oldName != removed {
			t.Fatalf("key %q moved %q -> %q though its shard never left", key, oldName, newName)
		}
	}
	if moved != owned {
		t.Errorf("removed shard owned %d keys but %d moved", owned, moved)
	}
	frac := float64(moved) / float64(len(keys))
	want := 1.0 / float64(len(names))
	if frac < want*0.7 || frac > want*1.3 {
		t.Errorf("removing a shard moved %.1f%% of keys, want ~%.1f%%", frac*100, want*100)
	}
}

func TestRingKeys(t *testing.T) {
	if got := SessionKey("t1", "w1"); got != "t1/w1" {
		t.Errorf("SessionKey = %q", got)
	}
	if got := TestKey("t1"); got != "t1" {
		t.Errorf("TestKey = %q", got)
	}
	ring, err := NewRing([]string{"a", "b"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ring.Shards()); got != 2 {
		t.Errorf("Shards() len = %d", got)
	}
	// A worker's upload key equals its stored document id, so the 409
	// duplicate of a retried upload lands on the same shard.
	if ring.Owner(SessionKey("t", "w")) != ring.Owner("t/w") {
		t.Error("session key must match the store's document id routing")
	}
}
