package shard

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"kaleidoscope/internal/server"
)

// fanResult is one shard's answer to a fleet-wide scatter.
type fanResult struct {
	up  *upstream
	err error
}

// fanOut issues the same request to every shard concurrently, each with
// the full per-shard failover/retry budget.
func (rt *Router) fanOut(ctx context.Context, method, path string, hdr http.Header, body []byte) []fanResult {
	out := make([]fanResult, len(rt.shards))
	var wg sync.WaitGroup
	for i, ss := range rt.shards {
		wg.Add(1)
		go func(i int, ss *shardState) {
			defer wg.Done()
			up, err := rt.doShard(ctx, ss, method, path, hdr, body)
			out[i] = fanResult{up: up, err: err}
		}(i, ss)
	}
	wg.Wait()
	return out
}

// handleResults is the scatter/gather conclusion merge.
//
// Raw results merge shard-locally concluded tallies: every shard answers
// /results from its incremental accumulator, and the router adds the
// per-page questionnaire tallies field-wise — the accumulator's own merge
// algebra, so the merged payload is byte-identical to a single node
// holding all sessions.
//
// ?quality=1 cannot merge that way: the quality battery's majority vote
// is computed across the whole crowd, so per-shard filtered results would
// each vote inside their own partition. The router instead gathers the
// raw stored sessions from every shard (each list already in document-id
// order, i.e. sorted by worker id) and runs the single-node conclusion
// over the merged set via server.ConcludeUploads.
//
// Either way, a shard whose primary and standby are both gone does not
// fail the query: the router serves what the surviving shards hold and
// marks the response X-Kscope-Partial: 1. Only the whole fleet being
// unreachable yields a 503.
func (rt *Router) handleResults(w http.ResponseWriter, r *http.Request, testID string) {
	if r.URL.Query().Get("quality") == "1" {
		rt.resultsQuality(w, r, testID)
		return
	}
	rt.resultsRaw(w, r, testID)
}

func (rt *Router) resultsRaw(w http.ResponseWriter, r *http.Request, testID string) {
	path := "/api/tests/" + testID + "/results"
	fans := rt.fanOut(r.Context(), http.MethodGet, path, r.Header, nil)

	var merged *server.Results
	pageIdx := map[string]int{}
	var down, notFound, ok int
	degraded := false
	var lastErr error
	var passThrough *upstream
	for _, f := range fans {
		switch {
		case f.err != nil:
			down++
			lastErr = f.err
		case f.up.status == http.StatusNotFound:
			notFound++
			passThrough = f.up
		case f.up.status != http.StatusOK:
			// A shard that answered but could not conclude (degraded 503
			// with nothing cached, mid-delete 500) counts as missing, not
			// fatal: the surviving shards still serve a partial snapshot.
			down++
			lastErr = fmt.Errorf("shard answered status %d", f.up.status)
			passThrough = f.up
		default:
			var res server.Results
			if err := json.Unmarshal(f.up.body, &res); err != nil {
				down++
				lastErr = fmt.Errorf("corrupt shard results: %w", err)
				continue
			}
			ok++
			if f.up.header.Get(server.DegradedHeader) == "1" {
				degraded = true
			}
			if merged == nil {
				merged = &res
				for i, p := range res.Pages {
					pageIdx[p.PageID] = i
				}
				continue
			}
			merged.Workers += res.Workers
			for _, p := range res.Pages {
				if i, okIdx := pageIdx[p.PageID]; okIdx {
					merged.Pages[i].Tally.Left += p.Tally.Left
					merged.Pages[i].Tally.Right += p.Tally.Right
					merged.Pages[i].Tally.Same += p.Tally.Same
				}
			}
		}
	}
	switch {
	case ok == 0 && notFound > 0:
		// Every reachable shard says the test is gone.
		rt.writeUpstream(w, passThrough)
		return
	case ok == 0 && passThrough != nil:
		rt.writeUpstream(w, passThrough)
		return
	case ok == 0:
		rt.writeUnreachable(w, "results", lastErr)
		return
	}
	rt.finishGather(w, merged, down > 0, degraded)
}

func (rt *Router) resultsQuality(w http.ResponseWriter, r *http.Request, testID string) {
	info, up, err := rt.testInfo(r.Context(), testID, r.Header)
	if err != nil {
		rt.writeUnreachable(w, "results", err)
		return
	}
	if info == nil {
		rt.writeUpstream(w, up) // definitive non-200 (404, shed...)
		return
	}
	uploads, partial, degraded, err := rt.gatherSessions(r.Context(), testID, r.Header)
	if err != nil {
		rt.writeUnreachable(w, "results", err)
		return
	}
	res, err := server.ConcludeUploads(info, uploads, true)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "concluding: %v", err)
		return
	}
	rt.finishGather(w, res, partial, degraded)
}

func (rt *Router) finishGather(w http.ResponseWriter, res *server.Results, partial, degraded bool) {
	if partial {
		w.Header().Set(PartialHeader, "1")
		if rt.partials != nil {
			rt.partials.Inc()
		}
	}
	if degraded {
		w.Header().Set(server.DegradedHeader, "1")
	}
	writeJSON(w, http.StatusOK, res)
}

// testInfo fetches a test's metadata, walking the ring from the home
// shard so a fully-lost segment does not hide a test every other shard
// also holds (prepared content is provisioned fleet-wide). A definitive
// non-200 answer is returned as the upstream to pass through; only every
// shard being unreachable is an error.
func (rt *Router) testInfo(ctx context.Context, testID string, hdr http.Header) (*server.TestInfo, *upstream, error) {
	path := "/api/tests/" + testID
	home := rt.ring.Owner(TestKey(testID))
	var lastErr error
	for i := 0; i < len(rt.shards); i++ {
		ss := rt.shards[(home+i)%len(rt.shards)]
		up, err := rt.doShard(ctx, ss, http.MethodGet, path, hdr, nil)
		if err != nil {
			lastErr = err
			continue
		}
		if up.status != http.StatusOK {
			return nil, up, nil
		}
		var info server.TestInfo
		if err := json.Unmarshal(up.body, &info); err != nil {
			lastErr = fmt.Errorf("corrupt test info from shard %s: %w", ss.spec.Name, err)
			continue
		}
		return &info, up, nil
	}
	return nil, nil, lastErr
}

// gatherSessions collects every shard's stored sessions for a test and
// merges them into global document-id order (each shard's list is already
// sorted by worker id; session keys partition workers across shards, so a
// sort by worker id reproduces the order a single node would store).
func (rt *Router) gatherSessions(ctx context.Context, testID string, hdr http.Header) (uploads []server.SessionUpload, partial, degraded bool, err error) {
	path := "/api/tests/" + testID + "/sessions"
	fans := rt.fanOut(ctx, http.MethodGet, path, hdr, nil)
	var down, ok int
	var lastErr error
	for _, f := range fans {
		switch {
		case f.err != nil:
			down++
			lastErr = f.err
		case f.up.status == http.StatusNotFound:
			// Deleted on this shard (or never prepared): zero contribution.
			ok++
		case f.up.status != http.StatusOK:
			down++
			lastErr = fmt.Errorf("shard answered status %d", f.up.status)
		default:
			var part []server.SessionUpload
			if err := json.Unmarshal(f.up.body, &part); err != nil {
				down++
				lastErr = fmt.Errorf("corrupt session list: %w", err)
				continue
			}
			ok++
			if f.up.header.Get(server.DegradedHeader) == "1" {
				degraded = true
			}
			uploads = append(uploads, part...)
		}
	}
	if ok == 0 {
		return nil, false, false, lastErr
	}
	sort.Slice(uploads, func(a, b int) bool {
		return uploads[a].WorkerID < uploads[b].WorkerID
	})
	return uploads, down > 0, degraded, nil
}

// handleSessionList serves the deployment-face session list: the same
// gather the quality merge uses, exposed so a router client sees the same
// surface a single node offers.
func (rt *Router) handleSessionList(w http.ResponseWriter, r *http.Request, testID string) {
	info, up, err := rt.testInfo(r.Context(), testID, r.Header)
	if err != nil {
		rt.writeUnreachable(w, "session list", err)
		return
	}
	if info == nil {
		rt.writeUpstream(w, up)
		return
	}
	uploads, partial, degraded, err := rt.gatherSessions(r.Context(), testID, r.Header)
	if err != nil {
		rt.writeUnreachable(w, "session list", err)
		return
	}
	if partial {
		w.Header().Set(PartialHeader, "1")
		if rt.partials != nil {
			rt.partials.Inc()
		}
	}
	if degraded {
		w.Header().Set(server.DegradedHeader, "1")
	}
	if uploads == nil {
		uploads = []server.SessionUpload{}
	}
	writeJSON(w, http.StatusOK, uploads)
}

// handleListTests merges every shard's test listing; session counts sum
// across shards, the static fields (description, participants, pages)
// come from whichever shard answered first.
func (rt *Router) handleListTests(w http.ResponseWriter, r *http.Request) {
	fans := rt.fanOut(r.Context(), http.MethodGet, "/api/tests", r.Header, nil)
	byID := map[string]*server.TestSummary{}
	var order []string
	var down, ok int
	var lastErr error
	for _, f := range fans {
		switch {
		case f.err != nil:
			down++
			lastErr = f.err
		case f.up.status != http.StatusOK:
			down++
			lastErr = fmt.Errorf("shard answered status %d", f.up.status)
		default:
			var part []server.TestSummary
			if err := json.Unmarshal(f.up.body, &part); err != nil {
				down++
				lastErr = fmt.Errorf("corrupt test listing: %w", err)
				continue
			}
			ok++
			for i := range part {
				s := part[i]
				if have, seen := byID[s.TestID]; seen {
					have.Sessions += s.Sessions
				} else {
					byID[s.TestID] = &s
					order = append(order, s.TestID)
				}
			}
		}
	}
	if ok == 0 {
		rt.writeUnreachable(w, "test listing", lastErr)
		return
	}
	sort.Strings(order)
	out := make([]server.TestSummary, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	if down > 0 {
		w.Header().Set(PartialHeader, "1")
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDelete fans a test deletion to every shard (sessions live
// fleet-wide; prepared content is provisioned fleet-wide) and sums the
// sweep counts. Deletion stays idempotent end to end: a shard that was
// unreachable keeps its data, the router answers 503, and the client's
// retry re-sweeps — shards already swept answer 404, which merges as
// zero contribution.
func (rt *Router) handleDelete(w http.ResponseWriter, r *http.Request, testID string) {
	fans := rt.fanOut(r.Context(), http.MethodDelete, r.URL.RequestURI(), r.Header, nil)
	var pages, sessions, blobs float64
	var ok, notFound int
	var firstNotFound, failed *upstream
	var lastErr error
	for _, f := range fans {
		switch {
		case f.err != nil:
			lastErr = f.err
		case f.up.status == http.StatusNotFound:
			notFound++
			if firstNotFound == nil {
				firstNotFound = f.up
			}
		case f.up.status != http.StatusOK:
			if failed == nil {
				failed = f.up
			}
		default:
			ok++
			var counts map[string]any
			if json.Unmarshal(f.up.body, &counts) == nil {
				pages += numField(counts, "pages")
				sessions += numField(counts, "sessions")
				blobs += numField(counts, "blobs")
			}
		}
	}
	switch {
	case lastErr != nil:
		rt.writeUnreachable(w, "test deletion", lastErr)
	case failed != nil:
		rt.writeUpstream(w, failed)
	case ok == 0 && notFound > 0:
		rt.writeUpstream(w, firstNotFound)
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "deleted",
			"test_id":  testID,
			"pages":    int(pages),
			"sessions": int(sessions),
			"blobs":    int(blobs),
		})
	}
}

func numField(m map[string]any, key string) float64 {
	v, _ := m[key].(float64)
	return v
}

// shardReadiness is one shard's row in the aggregated /readyz body.
type shardReadiness struct {
	Name  string         `json:"name"`
	Ready bool           `json:"ready"`
	Nodes map[string]int `json:"nodes"` // node URL -> status (0 = unreachable)
}

// handleReady aggregates fleet health: a shard segment is ready when any
// of its nodes (primary or promoted standby) answers /readyz 200; the
// deployment is ready when every segment is. Probes are single attempts
// on a short timeout — readiness must report now, not after a retry
// budget.
func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	rows := make([]shardReadiness, len(rt.shards))
	var wg sync.WaitGroup
	for i, ss := range rt.shards {
		wg.Add(1)
		go func(i int, ss *shardState) {
			defer wg.Done()
			row := shardReadiness{Name: ss.spec.Name, Nodes: map[string]int{}}
			for _, n := range ss.nodes {
				ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.base+"/readyz", nil)
				if err != nil {
					cancel()
					continue
				}
				resp, err := n.httpc.Do(req)
				if err != nil {
					cancel()
					row.Nodes[n.base] = 0
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				cancel()
				row.Nodes[n.base] = resp.StatusCode
				if resp.StatusCode == http.StatusOK {
					row.Ready = true
				}
			}
			rows[i] = row
		}(i, ss)
	}
	wg.Wait()
	ready := true
	for _, row := range rows {
		if !row.Ready {
			ready = false
		}
	}
	status, label := http.StatusOK, "ready"
	if !ready {
		status, label = http.StatusServiceUnavailable, "degraded"
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]any{"status": label, "shards": rows})
}

// handleBatch splits a batched upload by session key and forwards each
// sub-batch to its owning shard, reassembling per-element statuses in the
// caller's element order. Split semantics stay idempotent: if any shard's
// sub-batch fails outright the router answers 503 and the client retries
// the whole batch — elements that committed answer 409 on the retry,
// which the batch client already treats as success.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request, testID string) {
	body, err := readBody(r, maxProxyBody)
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading batch: %v", err)
		return
	}
	if r.Header.Get("Content-Encoding") == "gzip" {
		zr, zerr := gzip.NewReader(bytes.NewReader(body))
		if zerr != nil {
			writeError(w, http.StatusBadRequest, "batch gzip stream: %v", zerr)
			return
		}
		body, err = io.ReadAll(io.LimitReader(zr, maxProxyBody+1))
		if err != nil || int64(len(body)) > maxProxyBody {
			writeError(w, http.StatusRequestEntityTooLarge, "batch too large after decompression")
			return
		}
	}
	var elems []json.RawMessage
	dec := json.NewDecoder(bytes.NewReader(body))
	if err := dec.Decode(&elems); err != nil {
		writeError(w, http.StatusBadRequest, "malformed batch: %v", err)
		return
	}
	if len(elems) > routerMaxBatchSessions {
		writeError(w, http.StatusRequestEntityTooLarge,
			"batch of %d sessions exceeds the %d-session limit", len(elems), routerMaxBatchSessions)
		return
	}
	if len(elems) == 0 {
		// Nothing to split: let the home shard apply the single-node
		// empty-batch semantics.
		rt.forwardBatch(w, r, testID, body)
		return
	}

	// Group element indices by owning shard, preserving order within each
	// group so a shard's report maps back positionally.
	groups := make(map[int][]int)
	for i, raw := range elems {
		workerID := sniffWorkerID(raw)
		shardIdx := rt.ring.Owner(SessionKey(testID, workerID))
		groups[shardIdx] = append(groups[shardIdx], i)
	}

	type subResult struct {
		indices []int
		up      *upstream
		err     error
	}
	results := make([]subResult, 0, len(groups))
	for shardIdx, indices := range groups {
		results = append(results, subResult{indices: indices})
		sub := &results[len(results)-1]
		var buf bytes.Buffer
		buf.WriteByte('[')
		for j, i := range indices {
			if j > 0 {
				buf.WriteByte(',')
			}
			buf.Write(elems[i])
		}
		buf.WriteByte(']')
		sub.up, sub.err = rt.doShard(r.Context(), rt.shards[shardIdx],
			http.MethodPost, r.URL.RequestURI(), batchHeader(r.Header), buf.Bytes())
	}

	merged := server.BatchReport{
		TestID:  testID,
		Results: make([]server.BatchElementResult, len(elems)),
	}
	for _, sub := range results {
		switch {
		case sub.err != nil:
			rt.writeUnreachable(w, "batch upload", sub.err)
			return
		case sub.up.status == http.StatusOK && sub.up.header.Get(server.ConcludedHeader) == "1":
			// The test concluded mid-batch on this shard; relay the
			// concluded acknowledgement for the whole batch (other shards'
			// stored elements answer 409 if the client ever retries).
			rt.writeUpstream(w, sub.up)
			return
		case sub.up.status != http.StatusOK:
			// A stream-level sub-batch failure. The router built this
			// sub-batch from decoded JSON, so 400/413 here means the shard
			// is refusing work; relay 5xx/429 (with Retry-After) and pass
			// definitive 4xx through so the client sees the shard's answer.
			rt.writeUpstream(w, sub.up)
			return
		}
		var rep server.BatchReport
		if err := json.Unmarshal(sub.up.body, &rep); err != nil || len(rep.Results) != len(sub.indices) {
			rt.writeUnreachable(w, "batch upload", errors.New("corrupt sub-batch report"))
			return
		}
		merged.Accepted += rep.Accepted
		merged.Rejected += rep.Rejected
		for j, er := range rep.Results {
			er.Index = sub.indices[j]
			merged.Results[er.Index] = er
		}
	}
	writeJSON(w, http.StatusOK, merged)
}

// forwardBatch relays an (already decompressed) batch body to the test's
// home shard.
func (rt *Router) forwardBatch(w http.ResponseWriter, r *http.Request, testID string, body []byte) {
	ss := rt.shards[rt.ring.Owner(TestKey(testID))]
	up, err := rt.doShard(r.Context(), ss, http.MethodPost, r.URL.RequestURI(), batchHeader(r.Header), body)
	if err != nil {
		rt.writeUnreachable(w, "batch upload", err)
		return
	}
	rt.writeUpstream(w, up)
}

// batchHeader strips the original Content-Encoding: sub-batches are
// re-encoded as plain JSON.
func batchHeader(src http.Header) http.Header {
	h := src.Clone()
	h.Del("Content-Encoding")
	h.Set("Content-Type", "application/json")
	return h
}
