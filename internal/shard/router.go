package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kaleidoscope/internal/guard"
	"kaleidoscope/internal/obs"
	"kaleidoscope/internal/server"
)

// PartialHeader marks a scatter/gather response that is missing one or
// more shards' contributions because a shard and its standby were both
// unreachable. Partial results are the degraded read the router serves
// instead of failing the whole query for one lost ring segment.
const PartialHeader = "X-Kscope-Partial"

// Spec names one shard: the primary node's base URL and, optionally, its
// warm standby's. Name is the shard's ring identity — it must stay stable
// across router restarts or keys remap; it defaults to the primary URL.
type Spec struct {
	Name    string
	Primary string
	Standby string
}

func (s Spec) nodes() []string {
	if s.Standby == "" {
		return []string{s.Primary}
	}
	return []string{s.Primary, s.Standby}
}

// Config wires a Router.
type Config struct {
	// Shards is the static membership list (at least one entry).
	Shards []Spec
	// VirtualNodes is the per-shard ring point count (<= 0 selects
	// DefaultVirtualNodes).
	VirtualNodes int
	// Retries is the extra-attempt budget per proxied request; attempts
	// rotate primary -> standby -> primary... (default 8).
	Retries int
	// Backoff is the base delay before the first retry, doubling per
	// attempt with ±50% jitter (default 25ms).
	Backoff time.Duration
	// MaxRetryAfter caps how long a downstream Retry-After may make the
	// router wait between attempts (default 2s).
	MaxRetryAfter time.Duration
	// Timeout bounds each proxied attempt (default 10s).
	Timeout time.Duration
	// Transport, when set, supplies the per-link RoundTripper for a
	// (shard, node) pair — the chaos-injection seam. Nil links use
	// http.DefaultTransport.
	Transport func(shardName, nodeURL string) http.RoundTripper
	// Registry, when set, receives the router's own counters.
	Registry *obs.Registry
	// Seed makes retry jitter deterministic in tests (0 seeds from the
	// global source).
	Seed int64
}

// Defaults for the proxy retry budget.
const (
	defaultRetries       = 8
	defaultBackoff       = 25 * time.Millisecond
	defaultMaxRetryAfter = 2 * time.Second
	defaultTimeout       = 10 * time.Second
	maxProxyBackoff      = time.Second
	// maxProxyBody bounds any single buffered request or response body.
	// Bodies are buffered, not streamed, because a retried attempt must
	// replay the bytes; the server's own budgets (1MiB sessions, 32MiB
	// batches) sit far below this backstop.
	maxProxyBody = 64 << 20
	// routerMaxBatchSessions mirrors the server's per-batch element cap so
	// a split batch cannot smuggle more elements past it than a
	// single-node deployment would accept.
	routerMaxBatchSessions = 10_000
)

// node is one reachable process of a shard (primary or standby).
type node struct {
	base  string
	httpc *http.Client
}

// shardState is the router's per-shard view: the node list (primary
// first) plus which node requests currently prefer and the highest
// replication epoch any response from this shard has carried. A response
// from a lower epoch is a deposed primary — possibly a zombie that does
// not know it yet — and rotates the preference to the standby, exactly
// like the extension client's failover ring.
type shardState struct {
	spec      Spec
	nodes     []node
	preferred atomic.Int64
	maxEpoch  atomic.Uint64
}

func (ss *shardState) current() (node, int64) {
	idx := ss.preferred.Load()
	return ss.nodes[int(idx%int64(len(ss.nodes)))], idx
}

// rotateFrom advances past the node observed failing, unless a concurrent
// request already advanced — racing failures must not skip a healthy node.
func (ss *shardState) rotateFrom(idx int64) bool {
	return len(ss.nodes) > 1 && ss.preferred.CompareAndSwap(idx, idx+1)
}

// Router is the deployment's thin HTTP tier: mostly stateless (the only
// state is per-shard node preference and observed epochs), it owns no
// data and can be restarted or replicated freely.
type Router struct {
	cfg    Config
	ring   *Ring
	shards []*shardState

	rngMu sync.Mutex
	rng   *rand.Rand

	reg       *obs.Registry
	retries   *obs.Counter
	failovers *obs.Counter
	partials  *obs.Counter
	exhausted *obs.Counter
}

// New builds the router over a static shard list.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one shard")
	}
	if cfg.Retries <= 0 {
		cfg.Retries = defaultRetries
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = defaultBackoff
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = defaultMaxRetryAfter
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = defaultTimeout
	}
	names := make([]string, len(cfg.Shards))
	states := make([]*shardState, len(cfg.Shards))
	for i, spec := range cfg.Shards {
		if spec.Primary == "" {
			return nil, fmt.Errorf("shard: shard %d has no primary URL", i)
		}
		if spec.Name == "" {
			spec.Name = spec.Primary
		}
		names[i] = spec.Name
		ss := &shardState{spec: spec}
		for _, base := range spec.nodes() {
			var rt http.RoundTripper
			if cfg.Transport != nil {
				rt = cfg.Transport(spec.Name, base)
			}
			ss.nodes = append(ss.nodes, node{
				base:  strings.TrimRight(base, "/"),
				httpc: &http.Client{Transport: rt},
			})
		}
		states[i] = ss
	}
	ring, err := NewRing(names, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = rand.Int63()
	}
	rt := &Router{
		cfg:    cfg,
		ring:   ring,
		shards: states,
		rng:    rand.New(rand.NewSource(seed)),
		reg:    cfg.Registry,
	}
	if rt.reg != nil {
		rt.retries = rt.reg.Counter("kscope_shard_proxy_retries_total")
		rt.failovers = rt.reg.Counter("kscope_shard_failovers_total")
		rt.partials = rt.reg.Counter("kscope_shard_partial_results_total")
		rt.exhausted = rt.reg.Counter("kscope_shard_exhausted_total")
		rt.reg.RegisterGauge("kscope_shard_count", func() float64 {
			return float64(len(states))
		})
	}
	return rt, nil
}

// Ring exposes the routing ring (tests and operators asking "who owns
// this key").
func (rt *Router) Ring() *Ring { return rt.ring }

// upstream is one buffered downstream response.
type upstream struct {
	status int
	header http.Header
	body   []byte
}

func (up *upstream) retryAfter() time.Duration {
	if up == nil {
		return 0
	}
	v := strings.TrimSpace(up.header.Get("Retry-After"))
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}

// retryable mirrors the extension client's policy: server-side trouble
// (5xx) and overload sheds (429) are worth another attempt; other 4xx is
// definitive.
func retryable(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

// doShard performs one logical request against a shard, walking its nodes
// with the retry budget: transport errors, retryable statuses, and
// fenced/stale-epoch responses rotate to the other node and back off
// (honoring a downstream Retry-After, capped). It returns the last
// response seen when the budget runs out — a shed to pass through beats a
// synthetic error — and an error only when no node ever answered.
func (rt *Router) doShard(ctx context.Context, ss *shardState, method, path string, hdr http.Header, body []byte) (*upstream, error) {
	var last *upstream
	var lastErr error
	var serverDelay time.Duration
	for attempt := 0; attempt <= rt.cfg.Retries; attempt++ {
		if attempt > 0 {
			if rt.retries != nil {
				rt.retries.Inc()
			}
			if err := rt.sleep(ctx, attempt, serverDelay); err != nil {
				break
			}
			serverDelay = 0
		}
		n, idx := ss.current()
		up, err := rt.try(ctx, n, method, path, hdr, body)
		if err != nil {
			lastErr = err
			rt.rotate(ss, idx)
			continue
		}
		serverDelay = up.retryAfter()
		stale := rt.observe(ss, up)
		switch {
		case stale || retryable(up.status):
			// A fenced or deposed node, or a 5xx/429: remember the answer
			// (its status and Retry-After may be the best thing to hand the
			// client) and try the other node.
			last = up
			rt.rotate(ss, idx)
		default:
			return up, nil
		}
	}
	if last != nil {
		return last, nil
	}
	if rt.exhausted != nil {
		rt.exhausted.Inc()
	}
	return nil, fmt.Errorf("shard %s: all nodes unreachable: %w", ss.spec.Name, lastErr)
}

func (rt *Router) rotate(ss *shardState, idx int64) {
	if ss.rotateFrom(idx) && rt.failovers != nil {
		rt.failovers.Inc()
	}
}

// observe folds a response's replication headers into the shard view and
// reports whether the answering node should be abandoned for this attempt
// (it is fenced, or it answered from an epoch older than one this router
// has already seen from the shard).
func (rt *Router) observe(ss *shardState, up *upstream) bool {
	stale := up.header.Get(server.FencedHeader) == "1"
	if v := up.header.Get(server.EpochHeader); v != "" {
		if e, err := strconv.ParseUint(v, 10, 64); err == nil {
			for {
				cur := ss.maxEpoch.Load()
				if e <= cur {
					if e < cur {
						stale = true
					}
					break
				}
				if ss.maxEpoch.CompareAndSwap(cur, e) {
					break
				}
			}
		}
	}
	return stale
}

func (rt *Router) try(ctx context.Context, n node, method, path string, hdr http.Header, body []byte) (*upstream, error) {
	actx, cancel := context.WithTimeout(ctx, rt.cfg.Timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, n.base+path, rd)
	if err != nil {
		return nil, err
	}
	copyProxyHeader(req.Header, hdr)
	if body != nil {
		req.ContentLength = int64(len(body))
	}
	resp, err := n.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody+1))
	if err != nil {
		return nil, err
	}
	if len(b) > maxProxyBody {
		return nil, fmt.Errorf("shard: response from %s exceeds %d bytes", n.base, maxProxyBody)
	}
	return &upstream{status: resp.StatusCode, header: resp.Header.Clone(), body: b}, nil
}

// sleep waits before a retry: the downstream's Retry-After (capped) when
// one was given, the router's own jittered exponential backoff otherwise.
func (rt *Router) sleep(ctx context.Context, attempt int, serverDelay time.Duration) error {
	var d time.Duration
	if serverDelay > 0 {
		d = serverDelay
		if d > rt.cfg.MaxRetryAfter {
			d = rt.cfg.MaxRetryAfter
		}
	} else {
		d = rt.cfg.Backoff << (attempt - 1)
		if d > maxProxyBackoff {
			d = maxProxyBackoff
		}
		rt.rngMu.Lock()
		jitter := rt.rng.Float64()
		rt.rngMu.Unlock()
		// ±50% jitter decorrelates concurrent proxied retries.
		d = time.Duration(float64(d) * (0.5 + jitter))
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// hopByHop lists the connection-scoped headers a proxy must not forward
// (RFC 9110 §7.6.1).
var hopByHop = map[string]bool{
	"Connection":          true,
	"Keep-Alive":          true,
	"Proxy-Authenticate":  true,
	"Proxy-Authorization": true,
	"Te":                  true,
	"Trailer":             true,
	"Transfer-Encoding":   true,
	"Upgrade":             true,
}

func copyProxyHeader(dst, src http.Header) {
	for k, vv := range src {
		if hopByHop[http.CanonicalHeaderKey(k)] || k == "Content-Length" {
			continue
		}
		dst[k] = vv
	}
}

// writeUpstream relays a downstream response verbatim, with one
// normalization: every 429/503 the router answers carries Retry-After —
// downstream chaos can strip it, but the shed contract at the deployment
// face must hold.
func (rt *Router) writeUpstream(w http.ResponseWriter, up *upstream) {
	h := w.Header()
	copyProxyHeader(h, up.header)
	if (up.status == http.StatusTooManyRequests || up.status == http.StatusServiceUnavailable) &&
		h.Get("Retry-After") == "" {
		h.Set("Retry-After", "1")
	}
	w.WriteHeader(up.status)
	w.Write(up.body)
}

// writeUnreachable is the router-minted 503 for a ring segment whose
// primary and standby are both gone.
func (rt *Router) writeUnreachable(w http.ResponseWriter, what string, err error) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "%s unavailable: %v", what, err)
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// readBody buffers a request body up to limit bytes (413 is the caller's
// concern; the proxy must replay bodies across retries, so it buffers).
func readBody(r *http.Request, limit int64) ([]byte, error) {
	defer r.Body.Close()
	b, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(b)) > limit {
		return nil, fmt.Errorf("body exceeds %d bytes", limit)
	}
	return b, nil
}

// ServeHTTP routes one request: single-shard paths are proxied to the
// ring owner (with failover), fleet-wide paths (results, session lists,
// test listing, deletes, readiness) scatter/gather.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p := r.URL.Path
	switch {
	case p == "/healthz":
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok", "role": "router", "shards": len(rt.shards),
		})
	case p == "/readyz":
		rt.handleReady(w, r)
	case p == "/metrics" && rt.reg != nil:
		obs.Handler(rt.reg).ServeHTTP(w, r)
	case p == "/api/tests" && r.Method == http.MethodGet:
		rt.handleListTests(w, r)
	case strings.HasPrefix(p, "/api/tests/"):
		rt.handleTest(w, r, strings.TrimPrefix(p, "/api/tests/"))
	case strings.HasPrefix(p, "/dashboard/"):
		rt.proxyKey(w, r, TestKey(strings.TrimPrefix(p, "/dashboard/")))
	default:
		// Stateless surfaces (/builder, /api/params/build): any shard can
		// answer; hash the path so the load spreads deterministically.
		rt.proxyKey(w, r, p)
	}
}

// handleTest dispatches the /api/tests/{id}... subtree.
func (rt *Router) handleTest(w http.ResponseWriter, r *http.Request, rest string) {
	testID, tail := rest, ""
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		testID, tail = rest[:i], rest[i+1:]
	}
	if testID == "" {
		writeError(w, http.StatusNotFound, "missing test id")
		return
	}
	switch {
	case r.Method == http.MethodDelete && tail == "":
		rt.handleDelete(w, r, testID)
	case r.Method == http.MethodGet && tail == "results":
		rt.handleResults(w, r, testID)
	case r.Method == http.MethodGet && tail == "sessions":
		rt.handleSessionList(w, r, testID)
	case r.Method == http.MethodPost && tail == "sessions":
		rt.handleUpload(w, r, testID)
	case r.Method == http.MethodPost && tail == "sessions:batch":
		rt.handleBatch(w, r, testID)
	default:
		// Test info, task payloads, page files: owned by the test's home
		// shard (every shard holds the provisioned content, but pinning
		// reads to the owner keeps its serving cache hot).
		rt.proxyKey(w, r, TestKey(testID))
	}
}

// proxyKey forwards the request to the shard owning key, buffering the
// body for retry replay.
func (rt *Router) proxyKey(w http.ResponseWriter, r *http.Request, key string) {
	body, err := readBody(r, maxProxyBody)
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading request: %v", err)
		return
	}
	if len(body) == 0 {
		body = nil
	}
	ss := rt.shards[rt.ring.Owner(key)]
	up, err := rt.doShard(r.Context(), ss, r.Method, r.URL.RequestURI(), r.Header, body)
	if err != nil {
		rt.writeUnreachable(w, r.Method+" "+r.URL.Path, err)
		return
	}
	rt.writeUpstream(w, up)
}

// handleUpload routes a single session upload by its session key. The
// worker id comes from the X-Kscope-Worker header every extension client
// sends; a headerless upload falls back to sniffing the body so the same
// worker still routes consistently.
func (rt *Router) handleUpload(w http.ResponseWriter, r *http.Request, testID string) {
	body, err := readBody(r, maxProxyBody)
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading session: %v", err)
		return
	}
	workerID := r.Header.Get(guard.WorkerIDHeader)
	if workerID == "" {
		workerID = sniffWorkerID(body)
	}
	ss := rt.shards[rt.ring.Owner(SessionKey(testID, workerID))]
	up, err := rt.doShard(r.Context(), ss, http.MethodPost, r.URL.RequestURI(), r.Header, body)
	if err != nil {
		rt.writeUnreachable(w, "session upload", err)
		return
	}
	rt.writeUpstream(w, up)
}

func sniffWorkerID(body []byte) string {
	var probe struct {
		WorkerID string `json:"worker_id"`
	}
	_ = json.Unmarshal(body, &probe)
	return probe.WorkerID
}
