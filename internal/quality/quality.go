// Package quality implements Kaleidoscope's quality-control battery. The
// paper combines four mechanisms to keep crowd responses trustworthy:
//
//  1. Hard rules — every comparison question must be answered with a legal
//     choice before the next integrated webpage is shown.
//  2. Engagement — the time a worker spends per side-by-side comparison:
//     too short indicates an unengaged worker, too long a distracted one.
//  3. Control questions — integrated pages whose answer is known a priori
//     (two identical versions must be answered "Same"; two drastically
//     different versions have a known winner).
//  4. Crowd wisdom — the majority vote over all responses acts as
//     pseudo-ground truth; workers who deviate from it too often are
//     dropped.
//
// Filter applies the battery to worker sessions and reports per-worker
// verdicts with the reasons for any rejection.
package quality

import (
	"errors"
	"fmt"

	"kaleidoscope/internal/crowd"
	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/stats"
)

// ControlOutcome is one control-question result for a worker.
type ControlOutcome struct {
	PageID   string               `json:"page_id"`
	Expected questionnaire.Choice `json:"expected"`
	Got      questionnaire.Choice `json:"got"`
}

// Passed reports whether the worker answered the control correctly.
// Controls with a known "different" winner also accept the mirrored page
// order having been handled by the caller; here equality is literal.
func (c ControlOutcome) Passed() bool { return c.Expected == c.Got }

// WorkerSession is everything one worker produced during a test.
type WorkerSession struct {
	WorkerID string
	// Responses holds the real (non-control) answers.
	Responses []questionnaire.Response
	// Behaviors holds per-comparison telemetry, one entry per comparison
	// (control comparisons included).
	Behaviors []crowd.Behavior
	// Controls holds the control-question outcomes.
	Controls []ControlOutcome
}

// Config tunes the battery. Zero values disable the corresponding check
// except RequiredResponses (0 = don't check).
type Config struct {
	// RequiredResponses is the exact number of real answers a complete
	// session must contain (hard rule).
	RequiredResponses int
	// MinMillisPerComparison flags unengaged workers (median per-comparison
	// time below this).
	MinMillisPerComparison int
	// MaxMillisPerComparison flags distracted workers (any comparison
	// longer than this).
	MaxMillisPerComparison int
	// MaxControlFailures is the number of failed control questions
	// tolerated.
	MaxControlFailures int
	// MajorityDeviation drops workers whose answers disagree with the
	// per-question majority more than this fraction of the time (0
	// disables; sensible values 0.5-0.8).
	MajorityDeviation float64
	// MinPeersForMajority is how many peer answers a question needs before
	// the majority check applies to it (default 5).
	MinPeersForMajority int
}

// DefaultConfig mirrors the paper's battery: all answers required, 3 s to
// 2.5 min per comparison, zero tolerated control failures, and a 60%
// majority-deviation cutoff.
func DefaultConfig(requiredResponses int) Config {
	return Config{
		RequiredResponses:      requiredResponses,
		MinMillisPerComparison: 3_000,
		MaxMillisPerComparison: 150_000,
		MaxControlFailures:     0,
		MajorityDeviation:      0.6,
		MinPeersForMajority:    5,
	}
}

// Verdict is the battery's decision for one worker.
type Verdict struct {
	WorkerID string
	Passed   bool
	// Reasons lists each failed check (empty when passed).
	Reasons []string
}

// ErrNoSessions is returned when Filter receives nothing to evaluate.
var ErrNoSessions = errors.New("quality: no sessions")

// Filter applies the battery and partitions sessions into kept and
// dropped, returning per-worker verdicts alongside.
func Filter(sessions []WorkerSession, cfg Config) (kept, dropped []WorkerSession, verdicts []Verdict, err error) {
	if len(sessions) == 0 {
		return nil, nil, nil, ErrNoSessions
	}
	majority := majorityAnswers(sessions, cfg.MinPeersForMajority)
	for _, s := range sessions {
		v := evaluate(s, cfg, majority)
		verdicts = append(verdicts, v)
		if v.Passed {
			kept = append(kept, s)
		} else {
			dropped = append(dropped, s)
		}
	}
	return kept, dropped, verdicts, nil
}

// questionKey identifies one question instance across workers.
type questionKey struct {
	pageID     string
	questionID string
}

// majorityAnswers computes the per-question majority (pseudo-ground truth)
// over questions with enough peer answers.
func majorityAnswers(sessions []WorkerSession, minPeers int) map[questionKey]questionnaire.Choice {
	if minPeers <= 0 {
		minPeers = 5
	}
	votes := make(map[questionKey][]questionnaire.Choice)
	for _, s := range sessions {
		for _, r := range s.Responses {
			k := questionKey{pageID: r.PageID, questionID: r.QuestionID}
			votes[k] = append(votes[k], r.Choice)
		}
	}
	out := make(map[questionKey]questionnaire.Choice)
	for k, vs := range votes {
		if len(vs) < minPeers {
			continue
		}
		winner, count, err := stats.MajorityVote(vs)
		if err != nil {
			continue
		}
		// Require a strict majority; a fragmented vote is no ground truth.
		if count*2 <= len(vs) {
			continue
		}
		out[k] = winner
	}
	return out
}

// minCheckedForMajority is how many of a worker's answers must have a
// majority to compare with before the crowd-wisdom check applies — a
// single contested answer is legitimate disagreement, not spam (minority
// opinions on one-question tests must survive).
const minCheckedForMajority = 3

// evaluate runs every check on one session.
func evaluate(s WorkerSession, cfg Config, majority map[questionKey]questionnaire.Choice) Verdict {
	v := Verdict{WorkerID: s.WorkerID, Passed: true}
	fail := func(format string, args ...any) {
		v.Passed = false
		v.Reasons = append(v.Reasons, fmt.Sprintf(format, args...))
	}

	// Hard rules: completeness and legality.
	if cfg.RequiredResponses > 0 && len(s.Responses) != cfg.RequiredResponses {
		fail("answered %d of %d questions", len(s.Responses), cfg.RequiredResponses)
	}
	for _, r := range s.Responses {
		if !r.Choice.Valid() {
			fail("illegal answer %q on page %s", r.Choice, r.PageID)
			break
		}
	}

	// Engagement.
	if len(s.Behaviors) > 0 {
		times := make([]float64, len(s.Behaviors))
		maxTime := 0
		for i, b := range s.Behaviors {
			times[i] = float64(b.TimeOnTaskMillis)
			if b.TimeOnTaskMillis > maxTime {
				maxTime = b.TimeOnTaskMillis
			}
		}
		median := stats.Median(times)
		if cfg.MinMillisPerComparison > 0 && median < float64(cfg.MinMillisPerComparison) {
			fail("median comparison time %.0fms below %dms (unengaged)", median, cfg.MinMillisPerComparison)
		}
		if cfg.MaxMillisPerComparison > 0 && maxTime > cfg.MaxMillisPerComparison {
			fail("comparison time %dms above %dms (distracted)", maxTime, cfg.MaxMillisPerComparison)
		}
	}

	// Control questions.
	failures := 0
	for _, c := range s.Controls {
		if !c.Passed() {
			failures++
		}
	}
	if failures > cfg.MaxControlFailures {
		fail("failed %d control questions (allowed %d)", failures, cfg.MaxControlFailures)
	}

	// Crowd wisdom.
	if cfg.MajorityDeviation > 0 && len(majority) > 0 {
		checked, deviated := 0, 0
		for _, r := range s.Responses {
			want, ok := majority[questionKey{pageID: r.PageID, questionID: r.QuestionID}]
			if !ok {
				continue
			}
			checked++
			if r.Choice != want {
				deviated++
			}
		}
		if checked >= minCheckedForMajority {
			rate := float64(deviated) / float64(checked)
			if rate > cfg.MajorityDeviation {
				fail("deviates from majority on %.0f%% of answers (allowed %.0f%%)", rate*100, cfg.MajorityDeviation*100)
			}
		}
	}

	return v
}

// PassRate summarizes verdicts as the fraction of workers kept.
func PassRate(verdicts []Verdict) float64 {
	if len(verdicts) == 0 {
		return 0
	}
	passed := 0
	for _, v := range verdicts {
		if v.Passed {
			passed++
		}
	}
	return float64(passed) / float64(len(verdicts))
}
