package quality

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"kaleidoscope/internal/crowd"
	"kaleidoscope/internal/questionnaire"
)

// goodSession builds a complete, well-behaved session answering `answers`
// across pages p0..pN with the given worker id.
func goodSession(workerID string, answers []questionnaire.Choice) WorkerSession {
	s := WorkerSession{WorkerID: workerID}
	for i, c := range answers {
		s.Responses = append(s.Responses, questionnaire.Response{
			TestID: "t", WorkerID: workerID, PageID: fmt.Sprintf("p%d", i),
			QuestionID: "q", Choice: c, DurationMillis: 20000,
		})
		s.Behaviors = append(s.Behaviors, crowd.Behavior{
			TimeOnTaskMillis: 20000, CreatedTabs: 1, ActiveTabSwitches: 3,
		})
	}
	s.Controls = []ControlOutcome{{PageID: "ctl", Expected: questionnaire.ChoiceSame, Got: questionnaire.ChoiceSame}}
	return s
}

func choices(s string) []questionnaire.Choice {
	var out []questionnaire.Choice
	for _, c := range s {
		switch c {
		case 'L':
			out = append(out, questionnaire.ChoiceLeft)
		case 'R':
			out = append(out, questionnaire.ChoiceRight)
		case 'S':
			out = append(out, questionnaire.ChoiceSame)
		}
	}
	return out
}

func TestFilterKeepsGoodWorkers(t *testing.T) {
	var sessions []WorkerSession
	for i := 0; i < 10; i++ {
		sessions = append(sessions, goodSession(fmt.Sprintf("w%d", i), choices("LLRS")))
	}
	kept, dropped, verdicts, err := Filter(sessions, DefaultConfig(4))
	if err != nil {
		t.Fatalf("Filter: %v", err)
	}
	if len(kept) != 10 || len(dropped) != 0 {
		t.Fatalf("kept=%d dropped=%d", len(kept), len(dropped))
	}
	if PassRate(verdicts) != 1 {
		t.Errorf("pass rate = %v", PassRate(verdicts))
	}
	for _, v := range verdicts {
		if len(v.Reasons) != 0 {
			t.Errorf("passing verdict has reasons: %v", v.Reasons)
		}
	}
}

func TestFilterNoSessions(t *testing.T) {
	if _, _, _, err := Filter(nil, DefaultConfig(1)); err != ErrNoSessions {
		t.Errorf("err = %v", err)
	}
}

func TestHardRuleIncomplete(t *testing.T) {
	sessions := []WorkerSession{goodSession("w0", choices("LL"))}
	_, dropped, verdicts, err := Filter(sessions, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 1 {
		t.Fatal("incomplete session should be dropped")
	}
	if !strings.Contains(verdicts[0].Reasons[0], "answered 2 of 4") {
		t.Errorf("reason = %v", verdicts[0].Reasons)
	}
}

func TestHardRuleIllegalChoice(t *testing.T) {
	s := goodSession("w0", choices("LLLL"))
	s.Responses[2].Choice = "banana"
	_, dropped, verdicts, err := Filter([]WorkerSession{s}, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 1 {
		t.Fatal("illegal choice should drop the worker")
	}
	found := false
	for _, r := range verdicts[0].Reasons {
		if strings.Contains(r, "illegal answer") {
			found = true
		}
	}
	if !found {
		t.Errorf("reasons = %v", verdicts[0].Reasons)
	}
}

func TestEngagementTooFast(t *testing.T) {
	s := goodSession("speedy", choices("LLLL"))
	for i := range s.Behaviors {
		s.Behaviors[i].TimeOnTaskMillis = 900
	}
	_, dropped, verdicts, err := Filter([]WorkerSession{s}, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 1 || !strings.Contains(verdicts[0].Reasons[0], "unengaged") {
		t.Errorf("verdicts = %+v", verdicts)
	}
}

func TestEngagementTooSlow(t *testing.T) {
	s := goodSession("sloth", choices("LLLL"))
	s.Behaviors[1].TimeOnTaskMillis = 500_000
	_, dropped, verdicts, err := Filter([]WorkerSession{s}, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 1 || !strings.Contains(verdicts[0].Reasons[0], "distracted") {
		t.Errorf("verdicts = %+v", verdicts)
	}
}

func TestControlFailure(t *testing.T) {
	s := goodSession("w0", choices("LLLL"))
	s.Controls = []ControlOutcome{
		{PageID: "ctl", Expected: questionnaire.ChoiceSame, Got: questionnaire.ChoiceLeft},
	}
	_, dropped, verdicts, err := Filter([]WorkerSession{s}, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 1 || !strings.Contains(verdicts[0].Reasons[0], "control") {
		t.Errorf("verdicts = %+v", verdicts)
	}
	// Tolerating one failure keeps the worker.
	cfg := DefaultConfig(4)
	cfg.MaxControlFailures = 1
	kept, _, _, err := Filter([]WorkerSession{s}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 1 {
		t.Error("one tolerated control failure should keep the worker")
	}
}

func TestMajorityDeviation(t *testing.T) {
	// Nine agreeing workers, one contrarian answering the opposite
	// everywhere.
	var sessions []WorkerSession
	for i := 0; i < 9; i++ {
		sessions = append(sessions, goodSession(fmt.Sprintf("w%d", i), choices("LLLL")))
	}
	sessions = append(sessions, goodSession("contrarian", choices("RRRR")))
	kept, dropped, verdicts, err := Filter(sessions, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 9 || len(dropped) != 1 {
		t.Fatalf("kept=%d dropped=%d", len(kept), len(dropped))
	}
	if dropped[0].WorkerID != "contrarian" {
		t.Errorf("dropped %s", dropped[0].WorkerID)
	}
	last := verdicts[len(verdicts)-1]
	if last.Passed || !strings.Contains(last.Reasons[0], "majority") {
		t.Errorf("verdict = %+v", last)
	}
}

func TestMajorityNeedsQuorumAndStrictness(t *testing.T) {
	// Only 3 workers: below the 5-peer quorum, so no majority check fires
	// even for a disagreeing worker.
	sessions := []WorkerSession{
		goodSession("a", choices("LLLL")),
		goodSession("b", choices("LLLL")),
		goodSession("c", choices("RRRR")),
	}
	kept, _, _, err := Filter(sessions, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 3 {
		t.Errorf("kept = %d, want 3 (quorum not met)", len(kept))
	}
	// A perfectly split vote is no ground truth either.
	sessions = nil
	for i := 0; i < 5; i++ {
		sessions = append(sessions, goodSession(fmt.Sprintf("l%d", i), choices("L")))
	}
	for i := 0; i < 5; i++ {
		sessions = append(sessions, goodSession(fmt.Sprintf("r%d", i), choices("R")))
	}
	cfg := DefaultConfig(1)
	kept, _, _, err = Filter(sessions, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 10 {
		t.Errorf("kept = %d, want 10 (split vote is not a majority)", len(kept))
	}
}

func TestDisabledChecks(t *testing.T) {
	s := goodSession("w0", choices("LL"))
	for i := range s.Behaviors {
		s.Behaviors[i].TimeOnTaskMillis = 600
	}
	s.Controls = []ControlOutcome{{Expected: questionnaire.ChoiceSame, Got: questionnaire.ChoiceLeft}}
	cfg := Config{MaxControlFailures: 5} // everything else off
	kept, _, _, err := Filter([]WorkerSession{s}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 1 {
		t.Error("with checks disabled the worker should pass")
	}
}

func TestMultipleReasonsAccumulate(t *testing.T) {
	s := goodSession("bad", choices("LL")) // incomplete
	for i := range s.Behaviors {
		s.Behaviors[i].TimeOnTaskMillis = 700 // unengaged
	}
	s.Controls = []ControlOutcome{{Expected: questionnaire.ChoiceSame, Got: questionnaire.ChoiceRight}}
	_, _, verdicts, err := Filter([]WorkerSession{s}, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts[0].Reasons) < 3 {
		t.Errorf("reasons = %v, want >= 3", verdicts[0].Reasons)
	}
}

// TestQualityControlCleansCrowd is the integration-level property behind
// Fig. 4(a) vs 4(b): filtering a mixed crowd removes mostly hasty workers
// and improves agreement with the diligent consensus.
func TestQualityControlCleansCrowd(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pop, err := crowd.TrustedCrowd(120, rng)
	if err != nil {
		t.Fatal(err)
	}
	var sessions []WorkerSession
	byWorker := make(map[string]crowd.Archetype)
	for _, w := range pop.Workers {
		byWorker[w.ID] = w.Archetype
		s := WorkerSession{WorkerID: w.ID}
		// Simulate 6 comparisons where the "true" answer is Left (12pt on
		// the left vs 22pt on the right).
		for i := 0; i < 6; i++ {
			choice := w.CompareFontSize(12, 22, rng)
			s.Responses = append(s.Responses, questionnaire.Response{
				TestID: "t", WorkerID: w.ID, PageID: fmt.Sprintf("p%d", i),
				QuestionID: "q", Choice: choice, DurationMillis: 1,
			})
			s.Behaviors = append(s.Behaviors, w.BehaveOnce(rng))
		}
		// One identical-pair control.
		s.Controls = []ControlOutcome{{
			PageID:   "ctl",
			Expected: questionnaire.ChoiceSame,
			Got:      w.CompareFontSize(12, 12, rng),
		}}
		sessions = append(sessions, s)
	}
	kept, dropped, _, err := Filter(sessions, DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) == 0 {
		t.Fatal("a mixed crowd should lose some workers to QC")
	}
	// Dropped workers skew hasty.
	hastyDropped, hastyTotal := 0, 0
	for _, s := range sessions {
		if byWorker[s.WorkerID] == crowd.Hasty {
			hastyTotal++
		}
	}
	for _, s := range dropped {
		if byWorker[s.WorkerID] == crowd.Hasty {
			hastyDropped++
		}
	}
	if hastyTotal > 0 && float64(hastyDropped)/float64(hastyTotal) < 0.5 {
		t.Errorf("QC caught only %d/%d hasty workers", hastyDropped, hastyTotal)
	}
	// Agreement with the true answer improves after filtering.
	agreement := func(ss []WorkerSession) float64 {
		total, correct := 0, 0
		for _, s := range ss {
			for _, r := range s.Responses {
				total++
				if r.Choice == questionnaire.ChoiceLeft {
					correct++
				}
			}
		}
		return float64(correct) / float64(total)
	}
	before := agreement(sessions)
	after := agreement(kept)
	if after <= before {
		t.Errorf("QC should improve agreement: before=%.3f after=%.3f", before, after)
	}
}

// TestFilterNeverDropsPerfectWorkerProperty: a worker who answers every
// question with the (unanimous) majority, behaves within the engagement
// band, and passes every control is never dropped — for arbitrary cohort
// shapes.
func TestFilterNeverDropsPerfectWorkerProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		peers := 5 + rng.Intn(20)
		questions := 1 + rng.Intn(8)
		var sessions []WorkerSession
		answers := make([]questionnaire.Choice, questions)
		for q := range answers {
			answers[q] = []questionnaire.Choice{
				questionnaire.ChoiceLeft, questionnaire.ChoiceRight, questionnaire.ChoiceSame,
			}[rng.Intn(3)]
		}
		mkSession := func(id string) WorkerSession {
			s := WorkerSession{WorkerID: id}
			for q := 0; q < questions; q++ {
				s.Responses = append(s.Responses, questionnaire.Response{
					TestID: "t", WorkerID: id, PageID: fmt.Sprintf("p%d", q),
					QuestionID: "q", Choice: answers[q],
					DurationMillis: 10_000 + rng.Intn(60_000),
				})
				s.Behaviors = append(s.Behaviors, crowd.Behavior{
					TimeOnTaskMillis:  10_000 + rng.Intn(60_000),
					CreatedTabs:       1,
					ActiveTabSwitches: 2,
				})
			}
			s.Controls = []ControlOutcome{{
				PageID: "ctl", Expected: questionnaire.ChoiceSame, Got: questionnaire.ChoiceSame,
			}}
			return s
		}
		for i := 0; i < peers; i++ {
			sessions = append(sessions, mkSession(fmt.Sprintf("w%d", i)))
		}
		kept, dropped, _, err := Filter(sessions, DefaultConfig(questions))
		if err != nil {
			t.Fatal(err)
		}
		if len(dropped) != 0 {
			t.Fatalf("trial %d: dropped %d perfect workers (peers=%d questions=%d)",
				trial, len(dropped), peers, questions)
		}
		if len(kept) != peers {
			t.Fatalf("trial %d: kept %d of %d", trial, len(kept), peers)
		}
	}
}
