// Incremental quality control: the battery of quality.go, refactored into
// per-worker features and per-question vote counts that can be maintained
// O(1) at session-upload time and evaluated without revisiting raw
// sessions. Filter/evaluate above stay untouched as the from-scratch
// oracle; the equivalence (same verdicts, same reasons, in the same order)
// is asserted by the differential tests in this package and in
// internal/server.
package quality

import (
	"fmt"

	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/stats"
)

// QuestionRef identifies one question instance across workers — the
// exported twin of questionKey, shared by Votes and Features.
type QuestionRef struct {
	PageID     string
	QuestionID string
}

// ResponseKey is the QC-relevant projection of one answer: where it was
// given and what it was. Comments, durations, and worker ids are dropped —
// nothing else in the battery reads them per response.
type ResponseKey struct {
	PageID     string
	QuestionID string
	Choice     questionnaire.Choice
}

// Ref returns the question instance this answer belongs to.
func (r ResponseKey) Ref() QuestionRef {
	return QuestionRef{PageID: r.PageID, QuestionID: r.QuestionID}
}

// Features is everything evaluate needs to judge one worker, extracted
// once when the session arrives. A Features value is immutable after
// ExtractFeatures.
type Features struct {
	WorkerID string
	// Responses keeps every answer (duplicates included) in upload order;
	// the count, legality, and majority checks all iterate it.
	Responses []ResponseKey
	// HasBehaviors distinguishes "no telemetry" (engagement not checked)
	// from "telemetry present".
	HasBehaviors bool
	// MedianMillis is the median per-comparison time over all behaviors.
	MedianMillis float64
	// MaxMillis is the longest single comparison.
	MaxMillis int
	// ControlFailures counts control questions answered wrong.
	ControlFailures int
}

// ExtractFeatures reduces a session to its battery features. The reduction
// is lossy exactly where evaluate is insensitive: it preserves every value
// evaluate reads and nothing else.
func ExtractFeatures(s WorkerSession) Features {
	f := Features{WorkerID: s.WorkerID}
	if len(s.Responses) > 0 {
		f.Responses = make([]ResponseKey, len(s.Responses))
		for i, r := range s.Responses {
			f.Responses[i] = ResponseKey{PageID: r.PageID, QuestionID: r.QuestionID, Choice: r.Choice}
		}
	}
	if len(s.Behaviors) > 0 {
		f.HasBehaviors = true
		times := make([]float64, len(s.Behaviors))
		for i, b := range s.Behaviors {
			times[i] = float64(b.TimeOnTaskMillis)
			if b.TimeOnTaskMillis > f.MaxMillis {
				f.MaxMillis = b.TimeOnTaskMillis
			}
		}
		f.MedianMillis = stats.Median(times)
	}
	for _, c := range s.Controls {
		if !c.Passed() {
			f.ControlFailures++
		}
	}
	return f
}

// Votes accumulates per-question answer counts across workers — the
// streaming form of majorityAnswers' vote map. Counting arbitrary Choice
// values (not just the three legal ones) matters: the oracle counts them
// too, and an illegal value can win a majority.
type Votes struct {
	counts map[QuestionRef]map[questionnaire.Choice]int
}

// NewVotes returns an empty vote accumulator.
func NewVotes() *Votes {
	return &Votes{counts: make(map[QuestionRef]map[questionnaire.Choice]int)}
}

// Add records one worker's answers (call once per session).
func (v *Votes) Add(responses []ResponseKey) {
	for _, r := range responses {
		k := r.Ref()
		m := v.counts[k]
		if m == nil {
			m = make(map[questionnaire.Choice]int)
			v.counts[k] = m
		}
		m[r.Choice]++
	}
}

// Majority computes the per-question pseudo-ground truth from the
// accumulated counts, mirroring majorityAnswers: questions need at least
// minPeers answers (default 5 when <= 0) and a strict majority. A strict
// majority winner is unique, so the result is independent of the order
// votes arrived in — which is what makes the incremental form equivalent
// to the oracle's slice-based MajorityVote.
func (v *Votes) Majority(minPeers int) map[QuestionRef]questionnaire.Choice {
	if minPeers <= 0 {
		minPeers = 5
	}
	out := make(map[QuestionRef]questionnaire.Choice)
	for k, m := range v.counts {
		total := 0
		for _, n := range m {
			total += n
		}
		if total < minPeers {
			continue
		}
		for choice, n := range m {
			if n*2 > total {
				out[k] = choice
				break
			}
		}
	}
	return out
}

// Evaluate runs the battery on extracted features, producing the same
// Verdict (including reason strings and their order) evaluate produces for
// the session the features came from.
func (f Features) Evaluate(cfg Config, majority map[QuestionRef]questionnaire.Choice) Verdict {
	v := Verdict{WorkerID: f.WorkerID, Passed: true}
	fail := func(format string, args ...any) {
		v.Passed = false
		v.Reasons = append(v.Reasons, fmt.Sprintf(format, args...))
	}

	// Hard rules: completeness and legality.
	if cfg.RequiredResponses > 0 && len(f.Responses) != cfg.RequiredResponses {
		fail("answered %d of %d questions", len(f.Responses), cfg.RequiredResponses)
	}
	for _, r := range f.Responses {
		if !r.Choice.Valid() {
			fail("illegal answer %q on page %s", r.Choice, r.PageID)
			break
		}
	}

	// Engagement.
	if f.HasBehaviors {
		if cfg.MinMillisPerComparison > 0 && f.MedianMillis < float64(cfg.MinMillisPerComparison) {
			fail("median comparison time %.0fms below %dms (unengaged)", f.MedianMillis, cfg.MinMillisPerComparison)
		}
		if cfg.MaxMillisPerComparison > 0 && f.MaxMillis > cfg.MaxMillisPerComparison {
			fail("comparison time %dms above %dms (distracted)", f.MaxMillis, cfg.MaxMillisPerComparison)
		}
	}

	// Control questions.
	if f.ControlFailures > cfg.MaxControlFailures {
		fail("failed %d control questions (allowed %d)", f.ControlFailures, cfg.MaxControlFailures)
	}

	// Crowd wisdom.
	if cfg.MajorityDeviation > 0 && len(majority) > 0 {
		checked, deviated := 0, 0
		for _, r := range f.Responses {
			want, ok := majority[r.Ref()]
			if !ok {
				continue
			}
			checked++
			if r.Choice != want {
				deviated++
			}
		}
		if checked >= minCheckedForMajority {
			rate := float64(deviated) / float64(checked)
			if rate > cfg.MajorityDeviation {
				fail("deviates from majority on %.0f%% of answers (allowed %.0f%%)", rate*100, cfg.MajorityDeviation*100)
			}
		}
	}

	return v
}
