package quality

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"kaleidoscope/internal/crowd"
	"kaleidoscope/internal/questionnaire"
)

// filterIncremental runs the battery the way the server's accumulator does:
// features extracted per session, votes accumulated, majority from counts,
// verdicts from features. It must agree with Filter on everything.
func filterIncremental(sessions []WorkerSession, cfg Config) []Verdict {
	votes := NewVotes()
	feats := make([]Features, len(sessions))
	for i, s := range sessions {
		feats[i] = ExtractFeatures(s)
		votes.Add(feats[i].Responses)
	}
	majority := votes.Majority(cfg.MinPeersForMajority)
	verdicts := make([]Verdict, len(sessions))
	for i, f := range feats {
		verdicts[i] = f.Evaluate(cfg, majority)
	}
	return verdicts
}

// randomSession produces a deliberately messy session: duplicate page ids,
// occasional illegal choices, missing behaviors or controls, wild timings.
func randomSession(id string, rng *rand.Rand) WorkerSession {
	s := WorkerSession{WorkerID: id}
	pool := []questionnaire.Choice{
		questionnaire.ChoiceLeft, questionnaire.ChoiceRight, questionnaire.ChoiceSame, "banana",
	}
	n := rng.Intn(8)
	for i := 0; i < n; i++ {
		pageID := fmt.Sprintf("p%d", rng.Intn(4)) // collisions are intentional
		s.Responses = append(s.Responses, questionnaire.Response{
			TestID: "t", WorkerID: id, PageID: pageID,
			QuestionID:     fmt.Sprintf("q%d", rng.Intn(2)),
			Choice:         pool[rng.Intn(len(pool))],
			DurationMillis: rng.Intn(200_000),
		})
	}
	if rng.Intn(4) > 0 { // sometimes no telemetry at all
		for i := 0; i < rng.Intn(6); i++ {
			s.Behaviors = append(s.Behaviors, crowd.Behavior{TimeOnTaskMillis: rng.Intn(200_000)})
		}
	}
	for i := 0; i < rng.Intn(3); i++ { // sometimes no control answers
		got := questionnaire.ChoiceSame
		if rng.Intn(2) == 0 {
			got = questionnaire.ChoiceLeft
		}
		s.Controls = append(s.Controls, ControlOutcome{
			PageID: fmt.Sprintf("ctl%d", i), Expected: questionnaire.ChoiceSame, Got: got,
		})
	}
	return s
}

// TestIncrementalMatchesFilterProperty: over random messy cohorts and
// random configs, the incremental battery produces exactly the verdicts
// (reasons, order, everything) the from-scratch Filter produces.
func TestIncrementalMatchesFilterProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		cfg := Config{
			RequiredResponses:      rng.Intn(6),
			MinMillisPerComparison: []int{0, 3000}[rng.Intn(2)],
			MaxMillisPerComparison: []int{0, 150_000}[rng.Intn(2)],
			MaxControlFailures:     rng.Intn(2),
			MajorityDeviation:      []float64{0, 0.6}[rng.Intn(2)],
			MinPeersForMajority:    []int{0, 3, 5}[rng.Intn(3)],
		}
		var sessions []WorkerSession
		for i := 0; i < 1+rng.Intn(15); i++ {
			sessions = append(sessions, randomSession(fmt.Sprintf("w%d", i), rng))
		}
		_, _, want, err := Filter(sessions, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := filterIncremental(sessions, cfg)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (cfg %+v):\nincremental %+v\noracle      %+v", trial, cfg, got, want)
		}
	}
}

// TestVotesMajorityMatchesOracle: the count-based strict majority equals
// majorityAnswers for cohorts engineered around the quorum and strictness
// boundaries.
func TestVotesMajorityMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		var sessions []WorkerSession
		for i := 0; i < rng.Intn(12); i++ {
			sessions = append(sessions, randomSession(fmt.Sprintf("w%d", i), rng))
		}
		minPeers := []int{0, 1, 3, 5}[rng.Intn(4)]
		want := majorityAnswers(sessions, minPeers)

		votes := NewVotes()
		for _, s := range sessions {
			votes.Add(ExtractFeatures(s).Responses)
		}
		got := votes.Majority(minPeers)

		if len(got) != len(want) {
			t.Fatalf("trial %d: %d majorities, oracle has %d", trial, len(got), len(want))
		}
		for k, w := range want {
			if got[QuestionRef{PageID: k.pageID, QuestionID: k.questionID}] != w {
				t.Fatalf("trial %d: majority mismatch on %+v", trial, k)
			}
		}
	}
}

// Edge cases for the battery, each run through both the oracle Filter and
// the incremental path.
func TestFilterEdgeCases(t *testing.T) {
	cfg := DefaultConfig(4)
	dupe := goodSession("dupe", choices("LLLL"))
	// Same page answered twice (a re-shown comparison): both answers count
	// for tallies and majority; the count check sees 4 answers either way.
	dupe.Responses[1].PageID = dupe.Responses[0].PageID

	noControls := goodSession("nocontrols", choices("LLLL"))
	noControls.Controls = nil // missing control answers: zero failures, passes

	tests := []struct {
		name     string
		sessions []WorkerSession
		cfg      Config
		wantKept []string
		wantErr  error
	}{
		{
			name:    "zero sessions",
			cfg:     cfg,
			wantErr: ErrNoSessions,
		},
		{
			name: "all workers dropped",
			sessions: []WorkerSession{
				goodSession("a", choices("L")), // incomplete
				goodSession("b", choices("RR")),
			},
			cfg:      cfg,
			wantKept: []string{},
		},
		{
			name:     "duplicate page responses",
			sessions: []WorkerSession{dupe},
			cfg:      cfg,
			wantKept: []string{"dupe"},
		},
		{
			name:     "missing control answers",
			sessions: []WorkerSession{noControls},
			cfg:      cfg,
			wantKept: []string{"nocontrols"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			kept, dropped, verdicts, err := Filter(tt.sessions, tt.cfg)
			if err != tt.wantErr {
				t.Fatalf("err = %v, want %v", err, tt.wantErr)
			}
			if err != nil {
				return
			}
			var keptIDs []string
			for _, s := range kept {
				keptIDs = append(keptIDs, s.WorkerID)
			}
			if len(keptIDs) != len(tt.wantKept) {
				t.Fatalf("kept %v, want %v (dropped %d)", keptIDs, tt.wantKept, len(dropped))
			}
			for i := range keptIDs {
				if keptIDs[i] != tt.wantKept[i] {
					t.Fatalf("kept %v, want %v", keptIDs, tt.wantKept)
				}
			}
			if got := filterIncremental(tt.sessions, tt.cfg); !reflect.DeepEqual(got, verdicts) {
				t.Errorf("incremental verdicts %+v\noracle %+v", got, verdicts)
			}
		})
	}
}

// ExtractFeatures must be insensitive to everything evaluate ignores and
// preserve everything it reads.
func TestExtractFeatures(t *testing.T) {
	s := goodSession("w0", choices("LRS"))
	s.Behaviors[1].TimeOnTaskMillis = 50_000
	s.Controls = append(s.Controls, ControlOutcome{
		PageID: "ctl2", Expected: questionnaire.ChoiceSame, Got: questionnaire.ChoiceLeft,
	})
	f := ExtractFeatures(s)
	if f.WorkerID != "w0" || len(f.Responses) != 3 {
		t.Fatalf("features = %+v", f)
	}
	if !f.HasBehaviors || f.MaxMillis != 50_000 || f.MedianMillis != 20_000 {
		t.Errorf("engagement features = %+v", f)
	}
	if f.ControlFailures != 1 {
		t.Errorf("control failures = %d", f.ControlFailures)
	}
	if f.Responses[0] != (ResponseKey{PageID: "p0", QuestionID: "q", Choice: questionnaire.ChoiceLeft}) {
		t.Errorf("first response key = %+v", f.Responses[0])
	}

	empty := ExtractFeatures(WorkerSession{WorkerID: "e"})
	if empty.HasBehaviors || empty.Responses != nil || empty.ControlFailures != 0 {
		t.Errorf("empty session features = %+v", empty)
	}
}
