package stats

import (
	"math"
	"testing"
)

func TestLogBetaMixtureEBasics(t *testing.T) {
	// n = 0: no data, no evidence.
	if e, err := LogBetaMixtureE(0, 0, 1); err != nil || e != 0 {
		t.Fatalf("LogBetaMixtureE(0,0,1) = %v, %v; want 0, nil", e, err)
	}
	// Uniform mixture, closed form: E_n = 2^n * B(k+1, n-k+1) = 2^n / ((n+1) C(n,k)).
	for _, tc := range []struct {
		k, n int
		want float64
	}{
		{0, 1, 1},                        // 2/2
		{1, 1, 1},                        // 2/2
		{2, 2, 4.0 / 3},                  // 4/(3*1)
		{1, 2, 4.0 / (3 * 2)},            // C(2,1)=2
		{8, 8, 256.0 / 9},                // unanimous
		{4, 8, 256.0 / (9 * 70)},         // dead even
		{10, 10, 1024.0 / 11},            //
		{7, 10, 1024.0 / (11 * 120.0)},   // C(10,7)=120
		{20, 20, math.Pow(2, 20) / 21.0}, //
	} {
		got, err := LogBetaMixtureE(tc.k, tc.n, 1)
		if err != nil {
			t.Fatalf("LogBetaMixtureE(%d,%d,1): %v", tc.k, tc.n, err)
		}
		if math.Abs(got-math.Log(tc.want)) > 1e-9 {
			t.Errorf("LogBetaMixtureE(%d,%d,1) = %v, want log(%v) = %v", tc.k, tc.n, got, tc.want, math.Log(tc.want))
		}
	}
	// Symmetry: k and n-k carry identical evidence against p = 1/2.
	for n := 1; n <= 30; n++ {
		for k := 0; k <= n; k++ {
			a, _ := LogBetaMixtureE(k, n, 1)
			b, _ := LogBetaMixtureE(n-k, n, 1)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("asymmetric evidence: logE(%d,%d)=%v logE(%d,%d)=%v", k, n, a, n-k, n, b)
			}
		}
	}
}

func TestLogBetaMixtureEErrors(t *testing.T) {
	for _, tc := range []struct {
		k, n int
		a    float64
	}{
		{0, -1, 1},
		{-1, 5, 1},
		{6, 5, 1},
		{2, 5, 0},
		{2, 5, -1},
		{2, 5, math.NaN()},
		{2, 5, math.Inf(1)},
	} {
		if _, err := LogBetaMixtureE(tc.k, tc.n, tc.a); err == nil {
			t.Errorf("LogBetaMixtureE(%d,%d,%v): want error", tc.k, tc.n, tc.a)
		}
	}
}

// Under H0 the e-process is a martingale with mean 1: sum over all k of
// P(k|n, 1/2) * E(k, n) must equal 1 exactly.
func TestBetaMixtureEMartingaleMeanOne(t *testing.T) {
	for _, n := range []int{1, 2, 5, 10, 25, 60} {
		var mean float64
		for k := 0; k <= n; k++ {
			logE, err := LogBetaMixtureE(k, n, 1)
			if err != nil {
				t.Fatal(err)
			}
			mean += binomialPMF(k, n, 0.5) * math.Exp(logE)
		}
		if math.Abs(mean-1) > 1e-9 {
			t.Errorf("n=%d: E[E_n] = %v, want 1", n, mean)
		}
	}
}

func TestEValuePBound(t *testing.T) {
	if p := EValuePBound(0, 1); p != 1 {
		t.Errorf("no evidence: p = %v, want 1", p)
	}
	if p := EValuePBound(math.Log(20), 1); math.Abs(p-0.05) > 1e-12 {
		t.Errorf("E=20: p = %v, want 0.05", p)
	}
	if p := EValuePBound(math.Log(20), 4); math.Abs(p-0.2) > 1e-12 {
		t.Errorf("E=20, 4 streams: p = %v, want 0.2", p)
	}
	if p := EValuePBound(-5, 1); p != 1 {
		t.Errorf("negative evidence clamps to 1, got %v", p)
	}
	if p := EValuePBound(math.NaN(), 1); p != 1 {
		t.Errorf("NaN evidence clamps to 1, got %v", p)
	}
	if p := EValuePBound(1e6, 3); p != 3*math.Exp(-1e6) {
		t.Errorf("huge evidence: p = %v", p)
	}
	if p := EValuePBound(2, 0); p != math.Exp(-2) {
		t.Errorf("streams<1 treated as 1, got %v", p)
	}
}

func TestSequentialThreshold(t *testing.T) {
	th, err := SequentialThreshold(0.05, 1)
	if err != nil || math.Abs(th-math.Log(20)) > 1e-12 {
		t.Fatalf("threshold(0.05,1) = %v, %v", th, err)
	}
	th4, err := SequentialThreshold(0.05, 4)
	if err != nil || math.Abs(th4-math.Log(80)) > 1e-12 {
		t.Fatalf("threshold(0.05,4) = %v, %v", th4, err)
	}
	for _, alpha := range []float64{0, 1, -0.1, 1.5, math.NaN()} {
		if _, err := SequentialThreshold(alpha, 1); err == nil {
			t.Errorf("alpha=%v: want error", alpha)
		}
	}
	// Crossing the threshold certifies the p-bound <= alpha.
	if p := EValuePBound(th4, 4); p > 0.05+1e-12 {
		t.Errorf("at-threshold p bound %v exceeds alpha", p)
	}
}

// The running-max construction must make the p bound monotone
// non-increasing along any evidence path, even when raw evidence dips.
func TestPBoundMonotoneUnderRunningMax(t *testing.T) {
	votes := []int{1, 1, 0, 1, 0, 0, 0, 1, 1, 1, 1, 0, 1, 1, 1, 1, 1}
	k, n := 0, 0
	maxLogE := 0.0
	prev := 1.0
	for _, v := range votes {
		n++
		k += v
		logE, err := LogBetaMixtureE(k, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if logE > maxLogE {
			maxLogE = logE
		}
		p := EValuePBound(maxLogE, 2)
		if p > prev+1e-15 {
			t.Fatalf("p bound increased: %v -> %v at n=%d", prev, p, n)
		}
		prev = p
	}
}
