package stats

import (
	"errors"
	"math"
)

// Sequential (always-valid) evidence machinery for the early-stopping
// engine. The test is a mixture sequential probability ratio test (mSPRT)
// on a Bernoulli stream against H0: p = 1/2 — the "sign test" form: every
// decisive crowd vote on an A/B question is a coin flip, and under the
// null the coin is fair.
//
// The e-process uses a Beta(a, a) mixture over the alternative:
//
//	E_n = Integral p^k (1-p)^(n-k) dBeta(a,a)(p) / (1/2)^n
//	    = 2^n * B(k+a, n-k+a) / B(a, a)
//
// computed in log space via Lgamma. E_n is a nonnegative martingale with
// E[E_0] = 1 under H0, so by Ville's inequality
//
//	P( sup_n E_n >= 1/alpha ) <= alpha
//
// which makes "stop the first time E_n crosses 1/alpha" a test with
// always-valid Type-I error control at every sample size — no horizon, no
// alpha-spending schedule, and immune to continuous peeking (the hazard
// the fixed-n two-proportion test in this package explicitly warns
// about). min(1, 1/max_m<=n E_m) is an always-valid p-value bound.

// LogBetaMixtureE returns the natural log of the Beta(a,a)-mixture
// e-value for observing k successes in n Bernoulli trials against
// H0: p = 1/2. n == 0 returns 0 (E = 1: no evidence). The mixture
// parameter a > 0 shapes the prior over effect sizes; a = 1 (uniform) is
// the standard default and is what the earlystop engine uses.
func LogBetaMixtureE(k, n int, a float64) (float64, error) {
	if n < 0 {
		return 0, errors.New("stats: n must be non-negative")
	}
	if k < 0 || k > n {
		return 0, errors.New("stats: k out of range")
	}
	if math.IsNaN(a) || a <= 0 || math.IsInf(a, 1) {
		return 0, errors.New("stats: mixture parameter must be positive and finite")
	}
	if n == 0 {
		return 0, nil
	}
	logE := float64(n)*math.Ln2 + logBeta(float64(k)+a, float64(n-k)+a) - logBeta(a, a)
	return logE, nil
}

// logBeta returns ln B(x, y) = ln Gamma(x) + ln Gamma(y) - ln Gamma(x+y).
func logBeta(x, y float64) float64 {
	lx, _ := math.Lgamma(x)
	ly, _ := math.Lgamma(y)
	lxy, _ := math.Lgamma(x + y)
	return lx + ly - lxy
}

// EValuePBound converts a running-maximum log e-value into the
// always-valid p-value bound min(1, streams * exp(-maxLogE)). The streams
// multiplier is the Bonferroni correction when the decision is taken over
// a family of independent evidence streams (one per page x question) and
// the reported bound must control the family-wise error rate. maxLogE
// must be a running maximum for the bound to be monotone non-increasing
// in evidence.
func EValuePBound(maxLogE float64, streams int) float64 {
	if streams < 1 {
		streams = 1
	}
	if math.IsNaN(maxLogE) {
		return 1
	}
	p := float64(streams) * math.Exp(-maxLogE)
	if p > 1 || math.IsNaN(p) {
		return 1
	}
	return p
}

// SequentialThreshold returns the log e-value boundary log(streams/alpha)
// at which a single stream may declare significance while keeping the
// family-wise false-stop probability over `streams` independent
// e-processes at most alpha (Ville + Bonferroni).
func SequentialThreshold(alpha float64, streams int) (float64, error) {
	if math.IsNaN(alpha) || alpha <= 0 || alpha >= 1 {
		return 0, errors.New("stats: alpha must be in (0, 1)")
	}
	if streams < 1 {
		streams = 1
	}
	return math.Log(float64(streams)) - math.Log(alpha), nil
}
