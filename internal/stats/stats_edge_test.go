package stats

import (
	"math"
	"testing"
)

// Satellite coverage for the degenerate corners of the hypothesis-test
// helpers the earlystop engine leans on: zero trials, out-of-range
// successes, all-success / all-failure tallies, and non-finite
// parameters. Every accepted input must produce finite, in-range output;
// every rejected input must error rather than return NaN.

func TestTwoProportionTestEdgeCases(t *testing.T) {
	cases := []struct {
		name           string
		k1, n1, k2, n2 int
		wantErr        bool
		wantP          float64 // checked when >= 0 and no error
	}{
		{"zero trials left", 0, 0, 1, 10, true, -1},
		{"zero trials right", 1, 10, 0, 0, true, -1},
		{"zero trials both", 0, 0, 0, 0, true, -1},
		{"negative trials", 0, -5, 1, 10, true, -1},
		{"k over n left", 11, 10, 1, 10, true, -1},
		{"k over n right", 1, 10, 11, 10, true, -1},
		{"negative k", -1, 10, 1, 10, true, -1},
		{"all success both", 10, 10, 10, 10, false, 1},
		{"all failure both", 0, 10, 0, 10, false, 1},
		{"single trial each same", 1, 1, 1, 1, false, 1},
		{"single trial each opposite", 1, 1, 0, 1, false, -1},
		{"identical mid proportions", 5, 10, 5, 10, false, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := TwoProportionTest(tc.k1, tc.n1, tc.k2, tc.n2)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want error, got %+v", res)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if math.IsNaN(res.PValue) || res.PValue < 0 || res.PValue > 2 {
				t.Fatalf("p-value out of range: %+v", res)
			}
			if math.IsNaN(res.Z) || math.IsNaN(res.PValueOneSided) {
				t.Fatalf("NaN statistic: %+v", res)
			}
			if tc.wantP >= 0 && math.Abs(res.PValue-tc.wantP) > 1e-12 {
				t.Fatalf("p = %v, want %v", res.PValue, tc.wantP)
			}
		})
	}
}

func TestBinomialTestEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		k, n    int
		p       float64
		wantErr bool
	}{
		{"zero n", 0, 0, 0.5, true},
		{"negative n", 1, -2, 0.5, true},
		{"k over n", 6, 5, 0.5, true},
		{"negative k", -1, 5, 0.5, true},
		{"p below zero", 1, 5, -0.1, true},
		{"p above one", 1, 5, 1.1, true},
		{"p NaN", 1, 5, math.NaN(), true},
		{"p zero all failure", 0, 5, 0, false},
		{"p zero with success", 3, 5, 0, false},
		{"p one all success", 5, 5, 1, false},
		{"p one with failure", 3, 5, 1, false},
		{"all success fair coin", 10, 10, 0.5, false},
		{"all failure fair coin", 0, 10, 0.5, false},
		{"single trial", 1, 1, 0.5, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pv, err := BinomialTest(tc.k, tc.n, tc.p)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want error, got p=%v", pv)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if math.IsNaN(pv) || pv < 0 || pv > 1 {
				t.Fatalf("p-value out of range: %v", pv)
			}
		})
	}
	// Spot values: observing the impossible has p = 0.
	if pv, err := BinomialTest(3, 5, 0); err != nil || pv != 0 {
		t.Errorf("BinomialTest(3,5,0) = %v, %v; want 0", pv, err)
	}
	if pv, err := BinomialTest(0, 10, 0.5); err != nil || math.Abs(pv-2.0/1024) > 1e-12 {
		t.Errorf("BinomialTest(0,10,0.5) = %v, %v; want 2/1024", pv, err)
	}
}

func TestWilsonIntervalEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		k, n    int
		z       float64
		wantErr bool
	}{
		{"zero n", 0, 0, 1.96, true},
		{"negative n", 0, -1, 1.96, true},
		{"k over n", 3, 2, 1.96, true},
		{"negative k", -1, 2, 1.96, true},
		{"zero z", 1, 2, 0, true},
		{"negative z", 1, 2, -1.96, true},
		{"NaN z", 1, 2, math.NaN(), true},
		{"infinite z", 1, 2, math.Inf(1), true},
		{"all success", 10, 10, 1.96, false},
		{"all failure", 0, 10, 1.96, false},
		{"single trial success", 1, 1, 1.96, false},
		{"single trial failure", 0, 1, 1.96, false},
		{"huge but finite z", 5, 10, 1e8, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lo, hi, err := WilsonInterval(tc.k, tc.n, tc.z)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want error, got [%v, %v]", lo, hi)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if math.IsNaN(lo) || math.IsNaN(hi) {
				t.Fatalf("NaN bounds: [%v, %v]", lo, hi)
			}
			if lo < 0 || hi > 1 || lo > hi {
				t.Fatalf("bounds out of order or range: [%v, %v]", lo, hi)
			}
			p := float64(tc.k) / float64(tc.n)
			if p < lo-1e-12 || p > hi+1e-12 {
				t.Fatalf("point estimate %v outside [%v, %v]", p, lo, hi)
			}
		})
	}
}
