// Package stats provides the statistical machinery Kaleidoscope's analysis
// pipeline relies on: empirical CDFs, summary statistics, significance tests
// (two-proportion z-test, exact binomial, chi-square), bootstrap confidence
// intervals, and rank-correlation measures.
//
// Everything in this package is deterministic given its inputs; functions
// that resample take an explicit random source.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmptySample is returned by constructors and tests that need at least
// one observation.
var ErrEmptySample = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns 0 when fewer than two observations are given.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Median returns the median of xs, interpolating between the two middle
// values for even-length samples. It returns 0 for an empty slice.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ECDF is an empirical cumulative distribution function over a sample.
// The zero value is not usable; construct one with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an empirical CDF from the given sample. The sample is
// copied; the caller may mutate xs afterwards.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmptySample
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}, nil
}

// At returns P(X <= x) under the empirical distribution.
func (e *ECDF) At(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x; we
	// want the count of values <= x, so search for the first value > x.
	n := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(n) / float64(len(e.sorted))
}

// Len returns the number of observations behind the ECDF.
func (e *ECDF) Len() int { return len(e.sorted) }

// Min returns the smallest observation.
func (e *ECDF) Min() float64 { return e.sorted[0] }

// Max returns the largest observation.
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Points returns the (x, F(x)) step points of the ECDF, one per distinct
// observation, suitable for plotting or tabulating a CDF curve.
func (e *ECDF) Points() []Point {
	pts := make([]Point, 0, len(e.sorted))
	n := float64(len(e.sorted))
	for i, x := range e.sorted {
		if i+1 < len(e.sorted) && e.sorted[i+1] == x {
			continue // collapse ties onto the last index
		}
		pts = append(pts, Point{X: x, Y: float64(i+1) / n})
	}
	return pts
}

// Point is a single (x, y) pair on a curve.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// KSDistance returns the Kolmogorov-Smirnov statistic between two empirical
// CDFs: the supremum of |F1(x) - F2(x)| over the pooled support.
func KSDistance(a, b *ECDF) float64 {
	var d float64
	for _, x := range a.sorted {
		if diff := math.Abs(a.At(x) - b.At(x)); diff > d {
			d = diff
		}
	}
	for _, x := range b.sorted {
		if diff := math.Abs(a.At(x) - b.At(x)); diff > d {
			d = diff
		}
	}
	return d
}

// NormalCDF returns Phi(z), the standard normal cumulative distribution
// function evaluated at z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// TwoProportionResult reports the outcome of a two-proportion z-test.
type TwoProportionResult struct {
	P1, P2         float64 // observed proportions
	Z              float64 // test statistic
	PValue         float64 // two-sided p-value
	PValueOneSided float64 // one-sided p-value (what the paper's VWO calculator reports)
}

// Significant reports whether the two-sided p-value is below alpha.
func (r TwoProportionResult) Significant(alpha float64) bool {
	return r.PValue < alpha
}

// String formats the result the way the paper reports it.
func (r TwoProportionResult) String() string {
	return fmt.Sprintf("p1=%.3f p2=%.3f z=%.3f P=%.4g", r.P1, r.P2, r.Z, r.PValue)
}

// TwoProportionTest performs a pooled two-proportion z-test comparing
// successes1/trials1 against successes2/trials2. This is the test behind the
// paper's A/B significance analysis (Fig. 7b/7c): e.g. 3 clicks out of 51
// visitors vs 6 out of 49.
func TwoProportionTest(successes1, trials1, successes2, trials2 int) (TwoProportionResult, error) {
	if trials1 <= 0 || trials2 <= 0 {
		return TwoProportionResult{}, errors.New("stats: trials must be positive")
	}
	if successes1 < 0 || successes1 > trials1 || successes2 < 0 || successes2 > trials2 {
		return TwoProportionResult{}, errors.New("stats: successes out of range")
	}
	p1 := float64(successes1) / float64(trials1)
	p2 := float64(successes2) / float64(trials2)
	pooled := float64(successes1+successes2) / float64(trials1+trials2)
	se := math.Sqrt(pooled * (1 - pooled) * (1/float64(trials1) + 1/float64(trials2)))
	res := TwoProportionResult{P1: p1, P2: p2}
	if se == 0 {
		// Both proportions identical and degenerate (all 0s or all 1s):
		// no evidence of a difference.
		res.PValue = 1
		res.PValueOneSided = 0.5
		return res, nil
	}
	res.Z = (p1 - p2) / se
	res.PValueOneSided = 1 - NormalCDF(math.Abs(res.Z))
	res.PValue = 2 * res.PValueOneSided
	return res, nil
}

// BinomialTest returns the two-sided exact binomial p-value for observing
// k successes in n trials when the per-trial success probability is p.
// It uses the common "sum all outcomes at most as likely as k" definition.
func BinomialTest(k, n int, p float64) (float64, error) {
	if n <= 0 {
		return 0, errors.New("stats: n must be positive")
	}
	if k < 0 || k > n {
		return 0, errors.New("stats: k out of range")
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return 0, errors.New("stats: p out of range")
	}
	obs := binomialPMF(k, n, p)
	var pval float64
	const slack = 1e-7 // tolerate FP noise when comparing likelihoods
	for i := 0; i <= n; i++ {
		if binomialPMF(i, n, p) <= obs*(1+slack) {
			pval += binomialPMF(i, n, p)
		}
	}
	return math.Min(pval, 1), nil
}

// binomialPMF computes C(n,k) p^k (1-p)^(n-k) in log space for stability.
func binomialPMF(k, n int, p float64) float64 {
	if p == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p == 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	logC := lg - lk - lnk
	return math.Exp(logC + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

// ChiSquareResult reports the outcome of a chi-square goodness-of-fit or
// independence test.
type ChiSquareResult struct {
	Statistic float64
	DF        int
	PValue    float64
}

// ChiSquareGOF performs a chi-square goodness-of-fit test of observed counts
// against expected counts. The slices must have equal, non-zero length and
// every expected count must be positive.
func ChiSquareGOF(observed []int, expected []float64) (ChiSquareResult, error) {
	if len(observed) == 0 || len(observed) != len(expected) {
		return ChiSquareResult{}, errors.New("stats: observed/expected length mismatch")
	}
	var stat float64
	for i, o := range observed {
		if expected[i] <= 0 {
			return ChiSquareResult{}, fmt.Errorf("stats: expected count %d not positive", i)
		}
		d := float64(o) - expected[i]
		stat += d * d / expected[i]
	}
	df := len(observed) - 1
	return ChiSquareResult{Statistic: stat, DF: df, PValue: chiSquareSF(stat, df)}, nil
}

// ChiSquare2x2 performs a chi-square independence test on a 2x2 contingency
// table [[a, b], [c, d]].
func ChiSquare2x2(a, b, c, d int) (ChiSquareResult, error) {
	n := a + b + c + d
	if n == 0 {
		return ChiSquareResult{}, ErrEmptySample
	}
	row1 := float64(a + b)
	row2 := float64(c + d)
	col1 := float64(a + c)
	col2 := float64(b + d)
	if row1 == 0 || row2 == 0 || col1 == 0 || col2 == 0 {
		return ChiSquareResult{Statistic: 0, DF: 1, PValue: 1}, nil
	}
	fn := float64(n)
	exp := [4]float64{row1 * col1 / fn, row1 * col2 / fn, row2 * col1 / fn, row2 * col2 / fn}
	obs := [4]float64{float64(a), float64(b), float64(c), float64(d)}
	var stat float64
	for i := range obs {
		diff := obs[i] - exp[i]
		stat += diff * diff / exp[i]
	}
	return ChiSquareResult{Statistic: stat, DF: 1, PValue: chiSquareSF(stat, 1)}, nil
}

// chiSquareSF returns the survival function P(X > x) of a chi-square
// distribution with df degrees of freedom, via the regularized upper
// incomplete gamma function.
func chiSquareSF(x float64, df int) float64 {
	if x <= 0 {
		return 1
	}
	return upperIncompleteGammaRegularized(float64(df)/2, x/2)
}

// upperIncompleteGammaRegularized computes Q(a, x) = Gamma(a, x)/Gamma(a)
// using a series expansion for x < a+1 and a continued fraction otherwise.
func upperIncompleteGammaRegularized(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - lowerGammaSeries(a, x)
	}
	return upperGammaContinuedFraction(a, x)
}

// lowerGammaSeries computes P(a, x) via its power-series representation.
func lowerGammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// upperGammaContinuedFraction computes Q(a, x) via Lentz's algorithm.
func upperGammaContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// WilsonInterval returns the Wilson score confidence interval for a
// binomial proportion with k successes in n trials at the given z (1.96
// for 95%). It behaves far better than the normal approximation at the
// small cohort sizes crowd studies use.
func WilsonInterval(k, n int, z float64) (lo, hi float64, err error) {
	if n <= 0 {
		return 0, 0, errors.New("stats: n must be positive")
	}
	if k < 0 || k > n {
		return 0, 0, errors.New("stats: k out of range")
	}
	if !(z > 0) || math.IsInf(z, 1) {
		return 0, 0, errors.New("stats: z must be positive and finite")
	}
	p := float64(k) / float64(n)
	nn := float64(n)
	z2 := z * z
	denom := 1 + z2/nn
	center := (p + z2/(2*nn)) / denom
	margin := z / denom * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn))
	lo = center - margin
	hi = center + margin
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi, nil
}

// KendallTau returns the Kendall rank correlation coefficient (tau-a)
// between two equal-length slices of scores. Agreement between a produced
// ranking and ground truth is measured with this in the rank package's
// ablations.
func KendallTau(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: length mismatch")
	}
	n := len(a)
	if n < 2 {
		return 0, errors.New("stats: need at least two observations")
	}
	var concordant, discordant int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := a[i] - a[j]
			db := b[i] - b[j]
			prod := da * db
			switch {
			case prod > 0:
				concordant++
			case prod < 0:
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(pairs), nil
}
