package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); got != tt.want {
				t.Errorf("Mean(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Unbiased variance of this classic sample is 32/7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(want), 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(want))
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance(single) = %v, want 0", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-0.5, 1}, {1.5, 5},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(q=%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if got := Quantile([]float64{10, 20}, 0.5); !almostEqual(got, 15, 1e-12) {
		t.Errorf("interpolated median = %v, want 15", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %v, want 0", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Errorf("Median = %v, want 5", got)
	}
}

func TestECDF(t *testing.T) {
	if _, err := NewECDF(nil); err == nil {
		t.Fatal("NewECDF(empty) should error")
	}
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatalf("NewECDF: %v", err)
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("ECDF.At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if e.Len() != 4 || e.Min() != 1 || e.Max() != 3 {
		t.Errorf("Len/Min/Max = %d/%v/%v, want 4/1/3", e.Len(), e.Min(), e.Max())
	}
	pts := e.Points()
	if len(pts) != 3 {
		t.Fatalf("Points len = %d, want 3 (ties collapsed)", len(pts))
	}
	if pts[1] != (Point{X: 2, Y: 0.75}) {
		t.Errorf("Points[1] = %+v, want {2 0.75}", pts[1])
	}
	if pts[2] != (Point{X: 3, Y: 1}) {
		t.Errorf("Points[2] = %+v, want {3 1}", pts[2])
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e, err := NewECDF(xs)
		if err != nil {
			return false
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return e.At(lo) <= e.At(hi) && e.At(e.Max()) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKSDistance(t *testing.T) {
	a, _ := NewECDF([]float64{1, 2, 3})
	b, _ := NewECDF([]float64{1, 2, 3})
	if d := KSDistance(a, b); d != 0 {
		t.Errorf("KS of identical = %v, want 0", d)
	}
	c, _ := NewECDF([]float64{10, 11, 12})
	if d := KSDistance(a, c); d != 1 {
		t.Errorf("KS of disjoint = %v, want 1", d)
	}
}

func TestNormalCDF(t *testing.T) {
	tests := []struct {
		z, want, tol float64
	}{
		{0, 0.5, 1e-12},
		{1.96, 0.975, 1e-3},
		{-1.96, 0.025, 1e-3},
		{5, 1, 1e-5},
	}
	for _, tt := range tests {
		if got := NormalCDF(tt.z); !almostEqual(got, tt.want, tt.tol) {
			t.Errorf("NormalCDF(%v) = %v, want %v", tt.z, got, tt.want)
		}
	}
}

// TestTwoProportionPaperABTest replicates the paper's Fig. 7(b) analysis:
// A/B testing with 3 clicks out of 51 (A) vs 6 out of 49 (B) is NOT
// significant; the VWO one-sided p-value the paper cites is ~0.133.
func TestTwoProportionPaperABTest(t *testing.T) {
	res, err := TwoProportionTest(3, 51, 6, 49)
	if err != nil {
		t.Fatalf("TwoProportionTest: %v", err)
	}
	if !almostEqual(res.PValueOneSided, 0.133, 0.01) {
		t.Errorf("one-sided P = %v, want ~0.133 (paper Fig. 7b)", res.PValueOneSided)
	}
	if res.Significant(0.05) {
		t.Error("A/B test with 100 visitors should not be significant, as in the paper")
	}
}

// TestTwoProportionPaperKaleidoscope replicates Fig. 7(c)/Fig. 8 question C:
// 46 prefer the variant vs 14 the original — strongly significant.
func TestTwoProportionPaperKaleidoscope(t *testing.T) {
	res, err := TwoProportionTest(46, 100, 14, 100)
	if err != nil {
		t.Fatalf("TwoProportionTest: %v", err)
	}
	if res.PValue > 1e-5 {
		t.Errorf("two-sided P = %v, want < 1e-5 (paper reports 6.8e-8 at 99%% confidence)", res.PValue)
	}
	if !res.Significant(0.01) {
		t.Error("Kaleidoscope result should be significant at 99% confidence")
	}
}

func TestTwoProportionErrors(t *testing.T) {
	if _, err := TwoProportionTest(1, 0, 1, 5); err == nil {
		t.Error("zero trials should error")
	}
	if _, err := TwoProportionTest(6, 5, 1, 5); err == nil {
		t.Error("successes > trials should error")
	}
	if _, err := TwoProportionTest(-1, 5, 1, 5); err == nil {
		t.Error("negative successes should error")
	}
}

func TestTwoProportionDegenerate(t *testing.T) {
	res, err := TwoProportionTest(0, 10, 0, 10)
	if err != nil {
		t.Fatalf("TwoProportionTest: %v", err)
	}
	if res.PValue != 1 {
		t.Errorf("degenerate P = %v, want 1", res.PValue)
	}
}

func TestBinomialTest(t *testing.T) {
	// Fair coin, balanced outcome: p-value must be 1.
	p, err := BinomialTest(5, 10, 0.5)
	if err != nil {
		t.Fatalf("BinomialTest: %v", err)
	}
	if !almostEqual(p, 1, 1e-9) {
		t.Errorf("balanced p = %v, want 1", p)
	}
	// Extreme outcome: tiny p-value. 2*(0.5)^10 for two-sided all-heads.
	p, err = BinomialTest(10, 10, 0.5)
	if err != nil {
		t.Fatalf("BinomialTest: %v", err)
	}
	if !almostEqual(p, 2*math.Pow(0.5, 10), 1e-9) {
		t.Errorf("all-heads p = %v, want %v", p, 2*math.Pow(0.5, 10))
	}
	if _, err := BinomialTest(3, 0, 0.5); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := BinomialTest(11, 10, 0.5); err == nil {
		t.Error("k>n should error")
	}
	if _, err := BinomialTest(3, 10, 1.5); err == nil {
		t.Error("p>1 should error")
	}
}

func TestBinomialTestEdgeProbabilities(t *testing.T) {
	p, err := BinomialTest(0, 5, 0)
	if err != nil {
		t.Fatalf("BinomialTest: %v", err)
	}
	if p != 1 {
		t.Errorf("k=0 p=0 gives %v, want 1", p)
	}
	p, err = BinomialTest(5, 5, 1)
	if err != nil {
		t.Fatalf("BinomialTest: %v", err)
	}
	if p != 1 {
		t.Errorf("k=n p=1 gives %v, want 1", p)
	}
}

func TestChiSquareGOF(t *testing.T) {
	// Perfect fit: statistic 0, p-value 1.
	res, err := ChiSquareGOF([]int{25, 25, 25, 25}, []float64{25, 25, 25, 25})
	if err != nil {
		t.Fatalf("ChiSquareGOF: %v", err)
	}
	if res.Statistic != 0 || !almostEqual(res.PValue, 1, 1e-9) {
		t.Errorf("perfect fit: stat=%v p=%v, want 0 and 1", res.Statistic, res.PValue)
	}
	// A canonical example: observed [44,56], expected [50,50]: X^2 = 1.44,
	// p ~ 0.23.
	res, err = ChiSquareGOF([]int{44, 56}, []float64{50, 50})
	if err != nil {
		t.Fatalf("ChiSquareGOF: %v", err)
	}
	if !almostEqual(res.Statistic, 1.44, 1e-9) {
		t.Errorf("stat = %v, want 1.44", res.Statistic)
	}
	if !almostEqual(res.PValue, 0.2301, 1e-3) {
		t.Errorf("p = %v, want ~0.2301", res.PValue)
	}
	if _, err := ChiSquareGOF(nil, nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := ChiSquareGOF([]int{1}, []float64{0}); err == nil {
		t.Error("zero expected should error")
	}
}

func TestChiSquare2x2(t *testing.T) {
	res, err := ChiSquare2x2(3, 48, 6, 43)
	if err != nil {
		t.Fatalf("ChiSquare2x2: %v", err)
	}
	if res.DF != 1 {
		t.Errorf("df = %d, want 1", res.DF)
	}
	// chi-square(1) equals z^2 from the two-proportion test; p-values match.
	z, _ := TwoProportionTest(3, 51, 6, 49)
	if !almostEqual(res.Statistic, z.Z*z.Z, 1e-9) {
		t.Errorf("chi2 stat %v != z^2 %v", res.Statistic, z.Z*z.Z)
	}
	if !almostEqual(res.PValue, z.PValue, 1e-6) {
		t.Errorf("chi2 p %v != two-prop p %v", res.PValue, z.PValue)
	}
	if _, err := ChiSquare2x2(0, 0, 0, 0); err == nil {
		t.Error("all-zero table should error")
	}
	// Degenerate margin: independent by construction.
	res, err = ChiSquare2x2(0, 0, 5, 5)
	if err != nil {
		t.Fatalf("ChiSquare2x2 degenerate: %v", err)
	}
	if res.PValue != 1 {
		t.Errorf("degenerate margin p = %v, want 1", res.PValue)
	}
}

func TestKendallTau(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	tau, err := KendallTau(a, a)
	if err != nil {
		t.Fatalf("KendallTau: %v", err)
	}
	if tau != 1 {
		t.Errorf("tau(identical) = %v, want 1", tau)
	}
	rev := []float64{5, 4, 3, 2, 1}
	tau, err = KendallTau(a, rev)
	if err != nil {
		t.Fatalf("KendallTau: %v", err)
	}
	if tau != -1 {
		t.Errorf("tau(reversed) = %v, want -1", tau)
	}
	if _, err := KendallTau(a, a[:2]); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := KendallTau([]float64{1}, []float64{1}); err == nil {
		t.Error("n<2 should error")
	}
}

func TestMajorityVote(t *testing.T) {
	winner, count, err := MajorityVote([]string{"left", "right", "left", "same", "left"})
	if err != nil {
		t.Fatalf("MajorityVote: %v", err)
	}
	if winner != "left" || count != 3 {
		t.Errorf("winner=%q count=%d, want left/3", winner, count)
	}
	// Tie: first-seen wins, deterministically.
	winner, count, err = MajorityVote([]string{"b", "a", "a", "b"})
	if err != nil {
		t.Fatalf("MajorityVote: %v", err)
	}
	if winner != "b" || count != 2 {
		t.Errorf("tie winner=%q count=%d, want b/2", winner, count)
	}
	if _, _, err := MajorityVote[string](nil); err == nil {
		t.Error("empty should error")
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()*2 + 10
	}
	lo, hi, err := BootstrapCI(xs, Mean, 500, 0.95, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("BootstrapCI: %v", err)
	}
	if lo >= hi {
		t.Fatalf("lo %v >= hi %v", lo, hi)
	}
	if lo > 10 || hi < 10 {
		t.Errorf("CI [%v, %v] should contain the true mean 10", lo, hi)
	}
	if _, _, err := BootstrapCI(nil, Mean, 10, 0.95, rng); err == nil {
		t.Error("empty sample should error")
	}
	if _, _, err := BootstrapCI(xs, Mean, 0, 0.95, rng); err == nil {
		t.Error("zero iters should error")
	}
	if _, _, err := BootstrapCI(xs, Mean, 10, 1.5, rng); err == nil {
		t.Error("bad level should error")
	}
	if _, _, err := BootstrapCI(xs, Mean, 10, 0.95, nil); err == nil {
		t.Error("nil rng should error")
	}
}

func TestHistogramAndProportions(t *testing.T) {
	counts, err := Histogram([]float64{0.5, 1.5, 1.6, 2.5, -1, 99}, 0, 3, 3)
	if err != nil {
		t.Fatalf("Histogram: %v", err)
	}
	want := []int{2, 2, 2} // -1 clamps into bin 0, 99 into bin 2
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bin %d = %d, want %d", i, counts[i], want[i])
		}
	}
	if _, err := Histogram(nil, 0, 1, 0); err == nil {
		t.Error("zero bins should error")
	}
	if _, err := Histogram(nil, 1, 1, 3); err == nil {
		t.Error("max<=min should error")
	}
	props := Proportions([]int{1, 3})
	if !almostEqual(props[0], 0.25, 1e-12) || !almostEqual(props[1], 0.75, 1e-12) {
		t.Errorf("Proportions = %v, want [0.25 0.75]", props)
	}
	zero := Proportions([]int{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("Proportions(zeros) = %v, want zeros", zero)
	}
}

func TestQuantilePropertyWithinRange(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qq := math.Mod(math.Abs(q), 1)
		v := Quantile(xs, qq)
		min, max := xs[0], xs[0]
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return v >= min && v <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialSymmetryProperty(t *testing.T) {
	// For a fair coin, p-value(k) == p-value(n-k).
	f := func(k, n uint8) bool {
		nn := int(n%50) + 2
		kk := int(k) % (nn + 1)
		p1, err1 := BinomialTest(kk, nn, 0.5)
		p2, err2 := BinomialTest(nn-kk, nn, 0.5)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(p1, p2, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWilsonInterval(t *testing.T) {
	// Canonical check: 46/100 at 95% gives roughly [0.366, 0.557].
	lo, hi, err := WilsonInterval(46, 100, 1.96)
	if err != nil {
		t.Fatalf("WilsonInterval: %v", err)
	}
	if !almostEqual(lo, 0.366, 0.01) || !almostEqual(hi, 0.557, 0.01) {
		t.Errorf("interval = [%v, %v], want ~[0.366, 0.557]", lo, hi)
	}
	// Degenerate edges stay within [0,1].
	lo, hi, err = WilsonInterval(0, 10, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || hi <= 0 || hi >= 1 {
		t.Errorf("zero-success interval = [%v, %v]", lo, hi)
	}
	lo, hi, err = WilsonInterval(10, 10, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if hi != 1 || lo <= 0 {
		t.Errorf("all-success interval = [%v, %v]", lo, hi)
	}
	if _, _, err := WilsonInterval(1, 0, 1.96); err == nil {
		t.Error("n=0 should fail")
	}
	if _, _, err := WilsonInterval(11, 10, 1.96); err == nil {
		t.Error("k>n should fail")
	}
	if _, _, err := WilsonInterval(1, 10, 0); err == nil {
		t.Error("z=0 should fail")
	}
}

func TestWilsonIntervalContainsP(t *testing.T) {
	f := func(k, n uint8) bool {
		nn := int(n%100) + 1
		kk := int(k) % (nn + 1)
		lo, hi, err := WilsonInterval(kk, nn, 1.96)
		if err != nil {
			return false
		}
		p := float64(kk) / float64(nn)
		return lo <= p+1e-9 && p <= hi+1e-9 && lo <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
