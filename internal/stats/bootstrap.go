package stats

import (
	"errors"
	"math/rand"
	"sort"
)

// BootstrapCI estimates a percentile bootstrap confidence interval for a
// statistic of the sample xs. The statistic is recomputed on `iters`
// resamples drawn with replacement using rng; level is the confidence level
// in (0, 1), e.g. 0.95.
func BootstrapCI(xs []float64, statistic func([]float64) float64, iters int, level float64, rng *rand.Rand) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmptySample
	}
	if iters <= 0 {
		return 0, 0, errors.New("stats: iters must be positive")
	}
	if level <= 0 || level >= 1 {
		return 0, 0, errors.New("stats: level must be in (0,1)")
	}
	if rng == nil {
		return 0, 0, errors.New("stats: nil rng")
	}
	estimates := make([]float64, iters)
	resample := make([]float64, len(xs))
	for i := 0; i < iters; i++ {
		for j := range resample {
			resample[j] = xs[rng.Intn(len(xs))]
		}
		estimates[i] = statistic(resample)
	}
	sort.Float64s(estimates)
	alpha := (1 - level) / 2
	return Quantile(estimates, alpha), Quantile(estimates, 1-alpha), nil
}

// MajorityVote returns the most frequent value among votes along with its
// count. Ties are broken toward the value that appears first in the slice,
// keeping the result deterministic. This is the "crowd wisdom" primitive the
// quality-control layer uses as pseudo-ground truth.
func MajorityVote[T comparable](votes []T) (winner T, count int, err error) {
	if len(votes) == 0 {
		return winner, 0, ErrEmptySample
	}
	counts := make(map[T]int, len(votes))
	order := make([]T, 0, len(votes))
	for _, v := range votes {
		if counts[v] == 0 {
			order = append(order, v)
		}
		counts[v]++
	}
	winner = order[0]
	count = counts[winner]
	for _, v := range order[1:] {
		if counts[v] > count {
			winner, count = v, counts[v]
		}
	}
	return winner, count, nil
}

// Histogram buckets xs into equal-width bins over [min, max] and returns the
// per-bin counts. Values outside the range are clamped into the edge bins.
func Histogram(xs []float64, min, max float64, bins int) ([]int, error) {
	if bins <= 0 {
		return nil, errors.New("stats: bins must be positive")
	}
	if max <= min {
		return nil, errors.New("stats: max must exceed min")
	}
	counts := make([]int, bins)
	width := (max - min) / float64(bins)
	for _, x := range xs {
		idx := int((x - min) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
		counts[idx]++
	}
	return counts, nil
}

// Proportions converts integer counts into fractions of their total.
// An all-zero input yields all-zero output.
func Proportions(counts []int) []float64 {
	var total int
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}
