package webgen

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// WriteDir materializes the site as a saved-webpage folder on disk —
// the on-disk input format the paper's aggregator consumes.
func (s *Site) WriteDir(dir string) error {
	if err := s.Validate(); err != nil {
		return err
	}
	for _, rel := range s.Paths() {
		data, _ := s.Get(rel)
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("webgen: creating %s: %w", filepath.Dir(path), err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return fmt.Errorf("webgen: writing %s: %w", path, err)
		}
	}
	return nil
}

// LoadDir reads a saved-webpage folder from disk into a Site. mainFile is
// the initial HTML document's path relative to dir (e.g. "index.html").
func LoadDir(dir, mainFile string) (*Site, error) {
	site := NewSite(mainFile)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("webgen: reading %s: %w", path, err)
		}
		site.Put(filepath.ToSlash(rel), data)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("webgen: loading %s: %w", dir, err)
	}
	if err := site.Validate(); err != nil {
		return nil, err
	}
	return site, nil
}
