// Package webgen generates the synthetic webpages Kaleidoscope's
// experiments run on: a text-heavy wiki-style article (the paper uses the
// Wikipedia "rock hyrax" page) and a research-group landing page with
// collapsible sections and an "Expand" button (the paper's A/B study
// subject). Pages are produced as saved-webpage folders — an initial HTML
// document plus resource files — exactly the input format the paper's
// aggregator expects, and generation is deterministic given a seed.
package webgen

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
)

// Site is one version of a webpage organized as a saved-webpage folder:
// an initial HTML document plus its resources, all path-addressed relative
// to the folder root.
type Site struct {
	// MainFile is the initial HTML file name (e.g. "index.html").
	MainFile string
	// Files maps relative paths to file contents. Files[MainFile] is the
	// HTML document.
	Files map[string][]byte
}

// NewSite returns an empty site with the given main file name.
func NewSite(mainFile string) *Site {
	return &Site{MainFile: mainFile, Files: make(map[string][]byte)}
}

// HTML returns the main document's contents.
func (s *Site) HTML() []byte { return s.Files[s.MainFile] }

// Put stores a file at the given relative path.
func (s *Site) Put(relPath string, data []byte) {
	s.Files[path.Clean(relPath)] = data
}

// Get returns a file's contents and whether it exists. Paths are cleaned,
// so "./css/style.css" and "css/style.css" are the same file.
func (s *Site) Get(relPath string) ([]byte, bool) {
	data, ok := s.Files[path.Clean(relPath)]
	return data, ok
}

// Paths returns the sorted list of file paths in the site.
func (s *Site) Paths() []string {
	out := make([]string, 0, len(s.Files))
	for p := range s.Files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// TotalBytes returns the summed size of all files, which the network
// simulator uses for fetch timing.
func (s *Site) TotalBytes() int {
	var n int
	for _, data := range s.Files {
		n += len(data)
	}
	return n
}

// Clone returns a deep copy of the site.
func (s *Site) Clone() *Site {
	cp := NewSite(s.MainFile)
	for p, data := range s.Files {
		cp.Files[p] = append([]byte(nil), data...)
	}
	return cp
}

// Validate checks structural sanity: a main file that exists and is
// non-empty.
func (s *Site) Validate() error {
	if s.MainFile == "" {
		return errors.New("webgen: empty main file name")
	}
	data, ok := s.Files[s.MainFile]
	if !ok {
		return fmt.Errorf("webgen: main file %q missing from site", s.MainFile)
	}
	if len(data) == 0 {
		return fmt.Errorf("webgen: main file %q is empty", s.MainFile)
	}
	return nil
}

// fakePNG builds a deterministic pseudo-image payload of the given size.
// The leading bytes mimic a PNG signature so content sniffing in the
// inliner has something realistic to chew on.
func fakePNG(seedByte byte, size int) []byte {
	if size < 8 {
		size = 8
	}
	data := make([]byte, size)
	copy(data, []byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n'})
	state := uint32(seedByte) | 0x9e3779b9
	for i := 8; i < size; i++ {
		// xorshift32 keeps the payload incompressible-looking and cheap.
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		data[i] = byte(state)
	}
	return data
}

// cssEscapeFontFamily quotes a font family list for CSS output.
func cssEscapeFontFamily(families []string) string {
	quoted := make([]string, len(families))
	for i, f := range families {
		if strings.ContainsAny(f, " -") && !strings.EqualFold(f, "sans-serif") && !strings.EqualFold(f, "serif") {
			quoted[i] = `"` + f + `"`
		} else {
			quoted[i] = f
		}
	}
	return strings.Join(quoted, ", ")
}
