package webgen

import (
	"bytes"
	"testing"

	"kaleidoscope/internal/cssx"
	"kaleidoscope/internal/htmlx"
)

func TestNewsPageStructure(t *testing.T) {
	site := NewsPage(NewsConfig{Seed: 9})
	if err := site.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	doc := htmlx.Parse(string(site.HTML()))
	for _, id := range []string{"masthead", "hero", "cards", "river"} {
		if doc.ByID(id) == nil {
			t.Errorf("missing #%s", id)
		}
	}
	cards, err := cssx.Query(doc, "#cards .card")
	if err != nil {
		t.Fatal(err)
	}
	if len(cards) != 6 {
		t.Errorf("cards = %d, want 6", len(cards))
	}
	imgs := doc.ByTag("img")
	if len(imgs) != 7 { // hero + 6 cards
		t.Errorf("images = %d, want 7", len(imgs))
	}
	// Image-heavy payload: images dominate total bytes.
	var imgBytes int
	for _, p := range site.Paths() {
		if data, _ := site.Get(p); len(p) > 4 && p[:4] == "img/" {
			imgBytes += len(data)
		}
	}
	if imgBytes*2 < site.TotalBytes() {
		t.Errorf("images should dominate payload: %d of %d", imgBytes, site.TotalBytes())
	}
}

func TestNewsPageDeterminism(t *testing.T) {
	a := NewsPage(NewsConfig{Seed: 4})
	b := NewsPage(NewsConfig{Seed: 4})
	if !bytes.Equal(a.HTML(), b.HTML()) {
		t.Error("same seed should give identical pages")
	}
	c := NewsPage(NewsConfig{Seed: 5})
	if bytes.Equal(a.HTML(), c.HTML()) {
		t.Error("different seeds should differ")
	}
}

func TestNewsPageCustomSizes(t *testing.T) {
	site := NewsPage(NewsConfig{Seed: 1, Cards: 3, Headlines: 5, HeroBytes: 1000, CardBytes: 500})
	hero, _ := site.Get("img/hero.png")
	if len(hero) != 1000 {
		t.Errorf("hero bytes = %d", len(hero))
	}
	doc := htmlx.Parse(string(site.HTML()))
	river := doc.ByID("river")
	if got := len(river.ByTag("li")); got != 5 {
		t.Errorf("headlines = %d, want 5", got)
	}
}
