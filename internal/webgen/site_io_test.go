package webgen

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteDirLoadDirRoundTrip(t *testing.T) {
	site := WikiArticle(WikiConfig{Seed: 8})
	dir := t.TempDir()
	if err := site.WriteDir(dir); err != nil {
		t.Fatalf("WriteDir: %v", err)
	}
	// Spot-check on-disk layout.
	if _, err := os.Stat(filepath.Join(dir, "css", "style.css")); err != nil {
		t.Fatalf("css not materialized: %v", err)
	}
	loaded, err := LoadDir(dir, "index.html")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(loaded.Files) != len(site.Files) {
		t.Errorf("files = %d, want %d", len(loaded.Files), len(site.Files))
	}
	if string(loaded.HTML()) != string(site.HTML()) {
		t.Error("HTML mismatch after round trip")
	}
}

func TestWriteDirInvalidSite(t *testing.T) {
	if err := NewSite("index.html").WriteDir(t.TempDir()); err == nil {
		t.Error("invalid site should fail")
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir("/nonexistent-kscope-dir", "index.html"); err == nil {
		t.Error("missing dir should fail")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "other.html"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir, "index.html"); err == nil {
		t.Error("missing main file should fail")
	}
}
