package webgen

import (
	"fmt"
	"strings"
)

// GroupConfig parameterizes the research-group landing page generator —
// the subject of the paper's Kaleidoscope-vs-A/B study (Fig. 6).
type GroupConfig struct {
	// GroupName heads the page. Defaults to "Networks Research Group".
	GroupName string
	// Sections lists the collapsible section titles. Defaults to the
	// paper's nine sections ("About", "Selected Publications", ...).
	Sections []string
	// ItemsPerSection is how many entries each section holds. Defaults
	// to 6.
	ItemsPerSection int
	// VisibleItems is how many entries are shown before the Expand button
	// truncates a section. Defaults to 2.
	VisibleItems int
	// ExpandVariant selects the paper's "B" version of the Expand button:
	// 1.5x larger text, a captivating symbol, positioned closer to the main
	// text. The zero value is the original ("A") version.
	ExpandVariant bool
	// Seed drives deterministic prose generation.
	Seed int64
}

// defaultGroupSections are the paper's nine landing-page sections.
var defaultGroupSections = []string{
	"About", "News", "People", "Selected Publications", "Selected Talks",
	"Projects", "Press", "Teaching", "Contact",
}

func (c GroupConfig) withDefaults() GroupConfig {
	if c.GroupName == "" {
		c.GroupName = "Networks Research Group"
	}
	if len(c.Sections) == 0 {
		c.Sections = defaultGroupSections
	}
	if c.ItemsPerSection == 0 {
		c.ItemsPerSection = 6
	}
	if c.VisibleItems == 0 {
		c.VisibleItems = 2
	}
	return c
}

// GroupPage generates the research-group landing page as a saved-webpage
// folder. Stable hooks the experiments rely on:
//
//	.section       — one per collapsible section
//	.section-body  — the visible entries
//	.expand-btn    — the Expand control (the A/B study's subject)
//
// The variant version adds the class "expand-btn-variant" to the button and
// renders it inline after the visible entries (closer to the main text)
// with a symbol and 1.5x font size, per the paper's description.
func GroupPage(cfg GroupConfig) *Site {
	cfg = cfg.withDefaults()
	gen := newProse(cfg.Seed)
	site := NewSite("index.html")

	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "<meta charset=\"utf-8\">\n<title>%s</title>\n", cfg.GroupName)
	b.WriteString("<link rel=\"stylesheet\" href=\"css/group.css\">\n")
	b.WriteString("<script src=\"js/expand.js\"></script>\n")
	b.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&b, "<header id=\"masthead\"><h1>%s</h1><img src=\"img/logo.png\" alt=\"logo\" width=\"96\" height=\"96\"></header>\n", cfg.GroupName)
	b.WriteString("<main id=\"sections\">\n")

	for i, title := range cfg.Sections {
		fmt.Fprintf(&b, "<section class=\"section\" id=\"sec-%d\">\n", i+1)
		fmt.Fprintf(&b, "<h2>%s</h2>\n", title)
		b.WriteString("<ul class=\"section-body\">\n")
		for item := 0; item < cfg.VisibleItems && item < cfg.ItemsPerSection; item++ {
			fmt.Fprintf(&b, "<li>%s</li>\n", gen.Sentence())
		}
		b.WriteString("</ul>\n")
		hidden := cfg.ItemsPerSection - cfg.VisibleItems
		if hidden > 0 {
			b.WriteString(expandButton(cfg.ExpandVariant, hidden))
		}
		b.WriteString("</section>\n")
	}

	b.WriteString("</main>\n</body>\n</html>\n")
	site.Put("index.html", []byte(b.String()))
	site.Put("css/group.css", []byte(groupCSS(cfg)))
	site.Put("js/expand.js", []byte(expandJS))
	site.Put("img/logo.png", fakePNG(7, 8<<10))
	return site
}

// expandButton renders the Expand control. The original version (A) is a
// small right-aligned text link; the variant (B) is larger, symbol-adorned,
// and placed immediately after the list items.
func expandButton(variant bool, hiddenCount int) string {
	if variant {
		return fmt.Sprintf(
			"<button class=\"expand-btn expand-btn-variant\" data-hidden=\"%d\">&#187; Expand</button>\n",
			hiddenCount)
	}
	return fmt.Sprintf(
		"<div class=\"expand-row\"><button class=\"expand-btn\" data-hidden=\"%d\">Expand</button></div>\n",
		hiddenCount)
}

func groupCSS(cfg GroupConfig) string {
	var b strings.Builder
	fmt.Fprintf(&b, `body { margin: 0; font-family: %s; color: #1b1b1b; }
#masthead { display: flex; justify-content: space-between; align-items: center; padding: 16px 32px; background: #4b2e83; color: #fff; }
#sections { max-width: 860px; margin: 0 auto; padding: 16px; }
.section { margin-bottom: 24px; border-bottom: 1px solid #ddd; }
.section h2 { font-size: 19px; }
.section-body { font-size: 14px; line-height: 1.5; }
.expand-row { text-align: right; }
.expand-btn { border: none; background: none; color: #4b2e83; cursor: pointer; font-size: 12px; }
`, cssEscapeFontFamily([]string{"Helvetica", "Arial", "sans-serif"}))
	if cfg.ExpandVariant {
		// 1.5x larger (12px -> 18px), bold, inline after the entries.
		b.WriteString(".expand-btn-variant { font-size: 18px; font-weight: bold; display: block; margin: 4px 0 8px; }\n")
	}
	return b.String()
}

// expandJS toggles hidden section entries — the click the A/B experiment
// counts.
const expandJS = `(function () {
  "use strict";
  function wire() {
    var btns = document.querySelectorAll(".expand-btn");
    for (var i = 0; i < btns.length; i++) {
      btns[i].addEventListener("click", function (ev) {
        ev.target.setAttribute("data-clicked", "true");
      });
    }
  }
  if (document.readyState !== "loading") { wire(); }
  else { document.addEventListener("DOMContentLoaded", wire); }
})();
`

// GroupPageVersions returns the paper's two study versions: the original
// (A) and the improved-button variant (B), generated from the same seed so
// only the Expand button differs.
func GroupPageVersions(base GroupConfig) (a, b *Site) {
	orig := base
	orig.ExpandVariant = false
	variant := base
	variant.ExpandVariant = true
	return GroupPage(orig), GroupPage(variant)
}
