package webgen

import (
	"fmt"
	"strings"
)

// WikiConfig parameterizes the wiki-style article generator. The defaults
// mirror the paper's test page: a text-heavy encyclopedia article with a
// navigation bar, an infobox, main text content, and references.
type WikiConfig struct {
	// Title is the article title. Defaults to "Rock Hyrax".
	Title string
	// FontSizePt is the main-text font size in points — the variable the
	// paper's first experiment sweeps (10, 12, 14, 18, 22). Defaults to 14.
	FontSizePt int
	// LineSpacing is the main-text line-height multiplier. Defaults to 1.4.
	LineSpacing float64
	// Sections is the number of body sections. Defaults to 6.
	Sections int
	// ParagraphsPerSection controls text volume. Defaults to 3.
	ParagraphsPerSection int
	// SentencesPerParagraph controls paragraph length. Defaults to 5.
	SentencesPerParagraph int
	// Images is the number of figure images embedded in sections (plus the
	// infobox lead image). Defaults to 2.
	Images int
	// ImageBytes is the payload size of each generated image. Defaults to
	// 24 KiB.
	ImageBytes int
	// References is the number of reference entries. Defaults to 12.
	References int
	// Seed drives deterministic prose generation.
	Seed int64
}

// withDefaults fills zero fields with the documented defaults.
func (c WikiConfig) withDefaults() WikiConfig {
	if c.Title == "" {
		c.Title = "Rock Hyrax"
	}
	if c.FontSizePt == 0 {
		c.FontSizePt = 14
	}
	if c.LineSpacing == 0 {
		c.LineSpacing = 1.4
	}
	if c.Sections == 0 {
		c.Sections = 6
	}
	if c.ParagraphsPerSection == 0 {
		c.ParagraphsPerSection = 3
	}
	if c.SentencesPerParagraph == 0 {
		c.SentencesPerParagraph = 5
	}
	if c.Images == 0 {
		c.Images = 2
	}
	if c.ImageBytes == 0 {
		c.ImageBytes = 24 << 10
	}
	if c.References == 0 {
		c.References = 12
	}
	return c
}

// navLinks are the navigation-bar entries of the generated article.
var navLinks = []string{
	"Main page", "Contents", "Current events", "Random article",
	"About", "Contact", "Donate", "Help",
}

// WikiArticle generates one version of the wiki-style article as a
// saved-webpage folder: index.html plus css/, js/, and img/ resources.
//
// Stable element ids the experiments rely on:
//
//	#navbar      — the navigation bar (Fig. 9's "auxiliary content")
//	#content     — the main text column (Fig. 9's "main text content")
//	#infobox     — the right-hand fact box
//	#references  — the reference list
//	#content p   — the main text paragraphs the font-size study restyles
func WikiArticle(cfg WikiConfig) *Site {
	cfg = cfg.withDefaults()
	gen := newProse(cfg.Seed)
	site := NewSite("index.html")

	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "<meta charset=\"utf-8\">\n<title>%s</title>\n", cfg.Title)
	b.WriteString("<link rel=\"stylesheet\" href=\"css/style.css\">\n")
	b.WriteString("<script src=\"js/article.js\"></script>\n")
	b.WriteString("</head>\n<body>\n")

	// Navigation bar.
	b.WriteString("<nav id=\"navbar\">\n<ul>\n")
	for i, link := range navLinks {
		fmt.Fprintf(&b, "<li><a href=\"#nav-%d\" class=\"nav-link\">%s</a></li>\n", i, link)
	}
	b.WriteString("</ul>\n</nav>\n")

	b.WriteString("<div id=\"page\">\n")

	// Infobox with the lead image.
	b.WriteString("<aside id=\"infobox\">\n")
	fmt.Fprintf(&b, "<img src=\"img/lead.png\" alt=\"%s\" width=\"220\" height=\"160\">\n", cfg.Title)
	b.WriteString("<table>\n")
	facts := []string{"Kingdom", "Phylum", "Class", "Order", "Family", "Genus"}
	for _, fact := range facts {
		fmt.Fprintf(&b, "<tr><th>%s</th><td>%s</td></tr>\n", fact, gen.Title())
	}
	b.WriteString("</table>\n</aside>\n")

	// Main content column.
	b.WriteString("<div id=\"content\">\n")
	fmt.Fprintf(&b, "<h1 id=\"title\">%s</h1>\n", cfg.Title)
	fmt.Fprintf(&b, "<p class=\"summary\">%s</p>\n", gen.Paragraph(cfg.SentencesPerParagraph))

	imagesLeft := cfg.Images
	for s := 1; s <= cfg.Sections; s++ {
		fmt.Fprintf(&b, "<div class=\"section\" id=\"section-%d\">\n", s)
		fmt.Fprintf(&b, "<h2>%s</h2>\n", gen.Title())
		for p := 0; p < cfg.ParagraphsPerSection; p++ {
			fmt.Fprintf(&b, "<p>%s</p>\n", gen.Paragraph(cfg.SentencesPerParagraph))
		}
		if imagesLeft > 0 {
			fmt.Fprintf(&b, "<figure><img src=\"img/figure-%d.png\" alt=\"Figure %d\" width=\"320\" height=\"200\"><figcaption>%s</figcaption></figure>\n",
				imagesLeft, imagesLeft, gen.Sentence())
			imagesLeft--
		}
		b.WriteString("</div>\n")
	}

	// References.
	b.WriteString("<div id=\"references\">\n<h2>References</h2>\n<ol>\n")
	for r := 0; r < cfg.References; r++ {
		fmt.Fprintf(&b, "<li>%s</li>\n", gen.Sentence())
	}
	b.WriteString("</ol>\n</div>\n")

	b.WriteString("</div>\n</div>\n</body>\n</html>\n")
	site.Put("index.html", []byte(b.String()))

	site.Put("css/style.css", []byte(wikiCSS(cfg)))
	site.Put("js/article.js", []byte(wikiJS))
	site.Put("img/lead.png", fakePNG(1, cfg.ImageBytes))
	for i := 1; i <= cfg.Images; i++ {
		site.Put(fmt.Sprintf("img/figure-%d.png", i), fakePNG(byte(1+i), cfg.ImageBytes))
	}
	return site
}

// wikiCSS renders the article stylesheet; the main-text font size and line
// spacing come from the config so version mutators only need to change the
// config.
func wikiCSS(cfg WikiConfig) string {
	var b strings.Builder
	fmt.Fprintf(&b, `body { margin: 0; font-family: %s; color: #202122; }
#navbar { background: #f8f9fa; border-bottom: 1px solid #a2a9b1; padding: 8px 16px; }
#navbar ul { list-style: none; margin: 0; padding: 0; }
#navbar li { display: inline; margin-right: 14px; }
.nav-link { color: #3366cc; text-decoration: none; font-size: 13px; }
#page { display: flex; max-width: 960px; margin: 0 auto; padding: 16px; }
#infobox { order: 2; width: 240px; margin-left: 16px; border: 1px solid #a2a9b1; background: #f8f9fa; padding: 8px; font-size: 12px; }
#infobox img { display: block; margin-bottom: 8px; }
#content { order: 1; flex: 1; }
#content h1 { font-size: 28px; border-bottom: 1px solid #a2a9b1; }
#content h2 { font-size: 20px; border-bottom: 1px solid #eaecf0; }
#content p { font-size: %dpt; line-height: %.2f; }
#references { font-size: 11pt; color: #54595d; }
figure { margin: 12px 0; }
figcaption { font-size: 11px; color: #54595d; }
`, cssEscapeFontFamily([]string{"Georgia", "serif"}), cfg.FontSizePt, cfg.LineSpacing)
	return b.String()
}

// wikiJS is a small inert script so generated articles have a JS resource
// to inline, as saved real-world pages do.
const wikiJS = `(function () {
  "use strict";
  function ready() {
    var refs = document.getElementById("references");
    if (refs) { refs.setAttribute("data-counted", String(refs.querySelectorAll("li").length)); }
  }
  if (document.readyState !== "loading") { ready(); }
  else { document.addEventListener("DOMContentLoaded", ready); }
})();
`

// WikiFontSizeVersions generates one article version per requested font
// size, holding everything else (including the prose seed, hence the text)
// constant — exactly the paper's §IV-A experiment input.
func WikiFontSizeVersions(base WikiConfig, fontSizesPt []int) []*Site {
	out := make([]*Site, len(fontSizesPt))
	for i, pt := range fontSizesPt {
		cfg := base
		cfg.FontSizePt = pt
		out[i] = WikiArticle(cfg)
	}
	return out
}
