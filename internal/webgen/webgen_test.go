package webgen

import (
	"bytes"
	"strings"
	"testing"

	"kaleidoscope/internal/cssx"
	"kaleidoscope/internal/htmlx"
)

func TestWikiArticleStructure(t *testing.T) {
	site := WikiArticle(WikiConfig{Seed: 42})
	if err := site.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	doc := htmlx.Parse(string(site.HTML()))
	for _, id := range []string{"navbar", "content", "infobox", "references", "title"} {
		if doc.ByID(id) == nil {
			t.Errorf("missing #%s", id)
		}
	}
	paras, err := cssx.Query(doc, "#content p")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// summary + 6 sections x 3 paragraphs = 19.
	if len(paras) != 19 {
		t.Errorf("#content p = %d, want 19", len(paras))
	}
	sections, err := cssx.Query(doc, "#content .section")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(sections) != 6 {
		t.Errorf("sections = %d, want 6", len(sections))
	}
}

func TestWikiArticleResources(t *testing.T) {
	site := WikiArticle(WikiConfig{Seed: 1, Images: 3, ImageBytes: 1000})
	wantFiles := []string{"index.html", "css/style.css", "js/article.js", "img/lead.png", "img/figure-1.png", "img/figure-2.png", "img/figure-3.png"}
	for _, f := range wantFiles {
		if _, ok := site.Get(f); !ok {
			t.Errorf("missing resource %q (have %v)", f, site.Paths())
		}
	}
	img, _ := site.Get("img/lead.png")
	if len(img) != 1000 {
		t.Errorf("image bytes = %d, want 1000", len(img))
	}
	if !bytes.HasPrefix(img, []byte{0x89, 'P', 'N', 'G'}) {
		t.Error("image should carry a PNG signature")
	}
	if site.TotalBytes() <= 4000 {
		t.Errorf("TotalBytes = %d, suspiciously small", site.TotalBytes())
	}
}

func TestWikiFontSizeInCSS(t *testing.T) {
	for _, pt := range []int{10, 12, 14, 18, 22} {
		site := WikiArticle(WikiConfig{Seed: 42, FontSizePt: pt})
		css, _ := site.Get("css/style.css")
		sheet := cssx.ParseStylesheet(string(css))
		doc := htmlx.Parse(string(site.HTML()))
		paras, err := cssx.Query(doc, "#content p")
		if err != nil || len(paras) == 0 {
			t.Fatalf("query paras: %v", err)
		}
		style := sheet.ComputedStyle(paras[1])
		px, ok := cssx.ParsePixels(style["font-size"], 16)
		if !ok {
			t.Fatalf("font-size %q unparsable", style["font-size"])
		}
		wantPx := float64(pt) * 96 / 72
		if px != wantPx {
			t.Errorf("pt=%d: computed %vpx, want %vpx", pt, px, wantPx)
		}
	}
}

func TestWikiFontSizeVersionsHoldTextConstant(t *testing.T) {
	versions := WikiFontSizeVersions(WikiConfig{Seed: 9}, []int{10, 12, 14, 18, 22})
	if len(versions) != 5 {
		t.Fatalf("versions = %d, want 5", len(versions))
	}
	baseText := htmlx.Parse(string(versions[0].HTML())).ByID("content").Text()
	for i, v := range versions[1:] {
		text := htmlx.Parse(string(v.HTML())).ByID("content").Text()
		if text != baseText {
			t.Errorf("version %d text differs from base", i+1)
		}
	}
	// But the CSS differs.
	css0, _ := versions[0].Get("css/style.css")
	css1, _ := versions[1].Get("css/style.css")
	if string(css0) == string(css1) {
		t.Error("font-size versions should have different CSS")
	}
}

func TestWikiDeterminism(t *testing.T) {
	a := WikiArticle(WikiConfig{Seed: 5})
	b := WikiArticle(WikiConfig{Seed: 5})
	if !bytes.Equal(a.HTML(), b.HTML()) {
		t.Error("same seed should give identical HTML")
	}
	c := WikiArticle(WikiConfig{Seed: 6})
	if bytes.Equal(a.HTML(), c.HTML()) {
		t.Error("different seeds should give different prose")
	}
}

func TestGroupPageStructure(t *testing.T) {
	site := GroupPage(GroupConfig{Seed: 3})
	if err := site.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	doc := htmlx.Parse(string(site.HTML()))
	sections, err := cssx.Query(doc, ".section")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(sections) != 9 {
		t.Errorf("sections = %d, want 9 (the paper's nine)", len(sections))
	}
	btns, err := cssx.Query(doc, ".expand-btn")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(btns) != 9 {
		t.Errorf("expand buttons = %d, want 9", len(btns))
	}
	for _, btn := range btns {
		if btn.HasClass("expand-btn-variant") {
			t.Error("original version must not carry the variant class")
		}
	}
}

func TestGroupPageVariant(t *testing.T) {
	a, b := GroupPageVersions(GroupConfig{Seed: 3})
	docA := htmlx.Parse(string(a.HTML()))
	docB := htmlx.Parse(string(b.HTML()))
	// Section text identical across versions (same seed).
	if docA.ByID("sec-1").Find(func(n *htmlx.Node) bool { return n.Tag == "ul" }).Text() !=
		docB.ByID("sec-1").Find(func(n *htmlx.Node) bool { return n.Tag == "ul" }).Text() {
		t.Error("A and B section text should match")
	}
	variantBtns, err := cssx.Query(docB, ".expand-btn-variant")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(variantBtns) != 9 {
		t.Fatalf("variant buttons = %d, want 9", len(variantBtns))
	}
	// The variant carries the symbol and larger font.
	if !strings.Contains(variantBtns[0].Text(), "Expand") {
		t.Error("variant button should still read Expand")
	}
	cssB, _ := b.Get("css/group.css")
	sheet := cssx.ParseStylesheet(string(cssB))
	style := sheet.ComputedStyle(variantBtns[0])
	px, ok := cssx.ParsePixels(style["font-size"], 16)
	if !ok || px != 18 {
		t.Errorf("variant font-size = %v px (ok=%v), want 18 (1.5x of 12)", px, ok)
	}
	// Original A: 12px buttons.
	cssA, _ := a.Get("css/group.css")
	sheetA := cssx.ParseStylesheet(string(cssA))
	btnA, err := cssx.Query(docA, ".expand-btn")
	if err != nil {
		t.Fatal(err)
	}
	styleA := sheetA.ComputedStyle(btnA[0])
	pxA, _ := cssx.ParsePixels(styleA["font-size"], 16)
	if pxA != 12 {
		t.Errorf("original font-size = %v px, want 12", pxA)
	}
}

func TestGroupPageVariantPlacement(t *testing.T) {
	_, b := GroupPageVersions(GroupConfig{Seed: 3})
	doc := htmlx.Parse(string(b.HTML()))
	sec := doc.ByID("sec-1")
	// In the variant the button is a direct child of the section (inline,
	// close to the text), not wrapped in a right-aligned .expand-row.
	rows, err := cssx.Query(sec, ".expand-row")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Error("variant should not use the right-aligned expand-row wrapper")
	}
}

func TestSitePutGetClean(t *testing.T) {
	s := NewSite("index.html")
	s.Put("./css/style.css", []byte("x"))
	if _, ok := s.Get("css/style.css"); !ok {
		t.Error("path cleaning failed on Put")
	}
	if _, ok := s.Get("./css/style.css"); !ok {
		t.Error("path cleaning failed on Get")
	}
	if _, ok := s.Get("missing.css"); ok {
		t.Error("missing file should not be found")
	}
}

func TestSiteClone(t *testing.T) {
	s := NewSite("index.html")
	s.Put("index.html", []byte("orig"))
	cp := s.Clone()
	cp.Put("index.html", []byte("changed"))
	if string(s.HTML()) != "orig" {
		t.Error("clone mutation affected original")
	}
}

func TestSiteValidate(t *testing.T) {
	s := NewSite("")
	if err := s.Validate(); err == nil {
		t.Error("empty main file name should fail")
	}
	s = NewSite("index.html")
	if err := s.Validate(); err == nil {
		t.Error("missing main file should fail")
	}
	s.Put("index.html", nil)
	if err := s.Validate(); err == nil {
		t.Error("empty main file should fail")
	}
}

func TestProseDeterminism(t *testing.T) {
	a := newProse(1).Paragraph(4)
	b := newProse(1).Paragraph(4)
	if a != b {
		t.Error("prose must be deterministic per seed")
	}
	if len(strings.Fields(a)) < 20 {
		t.Errorf("paragraph too short: %q", a)
	}
	if !strings.HasSuffix(strings.TrimSpace(a), ".") {
		t.Error("sentences should end with periods")
	}
}

func TestGroupPageCustomSections(t *testing.T) {
	site := GroupPage(GroupConfig{Seed: 1, Sections: []string{"Only"}, ItemsPerSection: 2, VisibleItems: 2})
	doc := htmlx.Parse(string(site.HTML()))
	secs, err := cssx.Query(doc, ".section")
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 1 {
		t.Fatalf("sections = %d, want 1", len(secs))
	}
	// No hidden items -> no expand button.
	btns, err := cssx.Query(doc, ".expand-btn")
	if err != nil {
		t.Fatal(err)
	}
	if len(btns) != 0 {
		t.Errorf("expand buttons = %d, want 0 when nothing is hidden", len(btns))
	}
}
