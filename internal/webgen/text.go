package webgen

import (
	"math/rand"
	"strings"
)

// prose is a deterministic text generator producing wiki-flavoured filler.
// It exists so generated articles are text-heavy (like the paper's
// Wikipedia test page) without shipping real corpus data.
type prose struct {
	rng *rand.Rand
}

// Vocabulary skewed toward natural-history articles, echoing the paper's
// "rock hyrax" test page.
var (
	proseNouns = []string{
		"hyrax", "colony", "habitat", "savanna", "outcrop", "burrow",
		"species", "mammal", "diet", "predator", "territory", "climate",
		"vegetation", "population", "behavior", "study", "region",
		"observation", "researcher", "rock", "crevice", "herbivore",
		"gestation", "juvenile", "vocalization", "plateau",
	}
	proseVerbs = []string{
		"inhabits", "forages", "observes", "describes", "suggests",
		"indicates", "occupies", "exhibits", "maintains", "produces",
		"resembles", "documents", "reports", "shows", "retains",
	}
	proseAdjectives = []string{
		"small", "terrestrial", "social", "diurnal", "notable", "common",
		"widespread", "distinctive", "rocky", "arid", "dense", "seasonal",
		"typical", "related", "early", "recent",
	}
	proseConnectors = []string{
		"however", "in addition", "by contrast", "consequently",
		"furthermore", "in most regions", "according to field studies",
		"during the dry season",
	}
)

func newProse(seed int64) *prose {
	return &prose{rng: rand.New(rand.NewSource(seed))}
}

func (p *prose) pick(words []string) string {
	return words[p.rng.Intn(len(words))]
}

// Sentence produces one sentence of 8-18 words.
func (p *prose) Sentence() string {
	var b strings.Builder
	clauses := 1 + p.rng.Intn(2)
	for c := 0; c < clauses; c++ {
		if c > 0 {
			b.WriteString(", ")
			b.WriteString(p.pick(proseConnectors))
			b.WriteString(" ")
		}
		b.WriteString("the ")
		b.WriteString(p.pick(proseAdjectives))
		b.WriteString(" ")
		b.WriteString(p.pick(proseNouns))
		b.WriteString(" ")
		b.WriteString(p.pick(proseVerbs))
		b.WriteString(" ")
		if p.rng.Intn(2) == 0 {
			b.WriteString(p.pick(proseAdjectives))
			b.WriteString(" ")
		}
		b.WriteString(p.pick(proseNouns))
		if p.rng.Intn(3) == 0 {
			b.WriteString(" near the ")
			b.WriteString(p.pick(proseNouns))
		}
	}
	s := b.String()
	return strings.ToUpper(s[:1]) + s[1:] + "."
}

// Paragraph produces n sentences joined with spaces.
func (p *prose) Paragraph(sentences int) string {
	parts := make([]string, sentences)
	for i := range parts {
		parts[i] = p.Sentence()
	}
	return strings.Join(parts, " ")
}

// Title produces a 2-4 word capitalized heading.
func (p *prose) Title() string {
	n := 2 + p.rng.Intn(3)
	words := make([]string, n)
	for i := range words {
		var w string
		if i%2 == 0 {
			w = p.pick(proseAdjectives)
		} else {
			w = p.pick(proseNouns)
		}
		words[i] = strings.ToUpper(w[:1]) + w[1:]
	}
	return strings.Join(words, " ")
}
