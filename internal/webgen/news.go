package webgen

import (
	"fmt"
	"strings"
)

// NewsConfig parameterizes the news-landing-page generator — a third
// workload shape: image-heavy above the fold (hero + card grid) with a
// long headline river below. Useful for page-load studies where images,
// not text, dominate the visual experience (the inverse of the wiki
// article).
type NewsConfig struct {
	// SiteName heads the masthead. Defaults to "The Daily Miscellany".
	SiteName string
	// Cards is the number of story cards in the top grid. Defaults to 6.
	Cards int
	// Headlines is the number of text-only river entries. Defaults to 20.
	Headlines int
	// HeroBytes / CardBytes size the generated images. Defaults 96 KiB /
	// 20 KiB — images dominate the payload, as on real news fronts.
	HeroBytes int
	CardBytes int
	// Seed drives deterministic prose generation.
	Seed int64
}

func (c NewsConfig) withDefaults() NewsConfig {
	if c.SiteName == "" {
		c.SiteName = "The Daily Miscellany"
	}
	if c.Cards == 0 {
		c.Cards = 6
	}
	if c.Headlines == 0 {
		c.Headlines = 20
	}
	if c.HeroBytes == 0 {
		c.HeroBytes = 96 << 10
	}
	if c.CardBytes == 0 {
		c.CardBytes = 20 << 10
	}
	return c
}

// NewsPage generates the news landing page as a saved-webpage folder.
// Stable hooks for load schedules:
//
//	#masthead — site chrome
//	#hero     — the lead story with its large image
//	#cards    — the story-card grid (one image per card)
//	#river    — the text-only headline list
func NewsPage(cfg NewsConfig) *Site {
	cfg = cfg.withDefaults()
	gen := newProse(cfg.Seed)
	site := NewSite("index.html")

	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "<meta charset=\"utf-8\">\n<title>%s</title>\n", cfg.SiteName)
	b.WriteString("<link rel=\"stylesheet\" href=\"css/news.css\">\n")
	b.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&b, "<header id=\"masthead\"><h1>%s</h1></header>\n", cfg.SiteName)

	// Hero story.
	b.WriteString("<section id=\"hero\">\n")
	b.WriteString("<img src=\"img/hero.png\" alt=\"lead story\" width=\"960\" height=\"420\">\n")
	fmt.Fprintf(&b, "<h2>%s</h2>\n<p class=\"standfirst\">%s</p>\n", gen.Title(), gen.Paragraph(2))
	b.WriteString("</section>\n")

	// Card grid.
	b.WriteString("<section id=\"cards\">\n")
	for i := 1; i <= cfg.Cards; i++ {
		fmt.Fprintf(&b, "<article class=\"card\" id=\"card-%d\">\n", i)
		fmt.Fprintf(&b, "<img src=\"img/card-%d.png\" alt=\"story %d\" width=\"300\" height=\"180\">\n", i, i)
		fmt.Fprintf(&b, "<h3>%s</h3>\n<p>%s</p>\n", gen.Title(), gen.Sentence())
		b.WriteString("</article>\n")
	}
	b.WriteString("</section>\n")

	// Headline river.
	b.WriteString("<section id=\"river\">\n<h2>More stories</h2>\n<ul>\n")
	for i := 0; i < cfg.Headlines; i++ {
		fmt.Fprintf(&b, "<li><a href=\"#story-%d\">%s</a></li>\n", i, gen.Sentence())
	}
	b.WriteString("</ul>\n</section>\n</body>\n</html>\n")

	site.Put("index.html", []byte(b.String()))
	site.Put("css/news.css", []byte(newsCSS))
	site.Put("img/hero.png", fakePNG(21, cfg.HeroBytes))
	for i := 1; i <= cfg.Cards; i++ {
		site.Put(fmt.Sprintf("img/card-%d.png", i), fakePNG(byte(21+i), cfg.CardBytes))
	}
	return site
}

const newsCSS = `body { margin: 0; font-family: Georgia, serif; color: #111; }
#masthead { border-bottom: 3px solid #111; padding: 12px 24px; }
#masthead h1 { margin: 0; font-size: 30px; }
#hero { max-width: 960px; margin: 0 auto; padding: 12px; }
#hero h2 { font-size: 26px; }
.standfirst { font-size: 16px; color: #333; }
#cards { display: flex; max-width: 960px; margin: 0 auto; padding: 12px; }
.card { flex: 1; padding: 6px; }
.card h3 { font-size: 16px; }
.card p { font-size: 13px; color: #444; }
#river { max-width: 960px; margin: 0 auto; padding: 12px; font-size: 14px; }
#river li { margin-bottom: 6px; }
`
