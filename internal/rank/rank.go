// Package rank turns pairwise side-by-side comparisons into rankings.
//
// With N webpage versions Kaleidoscope generates C(N,2) integrated pages, so
// each participant produces a full round-robin of pairwise outcomes; a
// Copeland scoring converts those into the participant's ranking (the
// per-rank distributions of the paper's Fig. 4). The paper also mentions
// using sorting algorithms to reduce the number of comparisons when only
// one comparison question is asked — insertion- and merge-sort comparators
// are implemented here, with comparison counting, so the ablation bench can
// quantify the saving and the agreement cost.
package rank

import (
	"errors"
	"fmt"
	"sort"
)

// Outcome is the result of comparing version a to version b.
type Outcome int

// Comparison outcomes. Enums start at 1 so the zero value is invalid.
const (
	OutcomeA Outcome = iota + 1 // a preferred
	OutcomeB                    // b preferred
	OutcomeTie
)

// Comparator reports the participant's preference between versions a and b
// (indices into the version list). Implementations are typically backed by
// a perception model or by recorded responses.
type Comparator func(a, b int) Outcome

// Result is a produced ranking.
type Result struct {
	// Order lists version indices from best (rank "A") to worst.
	Order []int
	// Comparisons is how many comparator calls were spent.
	Comparisons int
}

// RankOf returns the rank position (0 = best) of version v, or -1.
func (r *Result) RankOf(v int) int {
	for i, idx := range r.Order {
		if idx == v {
			return i
		}
	}
	return -1
}

// ErrTooFewVersions is returned for n < 2.
var ErrTooFewVersions = errors.New("rank: need at least two versions")

// FullRoundRobin performs all C(N,2) comparisons and ranks versions by
// Copeland score (wins minus losses; ties contribute nothing). Score ties
// break by lower index, keeping results deterministic.
func FullRoundRobin(n int, cmp Comparator) (*Result, error) {
	if n < 2 {
		return nil, ErrTooFewVersions
	}
	if cmp == nil {
		return nil, errors.New("rank: nil comparator")
	}
	scores := make([]int, n)
	res := &Result{}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			res.Comparisons++
			switch cmp(a, b) {
			case OutcomeA:
				scores[a]++
				scores[b]--
			case OutcomeB:
				scores[b]++
				scores[a]--
			case OutcomeTie:
				// no score movement
			default:
				return nil, fmt.Errorf("rank: comparator returned invalid outcome for (%d,%d)", a, b)
			}
		}
	}
	res.Order = orderByScore(scores)
	return res, nil
}

// orderByScore returns indices sorted by descending score, ascending index
// on ties.
func orderByScore(scores []int) []int {
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return scores[order[i]] > scores[order[j]]
	})
	return order
}

// InsertionSortRank ranks versions with binary-insertion ordering, spending
// far fewer comparisons than a round-robin (O(n log n) vs O(n^2)). Ties
// from the comparator are treated as "keep earlier position".
func InsertionSortRank(n int, cmp Comparator) (*Result, error) {
	if n < 2 {
		return nil, ErrTooFewVersions
	}
	if cmp == nil {
		return nil, errors.New("rank: nil comparator")
	}
	res := &Result{}
	order := []int{0}
	for v := 1; v < n; v++ {
		// Binary search for v's position among the already-ordered items.
		lo, hi := 0, len(order)
		for lo < hi {
			mid := (lo + hi) / 2
			res.Comparisons++
			switch cmp(v, order[mid]) {
			case OutcomeA: // v preferred over order[mid]: v goes earlier
				hi = mid
			case OutcomeB:
				lo = mid + 1
			case OutcomeTie:
				lo = mid + 1
				hi = lo
			default:
				return nil, fmt.Errorf("rank: comparator returned invalid outcome for (%d,%d)", v, order[mid])
			}
		}
		order = append(order, 0)
		copy(order[lo+1:], order[lo:])
		order[lo] = v
	}
	res.Order = order
	return res, nil
}

// MergeSortRank ranks versions with a stable merge sort over the
// comparator.
func MergeSortRank(n int, cmp Comparator) (*Result, error) {
	if n < 2 {
		return nil, ErrTooFewVersions
	}
	if cmp == nil {
		return nil, errors.New("rank: nil comparator")
	}
	res := &Result{}
	var invalid error
	var merge func(items []int) []int
	merge = func(items []int) []int {
		if len(items) <= 1 || invalid != nil {
			return items
		}
		mid := len(items) / 2
		left := merge(items[:mid])
		right := merge(items[mid:])
		out := make([]int, 0, len(items))
		i, j := 0, 0
		for i < len(left) && j < len(right) {
			res.Comparisons++
			switch cmp(left[i], right[j]) {
			case OutcomeA, OutcomeTie: // stability: left wins ties
				out = append(out, left[i])
				i++
			case OutcomeB:
				out = append(out, right[j])
				j++
			default:
				if invalid == nil {
					invalid = fmt.Errorf("rank: comparator returned invalid outcome for (%d,%d)", left[i], right[j])
				}
				return items
			}
		}
		out = append(out, left[i:]...)
		out = append(out, right[j:]...)
		return out
	}
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	res.Order = merge(items)
	if invalid != nil {
		return nil, invalid
	}
	return res, nil
}

// RankDistribution aggregates many participants' rankings into the paper's
// Fig. 4 shape: dist[rank][version] is the fraction of participants who
// placed `version` at `rank` (rank 0 = "A" = best). Every ranking must be a
// permutation of 0..n-1.
func RankDistribution(rankings [][]int, n int) ([][]float64, error) {
	if n < 1 {
		return nil, errors.New("rank: n must be positive")
	}
	if len(rankings) == 0 {
		return nil, errors.New("rank: no rankings")
	}
	counts := make([][]int, n)
	for i := range counts {
		counts[i] = make([]int, n)
	}
	for _, r := range rankings {
		if len(r) != n {
			return nil, fmt.Errorf("rank: ranking length %d, want %d", len(r), n)
		}
		seen := make([]bool, n)
		for pos, v := range r {
			if v < 0 || v >= n || seen[v] {
				return nil, fmt.Errorf("rank: ranking %v is not a permutation", r)
			}
			seen[v] = true
			counts[pos][v]++
		}
	}
	dist := make([][]float64, n)
	total := float64(len(rankings))
	for pos := range counts {
		dist[pos] = make([]float64, n)
		for v, c := range counts[pos] {
			dist[pos][v] = float64(c) / total
		}
	}
	return dist, nil
}

// BordaScores converts rankings into per-version Borda scores: a version at
// rank position p among n earns n-1-p points, summed over participants.
// Higher is better.
func BordaScores(rankings [][]int, n int) ([]float64, error) {
	if len(rankings) == 0 {
		return nil, errors.New("rank: no rankings")
	}
	scores := make([]float64, n)
	for _, r := range rankings {
		if len(r) != n {
			return nil, fmt.Errorf("rank: ranking length %d, want %d", len(r), n)
		}
		for pos, v := range r {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("rank: version %d out of range", v)
			}
			scores[v] += float64(n - 1 - pos)
		}
	}
	return scores, nil
}

// PairCount returns C(n,2).
func PairCount(n int) int { return n * (n - 1) / 2 }
