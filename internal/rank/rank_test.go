package rank

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// truthComparator prefers lower "distance to ideal" per a fixed utility
// slice: version with higher utility wins.
func truthComparator(utils []float64) Comparator {
	return func(a, b int) Outcome {
		switch {
		case utils[a] > utils[b]:
			return OutcomeA
		case utils[b] > utils[a]:
			return OutcomeB
		default:
			return OutcomeTie
		}
	}
}

func TestFullRoundRobin(t *testing.T) {
	utils := []float64{0.2, 0.9, 0.5, 0.7, 0.1}
	res, err := FullRoundRobin(5, truthComparator(utils))
	if err != nil {
		t.Fatalf("FullRoundRobin: %v", err)
	}
	want := []int{1, 3, 2, 0, 4}
	for i := range want {
		if res.Order[i] != want[i] {
			t.Fatalf("order = %v, want %v", res.Order, want)
		}
	}
	if res.Comparisons != 10 {
		t.Errorf("comparisons = %d, want C(5,2)=10", res.Comparisons)
	}
	if res.RankOf(1) != 0 || res.RankOf(4) != 4 {
		t.Errorf("RankOf wrong: best=%d worst=%d", res.RankOf(1), res.RankOf(4))
	}
	if res.RankOf(99) != -1 {
		t.Error("RankOf(unknown) should be -1")
	}
}

func TestFullRoundRobinErrors(t *testing.T) {
	if _, err := FullRoundRobin(1, truthComparator([]float64{1})); err != ErrTooFewVersions {
		t.Errorf("err = %v", err)
	}
	if _, err := FullRoundRobin(3, nil); err == nil {
		t.Error("nil comparator should fail")
	}
	bad := func(a, b int) Outcome { return Outcome(0) }
	if _, err := FullRoundRobin(3, bad); err == nil {
		t.Error("invalid outcome should fail")
	}
}

func TestInsertionSortRank(t *testing.T) {
	utils := []float64{0.2, 0.9, 0.5, 0.7, 0.1}
	res, err := InsertionSortRank(5, truthComparator(utils))
	if err != nil {
		t.Fatalf("InsertionSortRank: %v", err)
	}
	want := []int{1, 3, 2, 0, 4}
	for i := range want {
		if res.Order[i] != want[i] {
			t.Fatalf("order = %v, want %v", res.Order, want)
		}
	}
	if res.Comparisons >= 10 {
		t.Errorf("insertion sort used %d comparisons, should beat round-robin's 10", res.Comparisons)
	}
}

func TestMergeSortRank(t *testing.T) {
	utils := []float64{0.2, 0.9, 0.5, 0.7, 0.1}
	res, err := MergeSortRank(5, truthComparator(utils))
	if err != nil {
		t.Fatalf("MergeSortRank: %v", err)
	}
	want := []int{1, 3, 2, 0, 4}
	for i := range want {
		if res.Order[i] != want[i] {
			t.Fatalf("order = %v, want %v", res.Order, want)
		}
	}
	if res.Comparisons >= 10 {
		t.Errorf("merge sort used %d comparisons, should beat 10", res.Comparisons)
	}
}

func TestSortRankErrors(t *testing.T) {
	if _, err := InsertionSortRank(1, nil); err != ErrTooFewVersions {
		t.Errorf("err = %v", err)
	}
	if _, err := InsertionSortRank(3, nil); err == nil {
		t.Error("nil comparator")
	}
	if _, err := MergeSortRank(1, nil); err != ErrTooFewVersions {
		t.Errorf("err = %v", err)
	}
	if _, err := MergeSortRank(3, nil); err == nil {
		t.Error("nil comparator")
	}
	bad := func(a, b int) Outcome { return Outcome(99) }
	if _, err := InsertionSortRank(3, bad); err == nil {
		t.Error("invalid outcome should fail (insertion)")
	}
	if _, err := MergeSortRank(3, bad); err == nil {
		t.Error("invalid outcome should fail (merge)")
	}
}

// TestSortingAgreesWithRoundRobinProperty: with a consistent (transitive)
// comparator and distinct utilities, all three methods produce the same
// ranking; the sorts use fewer comparisons for n >= 4.
func TestSortingAgreesWithRoundRobinProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%8) + 4 // 4..11
		rng := rand.New(rand.NewSource(seed))
		utils := make([]float64, n)
		for i := range utils {
			utils[i] = float64(i) + 0.5
		}
		rng.Shuffle(n, func(i, j int) { utils[i], utils[j] = utils[j], utils[i] })
		cmp := truthComparator(utils)
		rr, err1 := FullRoundRobin(n, cmp)
		ins, err2 := InsertionSortRank(n, cmp)
		mrg, err3 := MergeSortRank(n, cmp)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for i := range rr.Order {
			if rr.Order[i] != ins.Order[i] || rr.Order[i] != mrg.Order[i] {
				return false
			}
		}
		return ins.Comparisons < rr.Comparisons && mrg.Comparisons < rr.Comparisons
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTieHandling(t *testing.T) {
	allTie := func(a, b int) Outcome { return OutcomeTie }
	rr, err := FullRoundRobin(4, allTie)
	if err != nil {
		t.Fatal(err)
	}
	// All tied: deterministic index order.
	for i, v := range rr.Order {
		if v != i {
			t.Errorf("tied order = %v, want identity", rr.Order)
			break
		}
	}
	ins, err := InsertionSortRank(4, allTie)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins.Order) != 4 {
		t.Errorf("insertion tied order = %v", ins.Order)
	}
	mrg, err := MergeSortRank(4, allTie)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range mrg.Order {
		if v != i {
			t.Errorf("merge tied order = %v, want identity (stability)", mrg.Order)
			break
		}
	}
}

func TestRankDistribution(t *testing.T) {
	rankings := [][]int{
		{1, 0, 2}, // participant 1: version 1 best
		{1, 2, 0},
		{0, 1, 2},
		{1, 0, 2},
	}
	dist, err := RankDistribution(rankings, 3)
	if err != nil {
		t.Fatalf("RankDistribution: %v", err)
	}
	// Rank 0 ("A"): version 1 three times, version 0 once.
	if dist[0][1] != 0.75 || dist[0][0] != 0.25 || dist[0][2] != 0 {
		t.Errorf("rank A dist = %v", dist[0])
	}
	// Each rank row sums to 1.
	for pos, row := range dist {
		var sum float64
		for _, p := range row {
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("rank %d row sums to %v", pos, sum)
		}
	}
}

func TestRankDistributionErrors(t *testing.T) {
	if _, err := RankDistribution(nil, 3); err == nil {
		t.Error("no rankings should fail")
	}
	if _, err := RankDistribution([][]int{{0, 1}}, 3); err == nil {
		t.Error("wrong length should fail")
	}
	if _, err := RankDistribution([][]int{{0, 0, 1}}, 3); err == nil {
		t.Error("non-permutation should fail")
	}
	if _, err := RankDistribution([][]int{{0, 1, 5}}, 3); err == nil {
		t.Error("out-of-range should fail")
	}
	if _, err := RankDistribution([][]int{{0}}, 0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestBordaScores(t *testing.T) {
	rankings := [][]int{
		{1, 0, 2},
		{1, 2, 0},
	}
	scores, err := BordaScores(rankings, 3)
	if err != nil {
		t.Fatalf("BordaScores: %v", err)
	}
	// Version 1: rank0 twice = 2+2 = 4. Version 0: rank1 + rank2 = 1+0 = 1.
	// Version 2: rank2 + rank1 = 0+1 = 1.
	if scores[1] != 4 || scores[0] != 1 || scores[2] != 1 {
		t.Errorf("scores = %v", scores)
	}
	if _, err := BordaScores(nil, 3); err == nil {
		t.Error("no rankings should fail")
	}
	if _, err := BordaScores([][]int{{0}}, 3); err == nil {
		t.Error("bad length should fail")
	}
	if _, err := BordaScores([][]int{{0, 1, 9}}, 3); err == nil {
		t.Error("out of range should fail")
	}
}

func TestPairCount(t *testing.T) {
	if PairCount(5) != 10 || PairCount(2) != 1 {
		t.Error("PairCount wrong")
	}
}

// TestComparisonCountsScale documents the asymptotic gap the paper's
// sorting optimization exploits.
func TestComparisonCountsScale(t *testing.T) {
	utils := make([]float64, 20)
	for i := range utils {
		utils[i] = float64(i)
	}
	cmp := truthComparator(utils)
	rr, _ := FullRoundRobin(20, cmp)
	mrg, _ := MergeSortRank(20, cmp)
	if rr.Comparisons != 190 {
		t.Errorf("round-robin = %d, want 190", rr.Comparisons)
	}
	if mrg.Comparisons > 90 {
		t.Errorf("merge sort = %d comparisons for n=20, want <= ~88", mrg.Comparisons)
	}
}
