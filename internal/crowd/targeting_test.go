package crowd

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestTargetingZeroMatchesEverything(t *testing.T) {
	var nilTarget *Targeting
	if !nilTarget.Matches(Demographics{Country: "US"}) {
		t.Error("nil targeting should match anyone")
	}
	if !nilTarget.IsZero() {
		t.Error("nil targeting is zero")
	}
	empty := &Targeting{}
	if !empty.IsZero() || !empty.Matches(Demographics{}) {
		t.Error("empty targeting should match anyone")
	}
	if empty.String() != "any demographics" {
		t.Errorf("String = %q", empty.String())
	}
}

func TestTargetingMatches(t *testing.T) {
	target := &Targeting{
		Countries:      []string{"US", "gb"},
		AgeBands:       []string{"25-34"},
		MinTechAbility: 3,
	}
	tests := []struct {
		name string
		demo Demographics
		want bool
	}{
		{"full match", Demographics{Country: "US", AgeBand: "25-34", TechAbility: 4}, true},
		{"case-insensitive country", Demographics{Country: "GB", AgeBand: "25-34", TechAbility: 3}, true},
		{"wrong country", Demographics{Country: "DE", AgeBand: "25-34", TechAbility: 5}, false},
		{"wrong age", Demographics{Country: "US", AgeBand: "55+", TechAbility: 5}, false},
		{"low tech", Demographics{Country: "US", AgeBand: "25-34", TechAbility: 2}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := target.Matches(tt.demo); got != tt.want {
				t.Errorf("Matches(%+v) = %v, want %v", tt.demo, got, tt.want)
			}
		})
	}
	gendered := &Targeting{Genders: []string{"female"}}
	if gendered.Matches(Demographics{Gender: "male"}) {
		t.Error("gender filter failed")
	}
	if !gendered.Matches(Demographics{Gender: "Female"}) {
		t.Error("gender filter should be case-insensitive")
	}
}

func TestTargetingValidate(t *testing.T) {
	if err := (&Targeting{MinTechAbility: 9}).Validate(); err == nil {
		t.Error("out-of-range tech ability should fail")
	}
	if err := (&Targeting{MinTechAbility: 5}).Validate(); err != nil {
		t.Errorf("valid targeting: %v", err)
	}
	var nilTarget *Targeting
	if err := nilTarget.Validate(); err != nil {
		t.Errorf("nil targeting: %v", err)
	}
}

func TestTargetingString(t *testing.T) {
	target := &Targeting{Countries: []string{"US"}, MinTechAbility: 2}
	s := target.String()
	if !strings.Contains(s, "US") || !strings.Contains(s, ">= 2") {
		t.Errorf("String = %q", s)
	}
}

func TestPlatformTargetedRecruitment(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	pop, err := TrustedCrowd(400, rng)
	if err != nil {
		t.Fatal(err)
	}
	platform, err := NewPlatform(pop, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	target := &Targeting{Countries: []string{"US", "GB"}}
	job := Job{
		TestID: "targeted", RequiredWorkers: 20, PaymentUSD: 0.1,
		TrustedOnly: true, Target: target,
	}
	res, err := platform.Post(job, rng)
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	for _, rec := range res.Recruits {
		if !target.Matches(rec.Worker.Demo) {
			t.Errorf("recruited %s from %s outside targeting", rec.Worker.ID, rec.Worker.Demo.Country)
		}
	}
	// An unsatisfiable targeting fails recruitment.
	job.Target = &Targeting{Countries: []string{"ZZ"}}
	if _, err := platform.Post(job, rng); err == nil {
		t.Error("unsatisfiable targeting should fail")
	}
	// Invalid targeting fails validation.
	job.Target = &Targeting{MinTechAbility: 42}
	if _, err := platform.Post(job, rng); err == nil {
		t.Error("invalid targeting should fail")
	}
}
