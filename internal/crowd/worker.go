// Package crowd simulates the human side of Kaleidoscope: a crowdsourcing
// platform in the role of FigureEight, a worker population with trust
// tiers, per-worker perception models (font-size readability, visual
// salience, perceived page readiness), and behavioural telemetry (tabs,
// active-tab switches, time on task). The paper's evaluation is entirely
// statistical over worker responses; this package is the synthetic stand-in
// for its hundreds of recruited participants, calibrated so trusted workers
// reproduce the in-lab distributions (Fig. 4c) and the unfiltered crowd
// reproduces the raw-crowd distortions (Fig. 4a, Fig. 5).
package crowd

import (
	"fmt"
	"math"
	"math/rand"

	"kaleidoscope/internal/questionnaire"
)

// Archetype classifies a worker's engagement style.
type Archetype int

// Worker archetypes. Enums start at 1 so the zero value is invalid.
const (
	// Diligent workers read both versions carefully; low noise.
	Diligent Archetype = iota + 1
	// Casual workers skim; moderate noise, quicker answers.
	Casual
	// Hasty workers click through nearly at random to collect the fee —
	// the population quality control exists to remove.
	Hasty
	// Distracted workers answer reasonably but with long idle gaps.
	Distracted
	// Surveyor workers treat the questionnaire itself as the task
	// (TheFragebogen-style questionnaire-heavy flows): long dwell on the
	// question pages, frequent free-text comments, careful answers.
	Surveyor
	// TaskDriven workers are goal-directed usability testers (Liu et
	// al.): fast, navigation-heavy, and quick to abandon a session once
	// their goal is met — the churn a campaign must survive.
	TaskDriven
)

// String returns the archetype name.
func (a Archetype) String() string {
	switch a {
	case Diligent:
		return "diligent"
	case Casual:
		return "casual"
	case Hasty:
		return "hasty"
	case Distracted:
		return "distracted"
	case Surveyor:
		return "surveyor"
	case TaskDriven:
		return "task-driven"
	default:
		return "invalid"
	}
}

// Demographics is the coarse-grained information the extension collects
// before a test.
type Demographics struct {
	Gender  string `json:"gender"`
	AgeBand string `json:"age_band"`
	Country string `json:"country"`
	// TechAbility is self-assessed, 1 (novice) to 5 (expert).
	TechAbility int `json:"tech_ability"`
}

// Worker is one simulated participant.
type Worker struct {
	ID   string
	Demo Demographics
	// Trusted marks FigureEight's "historically trustworthy" tier.
	Trusted   bool
	Archetype Archetype

	// Perception parameters.

	// PreferredFontPt is the font size this worker reads best at. CHI
	// studies place the population mode at 12-14pt.
	PreferredFontPt float64
	// FontTolerance is the width of the preference curve in points.
	FontTolerance float64
	// NoiseSigma perturbs every utility comparison.
	NoiseSigma float64
	// TieWidth is the indifference band: utility differences smaller than
	// this read as "Same".
	TieWidth float64
	// SpamRate is the probability of answering uniformly at random.
	SpamRate float64
	// TextFocus in [0,1] is how strongly the worker equates "page ready"
	// with "main text visible" rather than "chrome/navigation visible".
	// The paper's Fig. 9 comments show both reading styles exist; the
	// population skews toward text (the paper's conclusion).
	TextFocus float64

	// Behaviour parameters (per side-by-side comparison).

	// MedianThinkMillis is the median time spent on one comparison.
	MedianThinkMillis float64
	// ThinkSigma is the lognormal shape of think times.
	ThinkSigma float64
	// RevisitRate is the per-comparison probability of reopening the page
	// in an extra tab.
	RevisitRate float64
	// SwitchRate scales how often the worker flips the active tab.
	SwitchRate float64

	// Churn and questionnaire-engagement parameters (campaign workloads).

	// AbandonRate is the per-page probability of walking away mid-session.
	// Abandoning before the first page means the worker vanishes without
	// uploading; later it produces a partial session upload.
	AbandonRate float64
	// CommentRate is the probability of leaving free-text feedback on an
	// answered question.
	CommentRate float64
	// QuestionDwellMillis is extra median dwell spent on the questionnaire
	// page per question, on top of the page comparison itself.
	QuestionDwellMillis float64
}

// FontUtility returns the worker's reading utility for a font size, a
// Gaussian bump centred on their preference.
func (w *Worker) FontUtility(pt float64) float64 {
	d := (pt - w.PreferredFontPt) / w.FontTolerance
	return math.Exp(-d * d / 2)
}

// compare maps a (noisy) utility difference to a side-by-side answer where
// the first argument is the left page. Perceptual noise is Weber-like: it
// scales with the stimulus difference (plus a small floor), so identical
// pages are reliably judged "Same" while subtle differences stay hard to
// discriminate — the property the identical-pair control questions rely on.
func (w *Worker) compare(utilLeft, utilRight float64, rng *rand.Rand) questionnaire.Choice {
	return w.compareScaled(utilLeft, utilRight, 1, 1, rng)
}

// compareScaled is compare with noise and indifference-band multipliers,
// used by judgement channels that are inherently harder than style
// comparison (temporal readiness).
func (w *Worker) compareScaled(utilLeft, utilRight, noiseScale, tieScale float64, rng *rand.Rand) questionnaire.Choice {
	if rng.Float64() < w.SpamRate {
		switch rng.Intn(3) {
		case 0:
			return questionnaire.ChoiceLeft
		case 1:
			return questionnaire.ChoiceRight
		default:
			return questionnaire.ChoiceSame
		}
	}
	trueDiff := utilLeft - utilRight
	sigma := w.NoiseSigma * noiseScale * (0.3 + math.Abs(trueDiff))
	diff := trueDiff + rng.NormFloat64()*sigma
	switch {
	case math.Abs(diff) < w.TieWidth*tieScale:
		return questionnaire.ChoiceSame
	case diff > 0:
		return questionnaire.ChoiceLeft
	default:
		return questionnaire.ChoiceRight
	}
}

// CompareFontSize answers "which font size is easier to read?" for a
// left/right pair of font sizes in points.
func (w *Worker) CompareFontSize(leftPt, rightPt float64, rng *rand.Rand) questionnaire.Choice {
	return w.compare(w.FontUtility(leftPt), w.FontUtility(rightPt), rng)
}

// CompareFontSizeSequential is CompareFontSize under sequential (one page
// after the other) presentation: the comparison runs against memory, so
// judgement noise is multiplied by noiseScale. Kaleidoscope's side-by-side
// integrated pages exist to avoid exactly this penalty; the presentation
// ablation quantifies it.
func (w *Worker) CompareFontSizeSequential(leftPt, rightPt, noiseScale float64, rng *rand.Rand) questionnaire.Choice {
	return w.compareScaled(w.FontUtility(leftPt), w.FontUtility(rightPt), noiseScale, 1, rng)
}

// CompareSalience answers appearance/visibility questions ("which version
// of the button is more visible?") given per-version salience scores in
// [0, 1]. Aesthetic judgements are far more subjective than reading a font
// size, so the comparison runs with boosted noise and a wide indifference
// band — the paper's Fig. 8 shows even its decisive question C drew 40%
// "Same" answers.
func (w *Worker) CompareSalience(leftScore, rightScore float64, rng *rand.Rand) questionnaire.Choice {
	const (
		noiseScale = 6
		tieScale   = 4
	)
	return w.compareScaled(leftScore, rightScore, noiseScale, tieScale, rng)
}

// CompareReadiness answers "which version seems ready to use first?" given
// each version's perceived mean ready time in milliseconds (lower feels
// faster). Differences are normalized by a just-noticeable-difference
// constant, and the comparison runs with heavily boosted noise and a wider
// indifference band: unlike style, readiness must be judged from the
// *memory* of two simultaneous loading animations, which the paper's own
// Fig. 9 shows to be a very noisy channel (only 46% of its raw cohort
// picked the objectively text-faster version).
func (w *Worker) CompareReadiness(leftMeanMs, rightMeanMs float64, rng *rand.Rand) questionnaire.Choice {
	const (
		jndMillis  = 2000 // sub-2s centroid shifts are hard to perceive
		noiseScale = 8
		tieScale   = 3
	)
	// Earlier (smaller) ready time = higher utility.
	return w.compareScaled(-leftMeanMs/jndMillis, -rightMeanMs/jndMillis, noiseScale, tieScale, rng)
}

// Behavior is the telemetry the extension records for one side-by-side
// comparison (the paper's Fig. 5 distributions are built from these).
type Behavior struct {
	// TimeOnTaskMillis is how long the comparison took.
	TimeOnTaskMillis int
	// CreatedTabs counts tabs opened for this comparison (>= 1: the
	// integrated page itself; revisits add more).
	CreatedTabs int
	// ActiveTabSwitches counts how often the active tab changed.
	ActiveTabSwitches int
}

// BehaveOnce draws the telemetry for one side-by-side comparison.
func (w *Worker) BehaveOnce(rng *rand.Rand) Behavior {
	// Lognormal think time around the archetype median.
	think := w.MedianThinkMillis * math.Exp(rng.NormFloat64()*w.ThinkSigma)
	if think < 500 {
		think = 500
	}
	tabs := 1
	for rng.Float64() < w.RevisitRate {
		tabs++
		if tabs >= 5 {
			break
		}
	}
	// Active-tab switches scale with tabs and the worker's habit: at least
	// 2 (open + answer), plus wandering.
	switches := 2 + rng.Intn(1+int(w.SwitchRate*4)) + (tabs-1)*2
	return Behavior{
		TimeOnTaskMillis:  int(think),
		CreatedTabs:       tabs,
		ActiveTabSwitches: switches,
	}
}

// archetypeParams instantiates the per-archetype parameter ranges. The
// numbers are the calibration discussed in DESIGN.md: diligent workers
// approximate the paper's in-lab participants; hasty workers produce the
// raw-crowd noise quality control removes.
func applyArchetype(w *Worker, rng *rand.Rand) {
	switch w.Archetype {
	case Diligent:
		w.NoiseSigma = 0.08 + rng.Float64()*0.04
		w.TieWidth = 0.10
		w.SpamRate = 0
		w.MedianThinkMillis = 22_000 + rng.Float64()*8_000
		w.ThinkSigma = 0.45
		w.RevisitRate = 0.25
		w.SwitchRate = 0.6
	case Casual:
		w.NoiseSigma = 0.20 + rng.Float64()*0.10
		w.TieWidth = 0.16
		w.SpamRate = 0.05
		w.MedianThinkMillis = 12_000 + rng.Float64()*6_000
		w.ThinkSigma = 0.55
		w.RevisitRate = 0.15
		w.SwitchRate = 1.0
	case Hasty:
		w.NoiseSigma = 0.6
		w.TieWidth = 0.05
		w.SpamRate = 0.65
		w.MedianThinkMillis = 2_500 + rng.Float64()*1_500
		w.ThinkSigma = 0.35
		w.RevisitRate = 0.02
		w.SwitchRate = 0.3
	case Distracted:
		w.NoiseSigma = 0.15 + rng.Float64()*0.05
		w.TieWidth = 0.12
		w.SpamRate = 0.03
		w.MedianThinkMillis = 55_000 + rng.Float64()*25_000
		w.ThinkSigma = 0.7
		w.RevisitRate = 0.35
		w.SwitchRate = 2.0
	case Surveyor:
		w.NoiseSigma = 0.10 + rng.Float64()*0.05
		w.TieWidth = 0.12
		w.SpamRate = 0.01
		w.MedianThinkMillis = 26_000 + rng.Float64()*10_000
		w.ThinkSigma = 0.5
		w.RevisitRate = 0.2
		w.SwitchRate = 0.8
		w.AbandonRate = 0.02
		w.CommentRate = 0.55 + rng.Float64()*0.25
		w.QuestionDwellMillis = 6_000 + rng.Float64()*4_000
	case TaskDriven:
		w.NoiseSigma = 0.18 + rng.Float64()*0.08
		w.TieWidth = 0.10
		w.SpamRate = 0.02
		w.MedianThinkMillis = 6_000 + rng.Float64()*3_000
		w.ThinkSigma = 0.4
		w.RevisitRate = 0.4
		w.SwitchRate = 2.5
		w.AbandonRate = 0.18 + rng.Float64()*0.12
		w.CommentRate = 0.15
	}
}

// clamp01 clips x into [0, 1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// demographic pools for coarse sampling.
var (
	genderPool  = []string{"female", "male", "nonbinary", "undisclosed"}
	ageBandPool = []string{"18-24", "25-34", "35-44", "45-54", "55+"}
	countryPool = []string{"US", "IN", "BR", "GB", "DE", "PH", "CA", "IT"}
)

// newWorker draws one worker of the given archetype.
func newWorker(id int, arch Archetype, trusted bool, rng *rand.Rand) *Worker {
	w := &Worker{
		ID:        fmt.Sprintf("w-%04d", id),
		Trusted:   trusted,
		Archetype: arch,
		Demo: Demographics{
			Gender:      genderPool[rng.Intn(len(genderPool))],
			AgeBand:     ageBandPool[rng.Intn(len(ageBandPool))],
			Country:     countryPool[rng.Intn(len(countryPool))],
			TechAbility: 1 + rng.Intn(5),
		},
		// CHI-study population: mode at 12-14pt with individual spread;
		// a minority (e.g. dyslexic readers) prefers larger sizes.
		PreferredFontPt: 12.4 + rng.NormFloat64()*1.3,
		FontTolerance:   2.2 + rng.Float64()*0.9,
	}
	if rng.Float64() < 0.08 {
		w.PreferredFontPt += 4 + rng.Float64()*3 // larger-print preference
	}
	if w.PreferredFontPt < 9 {
		w.PreferredFontPt = 9
	}
	w.TextFocus = clamp01(0.62 + rng.NormFloat64()*0.25)
	applyArchetype(w, rng)
	return w
}
