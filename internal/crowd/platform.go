package crowd

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Job is a crowdsourcing task posting — what Kaleidoscope's core server
// sends to the platform.
type Job struct {
	// TestID links the posting to a Kaleidoscope test.
	TestID string
	// Title and Instructions are shown to workers.
	Title        string
	Instructions string
	// RequiredWorkers is how many participants to recruit.
	RequiredWorkers int
	// PaymentUSD is the per-worker reward (the paper pays $0.10-0.11).
	PaymentUSD float64
	// TrustedOnly restricts recruitment to the historically-trustworthy
	// tier.
	TrustedOnly bool
	// Target restricts recruitment to matching demographics (nil = any).
	Target *Targeting
}

// Validate checks the posting.
func (j Job) Validate() error {
	if j.TestID == "" {
		return errors.New("crowd: job missing test id")
	}
	if j.RequiredWorkers <= 0 {
		return errors.New("crowd: job needs at least one worker")
	}
	if j.PaymentUSD < 0 {
		return errors.New("crowd: negative payment")
	}
	if err := j.Target.Validate(); err != nil {
		return err
	}
	return nil
}

// Recruitment is one worker's enrolment.
type Recruitment struct {
	Worker *Worker
	// ArrivedAfter is the delay from job posting to this worker starting.
	ArrivedAfter time.Duration
}

// RecruitmentResult is the outcome of posting a job.
type RecruitmentResult struct {
	Job      Job
	Recruits []Recruitment
	// Completed is when the last required worker arrived.
	Completed time.Duration
	// TotalCostUSD is workers x payment.
	TotalCostUSD float64
}

// Platform simulates a crowdsourcing marketplace: a pool of available
// workers and an arrival process. The default arrival rate is calibrated
// to the paper's observation that ~100 workers arrive in ~12 hours.
type Platform struct {
	// Pool is the worker supply recruitment draws from.
	Pool *Population
	// MeanInterarrival is the average gap between consecutive worker
	// arrivals (exponentially distributed).
	MeanInterarrival time.Duration
}

// DefaultMeanInterarrival reproduces the paper's recruitment speed:
// 100 workers in ~12 h => 7.2 minutes between arrivals.
const DefaultMeanInterarrival = 72 * time.Minute / 10

// NewPlatform wires a platform over a worker pool. A zero mean
// interarrival picks the paper-calibrated default.
func NewPlatform(pool *Population, meanInterarrival time.Duration) (*Platform, error) {
	if pool == nil || len(pool.Workers) == 0 {
		return nil, errors.New("crowd: platform needs a non-empty pool")
	}
	if meanInterarrival < 0 {
		return nil, errors.New("crowd: negative interarrival")
	}
	if meanInterarrival == 0 {
		meanInterarrival = DefaultMeanInterarrival
	}
	return &Platform{Pool: pool, MeanInterarrival: meanInterarrival}, nil
}

// Post recruits workers for the job: eligible pool members arrive in
// random order with exponential interarrival times until the required
// count is reached.
func (p *Platform) Post(job Job, rng *rand.Rand) (*RecruitmentResult, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("crowd: nil random source")
	}
	eligible := make([]*Worker, 0, len(p.Pool.Workers))
	for _, w := range p.Pool.Workers {
		if job.TrustedOnly && !w.Trusted {
			continue
		}
		if !job.Target.Matches(w.Demo) {
			continue
		}
		eligible = append(eligible, w)
	}
	if len(eligible) < job.RequiredWorkers {
		return nil, fmt.Errorf("crowd: pool has %d eligible workers, job needs %d", len(eligible), job.RequiredWorkers)
	}
	rng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })

	res := &RecruitmentResult{Job: job}
	var clock time.Duration
	for i := 0; i < job.RequiredWorkers; i++ {
		gap := time.Duration(rng.ExpFloat64() * float64(p.MeanInterarrival))
		clock += gap
		res.Recruits = append(res.Recruits, Recruitment{Worker: eligible[i], ArrivedAfter: clock})
	}
	res.Completed = clock
	res.TotalCostUSD = float64(job.RequiredWorkers) * job.PaymentUSD
	return res, nil
}

// ArrivalCurve returns the cumulative recruitment curve as (elapsed,
// count) samples — the data behind the paper's Fig. 7(a).
func (r *RecruitmentResult) ArrivalCurve() []ArrivalPoint {
	pts := make([]ArrivalPoint, 0, len(r.Recruits))
	sorted := append([]Recruitment(nil), r.Recruits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ArrivedAfter < sorted[j].ArrivedAfter })
	for i, rec := range sorted {
		pts = append(pts, ArrivalPoint{Elapsed: rec.ArrivedAfter, Count: i + 1})
	}
	return pts
}

// ArrivalPoint is one step of a cumulative recruitment curve.
type ArrivalPoint struct {
	Elapsed time.Duration
	Count   int
}

// CountAt returns how many recruits had arrived by the given elapsed time.
func (r *RecruitmentResult) CountAt(elapsed time.Duration) int {
	n := 0
	for _, rec := range r.Recruits {
		if rec.ArrivedAfter <= elapsed {
			n++
		}
	}
	return n
}
