package crowd

import (
	"math/rand"
	"testing"
	"time"

	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/rank"
)

func TestNewPopulationErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewPopulation(0, InLabMix, true, rng); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := NewPopulation(10, InLabMix, true, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := NewPopulation(10, Mix{Diligent: 0.5}, true, rng); err != ErrBadMix {
		t.Error("non-normalized mix should fail")
	}
}

func TestPopulationComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pop, err := OpenCrowd(1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := pop.CountByArchetype()
	// Rough agreement with OpenCrowdMix at n=1000.
	if counts[Diligent] < 320 || counts[Diligent] > 480 {
		t.Errorf("diligent = %d, want ~400", counts[Diligent])
	}
	if counts[Hasty] < 150 || counts[Hasty] > 300 {
		t.Errorf("hasty = %d, want ~220", counts[Hasty])
	}
	for _, w := range pop.Workers {
		if w.Trusted {
			t.Fatal("open crowd should be untrusted")
		}
	}
	lab, err := InLabPopulation(50, rng)
	if err != nil {
		t.Fatal(err)
	}
	labCounts := lab.CountByArchetype()
	if labCounts[Hasty] != 0 || labCounts[Distracted] != 0 {
		t.Errorf("in-lab should have no hasty/distracted workers: %v", labCounts)
	}
}

func TestWorkerIDsUniqueAndDemographicsSane(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pop, err := TrustedCrowd(200, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, w := range pop.Workers {
		if seen[w.ID] {
			t.Fatalf("duplicate id %s", w.ID)
		}
		seen[w.ID] = true
		if w.Demo.TechAbility < 1 || w.Demo.TechAbility > 5 {
			t.Errorf("tech ability %d out of range", w.Demo.TechAbility)
		}
		if w.Demo.Gender == "" || w.Demo.AgeBand == "" || w.Demo.Country == "" {
			t.Errorf("incomplete demographics: %+v", w.Demo)
		}
		if w.PreferredFontPt < 9 || w.PreferredFontPt > 25 {
			t.Errorf("preferred font %v implausible", w.PreferredFontPt)
		}
		if !w.Trusted {
			t.Error("trusted crowd should be trusted")
		}
	}
}

func TestFontUtilityShape(t *testing.T) {
	w := &Worker{PreferredFontPt: 12, FontTolerance: 3}
	if w.FontUtility(12) != 1 {
		t.Errorf("utility at preference = %v, want 1", w.FontUtility(12))
	}
	if !(w.FontUtility(12) > w.FontUtility(14) && w.FontUtility(14) > w.FontUtility(22)) {
		t.Error("utility should decay with distance")
	}
	if w.FontUtility(10) != w.FontUtility(14) {
		t.Error("utility should be symmetric around the preference")
	}
}

func TestCompareFontSizeDiligent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := newWorker(0, Diligent, true, rng)
	w.PreferredFontPt = 12
	w.FontTolerance = 3
	// 12 vs 22: a diligent worker should almost always pick 12.
	wins := 0
	for i := 0; i < 200; i++ {
		if w.CompareFontSize(12, 22, rng) == questionnaire.ChoiceLeft {
			wins++
		}
	}
	if wins < 180 {
		t.Errorf("diligent 12-vs-22 wins = %d/200, want > 180", wins)
	}
	// Side symmetry: swapping sides flips the answer distribution.
	rights := 0
	for i := 0; i < 200; i++ {
		if w.CompareFontSize(22, 12, rng) == questionnaire.ChoiceRight {
			rights++
		}
	}
	if rights < 180 {
		t.Errorf("mirrored wins = %d/200", rights)
	}
}

func TestCompareFontSizeHastyIsNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := newWorker(0, Hasty, false, rng)
	w.PreferredFontPt = 12
	w.FontTolerance = 3
	wins := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		if w.CompareFontSize(12, 22, rng) == questionnaire.ChoiceLeft {
			wins++
		}
	}
	// Hasty workers are mostly random: nowhere near the diligent 90%+.
	if wins > 240 {
		t.Errorf("hasty worker too accurate: %d/%d", wins, trials)
	}
	if wins < 60 {
		t.Errorf("hasty worker anti-correlated: %d/%d", wins, trials)
	}
}

func TestCompareSameVersionMostlySame(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := newWorker(0, Diligent, true, rng)
	same := 0
	for i := 0; i < 200; i++ {
		if w.CompareFontSize(12, 12, rng) == questionnaire.ChoiceSame {
			same++
		}
	}
	// Identical pages: diligent workers overwhelmingly answer Same — the
	// property control questions rely on.
	if same < 120 {
		t.Errorf("identical-pair Same rate = %d/200, too low", same)
	}
}

func TestCompareReadiness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := newWorker(0, Diligent, true, rng)
	leftWins := 0
	for i := 0; i < 200; i++ {
		// Left feels ready a second earlier.
		if w.CompareReadiness(2600, 3700, rng) == questionnaire.ChoiceLeft {
			leftWins++
		}
	}
	if leftWins < 130 {
		t.Errorf("faster side preferred only %d/200", leftWins)
	}
	// Sub-JND difference (50 ms): Same is the plurality answer.
	same := 0
	for i := 0; i < 200; i++ {
		if w.CompareReadiness(3000, 3050, rng) == questionnaire.ChoiceSame {
			same++
		}
	}
	if same < 95 {
		t.Errorf("sub-JND Same rate = %d/200, want plurality", same)
	}
}

func TestBehaviorByArchetype(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	medianTime := func(arch Archetype) float64 {
		w := newWorker(0, arch, true, rng)
		var times []int
		for i := 0; i < 300; i++ {
			b := w.BehaveOnce(rng)
			if b.TimeOnTaskMillis < 500 {
				t.Fatalf("time below floor: %d", b.TimeOnTaskMillis)
			}
			if b.CreatedTabs < 1 || b.CreatedTabs > 5 {
				t.Fatalf("tabs out of range: %d", b.CreatedTabs)
			}
			if b.ActiveTabSwitches < 2 {
				t.Fatalf("switches below minimum: %d", b.ActiveTabSwitches)
			}
			times = append(times, b.TimeOnTaskMillis)
		}
		var sum float64
		for _, ms := range times {
			sum += float64(ms)
		}
		return sum / float64(len(times))
	}
	hasty := medianTime(Hasty)
	diligent := medianTime(Diligent)
	distracted := medianTime(Distracted)
	if !(hasty < diligent && diligent < distracted) {
		t.Errorf("time ordering wrong: hasty=%v diligent=%v distracted=%v", hasty, diligent, distracted)
	}
}

// TestFontRankingMatchesCHIStudies is the calibration anchor for Fig. 4:
// aggregated trusted-crowd rankings of {10,12,14,18,22}pt put 12pt first
// and 22pt last, matching the paper and the CHI literature it cites.
func TestFontRankingMatchesCHIStudies(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pop, err := TrustedCrowd(300, rng)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []float64{10, 12, 14, 18, 22}
	var rankings [][]int
	for _, w := range pop.Workers {
		cmp := func(a, b int) rank.Outcome {
			switch w.CompareFontSize(sizes[a], sizes[b], rng) {
			case questionnaire.ChoiceLeft:
				return rank.OutcomeA
			case questionnaire.ChoiceRight:
				return rank.OutcomeB
			default:
				return rank.OutcomeTie
			}
		}
		res, err := rank.FullRoundRobin(len(sizes), cmp)
		if err != nil {
			t.Fatal(err)
		}
		rankings = append(rankings, res.Order)
	}
	scores, err := rank.BordaScores(rankings, len(sizes))
	if err != nil {
		t.Fatal(err)
	}
	// 12pt (index 1) best overall; 22pt (index 4) worst.
	best, worst := 0, 0
	for i, s := range scores {
		if s > scores[best] {
			best = i
		}
		if s < scores[worst] {
			worst = i
		}
	}
	if best != 1 {
		t.Errorf("best = %vpt (scores %v), want 12pt", sizes[best], scores)
	}
	if worst != 4 {
		t.Errorf("worst = %vpt (scores %v), want 22pt", sizes[worst], scores)
	}
	// Rank-A distribution: 12pt should lead, as in Fig. 4(b)/(c).
	dist, err := rank.RankDistribution(rankings, len(sizes))
	if err != nil {
		t.Fatal(err)
	}
	for v := range sizes {
		if v == 1 {
			continue
		}
		if dist[0][1] <= dist[0][v] {
			t.Errorf("rank-A share: 12pt %.2f <= %vpt %.2f", dist[0][1], sizes[v], dist[0][v])
		}
	}
}

func TestPlatformRecruitment(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pop, err := TrustedCrowd(300, rng)
	if err != nil {
		t.Fatal(err)
	}
	platform, err := NewPlatform(pop, 0)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{TestID: "t1", Title: "font test", RequiredWorkers: 100, PaymentUSD: 0.11, TrustedOnly: true}
	res, err := platform.Post(job, rng)
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	if len(res.Recruits) != 100 {
		t.Fatalf("recruits = %d", len(res.Recruits))
	}
	// Paper: ~12 hours for 100 workers. Accept a broad band.
	if res.Completed < 6*time.Hour || res.Completed > 24*time.Hour {
		t.Errorf("completed in %v, want ~12h", res.Completed)
	}
	if res.TotalCostUSD < 10.9 || res.TotalCostUSD > 11.1 {
		t.Errorf("cost = %v, want $11", res.TotalCostUSD)
	}
	curve := res.ArrivalCurve()
	if len(curve) != 100 || curve[99].Count != 100 {
		t.Errorf("curve end = %+v", curve[len(curve)-1])
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Elapsed < curve[i-1].Elapsed {
			t.Fatal("curve not sorted")
		}
	}
	if res.CountAt(res.Completed) != 100 {
		t.Error("CountAt(completed) should be 100")
	}
	if res.CountAt(0) != 0 {
		t.Error("CountAt(0) should be 0")
	}
}

func TestPlatformTrustFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pop, err := OpenCrowd(50, rng)
	if err != nil {
		t.Fatal(err)
	}
	platform, err := NewPlatform(pop, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{TestID: "t", RequiredWorkers: 10, PaymentUSD: 0.1, TrustedOnly: true}
	if _, err := platform.Post(job, rng); err == nil {
		t.Error("trusted-only job over untrusted pool should fail")
	}
	job.TrustedOnly = false
	if _, err := platform.Post(job, rng); err != nil {
		t.Errorf("open job should succeed: %v", err)
	}
}

func TestPlatformErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pop, _ := TrustedCrowd(5, rng)
	if _, err := NewPlatform(nil, 0); err == nil {
		t.Error("nil pool should fail")
	}
	if _, err := NewPlatform(pop, -time.Second); err == nil {
		t.Error("negative interarrival should fail")
	}
	platform, _ := NewPlatform(pop, time.Minute)
	if _, err := platform.Post(Job{}, rng); err == nil {
		t.Error("invalid job should fail")
	}
	if _, err := platform.Post(Job{TestID: "t", RequiredWorkers: 100, PaymentUSD: 0.1}, rng); err == nil {
		t.Error("oversubscribed job should fail")
	}
	if _, err := platform.Post(Job{TestID: "t", RequiredWorkers: 1, PaymentUSD: 0.1}, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if err := (Job{TestID: "t", RequiredWorkers: 1, PaymentUSD: -1}).Validate(); err == nil {
		t.Error("negative payment should fail")
	}
}

func TestArchetypeString(t *testing.T) {
	names := map[Archetype]string{
		Diligent: "diligent", Casual: "casual", Hasty: "hasty",
		Distracted: "distracted", Archetype(0): "invalid",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q", a, a.String())
		}
	}
}

func TestDeterminism(t *testing.T) {
	p1, err := TrustedCrowd(20, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := TrustedCrowd(20, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Workers {
		a, b := p1.Workers[i], p2.Workers[i]
		if a.ID != b.ID || a.Archetype != b.Archetype || a.PreferredFontPt != b.PreferredFontPt {
			t.Fatalf("worker %d differs across same-seed populations", i)
		}
	}
}

func TestTextFocusDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pop, err := TrustedCrowd(500, rng)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	textLeaning := 0
	for _, w := range pop.Workers {
		if w.TextFocus < 0 || w.TextFocus > 1 {
			t.Fatalf("TextFocus %v out of [0,1]", w.TextFocus)
		}
		sum += w.TextFocus
		if w.TextFocus > 0.5 {
			textLeaning++
		}
	}
	mean := sum / 500
	if mean < 0.5 || mean > 0.75 {
		t.Errorf("mean TextFocus = %v, want ~0.62", mean)
	}
	// The population skews toward text but is not unanimous — the paper's
	// Fig. 9 comments show both reading styles.
	if textLeaning < 300 || textLeaning > 480 {
		t.Errorf("text-leaning workers = %d/500", textLeaning)
	}
}

func TestCompareFontSizeSequentialNoisier(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	w := newWorker(0, Diligent, true, rng)
	w.PreferredFontPt = 12
	w.FontTolerance = 3
	correct := func(fn func() questionnaire.Choice) int {
		n := 0
		for i := 0; i < 400; i++ {
			if fn() == questionnaire.ChoiceLeft {
				n++
			}
		}
		return n
	}
	side := correct(func() questionnaire.Choice { return w.CompareFontSize(12, 14, rng) })
	seq := correct(func() questionnaire.Choice { return w.CompareFontSizeSequential(12, 14, 3, rng) })
	if seq >= side {
		t.Errorf("sequential accuracy %d should trail side-by-side %d", seq, side)
	}
}
