package crowd

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// FuzzMix throws arbitrary archetype fractions at the mix validator and the
// archetype draw: fractions that do not sum to 1, negative parts, NaN/Inf,
// and the empty mix must all be rejected with ErrBadMix, while any mix that
// passes validation must draw only defined archetypes — and draw itself must
// never panic, even on garbage mixes.
func FuzzMix(f *testing.F) {
	f.Add(1.0, 0.0, 0.0, 0.0, 0.0, 0.0)                // InLabMix
	f.Add(0.62, 0.22, 0.08, 0.08, 0.0, 0.0)            // TrustedCrowdMix
	f.Add(0.30, 0.20, 0.08, 0.07, 0.15, 0.20)          // CampaignCrowdMix
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)                // empty mix
	f.Add(0.5, 0.0, 0.0, 0.0, 0.0, 0.0)                // under-normalized
	f.Add(1.5, -0.5, 0.0, 0.0, 0.0, 0.0)               // negative part, sum 1
	f.Add(-1.0, 2.0, 0.0, 0.0, 0.0, 0.0)               // negative part, sum 1
	f.Add(math.NaN(), 0.5, 0.5, 0.0, 0.0, 0.0)         // NaN fraction
	f.Add(math.Inf(1), 0.0, 0.0, 0.0, 0.0, 0.0)        // Inf fraction
	f.Add(0.2, 0.2, 0.2, 0.2, 0.2, 1e-9)               // just over 1
	f.Add(0.9995, 0.0005, 0.0, 0.0, 0.0, 0.0)          // inside tolerance
	f.Fuzz(func(t *testing.T, d, c, h, x, s, g float64) {
		mix := Mix{Diligent: d, Casual: c, Hasty: h, Distracted: x, Surveyor: s, TaskDriven: g}
		rng := rand.New(rand.NewSource(42))

		sum := d + c + h + x + s + g
		wantValid := sum > 0.999 && sum < 1.001 &&
			d >= 0 && c >= 0 && h >= 0 && x >= 0 && s >= 0 && g >= 0
		if mix.valid() != wantValid {
			t.Fatalf("valid() = %v, want %v for %+v (sum %v)", mix.valid(), wantValid, mix, sum)
		}

		pop, err := NewPopulation(8, mix, false, rng)
		if !wantValid {
			if !errors.Is(err, ErrBadMix) {
				t.Fatalf("NewPopulation(%+v) err = %v, want ErrBadMix", mix, err)
			}
		} else if err != nil {
			t.Fatalf("NewPopulation(%+v) failed on a valid mix: %v", mix, err)
		} else {
			for _, w := range pop.Workers {
				if w.Archetype < Diligent || w.Archetype > TaskDriven {
					t.Fatalf("drew undefined archetype %d", w.Archetype)
				}
				if w.Archetype.String() == "invalid" {
					t.Fatalf("archetype %d has no name", w.Archetype)
				}
			}
		}

		// draw must never panic, even for mixes validation rejects.
		for i := 0; i < 32; i++ {
			if a := mix.draw(rng); a < Diligent || a > TaskDriven {
				t.Fatalf("draw returned undefined archetype %d", a)
			}
		}

		// RecruitWorker shares the validation path.
		if w, err := RecruitWorker(9999, mix, true, rng); wantValid {
			if err != nil || w == nil {
				t.Fatalf("RecruitWorker on valid mix: %v", err)
			}
		} else if !errors.Is(err, ErrBadMix) {
			t.Fatalf("RecruitWorker err = %v, want ErrBadMix", err)
		}
	})
}
