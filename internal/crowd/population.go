package crowd

import (
	"errors"
	"math/rand"
)

// Mix is the archetype composition of a population; fractions must sum
// to 1.
type Mix struct {
	Diligent   float64
	Casual     float64
	Hasty      float64
	Distracted float64
	Surveyor   float64
	TaskDriven float64
}

// Canonical mixes.
var (
	// InLabMix models invited participants who "promise full commitment
	// to the test" (the paper's friends-and-colleagues cohort): fully
	// diligent.
	InLabMix = Mix{Diligent: 1.0}
	// TrustedCrowdMix models FigureEight's "historically trustworthy"
	// tier: mostly engaged, a thin tail of careless work that quality
	// control catches.
	TrustedCrowdMix = Mix{Diligent: 0.62, Casual: 0.22, Hasty: 0.08, Distracted: 0.08}
	// OpenCrowdMix models an unfiltered crowd.
	OpenCrowdMix = Mix{Diligent: 0.40, Casual: 0.28, Hasty: 0.22, Distracted: 0.10}
	// CampaignCrowdMix models a recruitment wave on an open platform
	// during a multi-test campaign: page-comparison raters mixed with
	// questionnaire-heavy surveyors and goal-directed usability testers
	// whose churn (mid-session abandonment) the orchestrator must absorb.
	CampaignCrowdMix = Mix{Diligent: 0.30, Casual: 0.20, Hasty: 0.08, Distracted: 0.07, Surveyor: 0.15, TaskDriven: 0.20}
)

// valid reports whether the mix is a probability distribution.
func (m Mix) valid() bool {
	sum := m.Diligent + m.Casual + m.Hasty + m.Distracted + m.Surveyor + m.TaskDriven
	return sum > 0.999 && sum < 1.001 &&
		m.Diligent >= 0 && m.Casual >= 0 && m.Hasty >= 0 && m.Distracted >= 0 &&
		m.Surveyor >= 0 && m.TaskDriven >= 0
}

// draw samples an archetype. The final band falls through to TaskDriven so
// rounding in the cumulative sums can never produce an invalid archetype.
func (m Mix) draw(rng *rand.Rand) Archetype {
	x := rng.Float64()
	switch {
	case x < m.Diligent:
		return Diligent
	case x < m.Diligent+m.Casual:
		return Casual
	case x < m.Diligent+m.Casual+m.Hasty:
		return Hasty
	case x < m.Diligent+m.Casual+m.Hasty+m.Distracted:
		return Distracted
	case x < m.Diligent+m.Casual+m.Hasty+m.Distracted+m.Surveyor:
		return Surveyor
	default:
		return TaskDriven
	}
}

// Population is a set of simulated workers.
type Population struct {
	Workers []*Worker
}

// ErrBadMix reports a mix that is not a probability distribution.
var ErrBadMix = errors.New("crowd: archetype mix must sum to 1 with non-negative parts")

// NewPopulation draws n workers from the mix. Trusted marks every worker
// with the platform's trust tier (recruitment can filter on it).
func NewPopulation(n int, mix Mix, trusted bool, rng *rand.Rand) (*Population, error) {
	if n <= 0 {
		return nil, errors.New("crowd: population size must be positive")
	}
	if rng == nil {
		return nil, errors.New("crowd: nil random source")
	}
	if !mix.valid() {
		return nil, ErrBadMix
	}
	p := &Population{Workers: make([]*Worker, 0, n)}
	for i := 0; i < n; i++ {
		p.Workers = append(p.Workers, newWorker(i, mix.draw(rng), trusted, rng))
	}
	return p, nil
}

// RecruitWorker mints one replacement worker mid-campaign, as a platform
// does when earlier recruits abandon. The id must not collide with ids
// already issued (NewPopulation numbers workers 0..n-1).
func RecruitWorker(id int, mix Mix, trusted bool, rng *rand.Rand) (*Worker, error) {
	if rng == nil {
		return nil, errors.New("crowd: nil random source")
	}
	if !mix.valid() {
		return nil, ErrBadMix
	}
	return newWorker(id, mix.draw(rng), trusted, rng), nil
}

// InLabPopulation returns n trusted in-lab participants (the paper's 50
// friends and colleagues).
func InLabPopulation(n int, rng *rand.Rand) (*Population, error) {
	return NewPopulation(n, InLabMix, true, rng)
}

// TrustedCrowd returns n "historically trustworthy" FigureEight workers.
func TrustedCrowd(n int, rng *rand.Rand) (*Population, error) {
	return NewPopulation(n, TrustedCrowdMix, true, rng)
}

// OpenCrowd returns n unfiltered crowd workers.
func OpenCrowd(n int, rng *rand.Rand) (*Population, error) {
	return NewPopulation(n, OpenCrowdMix, false, rng)
}

// CountByArchetype tallies the population composition.
func (p *Population) CountByArchetype() map[Archetype]int {
	out := make(map[Archetype]int)
	for _, w := range p.Workers {
		out[w.Archetype]++
	}
	return out
}
