package crowd

import (
	"fmt"
	"strings"
)

// Targeting expresses a job's demographic requirements — the paper's
// "target demographics" input. Empty fields mean "any".
type Targeting struct {
	// Countries whitelists worker countries (ISO-ish codes as collected
	// by the extension).
	Countries []string `json:"countries,omitempty"`
	// AgeBands whitelists the coarse age bands the extension collects.
	AgeBands []string `json:"age_bands,omitempty"`
	// Genders whitelists self-reported genders.
	Genders []string `json:"genders,omitempty"`
	// MinTechAbility requires at least this self-assessed ability (1-5).
	MinTechAbility int `json:"min_tech_ability,omitempty"`
}

// IsZero reports whether the targeting imposes no constraint.
func (t *Targeting) IsZero() bool {
	return t == nil ||
		(len(t.Countries) == 0 && len(t.AgeBands) == 0 && len(t.Genders) == 0 && t.MinTechAbility == 0)
}

// Validate rejects nonsensical constraints.
func (t *Targeting) Validate() error {
	if t == nil {
		return nil
	}
	if t.MinTechAbility < 0 || t.MinTechAbility > 5 {
		return fmt.Errorf("crowd: min tech ability %d out of [0,5]", t.MinTechAbility)
	}
	return nil
}

// Matches reports whether the worker's demographics satisfy the targeting.
func (t *Targeting) Matches(d Demographics) bool {
	if t == nil {
		return true
	}
	if len(t.Countries) > 0 && !containsFold(t.Countries, d.Country) {
		return false
	}
	if len(t.AgeBands) > 0 && !containsFold(t.AgeBands, d.AgeBand) {
		return false
	}
	if len(t.Genders) > 0 && !containsFold(t.Genders, d.Gender) {
		return false
	}
	if t.MinTechAbility > 0 && d.TechAbility < t.MinTechAbility {
		return false
	}
	return true
}

func containsFold(haystack []string, needle string) bool {
	for _, h := range haystack {
		if strings.EqualFold(h, needle) {
			return true
		}
	}
	return false
}

// String renders the targeting for task descriptions.
func (t *Targeting) String() string {
	if t.IsZero() {
		return "any demographics"
	}
	var parts []string
	if len(t.Countries) > 0 {
		parts = append(parts, "countries "+strings.Join(t.Countries, "/"))
	}
	if len(t.AgeBands) > 0 {
		parts = append(parts, "ages "+strings.Join(t.AgeBands, "/"))
	}
	if len(t.Genders) > 0 {
		parts = append(parts, "genders "+strings.Join(t.Genders, "/"))
	}
	if t.MinTechAbility > 0 {
		parts = append(parts, fmt.Sprintf("tech ability >= %d", t.MinTechAbility))
	}
	return strings.Join(parts, ", ")
}
