package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/store"
)

// benchFixture prepares a server whose responses collection holds noise
// sessions for foreignDocs other tests plus a handful of real sessions for
// srv-test. The serving path must not scale with foreignDocs: session
// lookups go through the test_id index and listing counts via CountEq.
func benchFixture(b *testing.B, foreignDocs int) *Server {
	b.Helper()
	srv, prep := prepTest(b)
	responses := srv.db.Collection(aggregator.ResponsesCollection)
	for i := 0; i < foreignDocs; i++ {
		testID := fmt.Sprintf("other-%03d", i%100)
		if _, err := responses.Insert(store.Document{
			store.IDField: fmt.Sprintf("%s/w%d", testID, i),
			"test_id":     testID,
			"worker_id":   fmt.Sprintf("w%d", i),
			"session":     "{}",
		}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		up := sampleUpload(prep, fmt.Sprintf("real-%d", i), questionnaire.ChoiceLeft)
		raw, _ := json.Marshal(up)
		doc := store.Document{
			store.IDField: "srv-test/" + up.WorkerID,
			"test_id":     "srv-test",
			"worker_id":   up.WorkerID,
			"session":     string(raw),
		}
		if _, err := responses.Insert(doc); err != nil {
			b.Fatal(err)
		}
	}
	return srv
}

// BenchmarkListTests measures GET /api/tests with 10k foreign response
// documents in the collection. Session counts come from CountEq on the
// test_id index; compare -benchtime allocations against the scan floor by
// dropping the index declaration in New.
func BenchmarkListTests10kResponses(b *testing.B) {
	srv := benchFixture(b, 10_000)
	req := httptest.NewRequest(http.MethodGet, "/api/tests", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d", rec.Code)
		}
	}
}

// BenchmarkConclude measures a fresh conclusion (session cache invalidated
// every iteration, as a new upload would) with 10k foreign response
// documents. The indexed FindEq keeps this proportional to srv-test's own
// five sessions.
func BenchmarkConclude10kResponses(b *testing.B) {
	srv := benchFixture(b, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.cache.invalidateSessions("srv-test")
		res, err := srv.concludeCached(context.Background(), "srv-test", true)
		if err != nil {
			b.Fatal(err)
		}
		if res.Workers != 5 {
			b.Fatalf("workers = %d", res.Workers)
		}
	}
}

// seedSessions inserts n synthetic sessions for srv-test directly into the
// responses collection (bypassing HTTP, so fixture setup stays cheap at 10k).
func seedSessions(b *testing.B, srv *Server, prep *aggregator.Prepared, n int) {
	b.Helper()
	responses := srv.db.Collection(aggregator.ResponsesCollection)
	choices := []questionnaire.Choice{questionnaire.ChoiceLeft, questionnaire.ChoiceRight, questionnaire.ChoiceSame}
	for i := 0; i < n; i++ {
		up := sampleUpload(prep, fmt.Sprintf("w%05d", i), choices[i%len(choices)])
		raw, _ := json.Marshal(up)
		if _, err := responses.Insert(store.Document{
			store.IDField: "srv-test/" + up.WorkerID,
			"test_id":     "srv-test",
			"worker_id":   up.WorkerID,
			"session":     string(raw),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcludeScratch is the oracle cost: every iteration re-reads and
// re-decodes every stored session before filtering — the price the serving
// path paid per results request before the incremental engine.
func BenchmarkConcludeScratch(b *testing.B) {
	for _, n := range []int{100, 1_000, 10_000} {
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			srv, prep := prepTest(b)
			seedSessions(b, srv, prep, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := srv.ConcludeScratch("srv-test", true)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Filtered {
					b.Fatal("expected quality-controlled results")
				}
			}
		})
	}
}

// BenchmarkConcludeIncremental measures the same quality-controlled results
// served from the live accumulator: the streaming state was folded in at
// upload time, so each conclusion re-evaluates cheap per-worker features
// instead of decoding n session payloads. The cache is generation-bumped
// every iteration (as a fresh upload would), so this times the accumulator
// path, not a memoized map read.
func BenchmarkConcludeIncremental(b *testing.B) {
	for _, n := range []int{100, 1_000, 10_000} {
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			srv, prep := prepTest(b)
			seedSessions(b, srv, prep, n)
			// Warm the accumulator: first conclusion does the one-time
			// rebuild from storage.
			if _, err := srv.concludeCached(context.Background(), "srv-test", true); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				srv.cache.invalidateSessions("srv-test")
				res, err := srv.concludeCached(context.Background(), "srv-test", true)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Filtered {
					b.Fatal("expected quality-controlled results")
				}
			}
		})
	}
}

// benchSessionPayload renders one upload with a unique worker id.
func benchSessionPayload(b *testing.B, prep *aggregator.Prepared, workerID string) []byte {
	b.Helper()
	payload, err := json.Marshal(sampleUpload(prep, workerID, questionnaire.ChoiceLeft))
	if err != nil {
		b.Fatal(err)
	}
	return payload
}

// BenchmarkSessionUploadHTTP is the single-session hot path end to end:
// decode, validate, score, marshal, insert — one POST per session. Payload
// generation runs off the clock; allocs/op is the per-session handler cost.
func BenchmarkSessionUploadHTTP(b *testing.B) {
	srv, prep := prepTest(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		payload := benchSessionPayload(b, prep, fmt.Sprintf("bench-%09d", i))
		req := httptest.NewRequest(http.MethodPost, "/api/tests/srv-test/sessions", bytes.NewReader(payload))
		rec := httptest.NewRecorder()
		b.StartTimer()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusCreated {
			b.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// batchBenchSessions is how many sessions each benchmark batch carries; the
// recorded per-session budget in BENCH_server.json divides allocs/op by
// this.
const batchBenchSessions = 100

// BenchmarkSessionBatchUploadHTTP is the batched hot path: one POST carries
// batchBenchSessions sessions through the streaming decoder, pooled decode
// state, and one WAL group commit. Divide allocs/op by batchBenchSessions
// for the per-session figure the CI allocation budget gates on; the
// sessions/s metric is the end-to-end rate including response rendering.
func BenchmarkSessionBatchUploadHTTP(b *testing.B) {
	srv, prep := prepTest(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		uploads := make([]SessionUpload, batchBenchSessions)
		for j := range uploads {
			uploads[j] = sampleUpload(prep, fmt.Sprintf("bench-%06d-%03d", i, j), questionnaire.ChoiceLeft)
		}
		payload, err := json.Marshal(uploads)
		if err != nil {
			b.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/api/tests/srv-test/sessions:batch", bytes.NewReader(payload))
		rec := httptest.NewRecorder()
		b.StartTimer()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
	}
	b.ReportMetric(float64(b.N*batchBenchSessions)/b.Elapsed().Seconds(), "sessions/s")
}

// BenchmarkSessionUploadFsync contrasts durable throughput: dir-backed
// SyncAlways stores, singles (one fsync per session) vs one batch (one
// group-commit fsync per hundred). This is the wall-clock case for the
// batched endpoint — the fsync, not the allocator, dominates.
func BenchmarkSessionUploadFsync(b *testing.B) {
	b.Run("single", func(b *testing.B) {
		db, err := store.Open(b.TempDir(), store.WithSyncPolicy(store.SyncAlways))
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		coll := db.Collection(aggregator.ResponsesCollection)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			docs := benchBatchDocs(i)
			b.StartTimer()
			for _, doc := range docs {
				if _, err := coll.InsertUnique(doc); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		db, err := store.Open(b.TempDir(), store.WithSyncPolicy(store.SyncAlways))
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		coll := db.Collection(aggregator.ResponsesCollection)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			docs := benchBatchDocs(i)
			b.StartTimer()
			_, errs := coll.InsertUniqueBatch(docs)
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// benchBatchDocs builds one iteration's worth of owned documents.
func benchBatchDocs(iter int) []store.Document {
	docs := make([]store.Document, batchBenchSessions)
	for j := range docs {
		id := fmt.Sprintf("srv-test/fs-%06d-%03d", iter, j)
		docs[j] = store.Document{
			store.IDField: id,
			"test_id":     "srv-test",
			"worker_id":   id,
			"session":     `{"worker_id":"` + id + `"}`,
		}
	}
	return docs
}

// BenchmarkLoadInfoCached measures the repeated-loadInfo path: after the
// first assembly the per-request cost is one cache read, not a params_json
// re-parse.
func BenchmarkLoadInfoCached(b *testing.B) {
	srv := benchFixture(b, 0)
	if _, err := srv.loadInfo("srv-test"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.loadInfo("srv-test"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadInfoUncached is the contrast case: every iteration
// invalidates and re-assembles from storage.
func BenchmarkLoadInfoUncached(b *testing.B) {
	srv := benchFixture(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.cache.invalidateTest("srv-test")
		if _, err := srv.loadInfo("srv-test"); err != nil {
			b.Fatal(err)
		}
	}
}
