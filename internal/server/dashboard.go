package server

import (
	"fmt"
	"html"
	"net/http"
	"strings"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/questionnaire"
)

// The dashboard renders a test's concluded results as a self-contained
// HTML page (GET /dashboard/{id}), giving experimenters the "collect the
// testing results" view without any client tooling. ?quality=1 applies
// the default quality-control battery.

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	testID := r.PathValue("id")
	info, err := s.loadInfo(testID)
	if err != nil {
		writeLoadError(w, err)
		return
	}
	res, err := s.concludeCached(r.Context(), testID, r.URL.Query().Get("quality") == "1")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "concluding: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = fmt.Fprint(w, renderDashboard(info, res))
}

// renderDashboard builds the results page.
func renderDashboard(info *TestInfo, res *Results) string {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8"><title>Kaleidoscope results — `)
	b.WriteString(html.EscapeString(res.TestID))
	b.WriteString(`</title><style>
body { font-family: sans-serif; max-width: 860px; margin: 24px auto; color: #1b1b1b; }
table { border-collapse: collapse; width: 100%; margin-top: 12px; }
th, td { border: 1px solid #ccc; padding: 6px 10px; text-align: left; font-size: 14px; }
th { background: #f4f4f4; }
.bar { display: inline-block; height: 12px; background: #4b2e83; vertical-align: middle; }
.bar.same { background: #999; }
.bar.right { background: #2e834b; }
.meta { color: #555; }
.control { color: #888; font-style: italic; }
</style></head><body>`)
	fmt.Fprintf(&b, "<h1>%s</h1>", html.EscapeString(res.TestID))
	fmt.Fprintf(&b, `<p class="meta">%s</p>`, html.EscapeString(info.Description))
	fmt.Fprintf(&b, `<p class="meta">%d workers considered`, res.Workers)
	if res.Filtered {
		fmt.Fprintf(&b, " after quality control (%d dropped)", res.DroppedWorkers)
	} else {
		b.WriteString(` — raw (<a href="?quality=1">apply quality control</a>)`)
	}
	b.WriteString("</p>")
	for qi, q := range info.Questions {
		fmt.Fprintf(&b, "<p><b>Q%d.</b> %s</p>", qi+1, html.EscapeString(q))
	}
	b.WriteString("<table><tr><th>page</th><th>left</th><th>right</th><th>left votes</th><th>same</th><th>right votes</th><th>split</th></tr>")
	for _, page := range res.Pages {
		rowClass := ""
		if page.Kind == aggregator.KindControl {
			rowClass = ` class="control"`
		}
		t := page.Tally
		fmt.Fprintf(&b, "<tr%s><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%s</td></tr>",
			rowClass,
			html.EscapeString(page.PageID),
			html.EscapeString(page.LeftName),
			html.EscapeString(page.RightName),
			t.Left, t.Same, t.Right,
			splitBar(t))
	}
	b.WriteString("</table></body></html>")
	return b.String()
}

// splitBar renders a three-segment proportion bar.
func splitBar(t questionnaire.Tally) string {
	total := t.Total()
	if total == 0 {
		return ""
	}
	const width = 180
	left := width * t.Left / total
	same := width * t.Same / total
	right := width - left - same
	return fmt.Sprintf(
		`<span class="bar" style="width:%dpx" title="left"></span><span class="bar same" style="width:%dpx" title="same"></span><span class="bar right" style="width:%dpx" title="right"></span>`,
		left, same, right)
}
