package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/guard"
	"kaleidoscope/internal/obs"
	"kaleidoscope/internal/store"
)

// Batch-upload budgets. Variables, not constants, so the error-matrix tests
// can shrink them; production code treats them as fixed.
var (
	// maxBatchBytes caps a whole batch's JSON payload, measured after any
	// gzip decompression (a compressed bomb cannot buy more than this).
	maxBatchBytes int64 = 32 << 20
	// maxBatchSessions caps the element count of one batch.
	maxBatchSessions = 10_000
	// batchChunkSize is how many validated sessions are committed per WAL
	// group commit while the stream is still being decoded.
	batchChunkSize = 256
)

// BatchElementResult reports the outcome of one element of a batch upload,
// using the same status vocabulary as the single-session endpoint: 201
// stored, 400 invalid, 409 duplicate worker, 413 element over the
// per-session byte budget.
type BatchElementResult struct {
	Index    int    `json:"index"`
	WorkerID string `json:"worker_id,omitempty"`
	Status   int    `json:"status"`
	Error    string `json:"error,omitempty"`
}

// BatchReport is the response body of POST /api/tests/{id}/sessions:batch.
// The endpoint has partial-accept semantics: elements that validated are
// committed even when a later element is rejected or the stream itself
// fails, and Results records what happened to every element that was
// reached. On a stream-level failure (malformed JSON, budget overflow,
// client cancel) the HTTP status is 400/413/408 and Error describes the
// failure; committed elements stay committed — a client retry answers 409
// for each of them, which the batch client treats as success.
type BatchReport struct {
	TestID   string               `json:"test_id"`
	Accepted int                  `json:"accepted"`
	Rejected int                  `json:"rejected"`
	Results  []BatchElementResult `json:"results"`
	Error    string               `json:"error,omitempty"`
	// Concluded is set client-side when the whole batch was acknowledged
	// with X-Kscope-Concluded — the test is decided and nothing was
	// stored. The server's concluded response is not a BatchReport.
	Concluded bool `json:"concluded,omitempty"`
}

// batchState carries one batch request's progress: the report being built
// and the chunk of validated-but-uncommitted documents.
type batchState struct {
	report  BatchReport
	pending []store.Document // validated docs awaiting the next group commit
	pendIdx []int            // report index per pending doc
	flushes int
}

// handleSessionBatch is the batched upload endpoint: a JSON array of
// session uploads — optionally gzip-compressed — streamed through a
// token-loop decoder that never materializes the whole payload, validated
// and scored element by element with pooled decode state, and committed in
// chunks through the store's WAL group commit.
func (s *Server) handleSessionBatch(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	testID := r.PathValue("id")

	// Like the single-session endpoint, a batch is an uncacheable store
	// write: with the breaker refusing work, shed before burning decode CPU.
	var breakerDone func(guard.Outcome)
	if s.guard != nil {
		var ok bool
		breakerDone, ok = s.guard.Breaker().Allow()
		if !ok {
			s.writeUnavailable(w, "session storage")
			return
		}
	}
	reported := false
	report := func(o guard.Outcome) {
		if breakerDone != nil && !reported {
			reported = true
			breakerDone(o)
		}
	}
	defer report(guard.Canceled)

	entry, err := s.load(testID)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			report(guard.Success)
		} else {
			report(guard.Failure)
		}
		writeLoadError(w, err)
		return
	}

	// Same concluded-test semantics as the single endpoint: once the
	// sequential engine has decided, a whole batch is acknowledged with
	// 200 + X-Kscope-Concluded and nothing is stored. (A decision that
	// latches mid-batch does not abort the stream: elements already
	// validated commit normally, and the *next* request sees the header.)
	if s.early != nil {
		if d := s.early.decision(testID); d != nil {
			report(guard.Success)
			s.early.concludedUpload(w, testID, d)
			return
		}
	}

	if s.reg != nil {
		s.reg.Counter("kscope_batch_requests_total").Inc()
	}

	// The raw body budget bounds what we read off the wire; the budget
	// reader bounds what gzip may inflate it into.
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBytes)
	var body io.Reader = r.Body
	if strings.EqualFold(r.Header.Get("Content-Encoding"), "gzip") {
		gz, err := acquireGzip(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "decoding gzip body: %v", err)
			return
		}
		defer releaseGzip(gz)
		body = gz
	}
	body = newBudgetReader(body, maxBatchBytes)

	st := &batchState{report: BatchReport{TestID: testID, Results: []BatchElementResult{}}}
	dec := json.NewDecoder(body)

	tok, err := dec.Token()
	if err != nil {
		s.finishBatch(w, st, report, s.batchStreamStatus(err), "decoding batch: %v", err)
		return
	}
	if delim, ok := tok.(json.Delim); !ok || delim != '[' {
		s.finishBatch(w, st, report, http.StatusBadRequest, "batch body must be a JSON array of sessions, got %v", tok)
		return
	}

	upload := uploadPool.Get().(*SessionUpload)
	defer uploadPool.Put(upload)

	for dec.More() {
		if len(st.report.Results) >= maxBatchSessions {
			s.finishBatch(w, st, report, http.StatusRequestEntityTooLarge,
				"batch exceeds %d sessions", maxBatchSessions)
			return
		}
		// A dead client mid-stream: stop decoding, drop the uncommitted
		// chunk (the client will re-send; committed elements answer 409).
		if err := ctx.Err(); err != nil {
			st.pending, st.pendIdx = nil, nil
			s.finishBatch(w, st, report, http.StatusRequestTimeout, "client canceled request: %v", err)
			return
		}
		start := dec.InputOffset()
		upload.resetForReuse()
		if err := dec.Decode(upload); err != nil {
			s.finishBatch(w, st, report, s.batchStreamStatus(err),
				"decoding batch element %d: %v", len(st.report.Results), err)
			return
		}
		elem := BatchElementResult{Index: len(st.report.Results), WorkerID: upload.WorkerID}
		if size := dec.InputOffset() - start; size > maxSessionBytes {
			elem.Status = http.StatusRequestEntityTooLarge
			elem.Error = fmt.Sprintf("session exceeds %d bytes", maxSessionBytes)
			st.report.Results = append(st.report.Results, elem)
			continue
		}
		doc, err := s.buildSessionDoc(testID, entry, upload)
		if err != nil {
			elem.Status = http.StatusBadRequest
			elem.Error = err.Error()
			st.report.Results = append(st.report.Results, elem)
			continue
		}
		// Placeholder status; the flush fills in 201/409 (or fails the
		// request on a storage fault).
		st.report.Results = append(st.report.Results, elem)
		st.pending = append(st.pending, doc)
		st.pendIdx = append(st.pendIdx, elem.Index)
		if len(st.pending) >= batchChunkSize {
			if !s.flushBatch(w, st, report) {
				return
			}
		}
	}
	// Closing ']' and strict EOF: trailing garbage after the array is as
	// malformed as garbage inside it.
	if _, err := dec.Token(); err != nil {
		s.finishBatch(w, st, report, s.batchStreamStatus(err), "decoding batch: %v", err)
		return
	}
	if err := requireEOF(dec); err != nil {
		s.finishBatch(w, st, report, http.StatusBadRequest, "batch body: %v", err)
		return
	}
	if err := ctx.Err(); err != nil {
		st.pending, st.pendIdx = nil, nil
		s.finishBatch(w, st, report, http.StatusRequestTimeout, "client canceled request: %v", err)
		return
	}
	if !s.flushBatch(w, st, report) {
		return
	}
	report(guard.Success)
	s.noteBatchMetrics(st)
	writeJSON(w, http.StatusOK, &st.report)
}

// batchStreamStatus classifies a stream-level decode error: body over the
// wire budget or inflating past the decompressed budget is 413, everything
// else (malformed JSON, truncated gzip, short body) is 400.
func (s *Server) batchStreamStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) || errors.Is(err, errBatchBudget) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// buildSessionDoc validates and scores one decoded upload exactly like the
// single-session endpoint does and renders its storage document. The
// returned document embeds the one string copy of the re-marshaled session;
// nothing in it aliases the pooled upload struct.
func (s *Server) buildSessionDoc(testID string, entry *testEntry, upload *SessionUpload) (store.Document, error) {
	if upload.TestID == "" {
		upload.TestID = testID
	} else if upload.TestID != testID {
		return nil, fmt.Errorf("session test_id %q contradicts the URL test %q", upload.TestID, testID)
	}
	if err := upload.Validate(entry.info); err != nil {
		return nil, fmt.Errorf("invalid session: %w", err)
	}
	for i := range upload.Controls {
		exp, ok := entry.expected[upload.Controls[i].PageID]
		if !ok {
			return nil, fmt.Errorf("control outcome references non-control page %q", upload.Controls[i].PageID)
		}
		upload.Controls[i].Expected = exp
	}
	raw, err := marshalSession(upload)
	if err != nil {
		return nil, fmt.Errorf("encoding session: %w", err)
	}
	return store.Document{
		store.IDField: testID + "/" + upload.WorkerID,
		"test_id":     testID,
		"worker_id":   upload.WorkerID,
		"session":     raw,
	}, nil
}

// flushBatch commits the pending chunk through one WAL group commit and
// fills in the per-element statuses. It returns false after writing an
// error response (storage fault), true otherwise.
func (s *Server) flushBatch(w http.ResponseWriter, st *batchState, report func(guard.Outcome)) bool {
	if len(st.pending) == 0 {
		return true
	}
	_, errs := s.db.Collection(aggregator.ResponsesCollection).InsertUniqueBatch(st.pending)
	st.flushes++
	conflicts := false
	for i, err := range errs {
		elem := &st.report.Results[st.pendIdx[i]]
		switch {
		case err == nil:
			elem.Status = http.StatusCreated
		case errors.Is(err, store.ErrDuplicateID):
			conflicts = true
			elem.Status = http.StatusConflict
			elem.Error = fmt.Sprintf("worker %q already uploaded a session for this test", elem.WorkerID)
		default:
			// Infrastructure failure: like the single path, tell the client
			// to retry the batch once the store has had a chance to recover.
			report(guard.Failure)
			if s.replWriteRefused(w, err) {
				return false
			}
			if s.guard != nil {
				writeShed(w, http.StatusServiceUnavailable, s.guard.RetryAfter(),
					"storing batch failed: %v; retry after the indicated delay", err)
			} else {
				writeError(w, http.StatusInternalServerError, "storing batch: %v", err)
			}
			return false
		}
	}
	// A 409 element acknowledges a record stored by an earlier attempt;
	// like the single path, that ack may only go out once replication of
	// everything local is confirmed.
	if conflicts && !s.replAckBarrier(w) {
		report(guard.Failure)
		return false
	}
	st.pending = st.pending[:0]
	st.pendIdx = st.pendIdx[:0]
	return true
}

// finishBatch handles a stream-level failure: commit whatever validated
// before the failure (partial accept), then answer with the failure status
// and the report of everything that was reached.
func (s *Server) finishBatch(w http.ResponseWriter, st *batchState, report func(guard.Outcome), status int, format string, args ...any) {
	if !s.flushBatch(w, st, report) {
		return
	}
	st.report.Error = fmt.Sprintf(format, args...)
	s.noteBatchMetrics(st)
	writeJSON(w, status, &st.report)
}

// noteBatchMetrics finalizes the report's counts and exports the batch
// metrics.
func (s *Server) noteBatchMetrics(st *batchState) {
	for _, res := range st.report.Results {
		switch res.Status {
		case http.StatusCreated:
			st.report.Accepted++
		default:
			st.report.Rejected++
		}
	}
	if s.reg == nil {
		return
	}
	for _, res := range st.report.Results {
		s.reg.Counter("kscope_batch_sessions_total", "status", strconv.Itoa(res.Status)).Inc()
	}
	s.reg.Counter("kscope_batch_flushes_total").Add(int64(st.flushes))
	s.reg.Histogram("kscope_batch_size", obs.DefSizeBuckets).Observe(float64(len(st.report.Results)))
}
