package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"kaleidoscope/internal/questionnaire"
)

func TestDashboard(t *testing.T) {
	srv, prep := prepTest(t)
	up := sampleUpload(prep, "w1", questionnaire.ChoiceLeft)
	payload, _ := json.Marshal(up)
	doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil)

	rec := doJSON(t, srv, http.MethodGet, "/dashboard/srv-test", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"srv-test", "1 workers considered", "apply quality control", "pair-0-1", `class="bar"`} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type = %q", ct)
	}

	// Quality-controlled variant.
	rec = doJSON(t, srv, http.MethodGet, "/dashboard/srv-test?quality=1", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("qc status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "after quality control") {
		t.Error("qc dashboard should say so")
	}

	// Missing test.
	rec = doJSON(t, srv, http.MethodGet, "/dashboard/ghost", nil, nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("ghost status = %d", rec.Code)
	}
}

func TestDashboardEscapesHTML(t *testing.T) {
	info := &TestInfo{TestID: "t", Description: `<script>alert(1)</script>`, Questions: []string{"<b>q</b>"}}
	res := &Results{TestID: "t"}
	out := renderDashboard(info, res)
	if strings.Contains(out, "<script>alert(1)</script>") {
		t.Error("description not escaped")
	}
	if strings.Contains(out, "<b>q</b>") {
		t.Error("question not escaped")
	}
}

func TestSplitBar(t *testing.T) {
	if splitBar(questionnaire.Tally{}) != "" {
		t.Error("empty tally should render nothing")
	}
	out := splitBar(questionnaire.Tally{Left: 1, Same: 1, Right: 2})
	if !strings.Contains(out, "width:45px") || !strings.Contains(out, "width:90px") {
		t.Errorf("bar = %q", out)
	}
}
