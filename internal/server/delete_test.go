package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/params"
	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/store"
	"kaleidoscope/internal/webgen"
)

// prepDeleteFixture is prepTest with the storage handles exposed, so delete
// tests can audit blob refcounts and raw collections.
func prepDeleteFixture(t testing.TB) (*Server, *aggregator.Aggregator, *store.DB, *store.BlobStore, *aggregator.Prepared) {
	t.Helper()
	db := store.OpenMemory()
	blobs := store.NewBlobStore()
	agg, err := aggregator.New(db, blobs)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := agg.Prepare(deleteFixtureTest(), deleteFixtureSites(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(db, blobs)
	if err != nil {
		t.Fatal(err)
	}
	return srv, agg, db, blobs, prep
}

func deleteFixtureTest() *params.Test {
	return &params.Test{
		TestID:          "srv-test",
		WebpageNum:      2,
		TestDescription: "delete lifecycle test",
		ParticipantNum:  10,
		Questions:       []string{"Which webpage's font size is more suitable (easier) for reading?"},
		Webpages: []params.Webpage{
			{WebPath: "a", WebPageLoad: params.PageLoadSpec{UniformMillis: 1000}, WebMainFile: "index.html"},
			{WebPath: "b", WebPageLoad: params.PageLoadSpec{UniformMillis: 1000}, WebMainFile: "index.html"},
		},
	}
}

func deleteFixtureSites() map[string]*webgen.Site {
	return map[string]*webgen.Site{
		"a": webgen.WikiArticle(webgen.WikiConfig{Seed: 1, FontSizePt: 12}),
		"b": webgen.WikiArticle(webgen.WikiConfig{Seed: 1, FontSizePt: 22}),
	}
}

// TestDeleteReleasesEverything is the lifecycle leak check:
// create → serve → delete must return the blob store to its baseline, empty
// the test's documents, and leave no servable state behind — the stale
// (degraded-mode) snapshots included.
func TestDeleteReleasesEverything(t *testing.T) {
	srv, _, db, blobs, prep := prepDeleteFixture(t)
	if blobs.Stats().UniqueBlobs == 0 {
		t.Fatal("fixture should have stored blobs")
	}

	// Serve: a few sessions land, results are warm (live + stale caches).
	for _, w := range []string{"w1", "w2", "w3"} {
		payload, _ := json.Marshal(sampleUpload(prep, w, questionnaire.ChoiceLeft))
		if rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil); rec.Code != http.StatusCreated {
			t.Fatalf("upload status = %d: %s", rec.Code, rec.Body.String())
		}
	}
	if rec := doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results", nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("results before delete = %d", rec.Code)
	}
	if rec := doJSON(t, srv, http.MethodGet, "/api/tests/srv-test", nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("info before delete = %d", rec.Code)
	}

	var out map[string]any
	rec := doJSON(t, srv, http.MethodDelete, "/api/tests/srv-test", nil, &out)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete status = %d: %s", rec.Code, rec.Body.String())
	}
	if out["pages"].(float64) != float64(len(prep.Pages)) || out["sessions"].(float64) != 3 {
		t.Errorf("delete report = %v", out)
	}

	// CAS refcounts released: blob store back to its pre-create baseline.
	if got := blobs.Stats().UniqueBlobs; got != 0 {
		t.Errorf("UniqueBlobs after delete = %d, want 0 (leak)", got)
	}
	// Documents gone.
	if n := db.Collection(aggregator.TestsCollection).Count(); n != 0 {
		t.Errorf("test docs after delete = %d", n)
	}
	if n := db.Collection(aggregator.PagesCollection).Count(); n != 0 {
		t.Errorf("page docs after delete = %d", n)
	}
	if n := db.Collection(aggregator.ResponsesCollection).Count(); n != 0 {
		t.Errorf("response docs after delete = %d", n)
	}

	// Nothing servable remains: metadata, pages, and — the regression this
	// test exists for — results must 404 instead of answering from a cache
	// or accumulator that outlived the test.
	for _, path := range []string{
		"/api/tests/srv-test",
		"/api/tests/srv-test/results",
		"/api/tests/srv-test/results?quality=1",
		"/api/tests/srv-test/pages/" + prep.Pages[0].ID + "/index.html",
	} {
		if rec := doJSON(t, srv, http.MethodGet, path, nil, nil); rec.Code != http.StatusNotFound {
			t.Errorf("GET %s after delete = %d, want 404", path, rec.Code)
		}
	}
	// The stale degraded-mode snapshots are purged too.
	if _, ok := srv.cache.staleTest("srv-test"); ok {
		t.Error("stale test snapshot survived deletion")
	}
	if _, ok := srv.cache.staleResultsFor(resultsKey{"srv-test", false}); ok {
		t.Error("stale results snapshot survived deletion")
	}

	// Deleting again: nothing left, so 404.
	if rec := doJSON(t, srv, http.MethodDelete, "/api/tests/srv-test", nil, nil); rec.Code != http.StatusNotFound {
		t.Errorf("second delete = %d, want 404", rec.Code)
	}
	if rec := doJSON(t, srv, http.MethodDelete, "/api/tests/ghost", nil, nil); rec.Code != http.StatusNotFound {
		t.Errorf("delete of never-created test = %d, want 404", rec.Code)
	}
}

// TestDeleteThenRecreate proves churn can reuse a test id: the same test
// prepared again after deletion serves fresh state, not cached leftovers.
func TestDeleteThenRecreate(t *testing.T) {
	srv, agg, _, blobs, prep := prepDeleteFixture(t)

	payload, _ := json.Marshal(sampleUpload(prep, "w1", questionnaire.ChoiceLeft))
	if rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil); rec.Code != http.StatusCreated {
		t.Fatalf("upload = %d", rec.Code)
	}
	var before Results
	doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results", nil, &before)
	if before.Workers != 1 {
		t.Fatalf("workers before = %d", before.Workers)
	}

	if rec := doJSON(t, srv, http.MethodDelete, "/api/tests/srv-test", nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("delete = %d", rec.Code)
	}
	if _, err := agg.Prepare(deleteFixtureTest(), deleteFixtureSites(), nil); err != nil {
		t.Fatalf("re-prepare after delete: %v", err)
	}
	if blobs.Stats().UniqueBlobs == 0 {
		t.Fatal("re-prepare should store blobs again")
	}
	var info TestInfo
	if rec := doJSON(t, srv, http.MethodGet, "/api/tests/srv-test", nil, &info); rec.Code != http.StatusOK {
		t.Fatalf("info after recreate = %d", rec.Code)
	}
	var res Results
	if rec := doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results", nil, &res); rec.Code != http.StatusOK {
		t.Fatalf("results after recreate = %d", rec.Code)
	}
	if res.Workers != 0 {
		t.Errorf("recreated test should have zero sessions, got %d", res.Workers)
	}
}
