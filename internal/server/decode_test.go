package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"kaleidoscope/internal/questionnaire"
)

// Regression: the single-upload decoder used to stop at the end of the
// first JSON value and silently accept trailing garbage.
func TestUploadRejectsTrailingGarbage(t *testing.T) {
	srv, prep := prepTest(t)
	payload, err := json.Marshal(sampleUpload(prep, "w-trail", questionnaire.ChoiceLeft))
	if err != nil {
		t.Fatal(err)
	}
	for _, trailer := range []string{`junk`, `{"again":1}`, `[]`, `0`} {
		rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions",
			append(append([]byte{}, payload...), []byte(trailer)...), nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("trailer %q: status = %d, want 400 (%s)", trailer, rec.Code, rec.Body.String())
		}
	}
	// Trailing whitespace is not garbage.
	rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions",
		append(append([]byte{}, payload...), []byte("  \n\t")...), nil)
	if rec.Code != http.StatusCreated {
		t.Errorf("trailing whitespace: status = %d, want 201 (%s)", rec.Code, rec.Body.String())
	}
}

// Regression: a body test_id contradicting the URL used to be accepted (only
// an empty one was backfilled); it must be a 400.
func TestUploadRejectsContradictingTestID(t *testing.T) {
	srv, prep := prepTest(t)
	up := sampleUpload(prep, "w-mismatch", questionnaire.ChoiceLeft)
	up.TestID = "some-other-test"
	for i := range up.Responses {
		up.Responses[i].TestID = "some-other-test"
	}
	payload, err := json.Marshal(up)
	if err != nil {
		t.Fatal(err)
	}
	rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status = %d, want 400 (%s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "contradicts") {
		t.Errorf("error should name the contradiction: %s", rec.Body.String())
	}

	// An empty body test_id is still backfilled from the URL.
	up.TestID = ""
	for i := range up.Responses {
		up.Responses[i].TestID = "srv-test"
	}
	payload, err = json.Marshal(up)
	if err != nil {
		t.Fatal(err)
	}
	rec = doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil)
	if rec.Code != http.StatusCreated {
		t.Errorf("backfill status = %d, want 201 (%s)", rec.Code, rec.Body.String())
	}
}

// Nested response identifiers contradicting the session are rejected: the
// stored raw is what conclusions replay, and a foreign test_id or worker_id
// inside it would attribute answers to the wrong place.
func TestUploadRejectsContradictingNestedIDs(t *testing.T) {
	srv, prep := prepTest(t)

	up := sampleUpload(prep, "w-nested", questionnaire.ChoiceLeft)
	up.Responses[0].TestID = "someone-elses-test"
	payload, _ := json.Marshal(up)
	rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("nested test_id: status = %d, want 400 (%s)", rec.Code, rec.Body.String())
	}

	up = sampleUpload(prep, "w-nested", questionnaire.ChoiceLeft)
	up.Responses[0].WorkerID = "someone-else"
	payload, _ = json.Marshal(up)
	rec = doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("nested worker_id: status = %d, want 400 (%s)", rec.Code, rec.Body.String())
	}
}

// Regression: the builder endpoint had no body bound at all.
func TestBuilderBodyBoundAndStrict(t *testing.T) {
	srv, _ := prepTest(t)
	valid := []byte(`{"test_id":"built","description":"d","participants":5,` +
		`"questions":["Which is better?"],` +
		`"webpages":[{"path":"a","uniform_load_millis":100},{"path":"b","uniform_load_millis":200}]}`)

	rec := doJSON(t, srv, http.MethodPost, "/api/params/build", valid, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("valid request: status = %d (%s)", rec.Code, rec.Body.String())
	}

	rec = doJSON(t, srv, http.MethodPost, "/api/params/build", append(append([]byte{}, valid...), []byte(`junk`)...), nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("trailing garbage: status = %d, want 400", rec.Code)
	}

	big := append(append([]byte(`{"description":"`), bytes.Repeat([]byte("x"), maxBuilderBytes+1024)...), []byte(`"}`)...)
	rec = doJSON(t, srv, http.MethodPost, "/api/params/build", big, nil)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status = %d, want 413 (%s)", rec.Code, rec.Body.String())
	}
}

// decodeStrict in isolation: exactly one value, whitespace tolerated,
// anything else rejected.
func TestDecodeStrict(t *testing.T) {
	var v map[string]int
	if err := decodeStrict(strings.NewReader(`{"a":1}  `), &v); err != nil {
		t.Errorf("clean value: %v", err)
	}
	if err := decodeStrict(strings.NewReader(`{"a":1}{"b":2}`), &v); err == nil {
		t.Error("second value accepted")
	}
	if err := decodeStrict(strings.NewReader(`{"a":1}nonsense`), &v); err == nil {
		t.Error("trailing garbage accepted")
	}
}

// resetForReuse must leave no trace of the previous decode: a field absent
// from the wire must come back zero, not inherited — including inside slice
// elements decoded into a recycled backing array.
func TestUploadPoolReset(t *testing.T) {
	var up SessionUpload
	first := `{"test_id":"t","worker_id":"w1","responses":[` +
		`{"test_id":"t","worker_id":"w1","page_id":"p1","question_id":"q0","choice":"left","comment":"sticky","duration_millis":5}]}`
	if err := json.Unmarshal([]byte(first), &up); err != nil {
		t.Fatal(err)
	}
	up.resetForReuse()
	if up.TestID != "" || up.WorkerID != "" || len(up.Responses) != 0 {
		t.Fatalf("reset left state: %+v", up)
	}
	second := `{"test_id":"t","worker_id":"w2","responses":[` +
		`{"test_id":"t","worker_id":"w2","page_id":"p1","question_id":"q0","choice":"right","duration_millis":7}]}`
	if err := json.Unmarshal([]byte(second), &up); err != nil {
		t.Fatal(err)
	}
	if up.Responses[0].Comment != "" {
		t.Errorf("comment leaked across reuse: %q", up.Responses[0].Comment)
	}

	// And the persisted form after reuse is byte-identical to a fresh decode.
	var fresh SessionUpload
	if err := json.Unmarshal([]byte(second), &fresh); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(up, fresh) {
		t.Errorf("reused = %+v, fresh = %+v", up, fresh)
	}
	got, err := marshalSession(&up)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(&fresh)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("marshalSession = %s, want %s", got, want)
	}
}
