package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"kaleidoscope/internal/params"
)

func validBuilderRequest() BuilderRequest {
	return BuilderRequest{
		TestID:       "built-study",
		Description:  "builder test",
		Participants: 50,
		Questions:    []string{"Which is better?"},
		Webpages: []BuilderWebpage{
			{Path: "v1", UniformLoadMillis: 3000},
			{Path: "v2", Schedule: map[string]int{"#content": 4000, "#navbar": 2000}},
		},
	}
}

func TestBuildParams(t *testing.T) {
	test, err := BuildParams(validBuilderRequest())
	if err != nil {
		t.Fatalf("BuildParams: %v", err)
	}
	if test.TestID != "built-study" || test.WebpageNum != 2 {
		t.Errorf("test = %+v", test)
	}
	// Defaults applied.
	if test.Webpages[0].WebMainFile != "index.html" {
		t.Errorf("default main file = %q", test.Webpages[0].WebMainFile)
	}
	// Scalar form for v1.
	if !test.Webpages[0].WebPageLoad.IsUniform() || test.Webpages[0].WebPageLoad.UniformMillis != 3000 {
		t.Errorf("v1 load = %+v", test.Webpages[0].WebPageLoad)
	}
	// Selector form for v2, deterministically ordered.
	sched := test.Webpages[1].WebPageLoad.Schedule
	if len(sched) != 2 || sched[0].Selector != "#content" || sched[1].Selector != "#navbar" {
		t.Errorf("v2 schedule = %+v", sched)
	}
	// The output is a valid document end-to-end.
	data, err := test.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := params.Parse(data); err != nil {
		t.Errorf("built document does not parse: %v", err)
	}
}

func TestBuildParamsErrors(t *testing.T) {
	req := validBuilderRequest()
	req.Webpages = req.Webpages[:1]
	if _, err := BuildParams(req); err == nil {
		t.Error("one webpage should fail validation")
	}
	req = validBuilderRequest()
	req.Questions = nil
	if _, err := BuildParams(req); err == nil {
		t.Error("no questions should fail")
	}
	req = validBuilderRequest()
	req.TestID = "  "
	if _, err := BuildParams(req); err == nil {
		t.Error("blank id should fail")
	}
}

func TestBuilderEndpoint(t *testing.T) {
	srv, _ := prepTest(t)
	payload, err := json.Marshal(validBuilderRequest())
	if err != nil {
		t.Fatal(err)
	}
	rec := doJSON(t, srv, http.MethodPost, "/api/params/build", payload, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	built, err := params.Parse(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("endpoint output does not parse: %v", err)
	}
	if built.TestID != "built-study" {
		t.Errorf("built = %+v", built)
	}
	// Bad JSON.
	rec = doJSON(t, srv, http.MethodPost, "/api/params/build", []byte("{"), nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad json status = %d", rec.Code)
	}
	// Invalid request.
	rec = doJSON(t, srv, http.MethodPost, "/api/params/build", []byte(`{"test_id":"x"}`), nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("invalid request status = %d", rec.Code)
	}
}

func TestBuilderPage(t *testing.T) {
	srv, _ := prepTest(t)
	rec := doJSON(t, srv, http.MethodGet, "/builder", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "parameter builder") || !strings.Contains(body, "/api/params/build") {
		t.Error("builder page incomplete")
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type = %q", ct)
	}
}
