package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/crowd"
	"kaleidoscope/internal/netsim"
	"kaleidoscope/internal/quality"
	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/store"
)

// randomUpload builds a deliberately varied session for the srv-test
// fixture: random choices, occasional incompleteness, failed controls,
// hasty timings, and duplicate answers for one page — everything the
// battery discriminates on.
func randomUpload(prep *aggregator.Prepared, workerID string, rng *rand.Rand) SessionUpload {
	choices := []questionnaire.Choice{
		questionnaire.ChoiceLeft, questionnaire.ChoiceRight, questionnaire.ChoiceSame,
	}
	up := SessionUpload{TestID: "srv-test", WorkerID: workerID}
	for _, p := range prep.RealPages() {
		n := 1
		if rng.Intn(10) == 0 {
			n = 2 // duplicate answer for this page
		}
		for i := 0; i < n; i++ {
			up.Responses = append(up.Responses, questionnaire.Response{
				TestID: "srv-test", WorkerID: workerID, PageID: p.ID,
				QuestionID: "q0", Choice: choices[rng.Intn(3)],
				DurationMillis: 1000 + rng.Intn(40_000),
			})
		}
		up.Behaviors = append(up.Behaviors, crowd.Behavior{
			TimeOnTaskMillis: 1000 + rng.Intn(40_000), CreatedTabs: 1,
		})
	}
	if rng.Intn(8) == 0 && len(up.Responses) > 1 {
		up.Responses = up.Responses[:len(up.Responses)-1] // incomplete
	}
	for _, p := range prep.ControlPages() {
		got := p.Expected
		if rng.Intn(5) == 0 {
			got = got.Opposite()
			if got == p.Expected {
				got = questionnaire.ChoiceLeft
			}
		}
		up.Controls = append(up.Controls, quality.ControlOutcome{PageID: p.ID, Got: got})
		up.Behaviors = append(up.Behaviors, crowd.Behavior{
			TimeOnTaskMillis: 1000 + rng.Intn(40_000), CreatedTabs: 1,
		})
	}
	if rng.Intn(10) == 0 {
		up.Controls = nil // no control answers at all
	}
	return up
}

func getResults(t *testing.T, srv *Server, quality bool) *Results {
	t.Helper()
	path := "/api/tests/srv-test/results"
	if quality {
		path += "?quality=1"
	}
	var res Results
	rec := doJSON(t, srv, http.MethodGet, path, nil, &res)
	if rec.Code != http.StatusOK {
		t.Fatalf("results status = %d: %s", rec.Code, rec.Body.String())
	}
	return &res
}

// TestIncrementalMatchesOracleDifferential drives a seeded random workload
// of uploads interleaved with results requests and asserts after every
// step that the incremental serving path deep-equals the from-scratch
// oracle, with and without quality control.
func TestIncrementalMatchesOracleDifferential(t *testing.T) {
	srv, prep := prepTest(t)
	rng := rand.New(rand.NewSource(404))

	check := func(step int) {
		for _, useQC := range []bool{false, true} {
			got := getResults(t, srv, useQC)
			want, err := srv.ConcludeScratch("srv-test", useQC)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d (quality=%v):\nincremental %+v\noracle      %+v", step, useQC, got, want)
			}
			// Conclude with the equivalent explicit config is the second,
			// independently cached oracle.
			var qc *quality.Config
			if useQC {
				entry, err := srv.load("srv-test")
				if err != nil {
					t.Fatal(err)
				}
				qc = defaultQC(entry)
			}
			want2, err := srv.Conclude("srv-test", qc)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want2) {
				t.Fatalf("step %d (quality=%v): incremental diverges from Conclude", step, useQC)
			}
		}
	}

	check(-1) // empty test
	for i := 0; i < 60; i++ {
		up := randomUpload(prep, fmt.Sprintf("w%03d", rng.Intn(80)), rng)
		payload, _ := json.Marshal(up)
		rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil)
		if rec.Code != http.StatusCreated && rec.Code != http.StatusConflict {
			t.Fatalf("upload %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		if rng.Intn(3) == 0 {
			check(i)
		}
	}
	check(60)
}

// TestIncrementalMatchesScratchServer compares the HTTP surfaces of an
// incremental server and a WithScratchResults server sharing the same
// storage: byte-for-byte identical results payloads.
func TestIncrementalMatchesScratchServer(t *testing.T) {
	srvInc, prep := prepTest(t)
	srvScratch, err := New(srvInc.db, srvInc.blobs, WithScratchResults())
	if err != nil {
		t.Fatal(err)
	}
	if srvScratch.accum != nil {
		t.Fatal("WithScratchResults should disable the accumulator")
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		up := randomUpload(prep, fmt.Sprintf("w%02d", i), rng)
		payload, _ := json.Marshal(up)
		if rec := doJSON(t, srvInc, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil); rec.Code != http.StatusCreated {
			t.Fatalf("upload: %d", rec.Code)
		}
	}
	for _, q := range []string{"", "?quality=1"} {
		a := doJSON(t, srvInc, http.MethodGet, "/api/tests/srv-test/results"+q, nil, nil)
		b := doJSON(t, srvScratch, http.MethodGet, "/api/tests/srv-test/results"+q, nil, nil)
		if a.Code != http.StatusOK || b.Code != http.StatusOK {
			t.Fatalf("status %d / %d", a.Code, b.Code)
		}
		if a.Body.String() != b.Body.String() {
			t.Errorf("results%s differ:\nincremental %s\nscratch     %s", q, a.Body.String(), b.Body.String())
		}
	}
}

// TestIncrementalUnderChaos runs the same differential through a live
// listener with a fault-injecting transport: dropped connections and
// injected 503s on the wire must never make the incremental state diverge
// from storage.
func TestIncrementalUnderChaos(t *testing.T) {
	srv, prep := prepTest(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rng := rand.New(rand.NewSource(5150))
	chaos, err := netsim.NewChaosTransport(http.DefaultTransport, netsim.ChaosConfig{
		DropRate: 0.15, FaultRate: 0.15, FaultStatus: http.StatusServiceUnavailable,
	}, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: chaos}

	post := func(payload []byte) int {
		for attempt := 0; attempt < 25; attempt++ {
			resp, err := client.Post(ts.URL+"/api/tests/srv-test/sessions", "application/json", bytes.NewReader(payload))
			if err != nil {
				continue
			}
			code := resp.StatusCode
			resp.Body.Close()
			if code < 500 {
				return code
			}
		}
		t.Fatalf("upload never got through chaos")
		return 0
	}

	acked := 0
	for i := 0; i < 25; i++ {
		up := randomUpload(prep, fmt.Sprintf("w%02d", i), rng)
		payload, _ := json.Marshal(up)
		switch code := post(payload); code {
		case http.StatusCreated, http.StatusConflict:
			acked++
		default:
			t.Fatalf("upload %d: status %d", i, code)
		}
	}
	if acked != 25 {
		t.Fatalf("acked %d of 25", acked)
	}
	for _, useQC := range []bool{false, true} {
		got := getResults(t, srv, useQC)
		want, err := srv.ConcludeScratch("srv-test", useQC)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("post-chaos divergence (quality=%v)", useQC)
		}
	}
}

// TestResultsFreshnessAfterUpload is the satellite regression for the
// concludeCached generation handling: an acknowledged upload must be
// visible in the very next results response — the cache may never serve
// results older than the state it claims.
func TestResultsFreshnessAfterUpload(t *testing.T) {
	srv, prep := prepTest(t)
	for i := 0; i < 30; i++ {
		up := sampleUpload(prep, fmt.Sprintf("w%02d", i), questionnaire.ChoiceLeft)
		payload, _ := json.Marshal(up)
		if rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil); rec.Code != http.StatusCreated {
			t.Fatalf("upload %d: %d", i, rec.Code)
		}
		if res := getResults(t, srv, false); res.Workers != i+1 {
			t.Fatalf("after %d uploads: Workers = %d (stale results)", i+1, res.Workers)
		}
		if res := getResults(t, srv, i%2 == 0); res.Filtered != (i%2 == 0) {
			t.Fatalf("quality flag not honored at step %d", i)
		}
	}
	// The fill after the last upload must have been accepted by the cache:
	// quiescent reads are hits, not recomputes.
	before := srv.cache.resultHits.Load()
	getResults(t, srv, false)
	if srv.cache.resultHits.Load() != before+1 {
		t.Error("quiescent results read should be a cache hit")
	}
}

// putResults must reject fills whose generation was superseded and accept
// current ones — the primitive behind the freshness invariant.
func TestPutResultsGenerationCheck(t *testing.T) {
	c := newServingCache()
	key := resultsKey{testID: "t", quality: false}
	gen := c.gen("t")
	if !c.putResults(key, gen, &Results{TestID: "t"}) {
		t.Fatal("current-generation fill rejected")
	}
	c.invalidateSessions("t")
	if c.putResults(key, gen, &Results{TestID: "t"}) {
		t.Fatal("superseded fill accepted")
	}
	if _, ok := c.resultsFor(key); ok {
		t.Fatal("invalidated results still served")
	}
}

// TestConcurrentResultsNeverStale hammers uploads and results reads
// concurrently (run under -race): any results response must reflect at
// least every upload fully acknowledged before the request started, and
// the final state must equal the oracle.
func TestConcurrentResultsNeverStale(t *testing.T) {
	srv, prep := prepTest(t)
	const uploaders = 8
	const perUploader = 5
	var acked atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan string, 256)

	for u := 0; u < uploaders; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for i := 0; i < perUploader; i++ {
				up := sampleUpload(prep, fmt.Sprintf("w%d-%d", u, i), questionnaire.ChoiceLeft)
				payload, _ := json.Marshal(up)
				req := httptest.NewRequest(http.MethodPost, "/api/tests/srv-test/sessions", bytes.NewReader(payload))
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusCreated {
					errs <- fmt.Sprintf("upload %d-%d: %d", u, i, rec.Code)
					return
				}
				acked.Add(1)
			}
		}(u)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				before := acked.Load()
				req := httptest.NewRequest(http.MethodGet, "/api/tests/srv-test/results", nil)
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- fmt.Sprintf("results: %d", rec.Code)
					return
				}
				var res Results
				if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
					errs <- err.Error()
					return
				}
				if int64(res.Workers) < before {
					errs <- fmt.Sprintf("stale results: %d workers, %d acked before request", res.Workers, before)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	got := getResults(t, srv, false)
	want, err := srv.ConcludeScratch("srv-test", false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("final state diverges from oracle")
	}
}

// Direct store mutations that the incremental path cannot fold in — an
// overwrite of a stored session and a delete — must drop the live state
// and rebuild, never serve stale aggregates.
func TestAccumulatorInvalidationOnStoreMutation(t *testing.T) {
	srv, prep := prepTest(t)
	coll := srv.db.Collection(aggregator.ResponsesCollection)
	for i := 0; i < 4; i++ {
		up := sampleUpload(prep, fmt.Sprintf("w%d", i), questionnaire.ChoiceLeft)
		payload, _ := json.Marshal(up)
		doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil)
	}
	if res := getResults(t, srv, false); res.Workers != 4 {
		t.Fatalf("workers = %d", res.Workers)
	}

	// Overwrite w0's session with different answers via direct Insert.
	up := sampleUpload(prep, "w0", questionnaire.ChoiceRight)
	raw, _ := json.Marshal(up)
	if _, err := coll.Insert(store.Document{
		store.IDField: "srv-test/w0",
		"test_id":     "srv-test",
		"worker_id":   "w0",
		"session":     string(raw),
	}); err != nil {
		t.Fatal(err)
	}
	got := getResults(t, srv, false)
	want, err := srv.ConcludeScratch("srv-test", false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("overwrite not reflected")
	}

	// Delete a session.
	if err := coll.Delete("srv-test/w1"); err != nil {
		t.Fatal(err)
	}
	if res := getResults(t, srv, false); res.Workers != 3 {
		t.Fatalf("workers after delete = %d", res.Workers)
	}
}
