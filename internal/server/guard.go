package server

import (
	"errors"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/guard"
	"kaleidoscope/internal/store"
)

// DegradedHeader marks a response served from cached data while the store
// circuit breaker was open. Clients may keep working from it; operators
// alert on it.
const DegradedHeader = "X-Kscope-Degraded"

// WithGuard wires an overload-protection layer into the server: admission
// control and per-worker rate limiting around every API request, and the
// store circuit breaker (with degraded-mode serving) around the store
// paths. /healthz, /readyz, and /metrics are exempt from admission so the
// server stays observable under overload.
func WithGuard(g *guard.Guard) Option {
	return func(s *Server) { s.guard = g }
}

// classifyRequest maps a request onto its admission class. The boolean is
// false for exempt paths (health, readiness, metrics), which must answer
// even when the API is saturated.
func classifyRequest(r *http.Request) (guard.Class, bool) {
	p := r.URL.Path
	switch p {
	case "/healthz", "/readyz", "/metrics":
		return 0, false
	}
	switch {
	case r.Method == http.MethodPost || r.Method == http.MethodDelete:
		// Deletes are store writes like uploads; admitting them through the
		// read class would let a churn-heavy campaign starve real reads.
		return guard.ClassUpload, true
	case strings.HasSuffix(p, "/results"):
		return guard.ClassResults, true
	default:
		return guard.ClassRead, true
	}
}

// workerKey identifies the client for per-worker rate limiting: the
// extension's worker id header when present, the remote host otherwise.
func workerKey(r *http.Request) string {
	if id := r.Header.Get(guard.WorkerIDHeader); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// retryAfterSeconds renders a Retry-After value: integer seconds, rounded
// up, at least 1 (RFC 9110 allows only whole seconds).
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// writeShed sends an overload rejection. Every shed — 429 from admission or
// rate limiting, 503 from the open breaker — carries Retry-After so a
// well-behaved client backs off by the server's clock, not its own guess.
func writeShed(w http.ResponseWriter, status int, retryAfter time.Duration, format string, args ...any) {
	w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
	writeError(w, status, format, args...)
}

// serveGuarded runs the rate-limit and admission gates before dispatching.
func (s *Server) serveGuarded(w http.ResponseWriter, r *http.Request) {
	class, limited := classifyRequest(r)
	if !limited {
		s.mux.ServeHTTP(w, r)
		return
	}
	if wait, ok := s.guard.AllowWorker(workerKey(r)); !ok {
		writeShed(w, http.StatusTooManyRequests, wait,
			"worker rate limit exceeded; retry after the indicated delay")
		return
	}
	release, ok := s.guard.Admit(r.Context().Done(), class)
	if !ok {
		writeShed(w, http.StatusTooManyRequests, s.guard.RetryAfter(),
			"server overloaded (%s class at capacity)", class)
		return
	}
	defer release()
	s.mux.ServeHTTP(w, r)
}

// breakerOpen reports whether the guard's store breaker currently refuses
// work (degraded mode).
func (s *Server) breakerOpen() bool {
	return s.guard != nil && s.guard.Breaker().State() == guard.StateOpen
}

// serveDegraded writes a 200 from cached data with the degraded marker.
func (s *Server) serveDegraded(w http.ResponseWriter, v any) {
	w.Header().Set(DegradedHeader, "1")
	s.guard.NoteDegraded()
	writeJSON(w, http.StatusOK, v)
}

// writeUnavailable is the degraded-mode answer when nothing cached exists:
// 503 + Retry-After, the honest "come back when the store recovers".
func (s *Server) writeUnavailable(w http.ResponseWriter, what string) {
	s.guard.NoteUnavailable()
	writeShed(w, http.StatusServiceUnavailable, s.guard.RetryAfter(),
		"%s unavailable: storage degraded, retry after the indicated delay", what)
}

// loadServing is the handlers' guarded test-metadata load. It returns the
// entry plus a degraded flag: true means the breaker is open and the entry
// (when non-nil) came from cache rather than a fresh store read. With the
// breaker open and nothing cached it returns guard.ErrUnavailable.
func (s *Server) loadServing(testID string) (*testEntry, bool, error) {
	if s.guard == nil {
		entry, err := s.load(testID)
		return entry, false, err
	}
	if entry, ok := s.cache.test(testID); ok {
		// Cache hits never touch the store; the degraded flag still marks
		// responses produced while the breaker is open so clients and
		// operators can see the server is coasting on cached state.
		return entry, s.breakerOpen(), nil
	}
	done, ok := s.guard.Breaker().Allow()
	if !ok {
		if entry, ok := s.cache.staleTest(testID); ok {
			return entry, true, nil
		}
		return nil, true, guard.ErrUnavailable
	}
	gen := s.cache.gen(testID)
	prep, err := aggregator.LoadPrepared(s.db, testID)
	if err != nil {
		// Not-found is a clean answer from a healthy store; anything else
		// (corruption, I/O trouble) is breaker-relevant.
		if errors.Is(err, store.ErrNotFound) {
			done(guard.Success)
		} else {
			done(guard.Failure)
		}
		return nil, false, err
	}
	done(guard.Success)
	entry := newTestEntry(prep)
	s.cache.putTest(testID, gen, entry)
	return entry, false, nil
}

// handleReady serves GET /readyz: 200 while the server can do real work,
// 503 + Retry-After while the store breaker is open, the node is fenced,
// or the replication follower has fallen past the configured lag bound.
// Load balancers use it to steer new crowds away from a degraded instance;
// /healthz stays a pure liveness check.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	body := map[string]string{"status": "ready"}
	status := http.StatusOK
	if s.guard != nil {
		state := s.guard.Breaker().State()
		body["breaker"] = state.String()
		if state == guard.StateOpen {
			body["status"] = "degraded"
			status = http.StatusServiceUnavailable
		}
	}
	if s.repl != nil {
		lagFrames, _ := s.repl.Lag()
		body["replication"] = s.repl.State()
		body["epoch"] = strconv.FormatUint(s.repl.Epoch(), 10)
		body["repl_lag_frames"] = strconv.FormatUint(lagFrames, 10)
		switch {
		case s.repl.Fenced():
			body["status"] = "fenced"
			status = http.StatusServiceUnavailable
		case s.replMaxLag > 0 && lagFrames > s.replMaxLag:
			body["status"] = "replication-lagging"
			status = http.StatusServiceUnavailable
		}
	}
	if status != http.StatusOK {
		retry := time.Second
		if s.guard != nil {
			retry = s.guard.RetryAfter()
		}
		w.Header().Set("Retry-After", retryAfterSeconds(retry))
	}
	writeJSON(w, status, body)
}
