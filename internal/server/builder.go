package server

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"kaleidoscope/internal/params"
)

// The paper (§III-B) describes a web interface helping experimenters
// generate the JSON test parameters "one by one according to the hint".
// The core server exposes that builder: GET /builder serves the form,
// POST /api/params/build turns the simplified request into a validated
// Table-I document.

// BuilderRequest is the simplified input the builder accepts.
type BuilderRequest struct {
	TestID       string           `json:"test_id"`
	Description  string           `json:"description"`
	Participants int              `json:"participants"`
	Questions    []string         `json:"questions"`
	Webpages     []BuilderWebpage `json:"webpages"`
}

// BuilderWebpage describes one version in builder terms: either a uniform
// load bound or a selector schedule.
type BuilderWebpage struct {
	Path        string `json:"path"`
	MainFile    string `json:"main_file,omitempty"` // default index.html
	Description string `json:"description,omitempty"`
	// UniformLoadMillis sets the scalar page-load form.
	UniformLoadMillis int `json:"uniform_load_millis,omitempty"`
	// Schedule sets the selector form ({"#main": 1000}); wins over the
	// scalar when both are given.
	Schedule map[string]int `json:"schedule,omitempty"`
}

// BuildParams converts a builder request into a validated test-parameter
// document.
func BuildParams(req BuilderRequest) (*params.Test, error) {
	test := &params.Test{
		TestID:          strings.TrimSpace(req.TestID),
		WebpageNum:      len(req.Webpages),
		TestDescription: req.Description,
		ParticipantNum:  req.Participants,
		Questions:       req.Questions,
	}
	for i, wp := range req.Webpages {
		built := params.Webpage{
			WebPath:        strings.TrimSpace(wp.Path),
			WebMainFile:    strings.TrimSpace(wp.MainFile),
			WebDescription: wp.Description,
		}
		if built.WebMainFile == "" {
			built.WebMainFile = "index.html"
		}
		if len(wp.Schedule) > 0 {
			selectors := make([]string, 0, len(wp.Schedule))
			for sel := range wp.Schedule {
				selectors = append(selectors, sel)
			}
			sort.Strings(selectors)
			for _, sel := range selectors {
				built.WebPageLoad.Schedule = append(built.WebPageLoad.Schedule, params.SelectorTime{
					Selector: sel, Millis: wp.Schedule[sel],
				})
			}
		} else {
			built.WebPageLoad = params.PageLoadSpec{UniformMillis: wp.UniformLoadMillis}
		}
		test.Webpages = append(test.Webpages, built)
		_ = i
	}
	if err := test.Validate(); err != nil {
		return nil, err
	}
	return test, nil
}

// maxBuilderBytes caps a builder-request body. Builder documents are a few
// kilobytes of test metadata; a megabyte is already generous, and without a
// bound this endpoint would buffer arbitrarily large bodies.
const maxBuilderBytes = 1 << 20

// handleBuildParams is the POST /api/params/build endpoint.
func (s *Server) handleBuildParams(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBuilderBytes)
	var req BuilderRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"builder request exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding builder request: %v", err)
		return
	}
	test, err := BuildParams(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "building parameters: %v", err)
		return
	}
	data, err := test.Encode()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding parameters: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleBuilderPage serves the interactive form.
func (s *Server) handleBuilderPage(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = fmt.Fprint(w, builderPageHTML)
}

// builderPageHTML is a self-contained form that assembles a builder
// request and shows the generated Table-I document.
const builderPageHTML = `<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>Kaleidoscope — test parameter builder</title>
<style>
body { font-family: sans-serif; max-width: 760px; margin: 24px auto; color: #1b1b1b; }
label { display: block; margin-top: 12px; font-weight: bold; }
input, textarea { width: 100%; padding: 6px; box-sizing: border-box; }
button { margin-top: 16px; padding: 8px 20px; }
pre { background: #f4f4f4; padding: 12px; overflow-x: auto; }
.hint { color: #666; font-size: 13px; font-weight: normal; }
</style>
</head>
<body>
<h1>Test parameter builder</h1>
<p>Fill the fields, add one webpage version per line, and generate the
Table-I JSON document Kaleidoscope consumes.</p>
<label>Test id <span class="hint">identifies the test across Kaleidoscope and the crowdsourcing platform</span></label>
<input id="test_id" value="my-study">
<label>Description</label>
<input id="description" value="Which version do users prefer?">
<label>Participants</label>
<input id="participants" type="number" value="100">
<label>Questions <span class="hint">one per line; answers are constrained to Left / Right / Same</span></label>
<textarea id="questions" rows="2">Which webpage is better?</textarea>
<label>Webpage versions <span class="hint">one per line: path [load-millis], e.g. "wiki-12pt 3000"</span></label>
<textarea id="webpages" rows="3">version-a 3000
version-b 3000</textarea>
<button onclick="build()">Generate</button>
<pre id="out"></pre>
<script>
async function build() {
  const lines = s => s.split("\n").map(l => l.trim()).filter(Boolean);
  const webpages = lines(document.getElementById("webpages").value).map(l => {
    const parts = l.split(/\s+/);
    return { path: parts[0], uniform_load_millis: parts[1] ? parseInt(parts[1], 10) : 0 };
  });
  const req = {
    test_id: document.getElementById("test_id").value,
    description: document.getElementById("description").value,
    participants: parseInt(document.getElementById("participants").value, 10),
    questions: lines(document.getElementById("questions").value),
    webpages: webpages,
  };
  const resp = await fetch("/api/params/build", {
    method: "POST",
    headers: { "Content-Type": "application/json" },
    body: JSON.stringify(req),
  });
  document.getElementById("out").textContent = await resp.text();
}
</script>
</body>
</html>
`
