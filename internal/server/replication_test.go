package server

import (
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"testing"
)

// fakeRepl is a scriptable ReplicationStatus.
type fakeRepl struct {
	epoch      uint64
	fenced     bool
	lagFrames  uint64
	lagBytes   int64
	state      string
	barrierErr error
	barriers   int
}

func (f *fakeRepl) Epoch() uint64        { return f.epoch }
func (f *fakeRepl) Fenced() bool         { return f.fenced }
func (f *fakeRepl) Lag() (uint64, int64) { return f.lagFrames, f.lagBytes }
func (f *fakeRepl) State() string        { return f.state }
func (f *fakeRepl) Barrier() error       { f.barriers++; return f.barrierErr }

func TestEpochHeaderOnEveryResponse(t *testing.T) {
	srv, _ := prepTest(t, WithReplication(&fakeRepl{epoch: 3, state: "steady"}, 0))
	for _, path := range []string{"/healthz", "/readyz", "/api/tests/srv-test", "/api/tests/ghost"} {
		rec := doJSON(t, srv, http.MethodGet, path, nil, nil)
		if got := rec.Header().Get(EpochHeader); got != "3" {
			t.Errorf("GET %s: %s = %q, want 3", path, EpochHeader, got)
		}
	}
}

func TestStaticEpochOption(t *testing.T) {
	srv, _ := prepTest(t, WithEpoch(7))
	rec := doJSON(t, srv, http.MethodGet, "/healthz", nil, nil)
	if got := rec.Header().Get(EpochHeader); got != "7" {
		t.Errorf("%s = %q, want 7", EpochHeader, got)
	}
	rec = doJSON(t, srv, http.MethodGet, "/readyz", nil, nil)
	if rec.Code != http.StatusOK {
		t.Errorf("detached primary readyz = %d, want 200", rec.Code)
	}
}

func TestFencedNodeRefusesWrites(t *testing.T) {
	repl := &fakeRepl{epoch: 1, fenced: true, state: "fenced"}
	srv, prep := prepTest(t, WithReplication(repl, 0))
	up := randomUpload(prep, "w1", rand.New(rand.NewSource(1)))
	payload, _ := json.Marshal(up)
	rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("fenced write = %d, want 503", rec.Code)
	}
	if rec.Header().Get(FencedHeader) != "1" {
		t.Error("fenced rejection must carry the fenced marker")
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("fenced rejection must carry Retry-After")
	}
	// Reads stay available: stale but honest.
	rec = doJSON(t, srv, http.MethodGet, "/api/tests/srv-test", nil, nil)
	if rec.Code != http.StatusOK {
		t.Errorf("fenced read = %d, want 200", rec.Code)
	}
}

func TestReadyzReplicationStates(t *testing.T) {
	for _, tc := range []struct {
		name       string
		repl       *fakeRepl
		maxLag     uint64
		wantCode   int
		wantStatus string
	}{
		{"steady", &fakeRepl{epoch: 1, state: "steady"}, 10, http.StatusOK, "ready"},
		{"lag-within-bound", &fakeRepl{epoch: 1, state: "steady", lagFrames: 10}, 10, http.StatusOK, "ready"},
		{"lagging", &fakeRepl{epoch: 1, state: "catchup", lagFrames: 11}, 10, http.StatusServiceUnavailable, "replication-lagging"},
		{"lag-unbounded", &fakeRepl{epoch: 1, state: "catchup", lagFrames: 9999}, 0, http.StatusOK, "ready"},
		{"fenced", &fakeRepl{epoch: 1, state: "fenced", fenced: true}, 10, http.StatusServiceUnavailable, "fenced"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv, _ := prepTest(t, WithReplication(tc.repl, tc.maxLag))
			var body map[string]string
			rec := doJSON(t, srv, http.MethodGet, "/readyz", nil, nil)
			if rec.Code != tc.wantCode {
				t.Fatalf("readyz = %d, want %d (%s)", rec.Code, tc.wantCode, rec.Body.String())
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
				t.Fatal(err)
			}
			if body["status"] != tc.wantStatus {
				t.Errorf("status = %q, want %q", body["status"], tc.wantStatus)
			}
			if body["replication"] != tc.repl.state {
				t.Errorf("replication = %q, want %q", body["replication"], tc.repl.state)
			}
			if tc.wantCode != http.StatusOK && rec.Header().Get("Retry-After") == "" {
				t.Error("not-ready answer must carry Retry-After")
			}
		})
	}
}

// TestDuplicateAckRunsBarrier: a 409 acknowledges a record stored by an
// earlier attempt whose replication may be unconfirmed; it may only be
// sent after a successful replication barrier, and a failing barrier must
// turn into a retriable 503, never a phantom ack.
func TestDuplicateAckRunsBarrier(t *testing.T) {
	repl := &fakeRepl{epoch: 1, state: "steady"}
	srv, prep := prepTest(t, WithReplication(repl, 0))
	up := randomUpload(prep, "w1", rand.New(rand.NewSource(2)))
	payload, _ := json.Marshal(up)
	if rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil); rec.Code != http.StatusCreated {
		t.Fatalf("first upload = %d: %s", rec.Code, rec.Body.String())
	}
	if rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate = %d, want 409", rec.Code)
	}
	if repl.barriers == 0 {
		t.Fatal("409 was sent without a replication barrier")
	}

	repl.barrierErr = errors.New("follower unreachable")
	rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("duplicate with failing barrier = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("barrier-failure answer must carry Retry-After")
	}
}

// TestBatchDuplicateAckRunsBarrier: the batch path owes duplicates the
// same barrier discipline as the single path.
func TestBatchDuplicateAckRunsBarrier(t *testing.T) {
	repl := &fakeRepl{epoch: 1, state: "steady"}
	srv, prep := prepTest(t, WithReplication(repl, 0))
	rng := rand.New(rand.NewSource(3))
	payload, _ := json.Marshal([]SessionUpload{
		randomUpload(prep, "w1", rng),
		randomUpload(prep, "w2", rng),
	})
	if rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions:batch", payload, nil); rec.Code != http.StatusOK {
		t.Fatalf("first batch = %d: %s", rec.Code, rec.Body.String())
	}
	before := repl.barriers
	repl.barrierErr = errors.New("follower unreachable")
	rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions:batch", payload, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("all-duplicate batch with failing barrier = %d, want 503", rec.Code)
	}
	if repl.barriers == before {
		t.Error("batch 409s were prepared without a replication barrier")
	}
}
