package server

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/guard"
	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/store"
)

// postBatch posts a raw batch body (optionally gzip-compressed on the wire)
// and decodes the BatchReport regardless of status: the batch endpoint
// answers with a report even on stream-level failures.
func postBatch(t *testing.T, srv *Server, body []byte, gzipped bool) (*httptest.ResponseRecorder, BatchReport) {
	t.Helper()
	if gzipped {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(body); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		body = buf.Bytes()
	}
	req := httptest.NewRequest(http.MethodPost, "/api/tests/srv-test/sessions:batch", bytes.NewReader(body))
	if gzipped {
		req.Header.Set("Content-Encoding", "gzip")
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var report BatchReport
	if err := json.Unmarshal(rec.Body.Bytes(), &report); err != nil {
		t.Fatalf("decoding batch report (status %d): %v (body %s)", rec.Code, err, rec.Body.String())
	}
	return rec, report
}

// marshalBatch renders a JSON array of uploads.
func marshalBatch(t *testing.T, uploads []SessionUpload) []byte {
	t.Helper()
	payload, err := json.Marshal(uploads)
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// variedUploads builds n sessions of deliberately varying shape — different
// response counts, comment lengths, and absent optional fields — so pooled
// decode state that leaked between elements would corrupt at least one of
// them.
func variedUploads(t *testing.T, prep *aggregator.Prepared, n int) []SessionUpload {
	t.Helper()
	choices := []questionnaire.Choice{questionnaire.ChoiceLeft, questionnaire.ChoiceRight, questionnaire.ChoiceSame}
	uploads := make([]SessionUpload, n)
	for i := range uploads {
		up := sampleUpload(prep, fmt.Sprintf("bw%03d", i), choices[i%len(choices)])
		switch i % 3 {
		case 1:
			// Shorter than its neighbors: a stale pooled slice would leave
			// ghost responses from the previous element.
			up.Responses = up.Responses[:1]
			up.Behaviors = up.Behaviors[:1]
			up.Controls = nil
		case 2:
			up.Responses[0].Comment = strings.Repeat("detail ", i+1)
		}
		uploads[i] = up
	}
	return uploads
}

// The differential suite: a batch of N sessions must leave storage — every
// stored document, byte for byte — and the concluded results identical to N
// single uploads of the same sessions against an identically prepared server.
func TestBatchDifferentialAgainstSingles(t *testing.T) {
	single, prep := prepTest(t)
	batch, _ := prepTest(t)
	uploads := variedUploads(t, prep, 9)

	for _, up := range uploads {
		payload, err := json.Marshal(up)
		if err != nil {
			t.Fatal(err)
		}
		rec := doJSON(t, single, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil)
		if rec.Code != http.StatusCreated {
			t.Fatalf("single upload %s: %d %s", up.WorkerID, rec.Code, rec.Body.String())
		}
	}
	rec, report := postBatch(t, batch, marshalBatch(t, uploads), false)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d: %s", rec.Code, rec.Body.String())
	}
	if report.Accepted != len(uploads) || report.Rejected != 0 {
		t.Fatalf("report = %+v", report)
	}
	for i, res := range report.Results {
		if res.Status != http.StatusCreated || res.Index != i || res.WorkerID != uploads[i].WorkerID {
			t.Errorf("element %d = %+v", i, res)
		}
	}

	// Stored documents must be byte-identical across the two paths.
	singleDocs := single.db.Collection(aggregator.ResponsesCollection).FindEq("test_id", "srv-test")
	if len(singleDocs) != len(uploads) {
		t.Fatalf("single stored %d sessions, want %d", len(singleDocs), len(uploads))
	}
	for _, doc := range singleDocs {
		got, err := batch.db.Collection(aggregator.ResponsesCollection).Get(doc.ID())
		if err != nil {
			t.Fatalf("batch store missing %s: %v", doc.ID(), err)
		}
		if !reflect.DeepEqual(got, doc) {
			t.Errorf("doc %s differs:\n batch: %v\nsingle: %v", doc.ID(), got, doc)
		}
	}

	// And so must every conclusion surface: raw, quality-controlled, and the
	// from-scratch oracle.
	for _, useQC := range []bool{false, true} {
		want, err := single.ConcludeScratch("srv-test", useQC)
		if err != nil {
			t.Fatal(err)
		}
		got, err := batch.ConcludeScratch("srv-test", useQC)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("qc=%v results differ:\n batch: %+v\nsingle: %+v", useQC, got, want)
		}
	}
	var viaHTTPSingle, viaHTTPBatch Results
	doJSON(t, single, http.MethodGet, "/api/tests/srv-test/results?quality=1", nil, &viaHTTPSingle)
	doJSON(t, batch, http.MethodGet, "/api/tests/srv-test/results?quality=1", nil, &viaHTTPBatch)
	if !reflect.DeepEqual(viaHTTPBatch, viaHTTPSingle) {
		t.Errorf("HTTP results differ:\n batch: %+v\nsingle: %+v", viaHTTPBatch, viaHTTPSingle)
	}
}

// A batch larger than the commit chunk exercises the mid-stream flush path.
func TestBatchSpansMultipleChunks(t *testing.T) {
	defer func(old int) { batchChunkSize = old }(batchChunkSize)
	batchChunkSize = 4
	srv, prep := prepTest(t)
	uploads := variedUploads(t, prep, 11)
	rec, report := postBatch(t, srv, marshalBatch(t, uploads), false)
	if rec.Code != http.StatusOK || report.Accepted != 11 {
		t.Fatalf("status=%d report=%+v", rec.Code, report)
	}
	if got := srv.db.Collection(aggregator.ResponsesCollection).CountEq("test_id", "srv-test"); got != 11 {
		t.Errorf("stored %d sessions, want 11", got)
	}
}

// Element-level failures: an invalid element mid-array is rejected with a
// per-element 400 while its neighbors commit; duplicates — against storage
// and within the batch — answer per-element 409.
func TestBatchElementErrors(t *testing.T) {
	srv, prep := prepTest(t)
	// Pre-store bw000 through the single path.
	payload, _ := json.Marshal(sampleUpload(prep, "bw000", questionnaire.ChoiceLeft))
	if rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil); rec.Code != http.StatusCreated {
		t.Fatal(rec.Code)
	}

	bad := sampleUpload(prep, "bad-page", questionnaire.ChoiceLeft)
	bad.Responses[0].PageID = "ghost-page"
	noWorker := sampleUpload(prep, "", questionnaire.ChoiceLeft)
	uploads := []SessionUpload{
		sampleUpload(prep, "bw000", questionnaire.ChoiceLeft), // dup vs stored
		sampleUpload(prep, "fresh-1", questionnaire.ChoiceLeft),
		bad,      // unknown page -> 400
		noWorker, // missing worker_id -> 400
		sampleUpload(prep, "fresh-2", questionnaire.ChoiceRight),
		sampleUpload(prep, "fresh-2", questionnaire.ChoiceRight), // dup within batch
	}
	rec, report := postBatch(t, srv, marshalBatch(t, uploads), false)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d: %s", rec.Code, rec.Body.String())
	}
	wantStatuses := []int{409, 201, 400, 400, 201, 409}
	for i, want := range wantStatuses {
		if report.Results[i].Status != want {
			t.Errorf("element %d status = %d (%s), want %d",
				i, report.Results[i].Status, report.Results[i].Error, want)
		}
	}
	if report.Accepted != 2 || report.Rejected != 4 {
		t.Errorf("accepted/rejected = %d/%d, want 2/4", report.Accepted, report.Rejected)
	}
	if got := srv.db.Collection(aggregator.ResponsesCollection).CountEq("test_id", "srv-test"); got != 3 {
		t.Errorf("stored %d sessions, want 3", got)
	}
}

// An element over the per-session byte budget gets a per-element 413 and its
// neighbors still commit.
func TestBatchElementTooLarge(t *testing.T) {
	srv, prep := prepTest(t)
	huge := sampleUpload(prep, "huge", questionnaire.ChoiceLeft)
	huge.Responses[0].Comment = strings.Repeat("x", maxSessionBytes+1024)
	uploads := []SessionUpload{
		sampleUpload(prep, "small-1", questionnaire.ChoiceLeft),
		huge,
		sampleUpload(prep, "small-2", questionnaire.ChoiceRight),
	}
	rec, report := postBatch(t, srv, marshalBatch(t, uploads), false)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d", rec.Code)
	}
	want := []int{201, 413, 201}
	for i, w := range want {
		if report.Results[i].Status != w {
			t.Errorf("element %d status = %d, want %d", i, report.Results[i].Status, w)
		}
	}
	if got := srv.db.Collection(aggregator.ResponsesCollection).CountEq("test_id", "srv-test"); got != 2 {
		t.Errorf("stored %d sessions, want 2", got)
	}
}

// A batch over the whole-payload byte budget fails with 413, keeping the
// elements that decoded before the budget ran out (partial accept).
func TestBatchWholePayloadTooLarge(t *testing.T) {
	defer func(old int64) { maxBatchBytes = old }(maxBatchBytes)
	srv, prep := prepTest(t)
	uploads := variedUploads(t, prep, 6)
	payload := marshalBatch(t, uploads)
	// Enough for the first two elements, not the batch: the array opener,
	// both elements, the separating comma, and a few bytes of slack.
	first, _ := json.Marshal(uploads[0])
	second, _ := json.Marshal(uploads[1])
	maxBatchBytes = int64(1 + len(first) + 1 + len(second) + 8)
	rec, report := postBatch(t, srv, payload, false)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%s)", rec.Code, rec.Body.String())
	}
	if report.Error == "" {
		t.Error("413 report must carry the stream error")
	}
	stored := srv.db.Collection(aggregator.ResponsesCollection).CountEq("test_id", "srv-test")
	if stored != report.Accepted {
		t.Errorf("stored %d but report accepted %d", stored, report.Accepted)
	}
	if report.Accepted < 1 {
		t.Errorf("partial accept expected at least the first element, got %d", report.Accepted)
	}
}

// A batch with more elements than allowed fails with 413 after committing
// the allowed prefix.
func TestBatchTooManySessions(t *testing.T) {
	defer func(old int) { maxBatchSessions = old }(maxBatchSessions)
	maxBatchSessions = 3
	srv, prep := prepTest(t)
	rec, report := postBatch(t, srv, marshalBatch(t, variedUploads(t, prep, 5)), false)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", rec.Code)
	}
	if report.Accepted != 3 {
		t.Errorf("accepted = %d, want the allowed prefix of 3", report.Accepted)
	}
}

// Stream-level malformations: trailing garbage after the array, and a body
// that is not an array at all, both answer 400. Garbage after the array
// still commits the array's elements.
func TestBatchMalformedStream(t *testing.T) {
	srv, prep := prepTest(t)
	payload := marshalBatch(t, variedUploads(t, prep, 2))
	rec, report := postBatch(t, srv, append(payload, []byte(`{"junk":1}`)...), false)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("trailing garbage status = %d, want 400", rec.Code)
	}
	if report.Accepted != 2 {
		t.Errorf("accepted = %d, want 2 (array elements commit before the garbage)", report.Accepted)
	}

	rec, _ = postBatch(t, srv, []byte(`{"not":"an array"}`), false)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("non-array status = %d, want 400", rec.Code)
	}
	rec, _ = postBatch(t, srv, []byte(`[{"worker_id":`), false)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("truncated body status = %d, want 400", rec.Code)
	}
}

// A client that hung up mid-stream gets 408 and the uncommitted chunk is
// dropped: no work is persisted for a dead client.
func TestBatchClientCancel(t *testing.T) {
	srv, prep := prepTest(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	payload := marshalBatch(t, variedUploads(t, prep, 3))
	req := httptest.NewRequest(http.MethodPost, "/api/tests/srv-test/sessions:batch", bytes.NewReader(payload)).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408", rec.Code)
	}
	if got := srv.db.Collection(aggregator.ResponsesCollection).CountEq("test_id", "srv-test"); got != 0 {
		t.Errorf("stored %d sessions for a canceled request, want 0", got)
	}
}

// Gzip happy path: a compressed batch decodes and commits like a plain one,
// and batch metrics are exported.
func TestBatchGzip(t *testing.T) {
	g := guard.New(guard.Config{RetryAfter: time.Second})
	srv, prep, _, reg := prepGuardedTest(t, g)
	uploads := variedUploads(t, prep, 5)
	rec, report := postBatch(t, srv, marshalBatch(t, uploads), true)
	if rec.Code != http.StatusOK || report.Accepted != 5 {
		t.Fatalf("status=%d report=%+v", rec.Code, report)
	}
	if got := reg.Counter("kscope_batch_requests_total").Value(); got != 1 {
		t.Errorf("batch requests counter = %d, want 1", got)
	}
	if got := reg.Counter("kscope_batch_sessions_total", "status", "201").Value(); got != 5 {
		t.Errorf("batch sessions 201 counter = %d, want 5", got)
	}
}

// A truncated gzip stream is a 400 with partial accept of what decoded.
func TestBatchGzipTruncated(t *testing.T) {
	srv, prep := prepTest(t)
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(marshalBatch(t, variedUploads(t, prep, 4))); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	req := httptest.NewRequest(http.MethodPost, "/api/tests/srv-test/sessions:batch", bytes.NewReader(cut))
	req.Header.Set("Content-Encoding", "gzip")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("truncated gzip status = %d, want 400 (%s)", rec.Code, rec.Body.String())
	}
}

// A gzip bomb — tiny on the wire, huge decompressed — is stopped by the
// decompressed-byte budget with 413, not by memory exhaustion.
func TestBatchGzipBomb(t *testing.T) {
	defer func(old int64) { maxBatchBytes = old }(maxBatchBytes)
	maxBatchBytes = 64 << 10
	srv, _ := prepTest(t)
	// A megabyte of JSON whitespace compresses to almost nothing.
	bomb := append([]byte("["), bytes.Repeat([]byte(" "), 1<<20)...)
	rec, _ := postBatch(t, srv, bomb, true)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("bomb status = %d, want 413 (%s)", rec.Code, rec.Body.String())
	}
}

// With the store breaker open the batch endpoint sheds up front: 503 +
// Retry-After before any decoding.
func TestBatchShedWhileBreakerOpen(t *testing.T) {
	g := guard.New(guard.Config{
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		BreakerProbes:    1,
		RetryAfter:       time.Second,
	})
	srv, prep, ffs, _ := prepGuardedTest(t, g)
	tripBreaker(t, srv, prep, ffs, g)
	rec, _ := postBatch(t, srv, marshalBatch(t, variedUploads(t, prep, 2)), false)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("shed batch must carry Retry-After")
	}
}

// A storage fault mid-flush fails the batch with 503 + Retry-After (guard
// wired) and counts against the breaker.
func TestBatchStorageFault(t *testing.T) {
	g := guard.New(guard.Config{
		BreakerThreshold: 100, // keep it closed; we only check the response
		BreakerCooldown:  time.Minute,
		RetryAfter:       time.Second,
	})
	srv, prep, ffs, _ := prepGuardedTest(t, g)
	ffs.FailAppendsAfter(0, store.ErrNoSpace, false)
	rec, _ := postBatch(t, srv, marshalBatch(t, variedUploads(t, prep, 2)), false)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (%s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("storage-fault 503 must carry Retry-After")
	}
}

// Batch uploads ride the same accumulator hooks as singles: results arrive
// incrementally without a scratch recompute.
func TestBatchFoldsIntoIncrementalResults(t *testing.T) {
	srv, prep := prepTest(t)
	var before Results
	doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results", nil, &before)
	rec, _ := postBatch(t, srv, marshalBatch(t, variedUploads(t, prep, 6)), false)
	if rec.Code != http.StatusOK {
		t.Fatal(rec.Code)
	}
	var after Results
	doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results", nil, &after)
	if after.Workers != 6 {
		t.Errorf("workers = %d, want 6", after.Workers)
	}
	oracle, err := srv.ConcludeScratch("srv-test", false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&after, oracle) {
		t.Errorf("incremental after batch = %+v, oracle = %+v", after, oracle)
	}
}

// An unknown test id on the batch route is a 404, mirroring the single path.
func TestBatchUnknownTest(t *testing.T) {
	srv, _ := prepTest(t)
	req := httptest.NewRequest(http.MethodPost, "/api/tests/ghost/sessions:batch", strings.NewReader("[]"))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("status = %d, want 404", rec.Code)
	}
}

// An empty batch is a well-formed no-op.
func TestBatchEmpty(t *testing.T) {
	srv, _ := prepTest(t)
	rec, report := postBatch(t, srv, []byte("[]"), false)
	if rec.Code != http.StatusOK || report.Accepted != 0 || report.Rejected != 0 {
		t.Errorf("status=%d report=%+v", rec.Code, report)
	}
}
