package server

import (
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Replication headers.
const (
	// EpochHeader advertises the serving node's replication epoch on every
	// response. Clients remember the highest epoch they have seen; a node
	// answering with a lower one is a deposed primary.
	EpochHeader = "X-Kscope-Epoch"
	// FencedHeader marks a write rejected because this node has been
	// fenced by a newer primary. The client should fail over, not retry
	// here.
	FencedHeader = "X-Kscope-Fenced"
)

// ReplicationStatus is the server's live view of its replication role.
// replica.Primary satisfies it directly.
type ReplicationStatus interface {
	// Epoch is the term this node serves in.
	Epoch() uint64
	// Fenced reports whether a newer primary has taken over.
	Fenced() bool
	// Lag is how far the follower trails: unacked frames and bytes.
	Lag() (frames uint64, bytes int64)
	// State names the stream state ("connecting", "catchup", "steady",
	// "fenced", or "detached" for a primary with no follower).
	State() string
	// Barrier blocks until everything written so far is follower-acked
	// (or returns an error when the stream cannot confirm it in time).
	// The duplicate-upload path runs it before answering 409: a 409 is an
	// acknowledgement, and under follower-acked replication no record may
	// be acknowledged while its replication is unconfirmed.
	Barrier() error
}

// WithReplication wires replication awareness into the server: the epoch
// header on every response, write fencing once deposed, and /readyz
// accounting for replication lag. maxLagFrames > 0 turns excessive lag
// into a not-ready signal (load balancers stop sending new crowds to a
// primary whose standby has fallen too far behind); 0 disables the check.
func WithReplication(rs ReplicationStatus, maxLagFrames uint64) Option {
	return func(s *Server) {
		s.repl = rs
		s.replMaxLag = maxLagFrames
	}
}

// WithEpoch advertises a fixed epoch with no live stream behind it — the
// shape of a freshly promoted primary that has no standby yet.
func WithEpoch(epoch uint64) Option {
	return func(s *Server) { s.repl = staticEpoch(epoch) }
}

// staticEpoch is the degenerate ReplicationStatus of a detached primary.
type staticEpoch uint64

func (e staticEpoch) Epoch() uint64      { return uint64(e) }
func (staticEpoch) Fenced() bool         { return false }
func (staticEpoch) Lag() (uint64, int64) { return 0, 0 }
func (staticEpoch) State() string        { return "detached" }
func (staticEpoch) Barrier() error       { return nil }

// replWriteRefused maps a failed store write on a fenced node to the
// failover answer. A primary can lose leadership between replPreamble and
// the write itself — the follower rejects its epoch mid-request — and the
// resulting ship error is not an infrastructure fault: it means a newer
// primary owns the data now. 503 + the fenced marker steers the client to
// rotate instead of retrying here. Returns true when it wrote the response.
func (s *Server) replWriteRefused(w http.ResponseWriter, err error) bool {
	if s.repl == nil || !s.repl.Fenced() {
		return false
	}
	w.Header().Set(FencedHeader, "1")
	writeShed(w, http.StatusServiceUnavailable, time.Second,
		"write refused: epoch %d lost leadership to a newer primary: %v", s.repl.Epoch(), err)
	return true
}

// replAckBarrier guards an acknowledgement (201 already carries it via the
// write itself; this is for 409, which acknowledges a record stored by an
// earlier, possibly unreplicated attempt). On barrier failure it writes
// the retry answer and returns false — the caller must not send the 409.
func (s *Server) replAckBarrier(w http.ResponseWriter) bool {
	if s.repl == nil {
		return true
	}
	err := s.repl.Barrier()
	if err == nil {
		return true
	}
	if !s.replWriteRefused(w, err) {
		writeShed(w, http.StatusServiceUnavailable, time.Second,
			"session stored but its replication is unconfirmed: %v; retry after the indicated delay", err)
	}
	return false
}

// replPreamble stamps the epoch header and intercepts writes on a fenced
// node. It returns false when the request was fully answered (fenced).
func (s *Server) replPreamble(w http.ResponseWriter, r *http.Request) bool {
	if s.repl == nil {
		return true
	}
	w.Header().Set(EpochHeader, strconv.FormatUint(s.repl.Epoch(), 10))
	if s.repl.Fenced() && r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/api/") {
		// A fenced primary must not take writes: they could never be
		// acknowledged (the follower refuses its epoch) and accepting
		// them would fork history against the promoted node. Reads stay
		// available — stale but honest, like degraded mode.
		w.Header().Set(FencedHeader, "1")
		writeShed(w, http.StatusServiceUnavailable, time.Second,
			"fenced: a newer primary holds epoch %d leadership; write refused", s.repl.Epoch())
		return false
	}
	return true
}
