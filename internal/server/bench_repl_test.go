package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/params"
	"kaleidoscope/internal/replica"
	"kaleidoscope/internal/store"
	"kaleidoscope/internal/webgen"
)

// benchPrepareInto prepares the standard srv-test fixture into an
// already-open database (prepTest always opens its own memory store; the
// replication benchmarks need dir-backed and replicated ones).
func benchPrepareInto(b *testing.B, db *store.DB) (*Server, *aggregator.Prepared) {
	b.Helper()
	blobs := store.NewBlobStore()
	agg, err := aggregator.New(db, blobs)
	if err != nil {
		b.Fatal(err)
	}
	test := &params.Test{
		TestID:          "srv-test",
		WebpageNum:      2,
		TestDescription: "replication bench",
		ParticipantNum:  10,
		Questions:       []string{"Which webpage's font size is more suitable (easier) for reading?"},
		Webpages: []params.Webpage{
			{WebPath: "a", WebPageLoad: params.PageLoadSpec{UniformMillis: 1000}, WebMainFile: "index.html"},
			{WebPath: "b", WebPageLoad: params.PageLoadSpec{UniformMillis: 1000}, WebMainFile: "index.html"},
		},
	}
	sites := map[string]*webgen.Site{
		"a": webgen.WikiArticle(webgen.WikiConfig{Seed: 1, FontSizePt: 12}),
		"b": webgen.WikiArticle(webgen.WikiConfig{Seed: 1, FontSizePt: 22}),
	}
	prep, err := agg.Prepare(test, sites, nil)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(db, blobs)
	if err != nil {
		b.Fatal(err)
	}
	return srv, prep
}

// uploadLoop drives b.N single-session POSTs through srv.
func uploadLoop(b *testing.B, srv *Server, prep *aggregator.Prepared) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		payload := benchSessionPayload(b, prep, fmt.Sprintf("bench-%09d", i))
		req := httptest.NewRequest(http.MethodPost, "/api/tests/srv-test/sessions", bytes.NewReader(payload))
		rec := httptest.NewRecorder()
		b.StartTimer()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusCreated {
			b.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkSessionUploadDurable is the replication baseline: the same
// single-session path over a dir-backed SyncAlways store, no follower.
// BenchmarkSessionUploadReplicated divides against this, not against the
// memory-backed BenchmarkSessionUploadHTTP — the overhead budget should
// price the follower round-trip, not the fsync.
func BenchmarkSessionUploadDurable(b *testing.B) {
	db, err := store.Open(b.TempDir(), store.WithSyncPolicy(store.SyncAlways))
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	srv, prep := benchPrepareInto(b, db)
	uploadLoop(b, srv, prep)
}

// BenchmarkSessionUploadReplicated is the full warm-standby write path: a
// dir-backed SyncAlways store whose every WAL append is framed, shipped to
// a loopback HTTP follower, applied and fsynced there, and only then
// acknowledged (AckFollower). The final lag-frames metric must be zero —
// an acked upload with nonzero lag would mean the ack mode lies.
func BenchmarkSessionUploadReplicated(b *testing.B) {
	follower, err := replica.NewFollower(replica.FollowerConfig{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	fts := httptest.NewServer(follower)
	defer fts.Close()
	prim, err := replica.NewPrimary(replica.PrimaryConfig{
		FollowerURL:   fts.URL,
		Epoch:         1,
		Mode:          replica.AckFollower,
		RetryInterval: time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer prim.Close()
	db, err := store.OpenBackend(store.Replicated(b.TempDir(), prim),
		store.WithSyncPolicy(store.SyncAlways))
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	prim.Bind(db)
	srv, prep := benchPrepareInto(b, db)
	uploadLoop(b, srv, prep)
	b.StopTimer()
	lagFrames, _ := prim.Lag()
	b.ReportMetric(float64(lagFrames), "lag-frames")
	if lagFrames != 0 {
		b.Fatalf("replication lag after acked uploads = %d frames, want 0", lagFrames)
	}
}
