package server

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/stats"
)

// uploadOne posts one session and returns the recorder.
func uploadOne(t *testing.T, srv *Server, prep *aggregator.Prepared, worker string, choice questionnaire.Choice) *recorderWrap {
	t.Helper()
	up := sampleUpload(prep, worker, choice)
	payload, err := json.Marshal(up)
	if err != nil {
		t.Fatal(err)
	}
	rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil)
	return &recorderWrap{rec.Code, rec.Header().Get(ConcludedHeader), rec.Body.String()}
}

type recorderWrap struct {
	code      int
	concluded string
	body      string
}

// The prepTest fixture has one real page and one question: a single
// evidence stream at alpha=0.05 decides on the 8th unanimous vote
// (E_8 = 2^8/9 >= 20). Uploads after the decision must be acknowledged
// 200 + X-Kscope-Concluded without being stored, and results must carry
// the decision metadata.
func TestEarlyStopConcludesUploads(t *testing.T) {
	srv, prep := prepTest(t, WithEarlyStop(EarlyStopConfig{Alpha: 0.05}))
	for i := 0; i < 8; i++ {
		r := uploadOne(t, srv, prep, workerName(i), questionnaire.ChoiceLeft)
		if r.code != http.StatusCreated {
			t.Fatalf("upload %d status = %d (%s)", i, r.code, r.body)
		}
		if r.concluded != "" {
			t.Fatalf("upload %d already concluded", i)
		}
	}
	// 9th upload: concluded, not stored.
	r := uploadOne(t, srv, prep, "straggler", questionnaire.ChoiceRight)
	if r.code != http.StatusOK || r.concluded != "1" {
		t.Fatalf("post-decision upload = %d, header %q (%s)", r.code, r.concluded, r.body)
	}

	var res Results
	rec := doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results", nil, &res)
	if rec.Code != http.StatusOK {
		t.Fatalf("results status = %d", rec.Code)
	}
	if res.Workers != 8 {
		t.Fatalf("straggler was stored: workers = %d", res.Workers)
	}
	if !res.Concluded || res.Decision == nil {
		t.Fatalf("results carry no decision: %+v", res)
	}
	d := res.Decision
	if d.Winner != questionnaire.ChoiceLeft || d.NUsed != 8 || d.Sessions != 8 || d.Streams != 1 {
		t.Fatalf("decision = %+v", d)
	}
	if d.PValueBound > 0.05 {
		t.Fatalf("decision p bound %v > alpha", d.PValueBound)
	}

	// The batch endpoint shares the concluded semantics.
	up := sampleUpload(prep, "batch-straggler", questionnaire.ChoiceLeft)
	batch, _ := json.Marshal([]SessionUpload{up})
	recB := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions:batch", batch, nil)
	if recB.Code != http.StatusOK || recB.Header().Get(ConcludedHeader) != "1" {
		t.Fatalf("batch post-decision = %d, header %q", recB.Code, recB.Header().Get(ConcludedHeader))
	}

	// Deleting the test purges the latched decision.
	recD := doJSON(t, srv, http.MethodDelete, "/api/tests/srv-test", nil, nil)
	if recD.Code != http.StatusOK {
		t.Fatalf("delete status = %d", recD.Code)
	}
	if srv.early.decision("srv-test") != nil {
		t.Fatal("decision survived test deletion")
	}
}

func workerName(i int) string {
	return "worker-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

// Balanced evidence must never conclude, and an undecided test's results
// payload must be byte-identical to a server without the engine.
func TestEarlyStopUndecidedByteIdentical(t *testing.T) {
	plain, prepPlain := prepTest(t)
	early, prepEarly := prepTest(t, WithEarlyStop(EarlyStopConfig{Alpha: 0.05}))

	for i := 0; i < 30; i++ {
		choice := questionnaire.ChoiceLeft
		if i%2 == 1 {
			choice = questionnaire.ChoiceRight
		}
		if r := uploadOne(t, plain, prepPlain, workerName(i), choice); r.code != http.StatusCreated {
			t.Fatalf("plain upload %d = %d", i, r.code)
		}
		r := uploadOne(t, early, prepEarly, workerName(i), choice)
		if r.code != http.StatusCreated {
			t.Fatalf("early upload %d = %d (%s)", i, r.code, r.body)
		}
		if r.concluded != "" {
			t.Fatalf("balanced stream concluded at %d", i)
		}
	}
	for _, path := range []string{
		"/api/tests/srv-test/results",
		"/api/tests/srv-test/results?quality=1",
	} {
		recP := doJSON(t, plain, http.MethodGet, path, nil, nil)
		recE := doJSON(t, early, http.MethodGet, path, nil, nil)
		if recP.Code != http.StatusOK || recE.Code != http.StatusOK {
			t.Fatalf("%s: %d vs %d", path, recP.Code, recE.Code)
		}
		if recP.Body.String() != recE.Body.String() {
			t.Fatalf("%s: undecided results diverge:\n%s\nvs\n%s", path, recP.Body.String(), recE.Body.String())
		}
	}
}

// Differential honesty check: for every seeded campaign the engine
// declares decided, the fixed-n two-proportion test on the same
// accumulator tallies must agree on the winner direction.
func TestEarlyStopDecisionAgreesWithFixedN(t *testing.T) {
	for _, tc := range []struct {
		seed  int64
		pLeft float64
	}{
		{1, 0.9}, {2, 0.85}, {3, 0.8}, {4, 0.15}, {5, 0.1},
	} {
		srv, prep := prepTest(t, WithEarlyStop(EarlyStopConfig{Alpha: 0.05}))
		rng := rand.New(rand.NewSource(tc.seed))
		decided := false
		for i := 0; i < 120 && !decided; i++ {
			choice := questionnaire.ChoiceRight
			if rng.Float64() < tc.pLeft {
				choice = questionnaire.ChoiceLeft
			}
			r := uploadOne(t, srv, prep, workerName(i), choice)
			switch r.code {
			case http.StatusCreated:
			case http.StatusOK:
				decided = true
			default:
				t.Fatalf("seed %d upload %d = %d (%s)", tc.seed, i, r.code, r.body)
			}
		}
		if !decided {
			t.Fatalf("seed %d (pLeft=%.2f): never decided in 120 sessions", tc.seed, tc.pLeft)
		}
		var res Results
		if rec := doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results", nil, &res); rec.Code != http.StatusOK {
			t.Fatalf("results = %d", rec.Code)
		}
		if !res.Concluded || res.Decision == nil {
			t.Fatalf("seed %d: decided test has no decision in results", tc.seed)
		}
		var tally *questionnaire.Tally
		for i := range res.Pages {
			if res.Pages[i].Kind == aggregator.KindReal && res.Pages[i].PageID == res.Decision.PageID {
				tally = &res.Pages[i].Tally
			}
		}
		if tally == nil {
			t.Fatalf("seed %d: deciding page %q missing from results", tc.seed, res.Decision.PageID)
		}
		decisive := tally.Left + tally.Right
		fixed, err := stats.TwoProportionTest(tally.Left, decisive, tally.Right, decisive)
		if err != nil {
			t.Fatalf("seed %d: fixed-n test: %v", tc.seed, err)
		}
		wantLeft := fixed.P1 > fixed.P2
		gotLeft := res.Decision.Winner == questionnaire.ChoiceLeft
		if wantLeft != gotLeft {
			t.Fatalf("seed %d: engine winner %q disagrees with fixed-n direction (tally %d/%d, z=%.2f)",
				tc.seed, res.Decision.Winner, tally.Left, tally.Right, fixed.Z)
		}
	}
}

// A latched decision survives engine-state invalidation, and a fresh
// server over the same storage re-derives the decision by replaying the
// stored sessions on its first fold.
func TestEarlyStopDecisionDurability(t *testing.T) {
	srv, prep := prepTest(t, WithEarlyStop(EarlyStopConfig{Alpha: 0.05}))
	// Worker names chosen to sort before the post-restart stragglers:
	// the rebuild replays stored sessions in document-id order, so the
	// replayed path must match the arrival path for the latch to
	// re-derive identically.
	for i := 0; i < 8; i++ {
		if r := uploadOne(t, srv, prep, "a-"+workerName(i), questionnaire.ChoiceLeft); r.code != http.StatusCreated {
			t.Fatalf("upload %d = %d", i, r.code)
		}
	}
	if srv.early.decision("srv-test") == nil {
		t.Fatal("undecided after 8 unanimous sessions")
	}
	// Invalidate the engine state; the latch must hold.
	srv.early.dropState("srv-test")
	if r := uploadOne(t, srv, prep, "late", questionnaire.ChoiceRight); r.code != http.StatusOK || r.concluded != "1" {
		t.Fatalf("post-invalidation upload = %d, header %q", r.code, r.concluded)
	}

	// A restarted server (fresh tracker, same storage) has no latched
	// decision until its first fold replays the stored evidence: the first
	// post-restart upload is stored, the rebuild replays the history and
	// latches, and the next upload is rejected as concluded.
	srv2, err := New(srv.db, srv.blobs, WithEarlyStop(EarlyStopConfig{Alpha: 0.05}))
	if err != nil {
		t.Fatal(err)
	}
	if r := uploadOne(t, srv2, prep, "z-restart", questionnaire.ChoiceRight); r.code != http.StatusCreated {
		t.Fatalf("first post-restart upload = %d (%s)", r.code, r.body)
	}
	d := srv2.early.decision("srv-test")
	if d == nil {
		t.Fatal("restart rebuild did not re-derive the decision")
	}
	if d.Winner != questionnaire.ChoiceLeft {
		t.Fatalf("re-derived winner = %q", d.Winner)
	}
	if r := uploadOne(t, srv2, prep, "z-restart-2", questionnaire.ChoiceLeft); r.code != http.StatusOK || r.concluded != "1" {
		t.Fatalf("second post-restart upload = %d, header %q", r.code, r.concluded)
	}
}
