// Package server implements Kaleidoscope's core server (NodeJS in the
// paper) as a net/http service with the paper's four functions:
//
//   - publish the test task information a crowdsourcing platform needs
//     (GET /api/tests/{id}/task),
//   - serve test resources to the browser extension
//     (GET /api/tests/{id} and /api/tests/{id}/pages/{page}/{file}),
//   - collect responses from participants
//     (POST /api/tests/{id}/sessions),
//   - conclude the final results, raw and quality-controlled
//     (GET /api/tests/{id}/results).
//
// The serving path is index-backed and cached: session lookups go through a
// secondary index on test_id, test metadata is parsed once and cached until
// the underlying documents change, and concluded results are cached until a
// new session arrives. Control-question answers never leave the server —
// extension-facing payloads carry PageView, which omits the expected
// answer, and uploaded control outcomes are re-scored against storage.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/crowd"
	"kaleidoscope/internal/earlystop"
	"kaleidoscope/internal/guard"
	"kaleidoscope/internal/obs"
	"kaleidoscope/internal/quality"
	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/store"
)

// maxSessionBytes caps a session-upload body; larger uploads get 413.
const maxSessionBytes = 1 << 20

// Server is the core server. It is an http.Handler.
type Server struct {
	db    *store.DB
	blobs *store.BlobStore
	mux   *http.ServeMux
	cache *servingCache
	accum *resultsAccumulator // nil when WithScratchResults is set
	early *earlyTracker       // nil unless WithEarlyStop is set
	reg   *obs.Registry       // nil when observability is off
	guard *guard.Guard        // nil when overload protection is off

	scratchOnly bool

	// repl is the node's replication view (nil on a plain single node);
	// replMaxLag > 0 makes /readyz report not-ready past that much
	// follower lag.
	repl       ReplicationStatus
	replMaxLag uint64
}

var _ http.Handler = (*Server)(nil)

// Option configures a Server.
type Option func(*Server)

// WithObservability exports the server's serving-path metrics (cache hit
// ratios, store index-vs-scan counts) into reg and mounts GET /metrics.
// Request counters and latency histograms are produced by obs.Middleware,
// which shares the same registry.
func WithObservability(reg *obs.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// WithScratchResults disables the incremental results engine: every
// results request re-reads and re-tallies the stored sessions. This is the
// reference serving mode the incremental engine is differentially tested
// (and benchmarked) against.
func WithScratchResults() Option {
	return func(s *Server) { s.scratchOnly = true }
}

// New wires a server over prepared storage. It declares the secondary
// indexes the serving path relies on and subscribes to store changes for
// cache invalidation.
func New(db *store.DB, blobs *store.BlobStore, opts ...Option) (*Server, error) {
	if db == nil || blobs == nil {
		return nil, errors.New("server: nil storage")
	}
	s := &Server{db: db, blobs: blobs, mux: http.NewServeMux(), cache: newServingCache()}
	for _, opt := range opts {
		opt(s)
	}
	if !s.scratchOnly {
		s.accum = newResultsAccumulator()
	}
	s.mux.HandleFunc("GET /api/tests", s.handleListTests)
	s.mux.HandleFunc("GET /api/tests/{id}", s.handleTestInfo)
	s.mux.HandleFunc("GET /api/tests/{id}/task", s.handleTask)
	s.mux.HandleFunc("GET /api/tests/{id}/pages/{page}/{file...}", s.handlePageFile)
	s.mux.HandleFunc("GET /api/tests/{id}/sessions", s.handleSessionList)
	s.mux.HandleFunc("POST /api/tests/{id}/sessions", s.handleSessionUpload)
	s.mux.HandleFunc("POST /api/tests/{id}/sessions:batch", s.handleSessionBatch)
	s.mux.HandleFunc("GET /api/tests/{id}/results", s.handleResults)
	s.mux.HandleFunc("DELETE /api/tests/{id}", s.handleTestDelete)
	s.mux.HandleFunc("GET /builder", s.handleBuilderPage)
	s.mux.HandleFunc("GET /dashboard/{id}", s.handleDashboard)
	s.mux.HandleFunc("POST /api/params/build", s.handleBuildParams)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)

	// The serving path's lookups are all by test id.
	responses := db.Collection(aggregator.ResponsesCollection)
	responses.EnsureIndex("test_id")
	db.Collection(aggregator.PagesCollection).EnsureIndex("test_id")

	// Cache invalidation rides the store's change feed. Tests and pages
	// invalidate the test's metadata (and everything derived from it); a
	// new session only invalidates session-derived state.
	db.Collection(aggregator.TestsCollection).OnChange(func(_, id string) {
		s.cache.invalidateTest(id)
	})
	db.Collection(aggregator.PagesCollection).OnChange(func(_, id string) {
		s.invalidateByPrefixedID(id, s.cache.invalidateTest)
	})
	responses.OnChange(func(op, id string) {
		testID, _, ok := strings.Cut(id, "/")
		if !ok {
			if s.accum != nil {
				s.accum.invalidateAll()
			}
			if s.early != nil {
				s.early.dropAllState()
			}
			s.cache.invalidateAll()
			return
		}
		// Fold the session into the accumulator before bumping the cache
		// generation: a reader that snapshots the generation and then
		// reads the accumulator sees state at least as new as the
		// snapshot, so results cached under that generation are never
		// older than the generation they claim.
		if s.accum != nil {
			s.accum.observe(op, id, testID, responses)
		}
		// The sequential engine folds eagerly on the same feed: the
		// decision must be latched before the next upload asks whether
		// the test is concluded. A load failure here (e.g. the test doc
		// already swept mid-delete) just drops the engine state; the
		// latched decision, if any, survives until the explicit purge.
		if s.early != nil {
			if entry, err := s.load(testID); err == nil {
				s.early.observe(op, id, testID, entry, responses)
			} else {
				s.early.dropState(testID)
			}
		}
		s.cache.invalidateSessions(testID)
	})

	if s.reg != nil {
		s.mux.Handle("GET /metrics", obs.Handler(s.reg))
		s.registerGauges()
	}
	return s, nil
}

// invalidateByPrefixedID extracts the test id from a "testID/suffix"
// document id; unattributable ids flush the whole cache rather than risk
// staleness.
func (s *Server) invalidateByPrefixedID(id string, invalidate func(string)) {
	testID, _, ok := strings.Cut(id, "/")
	if !ok {
		s.cache.invalidateAll()
		return
	}
	invalidate(testID)
}

// registerGauges exports cache and store read-path statistics.
func (s *Server) registerGauges() {
	if s.accum != nil {
		s.accum.registerGauges(s)
	}
	if s.early != nil {
		s.early.registerGauges(s)
	}
	reg, cache := s.reg, s.cache
	for _, g := range []struct {
		name         string
		hits, misses *atomic.Int64
	}{
		{"tests", &cache.testHits, &cache.testMisses},
		{"sessions", &cache.sessionHits, &cache.sessionMisses},
		{"results", &cache.resultHits, &cache.resultMisses},
	} {
		hits, misses := g.hits, g.misses
		reg.RegisterGauge(fmt.Sprintf("kscope_cache_hits{cache=%q}", g.name), func() float64 {
			return float64(hits.Load())
		})
		reg.RegisterGauge(fmt.Sprintf("kscope_cache_misses{cache=%q}", g.name), func() float64 {
			return float64(misses.Load())
		})
		reg.RegisterGauge(fmt.Sprintf("kscope_cache_hit_ratio{cache=%q}", g.name), func() float64 {
			h, m := float64(hits.Load()), float64(misses.Load())
			if h+m == 0 {
				return 0
			}
			return h / (h + m)
		})
	}
	for _, name := range []string{
		aggregator.TestsCollection, aggregator.PagesCollection, aggregator.ResponsesCollection,
	} {
		coll := s.db.Collection(name)
		reg.RegisterGauge(fmt.Sprintf("kscope_store_index_hits{collection=%q}", name), func() float64 {
			return float64(coll.Stats().IndexHits)
		})
		reg.RegisterGauge(fmt.Sprintf("kscope_store_scans{collection=%q}", name), func() float64 {
			return float64(coll.Stats().Scans)
		})
	}
	// Durability counters: how often the WAL recovered, compacted, and hit
	// stable storage — the campaign operator's crash-safety dashboard.
	db := s.db
	reg.RegisterGauge("kscope_store_recovered_tails", func() float64 {
		return float64(db.DurabilityStats().RecoveredTails)
	})
	reg.RegisterGauge("kscope_store_quarantined_records", func() float64 {
		return float64(db.DurabilityStats().QuarantinedRecords)
	})
	reg.RegisterGauge("kscope_store_compactions", func() float64 {
		return float64(db.DurabilityStats().Compactions)
	})
	reg.RegisterGauge("kscope_store_wal_appends", func() float64 {
		return float64(db.DurabilityStats().WALAppends)
	})
	reg.RegisterGauge("kscope_store_fsyncs", func() float64 {
		return float64(db.DurabilityStats().Fsyncs)
	})
	reg.RegisterGauge("kscope_store_fsync_seconds_total", func() float64 {
		return float64(db.DurabilityStats().FsyncNanos) / 1e9
	})
}

// RouteLabel maps a request onto the low-cardinality route label used for
// request metrics (obs.Middleware's RouteFunc for this server's API).
func RouteLabel(r *http.Request) string {
	m, p := r.Method, r.URL.Path
	switch {
	case p == "/api/tests" || p == "/api/params/build" || p == "/builder" ||
		p == "/healthz" || p == "/readyz" || p == "/metrics":
		return m + " " + p
	case strings.HasPrefix(p, "/dashboard/"):
		return m + " /dashboard/{id}"
	case strings.HasPrefix(p, "/api/tests/"):
		rest := p[len("/api/tests/"):]
		i := strings.IndexByte(rest, '/')
		if i < 0 {
			return m + " /api/tests/{id}"
		}
		switch tail := rest[i:]; {
		case tail == "/task", tail == "/sessions", tail == "/sessions:batch", tail == "/results":
			return m + " /api/tests/{id}" + tail
		case strings.HasPrefix(tail, "/pages/"):
			return m + " /api/tests/{id}/pages"
		}
	}
	return m + " other"
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding failures after the header is written can only be logged;
	// for the payloads here (all marshalable structs) they cannot occur.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// writeLoadError distinguishes "no such test" (404) from storage corruption
// or I/O trouble (500) when loading test metadata fails.
func writeLoadError(w http.ResponseWriter, err error) {
	if errors.Is(err, store.ErrNotFound) {
		writeError(w, http.StatusNotFound, "test not found: %v", err)
		return
	}
	writeError(w, http.StatusInternalServerError, "loading test: %v", err)
}

// ServeHTTP dispatches to the API mux, through the overload guard when one
// is wired.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !s.replPreamble(w, r) {
		return
	}
	if s.guard == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	s.serveGuarded(w, r)
}

// PageView is the extension-facing description of one integrated page. It
// deliberately omits the aggregator's Expected field: control answers are
// the quality battery's ground truth and must never reach a participant.
type PageView struct {
	ID        string              `json:"id"`
	TestID    string              `json:"test_id"`
	LeftName  string              `json:"left"`
	RightName string              `json:"right"`
	Kind      aggregator.PageKind `json:"kind"`
}

// TestInfo is the extension-facing description of a test.
type TestInfo struct {
	TestID      string     `json:"test_id"`
	Description string     `json:"description"`
	Questions   []string   `json:"questions"`
	Pages       []PageView `json:"pages"`
}

// load returns the cached serving entry for a test, assembling (and
// caching) it from storage on a miss. Concurrent misses may both assemble;
// the generation check in putTest keeps a racing invalidation authoritative.
func (s *Server) load(testID string) (*testEntry, error) {
	if entry, ok := s.cache.test(testID); ok {
		return entry, nil
	}
	gen := s.cache.gen(testID)
	prep, err := aggregator.LoadPrepared(s.db, testID)
	if err != nil {
		return nil, err
	}
	entry := newTestEntry(prep)
	s.cache.putTest(testID, gen, entry)
	return entry, nil
}

// loadInfo assembles the extension-facing TestInfo.
func (s *Server) loadInfo(testID string) (*TestInfo, error) {
	entry, err := s.load(testID)
	if err != nil {
		return nil, err
	}
	return entry.info, nil
}

// TestSummary is one row of the test listing.
type TestSummary struct {
	TestID       string `json:"test_id"`
	Description  string `json:"description"`
	Participants int    `json:"participants"`
	PageCount    int    `json:"page_count"`
	Sessions     int    `json:"sessions"`
}

func (s *Server) handleListTests(w http.ResponseWriter, _ *http.Request) {
	docs := s.db.Collection(aggregator.TestsCollection).Find(nil)
	responses := s.db.Collection(aggregator.ResponsesCollection)
	out := make([]TestSummary, 0, len(docs))
	for _, doc := range docs {
		summary := TestSummary{
			TestID:      doc.ID(),
			Description: docStringField(doc, "description"),
		}
		// Document.Int tolerates both live (typed) and WAL-replayed
		// (float64) numeric representations.
		if n, ok := doc.Int("participants"); ok {
			summary.Participants = n
		}
		if n, ok := doc.Int("page_count"); ok {
			summary.PageCount = n
		}
		summary.Sessions = responses.CountEq("test_id", doc.ID())
		out = append(out, summary)
	}
	writeJSON(w, http.StatusOK, out)
}

func docStringField(d store.Document, key string) string {
	v, _ := d[key].(string)
	return v
}

func (s *Server) handleTestInfo(w http.ResponseWriter, r *http.Request) {
	entry, degraded, err := s.loadServing(r.PathValue("id"))
	if err != nil {
		if errors.Is(err, guard.ErrUnavailable) {
			s.writeUnavailable(w, "test info")
			return
		}
		writeLoadError(w, err)
		return
	}
	if degraded {
		s.serveDegraded(w, entry.info)
		return
	}
	writeJSON(w, http.StatusOK, entry.info)
}

// Task is the posting payload for a crowdsourcing platform.
type Task struct {
	TestID          string  `json:"test_id"`
	Title           string  `json:"title"`
	Instructions    string  `json:"instructions"`
	RequiredWorkers int     `json:"required_workers"`
	PaymentUSD      float64 `json:"payment_usd"`
	PageCount       int     `json:"page_count"`
}

func (s *Server) handleTask(w http.ResponseWriter, r *http.Request) {
	testID := r.PathValue("id")
	entry, degraded, err := s.loadServing(testID)
	if err != nil {
		if errors.Is(err, guard.ErrUnavailable) {
			s.writeUnavailable(w, "task payload")
			return
		}
		writeLoadError(w, err)
		return
	}
	task := Task{
		TestID:          testID,
		Title:           "Kaleidoscope web comparison test " + testID,
		Instructions:    entry.prep.Test.TestDescription,
		RequiredWorkers: entry.prep.Test.ParticipantNum,
		PaymentUSD:      0.10,
		PageCount:       len(entry.prep.Pages),
	}
	if degraded {
		s.serveDegraded(w, task)
		return
	}
	writeJSON(w, http.StatusOK, task)
}

func (s *Server) handlePageFile(w http.ResponseWriter, r *http.Request) {
	testID := r.PathValue("id")
	pageID := r.PathValue("page")
	file := r.PathValue("file")
	data, err := s.blobs.Get(testID + "/" + pageID + "/" + file)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) || errors.Is(err, store.ErrInvalidKey) {
			writeError(w, http.StatusNotFound, "resource not found")
			return
		}
		writeError(w, http.StatusInternalServerError, "reading resource: %v", err)
		return
	}
	switch {
	case strings.HasSuffix(file, ".html"):
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
	case strings.HasSuffix(file, ".css"):
		w.Header().Set("Content-Type", "text/css")
	case strings.HasSuffix(file, ".js"):
		w.Header().Set("Content-Type", "text/javascript")
	default:
		w.Header().Set("Content-Type", "application/octet-stream")
	}
	w.WriteHeader(http.StatusOK)
	// Best effort: the client observes short writes as transport errors.
	_, _ = w.Write(data)
}

// SessionUpload is what the extension posts when a participant finishes.
// Controls carry only the participant's answers; the Expected field is
// filled in server-side from storage (any client-supplied value is
// discarded — participants cannot vouch for their own control answers).
type SessionUpload struct {
	TestID       string                   `json:"test_id"`
	WorkerID     string                   `json:"worker_id"`
	Demographics crowd.Demographics       `json:"demographics"`
	Responses    []questionnaire.Response `json:"responses"`
	Behaviors    []crowd.Behavior         `json:"behaviors"`
	Controls     []quality.ControlOutcome `json:"controls"`
}

// Validate checks the upload against the stored test.
func (u *SessionUpload) Validate(info *TestInfo) error {
	if u.WorkerID == "" {
		return errors.New("missing worker_id")
	}
	if u.TestID != info.TestID {
		return fmt.Errorf("test_id %q does not match %q", u.TestID, info.TestID)
	}
	valid := make(map[string]bool, len(info.Pages))
	for _, p := range info.Pages {
		valid[p.ID] = true
	}
	for _, r := range u.Responses {
		if err := r.Validate(); err != nil {
			return err
		}
		// A response carrying someone else's identifiers must not be
		// persisted under this session: the stored raw is what conclusions
		// and quality control replay, and a contradicting nested id would
		// attribute the answer to the wrong test or worker.
		if r.TestID != u.TestID {
			return fmt.Errorf("response test_id %q contradicts session test %q", r.TestID, u.TestID)
		}
		if r.WorkerID != u.WorkerID {
			return fmt.Errorf("response worker_id %q contradicts session worker %q", r.WorkerID, u.WorkerID)
		}
		if !valid[r.PageID] {
			return fmt.Errorf("response references unknown page %q", r.PageID)
		}
	}
	return nil
}

func (s *Server) handleSessionUpload(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	testID := r.PathValue("id")

	// A session upload is an uncacheable store write: with the breaker
	// refusing work there is nothing degraded to serve, so answer 503 +
	// Retry-After before burning any decode/validate CPU. When the breaker
	// half-opens, the winning upload proceeds as the recovery probe.
	var breakerDone func(guard.Outcome)
	if s.guard != nil {
		var ok bool
		breakerDone, ok = s.guard.Breaker().Allow()
		if !ok {
			s.writeUnavailable(w, "session storage")
			return
		}
	}
	// report forwards the store outcome to the breaker exactly once;
	// requests that bail before reaching the store report Canceled, which
	// frees a probe slot without claiming anything about store health.
	reported := false
	report := func(o guard.Outcome) {
		if breakerDone != nil && !reported {
			reported = true
			breakerDone(o)
		}
	}
	defer report(guard.Canceled)

	entry, err := s.load(testID)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			report(guard.Success)
		} else {
			report(guard.Failure)
		}
		writeLoadError(w, err)
		return
	}
	// A decided test spends no more crowd: acknowledge without storing so
	// in-flight workers finish cleanly, and tell them why.
	if s.early != nil {
		if d := s.early.decision(testID); d != nil {
			report(guard.Success)
			s.early.concludedUpload(w, testID, d)
			return
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxSessionBytes)
	var upload SessionUpload
	if err := decodeStrict(r.Body, &upload); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"session exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding session: %v", err)
		return
	}
	// The decode may have blocked on a slow or dead connection; do not
	// validate, score, or persist work for a client that already hung up.
	if err := ctx.Err(); err != nil {
		writeError(w, http.StatusRequestTimeout, "client canceled request: %v", err)
		return
	}
	// Validate + score through the shared batch path so the two endpoints
	// cannot drift: one implementation decides what a storable session is.
	doc, err := s.buildSessionDoc(testID, entry, &upload)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Last disconnect check before the write: a canceled request must not
	// persist a session the client will re-upload.
	if err := ctx.Err(); err != nil {
		writeError(w, http.StatusRequestTimeout, "client canceled request: %v", err)
		return
	}
	if _, err := s.db.Collection(aggregator.ResponsesCollection).InsertUnique(doc); err != nil {
		if errors.Is(err, store.ErrDuplicateID) {
			if !s.replAckBarrier(w) {
				report(guard.Failure)
				return
			}
			report(guard.Success)
			writeError(w, http.StatusConflict,
				"worker %q already uploaded a session for test %q", upload.WorkerID, testID)
			return
		}
		report(guard.Failure)
		if s.replWriteRefused(w, err) {
			return
		}
		if s.guard != nil {
			// With the guard on, a failed store write is a transient
			// outage, not a terminal server error: tell the client to
			// retry once the breaker has had a chance to recover.
			writeShed(w, http.StatusServiceUnavailable, s.guard.RetryAfter(),
				"storing session failed: %v; retry after the indicated delay", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "storing session: %v", err)
		return
	}
	report(guard.Success)
	writeJSON(w, http.StatusCreated, map[string]string{"status": "stored", "worker_id": upload.WorkerID})
}

// handleTestDelete serves DELETE /api/tests/{id}: the end of a test's
// lifecycle. It removes the test document first (so fresh loads 404
// immediately), then sweeps the test's page documents, stored sessions, and
// blob prefix (releasing CAS refcounts, so content shared with other
// tenants survives while this test's references are dropped), and finally
// purges the serving cache — including the degraded-mode snapshots that
// ordinary invalidation keeps — and the incremental accumulator.
//
// The sweep is idempotent: a retry after a partially failed delete (or
// after a lost response) cleans up whatever remains, and 404 only means
// nothing of the test exists anymore — which a deleting client can treat as
// success.
func (s *Server) handleTestDelete(w http.ResponseWriter, r *http.Request) {
	testID := r.PathValue("id")

	// Deletes are uncacheable store writes, exactly like uploads: with the
	// breaker refusing work there is nothing useful to do, and a successful
	// sweep is evidence of store health.
	var breakerDone func(guard.Outcome)
	if s.guard != nil {
		var ok bool
		breakerDone, ok = s.guard.Breaker().Allow()
		if !ok {
			s.writeUnavailable(w, "test deletion")
			return
		}
	}
	reported := false
	report := func(o guard.Outcome) {
		if breakerDone != nil && !reported {
			reported = true
			breakerDone(o)
		}
	}
	defer report(guard.Canceled)

	fail := func(err error) {
		report(guard.Failure)
		if s.replWriteRefused(w, err) {
			return
		}
		if s.guard != nil {
			writeShed(w, http.StatusServiceUnavailable, s.guard.RetryAfter(),
				"deleting test failed: %v; retry after the indicated delay", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "deleting test %q: %v", testID, err)
	}

	tests := s.db.Collection(aggregator.TestsCollection)
	hadDoc := false
	if _, err := tests.Get(testID); err == nil {
		hadDoc = true
		if err := tests.Delete(testID); err != nil {
			fail(err)
			return
		}
	} else if !errors.Is(err, store.ErrNotFound) {
		fail(err)
		return
	}

	npages := 0
	pages := s.db.Collection(aggregator.PagesCollection)
	for _, doc := range pages.FindEq("test_id", testID) {
		if err := pages.Delete(doc.ID()); err != nil {
			fail(err)
			return
		}
		npages++
	}
	nsessions := 0
	responses := s.db.Collection(aggregator.ResponsesCollection)
	for _, doc := range responses.FindEq("test_id", testID) {
		if err := responses.Delete(doc.ID()); err != nil {
			fail(err)
			return
		}
		nsessions++
	}
	nblobs, err := s.blobs.DeletePrefix(testID + "/")
	if err != nil {
		fail(err)
		return
	}

	// The OnChange hooks already invalidated the live cache per deleted
	// document; the explicit purge additionally drops the last-known-good
	// snapshots and the accumulator state, so a deleted test can never be
	// served — degraded mode included — until it is created again.
	s.cache.purgeTest(testID)
	if s.accum != nil {
		s.accum.invalidate(testID)
	}
	if s.early != nil {
		s.early.purge(testID)
	}
	report(guard.Success)

	if !hadDoc && npages == 0 && nsessions == 0 && nblobs == 0 {
		writeError(w, http.StatusNotFound, "no such test %q", testID)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "deleted",
		"test_id":  testID,
		"pages":    npages,
		"sessions": nsessions,
		"blobs":    nblobs,
	})
}

// PageResult is the concluded tally for one integrated page.
type PageResult struct {
	PageID    string              `json:"page_id"`
	LeftName  string              `json:"left"`
	RightName string              `json:"right"`
	Kind      aggregator.PageKind `json:"kind"`
	Tally     questionnaire.Tally `json:"tally"`
}

// Results is the conclusion payload.
type Results struct {
	TestID string `json:"test_id"`
	// Workers is the number of sessions considered.
	Workers int `json:"workers"`
	// Filtered reports whether quality control was applied.
	Filtered bool `json:"filtered"`
	// DroppedWorkers counts QC rejections (0 when unfiltered).
	DroppedWorkers int `json:"dropped_workers"`
	// KeptWorkers lists the worker ids that passed quality control
	// (empty when unfiltered).
	KeptWorkers []string     `json:"kept_workers,omitempty"`
	Pages       []PageResult `json:"pages"`
	// Concluded and Decision report the sequential engine's verdict when
	// early stopping is enabled and the test has been decided. Both are
	// omitted (and the payload byte-identical to a server without the
	// engine) while the test is undecided.
	Concluded bool                `json:"concluded,omitempty"`
	Decision  *earlystop.Decision `json:"decision,omitempty"`
}

// Sessions loads every stored session of a test through the serving cache;
// decoded sessions stay cached until a new upload for the test arrives.
// The returned slice is the caller's; the session structs' nested slices
// are shared with the cache and must be treated as read-only.
func (s *Server) Sessions(testID string) ([]SessionUpload, error) {
	if cached, ok := s.cache.sessionsFor(testID); ok {
		return append([]SessionUpload(nil), cached...), nil
	}
	gen := s.cache.gen(testID)
	docs := s.db.Collection(aggregator.ResponsesCollection).FindEq("test_id", testID)
	out := make([]SessionUpload, 0, len(docs))
	for _, doc := range docs {
		raw, _ := doc["session"].(string)
		var upload SessionUpload
		if err := json.Unmarshal([]byte(raw), &upload); err != nil {
			return nil, fmt.Errorf("server: corrupt session %s: %w", doc.ID(), err)
		}
		out = append(out, upload)
	}
	s.cache.putSessions(testID, gen, out)
	return append([]SessionUpload(nil), out...), nil
}

// handleSessionList returns every stored session of a test verbatim, in
// document-id (worker) order — the gather half of the shard router's
// scatter/gather merge, and a deployment-face way to export a test's raw
// sessions.
func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	testID := r.PathValue("id")
	_, degraded, err := s.loadServing(testID)
	if err != nil {
		if errors.Is(err, guard.ErrUnavailable) {
			s.writeUnavailable(w, "session list")
			return
		}
		writeLoadError(w, err)
		return
	}
	if degraded {
		// Breaker open: the decoded-session cache is the only safe source.
		if cached, ok := s.cache.sessionsFor(testID); ok {
			s.serveDegraded(w, cached)
			return
		}
		s.writeUnavailable(w, "session list")
		return
	}
	uploads, err := s.Sessions(testID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "loading sessions: %v", err)
		return
	}
	if uploads == nil {
		uploads = []SessionUpload{}
	}
	writeJSON(w, http.StatusOK, uploads)
}

// defaultQC derives the paper's default battery for a test: every real
// page×question answered, engagement bounds, zero control failures.
func defaultQC(entry *testEntry) *quality.Config {
	return defaultQCInfo(entry.info)
}

// defaultQCInfo is defaultQC computed from the extension-facing TestInfo
// alone — the page views carry their kind, so the real-page count needs
// no Prepared. This is what lets the shard router (which holds only
// TestInfo) apply the exact battery a single node applies.
func defaultQCInfo(info *TestInfo) *quality.Config {
	real := 0
	for _, p := range info.Pages {
		if p.Kind == aggregator.KindReal {
			real++
		}
	}
	cfg := quality.DefaultConfig(real * len(info.Questions))
	return &cfg
}

// ConcludeUploads tallies a conclusion for an explicit session set
// against a test's page spine. It is the merge kernel of the shard
// router's ?quality=1 scatter/gather: the quality battery's majority vote
// spans the whole crowd, so per-shard filtered results cannot be added —
// the router gathers every shard's raw sessions (already in document-id
// order per shard, merged by worker id) and concludes here, producing
// bytes identical to a single node storing the same session set.
func ConcludeUploads(info *TestInfo, uploads []SessionUpload, useQC bool) (*Results, error) {
	var qc *quality.Config
	if useQC {
		qc = defaultQCInfo(info)
	}
	return concludeUploads(info, uploads, qc)
}

// Conclude computes results for a test from its stored sessions,
// optionally applying quality control with the given config (nil = raw
// results). This is the from-scratch reference the incremental engine is
// differentially tested against; custom quality configs always take this
// path.
func (s *Server) Conclude(testID string, qc *quality.Config) (*Results, error) {
	entry, err := s.load(testID)
	if err != nil {
		return nil, err
	}
	uploads, err := s.Sessions(testID)
	if err != nil {
		return nil, err
	}
	return concludeFrom(testID, entry, uploads, qc)
}

// ConcludeScratch recomputes results directly from storage, bypassing both
// the serving cache and the incremental accumulator — the differential
// oracle the load harness and benchmarks compare the incremental serving
// path against. useQC selects the same default battery the HTTP results
// surface applies for ?quality=1.
func (s *Server) ConcludeScratch(testID string, useQC bool) (*Results, error) {
	entry, err := s.load(testID)
	if err != nil {
		return nil, err
	}
	docs := s.db.Collection(aggregator.ResponsesCollection).FindEq("test_id", testID)
	uploads := make([]SessionUpload, 0, len(docs))
	for _, doc := range docs {
		raw, _ := doc["session"].(string)
		var upload SessionUpload
		if err := json.Unmarshal([]byte(raw), &upload); err != nil {
			return nil, fmt.Errorf("server: corrupt session %s: %w", doc.ID(), err)
		}
		uploads = append(uploads, upload)
	}
	var qc *quality.Config
	if useQC {
		qc = defaultQC(entry)
	}
	return concludeFrom(testID, entry, uploads, qc)
}

// concludeFrom tallies a conclusion from decoded sessions.
func concludeFrom(testID string, entry *testEntry, uploads []SessionUpload, qc *quality.Config) (*Results, error) {
	// testID and entry.info.TestID are always the same string here (the
	// entry was loaded by that id); concludeUploads keys off the info.
	return concludeUploads(entry.info, uploads, qc)
}

func concludeUploads(info *TestInfo, uploads []SessionUpload, qc *quality.Config) (*Results, error) {
	res := &Results{TestID: info.TestID, Workers: len(uploads)}

	sessions := make([]quality.WorkerSession, len(uploads))
	for i, u := range uploads {
		sessions[i] = quality.WorkerSession{
			WorkerID:  u.WorkerID,
			Responses: u.Responses,
			Behaviors: u.Behaviors,
			Controls:  u.Controls,
		}
	}
	if qc != nil && len(sessions) > 0 {
		kept, dropped, _, err := quality.Filter(sessions, *qc)
		if err != nil {
			return nil, err
		}
		sessions = kept
		res.Filtered = true
		res.DroppedWorkers = len(dropped)
		res.Workers = len(kept)
		for _, k := range kept {
			res.KeptWorkers = append(res.KeptWorkers, k.WorkerID)
		}
	}

	tallies := make(map[string]*questionnaire.Tally)
	for _, sess := range sessions {
		for _, r := range sess.Responses {
			t, ok := tallies[r.PageID]
			if !ok {
				t = &questionnaire.Tally{}
				tallies[r.PageID] = t
			}
			t.Add(r.Choice)
		}
	}
	for _, p := range info.Pages {
		pr := PageResult{PageID: p.ID, LeftName: p.LeftName, RightName: p.RightName, Kind: p.Kind}
		if t, ok := tallies[p.ID]; ok {
			pr.Tally = *t
		}
		res.Pages = append(res.Pages, pr)
	}
	return res, nil
}

// concludeCached serves the HTTP results surface: raw and default-battery
// conclusions are cached per test until a new session arrives, and cache
// misses are computed from the incremental accumulator (or from scratch
// under WithScratchResults). Custom quality configs (only reachable
// through the Conclude API) bypass the cache, which is why the key is just
// (test, quality-on).
//
// Freshness invariant: the generation is snapshotted before anything is
// read, so every read observes state at least as new as the snapshot and
// putResults can never pin results older than the generation they are
// cached under. When an upload races the fill, putResults rejects the
// (still perfectly valid) result; one bounded recompute re-attempts the
// fill from the newer state so interleaved upload/results traffic does not
// degrade into a permanently cold results cache.
func (s *Server) concludeCached(ctx context.Context, testID string, useQC bool) (*Results, error) {
	key := resultsKey{testID: testID, quality: useQC}
	if res, ok := s.cache.resultsFor(key); ok {
		return res, nil
	}
	var res *Results
	for attempt := 0; attempt < 2; attempt++ {
		// A disconnected client gets no tally: concluding can mean folding
		// thousands of stored sessions, and nobody is listening anymore.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		gen := s.cache.gen(testID)
		entry, err := s.load(testID)
		if err != nil {
			return nil, err
		}
		if s.accum != nil {
			res, err = s.accum.results(testID, entry, useQC, s.db.Collection(aggregator.ResponsesCollection))
		} else {
			res, err = s.Conclude(testID, concludeConfig(entry, useQC))
		}
		if err != nil {
			return nil, err
		}
		if s.cache.putResults(key, gen, res) {
			break
		}
	}
	return res, nil
}

// concludeConfig maps the HTTP surface's quality flag onto the battery.
func concludeConfig(entry *testEntry, useQC bool) *quality.Config {
	if !useQC {
		return nil
	}
	return defaultQC(entry)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	testID := r.PathValue("id")
	useQC := r.URL.Query().Get("quality") == "1"
	// Degraded mode: with the store breaker open, answer from the freshest
	// cached conclusion (live cache first, last-known-good snapshot
	// otherwise) instead of touching storage. Only a test never concluded
	// before the outage gets a 503.
	if s.breakerOpen() {
		key := resultsKey{testID: testID, quality: useQC}
		if res, ok := s.cache.resultsFor(key); ok {
			s.serveDegraded(w, s.withDecision(testID, res))
			return
		}
		if res, ok := s.cache.staleResultsFor(key); ok {
			s.serveDegraded(w, s.withDecision(testID, res))
			return
		}
		s.writeUnavailable(w, "results")
		return
	}
	res, err := s.concludeCached(r.Context(), testID, useQC)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			writeError(w, http.StatusNotFound, "test not found: %v", err)
			return
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusRequestTimeout, "client canceled request: %v", err)
			return
		}
		// Corrupt sessions or stored params are server-side faults.
		writeError(w, http.StatusInternalServerError, "concluding: %v", err)
		return
	}
	res = s.withDecision(testID, res)
	writeJSON(w, http.StatusOK, res)
}

// withDecision attaches the sequential engine's verdict to a results
// payload. The cached Results object is never mutated — decision metadata
// rides a shallow copy, so the cache keeps serving the engine-free shape
// and undecided tests stay byte-identical to a server without early
// stopping.
func (s *Server) withDecision(testID string, res *Results) *Results {
	if s.early == nil {
		return res
	}
	d := s.early.decision(testID)
	if d == nil {
		return res
	}
	cp := *res
	cp.Concluded = true
	cp.Decision = d
	return &cp
}
