// Package server implements Kaleidoscope's core server (NodeJS in the
// paper) as a net/http service with the paper's four functions:
//
//   - publish the test task information a crowdsourcing platform needs
//     (GET /api/tests/{id}/task),
//   - serve test resources to the browser extension
//     (GET /api/tests/{id} and /api/tests/{id}/pages/{page}/{file}),
//   - collect responses from participants
//     (POST /api/tests/{id}/sessions),
//   - conclude the final results, raw and quality-controlled
//     (GET /api/tests/{id}/results).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/crowd"
	"kaleidoscope/internal/quality"
	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/store"
)

// Server is the core server. It is an http.Handler.
type Server struct {
	db    *store.DB
	blobs *store.BlobStore
	mux   *http.ServeMux
}

var _ http.Handler = (*Server)(nil)

// New wires a server over prepared storage.
func New(db *store.DB, blobs *store.BlobStore) (*Server, error) {
	if db == nil || blobs == nil {
		return nil, errors.New("server: nil storage")
	}
	s := &Server{db: db, blobs: blobs, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /api/tests", s.handleListTests)
	s.mux.HandleFunc("GET /api/tests/{id}", s.handleTestInfo)
	s.mux.HandleFunc("GET /api/tests/{id}/task", s.handleTask)
	s.mux.HandleFunc("GET /api/tests/{id}/pages/{page}/{file...}", s.handlePageFile)
	s.mux.HandleFunc("POST /api/tests/{id}/sessions", s.handleSessionUpload)
	s.mux.HandleFunc("GET /api/tests/{id}/results", s.handleResults)
	s.mux.HandleFunc("GET /builder", s.handleBuilderPage)
	s.mux.HandleFunc("GET /dashboard/{id}", s.handleDashboard)
	s.mux.HandleFunc("POST /api/params/build", s.handleBuildParams)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s, nil
}

// ServeHTTP dispatches to the API mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding failures after the header is written can only be logged;
	// for the payloads here (all marshalable structs) they cannot occur.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// TestInfo is the extension-facing description of a test.
type TestInfo struct {
	TestID      string                      `json:"test_id"`
	Description string                      `json:"description"`
	Questions   []string                    `json:"questions"`
	Pages       []aggregator.IntegratedPage `json:"pages"`
}

// loadInfo assembles TestInfo from storage.
func (s *Server) loadInfo(testID string) (*TestInfo, error) {
	prep, err := aggregator.LoadPrepared(s.db, testID)
	if err != nil {
		return nil, err
	}
	return &TestInfo{
		TestID:      prep.Test.TestID,
		Description: prep.Test.TestDescription,
		Questions:   prep.Test.Questions,
		Pages:       prep.Pages,
	}, nil
}

// TestSummary is one row of the test listing.
type TestSummary struct {
	TestID       string `json:"test_id"`
	Description  string `json:"description"`
	Participants int    `json:"participants"`
	PageCount    int    `json:"page_count"`
	Sessions     int    `json:"sessions"`
}

func (s *Server) handleListTests(w http.ResponseWriter, _ *http.Request) {
	docs := s.db.Collection(aggregator.TestsCollection).Find(nil)
	out := make([]TestSummary, 0, len(docs))
	for _, doc := range docs {
		summary := TestSummary{
			TestID:      doc.ID(),
			Description: docStringField(doc, "description"),
		}
		if n, ok := doc["participants"].(float64); ok {
			summary.Participants = int(n)
		}
		if n, ok := doc["page_count"].(float64); ok {
			summary.PageCount = int(n)
		}
		summary.Sessions = len(s.db.Collection(aggregator.ResponsesCollection).FindEq("test_id", doc.ID()))
		out = append(out, summary)
	}
	writeJSON(w, http.StatusOK, out)
}

func docStringField(d store.Document, key string) string {
	v, _ := d[key].(string)
	return v
}

func (s *Server) handleTestInfo(w http.ResponseWriter, r *http.Request) {
	info, err := s.loadInfo(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "test not found: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// Task is the posting payload for a crowdsourcing platform.
type Task struct {
	TestID          string  `json:"test_id"`
	Title           string  `json:"title"`
	Instructions    string  `json:"instructions"`
	RequiredWorkers int     `json:"required_workers"`
	PaymentUSD      float64 `json:"payment_usd"`
	PageCount       int     `json:"page_count"`
}

func (s *Server) handleTask(w http.ResponseWriter, r *http.Request) {
	testID := r.PathValue("id")
	prep, err := aggregator.LoadPrepared(s.db, testID)
	if err != nil {
		writeError(w, http.StatusNotFound, "test not found: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, Task{
		TestID:          testID,
		Title:           "Kaleidoscope web comparison test " + testID,
		Instructions:    prep.Test.TestDescription,
		RequiredWorkers: prep.Test.ParticipantNum,
		PaymentUSD:      0.10,
		PageCount:       len(prep.Pages),
	})
}

func (s *Server) handlePageFile(w http.ResponseWriter, r *http.Request) {
	testID := r.PathValue("id")
	pageID := r.PathValue("page")
	file := r.PathValue("file")
	data, err := s.blobs.Get(testID + "/" + pageID + "/" + file)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) || errors.Is(err, store.ErrInvalidKey) {
			writeError(w, http.StatusNotFound, "resource not found")
			return
		}
		writeError(w, http.StatusInternalServerError, "reading resource: %v", err)
		return
	}
	switch {
	case strings.HasSuffix(file, ".html"):
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
	case strings.HasSuffix(file, ".css"):
		w.Header().Set("Content-Type", "text/css")
	case strings.HasSuffix(file, ".js"):
		w.Header().Set("Content-Type", "text/javascript")
	default:
		w.Header().Set("Content-Type", "application/octet-stream")
	}
	w.WriteHeader(http.StatusOK)
	// Best effort: the client observes short writes as transport errors.
	_, _ = w.Write(data)
}

// SessionUpload is what the extension posts when a participant finishes.
type SessionUpload struct {
	TestID       string                   `json:"test_id"`
	WorkerID     string                   `json:"worker_id"`
	Demographics crowd.Demographics       `json:"demographics"`
	Responses    []questionnaire.Response `json:"responses"`
	Behaviors    []crowd.Behavior         `json:"behaviors"`
	Controls     []quality.ControlOutcome `json:"controls"`
}

// Validate checks the upload against the stored test.
func (u *SessionUpload) Validate(info *TestInfo) error {
	if u.WorkerID == "" {
		return errors.New("missing worker_id")
	}
	if u.TestID != info.TestID {
		return fmt.Errorf("test_id %q does not match %q", u.TestID, info.TestID)
	}
	valid := make(map[string]bool, len(info.Pages))
	for _, p := range info.Pages {
		valid[p.ID] = true
	}
	for _, r := range u.Responses {
		if err := r.Validate(); err != nil {
			return err
		}
		if !valid[r.PageID] {
			return fmt.Errorf("response references unknown page %q", r.PageID)
		}
	}
	return nil
}

func (s *Server) handleSessionUpload(w http.ResponseWriter, r *http.Request) {
	testID := r.PathValue("id")
	info, err := s.loadInfo(testID)
	if err != nil {
		writeError(w, http.StatusNotFound, "test not found: %v", err)
		return
	}
	var upload SessionUpload
	if err := json.NewDecoder(r.Body).Decode(&upload); err != nil {
		writeError(w, http.StatusBadRequest, "decoding session: %v", err)
		return
	}
	if upload.TestID == "" {
		upload.TestID = testID
	}
	if err := upload.Validate(info); err != nil {
		writeError(w, http.StatusBadRequest, "invalid session: %v", err)
		return
	}
	raw, err := json.Marshal(upload)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding session: %v", err)
		return
	}
	doc := store.Document{
		store.IDField: testID + "/" + upload.WorkerID,
		"test_id":     testID,
		"worker_id":   upload.WorkerID,
		"session":     string(raw),
	}
	if _, err := s.db.Collection(aggregator.ResponsesCollection).Insert(doc); err != nil {
		writeError(w, http.StatusInternalServerError, "storing session: %v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "stored", "worker_id": upload.WorkerID})
}

// PageResult is the concluded tally for one integrated page.
type PageResult struct {
	PageID    string              `json:"page_id"`
	LeftName  string              `json:"left"`
	RightName string              `json:"right"`
	Kind      aggregator.PageKind `json:"kind"`
	Tally     questionnaire.Tally `json:"tally"`
}

// Results is the conclusion payload.
type Results struct {
	TestID string `json:"test_id"`
	// Workers is the number of sessions considered.
	Workers int `json:"workers"`
	// Filtered reports whether quality control was applied.
	Filtered bool `json:"filtered"`
	// DroppedWorkers counts QC rejections (0 when unfiltered).
	DroppedWorkers int `json:"dropped_workers"`
	// KeptWorkers lists the worker ids that passed quality control
	// (empty when unfiltered).
	KeptWorkers []string     `json:"kept_workers,omitempty"`
	Pages       []PageResult `json:"pages"`
}

// Sessions loads every stored session of a test.
func (s *Server) Sessions(testID string) ([]SessionUpload, error) {
	docs := s.db.Collection(aggregator.ResponsesCollection).FindEq("test_id", testID)
	out := make([]SessionUpload, 0, len(docs))
	for _, doc := range docs {
		raw, _ := doc["session"].(string)
		var upload SessionUpload
		if err := json.Unmarshal([]byte(raw), &upload); err != nil {
			return nil, fmt.Errorf("server: corrupt session %s: %w", doc.ID(), err)
		}
		out = append(out, upload)
	}
	return out, nil
}

// Conclude computes results for a test, optionally applying quality
// control with the given config (nil = raw results).
func (s *Server) Conclude(testID string, qc *quality.Config) (*Results, error) {
	info, err := s.loadInfo(testID)
	if err != nil {
		return nil, err
	}
	uploads, err := s.Sessions(testID)
	if err != nil {
		return nil, err
	}
	res := &Results{TestID: testID, Workers: len(uploads)}

	sessions := make([]quality.WorkerSession, len(uploads))
	for i, u := range uploads {
		sessions[i] = quality.WorkerSession{
			WorkerID:  u.WorkerID,
			Responses: u.Responses,
			Behaviors: u.Behaviors,
			Controls:  u.Controls,
		}
	}
	if qc != nil && len(sessions) > 0 {
		kept, dropped, _, err := quality.Filter(sessions, *qc)
		if err != nil {
			return nil, err
		}
		sessions = kept
		res.Filtered = true
		res.DroppedWorkers = len(dropped)
		res.Workers = len(kept)
		for _, k := range kept {
			res.KeptWorkers = append(res.KeptWorkers, k.WorkerID)
		}
	}

	tallies := make(map[string]*questionnaire.Tally)
	for _, sess := range sessions {
		for _, r := range sess.Responses {
			t, ok := tallies[r.PageID]
			if !ok {
				t = &questionnaire.Tally{}
				tallies[r.PageID] = t
			}
			t.Add(r.Choice)
		}
	}
	for _, p := range info.Pages {
		pr := PageResult{PageID: p.ID, LeftName: p.LeftName, RightName: p.RightName, Kind: p.Kind}
		if t, ok := tallies[p.ID]; ok {
			pr.Tally = *t
		}
		res.Pages = append(res.Pages, pr)
	}
	return res, nil
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	testID := r.PathValue("id")
	var qc *quality.Config
	if r.URL.Query().Get("quality") == "1" {
		info, err := s.loadInfo(testID)
		if err != nil {
			writeError(w, http.StatusNotFound, "test not found: %v", err)
			return
		}
		realPages := 0
		for _, p := range info.Pages {
			if p.Kind == aggregator.KindReal {
				realPages++
			}
		}
		cfg := quality.DefaultConfig(realPages * len(info.Questions))
		qc = &cfg
	}
	res, err := s.Conclude(testID, qc)
	if err != nil {
		writeError(w, http.StatusNotFound, "concluding: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}
