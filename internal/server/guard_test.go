package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/guard"
	"kaleidoscope/internal/obs"
	"kaleidoscope/internal/params"
	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/store"
	"kaleidoscope/internal/webgen"
)

// prepGuardedTest prepares the standard 2-version test in a dir-backed,
// fault-injectable store and wires the server with the given guard.
func prepGuardedTest(t testing.TB, g *guard.Guard) (*Server, *aggregator.Prepared, *store.FaultFS, *obs.Registry) {
	t.Helper()
	ffs := store.NewFaultFS()
	db, err := store.Open(filepath.Join(t.TempDir(), "db"), store.WithFileSystem(ffs))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	blobs := store.NewBlobStore()
	agg, err := aggregator.New(db, blobs)
	if err != nil {
		t.Fatal(err)
	}
	test := &params.Test{
		TestID:          "srv-test",
		WebpageNum:      2,
		TestDescription: "guarded server test",
		ParticipantNum:  10,
		Questions:       []string{"Which webpage's font size is more suitable (easier) for reading?"},
		Webpages: []params.Webpage{
			{WebPath: "a", WebPageLoad: params.PageLoadSpec{UniformMillis: 1000}, WebMainFile: "index.html"},
			{WebPath: "b", WebPageLoad: params.PageLoadSpec{UniformMillis: 1000}, WebMainFile: "index.html"},
		},
	}
	sites := map[string]*webgen.Site{
		"a": webgen.WikiArticle(webgen.WikiConfig{Seed: 1, FontSizePt: 12}),
		"b": webgen.WikiArticle(webgen.WikiConfig{Seed: 1, FontSizePt: 22}),
	}
	prep, err := agg.Prepare(test, sites, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	g.RegisterMetrics(reg)
	srv, err := New(db, blobs, WithGuard(g), WithObservability(reg))
	if err != nil {
		t.Fatal(err)
	}
	return srv, prep, ffs, reg
}

func postUpload(t *testing.T, srv *Server, prep *aggregator.Prepared, workerID string) *httptest.ResponseRecorder {
	t.Helper()
	payload, err := json.Marshal(sampleUpload(prep, workerID, questionnaire.ChoiceLeft))
	if err != nil {
		t.Fatal(err)
	}
	return doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil)
}

// tripBreaker arms the fault and uploads until the breaker opens.
func tripBreaker(t *testing.T, srv *Server, prep *aggregator.Prepared, ffs *store.FaultFS, g *guard.Guard) {
	t.Helper()
	ffs.FailAppendsAfter(0, nil, false)
	for i := 0; i < 20 && g.Breaker().State() != guard.StateOpen; i++ {
		rec := postUpload(t, srv, prep, "trip-worker-"+string(rune('a'+i)))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("upload during fault: status = %d, want 503: %s", rec.Code, rec.Body.String())
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatal("503 during fault must carry Retry-After")
		}
	}
	if g.Breaker().State() != guard.StateOpen {
		t.Fatal("breaker did not open under consecutive store faults")
	}
}

// TestDegradedModeE2E is the acceptance flow: FaultFS forces the breaker
// open; test info and results still answer from cache with
// X-Kscope-Degraded: 1; uploads get 503 + Retry-After; /readyz reports
// degraded; the guard metrics are visible in /metrics; and after the disk
// recovers, a probe upload closes the breaker and fresh results match the
// from-scratch oracle.
func TestDegradedModeE2E(t *testing.T) {
	g := guard.New(guard.Config{
		MaxInflight:      8,
		BreakerThreshold: 2,
		BreakerCooldown:  20 * time.Millisecond,
		BreakerProbes:    1,
		RetryAfter:       time.Second,
	})
	srv, prep, ffs, reg := prepGuardedTest(t, g)

	// Healthy phase: one stored session, results cached.
	if rec := postUpload(t, srv, prep, "w-healthy"); rec.Code != http.StatusCreated {
		t.Fatalf("healthy upload: %d: %s", rec.Code, rec.Body.String())
	}
	var before Results
	if rec := doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results", nil, &before); rec.Code != http.StatusOK {
		t.Fatalf("healthy results: %d", rec.Code)
	}
	if rec := doJSON(t, srv, http.MethodGet, "/readyz", nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("readyz while healthy = %d", rec.Code)
	}

	tripBreaker(t, srv, prep, ffs, g)

	// Degraded reads: cached data with the degraded marker.
	var info TestInfo
	rec := doJSON(t, srv, http.MethodGet, "/api/tests/srv-test", nil, &info)
	if rec.Code != http.StatusOK || rec.Header().Get(DegradedHeader) != "1" {
		t.Fatalf("degraded test info: status=%d degraded=%q", rec.Code, rec.Header().Get(DegradedHeader))
	}
	if info.TestID != "srv-test" {
		t.Errorf("degraded info = %+v", info)
	}
	var during Results
	rec = doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results", nil, &during)
	if rec.Code != http.StatusOK || rec.Header().Get(DegradedHeader) != "1" {
		t.Fatalf("degraded results: status=%d degraded=%q", rec.Code, rec.Header().Get(DegradedHeader))
	}
	if !reflect.DeepEqual(before, during) {
		t.Errorf("degraded results differ from last good conclusion:\nbefore %+v\nduring %+v", before, during)
	}
	// Task payloads degrade the same way.
	rec = doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/task", nil, nil)
	if rec.Code != http.StatusOK || rec.Header().Get(DegradedHeader) != "1" {
		t.Errorf("degraded task: status=%d degraded=%q", rec.Code, rec.Header().Get(DegradedHeader))
	}

	// Uncacheable writes: 503 + Retry-After.
	rec = postUpload(t, srv, prep, "w-during-outage")
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("upload while open: status=%d retry-after=%q", rec.Code, rec.Header().Get("Retry-After"))
	}

	// Readiness and metrics reflect the open breaker.
	if rec := doJSON(t, srv, http.MethodGet, "/readyz", nil, nil); rec.Code != http.StatusServiceUnavailable ||
		rec.Header().Get("Retry-After") == "" {
		t.Errorf("readyz while open: status=%d retry-after=%q", rec.Code, rec.Header().Get("Retry-After"))
	}
	var sb strings.Builder
	reg.WriteMetrics(&sb)
	metrics := sb.String()
	for _, want := range []string{
		"kscope_guard_breaker_state 2",
		"kscope_guard_breaker_trips_total 1",
		"kscope_guard_degraded_total",
		"kscope_guard_shed_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if g.DegradedServes() < 3 {
		t.Errorf("degraded serves = %d, want >= 3", g.DegradedServes())
	}

	// Recovery: the disk heals, the cooldown elapses, and the next upload
	// is the half-open probe that closes the breaker.
	ffs.Reset()
	time.Sleep(30 * time.Millisecond)
	if rec := postUpload(t, srv, prep, "w-recovered"); rec.Code != http.StatusCreated {
		t.Fatalf("probe upload after recovery: %d: %s", rec.Code, rec.Body.String())
	}
	if got := g.Breaker().State(); got != guard.StateClosed {
		t.Fatalf("breaker after successful probe = %v, want closed", got)
	}
	if rec := doJSON(t, srv, http.MethodGet, "/readyz", nil, nil); rec.Code != http.StatusOK {
		t.Errorf("readyz after recovery = %d", rec.Code)
	}

	// Fresh results include both stored sessions and match the oracle.
	var after Results
	rec = doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results", nil, &after)
	if rec.Code != http.StatusOK || rec.Header().Get(DegradedHeader) != "" {
		t.Fatalf("post-recovery results: status=%d degraded=%q", rec.Code, rec.Header().Get(DegradedHeader))
	}
	if after.Workers != 2 {
		t.Errorf("post-recovery workers = %d, want 2", after.Workers)
	}
	oracle, err := srv.ConcludeScratch("srv-test", false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&after, oracle) {
		t.Errorf("post-recovery results diverge from oracle:\ngot    %+v\noracle %+v", &after, oracle)
	}
}

// TestDegradedResultsFromStaleSnapshot: even when the live results cache
// was invalidated (a session landed between the last conclusion and the
// outage), the last-known-good snapshot still answers degraded reads.
func TestDegradedResultsFromStaleSnapshot(t *testing.T) {
	g := guard.New(guard.Config{
		MaxInflight:      8,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute, // stays open for the whole test
	})
	srv, prep, ffs, _ := prepGuardedTest(t, g)

	if rec := postUpload(t, srv, prep, "w1"); rec.Code != http.StatusCreated {
		t.Fatalf("upload: %d", rec.Code)
	}
	var cached Results
	if rec := doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results", nil, &cached); rec.Code != http.StatusOK {
		t.Fatalf("results: %d", rec.Code)
	}
	// Another accepted session invalidates the live results cache — the
	// stale snapshot is now the only cached conclusion.
	if rec := postUpload(t, srv, prep, "w2"); rec.Code != http.StatusCreated {
		t.Fatalf("upload 2: %d", rec.Code)
	}
	tripBreaker(t, srv, prep, ffs, g)

	var got Results
	rec := doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results", nil, &got)
	if rec.Code != http.StatusOK || rec.Header().Get(DegradedHeader) != "1" {
		t.Fatalf("stale degraded results: status=%d degraded=%q: %s",
			rec.Code, rec.Header().Get(DegradedHeader), rec.Body.String())
	}
	if !reflect.DeepEqual(cached, got) {
		t.Errorf("stale snapshot mismatch:\ncached %+v\ngot    %+v", cached, got)
	}
	// A conclusion never cached before the outage has nothing to serve.
	rec = doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results?quality=1", nil, nil)
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Errorf("uncached degraded results: status=%d retry-after=%q",
			rec.Code, rec.Header().Get("Retry-After"))
	}
}

// TestAdmissionShedSetsRetryAfter: a saturated class sheds with 429 and the
// header every time.
func TestAdmissionShedSetsRetryAfter(t *testing.T) {
	g := guard.New(guard.Config{
		MaxInflight: 1,
		Inflight:    map[guard.Class]int{guard.ClassRead: 1},
		Queue:       map[guard.Class]int{guard.ClassRead: 0},
		QueueWait:   5 * time.Millisecond,
	})
	srv, _, _, _ := prepGuardedTest(t, g)

	// Occupy the single read slot out-of-band, as a slow in-flight request
	// would.
	release, ok := g.Admit(nil, guard.ClassRead)
	if !ok {
		t.Fatal("slot acquisition failed")
	}
	defer release()

	for i := 0; i < 3; i++ {
		rec := doJSON(t, srv, http.MethodGet, "/api/tests/srv-test", nil, nil)
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("shed status = %d, want 429: %s", rec.Code, rec.Body.String())
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatal("shed 429 must carry Retry-After")
		}
	}
	if g.Shed(guard.ClassRead) != 3 {
		t.Errorf("shed count = %d, want 3", g.Shed(guard.ClassRead))
	}
	// Exempt endpoints still answer while the API is saturated.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		if rec := doJSON(t, srv, http.MethodGet, path, nil, nil); rec.Code != http.StatusOK {
			t.Errorf("%s under saturation = %d, want 200", path, rec.Code)
		}
	}
}

// TestWorkerRateLimit: one hot worker is throttled with 429 + Retry-After;
// an independent worker is not.
func TestWorkerRateLimit(t *testing.T) {
	g := guard.New(guard.Config{
		MaxInflight: 8,
		Rate:        1,
		Burst:       2,
	})
	srv, _, _, _ := prepGuardedTest(t, g)

	get := func(worker string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, "/api/tests/srv-test", nil)
		req.Header.Set(guard.WorkerIDHeader, worker)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec
	}
	for i := 0; i < 2; i++ {
		if rec := get("hot"); rec.Code != http.StatusOK {
			t.Fatalf("burst request %d = %d", i, rec.Code)
		}
	}
	rec := get("hot")
	if rec.Code != http.StatusTooManyRequests || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("hot worker: status=%d retry-after=%q", rec.Code, rec.Header().Get("Retry-After"))
	}
	if rec := get("calm"); rec.Code != http.StatusOK {
		t.Errorf("independent worker throttled: %d", rec.Code)
	}
}

// TestCanceledUploadNotPersisted is the regression for the client-disconnect
// fix: a request whose context is already canceled must not store a
// session.
func TestCanceledUploadNotPersisted(t *testing.T) {
	srv, prep := prepTest(t)
	payload, err := json.Marshal(sampleUpload(prep, "gone-worker", questionnaire.ChoiceLeft))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/api/tests/srv-test/sessions",
		strings.NewReader(string(payload))).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestTimeout {
		t.Errorf("canceled upload status = %d, want %d", rec.Code, http.StatusRequestTimeout)
	}
	if n := srv.db.Collection(aggregator.ResponsesCollection).CountEq("test_id", "srv-test"); n != 0 {
		t.Errorf("canceled request persisted %d sessions, want 0", n)
	}
	// The same worker can upload for real afterwards — nothing half-stored.
	if rec := postUpload(t, srv, prep, "gone-worker"); rec.Code != http.StatusCreated {
		t.Errorf("re-upload after cancel = %d: %s", rec.Code, rec.Body.String())
	}
}

// TestCanceledResultsConclusion: a disconnected client does not get a tally
// computed on its behalf.
func TestCanceledResultsConclusion(t *testing.T) {
	srv, prep := prepTest(t)
	if rec := postUpload(t, srv, prep, "w1"); rec.Code != http.StatusCreated {
		t.Fatalf("upload: %d", rec.Code)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, "/api/tests/srv-test/results", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestTimeout {
		t.Errorf("canceled results status = %d, want %d", rec.Code, http.StatusRequestTimeout)
	}
}
