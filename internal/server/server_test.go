package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/crowd"
	"kaleidoscope/internal/params"
	"kaleidoscope/internal/quality"
	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/store"
	"kaleidoscope/internal/webgen"
)

// prepTest prepares a 2-version test in fresh storage and returns the
// server plus prepared metadata. Extra options (replication status, guard)
// are passed through to New.
func prepTest(t testing.TB, opts ...Option) (*Server, *aggregator.Prepared) {
	t.Helper()
	db := store.OpenMemory()
	blobs := store.NewBlobStore()
	agg, err := aggregator.New(db, blobs)
	if err != nil {
		t.Fatal(err)
	}
	test := &params.Test{
		TestID:          "srv-test",
		WebpageNum:      2,
		TestDescription: "server test",
		ParticipantNum:  10,
		Questions:       []string{"Which webpage's font size is more suitable (easier) for reading?"},
		Webpages: []params.Webpage{
			{WebPath: "a", WebPageLoad: params.PageLoadSpec{UniformMillis: 1000}, WebMainFile: "index.html"},
			{WebPath: "b", WebPageLoad: params.PageLoadSpec{UniformMillis: 1000}, WebMainFile: "index.html"},
		},
	}
	sites := map[string]*webgen.Site{
		"a": webgen.WikiArticle(webgen.WikiConfig{Seed: 1, FontSizePt: 12}),
		"b": webgen.WikiArticle(webgen.WikiConfig{Seed: 1, FontSizePt: 22}),
	}
	prep, err := agg.Prepare(test, sites, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(db, blobs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return srv, prep
}

func doJSON(t *testing.T, srv *Server, method, path string, body []byte, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if out != nil && rec.Code < 300 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decoding %s %s: %v (body %s)", method, path, err, rec.Body.String())
		}
	}
	return rec
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, store.NewBlobStore()); err == nil {
		t.Error("nil db should fail")
	}
	if _, err := New(store.OpenMemory(), nil); err == nil {
		t.Error("nil blobs should fail")
	}
}

func TestHealthz(t *testing.T) {
	srv, _ := prepTest(t)
	rec := doJSON(t, srv, http.MethodGet, "/healthz", nil, nil)
	if rec.Code != http.StatusOK {
		t.Errorf("healthz = %d", rec.Code)
	}
}

func TestTestInfoEndpoint(t *testing.T) {
	srv, prep := prepTest(t)
	var info TestInfo
	rec := doJSON(t, srv, http.MethodGet, "/api/tests/srv-test", nil, &info)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if info.TestID != "srv-test" || len(info.Questions) != 1 {
		t.Errorf("info = %+v", info)
	}
	if len(info.Pages) != len(prep.Pages) {
		t.Errorf("pages = %d, want %d", len(info.Pages), len(prep.Pages))
	}
	rec = doJSON(t, srv, http.MethodGet, "/api/tests/ghost", nil, nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("missing test status = %d", rec.Code)
	}
}

func TestTaskEndpoint(t *testing.T) {
	srv, _ := prepTest(t)
	var task Task
	rec := doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/task", nil, &task)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if task.RequiredWorkers != 10 || task.PageCount != 2 || task.TestID != "srv-test" {
		t.Errorf("task = %+v", task)
	}
}

func TestPageFileEndpoint(t *testing.T) {
	srv, prep := prepTest(t)
	pageID := prep.Pages[0].ID
	req := httptest.NewRequest(http.MethodGet, "/api/tests/srv-test/pages/"+pageID+"/index.html", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "kscope-left") {
		t.Error("index should contain the left iframe")
	}
	// left.html exists too.
	rec2 := doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/pages/"+pageID+"/left.html", nil, nil)
	if rec2.Code != http.StatusOK {
		t.Errorf("left.html status = %d", rec2.Code)
	}
	// Missing file 404s.
	rec3 := doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/pages/"+pageID+"/nope.html", nil, nil)
	if rec3.Code != http.StatusNotFound {
		t.Errorf("missing file status = %d", rec3.Code)
	}
	// Path traversal is rejected.
	req4 := httptest.NewRequest(http.MethodGet, "/api/tests/srv-test/pages/"+pageID+"/../../escape", nil)
	rec4 := httptest.NewRecorder()
	srv.ServeHTTP(rec4, req4)
	if rec4.Code == http.StatusOK {
		t.Error("traversal should not succeed")
	}
}

func sampleUpload(prep *aggregator.Prepared, workerID string, choice questionnaire.Choice) SessionUpload {
	up := SessionUpload{
		TestID:   "srv-test",
		WorkerID: workerID,
		Demographics: crowd.Demographics{
			Gender: "female", AgeBand: "25-34", Country: "US", TechAbility: 4,
		},
	}
	for _, p := range prep.RealPages() {
		up.Responses = append(up.Responses, questionnaire.Response{
			TestID: "srv-test", WorkerID: workerID, PageID: p.ID,
			QuestionID: "q0", Choice: choice, DurationMillis: 20000,
		})
		up.Behaviors = append(up.Behaviors, crowd.Behavior{TimeOnTaskMillis: 20000, CreatedTabs: 1, ActiveTabSwitches: 3})
	}
	for _, p := range prep.ControlPages() {
		up.Controls = append(up.Controls, quality.ControlOutcome{
			PageID: p.ID, Expected: p.Expected, Got: p.Expected,
		})
		up.Behaviors = append(up.Behaviors, crowd.Behavior{TimeOnTaskMillis: 15000, CreatedTabs: 1, ActiveTabSwitches: 2})
	}
	return up
}

func TestSessionUploadAndResults(t *testing.T) {
	srv, prep := prepTest(t)
	for i, choice := range []questionnaire.Choice{questionnaire.ChoiceLeft, questionnaire.ChoiceLeft, questionnaire.ChoiceRight} {
		up := sampleUpload(prep, "w"+string(rune('0'+i)), choice)
		payload, err := json.Marshal(up)
		if err != nil {
			t.Fatal(err)
		}
		rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil)
		if rec.Code != http.StatusCreated {
			t.Fatalf("upload status = %d: %s", rec.Code, rec.Body.String())
		}
	}
	var res Results
	rec := doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results", nil, &res)
	if rec.Code != http.StatusOK {
		t.Fatalf("results status = %d", rec.Code)
	}
	if res.Workers != 3 || res.Filtered {
		t.Errorf("results = %+v", res)
	}
	var realPage *PageResult
	for i := range res.Pages {
		if res.Pages[i].Kind == aggregator.KindReal {
			realPage = &res.Pages[i]
		}
	}
	if realPage == nil {
		t.Fatal("no real page in results")
	}
	if realPage.Tally.Left != 2 || realPage.Tally.Right != 1 {
		t.Errorf("tally = %+v", realPage.Tally)
	}
}

func TestResultsWithQualityControl(t *testing.T) {
	srv, prep := prepTest(t)
	// Two good workers and one hasty worker (fails engagement + control).
	for _, id := range []string{"good1", "good2"} {
		up := sampleUpload(prep, id, questionnaire.ChoiceLeft)
		payload, _ := json.Marshal(up)
		if rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil); rec.Code != http.StatusCreated {
			t.Fatalf("upload: %d", rec.Code)
		}
	}
	bad := sampleUpload(prep, "hasty", questionnaire.ChoiceRight)
	for i := range bad.Behaviors {
		bad.Behaviors[i].TimeOnTaskMillis = 800
	}
	bad.Controls[0].Got = questionnaire.ChoiceLeft
	payload, _ := json.Marshal(bad)
	if rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil); rec.Code != http.StatusCreated {
		t.Fatalf("upload: %d", rec.Code)
	}

	var raw Results
	doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results", nil, &raw)
	if raw.Workers != 3 {
		t.Errorf("raw workers = %d", raw.Workers)
	}
	var filtered Results
	doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results?quality=1", nil, &filtered)
	if !filtered.Filtered || filtered.Workers != 2 || filtered.DroppedWorkers != 1 {
		t.Errorf("filtered results = %+v", filtered)
	}
}

func TestSessionUploadValidation(t *testing.T) {
	srv, prep := prepTest(t)
	// Garbage body.
	rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", []byte("{"), nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("garbage status = %d", rec.Code)
	}
	// Missing worker id.
	up := sampleUpload(prep, "", questionnaire.ChoiceLeft)
	payload, _ := json.Marshal(up)
	rec = doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing worker status = %d", rec.Code)
	}
	// Unknown page reference.
	up = sampleUpload(prep, "w9", questionnaire.ChoiceLeft)
	up.Responses[0].PageID = "ghost-page"
	payload, _ = json.Marshal(up)
	rec = doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown page status = %d", rec.Code)
	}
	// Unknown test.
	rec = doJSON(t, srv, http.MethodPost, "/api/tests/ghost/sessions", payload, nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown test status = %d", rec.Code)
	}
	// Mismatched test id in body.
	up = sampleUpload(prep, "w10", questionnaire.ChoiceLeft)
	up.TestID = "other"
	payload, _ = json.Marshal(up)
	rec = doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("mismatched test status = %d", rec.Code)
	}
}

func TestSessionsAccessor(t *testing.T) {
	srv, prep := prepTest(t)
	up := sampleUpload(prep, "w1", questionnaire.ChoiceSame)
	payload, _ := json.Marshal(up)
	doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil)
	sessions, err := srv.Sessions("srv-test")
	if err != nil {
		t.Fatalf("Sessions: %v", err)
	}
	if len(sessions) != 1 || sessions[0].WorkerID != "w1" {
		t.Errorf("sessions = %+v", sessions)
	}
	if sessions[0].Demographics.Country != "US" {
		t.Errorf("demographics lost: %+v", sessions[0].Demographics)
	}
}

func TestConcludeUnknownTest(t *testing.T) {
	srv, _ := prepTest(t)
	if _, err := srv.Conclude("ghost", nil); err == nil {
		t.Error("unknown test should fail")
	}
}

func TestListTests(t *testing.T) {
	srv, prep := prepTest(t)
	var summaries []TestSummary
	rec := doJSON(t, srv, http.MethodGet, "/api/tests", nil, &summaries)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if len(summaries) != 1 {
		t.Fatalf("summaries = %+v", summaries)
	}
	s := summaries[0]
	if s.TestID != "srv-test" || s.Participants != 10 || s.PageCount != 2 || s.Sessions != 0 {
		t.Errorf("summary = %+v", s)
	}
	// Upload a session: the count reflects it.
	up := sampleUpload(prep, "w1", questionnaire.ChoiceLeft)
	payload, _ := json.Marshal(up)
	doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil)
	doJSON(t, srv, http.MethodGet, "/api/tests", nil, &summaries)
	if summaries[0].Sessions != 1 {
		t.Errorf("sessions = %d, want 1", summaries[0].Sessions)
	}
}
