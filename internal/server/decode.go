package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

// errTrailingData rejects request bodies that carry bytes after the JSON
// value. Historically the decoders stopped at the end of the first value
// and silently accepted `{"..."}junk`; every decode surface (single upload,
// builder, batch) now requires EOF after the value and answers 400.
var errTrailingData = errors.New("trailing data after JSON value")

// decodeStrict decodes exactly one JSON value from r into v and requires
// EOF (modulo whitespace) after it.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	if err := dec.Decode(v); err != nil {
		return err
	}
	return requireEOF(dec)
}

// requireEOF asserts a decoder's stream holds nothing but whitespace.
func requireEOF(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		if err == nil {
			return errTrailingData
		}
		return fmt.Errorf("%w: %v", errTrailingData, err)
	}
	return nil
}

// uploadPool recycles SessionUpload structs (and the slice capacity inside
// them) across batch elements: the batch hot path decodes tens of
// thousands of sessions per request, and a fresh struct + three fresh
// slices per element is pure allocator churn.
var uploadPool = sync.Pool{New: func() any { return new(SessionUpload) }}

// resetForReuse zeroes the upload while keeping its slices' capacity. The
// element zeroing (clear) matters for correctness, not just hygiene:
// encoding/json decodes array elements into the existing backing array
// without clearing them first, so a field absent from the wire would
// otherwise inherit a value from a previous batch element.
func (u *SessionUpload) resetForReuse() {
	responses := u.Responses[:cap(u.Responses)]
	clear(responses)
	behaviors := u.Behaviors[:cap(u.Behaviors)]
	clear(behaviors)
	controls := u.Controls[:cap(u.Controls)]
	clear(controls)
	*u = SessionUpload{
		Responses: responses[:0],
		Behaviors: behaviors[:0],
		Controls:  controls[:0],
	}
}

// encodePool recycles the buffers sessions are re-marshaled into before
// they are persisted.
var encodePool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// marshalSession renders the persisted form of a session — byte-identical
// to json.Marshal on the same value — through a pooled buffer, returning
// the one string copy that outlives the request (it is what lands in the
// stored document).
func marshalSession(u *SessionUpload) (string, error) {
	buf := encodePool.Get().(*bytes.Buffer)
	defer encodePool.Put(buf)
	buf.Reset()
	enc := json.NewEncoder(buf)
	if err := enc.Encode(u); err != nil {
		return "", err
	}
	// Encoder appends a newline json.Marshal does not produce.
	return string(bytes.TrimSuffix(buf.Bytes(), []byte("\n"))), nil
}

// gzipPool recycles gzip inflaters across batch requests.
var gzipPool sync.Pool

// acquireGzip returns a pooled gzip reader reset onto r; release it with
// releaseGzip.
func acquireGzip(r io.Reader) (*gzip.Reader, error) {
	if g, ok := gzipPool.Get().(*gzip.Reader); ok {
		if err := g.Reset(r); err != nil {
			gzipPool.Put(g)
			return nil, err
		}
		return g, nil
	}
	return gzip.NewReader(r)
}

func releaseGzip(g *gzip.Reader) {
	gzipPool.Put(g)
}

// budgetReader enforces the whole-batch decompressed-byte budget: a gzip
// bomb inflates past the budget and hits errBatchBudget long before it can
// exhaust memory, no matter how small its compressed form was.
type budgetReader struct {
	r io.Reader
	// remaining is budget+1: like http.MaxBytesReader, one slack byte lets
	// a stream of exactly budget bytes reach its real EOF while anything
	// longer errors on the read after the budget is spent.
	remaining int64
}

var errBatchBudget = errors.New("batch exceeds decompressed byte budget")

func newBudgetReader(r io.Reader, budget int64) *budgetReader {
	return &budgetReader{r: r, remaining: budget + 1}
}

func (b *budgetReader) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, errBatchBudget
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.r.Read(p)
	b.remaining -= int64(n)
	return n, err
}
