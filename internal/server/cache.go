package server

import (
	"sync"
	"sync/atomic"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/questionnaire"
)

// testEntry is the cached serving-side view of one prepared test: the full
// Prepared (control answers included, for concluding), the redacted
// extension-facing TestInfo, and the control-answer lookup used to score
// uploaded sessions. Entries are immutable once cached; handlers only read
// and serialize them.
type testEntry struct {
	prep     *aggregator.Prepared
	info     *TestInfo
	expected map[string]questionnaire.Choice
}

func newTestEntry(prep *aggregator.Prepared) *testEntry {
	views := make([]PageView, len(prep.Pages))
	expected := make(map[string]questionnaire.Choice)
	for i, p := range prep.Pages {
		views[i] = PageView{
			ID:        p.ID,
			TestID:    p.TestID,
			LeftName:  p.LeftName,
			RightName: p.RightName,
			Kind:      p.Kind,
		}
		if p.Kind == aggregator.KindControl {
			expected[p.ID] = p.Expected
		}
	}
	return &testEntry{
		prep: prep,
		info: &TestInfo{
			TestID:      prep.Test.TestID,
			Description: prep.Test.TestDescription,
			Questions:   prep.Test.Questions,
			Pages:       views,
		},
		expected: expected,
	}
}

// resultsKey caches concluded results per test and per default-battery mode
// (only the deterministic default config is cached; custom configs bypass).
type resultsKey struct {
	testID  string
	quality bool
}

// servingCache keeps the serving path off the parse-and-scan floor: test
// metadata (params_json re-parse), decoded sessions, and concluded results
// are all cached per test id and invalidated through store change hooks.
//
// A per-test generation counter closes the fill/invalidate race: a fill
// computed from pre-invalidation state carries the generation it started
// from and is discarded when an invalidation has happened in between.
type servingCache struct {
	mu       sync.RWMutex
	gens     map[string]uint64
	tests    map[string]*testEntry
	sessions map[string][]SessionUpload
	results  map[resultsKey]*Results

	// staleTests and staleResults are last-known-good snapshots for
	// degraded-mode serving: every accepted (and even generation-raced —
	// the data itself is valid) fill lands here too, and invalidation never
	// clears them. While the store circuit breaker is open, reads that miss
	// the live cache fall back to these instead of touching the faulting
	// store.
	staleTests   map[string]*testEntry
	staleResults map[resultsKey]*Results

	testHits, testMisses       atomic.Int64
	sessionHits, sessionMisses atomic.Int64
	resultHits, resultMisses   atomic.Int64
}

func newServingCache() *servingCache {
	return &servingCache{
		gens:         make(map[string]uint64),
		tests:        make(map[string]*testEntry),
		sessions:     make(map[string][]SessionUpload),
		results:      make(map[resultsKey]*Results),
		staleTests:   make(map[string]*testEntry),
		staleResults: make(map[resultsKey]*Results),
	}
}

// gen returns the current generation for a test id.
func (c *servingCache) gen(testID string) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gens[testID]
}

func (c *servingCache) test(testID string) (*testEntry, bool) {
	c.mu.RLock()
	e, ok := c.tests[testID]
	c.mu.RUnlock()
	if ok {
		c.testHits.Add(1)
	} else {
		c.testMisses.Add(1)
	}
	return e, ok
}

func (c *servingCache) putTest(testID string, gen uint64, e *testEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.staleTests[testID] = e
	if c.gens[testID] != gen {
		return
	}
	c.tests[testID] = e
}

// staleTest returns the last-known-good entry for degraded-mode serving.
func (c *servingCache) staleTest(testID string) (*testEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.staleTests[testID]
	return e, ok
}

func (c *servingCache) sessionsFor(testID string) ([]SessionUpload, bool) {
	c.mu.RLock()
	s, ok := c.sessions[testID]
	c.mu.RUnlock()
	if ok {
		c.sessionHits.Add(1)
	} else {
		c.sessionMisses.Add(1)
	}
	return s, ok
}

func (c *servingCache) putSessions(testID string, gen uint64, s []SessionUpload) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gens[testID] != gen {
		return
	}
	c.sessions[testID] = s
}

func (c *servingCache) resultsFor(key resultsKey) (*Results, bool) {
	c.mu.RLock()
	r, ok := c.results[key]
	c.mu.RUnlock()
	if ok {
		c.resultHits.Add(1)
	} else {
		c.resultMisses.Add(1)
	}
	return r, ok
}

// putResults caches a computed conclusion and reports whether it was
// accepted; a fill computed against a superseded generation is rejected so
// the cache never claims a generation newer than the data it serves.
func (c *servingCache) putResults(key resultsKey, gen uint64, r *Results) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.staleResults[key] = r
	if c.gens[key.testID] != gen {
		return false
	}
	c.results[key] = r
	return true
}

// staleResults returns the last-known-good conclusion for degraded-mode
// serving.
func (c *servingCache) staleResultsFor(key resultsKey) (*Results, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.staleResults[key]
	return r, ok
}

// invalidateTest drops everything derived from a test's stored documents.
func (c *servingCache) invalidateTest(testID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[testID]++
	delete(c.tests, testID)
	c.dropDerived(testID)
}

// invalidateSessions drops session-derived state (decoded sessions and
// concluded results) after a new session insert; the test metadata itself
// stays cached.
func (c *servingCache) invalidateSessions(testID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[testID]++
	c.dropDerived(testID)
}

func (c *servingCache) dropDerived(testID string) {
	delete(c.sessions, testID)
	delete(c.results, resultsKey{testID, false})
	delete(c.results, resultsKey{testID, true})
}

// purgeTest erases every trace of a deleted test, including the
// last-known-good degraded-mode snapshots that ordinary invalidation
// deliberately preserves: after deletion there is no "good" state left to
// serve. The generation entry is kept (bumped), not deleted — a results
// fill that raced the deletion still has to find a generation newer than
// its snapshot, or it would re-populate the live cache for a test that no
// longer exists.
func (c *servingCache) purgeTest(testID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[testID]++
	delete(c.tests, testID)
	c.dropDerived(testID)
	delete(c.staleTests, testID)
	delete(c.staleResults, resultsKey{testID, false})
	delete(c.staleResults, resultsKey{testID, true})
}

// invalidateAll resets the cache (used when a change event's test id cannot
// be attributed).
func (c *servingCache) invalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id := range c.gens {
		c.gens[id]++
	}
	// Entries for ids never seen under gens still need a bump marker.
	for id := range c.tests {
		c.gens[id]++
	}
	c.tests = make(map[string]*testEntry)
	c.sessions = make(map[string][]SessionUpload)
	c.results = make(map[resultsKey]*Results)
}
