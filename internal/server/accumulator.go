package server

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"kaleidoscope/internal/quality"
	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/store"
)

// resultsAccumulator is the incremental results engine: per-test streaming
// state — raw per-page tallies, per-worker QC features, per-question vote
// counts — maintained O(1) per response at session-upload time (driven by
// the responses collection's change feed), so a results request is served
// from live state instead of re-reading and re-tallying every stored
// session.
//
// The from-scratch Conclude stays untouched as the differential oracle
// (the same pattern as the aggregator's WithSequential): for any test at
// any point, results() must deep-equal Conclude with the same battery.
// Custom quality configs never reach the accumulator — they go through the
// oracle.
//
// Consistency contract with the serving cache's generation counters: the
// accumulator is updated in the store's OnChange hook *before* the cache
// generation for the test is bumped (see New). A reader that snapshots the
// generation and then reads the accumulator therefore sees state at least
// as new as the snapshot — a result computed from it may be cached under
// that generation without ever pinning data older than the generation it
// claims.
type resultsAccumulator struct {
	mu    sync.Mutex
	tests map[string]*testAccum

	// Counters exported as gauges when observability is on.
	applied       atomic.Int64 // sessions folded in incrementally
	rebuilds      atomic.Int64 // full rebuilds from storage
	invalidations atomic.Int64 // tests dropped back to lazy state
	sessions      atomic.Int64 // sessions currently held across tests
}

// workerAccum is one stored session reduced to what serving needs: the raw
// document payload (to detect overwrites) and the extracted QC features
// (which also carry the response keys for tallying).
type workerAccum struct {
	raw   string
	feats quality.Features
}

// testAccum is the live state for one test.
type testAccum struct {
	// order holds the session document ids sorted ascending — exactly the
	// order FindEq returns them in, which is the order the oracle's
	// Conclude sees sessions and emits KeptWorkers.
	order   []string
	workers map[string]*workerAccum
	// tallies are the raw (unfiltered) per-page counts over all sessions.
	tallies map[string]*questionnaire.Tally
	// votes feed the majority (crowd-wisdom) check without revisiting
	// sessions.
	votes *quality.Votes
}

func newResultsAccumulator() *resultsAccumulator {
	return &resultsAccumulator{tests: make(map[string]*testAccum)}
}

// observe is the change-feed entry point, called on the mutating goroutine
// after a responses-collection mutation commits. Deletes and overwrites
// drop the test back to lazy state (the next results request rebuilds);
// inserts for tests with live state are folded in incrementally. Events
// for tests without live state are ignored — the state is built on first
// use from storage, which already contains those documents.
func (a *resultsAccumulator) observe(op, docID, testID string, coll *store.Collection) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ta, ok := a.tests[testID]
	if !ok {
		return
	}
	if op != store.OpPut {
		a.invalidateLocked(testID, ta)
		return
	}
	doc, err := coll.Get(docID)
	if err != nil {
		a.invalidateLocked(testID, ta)
		return
	}
	raw, _ := doc["session"].(string)
	if existing, ok := ta.workers[docID]; ok {
		if existing.raw == raw {
			return // replayed event for a session already folded in
		}
		// Overwrite of a stored session (only possible through direct
		// store access): incremental removal isn't supported, rebuild.
		a.invalidateLocked(testID, ta)
		return
	}
	var upload SessionUpload
	if err := json.Unmarshal([]byte(raw), &upload); err != nil {
		// Corrupt document: drop to lazy state so the rebuild surfaces
		// the same storage-fault error the oracle reports.
		a.invalidateLocked(testID, ta)
		return
	}
	ta.add(docID, raw, upload)
	a.applied.Add(1)
	a.sessions.Add(1)
}

// invalidate drops one test's live state.
func (a *resultsAccumulator) invalidate(testID string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if ta, ok := a.tests[testID]; ok {
		a.invalidateLocked(testID, ta)
	}
}

// invalidateAll drops every test's live state (unattributable change).
func (a *resultsAccumulator) invalidateAll() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for id, ta := range a.tests {
		a.invalidateLocked(id, ta)
	}
}

func (a *resultsAccumulator) invalidateLocked(testID string, ta *testAccum) {
	a.sessions.Add(-int64(len(ta.order)))
	a.invalidations.Add(1)
	delete(a.tests, testID)
}

// add folds one decoded session into the live state.
func (ta *testAccum) add(docID, raw string, upload SessionUpload) {
	feats := quality.ExtractFeatures(quality.WorkerSession{
		WorkerID:  upload.WorkerID,
		Responses: upload.Responses,
		Behaviors: upload.Behaviors,
		Controls:  upload.Controls,
	})
	i := sort.SearchStrings(ta.order, docID)
	ta.order = append(ta.order, "")
	copy(ta.order[i+1:], ta.order[i:])
	ta.order[i] = docID
	ta.workers[docID] = &workerAccum{raw: raw, feats: feats}
	for _, r := range feats.Responses {
		t, ok := ta.tallies[r.PageID]
		if !ok {
			t = &questionnaire.Tally{}
			ta.tallies[r.PageID] = t
		}
		t.Add(r.Choice)
	}
	ta.votes.Add(feats.Responses)
}

// loadLocked returns the live state for a test, building it from storage
// on first use. Change events raced during the build are harmless: the
// build reads committed documents, and a replayed insert event for a
// document already folded in is deduplicated by id and payload in observe.
func (a *resultsAccumulator) loadLocked(testID string, coll *store.Collection) (*testAccum, error) {
	if ta, ok := a.tests[testID]; ok {
		return ta, nil
	}
	ta := &testAccum{
		workers: make(map[string]*workerAccum),
		tallies: make(map[string]*questionnaire.Tally),
		votes:   quality.NewVotes(),
	}
	for _, doc := range coll.FindEq("test_id", testID) {
		raw, _ := doc["session"].(string)
		var upload SessionUpload
		if err := json.Unmarshal([]byte(raw), &upload); err != nil {
			return nil, fmt.Errorf("server: corrupt session %s: %w", doc.ID(), err)
		}
		ta.add(doc.ID(), raw, upload)
	}
	a.tests[testID] = ta
	a.rebuilds.Add(1)
	a.sessions.Add(int64(len(ta.order)))
	return ta, nil
}

// results serves a conclusion from live state. It must produce exactly
// what the oracle produces: same worker counts, same kept-worker order
// (session-document-id order), same tallies, same page order, and the
// same Filtered quirk (false when quality control is requested but no
// sessions exist).
func (a *resultsAccumulator) results(testID string, entry *testEntry, useQC bool, coll *store.Collection) (*Results, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ta, err := a.loadLocked(testID, coll)
	if err != nil {
		return nil, err
	}

	res := &Results{TestID: testID, Workers: len(ta.order)}
	tallies := ta.tallies
	if useQC && len(ta.order) > 0 {
		cfg := *defaultQC(entry)
		majority := ta.votes.Majority(cfg.MinPeersForMajority)
		tallies = make(map[string]*questionnaire.Tally)
		kept := 0
		for _, docID := range ta.order {
			w := ta.workers[docID]
			if !w.feats.Evaluate(cfg, majority).Passed {
				continue
			}
			kept++
			res.KeptWorkers = append(res.KeptWorkers, w.feats.WorkerID)
			for _, r := range w.feats.Responses {
				t, ok := tallies[r.PageID]
				if !ok {
					t = &questionnaire.Tally{}
					tallies[r.PageID] = t
				}
				t.Add(r.Choice)
			}
		}
		res.Filtered = true
		res.DroppedWorkers = len(ta.order) - kept
		res.Workers = kept
	}
	for _, p := range entry.info.Pages {
		pr := PageResult{PageID: p.ID, LeftName: p.LeftName, RightName: p.RightName, Kind: p.Kind}
		if t, ok := tallies[p.ID]; ok {
			pr.Tally = *t
		}
		res.Pages = append(res.Pages, pr)
	}
	return res, nil
}

// registerGauges exports the accumulator's live-state statistics.
func (a *resultsAccumulator) registerGauges(s *Server) {
	s.reg.RegisterGauge("kscope_accum_tests", func() float64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return float64(len(a.tests))
	})
	s.reg.RegisterGauge("kscope_accum_sessions", func() float64 {
		return float64(a.sessions.Load())
	})
	s.reg.RegisterGauge("kscope_accum_applied_total", func() float64 {
		return float64(a.applied.Load())
	})
	s.reg.RegisterGauge("kscope_accum_rebuilds_total", func() float64 {
		return float64(a.rebuilds.Load())
	})
	s.reg.RegisterGauge("kscope_accum_invalidations_total", func() float64 {
		return float64(a.invalidations.Load())
	})
}
