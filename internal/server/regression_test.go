package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/store"
)

// Control answers must never appear in extension-facing payloads: neither
// the test-info JSON nor the task JSON may carry an "expected" field.
func TestNoControlAnswerLeakage(t *testing.T) {
	srv, prep := prepTest(t)
	if len(prep.ControlPages()) == 0 {
		t.Fatal("test fixture has no control pages")
	}
	for _, path := range []string{"/api/tests/srv-test", "/api/tests/srv-test/task"} {
		rec := doJSON(t, srv, http.MethodGet, path, nil, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s status = %d", path, rec.Code)
		}
		var generic map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &generic); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if strings.Contains(rec.Body.String(), `"expected"`) {
			t.Errorf("%s leaks control answers:\n%s", path, rec.Body.String())
		}
	}
	// The answers must still be available internally for scoring.
	entry, err := srv.load("srv-test")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range prep.ControlPages() {
		if entry.expected[p.ID] != p.Expected {
			t.Errorf("internal expected answer lost for %s", p.ID)
		}
	}
}

// A forged Expected in an uploaded control outcome must not survive: the
// server re-scores controls against storage, so a worker who answers a
// control wrong is dropped by quality control even if the upload claims the
// expected answer matched.
func TestForgedControlExpectedRejected(t *testing.T) {
	srv, prep := prepTest(t)
	control := prep.ControlPages()[0]
	wrong := questionnaire.ChoiceLeft
	if control.Expected == wrong {
		wrong = questionnaire.ChoiceRight
	}

	honest := sampleUpload(prep, "honest", questionnaire.ChoiceLeft)
	// The extension client no longer sends Expected at all.
	for i := range honest.Controls {
		honest.Controls[i].Expected = ""
	}
	cheat := sampleUpload(prep, "cheat", questionnaire.ChoiceLeft)
	for i := range cheat.Controls {
		// Wrong answer, but forged so Expected == Got client-side.
		cheat.Controls[i].Got = wrong
		cheat.Controls[i].Expected = wrong
	}
	for _, up := range []SessionUpload{honest, cheat} {
		payload, _ := json.Marshal(up)
		if rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil); rec.Code != http.StatusCreated {
			t.Fatalf("upload %s: %d %s", up.WorkerID, rec.Code, rec.Body.String())
		}
	}

	var filtered Results
	doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results?quality=1", nil, &filtered)
	if filtered.Workers != 1 || filtered.DroppedWorkers != 1 {
		t.Fatalf("filtered = %+v", filtered)
	}
	if len(filtered.KeptWorkers) != 1 || filtered.KeptWorkers[0] != "honest" {
		t.Errorf("kept = %v, want [honest]", filtered.KeptWorkers)
	}
}

func TestUploadStatusCodes(t *testing.T) {
	srv, prep := prepTest(t)

	// First upload succeeds, byte-identical retry conflicts.
	up := sampleUpload(prep, "dup", questionnaire.ChoiceLeft)
	payload, _ := json.Marshal(up)
	if rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil); rec.Code != http.StatusCreated {
		t.Fatalf("first upload = %d", rec.Code)
	}
	if rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil); rec.Code != http.StatusConflict {
		t.Errorf("duplicate upload = %d, want 409", rec.Code)
	}

	// Oversized body is cut off with 413.
	big := sampleUpload(prep, "big", questionnaire.ChoiceLeft)
	big.Responses[0].Comment = strings.Repeat("x", maxSessionBytes+1)
	payload, _ = json.Marshal(big)
	if rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload = %d, want 413", rec.Code)
	}

	// A control outcome naming a non-control page is a client error.
	forged := sampleUpload(prep, "sneak", questionnaire.ChoiceLeft)
	forged.Controls[0].PageID = prep.RealPages()[0].ID
	payload, _ = json.Marshal(forged)
	if rec := doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil); rec.Code != http.StatusBadRequest {
		t.Errorf("non-control control outcome = %d, want 400", rec.Code)
	}
}

// A session document that fails to decode is a storage fault (500), not a
// missing resource (404).
func TestCorruptSessionIs500(t *testing.T) {
	srv, _ := prepTest(t)
	_, err := srv.db.Collection(aggregator.ResponsesCollection).Insert(store.Document{
		store.IDField: "srv-test/evil",
		"test_id":     "srv-test",
		"worker_id":   "evil",
		"session":     "{not json",
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results", nil, nil)
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("corrupt session results = %d, want 500", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/dashboard/srv-test", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("corrupt session dashboard = %d, want 500", rec.Code)
	}
}

// Cached results must be invalidated when a new session arrives, and cached
// test metadata must survive session churn (only session-derived state is
// dropped).
func TestCacheInvalidationOnUpload(t *testing.T) {
	srv, prep := prepTest(t)

	var res Results
	doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results", nil, &res)
	if res.Workers != 0 {
		t.Fatalf("workers = %d", res.Workers)
	}
	// Second read is a cache hit.
	before := srv.cache.resultHits.Load()
	doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results", nil, &res)
	if srv.cache.resultHits.Load() != before+1 {
		t.Error("second results read should hit the cache")
	}

	up := sampleUpload(prep, "w1", questionnaire.ChoiceLeft)
	payload, _ := json.Marshal(up)
	doJSON(t, srv, http.MethodPost, "/api/tests/srv-test/sessions", payload, nil)

	doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results", nil, &res)
	if res.Workers != 1 {
		t.Errorf("post-upload workers = %d, want 1 (stale cache?)", res.Workers)
	}

	// Test metadata stayed cached across the upload.
	misses := srv.cache.testMisses.Load()
	if _, err := srv.load("srv-test"); err != nil {
		t.Fatal(err)
	}
	if srv.cache.testMisses.Load() != misses {
		t.Error("upload should not evict test metadata")
	}
}

// Concurrent uploads against the cached serving path: distinct workers all
// land, and racing duplicates of one worker id produce exactly one 201.
// Interleaved reads exercise load/Sessions/Conclude under -race.
func TestConcurrentUploadsAgainstCache(t *testing.T) {
	srv, prep := prepTest(t)
	const workers = 16
	var wg sync.WaitGroup
	codes := make([]int, workers)
	dupCodes := make([]int, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			up := sampleUpload(prep, fmt.Sprintf("w%02d", i), questionnaire.ChoiceLeft)
			payload, _ := json.Marshal(up)
			req := httptest.NewRequest(http.MethodPost, "/api/tests/srv-test/sessions", bytes.NewReader(payload))
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			codes[i] = rec.Code

			dup := sampleUpload(prep, "contended", questionnaire.ChoiceRight)
			payload, _ = json.Marshal(dup)
			req = httptest.NewRequest(http.MethodPost, "/api/tests/srv-test/sessions", bytes.NewReader(payload))
			rec = httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			dupCodes[i] = rec.Code

			// Reads race the uploads through the cache.
			srv.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/api/tests/srv-test", nil))
			srv.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/api/tests/srv-test/results", nil))
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusCreated {
			t.Errorf("worker %d upload = %d", i, code)
		}
	}
	created, conflict := 0, 0
	for _, code := range dupCodes {
		switch code {
		case http.StatusCreated:
			created++
		case http.StatusConflict:
			conflict++
		}
	}
	if created != 1 || conflict != workers-1 {
		t.Errorf("contended worker: %d created / %d conflict, want 1 / %d", created, conflict, workers-1)
	}
	var res Results
	doJSON(t, srv, http.MethodGet, "/api/tests/srv-test/results", nil, &res)
	if res.Workers != workers+1 {
		t.Errorf("workers = %d, want %d", res.Workers, workers+1)
	}
}

func TestRouteLabel(t *testing.T) {
	tests := []struct {
		method, path, want string
	}{
		{"GET", "/api/tests", "GET /api/tests"},
		{"GET", "/api/tests/t1", "GET /api/tests/{id}"},
		{"GET", "/api/tests/t1/task", "GET /api/tests/{id}/task"},
		{"POST", "/api/tests/t1/sessions", "POST /api/tests/{id}/sessions"},
		{"GET", "/api/tests/t1/results", "GET /api/tests/{id}/results"},
		{"GET", "/api/tests/t1/pages/pair-0-1/index.html", "GET /api/tests/{id}/pages"},
		{"GET", "/dashboard/t1", "GET /dashboard/{id}"},
		{"GET", "/metrics", "GET /metrics"},
		{"GET", "/favicon.ico", "GET other"},
	}
	for _, tt := range tests {
		r := httptest.NewRequest(tt.method, tt.path, nil)
		if got := RouteLabel(r); got != tt.want {
			t.Errorf("RouteLabel(%s %s) = %q, want %q", tt.method, tt.path, got, tt.want)
		}
	}
}
