package server

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/earlystop"
	"kaleidoscope/internal/store"
)

// ConcludedHeader marks responses for tests the sequential engine has
// already decided: an upload for a concluded test is acknowledged with
// 200 (not 201) plus this header set to "1", and nothing is stored — the
// crowd's remaining budget belongs to undecided tests.
const ConcludedHeader = "X-Kscope-Concluded"

// EarlyStopConfig enables adaptive sequential early stopping on the
// serving path. Alpha is the per-test family-wise false-stop rate (see
// earlystop.Config); MinVotes optionally floors the per-stream decisive
// vote count before a decision may latch.
type EarlyStopConfig struct {
	Alpha    float64
	MinVotes int
}

// WithEarlyStop folds every stored session into a per-test sequential
// engine and flips the test to concluded the moment a winner is decided:
// later uploads get 200 + X-Kscope-Concluded instead of being stored,
// and /results carries the decision metadata. Off by default — fixed-n
// campaigns are unaffected unless the option is given.
func WithEarlyStop(cfg EarlyStopConfig) Option {
	return func(s *Server) {
		s.early = newEarlyTracker(cfg)
	}
}

// earlyTest is the tracker's live state for one test. Mirroring the
// results accumulator: folded state can be dropped (stale) and lazily
// rebuilt from storage in document-id order, but the latched decision is
// permanent for the life of the test — only deletion clears it.
type earlyTest struct {
	state    *earlystop.State
	folded   map[string]string // docID -> raw payload, for replay dedup
	decision *earlystop.Decision
}

// earlyTracker owns the sequential engines for every test the server has
// seen votes for. Like the accumulator it is driven by the responses
// change feed, but unlike the pull-rebuilt accumulator it folds eagerly:
// a decision must exist by the time the *next* upload asks "is this test
// concluded?", not when somebody happens to request results.
type earlyTracker struct {
	mu    sync.Mutex
	cfg   EarlyStopConfig
	tests map[string]*earlyTest

	folds    atomic.Int64 // sessions folded into engines
	rebuilds atomic.Int64 // full rebuilds from storage
	decided  atomic.Int64 // decisions latched
	rejects  atomic.Int64 // uploads answered 200 + X-Kscope-Concluded
}

func newEarlyTracker(cfg EarlyStopConfig) *earlyTracker {
	return &earlyTracker{cfg: cfg, tests: make(map[string]*earlyTest)}
}

// engineConfig sizes the evidence family from the test's metadata: one
// stream per real page per question.
func (e *earlyTracker) engineConfig(entry *testEntry) earlystop.Config {
	streams := len(entry.prep.RealPages()) * len(entry.info.Questions)
	if streams < 1 {
		streams = 1
	}
	return earlystop.Config{Alpha: e.cfg.Alpha, Streams: streams, MinVotes: e.cfg.MinVotes}
}

// votesFrom reduces a session to its decisive evidence: one vote per
// response on a real page. Control-page answers are quality bait, not
// preference evidence, and never reach the engine.
func votesFrom(entry *testEntry, upload *SessionUpload) []earlystop.Vote {
	real := make(map[string]bool)
	for _, p := range entry.info.Pages {
		if p.Kind == aggregator.KindReal {
			real[p.ID] = true
		}
	}
	votes := make([]earlystop.Vote, 0, len(upload.Responses))
	for _, r := range upload.Responses {
		if !real[r.PageID] {
			continue
		}
		votes = append(votes, earlystop.Vote{
			PageID:     r.PageID,
			QuestionID: r.QuestionID,
			Choice:     r.Choice,
		})
	}
	return votes
}

// decision returns the latched decision for a test, or nil.
func (e *earlyTracker) decision(testID string) *earlystop.Decision {
	e.mu.Lock()
	defer e.mu.Unlock()
	if et, ok := e.tests[testID]; ok && et.decision != nil {
		d := *et.decision
		return &d
	}
	return nil
}

// observe is the change-feed entry point, called after a
// responses-collection mutation commits (same goroutine and ordering as
// the accumulator's observe). Inserts are folded eagerly — building the
// engine from storage on a test's first session; deletes and overwrites
// drop the engine state but keep the latched decision.
func (e *earlyTracker) observe(op, docID, testID string, entry *testEntry, coll *store.Collection) {
	e.mu.Lock()
	defer e.mu.Unlock()
	et, ok := e.tests[testID]
	if op != store.OpPut {
		if ok {
			et.state = nil
			et.folded = nil
		}
		return
	}
	if ok && et.decision != nil {
		// Decided: evidence accounting is over; stored stragglers (uploads
		// that raced the decision) no longer move anything.
		return
	}
	if !ok || et.state == nil {
		e.rebuildLocked(testID, entry, coll)
		return
	}
	doc, err := coll.Get(docID)
	if err != nil {
		et.state = nil
		et.folded = nil
		return
	}
	raw, _ := doc["session"].(string)
	if prev, dup := et.folded[docID]; dup {
		if prev == raw {
			return // replayed event for a session already folded
		}
		// Overwrite through direct store access: replay from scratch.
		e.rebuildLocked(testID, entry, coll)
		return
	}
	var upload SessionUpload
	if err := json.Unmarshal([]byte(raw), &upload); err != nil {
		et.state = nil
		et.folded = nil
		return
	}
	et.folded[docID] = raw
	e.folds.Add(1)
	if d := et.state.Fold(votesFrom(entry, &upload)); d != nil {
		et.decision = d
		e.decided.Add(1)
	}
}

// rebuildLocked replays every stored session of a test, in document-id
// order, into a fresh engine. After a restart this re-derives the
// decision from the stored evidence path (decisions are not separately
// persisted); replay order is FindEq's deterministic id order, which
// matches what the accumulator and oracle see.
func (e *earlyTracker) rebuildLocked(testID string, entry *testEntry, coll *store.Collection) {
	et, ok := e.tests[testID]
	if !ok {
		et = &earlyTest{}
		e.tests[testID] = et
	}
	state, err := earlystop.New(e.engineConfig(entry))
	if err != nil {
		return // misconfigured alpha: engine stays off for this test
	}
	et.state = state
	et.folded = make(map[string]string)
	e.rebuilds.Add(1)
	for _, doc := range coll.FindEq("test_id", testID) {
		raw, _ := doc["session"].(string)
		var upload SessionUpload
		if err := json.Unmarshal([]byte(raw), &upload); err != nil {
			continue // corrupt sessions are surfaced by the results path
		}
		et.folded[doc.ID()] = raw
		e.folds.Add(1)
		if d := et.state.Fold(votesFrom(entry, &upload)); d != nil {
			if et.decision == nil {
				et.decision = d
				e.decided.Add(1)
			}
			break // spending stopped; later sessions carry no evidence
		}
	}
}

// dropState discards a test's engine state (it will rebuild from storage
// on the next insert event) but keeps any latched decision.
func (e *earlyTracker) dropState(testID string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if et, ok := e.tests[testID]; ok {
		et.state = nil
		et.folded = nil
	}
}

// dropAllState discards every test's engine state (unattributable store
// change), keeping latched decisions.
func (e *earlyTracker) dropAllState() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, et := range e.tests {
		et.state = nil
		et.folded = nil
	}
}

// purge drops everything about a test, latched decision included — the
// test-deletion path, after which a recreated test starts undecided.
func (e *earlyTracker) purge(testID string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.tests, testID)
}

// concludedUpload answers an upload (single or batch) for a decided test:
// 200 + X-Kscope-Concluded: 1 with the decision payload, nothing stored.
func (e *earlyTracker) concludedUpload(w http.ResponseWriter, testID string, d *earlystop.Decision) {
	e.rejects.Add(1)
	w.Header().Set(ConcludedHeader, "1")
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "concluded",
		"test_id":  testID,
		"decision": d,
	})
}

// registerGauges exports the tracker's counters.
func (e *earlyTracker) registerGauges(s *Server) {
	s.reg.RegisterGauge("kscope_earlystop_tests", func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(len(e.tests))
	})
	s.reg.RegisterGauge("kscope_earlystop_decided_total", func() float64 {
		return float64(e.decided.Load())
	})
	s.reg.RegisterGauge("kscope_earlystop_folds_total", func() float64 {
		return float64(e.folds.Load())
	})
	s.reg.RegisterGauge("kscope_earlystop_concluded_rejects_total", func() float64 {
		return float64(e.rejects.Load())
	})
}
