// Package params implements Kaleidoscope's test-parameter schema (Table I of
// the paper): the JSON document an experimenter supplies alongside the N
// webpage versions under test. It covers parsing, validation, and the
// polymorphic "web_page_load" field that drives page-load replay.
package params

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// Common validation errors.
var (
	ErrMissingTestID      = errors.New("params: test_id is required")
	ErrWebpageCount       = errors.New("params: webpage_num must match len(webpages) and be >= 2")
	ErrNoQuestions        = errors.New("params: at least one question is required")
	ErrNoParticipants     = errors.New("params: participant_num must be positive")
	ErrMissingWebPath     = errors.New("params: web_path is required for every webpage")
	ErrMissingWebMainFile = errors.New("params: web_main_file is required for every webpage")
	ErrNegativeLoadTime   = errors.New("params: page-load times must be non-negative")
)

// Test is the top-level test-parameter document (Table I).
type Test struct {
	// TestID identifies the test across Kaleidoscope, the crowdsourcing
	// platform, and participants.
	TestID string `json:"test_id"`
	// WebpageNum is the number of webpage versions under test.
	WebpageNum int `json:"webpage_num"`
	// TestDescription describes the test for participants.
	TestDescription string `json:"test_description"`
	// ParticipantNum is how many participants must be recruited.
	ParticipantNum int `json:"participant_num"`
	// Questions are the comparison questions asked after each integrated
	// webpage. Responses are constrained to Left / Right / Same.
	Questions []string `json:"question"`
	// Webpages holds the per-version information.
	Webpages []Webpage `json:"webpages"`
}

// Webpage describes one version of the page under test (the "webpages"
// array entries of Table I).
type Webpage struct {
	// WebPath is the relative folder path holding the version's resources.
	WebPath string `json:"web_path"`
	// WebPageLoad is the page-load simulation spec. See PageLoadSpec.
	WebPageLoad PageLoadSpec `json:"web_page_load"`
	// WebMainFile is the initial HTML file name of the version.
	WebMainFile string `json:"web_main_file"`
	// WebDescription describes the version.
	WebDescription string `json:"web_description"`
}

// PageLoadSpec is the polymorphic "web_page_load" value.
//
// Two encodings are accepted, mirroring the paper:
//
//   - A plain number N: every DOM node is revealed at a uniformly random
//     time within [0, N] milliseconds.
//   - An array of {selector: milliseconds} objects, e.g.
//     [{"#main":1000},{"#content p":1500}]: nodes matching each selector are
//     revealed at the given time. A map {"#main":1000, ...} is also accepted
//     for convenience; entries are ordered by first appearance (array form)
//     or lexicographically (map form) so round-trips are deterministic.
type PageLoadSpec struct {
	// UniformMillis is the scalar form: reveal all nodes at random times in
	// [0, UniformMillis]. Meaningful only when len(Schedule) == 0.
	UniformMillis int
	// Schedule is the per-selector form.
	Schedule []SelectorTime
}

// SelectorTime pairs a CSS selector with the reveal time of its matches.
type SelectorTime struct {
	Selector string `json:"selector"`
	Millis   int    `json:"millis"`
}

// IsUniform reports whether the spec is the scalar (uniform-random) form.
func (s PageLoadSpec) IsUniform() bool { return len(s.Schedule) == 0 }

// MaxMillis returns the time at which the replay completes: the scalar bound
// for the uniform form, or the latest scheduled reveal otherwise.
func (s PageLoadSpec) MaxMillis() int {
	if s.IsUniform() {
		return s.UniformMillis
	}
	max := 0
	for _, st := range s.Schedule {
		if st.Millis > max {
			max = st.Millis
		}
	}
	return max
}

// UnmarshalJSON implements the polymorphic decoding described on
// PageLoadSpec.
func (s *PageLoadSpec) UnmarshalJSON(data []byte) error {
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "" || trimmed == "null" {
		*s = PageLoadSpec{}
		return nil
	}
	switch trimmed[0] {
	case '[':
		var raw []map[string]int
		if err := json.Unmarshal(data, &raw); err != nil {
			return fmt.Errorf("params: decoding page-load array: %w", err)
		}
		sched := make([]SelectorTime, 0, len(raw))
		for i, entry := range raw {
			if len(entry) != 1 {
				return fmt.Errorf("params: page-load array entry %d must have exactly one selector, got %d", i, len(entry))
			}
			for sel, ms := range entry {
				sched = append(sched, SelectorTime{Selector: sel, Millis: ms})
			}
		}
		*s = PageLoadSpec{Schedule: sched}
		return nil
	case '{':
		var raw map[string]int
		if err := json.Unmarshal(data, &raw); err != nil {
			return fmt.Errorf("params: decoding page-load map: %w", err)
		}
		selectors := make([]string, 0, len(raw))
		for sel := range raw {
			selectors = append(selectors, sel)
		}
		sortStrings(selectors)
		sched := make([]SelectorTime, 0, len(raw))
		for _, sel := range selectors {
			sched = append(sched, SelectorTime{Selector: sel, Millis: raw[sel]})
		}
		*s = PageLoadSpec{Schedule: sched}
		return nil
	default:
		var ms int
		if err := json.Unmarshal(data, &ms); err != nil {
			return fmt.Errorf("params: decoding page-load scalar: %w", err)
		}
		*s = PageLoadSpec{UniformMillis: ms}
		return nil
	}
}

// MarshalJSON emits the scalar form for uniform specs and the canonical
// array-of-single-key-objects form otherwise.
func (s PageLoadSpec) MarshalJSON() ([]byte, error) {
	if s.IsUniform() {
		return json.Marshal(s.UniformMillis)
	}
	parts := make([]map[string]int, 0, len(s.Schedule))
	for _, st := range s.Schedule {
		parts = append(parts, map[string]int{st.Selector: st.Millis})
	}
	return json.Marshal(parts)
}

// sortStrings is a tiny insertion sort so the package stays free of a sort
// import cycle concern; n is small (page-load schedules have a handful of
// selectors).
func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Validate checks the structural invariants of a test-parameter document.
// It returns the first violation found.
func (t *Test) Validate() error {
	if strings.TrimSpace(t.TestID) == "" {
		return ErrMissingTestID
	}
	if t.WebpageNum < 2 || t.WebpageNum != len(t.Webpages) {
		return ErrWebpageCount
	}
	if len(t.Questions) == 0 {
		return ErrNoQuestions
	}
	for i, q := range t.Questions {
		if strings.TrimSpace(q) == "" {
			return fmt.Errorf("params: question %d is empty", i)
		}
	}
	if t.ParticipantNum <= 0 {
		return ErrNoParticipants
	}
	for i, w := range t.Webpages {
		if strings.TrimSpace(w.WebPath) == "" {
			return fmt.Errorf("webpage %d: %w", i, ErrMissingWebPath)
		}
		if strings.TrimSpace(w.WebMainFile) == "" {
			return fmt.Errorf("webpage %d: %w", i, ErrMissingWebMainFile)
		}
		if w.WebPageLoad.UniformMillis < 0 {
			return fmt.Errorf("webpage %d: %w", i, ErrNegativeLoadTime)
		}
		for _, st := range w.WebPageLoad.Schedule {
			if st.Millis < 0 {
				return fmt.Errorf("webpage %d selector %q: %w", i, st.Selector, ErrNegativeLoadTime)
			}
			if strings.TrimSpace(st.Selector) == "" {
				return fmt.Errorf("webpage %d: empty selector in page-load schedule", i)
			}
		}
	}
	return nil
}

// Parse decodes and validates a JSON test-parameter document.
func Parse(data []byte) (*Test, error) {
	var t Test
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("params: decoding test parameters: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Encode renders the document as indented JSON.
func (t *Test) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("params: encoding test parameters: %w", err)
	}
	return data, nil
}

// PairCount returns C(N,2), the number of integrated webpages generated for
// N versions (before control pages).
func (t *Test) PairCount() int {
	n := t.WebpageNum
	return n * (n - 1) / 2
}
