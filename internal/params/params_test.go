package params

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func validTest() *Test {
	return &Test{
		TestID:          "font-size-study",
		WebpageNum:      2,
		TestDescription: "Which font size is easier to read?",
		ParticipantNum:  100,
		Questions:       []string{"Which webpage's font size is more suitable (easier) for reading?"},
		Webpages: []Webpage{
			{WebPath: "wiki-10pt", WebPageLoad: PageLoadSpec{UniformMillis: 3000}, WebMainFile: "index.html", WebDescription: "10pt"},
			{WebPath: "wiki-12pt", WebPageLoad: PageLoadSpec{UniformMillis: 3000}, WebMainFile: "index.html", WebDescription: "12pt"},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validTest().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Test)
		wantErr error
	}{
		{"missing id", func(tt *Test) { tt.TestID = "  " }, ErrMissingTestID},
		{"webpage count mismatch", func(tt *Test) { tt.WebpageNum = 3 }, ErrWebpageCount},
		{"too few webpages", func(tt *Test) { tt.WebpageNum = 1; tt.Webpages = tt.Webpages[:1] }, ErrWebpageCount},
		{"no questions", func(tt *Test) { tt.Questions = nil }, ErrNoQuestions},
		{"no participants", func(tt *Test) { tt.ParticipantNum = 0 }, ErrNoParticipants},
		{"missing path", func(tt *Test) { tt.Webpages[0].WebPath = "" }, ErrMissingWebPath},
		{"missing main file", func(tt *Test) { tt.Webpages[1].WebMainFile = "" }, ErrMissingWebMainFile},
		{"negative uniform", func(tt *Test) { tt.Webpages[0].WebPageLoad = PageLoadSpec{UniformMillis: -1} }, ErrNegativeLoadTime},
		{
			"negative schedule",
			func(tt *Test) {
				tt.Webpages[0].WebPageLoad = PageLoadSpec{Schedule: []SelectorTime{{Selector: "#main", Millis: -5}}}
			},
			ErrNegativeLoadTime,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tt := validTest()
			tc.mutate(tt)
			err := tt.Validate()
			if err == nil {
				t.Fatal("Validate should fail")
			}
			if !errors.Is(err, tc.wantErr) {
				t.Errorf("error = %v, want wrapping %v", err, tc.wantErr)
			}
		})
	}
}

func TestValidateEmptyQuestionAndSelector(t *testing.T) {
	tt := validTest()
	tt.Questions = []string{"ok", "   "}
	if err := tt.Validate(); err == nil || !strings.Contains(err.Error(), "question 1") {
		t.Errorf("empty question error = %v", err)
	}
	tt = validTest()
	tt.Webpages[0].WebPageLoad = PageLoadSpec{Schedule: []SelectorTime{{Selector: " ", Millis: 10}}}
	if err := tt.Validate(); err == nil || !strings.Contains(err.Error(), "empty selector") {
		t.Errorf("empty selector error = %v", err)
	}
}

func TestPageLoadSpecScalarJSON(t *testing.T) {
	var s PageLoadSpec
	if err := json.Unmarshal([]byte(`2000`), &s); err != nil {
		t.Fatalf("unmarshal scalar: %v", err)
	}
	if !s.IsUniform() || s.UniformMillis != 2000 {
		t.Fatalf("got %+v, want uniform 2000", s)
	}
	if s.MaxMillis() != 2000 {
		t.Errorf("MaxMillis = %d, want 2000", s.MaxMillis())
	}
	out, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(out) != "2000" {
		t.Errorf("marshal = %s, want 2000", out)
	}
}

// TestPageLoadSpecArrayJSON decodes the exact example from the paper:
// ["#main":1000, "#content p":1500] rendered as JSON objects.
func TestPageLoadSpecArrayJSON(t *testing.T) {
	var s PageLoadSpec
	raw := `[{"#main":1000},{"#content p":1500}]`
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		t.Fatalf("unmarshal array: %v", err)
	}
	if s.IsUniform() {
		t.Fatal("array form should not be uniform")
	}
	want := []SelectorTime{{"#main", 1000}, {"#content p", 1500}}
	if len(s.Schedule) != len(want) {
		t.Fatalf("schedule len %d, want %d", len(s.Schedule), len(want))
	}
	for i := range want {
		if s.Schedule[i] != want[i] {
			t.Errorf("schedule[%d] = %+v, want %+v", i, s.Schedule[i], want[i])
		}
	}
	if s.MaxMillis() != 1500 {
		t.Errorf("MaxMillis = %d, want 1500", s.MaxMillis())
	}
	out, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var round PageLoadSpec
	if err := json.Unmarshal(out, &round); err != nil {
		t.Fatalf("round-trip unmarshal: %v", err)
	}
	for i := range want {
		if round.Schedule[i] != want[i] {
			t.Errorf("round-trip schedule[%d] = %+v, want %+v", i, round.Schedule[i], want[i])
		}
	}
}

func TestPageLoadSpecMapJSON(t *testing.T) {
	var s PageLoadSpec
	raw := `{"#nav":2000,"#content":4000,"#aside":1000}`
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		t.Fatalf("unmarshal map: %v", err)
	}
	// Map form orders selectors lexicographically for determinism.
	want := []SelectorTime{{"#aside", 1000}, {"#content", 4000}, {"#nav", 2000}}
	for i := range want {
		if s.Schedule[i] != want[i] {
			t.Errorf("schedule[%d] = %+v, want %+v", i, s.Schedule[i], want[i])
		}
	}
}

func TestPageLoadSpecBadJSON(t *testing.T) {
	cases := []string{
		`[{"#a":1,"#b":2}]`, // two keys in one entry
		`[{"#a":"soon"}]`,   // non-integer time
		`"fast"`,            // wrong scalar type
		`{"#a":"x"}`,        // bad map value
	}
	for _, raw := range cases {
		var s PageLoadSpec
		if err := json.Unmarshal([]byte(raw), &s); err == nil {
			t.Errorf("unmarshal %q should fail", raw)
		}
	}
}

func TestPageLoadSpecNull(t *testing.T) {
	var s PageLoadSpec
	if err := json.Unmarshal([]byte(`null`), &s); err != nil {
		t.Fatalf("unmarshal null: %v", err)
	}
	if !s.IsUniform() || s.UniformMillis != 0 {
		t.Errorf("null spec = %+v, want zero", s)
	}
}

func TestParseAndEncodeRoundTrip(t *testing.T) {
	orig := validTest()
	data, err := orig.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	parsed, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if parsed.TestID != orig.TestID || parsed.WebpageNum != orig.WebpageNum ||
		parsed.ParticipantNum != orig.ParticipantNum || len(parsed.Webpages) != len(orig.Webpages) {
		t.Errorf("round trip mismatch: %+v vs %+v", parsed, orig)
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	if _, err := Parse([]byte(`{`)); err == nil {
		t.Error("malformed JSON should error")
	}
	if _, err := Parse([]byte(`{"test_id":""}`)); err == nil {
		t.Error("invalid document should error")
	}
}

// TestParsePaperStyleDocument exercises a full Table I-style document with
// both page-load forms.
func TestParsePaperStyleDocument(t *testing.T) {
	raw := `{
	  "test_id": "uplt-study",
	  "webpage_num": 2,
	  "test_description": "Which part matters for uPLT?",
	  "participant_num": 100,
	  "question": ["Which version of the webpage seems ready to use first?"],
	  "webpages": [
	    {"web_path": "wiki-a", "web_page_load": [{"#navbar":2000},{"#content":4000}], "web_main_file": "index.html", "web_description": "nav first"},
	    {"web_path": "wiki-b", "web_page_load": [{"#navbar":4000},{"#content":2000}], "web_main_file": "index.html", "web_description": "text first"}
	  ]
	}`
	tt, err := Parse([]byte(raw))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tt.PairCount() != 1 {
		t.Errorf("PairCount = %d, want 1", tt.PairCount())
	}
	if tt.Webpages[0].WebPageLoad.MaxMillis() != 4000 {
		t.Errorf("version A MaxMillis = %d, want 4000", tt.Webpages[0].WebPageLoad.MaxMillis())
	}
	if got := tt.Webpages[1].WebPageLoad.Schedule[1]; got != (SelectorTime{"#content", 2000}) {
		t.Errorf("version B content schedule = %+v", got)
	}
}

func TestPairCount(t *testing.T) {
	tests := []struct {
		n, want int
	}{{2, 1}, {3, 3}, {4, 6}, {5, 10}}
	for _, tc := range tests {
		tt := Test{WebpageNum: tc.n}
		if got := tt.PairCount(); got != tc.want {
			t.Errorf("PairCount(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestPageLoadSpecRoundTripProperty: any non-negative spec survives a
// marshal/unmarshal round trip.
func TestPageLoadSpecRoundTripProperty(t *testing.T) {
	f := func(uniform uint16, times []uint16) bool {
		var s PageLoadSpec
		if len(times) == 0 {
			s = PageLoadSpec{UniformMillis: int(uniform)}
		} else {
			for i, ms := range times {
				s.Schedule = append(s.Schedule, SelectorTime{
					Selector: "#node" + string(rune('a'+i%26)),
					Millis:   int(ms),
				})
			}
		}
		data, err := json.Marshal(s)
		if err != nil {
			return false
		}
		var round PageLoadSpec
		if err := json.Unmarshal(data, &round); err != nil {
			return false
		}
		if round.IsUniform() != s.IsUniform() {
			return false
		}
		return round.MaxMillis() == s.MaxMillis()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
