package campaign

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/crowd"
	"kaleidoscope/internal/extension"
	"kaleidoscope/internal/params"
	"kaleidoscope/internal/server"
	"kaleidoscope/internal/store"
	"kaleidoscope/internal/webgen"
)

// tenantSpec builds one two-version font-size test; tenants with the same
// contentSeed generate byte-identical sites and should dedup in the CAS
// blob layer.
func tenantSpec(i int, contentSeed int64, sessions int) Spec {
	id := fmt.Sprintf("tenant-%02d", i)
	left := fmt.Sprintf("wiki-%d-12", contentSeed)
	right := fmt.Sprintf("wiki-%d-22", contentSeed)
	return Spec{
		Test: &params.Test{
			TestID:          id,
			WebpageNum:      2,
			TestDescription: "campaign tenant " + id,
			ParticipantNum:  sessions,
			Questions:       []string{"Which webpage's font size is more suitable (easier) for reading?"},
			Webpages: []params.Webpage{
				{WebPath: left, WebPageLoad: params.PageLoadSpec{UniformMillis: 1000}, WebMainFile: "index.html"},
				{WebPath: right, WebPageLoad: params.PageLoadSpec{UniformMillis: 1000}, WebMainFile: "index.html"},
			},
		},
		Sites: map[string]*webgen.Site{
			left:  webgen.WikiArticle(webgen.WikiConfig{Seed: contentSeed, FontSizePt: 12}),
			right: webgen.WikiArticle(webgen.WikiConfig{Seed: contentSeed, FontSizePt: 22}),
		},
		Sessions: sessions,
		Answer:   extension.AnswerFontSize(),
	}
}

func TestCampaignLifecycle(t *testing.T) {
	db := store.OpenMemory()
	blobs := store.NewBlobStore()
	agg, err := aggregator.New(db, blobs)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(db, blobs)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rng := rand.New(rand.NewSource(11))
	pop, err := crowd.NewPopulation(8, crowd.CampaignCrowdMix, false, rng)
	if err != nil {
		t.Fatal(err)
	}

	// Tenant 2 shares tenant 0's page content: cross-tenant dedup.
	specs := []Spec{tenantSpec(0, 100, 3), tenantSpec(1, 200, 3), tenantSpec(2, 100, 3)}
	camp := &Campaign{
		BaseURL:     ts.URL,
		DB:          db,
		Blobs:       blobs,
		Agg:         agg,
		Specs:       specs,
		Pop:         pop,
		Mix:         crowd.CampaignCrowdMix,
		Seed:        11,
		Concurrency: 4,
		Retries:     3,
		Oracle:      srv.ConcludeScratch,
		Logf:        t.Logf,
	}
	rep, err := camp.Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}

	if rep.TotalAcked != 9 {
		t.Errorf("TotalAcked = %d, want 9", rep.TotalAcked)
	}
	for i := range rep.Tenants {
		tr := &rep.Tenants[i]
		if !tr.Deleted {
			t.Errorf("tenant %s not deleted", tr.TestID)
		}
		if len(tr.Acked) != 3 {
			t.Errorf("tenant %s acked %d, want 3", tr.TestID, len(tr.Acked))
		}
	}
	// The wave guarantees every Prepare after the first overlaps a
	// serving neighbor.
	for _, tr := range rep.Tenants[1:] {
		if !tr.PreparedDuringServe {
			t.Errorf("tenant %s Prepare did not overlap serving", tr.TestID)
		}
	}
	// Tenant 2 re-stored tenant 0's content: its Prepare must have saved
	// bytes through the CAS layer (tenant 0 was still live — the wave
	// keeps lifecycles overlapping).
	if rep.Tenants[2].DedupBytes <= rep.Tenants[1].DedupBytes {
		t.Errorf("content-sharing tenant saved %d bytes, non-sharing %d — expected more",
			rep.Tenants[2].DedupBytes, rep.Tenants[1].DedupBytes)
	}
	if rep.DedupBytesSaved <= 0 {
		t.Error("campaign saved no dedup bytes")
	}
	// Churn leak check: every tenant deleted, blob store back to baseline.
	if rep.UniqueBlobsAfter != rep.UniqueBlobsBefore {
		t.Errorf("UniqueBlobs %d -> %d: campaign leaked blobs", rep.UniqueBlobsBefore, rep.UniqueBlobsAfter)
	}
	if n := db.Collection(aggregator.TestsCollection).Count(); n != 0 {
		t.Errorf("%d test docs survive the campaign", n)
	}
	if n := db.Collection(aggregator.ResponsesCollection).Count(); n != 0 {
		t.Errorf("%d sessions survive the campaign", n)
	}
}

func TestCampaignValidation(t *testing.T) {
	c := &Campaign{}
	if _, err := c.Run(); err == nil {
		t.Error("empty campaign should fail")
	}
	db := store.OpenMemory()
	blobs := store.NewBlobStore()
	agg, _ := aggregator.New(db, blobs)
	c = &Campaign{BaseURL: "http://x", DB: db, Blobs: blobs, Agg: agg}
	if _, err := c.Run(); err == nil {
		t.Error("campaign without specs should fail")
	}
}
