package campaign

import (
	"math/rand"
	"net/http/httptest"
	"testing"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/crowd"
	"kaleidoscope/internal/extension"
	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/server"
	"kaleidoscope/internal/store"
)

// answerAlwaysSame abstains on every comparison: an evidence-free tenant
// whose test the sequential engine can never decide.
func answerAlwaysSame() extension.AnswerFunc {
	return func(_ *crowd.Worker, _ *extension.PageContext, _ string, _ *rand.Rand) (questionnaire.Choice, string) {
		return questionnaire.ChoiceSame, ""
	}
}

// A campaign against an early-stopping server: the strong-effect tenant
// (12pt vs 22pt body text, a crowd that overwhelmingly prefers ~12pt) must
// conclude well short of its fixed session target, spending strictly less
// than the fixed-n design, while the evidence-free tenant runs to its full
// target undecided and its results stay free of decision metadata. The
// shared budget is sized below the combined fixed cost, so the run only
// succeeds because the decided tenant's unspent units stay available.
func TestCampaignEarlyStopping(t *testing.T) {
	db := store.OpenMemory()
	blobs := store.NewBlobStore()
	agg, err := aggregator.New(db, blobs)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(db, blobs, server.WithEarlyStop(server.EarlyStopConfig{Alpha: 0.05}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rng := rand.New(rand.NewSource(7))
	pop, err := crowd.NewPopulation(8, crowd.CampaignCrowdMix, false, rng)
	if err != nil {
		t.Fatal(err)
	}

	const strongTarget, nullTarget, budget = 20, 10, 26
	nullSpec := tenantSpec(1, 200, nullTarget)
	nullSpec.Answer = answerAlwaysSame()
	specs := []Spec{tenantSpec(0, 100, strongTarget), nullSpec}
	camp := &Campaign{
		BaseURL:        ts.URL,
		DB:             db,
		Blobs:          blobs,
		Agg:            agg,
		Specs:          specs,
		Pop:            pop,
		Mix:            crowd.CampaignCrowdMix,
		Seed:           7,
		Concurrency:    4,
		Retries:        3,
		Oracle:         srv.ConcludeScratch,
		StopOnDecision: true,
		Budget:         budget,
		Logf:           t.Logf,
	}
	rep, err := camp.Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}

	strong, null := &rep.Tenants[0], &rep.Tenants[1]
	if !strong.Concluded || strong.Decision == nil {
		t.Fatalf("strong-effect tenant did not conclude: %+v", strong)
	}
	if strong.Decision.Winner != questionnaire.ChoiceLeft {
		t.Errorf("strong tenant winner = %q, want left (12pt)", strong.Decision.Winner)
	}
	if strong.Decision.PValueBound > 0.05 {
		t.Errorf("decision p bound %v > alpha", strong.Decision.PValueBound)
	}
	if strong.RealizedCost >= strong.FixedCost {
		t.Errorf("strong tenant realized %d >= fixed %d: early stopping saved nothing",
			strong.RealizedCost, strong.FixedCost)
	}
	if strong.SessionsSaved == 0 {
		t.Error("strong tenant saved no sessions")
	}
	if strong.RealizedCost != len(strong.Acked) {
		t.Errorf("realized cost %d != acked %d", strong.RealizedCost, len(strong.Acked))
	}

	if null.Concluded || null.Decision != nil {
		t.Errorf("evidence-free tenant concluded: %+v", null.Decision)
	}
	if null.RealizedCost != nullTarget {
		t.Errorf("null tenant realized %d, want its full fixed target %d", null.RealizedCost, nullTarget)
	}

	if rep.TotalRealizedCost >= rep.TotalFixedCost {
		t.Errorf("campaign realized %d >= fixed %d", rep.TotalRealizedCost, rep.TotalFixedCost)
	}
	if want := budget - rep.TotalRealizedCost; rep.BudgetUnspent != want {
		t.Errorf("budget unspent %d, want %d (budget %d - realized %d)",
			rep.BudgetUnspent, want, budget, rep.TotalRealizedCost)
	}
	for i := range rep.Tenants {
		if !rep.Tenants[i].Deleted {
			t.Errorf("tenant %s not deleted", rep.Tenants[i].TestID)
		}
	}
}
