// Package campaign orchestrates multi-tenant test churn: M tests driven
// concurrently through their full lifecycle — create → aggregator Prepare
// (overlapping other tenants' serving traffic) → serve under one shared
// crowd with mid-session worker abandonment and re-recruitment → conclude
// against a differential oracle → delete. Single-test soaks exercise
// steady-state serving; this package exercises what EYEORG-scale
// deployments actually experience: many experimenters creating, running,
// and tearing down tests at once, with worker churn in the middle.
//
// The orchestrator is colocated with the deployment's storage (like the
// experimenter-side controller): it calls the aggregator directly for
// Prepare and reads the store for its audits, while all participant
// traffic — page downloads, session uploads — flows through the real HTTP
// surface, per-session chaos transports included.
package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"kaleidoscope/internal/aggregator"
	"kaleidoscope/internal/crowd"
	"kaleidoscope/internal/earlystop"
	"kaleidoscope/internal/extension"
	"kaleidoscope/internal/obs"
	"kaleidoscope/internal/params"
	"kaleidoscope/internal/questionnaire"
	"kaleidoscope/internal/server"
	"kaleidoscope/internal/store"
	"kaleidoscope/internal/webgen"
)

// Spec describes one tenant's test.
type Spec struct {
	Test *params.Test
	// Sites supplies the webpage content Prepare integrates. Tenants that
	// share page content (same generated sites) should dedup through the
	// CAS blob layer; the report measures how much.
	Sites map[string]*webgen.Site
	// Controls are extra control pairs passed through to Prepare.
	Controls []aggregator.ControlPair
	// Sessions is how many acked session uploads the serve phase must land
	// before the tenant concludes.
	Sessions int
	// Answer decides every comparison for this tenant's workers.
	Answer extension.AnswerFunc
}

// TenantReport is the per-test lifecycle outcome.
type TenantReport struct {
	TestID string
	Pages  int
	// Acked lists worker ids whose uploads the server acknowledged (201,
	// or 409 = stored by an earlier attempt). The conclude audit checks
	// every one of them against the store: acked work is never lost.
	Acked []string
	// Partials counts acked sessions that were abandoned mid-session after
	// at least one completed page (quality control drops them; raw results
	// keep them).
	Partials int
	// Vanished counts workers who walked away before completing anything:
	// no upload, worker lost to the platform, a replacement recruited.
	Vanished int
	// Recruited counts replacement workers minted for this tenant's slots.
	Recruited int
	// DedupBytes is how many blob bytes this tenant's Prepare did not have
	// to store thanks to content-addressed dedup (within the test and
	// against content other live tenants already stored).
	DedupBytes int64
	// PreparedDuringServe reports that another tenant was serving traffic
	// while this tenant's Prepare ran — the interference window the p99
	// gate watches.
	PreparedDuringServe bool
	// DeleteOverlappedServing reports that at least one other tenant was
	// still serving when this tenant was deleted mid-campaign.
	DeleteOverlappedServing bool
	Deleted                 bool
	PrepareElapsed          time.Duration
	ServeElapsed            time.Duration
	// Concluded reports the server's sequential engine decided this
	// tenant's test before its fixed session target was met; Decision is
	// the terminal decision the results endpoint carried.
	Concluded bool
	Decision  *earlystop.Decision
	// SessionsSaved counts required slots the decision made unnecessary:
	// sessions the tenant would have paid for under the fixed-n design but
	// never ran (or ran and had acknowledged unstored).
	SessionsSaved int
	// FixedCost is the fixed-horizon budget (spec.Sessions); RealizedCost
	// is what the tenant actually spent — stored sessions only. Early
	// stopping is worthwhile exactly when realized < fixed.
	FixedCost    int
	RealizedCost int
	Err          error
}

// Report aggregates a campaign run.
type Report struct {
	Tenants        []TenantReport
	TotalAcked     int
	TotalPartials  int
	TotalVanished  int
	TotalRecruited int
	// DedupBytesSaved is the campaign-wide growth of the blob store's
	// BytesSaved counter: bytes tenants shared instead of re-storing.
	DedupBytesSaved int64
	// UniqueBlobsBefore/After bracket the campaign for the leak check:
	// after every tenant is deleted, the blob store must be back to its
	// pre-campaign population.
	UniqueBlobsBefore int64
	UniqueBlobsAfter  int64
	// ArchetypeCounts tallies the initial population plus every recruited
	// replacement.
	ArchetypeCounts map[crowd.Archetype]int
	// TotalFixedCost/TotalRealizedCost/TotalSessionsSaved aggregate the
	// early-stopping economics across tenants: what the fixed-n design
	// would have paid, what was actually stored, and the difference the
	// sequential engine released back to the campaign.
	TotalFixedCost     int
	TotalRealizedCost  int
	TotalSessionsSaved int
	// BudgetUnspent is what remains of the shared Budget after the run
	// (zero when no budget was set).
	BudgetUnspent int
	Elapsed       time.Duration
}

// Campaign drives a set of tenant specs through their full lifecycle.
type Campaign struct {
	// BaseURL is the live core server all participant traffic targets.
	BaseURL string
	// DB and Blobs are the deployment's storage, used for Prepare, the
	// acked-upload audit, and dedup/leak accounting.
	DB    *store.DB
	Blobs *store.BlobStore
	// Agg prepares each tenant's test against DB/Blobs.
	Agg   *aggregator.Aggregator
	Specs []Spec
	// Pop is the shared worker pool every tenant recruits from. Workers
	// who finish a session return to the pool; workers who vanish do not.
	Pop *crowd.Population
	// Mix draws replacement workers when the pool runs dry or a worker
	// vanishes mid-campaign.
	Mix     crowd.Mix
	Trusted bool
	// Seed makes per-session RNG streams and recruitment deterministic up
	// to scheduling.
	Seed int64
	// Concurrency bounds simultaneously running sessions campaign-wide
	// (default 4).
	Concurrency int
	// Retries/Backoff/MaxRetryAfter/Timeout configure every session's
	// client, like extension.Fleet.
	Retries       int
	Backoff       time.Duration
	MaxRetryAfter time.Duration
	Timeout       time.Duration
	// Transport, when set, supplies a per-session http.RoundTripper
	// (typically a seeded netsim.ChaosTransport); the sequence number is
	// unique across the campaign.
	Transport func(session int) http.RoundTripper
	// Registry, when set, receives client retry metrics.
	Registry *obs.Registry
	// Oracle recomputes a tenant's results from scratch (raw or
	// quality-controlled); conclude fails the tenant when the HTTP surface
	// diverges from it — the no-cross-tenant-interference gate.
	Oracle func(testID string, useQC bool) (*server.Results, error)
	// MaxSlotAttempts bounds vanish-and-replace loops per required session
	// (default 8).
	MaxSlotAttempts int
	// StopOnDecision makes tenants honor the server's sequential early
	// stopping: a concluded upload (200 + X-Kscope-Concluded) ends the
	// tenant's serve phase instead of counting as a failed slot, its
	// remaining workers go back to the shared pool, and its unspent budget
	// stays available to undecided neighbors. Without it a concluded
	// upload is reported as an error, because the fixed-n oracle audit
	// assumes every acked session was stored.
	StopOnDecision bool
	// Budget, when positive, caps campaign-wide paid sessions: each slot
	// draws one unit before running and only stored sessions keep it —
	// concluded, abandoned, and failed attempts refund theirs. Decided
	// tenants stop drawing, so their unspent quota is exactly what
	// neighbors still serving get to spend. Exhausting the budget fails
	// the run: the campaign promised more sessions than it could pay for.
	Budget int
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)

	pool       *workerPool
	serving    atomic.Int32
	session    atomic.Int64
	budgetMu   sync.Mutex
	budgetLeft int
}

// workerPool is the shared crowd: idle workers check out for one session
// and return on completion; vanished workers are replaced by freshly
// recruited ones, keeping the platform's supply up under churn.
type workerPool struct {
	mu        sync.Mutex
	idle      []*crowd.Worker
	nextID    int
	rng       *rand.Rand
	mix       crowd.Mix
	trusted   bool
	recruited int
	counts    map[crowd.Archetype]int
}

// checkout hands out an idle worker not yet used by the requesting tenant;
// when none qualifies it recruits a fresh one, as a platform does when a
// task's assignment outstrips the available crowd.
func (p *workerPool) checkout(used map[string]bool) (*crowd.Worker, bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, w := range p.idle {
		if !used[w.ID] {
			p.idle = append(p.idle[:i], p.idle[i+1:]...)
			return w, false, nil
		}
	}
	w, err := crowd.RecruitWorker(p.nextID, p.mix, p.trusted, p.rng)
	if err != nil {
		return nil, false, err
	}
	p.nextID++
	p.recruited++
	p.counts[w.Archetype]++
	return w, true, nil
}

// release returns a worker to the pool.
func (p *workerPool) release(w *crowd.Worker) {
	p.mu.Lock()
	p.idle = append(p.idle, w)
	p.mu.Unlock()
}

// Run drives every tenant through its lifecycle and blocks until all have
// finished. Tenant starts are staggered in a wave: tenant i+1 begins its
// Prepare the moment tenant i starts serving, so every Prepare after the
// first runs while at least one neighbor serves traffic — the interference
// the campaign exists to measure. The returned report is never nil when
// setup succeeds; per-tenant failures are collected into both the report
// and the joined error.
func (c *Campaign) Run() (*Report, error) {
	if c.BaseURL == "" || c.DB == nil || c.Blobs == nil || c.Agg == nil {
		return nil, errors.New("campaign: needs BaseURL, DB, Blobs, and Agg")
	}
	if len(c.Specs) == 0 {
		return nil, errors.New("campaign: no tenant specs")
	}
	if c.Pop == nil || len(c.Pop.Workers) == 0 {
		return nil, errors.New("campaign: needs a worker population")
	}
	if c.Oracle == nil {
		return nil, errors.New("campaign: needs a differential oracle")
	}
	for i, spec := range c.Specs {
		if spec.Test == nil || spec.Answer == nil || spec.Sessions <= 0 {
			return nil, fmt.Errorf("campaign: spec %d needs a test, an answer function, and a positive session target", i)
		}
	}

	c.budgetLeft = c.Budget
	c.pool = &workerPool{
		idle:    append([]*crowd.Worker(nil), c.Pop.Workers...),
		nextID:  len(c.Pop.Workers),
		rng:     rand.New(rand.NewSource(c.Seed ^ 0x5ca1ab1e)),
		mix:     c.Mix,
		trusted: c.Trusted,
		counts:  make(map[crowd.Archetype]int),
	}

	report := &Report{
		Tenants:           make([]TenantReport, len(c.Specs)),
		UniqueBlobsBefore: c.Blobs.Stats().UniqueBlobs,
		ArchetypeCounts:   c.Pop.CountByArchetype(),
	}
	statsBefore := c.Blobs.Stats()

	concurrency := c.Concurrency
	if concurrency <= 0 {
		concurrency = 4
	}
	sem := make(chan struct{}, concurrency)

	// The wave: gates[i] opens tenant i's lifecycle; tenant i opens
	// gates[i+1] when it starts serving (or aborts).
	gates := make([]chan struct{}, len(c.Specs)+1)
	for i := range gates {
		gates[i] = make(chan struct{})
	}
	close(gates[0])

	start := time.Now()
	var wg sync.WaitGroup
	for i := range c.Specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gates[i]
			var openOnce sync.Once
			openNext := func() { openOnce.Do(func() { close(gates[i+1]) }) }
			defer openNext()
			c.runTenant(i, sem, openNext, &report.Tenants[i])
		}(i)
	}
	wg.Wait()

	statsAfter := c.Blobs.Stats()
	report.DedupBytesSaved = statsAfter.BytesSaved - statsBefore.BytesSaved
	report.UniqueBlobsAfter = statsAfter.UniqueBlobs
	report.Elapsed = time.Since(start)

	c.pool.mu.Lock()
	report.TotalRecruited = c.pool.recruited
	for a, n := range c.pool.counts {
		report.ArchetypeCounts[a] += n
	}
	c.pool.mu.Unlock()

	if c.Budget > 0 {
		c.budgetMu.Lock()
		report.BudgetUnspent = c.budgetLeft
		c.budgetMu.Unlock()
	}

	var errs []error
	for i := range report.Tenants {
		t := &report.Tenants[i]
		report.TotalAcked += len(t.Acked)
		report.TotalPartials += t.Partials
		report.TotalVanished += t.Vanished
		report.TotalFixedCost += t.FixedCost
		report.TotalRealizedCost += t.RealizedCost
		report.TotalSessionsSaved += t.SessionsSaved
		if t.Err != nil {
			errs = append(errs, fmt.Errorf("tenant %s: %w", t.TestID, t.Err))
		}
	}
	return report, errors.Join(errs...)
}

// runTenant walks one test through create → prepare → serve → conclude →
// delete, filling rep as it goes. openNext releases the next tenant's
// lifecycle; it is called as serving starts so the neighbor's Prepare
// overlaps this tenant's traffic.
func (c *Campaign) runTenant(i int, sem chan struct{}, openNext func(), rep *TenantReport) {
	spec := c.Specs[i]
	rep.TestID = spec.Test.TestID

	// Prepare (create): runs while earlier tenants serve.
	rep.PreparedDuringServe = c.serving.Load() > 0
	blobsBefore := c.Blobs.Stats().BytesSaved
	prepStart := time.Now()
	prep, err := c.Agg.Prepare(spec.Test, spec.Sites, spec.Controls)
	rep.PrepareElapsed = time.Since(prepStart)
	rep.DedupBytes = c.Blobs.Stats().BytesSaved - blobsBefore
	if err != nil {
		rep.Err = fmt.Errorf("prepare: %w", err)
		return
	}
	rep.Pages = len(prep.Pages)
	rep.PreparedDuringServe = rep.PreparedDuringServe || c.serving.Load() > 0
	c.logf("tenant %s: prepared %d pages in %v (dedup %d bytes, during-serve=%v)",
		rep.TestID, rep.Pages, rep.PrepareElapsed.Round(time.Millisecond), rep.DedupBytes, rep.PreparedDuringServe)

	// Serve: recruit workers from the shared pool until the session target
	// is acked, replacing vanished workers as churn eats them.
	c.serving.Add(1)
	openNext()
	serveStart := time.Now()
	err = c.serveTenant(spec, prep, sem, rep)
	rep.ServeElapsed = time.Since(serveStart)
	c.serving.Add(-1)
	rep.FixedCost = spec.Sessions
	rep.RealizedCost = len(rep.Acked)
	if err != nil {
		rep.Err = err
		return
	}
	c.logf("tenant %s: served %d acked sessions in %v (partial %d, vanished %d, concluded=%v saved=%d)",
		rep.TestID, len(rep.Acked), rep.ServeElapsed.Round(time.Millisecond), rep.Partials, rep.Vanished, rep.Concluded, rep.SessionsSaved)

	// Conclude: the HTTP surface must agree with the from-scratch oracle
	// (no cross-tenant interference), and every acked upload must be in
	// the store (no acked loss).
	if err := c.concludeTenant(rep); err != nil {
		rep.Err = err
		return
	}

	// Delete: tear the test down — mid-campaign when neighbors still
	// serve — and verify nothing of it remains servable.
	rep.DeleteOverlappedServing = c.serving.Load() > 0
	if err := c.deleteTenant(rep); err != nil {
		rep.Err = err
		return
	}
	rep.Deleted = true
	c.logf("tenant %s: concluded and deleted (overlapped-serving=%v)", rep.TestID, rep.DeleteOverlappedServing)
}

// serveTenant lands spec.Sessions acked uploads, one goroutine per required
// slot, all throttled by the campaign-wide semaphore. With StopOnDecision,
// a slot that observes the test concluded — its own upload answered 200 +
// X-Kscope-Concluded, or a sibling's before it started — retires without
// spending: the worker returns to the shared pool and the slot's budget
// unit (if any) is refunded for undecided neighbors.
func (c *Campaign) serveTenant(spec Spec, prep *aggregator.Prepared, sem chan struct{}, rep *TenantReport) error {
	maxAttempts := c.MaxSlotAttempts
	if maxAttempts <= 0 {
		maxAttempts = 8
	}
	var mu sync.Mutex
	used := make(map[string]bool)
	concluded := false
	var firstErr error
	var wg sync.WaitGroup
	for slot := 0; slot < spec.Sessions; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for attempt := 0; attempt < maxAttempts; attempt++ {
				mu.Lock()
				if concluded {
					rep.SessionsSaved++
					mu.Unlock()
					return
				}
				usedView := make(map[string]bool, len(used))
				for id := range used {
					usedView[id] = true
				}
				mu.Unlock()
				w, minted, err := c.pool.checkout(usedView)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("slot %d: recruiting: %w", slot, err)
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				used[w.ID] = true
				if minted {
					rep.Recruited++
				}
				mu.Unlock()

				// Reserve the paid-session unit only once the slot holds a
				// concurrency token: outstanding reservations are bounded by
				// the campaign concurrency, not by the number of waiting
				// slots, so a decided neighbor's refunds actually reach us.
				sem <- struct{}{}
				if !c.acquireBudget() {
					<-sem
					c.pool.release(w)
					mu.Lock()
					if concluded {
						rep.SessionsSaved++
					} else if firstErr == nil {
						firstErr = fmt.Errorf("slot %d: campaign budget exhausted (%d units)", slot, c.Budget)
					}
					mu.Unlock()
					return
				}
				session, outcome, err := c.runSession(spec, w)
				<-sem

				switch {
				case err == nil && outcome == extension.UploadConcluded:
					// The sequential engine decided the test before this
					// session landed: acknowledged, unstored, unpaid.
					c.refundBudget()
					c.pool.release(w)
					mu.Lock()
					if c.StopOnDecision {
						concluded = true
						rep.Concluded = true
						rep.SessionsSaved++
					} else if firstErr == nil {
						firstErr = fmt.Errorf("slot %d: test concluded early but StopOnDecision is off", slot)
					}
					mu.Unlock()
					return
				case err == nil:
					c.pool.release(w)
					mu.Lock()
					rep.Acked = append(rep.Acked, w.ID)
					if len(session.Behaviors) < len(prep.Pages) {
						rep.Partials++
					}
					mu.Unlock()
					return
				case errors.Is(err, extension.ErrAbandoned):
					// The worker walked away with nothing uploaded: lost to
					// the platform (not returned to the pool); the next
					// attempt recruits someone else. Nothing was stored, so
					// nothing was paid.
					c.refundBudget()
					mu.Lock()
					rep.Vanished++
					mu.Unlock()
				default:
					// Infrastructure failure after the client's own retry
					// budget: the worker is fine, the attempt was not.
					c.refundBudget()
					c.pool.release(w)
					mu.Lock()
					if firstErr == nil && attempt == maxAttempts-1 {
						firstErr = fmt.Errorf("slot %d: %w", slot, err)
					}
					mu.Unlock()
				}
			}
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("slot %d: no acked session after %d attempts", slot, maxAttempts)
			}
			mu.Unlock()
		}(slot)
	}
	wg.Wait()
	return firstErr
}

// acquireBudget draws one paid-session unit from the shared campaign
// budget; a false return means the pool is dry. A no-op true when no
// budget was configured.
func (c *Campaign) acquireBudget() bool {
	if c.Budget <= 0 {
		return true
	}
	c.budgetMu.Lock()
	defer c.budgetMu.Unlock()
	if c.budgetLeft <= 0 {
		return false
	}
	c.budgetLeft--
	return true
}

// refundBudget returns a drawn unit that was never spent on a stored
// session — concluded, abandoned, or failed attempts.
func (c *Campaign) refundBudget() {
	if c.Budget <= 0 {
		return
	}
	c.budgetMu.Lock()
	c.budgetLeft++
	c.budgetMu.Unlock()
}

// runSession runs one participant's full extension flow (download, replay,
// answer, upload) with a per-session deterministic RNG and chaos transport.
// The outcome distinguishes a stored upload from one acknowledged unstored
// because the test had already been decided.
func (c *Campaign) runSession(spec Spec, w *crowd.Worker) (*server.SessionUpload, extension.UploadOutcome, error) {
	seq := c.session.Add(1)
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	httpc := &http.Client{Timeout: timeout}
	if c.Transport != nil {
		httpc.Transport = c.Transport(int(seq))
	}
	opts := []extension.ClientOption{extension.WithWorkerID(w.ID)}
	if c.Retries > 0 {
		opts = append(opts, extension.WithRetries(c.Retries))
	}
	if c.Backoff > 0 {
		opts = append(opts, extension.WithBackoff(c.Backoff))
	}
	if c.MaxRetryAfter > 0 {
		opts = append(opts, extension.WithMaxRetryAfter(c.MaxRetryAfter))
	}
	if c.Registry != nil {
		opts = append(opts, extension.WithMetrics(c.Registry))
	}
	client, err := extension.NewClient(c.BaseURL, httpc, opts...)
	if err != nil {
		return nil, extension.UploadStored, err
	}
	runner := &extension.Runner{
		Client: client,
		Worker: w,
		Answer: spec.Answer,
		RNG:    rand.New(rand.NewSource(c.Seed + seq*1_000_003)),
	}
	return runner.RunOutcome(spec.Test.TestID)
}

// concludeTenant checks the tenant's terminal state: HTTP results (raw and
// quality-controlled) must deep-equal the from-scratch oracle, and every
// acked worker's session must exist in the store. The oracle recomputes
// tallies from storage and knows nothing of the sequential engine, so a
// decided tenant's decision metadata is validated separately and stripped
// before the comparison — the underlying tallies must still agree exactly.
func (c *Campaign) concludeTenant(rep *TenantReport) error {
	servedConcluded := rep.Concluded
	for _, mode := range []struct {
		q     string
		useQC bool
	}{{"", false}, {"?quality=1", true}} {
		got, status, err := c.fetchResults(rep.TestID, mode.q)
		if err != nil {
			return fmt.Errorf("conclude (quality=%v): %w", mode.useQC, err)
		}
		if status != http.StatusOK {
			return fmt.Errorf("conclude (quality=%v): status %d", mode.useQC, status)
		}
		if got.Concluded != (got.Decision != nil) {
			return fmt.Errorf("conclude (quality=%v): inconsistent decision metadata (concluded=%v, decision=%+v)",
				mode.useQC, got.Concluded, got.Decision)
		}
		if servedConcluded && got.Decision == nil {
			return fmt.Errorf("conclude (quality=%v): serve phase observed a concluded upload but results carry no decision", mode.useQC)
		}
		if d := got.Decision; d != nil {
			if err := auditDecision(d); err != nil {
				return fmt.Errorf("conclude (quality=%v): %w", mode.useQC, err)
			}
			if !mode.useQC {
				rep.Concluded = true
				rep.Decision = d
			}
			stripped := *got
			stripped.Concluded = false
			stripped.Decision = nil
			got = &stripped
		}
		want, err := c.Oracle(rep.TestID, mode.useQC)
		if err != nil {
			return fmt.Errorf("oracle (quality=%v): %w", mode.useQC, err)
		}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("ORACLE DIVERGENCE (quality=%v): cross-tenant interference?\nserved %+v\noracle %+v",
				mode.useQC, got, want)
		}
	}
	responses := c.DB.Collection(aggregator.ResponsesCollection)
	for _, workerID := range rep.Acked {
		if _, err := responses.Get(rep.TestID + "/" + workerID); err != nil {
			return fmt.Errorf("ACKED LOSS: worker %s was acknowledged but has no stored session: %w", workerID, err)
		}
	}
	return nil
}

// auditDecision sanity-checks a results-borne sequential decision: a real
// winner, a certifiable p-value bound, and accounting that could actually
// have produced it.
func auditDecision(d *earlystop.Decision) error {
	if d.Winner != questionnaire.ChoiceLeft && d.Winner != questionnaire.ChoiceRight {
		return fmt.Errorf("decision winner %q is not a side", d.Winner)
	}
	if d.PageID == "" || d.QuestionID == "" {
		return fmt.Errorf("decision names no evidence stream: %+v", d)
	}
	if !(d.PValueBound > 0 && d.PValueBound <= 1) {
		return fmt.Errorf("decision p-value bound %v out of (0, 1]", d.PValueBound)
	}
	if d.NUsed <= 0 || d.Sessions < d.NUsed || d.Streams <= 0 {
		return fmt.Errorf("decision accounting impossible: %+v", d)
	}
	return nil
}

// deleteTenant removes the test over HTTP and verifies the deployment
// genuinely forgot it: metadata and results must 404 afterwards.
func (c *Campaign) deleteTenant(rep *TenantReport) error {
	httpc := &http.Client{Timeout: 30 * time.Second}
	var opts []extension.ClientOption
	if c.Retries > 0 {
		opts = append(opts, extension.WithRetries(c.Retries))
	}
	if c.Backoff > 0 {
		opts = append(opts, extension.WithBackoff(c.Backoff))
	}
	client, err := extension.NewClient(c.BaseURL, httpc, opts...)
	if err != nil {
		return err
	}
	if err := client.DeleteTest(rep.TestID); err != nil {
		return fmt.Errorf("delete: %w", err)
	}
	for _, path := range []string{"", "/results"} {
		if _, status, err := c.fetchJSON(rep.TestID, path); err != nil {
			return fmt.Errorf("post-delete probe %q: %w", path, err)
		} else if status != http.StatusNotFound {
			return fmt.Errorf("post-delete GET %q: status %d, want 404 — deleted test still servable", path, status)
		}
	}
	return nil
}

// fetchResults GETs a tenant's results over the clean (chaos-free) path.
func (c *Campaign) fetchResults(testID, query string) (*server.Results, int, error) {
	body, status, err := c.httpGet("/api/tests/" + testID + "/results" + query)
	if err != nil || status != http.StatusOK {
		return nil, status, err
	}
	var res server.Results
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, status, fmt.Errorf("decoding results: %w", err)
	}
	return &res, status, nil
}

// fetchJSON GETs a tenant path and returns only the status.
func (c *Campaign) fetchJSON(testID, suffix string) ([]byte, int, error) {
	return c.httpGet("/api/tests/" + testID + suffix)
}

func (c *Campaign) httpGet(path string) ([]byte, int, error) {
	resp, err := http.Get(c.BaseURL + path)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return body, resp.StatusCode, nil
}

func (c *Campaign) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}
